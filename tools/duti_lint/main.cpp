// duti_lint binary entry point. All logic lives in run_lint_cli (lint_cli.cpp)
// so tests can pin the flag handling and exit-code contract in-process.
#include <iostream>

#include "lint.hpp"

int main(int argc, char** argv) {
  return duti::lint::run_lint_cli(argc, argv, std::cout, std::cerr);
}
