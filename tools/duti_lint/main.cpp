// duti_lint CLI. Lints the repo's src/, bench/, and tests/ trees (or an
// explicit list of files/directories) against the project rule registry.
//
//   duti_lint [--root <dir>] [--json] [--out <file>] [--list-rules] [paths...]
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error. Wired into CTest
// as the `duti_lint` test, so a new violation fails tier-1 `ctest`.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: duti_lint [--root <dir>] [--json] [--out <file>]"
         " [--list-rules] [paths...]\n"
         "  --root <dir>   repository root to scan (default: .)\n"
         "  --json         machine-readable report on stdout (or --out)\n"
         "  --out <file>   write the report to <file> instead of stdout\n"
         "  --list-rules   print the rule registry and exit\n"
         "  paths          files/dirs relative to root"
         " (default: src bench tests)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string out_path;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : duti::lint::default_rules()) {
        std::cout << rule.name << "\n    " << rule.description << "\n    scope:";
        if (rule.include.empty()) std::cout << " (everywhere)";
        for (const auto& p : rule.include) std::cout << " " << p;
        for (const auto& p : rule.exclude) std::cout << " -" << p;
        if (rule.headers_only) std::cout << " [headers only]";
        std::cout << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "duti_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tests"};
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "duti_lint: root '" << root << "' is not a directory\n";
    return 2;
  }

  const duti::lint::LintReport report = duti::lint::lint_tree(root, paths);
  const std::string rendered =
      json ? duti::lint::to_json(report) : duti::lint::to_human(report);
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "duti_lint: cannot write '" << out_path << "'\n";
      return 2;
    }
    out << rendered;
  } else {
    std::cout << rendered;
  }
  if (!json && !out_path.empty())
    std::cout << "duti-lint: report written to " << out_path << "\n";
  return report.findings.empty() ? 0 : 1;
}
