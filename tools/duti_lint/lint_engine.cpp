// Rule engine for duti-lint. Pure standard library: a light lexical pass
// (comments and literal contents removed, line structure preserved) feeds
// line-oriented pattern checks. This is deliberately not a C++ parser —
// every rule is chosen so that lexical evidence is enough, and anything
// deeper belongs in clang-tidy (see .clang-tidy, wired into the lint lane).
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

namespace duti::lint {
namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::vector<LexedLine> lex_lines(const std::string& src) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  std::vector<LexedLine> out;
  LexedLine cur;
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" terminator for the active raw string
  char last_code = '\0';  // last non-blanked code char, for R" detection

  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = src[i];
    const char next = i + 1 < n ? src[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      out.push_back(std::move(cur));
      cur = LexedLine{};
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          cur.code += '"';
          if (last_code == 'R') {
            // Raw string: collect the delimiter up to '('.
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && src[j] != '(' && src[j] != '\n') delim += src[j++];
            raw_close = ")" + delim + "\"";
            state = State::kRaw;
            i = j;  // consume through '('
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && !is_ident(last_code)) {
          cur.code += '\'';
          state = State::kChar;
        } else {
          cur.code += c;
          if (!is_space(c)) last_code = c;
        }
        break;
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (an escaped newline ends no string)
        } else if (c == '"') {
          cur.code += '"';
          state = State::kCode;
          last_code = '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          cur.code += '\'';
          state = State::kCode;
          last_code = '\'';
        }
        break;
      case State::kRaw:
        if (c == ')' && src.compare(i, raw_close.size(), raw_close) == 0) {
          i += raw_close.size() - 1;
          cur.code += '"';
          state = State::kCode;
          last_code = '"';
        }
        break;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

namespace {

/// All positions where `word` occurs in `s` with non-identifier boundaries.
std::vector<std::size_t> word_positions(const std::string& s,
                                        const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t at = 0;
  while ((at = s.find(word, at)) != std::string::npos) {
    const bool left_ok = at == 0 || !is_ident(s[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) hits.push_back(at);
    at = end;
  }
  return hits;
}

bool has_word(const std::string& s, const std::string& word) {
  return !word_positions(s, word).empty();
}

std::size_t skip_spaces(const std::string& s, std::size_t at) {
  while (at < s.size() && is_space(s[at])) ++at;
  return at;
}

/// True when `word` at one of its positions is immediately (modulo spaces)
/// followed by `follow`.
bool word_followed_by(const std::string& s, const std::string& word,
                      char follow) {
  for (std::size_t at : word_positions(s, word)) {
    const std::size_t after = skip_spaces(s, at + word.size());
    if (after < s.size() && s[after] == follow) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions — public so tools/duti_analyze reuses the exact grammar.
// ---------------------------------------------------------------------------

std::vector<SuppressionDirective> parse_suppressions(const std::string& comment,
                                                     int line, bool own_line) {
  std::vector<SuppressionDirective> out;
  // A directive comment IS a directive: only whitespace may precede the
  // "duti-lint:" marker. Comments that merely mention the grammar (docs,
  // this file) are not directives.
  const std::size_t at = comment.find("duti-lint:");
  if (at == std::string::npos || skip_spaces(comment, 0) != at) return out;
  {
    std::size_t p = skip_spaces(comment, at + 10);
    SuppressionDirective s;
    s.line = line;
    s.own_line = own_line;
    if (comment.compare(p, 10, "allow-file") == 0) {
      s.file_scope = true;
      p += 10;
    } else if (comment.compare(p, 5, "allow") == 0) {
      p += 5;
    } else {
      return out;  // "duti-lint:" with no allow verb: not a directive
    }
    p = skip_spaces(comment, p);
    if (p < comment.size() && comment[p] == '(') {
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        std::string name;
        for (std::size_t k = p + 1; k <= close; ++k) {
          const char c = comment[k];
          if (c == ',' || c == ')') {
            if (!name.empty()) s.rules.push_back(name);
            name.clear();
          } else if (!is_space(c)) {
            name += c;
          }
        }
        p = close + 1;
      }
    }
    // Justification: non-empty text after "--".
    const std::size_t dash = comment.find("--", p);
    if (dash != std::string::npos) {
      std::string why = comment.substr(dash + 2);
      why.erase(0, why.find_first_not_of(" \t"));
      s.justified = !why.empty();
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

const char* kThreadPoolDir = "src/util/thread_pool";

std::vector<Rule> build_rules() {
  return {
      // Determinism: every random draw must flow from an explicit seed.
      {"no-random-device",
       "std::random_device is nondeterministic; derive seeds with "
       "duti::derive_seed from an explicit root seed",
       {"src/", "tests/", "bench/", "tools/"}, {}, false},
      {"no-rand",
       "std::rand/srand use hidden global state; use duti::Xoshiro256pp",
       {"src/", "tests/", "bench/", "tools/"}, {}, false},
      {"no-wall-clock",
       "wall-clock reads (time(), *_clock::now()) break bit-identical "
       "replay; results must depend only on seeds",
       {"src/", "bench/"}, {}, false},
      {"no-default-mt19937",
       "default-constructed std::mt19937 has a fixed but implementation-"
       "defined seed; construct generators from an explicit seed",
       {"src/", "tests/", "bench/", "tools/"}, {}, false},
      {"no-raw-thread",
       "raw std::thread/std::async/OpenMP bypass the deterministic "
       "ThreadPool; use duti::ThreadPool / parallel_for",
       {"src/"}, {kThreadPoolDir}, false},
      // Reduction discipline (the ProbeResult integer-tally contract).
      {"no-unordered-iteration",
       "iteration order over unordered containers varies across runs and "
       "libraries; reductions must iterate deterministic containers",
       {"src/stats/"}, {}, false},
      {"no-float-accumulate",
       "floating-point += accumulation is order-sensitive; tallies in "
       "reduction paths must stay integral (ProbeResult design)",
       {"src/stats/"}, {}, false},
      // Hygiene.
      {"pragma-once",
       "every header must start with #pragma once",
       {"src/", "tests/", "bench/", "tools/"}, {}, true},
      {"no-using-namespace-header",
       "using namespace in a header leaks into every includer",
       {"src/", "tests/", "bench/", "tools/"}, {}, true},
      {"no-side-effect-assert",
       "assert() with side effects changes behavior under NDEBUG",
       {"src/", "tests/", "bench/", "tools/"}, {}, false},
      {"no-exit-in-library",
       "library code must not call exit/abort/terminate: it kills the "
       "embedding process (and every in-flight cache write); throw a duti "
       "error and let the binary's edge decide",
       {"src/"}, {"src/util/error.hpp"}, false},
      {"no-intrinsics-outside-kernels",
       "raw SIMD intrinsics are confined to the kernel layer "
       "(src/util/simd.hpp and src/util/kernels*); everything else calls "
       "the runtime-dispatched duti::kernels API so DUTI_SIMD=off stays "
       "bit-identical to the vector paths",
       {"src/", "tests/", "bench/"},
       {"src/util/simd.hpp", "src/util/kernels"}, false},
      // Protocol-plane discipline (DESIGN.md section 14): trial loops in
      // the sim layer run through reusable flat buffers; per-iteration
      // heap construction is what the batched executor exists to remove.
      {"no-per-trial-alloc",
       "heap allocation (new/make_unique/make_shared) inside a loop in "
       "the sim layer churns the allocator once per trial; reuse flat "
       "per-worker buffers (sim/protocol_batch.hpp) or hoist the "
       "construction out of the loop",
       {"src/sim/"}, {}, false},
      // Sweep discipline: benches that q*-sweep an axis should go through
      // the sweep engine (warm starts, shared cache, point parallelism)
      // instead of a serial loop of cold find_min_param calls.
      {"no-serial-sweep-loop",
       "bench calls find_min_param directly without using run_sweep; "
       "axis sweeps should build SweepPoints and call duti::run_sweep "
       "(src/stats/sweep.hpp) for warm starts and the shared probe cache",
       {"bench/"}, {}, false},
      // Meta rules, emitted by the suppression parser itself.
      {"bare-suppression",
       "duti-lint suppressions must carry '-- <justification>' text",
       {}, {}, false},
      {"unknown-rule",
       "suppression names a rule that is not in the registry",
       {}, {}, false},
      {"stale-suppression",
       "justified suppression whose rule produces no finding on its "
       "line/file; delete it so exemptions track reality",
       {}, {}, false},
  };
}

bool is_header_path(const std::string& path) {
  return path.size() >= 2 &&
         (path.rfind(".hpp") == path.size() - 4 ||
          path.rfind(".h") == path.size() - 2);
}

bool rule_applies(const Rule& rule, const std::string& path, bool header) {
  if (rule.headers_only && !header) return false;
  for (const auto& ex : rule.exclude)
    if (path.rfind(ex, 0) == 0) return false;
  if (rule.include.empty()) return true;
  for (const auto& in : rule.include)
    if (path.rfind(in, 0) == 0) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Checks. Each appends raw findings (pre-suppression) for one file.
// ---------------------------------------------------------------------------

using RawFindings = std::vector<Finding>;

void add(RawFindings& out, const std::string& file, int line,
         const std::string& rule, const std::string& message) {
  out.push_back({file, line, rule, message});
}

void check_random_device(const std::string& file,
                         const std::vector<LexedLine>& lines, RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (has_word(lines[i].code, "random_device"))
      add(out, file, static_cast<int>(i + 1), "no-random-device",
          "std::random_device is nondeterministic; seed explicitly via "
          "duti::derive_seed");
  }
}

void check_rand(const std::string& file, const std::vector<LexedLine>& lines,
                RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (word_followed_by(code, "rand", '(') ||
        word_followed_by(code, "srand", '(') || has_word(code, "std::rand"))
      add(out, file, static_cast<int>(i + 1), "no-rand",
          "std::rand/srand use hidden global state; use duti::Xoshiro256pp");
  }
}

void check_wall_clock(const std::string& file, const std::vector<LexedLine>& lines,
                      RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    bool hit = false;
    // Any qualified static now() call: std::chrono::*_clock::now(), or an
    // alias like Clock::now().
    for (std::size_t at : word_positions(code, "now")) {
      if (at >= 2 && code[at - 1] == ':' && code[at - 2] == ':') hit = true;
    }
    if (word_followed_by(code, "time", '(') ||
        word_followed_by(code, "clock", '(') ||
        has_word(code, "gettimeofday") || has_word(code, "clock_gettime"))
      hit = true;
    if (hit)
      add(out, file, static_cast<int>(i + 1), "no-wall-clock",
          "wall-clock read; probe results must be a pure function of seeds");
  }
}

void check_default_mt19937(const std::string& file,
                           const std::vector<LexedLine>& lines, RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (const char* word : {"mt19937", "mt19937_64"}) {
      for (std::size_t at : word_positions(code, word)) {
        std::size_t p = skip_spaces(code, at + std::string(word).size());
        // Skip over a declared identifier, if any.
        std::size_t q = p;
        while (q < code.size() && is_ident(code[q])) ++q;
        q = skip_spaces(code, q);
        bool flagged = false;
        if (q < code.size() && code[q] == ';' && q > p) {
          flagged = true;  // "mt19937 gen;"
        } else if (q < code.size() && (code[q] == '(' || code[q] == '{')) {
          const char close = code[q] == '(' ? ')' : '}';
          if (skip_spaces(code, q + 1) < code.size() &&
              code[skip_spaces(code, q + 1)] == close)
            flagged = true;  // "mt19937 gen{};" or "mt19937()"
        }
        if (flagged) {
          add(out, file, static_cast<int>(i + 1), "no-default-mt19937",
              "default-constructed std::mt19937; pass an explicit seed "
              "derived from the experiment root seed");
          break;
        }
      }
    }
  }
}

void check_raw_thread(const std::string& file, const std::vector<LexedLine>& lines,
                      RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    bool hit = false;
    std::size_t at = 0;
    while ((at = code.find("std::thread", at)) != std::string::npos) {
      const std::size_t end = at + 11;
      // std::thread::hardware_concurrency() and friends are fine; spawning
      // is what bypasses the deterministic pool.
      if (end >= code.size() || (!is_ident(code[end]) && code[end] != ':'))
        hit = true;
      at = end;
    }
    if (has_word(code, "jthread") || has_word(code, "std::async")) hit = true;
    const std::size_t first = skip_spaces(code, 0);
    if (first < code.size() && code[first] == '#' &&
        has_word(code, "pragma") && has_word(code, "omp"))
      hit = true;
    if (hit)
      add(out, file, static_cast<int>(i + 1), "no-raw-thread",
          "raw threading primitive; route parallelism through "
          "duti::ThreadPool so DUTI_THREADS stays deterministic");
  }
}

/// Identifiers declared on a line with any of `type_words` (crude but
/// sufficient: the declarations we care about are single-line). Skips
/// function declarations (identifier directly followed by '(').
void collect_declared(const std::string& code,
                      const std::vector<std::string>& type_words,
                      std::set<std::string>& idents) {
  for (const auto& type : type_words) {
    for (std::size_t at : word_positions(code, type)) {
      std::size_t p = at + type.size();
      // For template types, jump past the angle-bracket argument list.
      if (skip_spaces(code, p) < code.size() &&
          code[skip_spaces(code, p)] == '<') {
        int depth = 0;
        p = skip_spaces(code, p);
        while (p < code.size()) {
          if (code[p] == '<') ++depth;
          if (code[p] == '>' && --depth == 0) {
            ++p;
            break;
          }
          ++p;
        }
      }
      p = skip_spaces(code, p);
      if (p < code.size() && code[p] == '&') p = skip_spaces(code, p + 1);
      std::string name;
      while (p < code.size() && is_ident(code[p])) name += code[p++];
      if (name.empty()) continue;
      const std::size_t after = skip_spaces(code, p);
      if (after < code.size() && code[after] == '(') continue;  // function
      idents.insert(name);
    }
  }
}

void check_unordered_iteration(const std::string& file,
                               const std::vector<LexedLine>& lines,
                               RawFindings& out) {
  std::set<std::string> unordered;
  for (const auto& line : lines)
    collect_declared(line.code, {"unordered_map", "unordered_set"}, unordered);
  if (unordered.empty()) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    bool hit = false;
    // Range-for over a known-unordered identifier: "for (... : ident)".
    if (has_word(code, "for")) {
      const std::size_t colon = code.find(" : ");
      if (colon != std::string::npos) {
        std::size_t p = skip_spaces(code, colon + 3);
        std::string name;
        while (p < code.size() && is_ident(code[p])) name += code[p++];
        if (unordered.count(name)) hit = true;
      }
    }
    for (const auto& name : unordered) {
      for (std::size_t at : word_positions(code, name)) {
        const std::size_t after = at + name.size();
        if (code.compare(after, 7, ".begin(") == 0 ||
            code.compare(after, 8, ".cbegin(") == 0)
          hit = true;
      }
    }
    if (hit)
      add(out, file, static_cast<int>(i + 1), "no-unordered-iteration",
          "iteration over an unordered container in a reduction path; "
          "iteration order is not deterministic across runs");
  }
}

void check_float_accumulate(const std::string& file,
                            const std::vector<LexedLine>& lines, RawFindings& out) {
  std::set<std::string> floats;
  for (const auto& line : lines)
    collect_declared(line.code, {"double", "float"}, floats);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    bool hit = false;
    std::size_t at = 0;
    while ((at = code.find("+=", at)) != std::string::npos) {
      // LHS: the identifier ending just before "+=".
      std::size_t end = at;
      while (end > 0 && is_space(code[end - 1])) --end;
      std::size_t begin = end;
      while (begin > 0 && is_ident(code[begin - 1])) --begin;
      const std::string lhs = code.substr(begin, end - begin);
      if (floats.count(lhs)) hit = true;
      // RHS beginning with a floating literal (e.g. "x += 0.5").
      std::size_t r = skip_spaces(code, at + 2);
      std::size_t digits = r;
      while (digits < code.size() &&
             std::isdigit(static_cast<unsigned char>(code[digits])))
        ++digits;
      if (digits > r && digits < code.size() && code[digits] == '.') hit = true;
      at += 2;
    }
    if (hit)
      add(out, file, static_cast<int>(i + 1), "no-float-accumulate",
          "floating-point accumulation in a reduction path; keep tallies "
          "integral and convert once at the edge (ProbeResult design)");
  }
}

void check_pragma_once(const std::string& file, const std::vector<LexedLine>& lines,
                       RawFindings& out) {
  for (const auto& line : lines) {
    const std::size_t first = skip_spaces(line.code, 0);
    if (first < line.code.size() && line.code[first] == '#' &&
        has_word(line.code, "pragma") && has_word(line.code, "once"))
      return;
  }
  add(out, file, 1, "pragma-once", "header is missing #pragma once");
}

void check_using_namespace_header(const std::string& file,
                                  const std::vector<LexedLine>& lines,
                                  RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (std::size_t at : word_positions(code, "using")) {
      const std::size_t p = skip_spaces(code, at + 5);
      if (code.compare(p, 9, "namespace") == 0)
        add(out, file, static_cast<int>(i + 1), "no-using-namespace-header",
            "using namespace in a header leaks into every includer");
    }
  }
}

void check_side_effect_assert(const std::string& file,
                              const std::vector<LexedLine>& lines,
                              RawFindings& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (std::size_t at : word_positions(code, "assert")) {
      const std::size_t open = skip_spaces(code, at + 6);
      if (open >= code.size() || code[open] != '(') continue;
      // Scan the argument text (to the matching ')' if it closes on this
      // line, else to end of line) for mutation operators.
      int depth = 0;
      std::size_t end = open;
      for (; end < code.size(); ++end) {
        if (code[end] == '(') ++depth;
        if (code[end] == ')' && --depth == 0) break;
      }
      const std::string arg = code.substr(open, end - open);
      bool mutation = arg.find("++") != std::string::npos ||
                      arg.find("--") != std::string::npos;
      for (std::size_t k = 1; !mutation && k + 1 < arg.size(); ++k) {
        if (arg[k] != '=') continue;
        const char prev = arg[k - 1];
        if (arg[k + 1] != '=' && prev != '=' && prev != '!' && prev != '<' &&
            prev != '>')
          mutation = true;
      }
      if (mutation)
        add(out, file, static_cast<int>(i + 1), "no-side-effect-assert",
            "assert() argument mutates state; the mutation disappears "
            "under NDEBUG");
    }
  }
}

void check_exit_in_library(const std::string& file,
                           const std::vector<LexedLine>& lines, RawFindings& out) {
  // Word-boundary matching keeps identifiers like my_exit or set_terminate
  // clean; only a call-shaped use (name followed by '(') is process death.
  static const char* const kKillers[] = {"exit", "_Exit", "quick_exit",
                                         "abort", "terminate"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (const char* word : kKillers) {
      if (word_followed_by(code, word, '(')) {
        add(out, file, static_cast<int>(i + 1), "no-exit-in-library",
            std::string(word) +
                "() in library code kills the embedding process; throw a "
                "duti error and decide at the binary's edge");
        break;
      }
    }
  }
}

void check_intrinsics(const std::string& file, const std::vector<LexedLine>& lines,
                      RawFindings& out) {
  // x86 intrinsic headers, vector register types, and _mm*_ call prefixes.
  // Prefix matching (left boundary only) covers the suffixed families
  // (__m256d, _mm256_add_epi64, ...) without enumerating every intrinsic.
  static const char* const kHeaders[] = {"immintrin", "emmintrin",
                                         "xmmintrin", "pmmintrin",
                                         "smmintrin", "tmmintrin",
                                         "nmmintrin", "wmmintrin",
                                         "ammintrin", "zmmintrin"};
  static const char* const kPrefixes[] = {"__m128", "__m256", "__m512",
                                          "_mm_", "_mm256_", "_mm512_"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    bool hit = false;
    for (const char* word : kHeaders)
      if (has_word(code, word)) hit = true;
    for (const char* prefix : kPrefixes) {
      const std::string p(prefix);
      std::size_t at = 0;
      while (!hit && (at = code.find(p, at)) != std::string::npos) {
        if (at == 0 || !is_ident(code[at - 1])) hit = true;
        at += p.size();
      }
    }
    if (hit)
      add(out, file, static_cast<int>(i + 1), "no-intrinsics-outside-kernels",
          "raw SIMD intrinsics outside the kernel layer; call the "
          "runtime-dispatched duti::kernels API so every call site keeps "
          "the scalar/SIMD bit-identity contract");
  }
}

void check_per_trial_alloc(const std::string& file,
                           const std::vector<LexedLine>& lines,
                           RawFindings& out) {
  // Lexical loop tracking: brace-depth bookkeeping plus a small state
  // machine for for/while headers, covering braced bodies and unbraced
  // single-statement bodies. Strings and comments are already blanked by
  // the lexer, so every brace/paren seen here is structural.
  int depth = 0;                 // current brace depth
  std::vector<int> loop_depths;  // depth at which each braced loop body opened
  bool in_header = false;        // inside a for/while (...) header
  int header_parens = 0;
  bool armed = false;            // header closed; body token not yet seen
  bool unbraced = false;         // inside a single-statement loop body
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (std::size_t p = 0; p < code.size(); ++p) {
      const char c = code[p];
      if (in_header) {
        if (c == '(') ++header_parens;
        if (c == ')' && --header_parens == 0) {
          in_header = false;
          armed = true;
        }
        continue;
      }
      if (armed && !is_space(c)) {
        armed = false;
        if (c == '{') {
          loop_depths.push_back(depth);
          ++depth;
          continue;
        }
        unbraced = true;  // single-statement body: runs to the next ';'
      }
      if (c == '{') {
        ++depth;
        continue;
      }
      if (c == '}') {
        --depth;
        if (!loop_depths.empty() && loop_depths.back() == depth)
          loop_depths.pop_back();
        continue;
      }
      if (c == ';') {
        unbraced = false;  // ends every nested single-statement body
        continue;
      }
      if (!is_ident(c) || (p > 0 && is_ident(code[p - 1]))) continue;
      auto word_is = [&](const char* w, std::size_t len) {
        return code.compare(p, len, w) == 0 &&
               (p + len >= code.size() || !is_ident(code[p + len]));
      };
      if (word_is("for", 3) || word_is("while", 5)) {
        const std::size_t len = c == 'f' ? 3 : 5;
        const std::size_t after = skip_spaces(code, p + len);
        if (after < code.size() && code[after] == '(') {
          in_header = true;
          header_parens = 1;
          p = after;
        } else {
          p += len - 1;
        }
        continue;
      }
      const bool in_loop = !loop_depths.empty() || unbraced;
      if (in_loop && (word_is("new", 3) || word_is("make_unique", 11) ||
                      word_is("make_shared", 11))) {
        add(out, file, static_cast<int>(i + 1), "no-per-trial-alloc",
            "heap allocation inside a loop on a sim hot path; reuse flat "
            "per-worker buffers (sim/protocol_batch.hpp) or hoist the "
            "construction out of the trial loop");
        // One finding per line is enough; skip the rest of the line.
        p = code.size();
      }
    }
  }
}

void check_serial_sweep_loop(const std::string& file,
                             const std::vector<LexedLine>& lines,
                             RawFindings& out) {
  // A file that calls run_sweep anywhere has adopted the engine; auxiliary
  // find_min_param calls beside it (calibration, one-off searches) are fine.
  for (const auto& line : lines)
    if (has_word(line.code, "run_sweep")) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (word_followed_by(lines[i].code, "find_min_param", '('))
      add(out, file, static_cast<int>(i + 1), "no-serial-sweep-loop",
          "direct find_min_param call in a bench that never calls "
          "run_sweep; sweep the axis through duti::run_sweep to get warm "
          "starts, the shared probe cache, and point-level parallelism");
  }
}

}  // namespace

const std::vector<Rule>& default_rules() {
  static const std::vector<Rule> rules = build_rules();
  return rules;
}

const std::vector<std::string>& foreign_rule_names() {
  // Owned by tools/duti_analyze. unknown-rule accepts them; the stale check
  // skips them (their findings live in the analyzer's report, not here).
  static const std::vector<std::string> names = {
      "layer-violation",          "layer-cycle",
      "layer-unknown-module",     "rng-by-value",
      "rng-copy",                 "rng-captured-in-parallel",
      "pure-wall-clock",          "pure-locale",
      "pure-unordered-iteration", "pure-float-reduce"};
  return names;
}

LintReport make_report() {
  LintReport report;
  for (const auto& rule : default_rules()) report.rule_counts[rule.name] = 0;
  return report;
}

void lint_source(const std::string& rel_path, const std::string& content,
                 LintReport& report) {
  if (report.rule_counts.empty()) report.rule_counts = make_report().rule_counts;
  const std::vector<LexedLine> lines = lex_lines(content);
  const bool header = is_header_path(rel_path);
  ++report.files_scanned;

  RawFindings raw;
  const auto& rules = default_rules();
  auto enabled = [&](const char* name) {
    for (const auto& r : rules)
      if (r.name == name) return rule_applies(r, rel_path, header);
    return false;
  };
  if (enabled("no-random-device")) check_random_device(rel_path, lines, raw);
  if (enabled("no-rand")) check_rand(rel_path, lines, raw);
  if (enabled("no-wall-clock")) check_wall_clock(rel_path, lines, raw);
  if (enabled("no-default-mt19937")) check_default_mt19937(rel_path, lines, raw);
  if (enabled("no-raw-thread")) check_raw_thread(rel_path, lines, raw);
  if (enabled("no-unordered-iteration"))
    check_unordered_iteration(rel_path, lines, raw);
  if (enabled("no-float-accumulate"))
    check_float_accumulate(rel_path, lines, raw);
  if (enabled("pragma-once")) check_pragma_once(rel_path, lines, raw);
  if (enabled("no-using-namespace-header"))
    check_using_namespace_header(rel_path, lines, raw);
  if (enabled("no-side-effect-assert"))
    check_side_effect_assert(rel_path, lines, raw);
  if (enabled("no-exit-in-library"))
    check_exit_in_library(rel_path, lines, raw);
  if (enabled("no-intrinsics-outside-kernels"))
    check_intrinsics(rel_path, lines, raw);
  if (enabled("no-per-trial-alloc"))
    check_per_trial_alloc(rel_path, lines, raw);
  if (enabled("no-serial-sweep-loop"))
    check_serial_sweep_loop(rel_path, lines, raw);

  // Collect suppressions; malformed ones are themselves findings. Each
  // well-formed, justified directive becomes an AllowEntry whose credit
  // count feeds the stale-suppression check below.
  struct AllowEntry {
    std::string rule;
    bool file_scope = false;
    int target = 0;  // line a line-scoped entry covers
    int at = 0;      // line the directive sits on (finding anchor)
    bool foreign = false;
    std::size_t used = 0;
  };
  std::vector<AllowEntry> allows;
  std::set<std::string> known, foreign;
  for (const auto& r : rules) known.insert(r.name);
  for (const auto& n : foreign_rule_names()) foreign.insert(n);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].comment.find("duti-lint") == std::string::npos) continue;
    const bool own_line = skip_spaces(lines[i].code, 0) >= lines[i].code.size();
    for (const auto& s : parse_suppressions(lines[i].comment,
                                            static_cast<int>(i + 1),
                                            own_line)) {
      if (!s.justified)
        add(raw, rel_path, s.line, "bare-suppression",
            "suppression without '-- <justification>' text");
      if (s.rules.empty())
        add(raw, rel_path, s.line, "unknown-rule",
            "suppression names no rule: expected allow(<rule>[, <rule>])");
      for (const auto& name : s.rules) {
        const bool is_foreign = foreign.count(name) > 0;
        if (!known.count(name) && !is_foreign) {
          add(raw, rel_path, s.line, "unknown-rule",
              "suppression names unknown rule '" + name + "'");
          continue;
        }
        if (!s.justified) continue;  // undocumented exemptions don't apply
        AllowEntry e;
        e.rule = name;
        e.file_scope = s.file_scope;
        e.at = s.line;
        e.foreign = is_foreign;
        if (!s.file_scope) {
          // A trailing comment covers its own line; a standalone comment
          // covers the next line that has code (so multi-line
          // justifications work).
          int target = s.line;
          if (s.own_line) {
            std::size_t j = static_cast<std::size_t>(s.line);
            while (j < lines.size() &&
                   skip_spaces(lines[j].code, 0) >= lines[j].code.size())
              ++j;
            target = static_cast<int>(j + 1);
          }
          e.target = target;
        }
        allows.push_back(std::move(e));
      }
    }
  }

  for (auto& f : raw) {
    // Meta findings from the suppression parser are never suppressible.
    const bool meta = f.rule == "bare-suppression" || f.rule == "unknown-rule";
    bool suppressed = false;
    if (!meta) {
      for (auto& e : allows) {
        if (e.foreign || e.rule != f.rule) continue;
        if (e.file_scope || e.target == f.line) {
          ++e.used;
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed) {
      ++report.suppressions_used;
      continue;
    }
    ++report.rule_counts[f.rule];
    report.findings.push_back(std::move(f));
  }

  // A justified suppression that credited no finding is dead weight.
  // Foreign (analyzer-owned) rules are exempt: duti_analyze runs its own
  // symmetric stale check over the rules it owns.
  for (const auto& e : allows) {
    if (e.foreign || e.used > 0) continue;
    Finding f{rel_path, e.at, "stale-suppression",
              "suppression of '" + e.rule + "' matches no finding " +
                  (e.file_scope ? "in this file" : "on its line") +
                  "; remove it"};
    ++report.rule_counts[f.rule];
    report.findings.push_back(std::move(f));
  }
}

LintReport lint_tree(const std::string& root,
                     const std::vector<std::string>& rel_paths) {
  namespace fs = std::filesystem;
  LintReport report = make_report();
  std::vector<std::string> files;
  auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc")
      files.push_back(fs::relative(p, root).generic_string());
  };
  for (const auto& rel : rel_paths) {
    const fs::path p = fs::path(root) / rel;
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p))
        if (e.is_regular_file()) consider(e.path());
    } else if (fs::is_regular_file(p)) {
      consider(p);
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    lint_source(rel, buf.str(), report);
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report;
}

}  // namespace duti::lint
