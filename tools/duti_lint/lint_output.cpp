// Report renderers for duti-lint: human-readable (file:line anchors plus a
// per-rule summary) and machine-readable JSON (stable key order, used by
// BENCH_lint.json and any CI consumer).
#include "lint.hpp"

#include <cstdio>
#include <sstream>

namespace duti::lint {

// Public (declared in lint.hpp): the analyze emitter in tools/duti_analyze
// embeds the same strings (paths, justifications) and must escape them the
// same way.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_human(const LintReport& report) {
  std::ostringstream out;
  for (const auto& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  out << "\nduti-lint: " << report.findings.size() << " finding"
      << (report.findings.size() == 1 ? "" : "s") << " in "
      << report.files_scanned << " files ("
      << report.suppressions_used << " justified suppression"
      << (report.suppressions_used == 1 ? "" : "s") << " applied)\n";
  for (const auto& [rule, count] : report.rule_counts) {
    if (count > 0) out << "  " << rule << ": " << count << "\n";
  }
  return out.str();
}

std::string to_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"duti_lint\",\n  \"schema_version\": 1,\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"suppressions_used\": " << report.suppressions_used << ",\n";
  out << "  \"total_findings\": " << report.findings.size() << ",\n";
  out << "  \"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : report.rule_counts) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(rule)
        << "\": " << count;
    first = false;
  }
  out << "\n  },\n  \"findings\": [";
  first = true;
  for (const auto& f : report.findings) {
    out << (first ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

}  // namespace duti::lint
