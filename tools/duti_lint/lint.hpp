// duti-lint: a self-hosted determinism & hygiene linter for the duti tree.
//
// The measurement engine promises bit-identical probes at any DUTI_THREADS
// and exact cache replay (DESIGN.md sections 7-8). That contract is easy to
// break silently: one std::random_device, one wall-clock read inside a
// tally, one iteration over an unordered container in a reduction, one
// floating-point accumulator. duti-lint tokenizes the repo's sources
// (comments and string/char literals stripped, line numbers preserved) and
// enforces a registry of project invariants; see default_rules() for the
// list and DESIGN.md section 9 for the rationale.
//
// Suppressions are inline comments with mandatory justification text:
//
//   code();  // duti-lint: allow(<rule>) -- why this use is deliberate
//
// A suppression comment on its own line applies to the next line. A
// file-scoped variant disables a rule for the whole file:
//
//   // duti-lint: allow-file(<rule>) -- why the whole file is exempt
//
// A suppression with no "-- justification" text is itself a finding
// (rule "bare-suppression"), so exemptions stay documented. A justified
// suppression whose rule produces no finding on its line/file is dead
// weight and is reported as "stale-suppression".
//
// The same comment grammar is shared with the cross-TU semantic analyzer
// (tools/duti_analyze): suppressions naming an analyzer-owned rule (see
// foreign_rule_names()) are accepted here and enforced there.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace duti::lint {

/// One rule violation (or suppression-syntax error) at a file:line anchor.
struct Finding {
  std::string file;     ///< repo-relative path, forward slashes
  int line = 0;         ///< 1-based; 0 for file-level findings
  std::string rule;     ///< registry rule name, e.g. "no-wall-clock"
  std::string message;  ///< human-readable explanation
};

/// A registry entry: name, rationale, and the path scopes it applies to.
/// Scoping is prefix-based on the repo-relative path; an empty include list
/// means "everywhere scanned". Excludes win over includes, which is how the
/// thread-pool implementation itself escapes the raw-thread rule.
struct Rule {
  std::string name;
  std::string description;
  std::vector<std::string> include;  ///< path prefixes the rule applies to
  std::vector<std::string> exclude;  ///< path prefixes exempt from the rule
  bool headers_only = false;         ///< restrict to .hpp/.h files
};

/// The project rule registry (order is the report order).
const std::vector<Rule>& default_rules();

/// Rule names owned by sibling tools that share the suppression grammar
/// (today: tools/duti_analyze). The unknown-rule check accepts them, and
/// the stale-suppression check skips them — their findings live in the
/// owning tool's report, not this one. test_duti_analyze pins this list
/// against the analyzer's actual registry so the two cannot drift.
const std::vector<std::string>& foreign_rule_names();

// ---------------------------------------------------------------------------
// Lexer — shared with tools/duti_analyze, which builds its token stream,
// symbol table, and call graph on top of the same lexical pass.
// ---------------------------------------------------------------------------

/// One physical source line after the lexical pass.
struct LexedLine {
  std::string code;     ///< comments removed, string/char contents blanked
  std::string comment;  ///< concatenated comment text on this line
};

/// Strip comments and literal contents while preserving line numbers.
/// Handles //, /* */, "..." with escapes, '...' (distinguishing digit
/// separators like 1'000'000), and raw strings R"delim(...)delim".
std::vector<LexedLine> lex_lines(const std::string& src);

/// One parsed "duti-lint: allow[-file](rule[, rule]) -- justification"
/// directive from a comment.
struct SuppressionDirective {
  std::vector<std::string> rules;
  bool file_scope = false;
  bool justified = false;
  int line = 0;           ///< 1-based line the comment sits on
  bool own_line = false;  ///< comment-only line: applies to the next line
};

/// Parse every directive out of one line's comment text. Returns directives
/// in order; malformed rule lists yield a directive with empty `rules`.
std::vector<SuppressionDirective> parse_suppressions(const std::string& comment,
                                                     int line, bool own_line);

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Aggregate result of linting one or more sources.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
  /// Finding count per registry rule; every rule is present (zero included)
  /// so JSON consumers see the full registry.
  std::map<std::string, std::size_t> rule_counts;
};

/// A report with rule_counts pre-seeded to zero for every registry rule.
LintReport make_report();

/// Lint a single in-memory source. `rel_path` determines rule scoping and
/// is echoed in findings; `content` is the full file text. Appends to
/// `report` (findings, counts, suppressions_used) and bumps files_scanned.
void lint_source(const std::string& rel_path, const std::string& content,
                 LintReport& report);

/// Walk `rel_paths` (files or directories, relative to `root`), lint every
/// .hpp/.h/.cpp found, and return the combined report. Findings are sorted
/// by (file, line, rule).
LintReport lint_tree(const std::string& root,
                     const std::vector<std::string>& rel_paths);

/// Escape one string for embedding in a JSON string literal (quotes,
/// backslashes, control characters; UTF-8 bytes pass through untouched).
/// Shared by the lint and analyze JSON emitters.
std::string json_escape(const std::string& s);

/// Render "file:line: [rule] message" lines plus a per-rule summary table.
std::string to_human(const LintReport& report);

/// Render the machine-readable report (stable key order, valid JSON).
std::string to_json(const LintReport& report);

/// CLI driver behind the duti_lint binary, separated so tests can pin the
/// exit-code contract: 0 clean, 1 findings, 2 usage or I/O error.
int run_lint_cli(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err);

}  // namespace duti::lint
