// duti-lint: a self-hosted determinism & hygiene linter for the duti tree.
//
// The measurement engine promises bit-identical probes at any DUTI_THREADS
// and exact cache replay (DESIGN.md sections 7-8). That contract is easy to
// break silently: one std::random_device, one wall-clock read inside a
// tally, one iteration over an unordered container in a reduction, one
// floating-point accumulator. duti-lint tokenizes the repo's sources
// (comments and string/char literals stripped, line numbers preserved) and
// enforces a registry of project invariants; see default_rules() for the
// list and DESIGN.md section 9 for the rationale.
//
// Suppressions are inline comments with mandatory justification text:
//
//   code();  // duti-lint: allow(<rule>) -- why this use is deliberate
//
// A suppression comment on its own line applies to the next line. A
// file-scoped variant disables a rule for the whole file:
//
//   // duti-lint: allow-file(<rule>) -- why the whole file is exempt
//
// A suppression with no "-- justification" text is itself a finding
// (rule "bare-suppression"), so exemptions stay documented.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace duti::lint {

/// One rule violation (or suppression-syntax error) at a file:line anchor.
struct Finding {
  std::string file;     ///< repo-relative path, forward slashes
  int line = 0;         ///< 1-based; 0 for file-level findings
  std::string rule;     ///< registry rule name, e.g. "no-wall-clock"
  std::string message;  ///< human-readable explanation
};

/// A registry entry: name, rationale, and the path scopes it applies to.
/// Scoping is prefix-based on the repo-relative path; an empty include list
/// means "everywhere scanned". Excludes win over includes, which is how the
/// thread-pool implementation itself escapes the raw-thread rule.
struct Rule {
  std::string name;
  std::string description;
  std::vector<std::string> include;  ///< path prefixes the rule applies to
  std::vector<std::string> exclude;  ///< path prefixes exempt from the rule
  bool headers_only = false;         ///< restrict to .hpp/.h files
};

/// The project rule registry (order is the report order).
const std::vector<Rule>& default_rules();

/// Aggregate result of linting one or more sources.
struct LintReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
  /// Finding count per registry rule; every rule is present (zero included)
  /// so JSON consumers see the full registry.
  std::map<std::string, std::size_t> rule_counts;
};

/// A report with rule_counts pre-seeded to zero for every registry rule.
LintReport make_report();

/// Lint a single in-memory source. `rel_path` determines rule scoping and
/// is echoed in findings; `content` is the full file text. Appends to
/// `report` (findings, counts, suppressions_used) and bumps files_scanned.
void lint_source(const std::string& rel_path, const std::string& content,
                 LintReport& report);

/// Walk `rel_paths` (files or directories, relative to `root`), lint every
/// .hpp/.h/.cpp found, and return the combined report. Findings are sorted
/// by (file, line, rule).
LintReport lint_tree(const std::string& root,
                     const std::vector<std::string>& rel_paths);

/// Render "file:line: [rule] message" lines plus a per-rule summary table.
std::string to_human(const LintReport& report);

/// Render the machine-readable report (stable key order, valid JSON).
std::string to_json(const LintReport& report);

}  // namespace duti::lint
