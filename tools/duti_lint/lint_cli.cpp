// CLI driver for duti-lint, separated from main() so tests can invoke it
// in-process and pin the exit-code contract:
//
//   0  clean (no findings)
//   1  findings reported
//   2  usage error or I/O error (bad flag, bad root, unwritable --out)
#include "lint.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

namespace duti::lint {
namespace {

int usage(std::ostream& out, int code) {
  out << "usage: duti_lint [--root <dir>] [--json] [--out <file>]"
         " [--list-rules] [paths...]\n"
         "  --root <dir>   repository root to scan (default: .)\n"
         "  --json         machine-readable report on stdout (or --out)\n"
         "  --out <file>   write the report to <file> instead of stdout\n"
         "  --list-rules   print the rule registry and exit\n"
         "  paths          files/dirs relative to root"
         " (default: src bench tests tools)\n";
  return code;
}

}  // namespace

int run_lint_cli(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err) {
  std::string root = ".";
  std::string out_path;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : default_rules()) {
        out << rule.name << "\n    " << rule.description << "\n    scope:";
        if (rule.include.empty()) out << " (everywhere)";
        for (const auto& p : rule.include) out << " " << p;
        for (const auto& p : rule.exclude) out << " -" << p;
        if (rule.headers_only) out << " [headers only]";
        out << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(out, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      err << "duti_lint: unknown option '" << arg << "'\n";
      return usage(err, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tests", "tools"};
  if (!std::filesystem::is_directory(root)) {
    err << "duti_lint: root '" << root << "' is not a directory\n";
    return 2;
  }

  const LintReport report = lint_tree(root, paths);
  const std::string rendered = json ? to_json(report) : to_human(report);
  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::binary);
    if (!file) {
      err << "duti_lint: cannot write '" << out_path << "'\n";
      return 2;
    }
    file << rendered;
  } else {
    out << rendered;
  }
  if (!json && !out_path.empty())
    out << "duti-lint: report written to " << out_path << "\n";
  return report.findings.empty() ? 0 : 1;
}

}  // namespace duti::lint
