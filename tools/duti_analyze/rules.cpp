// Analysis passes for duti-analyze: include-DAG construction + layering
// enforcement, the RNG-stream dataflow rules, the determinism-purity walk
// from src/stats entry points, suppression application (duti-lint grammar),
// and the graph fingerprint.
#include "analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "util/fnv.hpp"

namespace duti::analyze {
namespace {

// ---------------------------------------------------------------------------
// Per-file model
// ---------------------------------------------------------------------------

struct FileModel {
  std::string path;
  std::string module;
  std::vector<std::string> raw_lines;   // include paths live in literals
  std::vector<lint::LexedLine> lines;   // blanked code feeds everything else
  std::vector<Token> tokens;
  std::vector<FunctionDef> defs;
};

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

/// An in-tree #include edge, file-granular, with the directive's line.
struct IncludeEdge {
  std::size_t from = 0, to = 0;
  int line = 0;
};

/// Extract and resolve quoted includes. The LEXED line must be a '#'
/// directive — lines inside raw-string fixtures lex to blank code, so test
/// snippets never pollute the graph. The include path itself is read from
/// the RAW line (the lexer blanks string contents). Resolution: same
/// directory first, then a unique "/name" suffix match across the scanned
/// set; unresolved includes (system headers) are ignored.
std::vector<IncludeEdge> resolve_includes(const std::vector<FileModel>& files) {
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) by_path[files[i].path] = i;

  std::vector<IncludeEdge> edges;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileModel& f = files[fi];
    const std::string dir = f.path.find('/') == std::string::npos
                                ? ""
                                : f.path.substr(0, f.path.rfind('/') + 1);
    for (std::size_t li = 0; li < f.lines.size() && li < f.raw_lines.size();
         ++li) {
      const std::string& code = f.lines[li].code;
      std::size_t p = code.find_first_not_of(" \t");
      if (p == std::string::npos || code[p] != '#') continue;
      p = code.find_first_not_of(" \t", p + 1);
      if (p == std::string::npos || code.compare(p, 7, "include") != 0)
        continue;
      const std::string& raw = f.raw_lines[li];
      const std::size_t q1 = raw.find('"');
      if (q1 == std::string::npos) continue;  // <system> include
      const std::size_t q2 = raw.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string inc = raw.substr(q1 + 1, q2 - q1 - 1);
      if (inc.empty()) continue;

      std::size_t to = files.size();
      auto it = by_path.find(dir + inc);
      if (it != by_path.end()) {
        to = it->second;
      } else {
        std::size_t hits = 0;
        for (std::size_t j = 0; j < files.size(); ++j) {
          const std::string& cand = files[j].path;
          if (cand == inc ||
              (cand.size() > inc.size() + 1 &&
               cand.compare(cand.size() - inc.size() - 1, inc.size() + 1,
                            "/" + inc) == 0)) {
            to = j;
            ++hits;
          }
        }
        if (hits != 1) continue;  // unresolved or ambiguous: not ours
      }
      edges.push_back({fi, to, static_cast<int>(li + 1)});
    }
  }
  return edges;
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

/// module -> layer index, from the policy.
std::map<std::string, std::size_t> layer_index(const LayerPolicy& policy) {
  std::map<std::string, std::size_t> at;
  for (std::size_t l = 0; l < policy.layers.size(); ++l)
    for (const auto& m : policy.layers[l]) at[m] = l;
  return at;
}

bool edge_allowed(const LayerPolicy& policy, const std::string& from,
                  const std::string& to) {
  for (const auto& [a, b] : policy.allowed_edges)
    if (a == from && b == to) return true;
  return false;
}

// ---------------------------------------------------------------------------
// RNG dataflow
// ---------------------------------------------------------------------------

bool is_rng_type(const std::string& t) {
  return t == "Rng" || t == "Xoshiro256pp" || t == "mt19937" ||
         t == "mt19937_64";
}

/// RNG-typed names visible in a def: reference/value parameters plus locals
/// declared (or make_rng-initialized) in the body.
std::set<std::string> rng_names_in_def(const std::vector<Token>& toks,
                                       const FunctionDef& def) {
  std::set<std::string> names;
  for (std::size_t i = def.params_begin; i + 1 < def.params_end; ++i) {
    if (!is_rng_type(toks[i].text)) continue;
    std::size_t j = i + 1;
    while (j < def.params_end &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const"))
      ++j;
    if (j < def.params_end && std::isalpha(static_cast<unsigned char>(
                                  toks[j].text[0])) != 0)
      names.insert(toks[j].text);
  }
  for (std::size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
    const std::string& t = toks[i].text;
    if (is_rng_type(t)) {
      // "Rng name" declares; "Rng&/Rng*" may alias — track the name too.
      std::size_t j = i + 1;
      while (j < def.body_end && (toks[j].text == "&" || toks[j].text == "*"))
        ++j;
      if (j < def.body_end &&
          std::isalpha(static_cast<unsigned char>(toks[j].text[0])) != 0 &&
          !is_rng_type(toks[j].text))
        names.insert(toks[j].text);
    } else if (t == "auto" && i + 2 < def.body_end) {
      // "auto g = make_rng(...)" and "auto g = <rng>;" both yield streams.
      std::size_t j = i + 1;
      while (j < def.body_end && (toks[j].text == "&" || toks[j].text == "*"))
        ++j;
      if (j + 2 < def.body_end && toks[j + 1].text == "=" &&
          (toks[j + 2].text == "make_rng" || names.count(toks[j + 2].text)))
        names.insert(toks[j].text);
    }
  }
  return names;
}

}  // namespace

// ---------------------------------------------------------------------------
// analyze_sources
// ---------------------------------------------------------------------------

AnalyzeReport analyze_sources(const std::vector<SourceFile>& sources,
                              const LayerPolicy& policy) {
  AnalyzeReport report;
  for (const auto& r : default_rules()) report.rule_counts[r.name] = 0;

  std::vector<FileModel> files;
  files.reserve(sources.size());
  for (const auto& src : sources) {
    FileModel f;
    f.path = src.path;
    f.module = module_of(src.path);
    f.raw_lines = split_lines(src.content);
    f.lines = lint::lex_lines(src.content);
    f.tokens = tokenize(f.lines);
    f.defs = find_functions(f.tokens);
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const FileModel& a, const FileModel& b) {
              return a.path < b.path;
            });
  report.files_scanned = files.size();

  std::vector<Finding> raw;
  auto add = [&raw](const std::string& file, int line, const std::string& rule,
                    const std::string& message, const std::string& path = "") {
    raw.push_back({file, line, rule, message, path});
  };

  // --- Layering ------------------------------------------------------------
  const std::vector<IncludeEdge> includes = resolve_includes(files);
  report.include_directives = includes.size();

  const auto layer_of = layer_index(policy);
  {
    std::set<std::string> mods;
    for (const auto& f : files)
      if (!f.module.empty()) mods.insert(f.module);
    report.modules.assign(mods.begin(), mods.end());

    std::set<std::string> unknown_flagged;
    for (const auto& f : files) {
      if (f.module.empty() || layer_of.count(f.module)) continue;
      if (!unknown_flagged.insert(f.module).second) continue;
      add(f.path, 0, "layer-unknown-module",
          "module '" + f.module + "' is not placed by layers.txt; add it "
          "to a layer before it grows includes");
    }

    // Module-level edges, deduplicated, with the first include site as the
    // finding anchor (files are path-sorted, so "first" is deterministic).
    std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>
        edge_site;
    for (const auto& e : includes) {
      const std::string& from = files[e.from].module;
      const std::string& to = files[e.to].module;
      if (from.empty() || to.empty() || from == to) continue;
      edge_site.emplace(std::make_pair(from, to),
                        std::make_pair(files[e.from].path, e.line));
    }
    for (const auto& [edge, site] : edge_site)
      report.module_edges.push_back(edge);

    for (const auto& [edge, site] : edge_site) {
      const auto& [from, to] = edge;
      auto fi = layer_of.find(from), ti = layer_of.find(to);
      if (fi == layer_of.end() || ti == layer_of.end()) continue;
      if (ti->second < fi->second || edge_allowed(policy, from, to)) continue;
      add(site.first, site.second, "layer-violation",
          "include edge " + from + " -> " + to + " is illegal: '" + to +
              "' (layer " + std::to_string(ti->second) +
              ") is not below '" + from + "' (layer " +
              std::to_string(fi->second) +
              ") and layers.txt has no allow entry");
    }

    // Cycle detection over the observed module graph (any edge, legal or
    // not): the layering argument is only sound on a DAG.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [edge, site] : edge_site)
      adj[edge.first].push_back(edge.second);
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    auto dfs = [&](auto&& self, const std::string& u) -> void {
      color[u] = 1;
      stack.push_back(u);
      for (const auto& v : adj[u]) {
        if (color[v] == 1) {
          std::string cyc = v;
          for (std::size_t k = stack.size(); k-- > 0;) {
            cyc += " -> " + stack[k];
            if (stack[k] == v) break;
          }
          const auto& site = edge_site.at({u, v});
          add(site.first, site.second, "layer-cycle",
              "module include cycle: " + cyc);
        } else if (color[v] == 0) {
          self(self, v);
        }
      }
      stack.pop_back();
      color[u] = 2;
    };
    for (const auto& [m, _] : adj)
      if (color[m] == 0) dfs(dfs, m);
  }

  // --- Symbol table & call graph -------------------------------------------
  struct DefRef {
    std::size_t file = 0, def = 0;
  };
  std::vector<DefRef> all_defs;
  std::map<std::string, std::vector<std::size_t>> by_name;  // -> all_defs idx
  for (std::size_t fi = 0; fi < files.size(); ++fi)
    for (std::size_t di = 0; di < files[fi].defs.size(); ++di) {
      by_name[files[fi].defs[di].name].push_back(all_defs.size());
      all_defs.push_back({fi, di});
    }
  report.functions = all_defs.size();

  // Call sites per def: (callee name, line). A name is a call when an
  // identifier is directly followed by '(' and is not a keyword-shaped
  // token the definition finder already excludes.
  std::vector<std::vector<std::pair<std::string, int>>> calls(all_defs.size());
  for (std::size_t d = 0; d < all_defs.size(); ++d) {
    const FileModel& f = files[all_defs[d].file];
    const FunctionDef& def = f.defs[all_defs[d].def];
    for (std::size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
      const std::string& t = f.tokens[i].text;
      if (f.tokens[i + 1].text != "(") continue;
      if (!(std::isalpha(static_cast<unsigned char>(t[0])) != 0 ||
            t[0] == '_'))
        continue;
      if (is_rng_type(t)) continue;  // constructions handled by rng rules
      calls[d].push_back({t, f.tokens[i].line});
    }
  }
  {
    std::set<std::pair<std::size_t, std::size_t>> resolved;
    for (std::size_t d = 0; d < all_defs.size(); ++d)
      for (const auto& [name, line] : calls[d]) {
        auto it = by_name.find(name);
        if (it == by_name.end()) continue;
        for (std::size_t callee : it->second)
          if (callee != d) resolved.insert({d, callee});
      }
    report.call_edges = resolved.size();
  }

  // --- RNG dataflow ---------------------------------------------------------
  for (std::size_t d = 0; d < all_defs.size(); ++d) {
    const FileModel& f = files[all_defs[d].file];
    const FunctionDef& def = f.defs[all_defs[d].def];
    const auto& toks = f.tokens;

    // rng-by-value: RNG type in the parameter list not followed by &/*.
    for (std::size_t i = def.params_begin + 1; i < def.params_end; ++i) {
      if (!is_rng_type(toks[i].text)) continue;
      const std::size_t j = i + 1;
      if (j >= def.params_end) continue;
      const std::string& nx = toks[j].text;
      if (nx == "&" || nx == "*" || nx == "::" || nx == ">") continue;
      add(f.path, toks[i].line, "rng-by-value",
          "parameter of RNG type '" + toks[i].text +
              "' taken by value in '" + def.name +
              "'; the copy replays the caller's stream — take Rng&");
    }

    const std::set<std::string> rngs = rng_names_in_def(toks, def);

    // rng-copy: RNG (or auto) variable initialized FROM a known RNG name.
    for (std::size_t i = def.body_begin; i + 4 < def.body_end; ++i) {
      const std::string& t = toks[i].text;
      if (!is_rng_type(t) && t != "auto") continue;
      const std::size_t nm = i + 1;
      if (!(std::isalpha(static_cast<unsigned char>(toks[nm].text[0])) != 0 ||
            toks[nm].text[0] == '_'))
        continue;
      // "Rng a = b;" / "Rng a(b)" / "Rng a{b}" / "auto a = b;" with b a
      // known stream and no call parens after b.
      std::size_t init = 0;
      if (toks[nm + 1].text == "=")
        init = nm + 2;
      else if (t != "auto" &&
               (toks[nm + 1].text == "(" || toks[nm + 1].text == "{"))
        init = nm + 2;
      if (init == 0 || init >= def.body_end) continue;
      const std::string& src_name = toks[init].text;
      if (!rngs.count(src_name) || toks[nm].text == src_name) continue;
      const std::string& after = toks[init + 1].text;
      if (after == "(" || after == ".") continue;  // call / member: not a copy
      add(f.path, toks[i].line, "rng-copy",
          "'" + toks[nm].text + "' copies RNG '" + src_name + "' in '" +
              def.name +
              "'; both replay one stream — draw from the original or "
              "derive_seed a fresh one");
    }

    // rng-captured-in-parallel: a parallel_for lambda that uses an
    // enclosing RNG name without re-deriving its own stream.
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      if (toks[i].text != "parallel_for" || i + 1 >= def.body_end ||
          toks[i + 1].text != "(")
        continue;
      // Find the lambda inside the call: '[' ... ']' [(params)] '{' body '}'.
      std::size_t call_end = i + 1;
      {
        int depth = 0;
        for (std::size_t k = i + 1; k < def.body_end; ++k) {
          if (toks[k].text == "(") ++depth;
          if (toks[k].text == ")" && --depth == 0) {
            call_end = k;
            break;
          }
        }
      }
      std::size_t lb = 0, le = 0;  // lambda body token range
      for (std::size_t k = i + 2; k < call_end; ++k) {
        if (toks[k].text != "[") continue;
        std::size_t m = k;
        while (m < call_end && toks[m].text != "]") ++m;
        ++m;
        if (m < call_end && toks[m].text == "(") {
          int depth = 0;
          while (m < call_end + 1) {
            if (toks[m].text == "(") ++depth;
            if (toks[m].text == ")" && --depth == 0) {
              ++m;
              break;
            }
            ++m;
          }
        }
        if (m >= def.body_end || toks[m].text != "{") continue;
        lb = m;
        int depth = 0;
        le = def.body_end;
        for (std::size_t b = m; b < def.body_end; ++b) {
          if (toks[b].text == "{") ++depth;
          if (toks[b].text == "}" && --depth == 0) {
            le = b;
            break;
          }
        }
        break;
      }
      if (lb == 0) continue;
      for (const auto& name : rngs) {
        bool shadowed = false, used = false;
        int use_line = 0;
        for (std::size_t k = lb + 1; k < le; ++k) {
          if (toks[k].text != name) continue;
          const std::string& prev = toks[k - 1].text;
          if (is_rng_type(prev) || prev == "auto" ||
              (prev == "&" && k >= 2 && (is_rng_type(toks[k - 2].text) ||
                                         toks[k - 2].text == "auto"))) {
            shadowed = true;
            break;
          }
          if (!used) {
            used = true;
            use_line = toks[k].line;
          }
        }
        if (used && !shadowed)
          add(f.path, use_line, "rng-captured-in-parallel",
              "parallel_for lambda in '" + def.name +
                  "' draws from captured RNG '" + name +
                  "'; derive a per-chunk stream inside the lambda "
                  "(make_rng(derive_seed(...)))");
      }
    }
  }

  // --- Determinism purity ----------------------------------------------------
  {
    // BFS from every def in src/stats; parent pointers give the call path.
    std::vector<std::size_t> parent(all_defs.size(), all_defs.size());
    std::vector<char> reached(all_defs.size(), 0);
    std::vector<std::size_t> queue;
    for (std::size_t d = 0; d < all_defs.size(); ++d)
      if (files[all_defs[d].file].path.rfind("src/stats/", 0) == 0) {
        reached[d] = 1;
        queue.push_back(d);
      }
    report.entry_points = queue.size();
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t d = queue[head];
      for (const auto& [name, line] : calls[d]) {
        auto it = by_name.find(name);
        if (it == by_name.end()) continue;
        for (std::size_t callee : it->second)
          if (!reached[callee]) {
            reached[callee] = 1;
            parent[callee] = d;
            queue.push_back(callee);
          }
      }
    }
    report.reachable_functions = queue.size();

    auto chain = [&](std::size_t d) {
      std::vector<std::string> names;
      for (std::size_t at = d; at < all_defs.size(); at = parent[at]) {
        names.push_back(files[all_defs[at].file].defs[all_defs[at].def].name);
        if (parent[at] >= all_defs.size()) break;
      }
      std::string out;
      for (std::size_t k = names.size(); k-- > 0;)
        out += names[k] + (k == 0 ? "" : " -> ");
      return out;
    };

    for (const std::size_t d : queue) {
      const FileModel& f = files[all_defs[d].file];
      const FunctionDef& def = f.defs[all_defs[d].def];
      const auto& toks = f.tokens;
      const std::string via = chain(d);
      const bool in_stats = f.path.rfind("src/stats/", 0) == 0;

      std::set<std::string> unordered, floats;
      for (std::size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
        const std::string& t = toks[i].text;

        // pure-wall-clock
        if (t == "now" && i >= 1 && toks[i - 1].text == "::" &&
            toks[i + 1].text == "(")
          add(f.path, toks[i].line, "pure-wall-clock",
              "clock ::now() in '" + def.name + "'", via);
        if ((t == "time" || t == "clock" || t == "gettimeofday" ||
             t == "clock_gettime") &&
            toks[i + 1].text == "(")
          add(f.path, toks[i].line, "pure-wall-clock",
              t + "() in '" + def.name + "'", via);

        // pure-locale
        if (t == "setlocale" || t == "imbue" ||
            (t == "locale" && i >= 1 && toks[i - 1].text == "::"))
          add(f.path, toks[i].line, "pure-locale",
              "locale use ('" + t + "') in '" + def.name + "'", via);

        // pure-unordered-iteration: declarations first...
        if (t == "unordered_map" || t == "unordered_set") {
          std::size_t j = i + 1;
          if (j < def.body_end && toks[j].text == "<") {
            int depth = 0;
            while (j < def.body_end) {
              if (toks[j].text == "<") ++depth;
              if (toks[j].text == ">" && --depth == 0) {
                ++j;
                break;
              }
              ++j;
            }
          }
          if (j < def.body_end &&
              (std::isalpha(static_cast<unsigned char>(toks[j].text[0])) !=
                   0 ||
               toks[j].text[0] == '_'))
            unordered.insert(toks[j].text);
        }
        // ...then iteration over a declared name.
        if (unordered.count(t)) {
          const bool range_for = i >= 1 && toks[i - 1].text == ":";
          const bool begin_call =
              i + 3 < def.body_end && toks[i + 1].text == "." &&
              (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin");
          if (range_for || begin_call)
            add(f.path, toks[i].line, "pure-unordered-iteration",
                "iteration over unordered container '" + t + "' in '" +
                    def.name + "'",
                via);
        }

        // pure-float-reduce
        if (t == "accumulate" && toks[i + 1].text == "(") {
          int depth = 0;
          for (std::size_t k = i + 1; k < def.body_end; ++k) {
            if (toks[k].text == "(") ++depth;
            if (toks[k].text == ")" && --depth == 0) break;
            if (depth >= 1 &&
                std::isdigit(static_cast<unsigned char>(toks[k].text[0])) !=
                    0 &&
                toks[k].text.find('.') != std::string::npos) {
              add(f.path, toks[i].line, "pure-float-reduce",
                  "std::accumulate with floating init in '" + def.name +
                      "'; the fold order fixes the result — keep tallies "
                      "integral",
                  via);
              break;
            }
          }
        }
        if (in_stats) {
          if ((t == "double" || t == "float") && i + 1 < def.body_end &&
              (std::isalpha(static_cast<unsigned char>(
                   toks[i + 1].text[0])) != 0 ||
               toks[i + 1].text[0] == '_'))
            floats.insert(toks[i + 1].text);
          if (floats.count(t) && i + 2 < def.body_end &&
              toks[i + 1].text == "+" && toks[i + 2].text == "=")
            add(f.path, toks[i].line, "pure-float-reduce",
                "float accumulation '" + t + " +=' in '" + def.name + "'",
                via);
        }
      }
    }
  }

  // --- Suppressions (duti-lint grammar, analyzer-owned rules only) ----------
  {
    std::set<std::string> own;
    for (const auto& r : default_rules()) own.insert(r.name);

    struct AllowEntry {
      std::string file, rule;
      bool file_scope = false;
      int target = 0, at = 0;
      std::size_t used = 0;
    };
    std::vector<AllowEntry> allows;
    for (const auto& f : files) {
      for (std::size_t i = 0; i < f.lines.size(); ++i) {
        if (f.lines[i].comment.find("duti-lint") == std::string::npos)
          continue;
        const std::string& code = f.lines[i].code;
        const bool own_line =
            code.find_first_not_of(" \t") == std::string::npos;
        for (const auto& s : lint::parse_suppressions(
                 f.lines[i].comment, static_cast<int>(i + 1), own_line)) {
          if (!s.justified) continue;  // duti-lint flags bare suppressions
          for (const auto& name : s.rules) {
            if (!own.count(name)) continue;  // linter-owned: not ours
            AllowEntry e;
            e.file = f.path;
            e.rule = name;
            e.file_scope = s.file_scope;
            e.at = s.line;
            if (!s.file_scope) {
              int target = s.line;
              if (s.own_line) {
                std::size_t j = static_cast<std::size_t>(s.line);
                while (j < f.lines.size() &&
                       f.lines[j].code.find_first_not_of(" \t") ==
                           std::string::npos)
                  ++j;
                target = static_cast<int>(j + 1);
              }
              e.target = target;
            }
            allows.push_back(std::move(e));
          }
        }
      }
    }

    for (auto& f : raw) {
      bool suppressed = false;
      for (auto& e : allows) {
        if (e.file != f.file || e.rule != f.rule) continue;
        if (e.file_scope || e.target == f.line) {
          ++e.used;
          suppressed = true;
          break;
        }
      }
      if (suppressed) {
        ++report.suppressions_used;
        continue;
      }
      ++report.rule_counts[f.rule];
      report.findings.push_back(std::move(f));
    }
    for (const auto& e : allows) {
      if (e.used > 0) continue;
      Finding f{e.file, e.at, "stale-suppression",
                "suppression of analyzer rule '" + e.rule +
                    "' matches no finding " +
                    (e.file_scope ? "in this file" : "on its line") +
                    "; remove it",
                ""};
      ++report.rule_counts[f.rule];
      report.findings.push_back(std::move(f));
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  // --- Fingerprint -----------------------------------------------------------
  // Pure function of the scanned sources: files were path-sorted above and
  // every hashed collection is sorted, so input order cannot leak in.
  {
    Fnv64 h;
    h.u64(report.modules.size());
    for (const auto& m : report.modules) h.str(m);
    h.u64(report.module_edges.size());
    for (const auto& [a, b] : report.module_edges) {
      h.str(a);
      h.str(b);
    }
    std::vector<std::string> defs;
    for (const auto& f : files)
      for (const auto& d : f.defs)
        defs.push_back(f.path + ":" + d.name + ":" + std::to_string(d.line));
    std::sort(defs.begin(), defs.end());
    h.u64(defs.size());
    for (const auto& s : defs) h.str(s);
    h.u64(report.call_edges);
    h.u64(report.include_directives);
    for (const auto& [rule, count] : report.rule_counts) {
      h.str(rule);
      h.u64(count);
    }
    report.fingerprint = h.value();
  }
  return report;
}

// ---------------------------------------------------------------------------
// analyze_tree
// ---------------------------------------------------------------------------

AnalyzeReport analyze_tree(const std::string& root,
                           const std::vector<std::string>& rel_paths,
                           const std::string& layers_path) {
  namespace fs = std::filesystem;
  const std::string policy_file =
      layers_path.empty() ? (fs::path(root) / "tools/duti_analyze/layers.txt")
                                .generic_string()
                          : layers_path;
  std::ifstream pin(policy_file, std::ios::binary);
  if (!pin)
    throw std::runtime_error("cannot read layer policy '" + policy_file + "'");
  std::ostringstream pbuf;
  pbuf << pin.rdbuf();
  LayerPolicy policy;
  std::string error;
  if (!parse_layer_policy(pbuf.str(), policy, error))
    throw std::runtime_error("bad layer policy '" + policy_file +
                             "': " + error);

  std::vector<std::string> paths = rel_paths;
  if (paths.empty()) paths = {"src", "bench", "tests", "tools", "examples"};
  std::vector<SourceFile> sources;
  auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext != ".hpp" && ext != ".h" && ext != ".cpp" && ext != ".cc") return;
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({fs::relative(p, root).generic_string(), buf.str()});
  };
  for (const auto& rel : paths) {
    const fs::path p = fs::path(root) / rel;
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p))
        if (e.is_regular_file()) consider(e.path());
    } else if (fs::is_regular_file(p)) {
      consider(p);
    }
  }
  return analyze_sources(sources, policy);
}

}  // namespace duti::analyze
