// duti-analyze: cross-TU semantic analysis for the duti tree (DESIGN.md §13).
//
// duti-lint (tools/duti_lint) enforces invariants one line at a time; this
// tool enforces the ones that live BETWEEN translation units:
//
//   1. Layering. #include directives across src/, bench/, tests/, tools/,
//      and examples/ form a module DAG that must respect the declared
//      layering in tools/duti_analyze/layers.txt — no cycles, no edges into
//      the same or a higher layer (rules layer-violation, layer-cycle,
//      layer-unknown-module).
//   2. RNG-stream dataflow. Functions must not take an RNG by value, copy
//      an RNG object, or draw from a captured RNG inside a parallel_for
//      lambda — every parallel stream derives its own seed (rules
//      rng-by-value, rng-copy, rng-captured-in-parallel).
//   3. Determinism purity. Walking the call graph from every function
//      defined in src/stats (the probe/reduction layer), transitively
//      reachable code must be free of wall-clock reads, locale use,
//      unordered-container iteration, and float accumulation (rules
//      pure-wall-clock, pure-locale, pure-unordered-iteration,
//      pure-float-reduce). This extends duti-lint's file-local rules to
//      everything the reduction paths can actually execute.
//
// Everything is built on duti-lint's lexer (lint::lex_lines) and reuses its
// suppression grammar verbatim: `// duti-lint: allow(<rule>) -- why`.
// Directives naming analyzer rules are credited here (and go stale here);
// directives naming linter rules are ignored here and handled by duti-lint.
// The two registries are pinned against each other by test_duti_analyze.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace duti::analyze {

/// One rule violation at a file:line anchor. `path` is non-empty only for
/// purity findings: the call chain from the src/stats entry point to the
/// offending function, rendered "entry -> mid -> leaf".
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string path;
};

/// A registry entry (name + rationale; scoping is built into each pass).
struct Rule {
  std::string name;
  std::string description;
};

/// The analyzer rule registry (order is the report order). Every name here
/// must appear in lint::foreign_rule_names() except "stale-suppression",
/// which both tools own for their respective registries.
const std::vector<Rule>& default_rules();

// ---------------------------------------------------------------------------
// Layer policy (layers.txt)
// ---------------------------------------------------------------------------

/// Parsed layering policy. `layers[i]` lists the modules of layer i (lowest
/// first); an include edge A -> B is legal iff layer(B) < layer(A), A == B,
/// or (A, B) is in `allowed_edges`. Same-layer sibling edges are illegal by
/// default — siblings share a layer precisely because they must not know
/// about each other.
struct LayerPolicy {
  std::vector<std::vector<std::string>> layers;
  std::vector<std::pair<std::string, std::string>> allowed_edges;
};

/// Parse the layers.txt grammar:
///
///   # comment
///   layer <module> [<module>...]     (one line per layer, lowest first)
///   allow <from> <to>                (extra legal edge)
///
/// Returns false and sets `error` on malformed lines or duplicate modules.
bool parse_layer_policy(const std::string& text, LayerPolicy& policy,
                        std::string& error);

/// Module of a repo-relative path: second component under src/ ("src/util/…"
/// -> "util"), first component otherwise ("bench/…" -> "bench", "tools/…" ->
/// "tools"). Empty for paths with no directory.
std::string module_of(const std::string& rel_path);

// ---------------------------------------------------------------------------
// Token stream & symbol table, built on lint::lex_lines
// ---------------------------------------------------------------------------

/// One token of blanked code: identifiers, numbers, string/char blanks
/// ("" / ''), and punctuation ("::" and "->" combined, else single chars).
struct Token {
  std::string text;
  int line = 0;  ///< 1-based
};

std::vector<Token> tokenize(const std::vector<lint::LexedLine>& lines);

/// One function definition found in a token stream. Indices are into the
/// tokenize() result; ranges are [begin, end) with `end` one past the
/// closing ')' / '}'. Lambdas are not definitions — their bodies belong to
/// the enclosing function, which is what the dataflow rules want.
struct FunctionDef {
  std::string name;          ///< simple (unqualified) name
  int line = 0;              ///< line of the name token
  std::size_t params_begin = 0, params_end = 0;
  std::size_t body_begin = 0, body_end = 0;
};

/// Heuristic definition finder: identifier + '(' whose matched paren group
/// is followed (modulo const/noexcept(...)/trailing-return/ctor-init-list)
/// by '{'. Deliberately under-approximating: a construct it cannot prove to
/// be a definition is skipped, never misattributed.
std::vector<FunctionDef> find_functions(const std::vector<Token>& tokens);

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// One input file (repo-relative path + full contents).
struct SourceFile {
  std::string path;
  std::string content;
};

struct AnalyzeReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
  /// Finding count per registry rule; every rule present (zeros included).
  std::map<std::string, std::size_t> rule_counts;
  /// The module DAG actually observed (sorted, deduplicated).
  std::vector<std::string> modules;
  std::vector<std::pair<std::string, std::string>> module_edges;
  std::size_t include_directives = 0;  ///< resolved in-tree includes
  std::size_t functions = 0;           ///< definitions found
  std::size_t call_edges = 0;          ///< name-resolved call-graph edges
  std::size_t entry_points = 0;        ///< defs in src/stats
  std::size_t reachable_functions = 0; ///< defs reachable from entries
  /// FNV-1a over the sorted module edges, function names, and call edges.
  /// A pure function of the scanned sources: invariant to input order,
  /// thread count, and environment.
  std::uint64_t fingerprint = 0;
};

/// Analyze in-memory sources against a policy. Findings are sorted by
/// (file, line, rule); rule_counts is pre-seeded with zeros.
AnalyzeReport analyze_sources(const std::vector<SourceFile>& files,
                              const LayerPolicy& policy);

/// Walk `rel_paths` under `root` (default scan set when empty: src bench
/// tests tools examples), load every .hpp/.h/.cpp/.cc, and analyze against
/// the policy at `root`/tools/duti_analyze/layers.txt (or `layers_path`
/// when non-empty). Throws std::runtime_error on unreadable policy.
AnalyzeReport analyze_tree(const std::string& root,
                           const std::vector<std::string>& rel_paths,
                           const std::string& layers_path = "");

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

/// "file:line: [rule] message (via path)" lines plus a summary table.
std::string to_human(const AnalyzeReport& report);

/// Machine-readable report (stable key order, valid JSON).
std::string to_json(const AnalyzeReport& report);

/// The observed module DAG in Graphviz dot format, layer-ranked when a
/// policy is supplied (illegal edges are not special-cased: render what is).
std::string to_dot(const AnalyzeReport& report, const LayerPolicy& policy);

/// CLI driver behind the duti_analyze binary; exit codes as duti_lint:
/// 0 clean, 1 findings, 2 usage or I/O error.
int run_analyze_cli(int argc, const char* const* argv, std::ostream& out,
                    std::ostream& err);

}  // namespace duti::analyze
