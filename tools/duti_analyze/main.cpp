// duti_analyze binary entry point. All logic lives in run_analyze_cli
// (analyze_cli.cpp) so tests can pin flags and exit codes in-process.
#include <iostream>

#include "analyze.hpp"

int main(int argc, char** argv) {
  return duti::analyze::run_analyze_cli(argc, argv, std::cout, std::cerr);
}
