// CLI driver for duti-analyze, separated from main() so tests can invoke it
// in-process. Exit codes match duti_lint: 0 clean, 1 findings, 2 usage or
// I/O error. --bench-json stamps BENCH_analyze.json via the shared
// bench::emit_bench_json helper (same header as every other artifact).
#include "analyze.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bench/bench_json.hpp"

namespace duti::analyze {
namespace {

int usage(std::ostream& out, int code) {
  out << "usage: duti_analyze [--root <dir>] [--layers <file>] [--json]"
         " [--out <file>] [--dot] [--list-rules] [--bench-json] [paths...]\n"
         "  --root <dir>    repository root to scan (default: .)\n"
         "  --layers <file> layer policy (default: "
         "<root>/tools/duti_analyze/layers.txt)\n"
         "  --json          machine-readable report on stdout (or --out)\n"
         "  --out <file>    write the report to <file> instead of stdout\n"
         "  --dot           emit the module DAG as Graphviz dot\n"
         "  --list-rules    print the rule registry and exit\n"
         "  --bench-json    also stamp $DUTI_BENCH_OUT/BENCH_analyze.json\n"
         "  paths           files/dirs relative to root"
         " (default: src bench tests tools examples)\n";
  return code;
}

/// Graph metrics + rule counts, stamped with the standard bench header so
/// BENCH_analyze.json diffs like every other artifact. The fingerprint is a
/// pure function of the sources — identical at any DUTI_THREADS.
void stamp_bench_json(const AnalyzeReport& report) {
  char fp[24];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(report.fingerprint));
  std::string counts = "{";
  bool first = true;
  for (const auto& [rule, count] : report.rule_counts) {
    counts += std::string(first ? "" : ", ") + bench::json_str(rule) + ": " +
              bench::json_u64(count);
    first = false;
  }
  counts += "}";
  const std::string path = bench::emit_bench_json(
      "analyze",
      {{"fingerprint", bench::json_str(fp)},
       {"files_scanned", bench::json_u64(report.files_scanned)},
       {"modules", bench::json_u64(report.modules.size())},
       {"module_edges", bench::json_u64(report.module_edges.size())},
       {"include_directives", bench::json_u64(report.include_directives)},
       {"functions", bench::json_u64(report.functions)},
       {"call_edges", bench::json_u64(report.call_edges)},
       {"entry_points", bench::json_u64(report.entry_points)},
       {"reachable_functions",
        bench::json_u64(report.reachable_functions)},
       {"suppressions_used", bench::json_u64(report.suppressions_used)},
       {"total_findings", bench::json_u64(report.findings.size())},
       {"rule_counts", counts}});
  if (!path.empty()) std::printf("duti-analyze: stamped %s\n", path.c_str());
}

}  // namespace

int run_analyze_cli(int argc, const char* const* argv, std::ostream& out,
                    std::ostream& err) {
  std::string root = ".";
  std::string layers_path;
  std::string out_path;
  bool json = false, dot = false, bench_json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--bench-json") {
      bench_json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : default_rules())
        out << rule.name << "\n    " << rule.description << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(out, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      err << "duti_analyze: unknown option '" << arg << "'\n";
      return usage(err, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (!std::filesystem::is_directory(root)) {
    err << "duti_analyze: root '" << root << "' is not a directory\n";
    return 2;
  }

  AnalyzeReport report;
  LayerPolicy policy;
  try {
    const std::string policy_file =
        layers_path.empty()
            ? (std::filesystem::path(root) / "tools/duti_analyze/layers.txt")
                  .generic_string()
            : layers_path;
    std::ifstream pin(policy_file, std::ios::binary);
    if (!pin) throw std::runtime_error("cannot read '" + policy_file + "'");
    std::ostringstream pbuf;
    pbuf << pin.rdbuf();
    std::string error;
    if (!parse_layer_policy(pbuf.str(), policy, error))
      throw std::runtime_error(policy_file + ": " + error);
    report = analyze_tree(root, paths, policy_file);
  } catch (const std::exception& e) {
    err << "duti_analyze: " << e.what() << "\n";
    return 2;
  }

  const std::string rendered = dot    ? to_dot(report, policy)
                               : json ? to_json(report)
                                      : to_human(report);
  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::binary);
    if (!file) {
      err << "duti_analyze: cannot write '" << out_path << "'\n";
      return 2;
    }
    file << rendered;
  } else {
    out << rendered;
  }
  if (bench_json) stamp_bench_json(report);
  return report.findings.empty() ? 0 : 1;
}

}  // namespace duti::analyze
