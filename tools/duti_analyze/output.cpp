// Report renderers for duti-analyze: human-readable, machine-readable JSON
// (stable key order; escaping shared with duti-lint via lint::json_escape),
// and the module DAG in Graphviz dot.
#include "analyze.hpp"

#include <cstdio>
#include <sstream>

namespace duti::analyze {

std::string to_human(const AnalyzeReport& report) {
  std::ostringstream out;
  for (const auto& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
    if (!f.path.empty()) out << " (reachable via " << f.path << ")";
    out << "\n";
  }
  out << "\nduti-analyze: " << report.findings.size() << " finding"
      << (report.findings.size() == 1 ? "" : "s") << " in "
      << report.files_scanned << " files ("
      << report.suppressions_used << " justified suppression"
      << (report.suppressions_used == 1 ? "" : "s") << " applied)\n";
  out << "  modules=" << report.modules.size()
      << " edges=" << report.module_edges.size()
      << " includes=" << report.include_directives
      << " functions=" << report.functions
      << " call_edges=" << report.call_edges
      << " entries=" << report.entry_points
      << " reachable=" << report.reachable_functions << "\n";
  char fp[24];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(report.fingerprint));
  out << "  fingerprint=" << fp << "\n";
  for (const auto& [rule, count] : report.rule_counts) {
    if (count > 0) out << "  " << rule << ": " << count << "\n";
  }
  return out.str();
}

std::string to_json(const AnalyzeReport& report) {
  using lint::json_escape;
  std::ostringstream out;
  out << "{\n  \"tool\": \"duti_analyze\",\n  \"schema_version\": 1,\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"suppressions_used\": " << report.suppressions_used << ",\n";
  out << "  \"total_findings\": " << report.findings.size() << ",\n";
  char fp[24];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(report.fingerprint));
  out << "  \"fingerprint\": \"" << fp << "\",\n";
  out << "  \"graph\": {\"modules\": " << report.modules.size()
      << ", \"module_edges\": " << report.module_edges.size()
      << ", \"include_directives\": " << report.include_directives
      << ", \"functions\": " << report.functions
      << ", \"call_edges\": " << report.call_edges
      << ", \"entry_points\": " << report.entry_points
      << ", \"reachable_functions\": " << report.reachable_functions
      << "},\n";
  out << "  \"module_edges\": [";
  bool first = true;
  for (const auto& [a, b] : report.module_edges) {
    out << (first ? "\n" : ",\n") << "    [\"" << json_escape(a) << "\", \""
        << json_escape(b) << "\"]";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"rule_counts\": {";
  first = true;
  for (const auto& [rule, count] : report.rule_counts) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(rule)
        << "\": " << count;
    first = false;
  }
  out << "\n  },\n  \"findings\": [";
  first = true;
  for (const auto& f : report.findings) {
    out << (first ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\", \"path\": \""
        << json_escape(f.path) << "\"}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string to_dot(const AnalyzeReport& report, const LayerPolicy& policy) {
  std::ostringstream out;
  out << "digraph duti_modules {\n  rankdir=BT;\n  node [shape=box];\n";
  for (std::size_t l = 0; l < policy.layers.size(); ++l) {
    out << "  { rank=same;";
    for (const auto& m : policy.layers[l]) out << " \"" << m << "\";";
    out << " }  // layer " << l << "\n";
  }
  for (const auto& [a, b] : report.module_edges)
    out << "  \"" << a << "\" -> \"" << b << "\";\n";
  out << "}\n";
  return out.str();
}

}  // namespace duti::analyze
