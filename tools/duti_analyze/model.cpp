// Model layer for duti-analyze: the rule registry, the layers.txt parser,
// module naming, the token stream, and the function-definition finder.
// Everything downstream (rules.cpp) is built from these pieces.
#include "analyze.hpp"

#include <cctype>
#include <set>
#include <sstream>

namespace duti::analyze {

const std::vector<Rule>& default_rules() {
  static const std::vector<Rule> rules = {
      {"layer-violation",
       "#include edge crosses into the same or a higher layer than the "
       "including module (layers.txt)"},
      {"layer-cycle",
       "the module include graph contains a cycle; the layering must be a "
       "DAG"},
      {"layer-unknown-module",
       "file belongs to a module that layers.txt does not place"},
      {"rng-by-value",
       "function takes an RNG parameter by value; each copy replays the "
       "same stream — pass Rng& (or derive a sub-stream seed)"},
      {"rng-copy",
       "RNG object copied; the copy replays the original's stream — draw "
       "from the original or derive a fresh stream via derive_seed/make_rng"},
      {"rng-captured-in-parallel",
       "parallel_for lambda draws from an RNG captured from the enclosing "
       "scope; worker interleaving breaks bit-identical replay — derive a "
       "per-chunk stream (derive_seed + make_rng) inside the lambda"},
      {"pure-wall-clock",
       "wall-clock read reachable from a src/stats entry point; probe "
       "results must be a pure function of seeds"},
      {"pure-locale",
       "locale use reachable from a src/stats entry point; formatting and "
       "classification must not depend on the process environment"},
      {"pure-unordered-iteration",
       "unordered-container iteration reachable from a src/stats entry "
       "point; iteration order varies across runs and libraries"},
      {"pure-float-reduce",
       "floating-point accumulation reachable from a src/stats entry "
       "point; reductions must stay integral (ProbeResult design)"},
      {"stale-suppression",
       "justified suppression of an analyzer rule that produces no finding "
       "on its line/file; delete it so exemptions track reality"},
  };
  return rules;
}

// ---------------------------------------------------------------------------
// layers.txt
// ---------------------------------------------------------------------------

bool parse_layer_policy(const std::string& text, LayerPolicy& policy,
                        std::string& error) {
  policy = LayerPolicy{};
  std::istringstream in(text);
  std::string line;
  std::set<std::string> seen;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::vector<std::string> w;
    std::string word;
    while (words >> word) w.push_back(word);
    if (w.empty()) continue;
    if (w[0] == "layer") {
      if (w.size() < 2) {
        error = "line " + std::to_string(lineno) + ": layer with no modules";
        return false;
      }
      std::vector<std::string> mods(w.begin() + 1, w.end());
      for (const auto& m : mods) {
        if (!seen.insert(m).second) {
          error = "line " + std::to_string(lineno) + ": duplicate module '" +
                  m + "'";
          return false;
        }
      }
      policy.layers.push_back(std::move(mods));
    } else if (w[0] == "allow") {
      if (w.size() != 3) {
        error = "line " + std::to_string(lineno) +
                ": allow expects exactly '<from> <to>'";
        return false;
      }
      policy.allowed_edges.emplace_back(w[1], w[2]);
    } else {
      error = "line " + std::to_string(lineno) + ": unknown directive '" +
              w[0] + "'";
      return false;
    }
  }
  if (policy.layers.empty()) {
    error = "policy declares no layers";
    return false;
  }
  // allow edges must reference placed modules, or the whitelist rots.
  for (const auto& [from, to] : policy.allowed_edges) {
    for (const auto& m : {from, to}) {
      if (!seen.count(m)) {
        error = "allow references unplaced module '" + m + "'";
        return false;
      }
    }
  }
  return true;
}

std::string module_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.find('/');
  if (slash == std::string::npos) return "";
  std::string first = rel_path.substr(0, slash);
  if (first != "src") return first;
  const std::size_t slash2 = rel_path.find('/', slash + 1);
  if (slash2 == std::string::npos) return "";
  return rel_path.substr(slash + 1, slash2 - slash - 1);
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::vector<lint::LexedLine>& lines) {
  std::vector<Token> out;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li].code;
    const int line = static_cast<int>(li + 1);
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        out.push_back({s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        // pp-number: digits, idents, '.', and the digit separators the
        // lexer leaves intact (1'000'000). Exponent signs are split off —
        // none of the downstream rules care.
        std::size_t j = i + 1;
        while (j < s.size() &&
               (is_ident_char(s[j]) || s[j] == '.' || s[j] == '\''))
          ++j;
        out.push_back({s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        // The lexer blanked literal contents, so literals appear as an
        // adjacent quote pair; emit it as one token.
        if (i + 1 < s.size() && s[i + 1] == c) {
          out.push_back({std::string(2, c), line});
          i += 2;
          continue;
        }
        out.push_back({std::string(1, c), line});
        ++i;
        continue;
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        out.push_back({"::", line});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        out.push_back({"->", line});
        i += 2;
        continue;
      }
      out.push_back({std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Function definitions
// ---------------------------------------------------------------------------

namespace {

/// Keywords that read as `name(...)` but never name a definition.
bool is_nondef_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "if",            "for",        "while",      "switch",
      "return",        "sizeof",     "catch",      "new",
      "delete",        "assert",     "static_assert", "decltype",
      "alignof",       "alignas",    "defined",    "noexcept",
      "throw",         "case",       "constexpr",  "requires",
      "static_cast",   "dynamic_cast", "const_cast", "reinterpret_cast",
      "typeid",        "using",      "operator"};
  return kw.count(t) > 0;
}

/// Index one past the group closer matching the opener at `at` (tokens[at]
/// must be `open`). Returns tokens.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& tokens, std::size_t at,
                       const char* open, const char* close) {
  int depth = 0;
  for (std::size_t i = at; i < tokens.size(); ++i) {
    if (tokens[i].text == open) ++depth;
    if (tokens[i].text == close && --depth == 0) return i + 1;
  }
  return tokens.size();
}

}  // namespace

std::vector<FunctionDef> find_functions(const std::vector<Token>& tokens) {
  std::vector<FunctionDef> out;
  const std::size_t n = tokens.size();
  std::size_t i = 0;
  while (i + 1 < n) {
    const Token& t = tokens[i];
    if (!is_ident_start(t.text[0]) || is_nondef_keyword(t.text) ||
        tokens[i + 1].text != "(") {
      ++i;
      continue;
    }
    const std::size_t params_begin = i + 1;
    const std::size_t params_end = skip_group(tokens, params_begin, "(", ")");
    if (params_end >= n) break;

    // Trailer scan: const / noexcept(...) / override / -> Type / ctor init
    // list, ending at '{' (definition) or a terminator (not a definition).
    std::size_t j = params_end;
    bool init_list = false;
    bool is_def = false;
    while (j < n) {
      const std::string& w = tokens[j].text;
      if (w == "{") {
        // In a ctor init list, a brace directly after an identifier is a
        // member brace-init group, not the body.
        if (init_list && j > 0 && is_ident_start(tokens[j - 1].text[0])) {
          j = skip_group(tokens, j, "{", "}");
          continue;
        }
        is_def = true;
        break;
      }
      if (w == ";") break;
      // Commas separate ctor initializers; elsewhere they end a candidate.
      if (!init_list && (w == "," || w == "=" || w == ")" || w == "}")) break;
      if (w == "(") {
        j = skip_group(tokens, j, "(", ")");  // noexcept(...), init-list arg
        continue;
      }
      if (w == ":") init_list = true;
      ++j;
    }
    if (!is_def) {
      // Not a definition; resume after the name so nested call arguments
      // are still visited.
      ++i;
      continue;
    }
    FunctionDef def;
    def.name = t.text;
    def.line = t.line;
    def.params_begin = params_begin;
    def.params_end = params_end;
    def.body_begin = j;
    def.body_end = skip_group(tokens, j, "{", "}");
    out.push_back(def);
    i = def.body_end;  // nested lambdas stay inside this body
  }
  return out;
}

}  // namespace duti::analyze
