// Determinism regression for the parallel measurement engine: every probe
// and search result must be bit-for-bit identical to the serial path at any
// thread count (ISSUE 2 acceptance criterion; DESIGN.md §7).
#include <gtest/gtest.h>

#include "stats/harness.hpp"
#include "stats/workloads.hpp"
#include "testers/collision.hpp"
#include "testers/fixed_threshold.hpp"
#include "util/error.hpp"

namespace duti {
namespace {

void expect_probe_equal(const ProbeResult& a, const ProbeResult& b) {
  EXPECT_DOUBLE_EQ(a.uniform_accept_rate, b.uniform_accept_rate);
  EXPECT_DOUBLE_EQ(a.far_reject_rate, b.far_reject_rate);
  EXPECT_DOUBLE_EQ(a.uniform_ci.lo, b.uniform_ci.lo);
  EXPECT_DOUBLE_EQ(a.uniform_ci.hi, b.uniform_ci.hi);
  EXPECT_DOUBLE_EQ(a.far_ci.lo, b.far_ci.lo);
  EXPECT_DOUBLE_EQ(a.far_ci.hi, b.far_ci.hi);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.uniform_successes, b.uniform_successes);
  EXPECT_EQ(a.far_successes, b.far_successes);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.uniform_aborts_quorum, b.uniform_aborts_quorum);
  EXPECT_EQ(a.uniform_aborts_timeout, b.uniform_aborts_timeout);
  EXPECT_EQ(a.far_aborts_quorum, b.far_aborts_quorum);
  EXPECT_EQ(a.far_aborts_timeout, b.far_aborts_timeout);
}

// A representative tester: draws samples and thresholds collision pairs,
// consuming source and run randomness like the real protocol testers do.
TesterRun noisy_collision_tester() {
  return [](const SampleSource& source, Rng& rng) {
    std::vector<std::uint64_t> samples;
    source.sample_many(rng, 48, samples);
    const double expected = expected_collision_pairs_uniform(
        static_cast<double>(source.domain_size()), 48);
    return static_cast<double>(collision_pairs(samples)) <=
           expected + 1.0 + rng.next_double();
  };
}

TEST(ParallelProbe, BitIdenticalAcrossThreadCounts) {
  const TesterRun tester = noisy_collision_tester();
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(tester, workloads::uniform_factory(256),
                    workloads::paninski_far_factory(256, 0.5), 400, 11, serial);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel =
        probe_success(tester, workloads::uniform_factory(256),
                      workloads::paninski_far_factory(256, 0.5), 400, 11, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(ParallelProbe, RealTesterBitIdentical) {
  const FixedThresholdTester tester({64, 8, 16, 0.5, 2});
  const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
    return tester.run(src, rng);
  };
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(run, workloads::uniform_factory(64),
                    workloads::paninski_far_factory(64, 0.5), 200, 3, serial);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel =
        probe_success(run, workloads::uniform_factory(64),
                      workloads::paninski_far_factory(64, 0.5), 200, 3, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(ParallelProbeEx, AbortAttributionBitIdentical) {
  // Outcome depends on the trial's sample and run streams, with all four
  // referee outcomes reachable — exercises every abort tally.
  const TesterRunEx tester = [](const SampleSource& source, Rng& rng) {
    const std::uint64_t s = source.sample(rng);
    const double u = rng.next_double();
    if (u < 0.10) return RefereeOutcome::kAbortQuorum;
    if (u < 0.25) return RefereeOutcome::kAbortTimeout;
    return (s + static_cast<std::uint64_t>(u * 1000.0)) % 3 == 0
               ? RefereeOutcome::kAccept
               : RefereeOutcome::kReject;
  };
  ThreadPool serial(1);
  const ProbeResult reference = probe_success_ex(
      tester, workloads::uniform_factory(128),
      workloads::paninski_far_factory(128, 0.5), 500, 17, serial);
  EXPECT_GT(reference.aborts(), 0u);  // the scenario actually aborts
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel = probe_success_ex(
        tester, workloads::uniform_factory(128),
        workloads::paninski_far_factory(128, 0.5), 500, 17, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(ParallelProbe, SourceHoistDoesNotChangeResults) {
  // The same uniform factory, once with the trial-invariant promise (per-
  // worker cached source) and once wrapped as trial-varying (fresh heap
  // source per trial): identical results, because the factory ignores rng.
  const TesterRun tester = noisy_collision_tester();
  const SourceSpec invariant = workloads::uniform_factory(256);
  ASSERT_TRUE(invariant.trial_invariant());
  const SourceSpec varying(invariant.factory(), /*trial_invariant=*/false);
  ThreadPool pool(4);
  const ProbeResult a =
      probe_success(tester, invariant,
                    workloads::paninski_far_factory(256, 0.5), 300, 23, pool);
  const ProbeResult b =
      probe_success(tester, varying,
                    workloads::paninski_far_factory(256, 0.5), 300, 23, pool);
  expect_probe_equal(a, b);
}

TEST(ParallelSearch, SpeculativeMinimumMatchesSerial) {
  // Statistically monotone synthetic probe: pure per value, noisy cutoff.
  const ProbeFn probe = [](std::uint64_t value) {
    ProbeResult r;
    r.trials = 1;
    const std::uint64_t cutoff = 93 + (derive_seed(5, value) % 9);
    r.uniform_accept_rate = value >= cutoff ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;
  ThreadPool serial(1);
  const auto reference = find_min_param(probe, cfg, serial);
  ASSERT_TRUE(reference.found);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const auto speculative = find_min_param(probe, cfg, pool);
    SCOPED_TRACE(threads);
    ASSERT_TRUE(speculative.found);
    EXPECT_EQ(speculative.minimum, reference.minimum);
    // The audit trail replays the serial consultation sequence exactly.
    ASSERT_EQ(speculative.probes.size(), reference.probes.size());
    for (std::size_t i = 0; i < reference.probes.size(); ++i) {
      EXPECT_EQ(speculative.probes[i].first, reference.probes[i].first);
    }
  }
}

TEST(ParallelSearch, SpeculativeProbeFailuresDoNotEscape) {
  // Probes can have validity limits (e.g. a tester config that only exists
  // for small q). Speculation may evaluate values past where the serial
  // search stops; a failure there must stay invisible unless the serial
  // decision sequence actually consults that value. Regression: e3_threshold
  // aborted at DUTI_THREADS=8 because a speculated rung beyond the passing
  // point threw in FixedThresholdTester's Poisson quantile.
  const ProbeFn probe = [](std::uint64_t value) {
    if (value > 128) throw InvalidArgument("probe: value out of range");
    ProbeResult r;
    r.trials = 1;
    r.uniform_accept_rate = value >= 100 ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;  // ladder reaches far past the validity limit
  ThreadPool serial(1);
  const auto reference = find_min_param(probe, cfg, serial);
  ASSERT_TRUE(reference.found);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(threads);
    const auto speculative = find_min_param(probe, cfg, pool);
    ASSERT_TRUE(speculative.found);
    EXPECT_EQ(speculative.minimum, reference.minimum);
    ASSERT_EQ(speculative.probes.size(), reference.probes.size());
  }
  // When the serial sequence itself consults a throwing value, every thread
  // count must surface the same exception.
  cfg.lo = 200;  // first consulted value is already out of range
  EXPECT_THROW(find_min_param(probe, cfg, serial), InvalidArgument);
  ThreadPool wide(8);
  EXPECT_THROW(find_min_param(probe, cfg, wide), InvalidArgument);
}

TEST(ParallelSearch, GivesUpIdentically) {
  const ProbeFn probe = [](std::uint64_t) { return ProbeResult{}; };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 64;
  ThreadPool pool(8);
  const auto result = find_min_param(probe, cfg, pool);
  EXPECT_FALSE(result.found);
}

TEST(ParallelSearch, MedianMatchesSerial) {
  auto make_probe = [](std::uint64_t seed) -> ProbeFn {
    return [seed](std::uint64_t value) {
      ProbeResult r;
      const std::uint64_t cutoff = 95 + (derive_seed(seed, value) % 11);
      r.uniform_accept_rate = value >= cutoff ? 1.0 : 0.0;
      r.far_reject_rate = 1.0;
      return r;
    };
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 4096;
  ThreadPool serial(1);
  const double reference = find_min_param_median(make_probe, cfg, 5, serial);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(threads);
    EXPECT_DOUBLE_EQ(find_min_param_median(make_probe, cfg, 5, pool),
                     reference);
  }
}

TEST(AdaptiveProbe, BitIdenticalAcrossThreadCounts) {
  // The stopping point is decided from integer tallies at FIXED batch
  // boundaries, so the adaptive result — including where it stopped — is
  // bit-identical at any thread count (the DUTI_THREADS=1 vs 8 criterion).
  const TesterRun tester = noisy_collision_tester();
  ThreadPool serial(1);
  const ProbeResult reference = probe_success_adaptive(
      tester, workloads::uniform_factory(256),
      workloads::paninski_far_factory(256, 0.5), 400, 11, {}, serial);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel = probe_success_adaptive(
        tester, workloads::uniform_factory(256),
        workloads::paninski_far_factory(256, 0.5), 400, 11, {}, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(AdaptiveProbe, AgreesWithFullBudgetOnSeedSweep) {
  // On instances away from the knife edge the certified verdict equals the
  // full-budget verdict seed for seed (the certificate soundness claim).
  const TesterRun easy = [](const SampleSource& source, Rng& rng) {
    // Strong separation: far sources (l1 > 0) almost always rejected.
    std::vector<std::uint64_t> samples;
    source.sample_many(rng, 64, samples);
    const double expected = expected_collision_pairs_uniform(
        static_cast<double>(source.domain_size()), 64);
    return static_cast<double>(collision_pairs(samples)) <= expected + 3.0;
  };
  ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ProbeResult full = probe_success(
        easy, workloads::uniform_factory(64),
        workloads::paninski_far_factory(64, 1.0), 320, seed, pool);
    const ProbeResult adaptive = probe_success_adaptive(
        easy, workloads::uniform_factory(64),
        workloads::paninski_far_factory(64, 1.0), 320, seed, {}, pool);
    SCOPED_TRACE(seed);
    EXPECT_EQ(full.passes(), adaptive.passes());
    EXPECT_LE(adaptive.trials, adaptive.budget);
    EXPECT_EQ(adaptive.budget, 320u);
  }
}

TEST(AdaptiveProbe, StopsEarlyOnClearFailure) {
  // A tester that always accepts never rejects far sources, so failure is
  // obvious early. With a long budget the Wilson certificate fires first
  // (0/64 far successes is delta-certifiably below 2/3); with a budget too
  // short for confidence checks (first boundary < min_trials), the
  // deterministic seal fires instead.
  const TesterRun always_accept = [](const SampleSource&, Rng&) {
    return true;
  };
  ThreadPool pool(2);
  const ProbeResult confident = probe_success_adaptive(
      always_accept, workloads::uniform_factory(64),
      workloads::paninski_far_factory(64, 0.5), 300, 5, {}, pool);
  EXPECT_TRUE(confident.early_stopped());
  EXPECT_EQ(confident.stop, ProbeStop::kConfidence);
  EXPECT_LT(confident.trials, confident.budget);
  EXPECT_FALSE(confident.passes());
  EXPECT_EQ(confident.trials % 32, 0u);  // stopped at a batch boundary

  const ProbeResult sealed = probe_success_adaptive(
      always_accept, workloads::uniform_factory(64),
      workloads::paninski_far_factory(64, 0.5), 40, 5, {}, pool);
  // At the only checkpoint (32 trials < min_trials ~ 35) confidence is not
  // consulted, but 0 + 8 remaining < (2/3) * 40 seals the failure.
  EXPECT_EQ(sealed.stop, ProbeStop::kDeterministic);
  EXPECT_EQ(sealed.trials, 32u);
  EXPECT_FALSE(sealed.passes());
}

TEST(AdaptiveProbe, ExMatchesBooleanProbe) {
  // A TesterRunEx that never aborts must reproduce the boolean adaptive
  // probe bit for bit (same seed derivation, same tallies).
  const TesterRun tester = noisy_collision_tester();
  const TesterRunEx ex = [&tester](const SampleSource& source, Rng& rng) {
    return tester(source, rng) ? RefereeOutcome::kAccept
                               : RefereeOutcome::kReject;
  };
  ThreadPool pool(4);
  const ProbeResult b = probe_success_adaptive(
      tester, workloads::uniform_factory(128),
      workloads::paninski_far_factory(128, 0.5), 256, 19, {}, pool);
  const ProbeResult e = probe_success_adaptive_ex(
      ex, workloads::uniform_factory(128),
      workloads::paninski_far_factory(128, 0.5), 256, 19, {}, pool);
  expect_probe_equal(b, e);
  EXPECT_EQ(e.aborts(), 0u);
}

TEST(AdaptiveSearch, BracketedSearchFindsTheSameMinimum) {
  // Synthetic deterministic probes: both flavors agree on the cutoff, so
  // the bracketed search must return exactly the full-budget minimum, at
  // every thread count.
  const ProbeFn full = [](std::uint64_t value) {
    return probe_result_from_tallies(value >= 517 ? 100 : 10, 100, 100, 100,
                                     ProbeStop::kExhausted);
  };
  // The bracket flavor agrees on the cutoff but reports early-stopped
  // 64-trial tallies, so audit entries reveal which flavor produced them.
  const ProbeFn bracket = [](std::uint64_t value) {
    return probe_result_from_tallies(value >= 517 ? 64 : 6, 64, 64, 100,
                                     ProbeStop::kConfidence);
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;
  cfg.adaptive_bracket = true;
  ThreadPool serial(1);
  const auto reference = find_min_param(full, cfg, serial);
  ASSERT_TRUE(reference.found);
  EXPECT_EQ(reference.minimum, 517u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(threads);
    const auto bracketed = find_min_param(full, bracket, cfg, pool);
    ASSERT_TRUE(bracketed.found);
    EXPECT_EQ(bracketed.minimum, reference.minimum);
    // The returned minimum carries full-budget evidence in the audit trail.
    bool full_backed = false;
    for (const auto& [value, probe] : bracketed.probes) {
      if (value == bracketed.minimum && probe.trials == 100 &&
          probe.passes()) {
        full_backed = true;
      }
    }
    EXPECT_TRUE(full_backed);
  }
}

TEST(AdaptiveSearch, RefutedBracketMinimumResumesWithFullProbes) {
  // The bracket probe is overly optimistic (passes from 60 up) while the
  // full probe needs 100: the full-budget confirmation refutes the bracket
  // minimum and the search must resume above it, still landing on 100.
  const ProbeFn full = [](std::uint64_t value) {
    return probe_result_from_tallies(value >= 100 ? 100 : 10, 100, 100, 100,
                                     ProbeStop::kExhausted);
  };
  const ProbeFn bracket = [](std::uint64_t value) {
    return probe_result_from_tallies(value >= 60 ? 64 : 6, 64, 64, 100,
                                     ProbeStop::kConfidence);
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;
  cfg.adaptive_bracket = true;
  for (const unsigned threads : {1u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(threads);
    const auto result = find_min_param(full, bracket, cfg, pool);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.minimum, 100u);
  }
}

TEST(AdaptiveSearch, BracketGiveUpIsConfirmedAtFullBudget) {
  // The bracket probe never passes, but the full probe does: the search
  // must not trust the bracket flavor's give-up at cfg.hi, and falls back
  // to a full-budget search instead of reporting not-found.
  const ProbeFn full = [](std::uint64_t value) {
    return probe_result_from_tallies(value >= 100 ? 100 : 10, 100, 100, 100,
                                     ProbeStop::kExhausted);
  };
  const ProbeFn bracket = [](std::uint64_t) {
    return probe_result_from_tallies(6, 64, 64, 100, ProbeStop::kConfidence);
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 256;
  cfg.adaptive_bracket = true;
  ThreadPool pool(4);
  const auto result = find_min_param(full, bracket, cfg, pool);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.minimum, 100u);
  // And when the full probe also never passes, not-found stands.
  const ProbeFn never = [](std::uint64_t) {
    return probe_result_from_tallies(10, 100, 100, 100, ProbeStop::kExhausted);
  };
  const auto nothing = find_min_param(never, bracket, cfg, pool);
  EXPECT_FALSE(nothing.found);
}

TEST(AdaptiveSearch, DisabledKnobIgnoresBracketProbe) {
  // Without adaptive_bracket the bracket probe must never be consulted.
  const ProbeFn full = [](std::uint64_t value) {
    return probe_result_from_tallies(value >= 37 ? 100 : 10, 100, 100, 100,
                                     ProbeStop::kExhausted);
  };
  const ProbeFn poison = [](std::uint64_t) -> ProbeResult {
    throw InvalidArgument("bracket probe must not run");
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 4096;
  cfg.adaptive_bracket = false;
  ThreadPool serial(1);
  const auto result = find_min_param(full, poison, cfg, serial);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.minimum, 37u);
}

TEST(ParallelProbe, DefaultOverloadUsesGlobalPool) {
  // The pool-less overloads route through ThreadPool::global(); results must
  // match an explicit serial pool whatever DUTI_THREADS says.
  const TesterRun tester = noisy_collision_tester();
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(tester, workloads::uniform_factory(64),
                    workloads::paninski_far_factory(64, 0.5), 150, 29, serial);
  const ProbeResult via_global =
      probe_success(tester, workloads::uniform_factory(64),
                    workloads::paninski_far_factory(64, 0.5), 150, 29);
  expect_probe_equal(reference, via_global);
}

}  // namespace
}  // namespace duti
