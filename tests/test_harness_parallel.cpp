// Determinism regression for the parallel measurement engine: every probe
// and search result must be bit-for-bit identical to the serial path at any
// thread count (ISSUE 2 acceptance criterion; DESIGN.md §7).
#include <gtest/gtest.h>

#include "stats/harness.hpp"
#include "stats/workloads.hpp"
#include "testers/collision.hpp"
#include "testers/fixed_threshold.hpp"
#include "util/error.hpp"

namespace duti {
namespace {

void expect_probe_equal(const ProbeResult& a, const ProbeResult& b) {
  EXPECT_DOUBLE_EQ(a.uniform_accept_rate, b.uniform_accept_rate);
  EXPECT_DOUBLE_EQ(a.far_reject_rate, b.far_reject_rate);
  EXPECT_DOUBLE_EQ(a.uniform_ci.lo, b.uniform_ci.lo);
  EXPECT_DOUBLE_EQ(a.uniform_ci.hi, b.uniform_ci.hi);
  EXPECT_DOUBLE_EQ(a.far_ci.lo, b.far_ci.lo);
  EXPECT_DOUBLE_EQ(a.far_ci.hi, b.far_ci.hi);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.uniform_aborts_quorum, b.uniform_aborts_quorum);
  EXPECT_EQ(a.uniform_aborts_timeout, b.uniform_aborts_timeout);
  EXPECT_EQ(a.far_aborts_quorum, b.far_aborts_quorum);
  EXPECT_EQ(a.far_aborts_timeout, b.far_aborts_timeout);
}

// A representative tester: draws samples and thresholds collision pairs,
// consuming source and run randomness like the real protocol testers do.
TesterRun noisy_collision_tester() {
  return [](const SampleSource& source, Rng& rng) {
    std::vector<std::uint64_t> samples;
    source.sample_many(rng, 48, samples);
    const double expected = expected_collision_pairs_uniform(
        static_cast<double>(source.domain_size()), 48);
    return static_cast<double>(collision_pairs(samples)) <=
           expected + 1.0 + rng.next_double();
  };
}

TEST(ParallelProbe, BitIdenticalAcrossThreadCounts) {
  const TesterRun tester = noisy_collision_tester();
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(tester, workloads::uniform_factory(256),
                    workloads::paninski_far_factory(256, 0.5), 400, 11, serial);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel =
        probe_success(tester, workloads::uniform_factory(256),
                      workloads::paninski_far_factory(256, 0.5), 400, 11, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(ParallelProbe, RealTesterBitIdentical) {
  const FixedThresholdTester tester({64, 8, 16, 0.5, 2});
  const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
    return tester.run(src, rng);
  };
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(run, workloads::uniform_factory(64),
                    workloads::paninski_far_factory(64, 0.5), 200, 3, serial);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel =
        probe_success(run, workloads::uniform_factory(64),
                      workloads::paninski_far_factory(64, 0.5), 200, 3, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(ParallelProbeEx, AbortAttributionBitIdentical) {
  // Outcome depends on the trial's sample and run streams, with all four
  // referee outcomes reachable — exercises every abort tally.
  const TesterRunEx tester = [](const SampleSource& source, Rng& rng) {
    const std::uint64_t s = source.sample(rng);
    const double u = rng.next_double();
    if (u < 0.10) return RefereeOutcome::kAbortQuorum;
    if (u < 0.25) return RefereeOutcome::kAbortTimeout;
    return (s + static_cast<std::uint64_t>(u * 1000.0)) % 3 == 0
               ? RefereeOutcome::kAccept
               : RefereeOutcome::kReject;
  };
  ThreadPool serial(1);
  const ProbeResult reference = probe_success_ex(
      tester, workloads::uniform_factory(128),
      workloads::paninski_far_factory(128, 0.5), 500, 17, serial);
  EXPECT_GT(reference.aborts(), 0u);  // the scenario actually aborts
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ProbeResult parallel = probe_success_ex(
        tester, workloads::uniform_factory(128),
        workloads::paninski_far_factory(128, 0.5), 500, 17, pool);
    SCOPED_TRACE(threads);
    expect_probe_equal(reference, parallel);
  }
}

TEST(ParallelProbe, SourceHoistDoesNotChangeResults) {
  // The same uniform factory, once with the trial-invariant promise (per-
  // worker cached source) and once wrapped as trial-varying (fresh heap
  // source per trial): identical results, because the factory ignores rng.
  const TesterRun tester = noisy_collision_tester();
  const SourceSpec invariant = workloads::uniform_factory(256);
  ASSERT_TRUE(invariant.trial_invariant());
  const SourceSpec varying(invariant.factory(), /*trial_invariant=*/false);
  ThreadPool pool(4);
  const ProbeResult a =
      probe_success(tester, invariant,
                    workloads::paninski_far_factory(256, 0.5), 300, 23, pool);
  const ProbeResult b =
      probe_success(tester, varying,
                    workloads::paninski_far_factory(256, 0.5), 300, 23, pool);
  expect_probe_equal(a, b);
}

TEST(ParallelSearch, SpeculativeMinimumMatchesSerial) {
  // Statistically monotone synthetic probe: pure per value, noisy cutoff.
  const ProbeFn probe = [](std::uint64_t value) {
    ProbeResult r;
    r.trials = 1;
    const std::uint64_t cutoff = 93 + (derive_seed(5, value) % 9);
    r.uniform_accept_rate = value >= cutoff ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;
  ThreadPool serial(1);
  const auto reference = find_min_param(probe, cfg, serial);
  ASSERT_TRUE(reference.found);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const auto speculative = find_min_param(probe, cfg, pool);
    SCOPED_TRACE(threads);
    ASSERT_TRUE(speculative.found);
    EXPECT_EQ(speculative.minimum, reference.minimum);
    // The audit trail replays the serial consultation sequence exactly.
    ASSERT_EQ(speculative.probes.size(), reference.probes.size());
    for (std::size_t i = 0; i < reference.probes.size(); ++i) {
      EXPECT_EQ(speculative.probes[i].first, reference.probes[i].first);
    }
  }
}

TEST(ParallelSearch, SpeculativeProbeFailuresDoNotEscape) {
  // Probes can have validity limits (e.g. a tester config that only exists
  // for small q). Speculation may evaluate values past where the serial
  // search stops; a failure there must stay invisible unless the serial
  // decision sequence actually consults that value. Regression: e3_threshold
  // aborted at DUTI_THREADS=8 because a speculated rung beyond the passing
  // point threw in FixedThresholdTester's Poisson quantile.
  const ProbeFn probe = [](std::uint64_t value) {
    if (value > 128) throw InvalidArgument("probe: value out of range");
    ProbeResult r;
    r.trials = 1;
    r.uniform_accept_rate = value >= 100 ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;  // ladder reaches far past the validity limit
  ThreadPool serial(1);
  const auto reference = find_min_param(probe, cfg, serial);
  ASSERT_TRUE(reference.found);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(threads);
    const auto speculative = find_min_param(probe, cfg, pool);
    ASSERT_TRUE(speculative.found);
    EXPECT_EQ(speculative.minimum, reference.minimum);
    ASSERT_EQ(speculative.probes.size(), reference.probes.size());
  }
  // When the serial sequence itself consults a throwing value, every thread
  // count must surface the same exception.
  cfg.lo = 200;  // first consulted value is already out of range
  EXPECT_THROW(find_min_param(probe, cfg, serial), InvalidArgument);
  ThreadPool wide(8);
  EXPECT_THROW(find_min_param(probe, cfg, wide), InvalidArgument);
}

TEST(ParallelSearch, GivesUpIdentically) {
  const ProbeFn probe = [](std::uint64_t) { return ProbeResult{}; };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 64;
  ThreadPool pool(8);
  const auto result = find_min_param(probe, cfg, pool);
  EXPECT_FALSE(result.found);
}

TEST(ParallelSearch, MedianMatchesSerial) {
  auto make_probe = [](std::uint64_t seed) -> ProbeFn {
    return [seed](std::uint64_t value) {
      ProbeResult r;
      const std::uint64_t cutoff = 95 + (derive_seed(seed, value) % 11);
      r.uniform_accept_rate = value >= cutoff ? 1.0 : 0.0;
      r.far_reject_rate = 1.0;
      return r;
    };
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 4096;
  ThreadPool serial(1);
  const double reference = find_min_param_median(make_probe, cfg, 5, serial);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE(threads);
    EXPECT_DOUBLE_EQ(find_min_param_median(make_probe, cfg, 5, pool),
                     reference);
  }
}

TEST(ParallelProbe, DefaultOverloadUsesGlobalPool) {
  // The pool-less overloads route through ThreadPool::global(); results must
  // match an explicit serial pool whatever DUTI_THREADS says.
  const TesterRun tester = noisy_collision_tester();
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(tester, workloads::uniform_factory(64),
                    workloads::paninski_far_factory(64, 0.5), 150, 29, serial);
  const ProbeResult via_global =
      probe_success(tester, workloads::uniform_factory(64),
                    workloads::paninski_far_factory(64, 0.5), 150, 29);
  expect_probe_equal(reference, via_global);
}

}  // namespace
}  // namespace duti
