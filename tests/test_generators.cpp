#include "dist/generators.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Paninski, ExactlyEpsFar) {
  Rng rng(1);
  for (double eps : {0.1, 0.25, 0.5, 1.0}) {
    const auto d = gen::paninski(100, eps, rng);
    EXPECT_NEAR(d.l1_from_uniform(), eps, 1e-12) << "eps=" << eps;
  }
}

TEST(Paninski, PairMassPreserved) {
  Rng rng(2);
  const std::size_t n = 20;
  const auto d = gen::paninski(n, 0.5, rng);
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(d.pmf(2 * i) + d.pmf(2 * i + 1), 2.0 / n, 1e-12);
  }
}

TEST(Paninski, WithSignsDeterministic) {
  const std::vector<int> signs{1, -1, 1, -1, 1};
  const auto d = gen::paninski_with_signs(10, 0.3, signs);
  EXPECT_NEAR(d.pmf(0), (1.0 + 0.3) / 10.0, 1e-12);
  EXPECT_NEAR(d.pmf(1), (1.0 - 0.3) / 10.0, 1e-12);
  EXPECT_NEAR(d.pmf(2), (1.0 - 0.3) / 10.0, 1e-12);
  EXPECT_NEAR(d.pmf(3), (1.0 + 0.3) / 10.0, 1e-12);
}

TEST(Paninski, InvalidArgsThrow) {
  Rng rng(3);
  EXPECT_THROW(gen::paninski(7, 0.5, rng), InvalidArgument);  // odd n
  EXPECT_THROW(gen::paninski_with_signs(10, 0.5, {1, 1}), InvalidArgument);
  EXPECT_THROW((void)gen::paninski_with_signs(4, 0.5, {1, 2}), InvalidArgument);
}

TEST(Zipf, DecreasingAndNormalized) {
  const auto d = gen::zipf(50, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    total += d.pmf(i);
    if (i > 0) {
      EXPECT_LE(d.pmf(i), d.pmf(i - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ZeroExponentIsUniform) {
  const auto d = gen::zipf(10, 0.0);
  EXPECT_NEAR(d.l1_from_uniform(), 0.0, 1e-12);
}

TEST(Bimodal, ExactDistance) {
  for (double delta : {0.1, 0.5, 1.0}) {
    const auto d = gen::bimodal(20, delta);
    EXPECT_NEAR(d.l1_from_uniform(), delta, 1e-12);
  }
}

TEST(DiracMixture, Distance) {
  const std::size_t n = 10;
  const double w = 0.3;
  const auto d = gen::dirac_mixture(n, 4, w);
  EXPECT_NEAR(d.pmf(4), (1.0 - w) / n + w, 1e-12);
  EXPECT_NEAR(d.l1_from_uniform(), 2.0 * w * (1.0 - 1.0 / n), 1e-12);
}

TEST(UniformSubset, SupportSizeAndDistance) {
  Rng rng(4);
  const auto d = gen::uniform_subset(20, 5, rng);
  int support = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (d.pmf(i) > 0.0) {
      ++support;
      EXPECT_NEAR(d.pmf(i), 0.2, 1e-12);
    }
  }
  EXPECT_EQ(support, 5);
  EXPECT_NEAR(d.l1_from_uniform(), 2.0 * (1.0 - 5.0 / 20.0), 1e-12);
}

TEST(UniformSubset, FullSubsetIsUniform) {
  Rng rng(5);
  const auto d = gen::uniform_subset(8, 8, rng);
  EXPECT_NEAR(d.l1_from_uniform(), 0.0, 1e-12);
}

TEST(RandomPerturbation, ExactlyEpsFar) {
  Rng rng(6);
  for (double eps : {0.1, 0.5, 1.0}) {
    const auto d = gen::random_perturbation(64, eps, rng);
    EXPECT_NEAR(d.l1_from_uniform(), eps, 1e-12);
  }
}

TEST(RandomPerturbation, DiffersAcrossDraws) {
  Rng rng(7);
  const auto a = gen::random_perturbation(64, 0.5, rng);
  const auto b = gen::random_perturbation(64, 0.5, rng);
  EXPECT_GT(a.l1_distance(b), 0.0);
}

}  // namespace
}  // namespace duti
