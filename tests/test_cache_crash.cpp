// Crash-safety of the probe-cache journal (DESIGN.md section 8): a
// SIGKILL'd writer can tear at most the final line, the tear is detected
// by the J1 framing, survivors replay bit-identically, and unusable cache
// directories degrade the cache to kOff instead of throwing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stats/probe_cache.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DUTI_HAVE_FORK 1
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#endif

namespace duti {
namespace {

class CacheCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("duti_crash_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Deterministic (key, result) stream: the i-th record is a pure function
// of i, so a parent process can recompute what a killed child wrote.
ProbeKey key_for(std::uint64_t i) {
  ProbeKey key;
  key.workload = "crash:wl";
  key.tester = "crash";
  key.param = i;
  key.trials = 100;
  key.seed = i * 31 + 1;
  key.flavor = "full";
  return key;
}

ProbeResult result_for(std::uint64_t i) {
  ProbeResult r = probe_result_from_tallies(i % 101, (i * 7) % 101, 100, 100,
                                            ProbeStop::kExhausted);
  r.uniform_aborts_quorum = i % 3;
  r.far_aborts_timeout = i % 5;
  return r;
}

void expect_bit_identical(const ProbeResult& a, const ProbeResult& b) {
  EXPECT_EQ(a.uniform_successes, b.uniform_successes);
  EXPECT_EQ(a.far_successes, b.far_successes);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.stop, b.stop);
  // Doubles compared with == on purpose: a replayed hit must reproduce the
  // exact bits of the fresh computation, not an approximation.
  EXPECT_EQ(a.uniform_accept_rate, b.uniform_accept_rate);
  EXPECT_EQ(a.far_reject_rate, b.far_reject_rate);
  EXPECT_EQ(a.uniform_ci.lo, b.uniform_ci.lo);
  EXPECT_EQ(a.far_ci.hi, b.far_ci.hi);
  EXPECT_EQ(a.uniform_aborts_quorum, b.uniform_aborts_quorum);
  EXPECT_EQ(a.far_aborts_timeout, b.far_aborts_timeout);
}

std::vector<std::string> journal_lines(const std::string& dir) {
  std::ifstream in(std::filesystem::path(dir) / "probes.jsonl");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST_F(CacheCrashTest, FramingRoundTripsAndDetectsTears) {
  const std::string json = "{\"workload\":\"x\",\"param\":7}";
  const std::string framed = probe_journal_frame(json);
  ASSERT_TRUE(probe_journal_decode(framed).has_value());
  EXPECT_EQ(*probe_journal_decode(framed), json);

  // Every proper prefix is a torn write: detected, never half-parsed.
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    EXPECT_FALSE(probe_journal_decode(framed.substr(0, cut)).has_value())
        << "prefix of length " << cut << " decoded";
  }
  // A single flipped payload byte fails the checksum.
  std::string flipped = framed;
  flipped.back() ^= 1;
  EXPECT_FALSE(probe_journal_decode(flipped).has_value());
  // Unframed lines are not J1 records.
  EXPECT_FALSE(probe_journal_decode(json).has_value());
  EXPECT_FALSE(probe_journal_decode("").has_value());
}

#ifdef DUTI_HAVE_FORK
TEST_F(CacheCrashTest, SigkillMidWriteNeverCorruptsSurvivingRecords) {
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: append deterministic records until killed. _exit (not exit)
    // on the off-chance the loop completes, to skip gtest teardown.
    ProbeCache cache(dir_, CacheMode::kReadWrite);
    for (std::uint64_t i = 0; i < 200000; ++i) {
      cache.insert(key_for(i), result_for(i));
    }
    _exit(0);
  }

  // Parent: wait for the journal to grow past a few KiB of records, then
  // SIGKILL the writer wherever it happens to be.
  const auto journal = std::filesystem::path(dir_) / "probes.jsonl";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::error_code ec;
    if (std::filesystem::file_size(journal, ec) > 8192 && !ec) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);

  // Audit the raw journal BEFORE any compaction: every line except
  // possibly the torn last one must verify its framing.
  const std::vector<std::string> lines = journal_lines(dir_);
  ASSERT_GE(lines.size(), 2u) << "journal did not grow before the kill";
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_TRUE(probe_journal_decode(lines[i]).has_value())
        << "non-final line " << i << " is corrupt";
  }
  const bool last_torn = !probe_journal_decode(lines.back()).has_value();

  // Reload (kReadWrite scrubs any torn tail) and replay: records survive
  // as an exact prefix of the insert order, each hit bit-identical.
  ProbeCache reloaded(dir_, CacheMode::kReadWrite);
  ASSERT_EQ(reloaded.mode(), CacheMode::kReadWrite);
  const std::size_t survivors = reloaded.size();
  EXPECT_GE(survivors, lines.size() - (last_torn ? 1 : 0));
  for (std::uint64_t i = 0; i < survivors; ++i) {
    const auto hit = reloaded.lookup(key_for(i));
    ASSERT_TRUE(hit.has_value()) << "hole at record " << i << " of "
                                 << survivors << " survivors";
    expect_bit_identical(*hit, result_for(i));
  }
  EXPECT_FALSE(reloaded.lookup(key_for(survivors)).has_value());

  // After the scrub, the journal is pristine: every line decodes.
  for (const std::string& line : journal_lines(dir_)) {
    EXPECT_TRUE(probe_journal_decode(line).has_value());
  }
}
#endif  // DUTI_HAVE_FORK

TEST_F(CacheCrashTest, TornFinalLineIsDetectedAndScrubbed) {
  {
    ProbeCache cache(dir_, CacheMode::kReadWrite);
    cache.insert(key_for(0), result_for(0));
    cache.insert(key_for(1), result_for(1));
  }
  {
    // Simulate a crash mid-append: a framed line cut off halfway through
    // its payload.
    std::ofstream out(std::filesystem::path(dir_) / "probes.jsonl",
                      std::ios::app);
    const std::string framed = probe_journal_frame("{\"workload\":\"t\"}");
    out << framed.substr(0, framed.size() / 2);
  }

  ProbeCache reloaded(dir_, CacheMode::kReadWrite);
  EXPECT_EQ(reloaded.size(), 2u);
  const auto hit = reloaded.lookup(key_for(1));
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(*hit, result_for(1));
  // Loading at kReadWrite scrubbed the tear: the journal is whole again.
  for (const std::string& line : journal_lines(dir_)) {
    EXPECT_TRUE(probe_journal_decode(line).has_value());
  }
}

TEST_F(CacheCrashTest, UnwritableDirectoryDegradesToOff) {
  // A cache dir that cannot exist: its parent path is a regular file.
  // (Permission bits are no obstacle to a root test runner; a file in the
  // way stops everyone.)
  std::ofstream(dir_).put('x');
  const std::string bad = (std::filesystem::path(dir_) / "sub").string();

  ProbeCache cache(bad, CacheMode::kReadWrite);  // warns once, no throw
  EXPECT_EQ(cache.mode(), CacheMode::kOff);
  EXPECT_FALSE(cache.enabled());
  cache.insert(key_for(0), result_for(0));  // silent no-op
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key_for(0)).has_value());
  // get_or_compute still computes: degradation never blocks the caller.
  const ProbeResult r =
      cache.get_or_compute(key_for(3), [] { return result_for(3); });
  expect_bit_identical(r, result_for(3));
}

TEST_F(CacheCrashTest, VanishingDirectoryDegradesToOff) {
  ProbeCache cache(dir_, CacheMode::kReadWrite);
  cache.insert(key_for(0), result_for(0));
  ASSERT_EQ(cache.mode(), CacheMode::kReadWrite);

  std::filesystem::remove_all(dir_);  // rug-pull mid-run

  cache.insert(key_for(1), result_for(1));  // warns once, no throw
  EXPECT_EQ(cache.mode(), CacheMode::kOff);
  // Already-loaded state answers nothing once degraded; compute paths work.
  const ProbeResult r =
      cache.get_or_compute(key_for(2), [] { return result_for(2); });
  expect_bit_identical(r, result_for(2));
}

}  // namespace
}  // namespace duti
