// Tests for the deterministic sweep engine (src/stats/sweep.hpp): the
// warm-start identity guarantee (hints never change the minimum OR the
// audit trail, monotone family or not), the cross-thread-count /
// cross-cache-mode fingerprint invariant, and the hint interpolator.
#include "stats/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "stats/probe_cache.hpp"
#include "stats/workloads.hpp"
#include "testers/centralized.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

// --- Raw-probe fixtures ----------------------------------------------------

// A synthetic family of step probes: point i passes iff value >=
// thresholds[i]. Pure functions of the value, so warm-start speculation is
// legal; no randomness, so audit identity checks are exact.
std::vector<SweepPoint> step_points(const std::vector<std::uint64_t>& thresholds,
                                    std::uint64_t hi = 1ULL << 12) {
  std::vector<SweepPoint> points;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const std::uint64_t threshold = thresholds[i];
    SweepPoint p;
    p.label = "step" + std::to_string(i);
    p.axis = static_cast<double>(i + 1);
    p.search.lo = 2;
    p.search.hi = hi;
    p.probe = [threshold](std::uint64_t value) {
      ProbeResult r;
      r.trials = 1;
      r.budget = 1;
      r.uniform_successes = value >= threshold ? 1 : 0;
      r.far_successes = 1;
      r.uniform_accept_rate = value >= threshold ? 1.0 : 0.0;
      r.far_reject_rate = 1.0;
      return r;
    };
    points.push_back(std::move(p));
  }
  return points;
}

void expect_same_audit(const SweepPointResult& a, const SweepPointResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.minimum, b.minimum);
  EXPECT_EQ(a.verdict, b.verdict);
  ASSERT_EQ(a.audit.size(), b.audit.size()) << a.label;
  for (std::size_t i = 0; i < a.audit.size(); ++i) {
    EXPECT_EQ(a.audit[i].first, b.audit[i].first) << a.label << " step " << i;
    EXPECT_EQ(a.audit[i].second.trials, b.audit[i].second.trials);
    EXPECT_EQ(a.audit[i].second.uniform_successes,
              b.audit[i].second.uniform_successes);
    EXPECT_EQ(a.audit[i].second.far_successes,
              b.audit[i].second.far_successes);
    EXPECT_EQ(a.audit[i].second.stop, b.audit[i].second.stop);
  }
}

// --- Hint interpolation ----------------------------------------------------

TEST(SweepInterpolateHint, LogLogPowerLawIsExactAtAnchors) {
  // min = 100 * axis^{-1/2}: axis 4 -> 50, axis 64 -> 12.5. The midpoint
  // axis 16 should land near 25 (log-log interpolation is exact on power
  // laws up to rounding).
  const std::uint64_t h = sweep_interpolate_hint(4.0, 50, 64.0, 13, 16.0, 2,
                                                 1ULL << 16);
  EXPECT_GE(h, 24u);
  EXPECT_LE(h, 27u);
}

TEST(SweepInterpolateHint, ClampsToRange) {
  EXPECT_EQ(sweep_interpolate_hint(1.0, 4, 2.0, 1ULL << 40, 2.0, 2, 100), 100u);
  // Slope -2 power law extrapolated to axis 8 lands at ~0.19 -> clamp lo.
  EXPECT_EQ(sweep_interpolate_hint(1.0, 12, 2.0, 3, 8.0, 10, 100), 10u);
}

TEST(SweepInterpolateHint, NoAnchorsMeansNoHint) {
  EXPECT_EQ(sweep_interpolate_hint(1.0, 0, 2.0, 0, 1.5, 2, 100), 0u);
}

TEST(SweepInterpolateHint, NonPositiveAxisFallsBackToLinear) {
  // axis0 = 0 would break the log path; the linear fallback still lands
  // between the anchor minima.
  const std::uint64_t h = sweep_interpolate_hint(0.0, 10, 2.0, 40, 1.0, 2,
                                                 1ULL << 16);
  EXPECT_GE(h, 10u);
  EXPECT_LE(h, 40u);
}

TEST(SweepInterpolateHint, DegenerateEqualAxes) {
  const std::uint64_t h = sweep_interpolate_hint(3.0, 16, 3.0, 64, 3.0, 2,
                                                 1ULL << 16);
  EXPECT_GE(h, 16u);
  EXPECT_LE(h, 64u);
}

// --- Warm/cold identity on raw probes --------------------------------------

TEST(SweepEngine, WarmEqualsColdOnMonotoneFamily) {
  // Minima follow a smooth decreasing family, the warm-start predictor's
  // best case: hints land close and the speculative wave is productive.
  const std::vector<std::uint64_t> thresholds{400, 200, 100, 50, 25};
  ThreadPool pool(1);
  ProbeCache off("", CacheMode::kOff);

  SweepEngineConfig cold;
  cold.warm_start = false;
  cold.cache = &off;
  SweepEngineConfig warm;
  warm.warm_start = true;
  warm.cache = &off;

  const SweepResult c = run_sweep(step_points(thresholds), cold, pool);
  const SweepResult w = run_sweep(step_points(thresholds), warm, pool);
  ASSERT_EQ(c.points.size(), thresholds.size());
  ASSERT_EQ(w.points.size(), thresholds.size());
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    EXPECT_TRUE(c.points[i].found);
    EXPECT_EQ(c.points[i].minimum, thresholds[i]);
    // Raw probes carry no adaptive bracket flavor, so warm mode differs
    // from cold ONLY by the hint — and the hint must not change anything
    // the search consults.
    expect_same_audit(c.points[i], w.points[i]);
  }
  // Interior points got nonzero hints (anchors stay cold by construction).
  EXPECT_EQ(w.points.front().hint, 0u);
  EXPECT_EQ(w.points.back().hint, 0u);
  for (std::size_t i = 1; i + 1 < thresholds.size(); ++i) {
    EXPECT_GT(w.points[i].hint, 0u) << i;
  }
  EXPECT_EQ(c.points[1].hint, 0u);  // cold mode never hints
}

TEST(SweepEngine, WarmEqualsColdOnAdversarialNonMonotoneNeighbor) {
  // The interior minimum (200) sits far ABOVE both anchors (10, 12), so
  // log-log interpolation predicts ~11 — maximally wrong. The audit must
  // still match the cold search exactly: a wrong hint only wastes the
  // speculative wave.
  const std::vector<std::uint64_t> thresholds{10, 200, 12};
  ThreadPool pool(4);
  ProbeCache off("", CacheMode::kOff);

  SweepEngineConfig cold;
  cold.warm_start = false;
  cold.cache = &off;
  SweepEngineConfig warm;
  warm.warm_start = true;
  warm.cache = &off;

  const SweepResult c = run_sweep(step_points(thresholds), cold, pool);
  const SweepResult w = run_sweep(step_points(thresholds), warm, pool);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    EXPECT_EQ(c.points[i].minimum, thresholds[i]);
    expect_same_audit(c.points[i], w.points[i]);
  }
  // The wrong hint really was wrong (nowhere near 200).
  EXPECT_GT(w.points[1].hint, 0u);
  EXPECT_LT(w.points[1].hint, 50u);
}

TEST(SweepEngine, PointBeyondCapReportsNotFoundWithFalseVerdict) {
  const std::vector<std::uint64_t> thresholds{8, 1ULL << 20, 16};
  ThreadPool pool(1);
  ProbeCache off("", CacheMode::kOff);
  SweepEngineConfig cfg;
  cfg.cache = &off;
  const SweepResult r = run_sweep(step_points(thresholds, /*hi=*/1024), cfg,
                                  pool);
  EXPECT_TRUE(r.points[0].found);
  EXPECT_FALSE(r.points[1].found);
  EXPECT_FALSE(r.points[1].verdict);
  EXPECT_TRUE(r.points[2].found);
  EXPECT_EQ(r.points[2].minimum, 16u);
}

// --- MinSearchConfig::hint on find_min_param directly -----------------------

TEST(FindMinParamHint, HintNeverChangesMinimumOrAudit) {
  const ProbeFn probe = [](std::uint64_t value) {
    ProbeResult r;
    r.trials = 1;
    r.budget = 1;
    r.uniform_successes = value >= 137 ? 1 : 0;
    r.far_successes = 1;
    r.uniform_accept_rate = value >= 137 ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1ULL << 14;
  const MinSearchResult base = find_min_param(probe, cfg);

  ThreadPool pool(8);
  for (const std::uint64_t hint : {0ULL, 137ULL, 2ULL, 5000ULL, 1ULL << 14}) {
    MinSearchConfig hinted = cfg;
    hinted.hint = hint;
    const MinSearchResult got = find_min_param(probe, hinted, pool);
    EXPECT_EQ(got.found, base.found) << "hint=" << hint;
    EXPECT_EQ(got.minimum, base.minimum) << "hint=" << hint;
    ASSERT_EQ(got.probes.size(), base.probes.size()) << "hint=" << hint;
    for (std::size_t i = 0; i < base.probes.size(); ++i) {
      EXPECT_EQ(got.probes[i].first, base.probes[i].first)
          << "hint=" << hint << " step " << i;
    }
  }
}

// --- Fingerprint invariance on a real tester --------------------------------

class SweepFingerprintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("duti_sweep_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

std::vector<SweepPoint> collision_points() {
  // Small but real: the centralized collision tester over a 64-element
  // Paninski workload at three n values. Cheap enough for a unit test,
  // random enough to exercise the whole probe path.
  std::vector<SweepPoint> points;
  for (const std::uint64_t n : {32ULL, 64ULL, 128ULL}) {
    SweepPoint p;
    p.label = "n=" + std::to_string(n);
    p.axis = static_cast<double>(n);
    p.search.lo = 2;
    p.search.hi = 512;
    p.search.trials = 60;
    p.search.seed = derive_seed(99, n);
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, 0.5);
    p.make_tester = [n](std::uint64_t q) -> TesterRun {
      auto tester = std::make_shared<CentralizedCollisionTester>(
          n, 0.5, static_cast<unsigned>(q), SamplingKernel::kPerSample);
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload = "paninski:n=" + std::to_string(n) + ":eps=0.5";
    p.cache_base.tester = "collision";
    points.push_back(std::move(p));
  }
  return points;
}

TEST_F(SweepFingerprintTest, InvariantAcrossThreadsAndCacheModes) {
  ProbeCache off("", CacheMode::kOff);
  ProbeCache rw(dir_, CacheMode::kReadWrite);

  SweepEngineConfig cfg;
  cfg.warm_start = true;
  cfg.cache = &off;

  ThreadPool pool1(1);
  ThreadPool pool8(8);

  const SweepResult t1_off = run_sweep(collision_points(), cfg, pool1);
  const SweepResult t8_off = run_sweep(collision_points(), cfg, pool8);
  cfg.cache = &rw;
  const SweepResult t1_rw = run_sweep(collision_points(), cfg, pool1);
  const SweepResult t8_rw = run_sweep(collision_points(), cfg, pool8);

  EXPECT_NE(t1_off.fingerprint, 0u);
  EXPECT_EQ(t1_off.fingerprint, t8_off.fingerprint);
  EXPECT_EQ(t1_off.fingerprint, t1_rw.fingerprint);
  EXPECT_EQ(t1_off.fingerprint, t8_rw.fingerprint);
  for (std::size_t i = 0; i < t1_off.points.size(); ++i) {
    expect_same_audit(t1_off.points[i], t8_off.points[i]);
    expect_same_audit(t1_off.points[i], t1_rw.points[i]);
    expect_same_audit(t1_off.points[i], t8_rw.points[i]);
  }
  // Consulted totals are part of the invariant; computed totals are not
  // (speculation at 8 threads may compute more).
  EXPECT_EQ(t1_off.trials_consulted, t8_off.trials_consulted);
  EXPECT_EQ(t1_off.trials_consulted, t1_rw.trials_consulted);
  // The rw rerun below answers everything from cache.
  cfg.cache = &rw;
  const SweepResult rerun = run_sweep(collision_points(), cfg, pool1);
  EXPECT_EQ(rerun.fingerprint, t1_off.fingerprint);
  EXPECT_EQ(rerun.trials_computed, 0u);
  EXPECT_EQ(rerun.cache.misses, 0u);
  EXPECT_GT(rerun.cache.hits, 0u);
}

TEST_F(SweepFingerprintTest, WarmMatchesColdMinimaOnRealTester) {
  ProbeCache off("", CacheMode::kOff);
  ThreadPool pool(1);

  SweepEngineConfig cold;
  cold.warm_start = false;
  cold.cache = &off;
  SweepEngineConfig warm;
  warm.warm_start = true;
  warm.cache = &off;

  const SweepResult c = run_sweep(collision_points(), cold, pool);
  const SweepResult w = run_sweep(collision_points(), warm, pool);
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    EXPECT_EQ(c.points[i].found, w.points[i].found);
    EXPECT_EQ(c.points[i].minimum, w.points[i].minimum) << c.points[i].label;
    EXPECT_EQ(c.points[i].verdict, w.points[i].verdict);
  }
  // Warm mode's adaptive bracket certificates consult no more trials than
  // the cold full-budget search.
  EXPECT_LE(w.trials_consulted, c.trials_consulted);
}

TEST(SweepFingerprint, SensitiveToResults) {
  SweepPointResult a;
  a.label = "p";
  a.axis = 2.0;
  a.found = true;
  a.minimum = 10;
  std::vector<SweepPointResult> one{a};
  const std::uint64_t f1 = sweep_fingerprint(one);
  one[0].minimum = 11;
  EXPECT_NE(sweep_fingerprint(one), f1);
}

}  // namespace
}  // namespace duti
