#include "sim/reliable.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace duti {
namespace {

std::uint64_t sum_of(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

TEST(ReliableConfig, ExponentialBackoffWindow) {
  ReliableConfig cfg;
  cfg.ack_timeout = 2;
  cfg.backoff = 2;
  cfg.max_retries = 4;
  EXPECT_EQ(cfg.timeout(0), 2u);
  EXPECT_EQ(cfg.timeout(1), 4u);
  EXPECT_EQ(cfg.timeout(2), 8u);
  EXPECT_EQ(cfg.timeout(3), 16u);
  EXPECT_EQ(cfg.window(), 2u + 4u + 8u + 16u + 32u);
  EXPECT_EQ(cfg.header_bits(), 18u);
}

TEST(ReliableEndpoint, DeliversEverythingOnceUnderHeavyDrop) {
  const unsigned kMessages = 20;
  Network net(2);
  net.add_edge(0, 1);
  net.add_edge(1, 0);
  net.set_default_fault({0.4, 0.0});  // 40% loss both directions
  ReliableConfig cfg;
  cfg.max_retries = 10;
  ReliableEndpoint tx(cfg), rx(cfg);
  std::vector<std::uint64_t> delivered;
  net.set_behavior(0, [&](RoundContext& ctx) {
    (void)tx.receive(ctx);  // settle ACKs
    if (ctx.round() < kMessages) tx.send(1, {ctx.round()}, 8);
    tx.flush(ctx);
    if (ctx.round() > kMessages && tx.idle()) ctx.halt();
  });
  net.set_behavior(1, [&](RoundContext& ctx) {
    for (auto& d : rx.receive(ctx)) delivered.push_back(d.payload.at(0));
    rx.flush(ctx);
    if (ctx.round() >= 400) ctx.halt();
  });
  Rng rng(2001);
  net.run(rng, 500);
  ASSERT_EQ(delivered.size(), kMessages);
  std::sort(delivered.begin(), delivered.end());
  for (unsigned i = 0; i < kMessages; ++i) EXPECT_EQ(delivered[i], i);
  EXPECT_EQ(rx.stats().delivered, kMessages);
  EXPECT_GT(tx.stats().retransmissions, 0u);  // 40% loss forces retries
  EXPECT_EQ(tx.stats().failed, 0u);
  EXPECT_EQ(tx.stats().payload_bits, 8u * kMessages);
  EXPECT_GT(tx.stats().overhead_bits, 0u);
  EXPECT_GT(rx.stats().acks_sent, 0u);
}

TEST(ReliableEndpoint, BoundedRetriesReportFailure) {
  Network net(2);
  net.add_edge(0, 1);
  net.add_edge(1, 0);
  net.set_link_fault(0, 1, {1.0, 0.0});  // data link fully dead
  ReliableConfig cfg;
  cfg.max_retries = 3;
  ReliableEndpoint tx(cfg);
  std::vector<FailedSend> failures;
  net.set_behavior(0, [&](RoundContext& ctx) {
    (void)tx.receive(ctx);
    if (ctx.round() == 0) tx.send(1, {77, 5}, 8);
    tx.flush(ctx);
    for (auto& f : tx.take_failures()) failures.push_back(std::move(f));
    if (!failures.empty()) ctx.halt();
  });
  net.set_behavior(1, [](RoundContext& ctx) {
    if (ctx.round() >= 200) ctx.halt();
  });
  Rng rng(2002);
  net.run(rng, 300);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].to, 1u);
  EXPECT_EQ(failures[0].payload, (std::vector<std::uint64_t>{77, 5}));
  EXPECT_EQ(failures[0].bit_size, 8u);  // app bits handed back unframed
  EXPECT_EQ(tx.stats().failed, 1u);
  EXPECT_EQ(tx.stats().retransmissions, 3u);
}

TEST(ReliableConvergecast, MatchesNaiveOnCleanNetwork) {
  Network net(9);
  add_grid(net, 3, 3);
  const auto tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> values(9);
  std::iota(values.begin(), values.end(), 10);  // sum 126
  Rng rng(3001);
  const auto result = convergecast_sum_reliable(net, tree, values, 8, rng);
  EXPECT_EQ(result.root_sum, 126u);
  EXPECT_EQ(result.values_reached, 9u);
  EXPECT_EQ(result.values_lost, 0u);
  EXPECT_EQ(result.reparent_events, 0u);
  EXPECT_EQ(result.transport.retransmissions, 0u);
  EXPECT_EQ(result.transport.failed, 0u);
  // Clean runs finish in O(height) rounds, not the full fault budget.
  EXPECT_LE(result.stats.rounds_executed, 4u * (tree.height + 2));
}

// Acceptance criterion: under 10% link drop, retransmission recovers the
// exact fault-free sum on path, grid, and tree topologies.
TEST(ReliableConvergecast, ExactRecoveryUnderTenPercentDrop) {
  struct Topo {
    const char* name;
    std::uint32_t k;
    void (*build)(Network&);
  };
  const Topo topos[] = {
      {"path", 8, [](Network& n) { add_path(n); }},
      {"grid4x4", 16, [](Network& n) { add_grid(n, 4, 4); }},
      {"btree", 15, [](Network& n) { add_binary_tree(n); }},
  };
  std::uint64_t total_retransmissions = 0;
  for (const auto& topo : topos) {
    Network net(topo.k);
    topo.build(net);
    net.set_default_fault({0.10, 0.0});  // 10% drop on every link
    const auto tree = bfs_spanning_tree(net, 0);
    std::vector<std::uint64_t> values(topo.k);
    std::iota(values.begin(), values.end(), 1);
    const std::uint64_t expected = sum_of(values);
    Rng rng(4001);
    const auto result =
        convergecast_sum_reliable(net, tree, values, 16, rng);
    EXPECT_EQ(result.root_sum, expected) << topo.name;
    EXPECT_EQ(result.values_reached, topo.k) << topo.name;
    EXPECT_EQ(result.values_lost, 0u) << topo.name;
    total_retransmissions += result.transport.retransmissions;
    // The naive convergecast on the same faulty network does NOT recover:
    // a dropped partial sum silences its subtree.
    Network naive_net(topo.k);
    topo.build(naive_net);
    naive_net.set_default_fault({0.10, 0.0});
    Rng naive_rng(4001);
    const auto naive =
        convergecast_sum(naive_net, tree, values, 16, naive_rng);
    EXPECT_LE(naive.root_sum, expected) << topo.name;
  }
  EXPECT_GT(total_retransmissions, 0u);  // the drops really happened
}

TEST(ReliableConvergecast, PathCrashSeversDownstreamAndReportsIt) {
  // 0-1-2-3-4 with node 2 crashed: no alternative route exists, so the
  // values of 3 and 4 are abandoned (reported, not silently dropped),
  // and the root still gets the surviving prefix exactly.
  Network net(5);
  add_path(net);
  const auto tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> values{100, 200, 300, 400, 500};
  net.schedule_crash(2, 0);
  Rng rng(5001);
  const auto result = convergecast_sum_reliable(net, tree, values, 16, rng);
  EXPECT_EQ(result.root_sum, 300u);  // 100 + 200
  EXPECT_EQ(result.values_reached, 2u);
  EXPECT_EQ(result.values_lost, 2u);  // nodes 3 and 4 (crashed 2 is neither)
  EXPECT_EQ(result.reparent_events, 0u);
  EXPECT_EQ(result.stats.nodes_crashed, 1u);
}

TEST(ReliableConvergecast, GridCrashTriggersSelfHealingReparent) {
  // 4x4 grid, BFS tree from corner 0. Crashing node 1 orphans the column
  // subtree rooted at 2 (no alternative parent at smaller depth), but node
  // 5 re-parents to node 4 and its whole subtree {5, 9, 13} survives.
  Network net(16);
  add_grid(net, 4, 4);
  const auto tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> values(16, 1);
  net.schedule_crash(1, 0);
  Rng rng(6001);
  const auto result = convergecast_sum_reliable(net, tree, values, 16, rng);
  EXPECT_GE(result.reparent_events, 1u);
  // Survivors: {0, 4, 8, 12} (left column) + {5, 9, 13} (re-parented).
  EXPECT_EQ(result.values_reached, 7u);
  EXPECT_EQ(result.root_sum, 7u);
  // Column 2-3 subtree (8 nodes) had no route and is accounted as lost.
  EXPECT_EQ(result.values_lost, 8u);
  EXPECT_DOUBLE_EQ(result.delivery_fraction(), 7.0 / 16.0);
}

TEST(ReliableConvergecast, ConservesMessagesUnderStackedFaults) {
  // Chaos-engine invariant (DESIGN.md section 10): every message sent is
  // either delivered or accounted lost, even when corruption bursts, an
  // outage window, delay, and a mid-run crash all stack in one run.
  Network net(12);
  add_grid(net, 3, 4);
  const auto tree = bfs_spanning_tree(net, 0);
  LinkFault noisy;
  noisy.corrupt_prob = 0.3;  // corruption delivers (scrambled), drop loses
  noisy.drop_prob = 0.2;
  noisy.delay_prob = 0.25;
  noisy.delay_rounds = 2;
  net.set_link_fault(1, 0, noisy);
  LinkFault dark;
  dark.outage_lo = 0;
  dark.outage_hi = 6;
  net.set_link_fault(4, 0, dark);
  net.schedule_crash(7, 2);
  std::vector<std::uint64_t> values(12, 1);
  Rng rng(7707);
  const auto result = convergecast_sum_reliable(net, tree, values, 16, rng);
  EXPECT_TRUE(result.stats.conserves_messages())
      << "sent=" << result.stats.messages_sent
      << " delivered=" << result.stats.messages_delivered
      << " lost=" << result.stats.messages_lost();
  EXPECT_GT(result.stats.messages_delivered, 0u);
  EXPECT_GT(result.stats.messages_lost(), 0u);  // the faults really fired
  // The transport's own ledger must close too.
  EXPECT_EQ(result.transport.payload_bits + result.transport.overhead_bits,
            result.stats.bits_sent);
}

TEST(ReliableConvergecast, DeterministicUnderFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    Network net(12);
    add_grid(net, 3, 4);
    net.set_default_fault({0.2, 0.0});
    net.schedule_crash(5, 3);
    const auto tree = bfs_spanning_tree(net, 0);
    std::vector<std::uint64_t> values(12, 3);
    Rng rng(seed);
    return convergecast_sum_reliable(net, tree, values, 8, rng);
  };
  const auto a = run_once(7001);
  const auto b = run_once(7001);
  EXPECT_EQ(a.root_sum, b.root_sum);
  EXPECT_EQ(a.values_reached, b.values_reached);
  EXPECT_EQ(a.values_lost, b.values_lost);
  EXPECT_EQ(a.reparent_events, b.reparent_events);
  EXPECT_EQ(a.transport.retransmissions, b.transport.retransmissions);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.bits_sent, b.stats.bits_sent);
}

TEST(ReliableConvergecast, HonestOverheadAccounting) {
  // Reliability is not free: the reliable run charges strictly more bits
  // than the naive one on the same clean topology, and the overhead is
  // itemized (headers + ACKs + retransmissions).
  Network net(9);
  add_grid(net, 3, 3);
  const auto tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> values(9, 2);
  Rng rng1(8001);
  const auto reliable =
      convergecast_sum_reliable(net, tree, values, 8, rng1);
  Network net2(9);
  add_grid(net2, 3, 3);
  Rng rng2(8001);
  const auto naive = convergecast_sum(net2, tree, values, 8, rng2);
  EXPECT_EQ(reliable.root_sum, naive.root_sum);
  EXPECT_GT(reliable.stats.bits_sent, naive.stats.bits_sent);
  EXPECT_EQ(reliable.transport.payload_bits +
                reliable.transport.overhead_bits,
            reliable.stats.bits_sent);
}

}  // namespace
}  // namespace duti
