// Tests for duti-analyze (tools/duti_analyze): layer-policy parsing, the
// token stream and definition finder, layering enforcement over in-memory
// trees (positive AND seeded-violation fixtures), the RNG-stream dataflow
// rules, the determinism-purity walk from src/stats entry points, the
// shared suppression grammar (including staleness and the lint/analyze
// ownership split), report shapes, fingerprint invariance, and the CLI
// exit-code contract. Fixtures are string literals, so the tree-wide
// `duti_analyze` CTest pass does not see their contents.
#include "analyze.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using duti::analyze::AnalyzeReport;
using duti::analyze::Finding;
using duti::analyze::FunctionDef;
using duti::analyze::LayerPolicy;
using duti::analyze::SourceFile;
using duti::analyze::Token;

const char kPolicy[] =
    "layer util\n"
    "layer dist fourier\n"
    "layer stats\n"
    "layer tests\n";

LayerPolicy policy_of(const std::string& text) {
  LayerPolicy p;
  std::string err;
  EXPECT_TRUE(duti::analyze::parse_layer_policy(text, p, err)) << err;
  return p;
}

AnalyzeReport run(const std::vector<SourceFile>& files,
                  const std::string& policy_text = kPolicy) {
  return duti::analyze::analyze_sources(files, policy_of(policy_text));
}

std::size_t count_rule(const AnalyzeReport& r, const std::string& rule) {
  return r.rule_counts.at(rule);
}

std::vector<Token> tokens_of(const std::string& src) {
  return duti::analyze::tokenize(duti::lint::lex_lines(src));
}

std::vector<FunctionDef> defs_of(const std::string& src) {
  return duti::analyze::find_functions(tokens_of(src));
}

// ---------------------------------------------------------------------------
// Layer policy parsing
// ---------------------------------------------------------------------------

TEST(LayerPolicy, ParsesLayersAllowsAndComments) {
  const LayerPolicy p = policy_of(
      "# comment\n"
      "layer util\n"
      "layer dist fourier  # trailing comment\n"
      "\n"
      "allow dist fourier\n");
  ASSERT_EQ(p.layers.size(), 2u);
  EXPECT_EQ(p.layers[0], std::vector<std::string>{"util"});
  EXPECT_EQ(p.layers[1], (std::vector<std::string>{"dist", "fourier"}));
  ASSERT_EQ(p.allowed_edges.size(), 1u);
  EXPECT_EQ(p.allowed_edges[0].first, "dist");
  EXPECT_EQ(p.allowed_edges[0].second, "fourier");
}

TEST(LayerPolicy, RejectsUnknownDirective) {
  LayerPolicy p;
  std::string err;
  EXPECT_FALSE(duti::analyze::parse_layer_policy("stratum util\n", p, err));
  EXPECT_NE(err.find("unknown directive"), std::string::npos);
}

TEST(LayerPolicy, RejectsEmptyLayerLine) {
  LayerPolicy p;
  std::string err;
  EXPECT_FALSE(duti::analyze::parse_layer_policy("layer\n", p, err));
}

TEST(LayerPolicy, RejectsDuplicateModule) {
  LayerPolicy p;
  std::string err;
  EXPECT_FALSE(
      duti::analyze::parse_layer_policy("layer util\nlayer util\n", p, err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(LayerPolicy, RejectsAllowOfUnplacedModule) {
  LayerPolicy p;
  std::string err;
  EXPECT_FALSE(duti::analyze::parse_layer_policy(
      "layer util\nallow util ghost\n", p, err));
  EXPECT_NE(err.find("unplaced"), std::string::npos);
}

TEST(LayerPolicy, RejectsEmptyPolicy) {
  LayerPolicy p;
  std::string err;
  EXPECT_FALSE(duti::analyze::parse_layer_policy("# only comments\n", p, err));
}

TEST(LayerPolicy, ModuleOfPaths) {
  EXPECT_EQ(duti::analyze::module_of("src/util/rng.hpp"), "util");
  EXPECT_EQ(duti::analyze::module_of("src/stats/harness.cpp"), "stats");
  EXPECT_EQ(duti::analyze::module_of("bench/e1.cpp"), "bench");
  EXPECT_EQ(duti::analyze::module_of("tools/duti_lint/lint.hpp"), "tools");
  EXPECT_EQ(duti::analyze::module_of("README.md"), "");
}

// ---------------------------------------------------------------------------
// Tokenizer & definition finder
// ---------------------------------------------------------------------------

TEST(Tokenize, IdentsNumbersAndCompoundPunct) {
  const auto t = tokens_of("a->b::c(1'000, 2.5e3);\n");
  std::vector<std::string> texts;
  for (const auto& tok : t) texts.push_back(tok.text);
  const std::vector<std::string> want = {"a", "->", "b",     "::", "c",
                                         "(", "1'000", ",",  "2.5e3", ")",
                                         ";"};
  EXPECT_EQ(texts, want);
}

TEST(Tokenize, LiteralsBecomeBlankPairsAndLinesArePreserved) {
  const auto t = tokens_of("x = \"hello\";\ny = 'q';\n");
  ASSERT_GE(t.size(), 6u);
  EXPECT_EQ(t[2].text, "\"\"");
  EXPECT_EQ(t[2].line, 1);
  bool found_char = false;
  for (const auto& tok : t)
    if (tok.text == "''" && tok.line == 2) found_char = true;
  EXPECT_TRUE(found_char);
}

TEST(FindFunctions, FreeFunctionWithBodySpan) {
  const auto d = defs_of("int add(int a, int b) {\n  return a + b;\n}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].name, "add");
  EXPECT_EQ(d[0].line, 1);
  EXPECT_LT(d[0].params_begin, d[0].params_end);
  EXPECT_LT(d[0].body_begin, d[0].body_end);
}

TEST(FindFunctions, DeclarationsCallsAndKeywordsAreNotDefs) {
  const auto d = defs_of(
      "int add(int a, int b);\n"
      "int x = mul(add(1, 2), 3);\n");
  EXPECT_TRUE(d.empty());
}

TEST(FindFunctions, CtorInitListWithParenAndBraceInit) {
  const auto d = defs_of(
      "Foo::Foo(int a) : x_(a), y_{a + 1} {\n  use(x_);\n}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].name, "Foo");
}

TEST(FindFunctions, NoexceptAndTrailingReturn) {
  const auto d = defs_of(
      "auto f(int v) noexcept(noexcept(g(v))) -> std::vector<int> {\n"
      "  return {v};\n}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].name, "f");
}

TEST(FindFunctions, LambdaBodyBelongsToEnclosingFunction) {
  const auto d = defs_of(
      "void outer() {\n"
      "  auto fn = [](int v) { return v + 1; };\n"
      "  fn(1);\n"
      "}\n");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].name, "outer");
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

TEST(Layering, DownwardEdgeIsClean) {
  const auto r = run({{"src/util/rng.hpp", "#pragma once\nint util_fn();\n"},
                      {"src/stats/harness.cpp",
                       "#include \"util/rng.hpp\"\nint stats_fn();\n"}});
  EXPECT_EQ(count_rule(r, "layer-violation"), 0u);
  EXPECT_EQ(r.include_directives, 1u);
  ASSERT_EQ(r.module_edges.size(), 1u);
  EXPECT_EQ(r.module_edges[0].first, "stats");
  EXPECT_EQ(r.module_edges[0].second, "util");
}

TEST(Layering, UpwardEdgeIsFlaggedAtTheIncludeLine) {
  const auto r = run(
      {{"src/util/rng.hpp", "#pragma once\n#include \"stats/harness.hpp\"\n"},
       {"src/stats/harness.hpp", "#pragma once\n"}});
  ASSERT_EQ(count_rule(r, "layer-violation"), 1u);
  const Finding& f = r.findings[0];
  EXPECT_EQ(f.file, "src/util/rng.hpp");
  EXPECT_EQ(f.line, 2);
  EXPECT_NE(f.message.find("util -> stats"), std::string::npos);
}

TEST(Layering, SameLayerSiblingEdgeIsFlagged) {
  const auto r = run(
      {{"src/dist/gen.hpp", "#pragma once\n#include \"fourier/wht.hpp\"\n"},
       {"src/fourier/wht.hpp", "#pragma once\n"}});
  EXPECT_EQ(count_rule(r, "layer-violation"), 1u);
}

TEST(Layering, AllowEntryLegalizesSiblingEdge) {
  const auto r = run(
      {{"src/dist/gen.hpp", "#pragma once\n#include \"fourier/wht.hpp\"\n"},
       {"src/fourier/wht.hpp", "#pragma once\n"}},
      std::string(kPolicy) + "allow dist fourier\n");
  EXPECT_EQ(count_rule(r, "layer-violation"), 0u);
}

TEST(Layering, UnknownModuleIsFlaggedOnce) {
  const auto r = run({{"src/newthing/a.hpp", "#pragma once\n"},
                      {"src/newthing/b.hpp", "#pragma once\n"}});
  EXPECT_EQ(count_rule(r, "layer-unknown-module"), 1u);
}

TEST(Layering, CycleIsDetected) {
  const auto r = run(
      {{"src/util/a.hpp", "#pragma once\n#include \"stats/b.hpp\"\n"},
       {"src/stats/b.hpp", "#pragma once\n#include \"util/a.hpp\"\n"}});
  EXPECT_GE(count_rule(r, "layer-cycle"), 1u);
  bool cycle_message = false;
  for (const auto& f : r.findings)
    if (f.rule == "layer-cycle" &&
        f.message.find("->") != std::string::npos)
      cycle_message = true;
  EXPECT_TRUE(cycle_message);
}

TEST(Layering, SlashlessIncludeResolvesByUniqueSuffix) {
  const auto r = run(
      {{"src/stats/h.cpp", "#include \"rng.hpp\"\n"},
       {"src/util/rng.hpp", "#pragma once\n"}});
  EXPECT_EQ(r.include_directives, 1u);
  EXPECT_EQ(count_rule(r, "layer-violation"), 0u);
}

TEST(Layering, AmbiguousSuffixIsNotResolved) {
  const auto r = run(
      {{"src/stats/h.cpp", "#include \"common.hpp\"\n"},
       {"src/util/common.hpp", "#pragma once\n"},
       {"src/dist/common.hpp", "#pragma once\n"}});
  EXPECT_EQ(r.include_directives, 0u);
}

TEST(Layering, SameDirectoryIncludeWinsOverSuffixMatch) {
  const auto r = run(
      {{"src/stats/h.cpp", "#include \"common.hpp\"\n"},
       {"src/stats/common.hpp", "#pragma once\n"},
       {"src/util/common.hpp", "#pragma once\n"}});
  EXPECT_EQ(r.include_directives, 1u);
  EXPECT_TRUE(r.module_edges.empty());  // intra-module edge, no DAG entry
}

TEST(Layering, RawStringIncludeFixturesAreInvisible) {
  const auto r = run(
      {{"src/util/a.cpp",
        "const char* fixture = R\"(\n#include \"stats/b.hpp\"\n)\";\n"},
       {"src/stats/b.hpp", "#pragma once\n"}});
  EXPECT_EQ(r.include_directives, 0u);
  EXPECT_EQ(count_rule(r, "layer-violation"), 0u);
}

// ---------------------------------------------------------------------------
// RNG dataflow
// ---------------------------------------------------------------------------

TEST(RngByValue, FlagsValueParameter) {
  const auto r = run(
      {{"src/util/a.cpp", "void f(Rng g) {\n  g();\n}\n"}});
  ASSERT_EQ(count_rule(r, "rng-by-value"), 1u);
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_NE(r.findings[0].message.find("'f'"), std::string::npos);
}

TEST(RngByValue, ReferenceAndPointerParametersAreClean) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Rng& g, const Rng* h) {\n  g();\n}\n"}});
  EXPECT_EQ(count_rule(r, "rng-by-value"), 0u);
}

TEST(RngByValue, FlagsStdMt19937ByValue) {
  const auto r = run(
      {{"src/util/a.cpp", "void f(std::mt19937_64 g) {\n  g();\n}\n"}});
  EXPECT_EQ(count_rule(r, "rng-by-value"), 1u);
}

TEST(RngCopy, FlagsCopyInitFromKnownStream) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Rng& g) {\n  Rng a = g;\n  a();\n}\n"}});
  ASSERT_EQ(count_rule(r, "rng-copy"), 1u);
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(RngCopy, FlagsDirectInitFromKnownStream) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Rng& g) {\n  Rng a(g);\n  a();\n}\n"}});
  EXPECT_EQ(count_rule(r, "rng-copy"), 1u);
}

TEST(RngCopy, SeedConstructionAndDerivationAreClean) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(std::uint64_t seed) {\n"
                       "  Rng a(seed);\n"
                       "  Rng b = make_rng(derive_seed(seed, 1));\n"
                       "  auto c = make_rng(seed);\n"
                       "  a(); b(); c();\n"
                       "}\n"}});
  EXPECT_EQ(count_rule(r, "rng-copy"), 0u);
}

TEST(RngCopy, AutoCopyOfStreamIsFlaggedButReferenceIsNot) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Rng& g) {\n"
                       "  auto& alias = g;\n"
                       "  auto dup = g;\n"
                       "  alias(); dup();\n"
                       "}\n"}});
  ASSERT_EQ(count_rule(r, "rng-copy"), 1u);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(RngCaptured, FlagsDrawFromCapturedRngInParallelFor) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Pool& pool, Rng& g) {\n"
                       "  pool.parallel_for(8, 1, [&](std::size_t c) {\n"
                       "    auto x = g();\n"
                       "    use(x, c);\n"
                       "  });\n"
                       "}\n"}});
  ASSERT_EQ(count_rule(r, "rng-captured-in-parallel"), 1u);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(RngCaptured, PerChunkDerivationInsideLambdaIsClean) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Pool& pool, std::uint64_t seed, Rng& g) {\n"
                       "  g();\n"
                       "  pool.parallel_for(8, 1, [&](std::size_t c) {\n"
                       "    Rng local = make_rng(derive_seed(seed, c));\n"
                       "    local();\n"
                       "  });\n"
                       "}\n"}});
  EXPECT_EQ(count_rule(r, "rng-captured-in-parallel"), 0u);
}

TEST(RngCaptured, ShadowingDeclarationInsideLambdaIsClean) {
  const auto r = run({{"src/util/a.cpp",
                       "void f(Pool& pool, std::uint64_t seed, Rng& g) {\n"
                       "  pool.parallel_for(8, 1, [&](std::size_t c) {\n"
                       "    Rng g = make_rng(derive_seed(seed, c));\n"
                       "    g();\n"
                       "  });\n"
                       "}\n"}});
  EXPECT_EQ(count_rule(r, "rng-captured-in-parallel"), 0u);
}

// ---------------------------------------------------------------------------
// Determinism purity
// ---------------------------------------------------------------------------

TEST(Purity, WallClockReachableFromStatsCarriesCallPath) {
  const auto r = run(
      {{"src/stats/probe.cpp", "int probe_entry() {\n  return helper(1);\n}\n"},
       {"src/util/h.cpp",
        "int helper(int x) {\n  auto t = Clock::now();\n  return x;\n}\n"}});
  ASSERT_EQ(count_rule(r, "pure-wall-clock"), 1u);
  const Finding& f = r.findings[0];
  EXPECT_EQ(f.file, "src/util/h.cpp");
  EXPECT_EQ(f.line, 2);
  EXPECT_EQ(f.path, "probe_entry -> helper");
}

TEST(Purity, UnreachableWallClockIsNotFlagged) {
  const auto r = run(
      {{"src/stats/probe.cpp", "int probe_entry() {\n  return 1;\n}\n"},
       {"src/util/h.cpp",
        "int helper(int x) {\n  auto t = Clock::now();\n  return x;\n}\n"}});
  EXPECT_EQ(count_rule(r, "pure-wall-clock"), 0u);
  EXPECT_EQ(r.entry_points, 1u);
  EXPECT_EQ(r.reachable_functions, 1u);
}

TEST(Purity, AccumulateWithFloatInitReachableIsFlagged) {
  const auto r = run(
      {{"src/stats/probe.cpp", "double probe_entry() {\n  return s();\n}\n"},
       {"src/util/m.cpp",
        "double s() {\n"
        "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
        "}\n"}});
  EXPECT_EQ(count_rule(r, "pure-float-reduce"), 1u);
}

TEST(Purity, IntegerAccumulateIsClean) {
  const auto r = run(
      {{"src/stats/probe.cpp", "long probe_entry() {\n  return s();\n}\n"},
       {"src/util/m.cpp",
        "long s() {\n"
        "  return std::accumulate(v.begin(), v.end(), 0ULL);\n"
        "}\n"}});
  EXPECT_EQ(count_rule(r, "pure-float-reduce"), 0u);
}

TEST(Purity, FloatPlusEqualsInsideStatsIsFlagged) {
  const auto r = run({{"src/stats/probe.cpp",
                       "double probe_entry() {\n"
                       "  double s = 0.0;\n"
                       "  s += 1.5;\n"
                       "  return s;\n"
                       "}\n"}});
  ASSERT_EQ(count_rule(r, "pure-float-reduce"), 1u);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(Purity, FloatPlusEqualsOutsideStatsIsNotFlagged) {
  // File-local float += outside src/stats stays duti-lint's jurisdiction;
  // the analyzer only chases accumulate-style folds across TU boundaries.
  const auto r = run(
      {{"src/stats/probe.cpp", "double probe_entry() {\n  return s();\n}\n"},
       {"src/util/m.cpp",
        "double s() {\n  double t = 0.0;\n  t += 1.5;\n  return t;\n}\n"}});
  EXPECT_EQ(count_rule(r, "pure-float-reduce"), 0u);
}

TEST(Purity, UnorderedIterationReachableIsFlagged) {
  const auto r = run(
      {{"src/stats/probe.cpp", "void probe_entry() {\n  iterate();\n}\n"},
       {"src/util/u.cpp",
        "void iterate() {\n"
        "  std::unordered_map<int, int> m;\n"
        "  for (auto& kv : m) {\n"
        "    use(kv);\n"
        "  }\n"
        "}\n"}});
  ASSERT_EQ(count_rule(r, "pure-unordered-iteration"), 1u);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(Purity, UnorderedLookupWithoutIterationIsClean) {
  const auto r = run(
      {{"src/stats/probe.cpp", "void probe_entry() {\n  lookup();\n}\n"},
       {"src/util/u.cpp",
        "void lookup() {\n"
        "  std::unordered_map<int, int> m;\n"
        "  m.insert({1, 2});\n"
        "  use(m.count(1));\n"
        "}\n"}});
  EXPECT_EQ(count_rule(r, "pure-unordered-iteration"), 0u);
}

TEST(Purity, LocaleUseReachableIsFlagged) {
  const auto r = run(
      {{"src/stats/probe.cpp", "void probe_entry() {\n  fmt();\n}\n"},
       {"src/util/u.cpp",
        "void fmt() {\n  auto loc = std::locale();\n}\n"}});
  EXPECT_EQ(count_rule(r, "pure-locale"), 1u);
}

// ---------------------------------------------------------------------------
// Suppressions (shared duti-lint grammar)
// ---------------------------------------------------------------------------

TEST(Suppression, JustifiedAllowCreditsAndSuppresses) {
  const auto r = run(
      {{"src/stats/probe.cpp", "double probe_entry() {\n  return s();\n}\n"},
       {"src/util/m.cpp",
        "double s() {\n"
        "  // duti-lint: allow(pure-float-reduce) -- fixture justification\n"
        "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
        "}\n"}});
  EXPECT_EQ(count_rule(r, "pure-float-reduce"), 0u);
  EXPECT_EQ(count_rule(r, "stale-suppression"), 0u);
  EXPECT_EQ(r.suppressions_used, 1u);
  EXPECT_TRUE(r.findings.empty());
}

TEST(Suppression, UnjustifiedAllowDoesNotApply) {
  const auto r = run(
      {{"src/stats/probe.cpp", "double probe_entry() {\n  return s();\n}\n"},
       {"src/util/m.cpp",
        "double s() {\n"
        "  // duti-lint: allow(pure-float-reduce)\n"
        "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
        "}\n"}});
  EXPECT_EQ(count_rule(r, "pure-float-reduce"), 1u);
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(Suppression, StaleAnalyzerSuppressionIsFlagged) {
  const auto r = run({{"src/util/a.cpp",
                       "// duti-lint: allow(rng-copy) -- nothing here\n"
                       "int x = 1;\n"}});
  ASSERT_EQ(count_rule(r, "stale-suppression"), 1u);
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_NE(r.findings[0].message.find("rng-copy"), std::string::npos);
}

TEST(Suppression, StaleFileScopedSuppressionIsFlagged) {
  const auto r = run({{"src/util/a.cpp",
                       "// duti-lint: allow-file(pure-wall-clock) -- unused\n"
                       "int x = 1;\n"}});
  EXPECT_EQ(count_rule(r, "stale-suppression"), 1u);
}

TEST(Suppression, LintOwnedRulesAreIgnoredNotStale) {
  // no-wall-clock belongs to duti-lint: the analyzer must neither apply
  // nor stale-flag it. (duti-lint symmetrically skips analyzer rules.)
  const auto r = run({{"src/util/a.cpp",
                       "// duti-lint: allow(no-wall-clock) -- lint's call\n"
                       "auto t = Clock::now();\n"}});
  EXPECT_EQ(count_rule(r, "stale-suppression"), 0u);
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(Registry, AnalyzerRulesMatchLintForeignNamesExactly) {
  std::set<std::string> own;
  for (const auto& rule : duti::analyze::default_rules()) {
    EXPECT_FALSE(rule.description.empty()) << rule.name;
    EXPECT_TRUE(own.insert(rule.name).second) << rule.name;
  }
  // Both tools run a stale check for the rules they own; every other
  // analyzer rule must be advertised to duti-lint as foreign, or lint's
  // unknown-rule would reject the shared suppressions.
  ASSERT_TRUE(own.count("stale-suppression"));
  own.erase("stale-suppression");
  const auto& foreign = duti::lint::foreign_rule_names();
  EXPECT_EQ(own, std::set<std::string>(foreign.begin(), foreign.end()));
}

// ---------------------------------------------------------------------------
// Report, fingerprint, CLI
// ---------------------------------------------------------------------------

TEST(Report, JsonShapeHasStableKeys) {
  const auto r = run(
      {{"src/util/rng.hpp", "#pragma once\nint util_fn();\n"},
       {"src/stats/h.cpp",
        "#include \"util/rng.hpp\"\nint f() {\n  return 1;\n}\n"}});
  const std::string js = duti::analyze::to_json(r);
  EXPECT_NE(js.find("\"tool\": \"duti_analyze\""), std::string::npos);
  EXPECT_NE(js.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"fingerprint\": \""), std::string::npos);
  EXPECT_NE(js.find("\"module_edges\": ["), std::string::npos);
  EXPECT_NE(js.find("[\"stats\", \"util\"]"), std::string::npos);
  EXPECT_NE(js.find("\"rule_counts\""), std::string::npos);
  EXPECT_NE(js.find("\"findings\": []"), std::string::npos);
}

TEST(Report, HumanOutputCarriesReachabilityPath) {
  const auto r = run(
      {{"src/stats/probe.cpp", "int probe_entry() {\n  return helper(1);\n}\n"},
       {"src/util/h.cpp",
        "int helper(int x) {\n  auto t = Clock::now();\n  return x;\n}\n"}});
  const std::string human = duti::analyze::to_human(r);
  EXPECT_NE(human.find("src/util/h.cpp:2"), std::string::npos);
  EXPECT_NE(human.find("reachable via probe_entry -> helper"),
            std::string::npos);
}

TEST(Report, DotOutputRanksLayersAndListsEdges) {
  const auto r = run({{"src/util/rng.hpp", "#pragma once\n"},
                      {"src/stats/h.cpp", "#include \"util/rng.hpp\"\n"}});
  const std::string dot = duti::analyze::to_dot(r, policy_of(kPolicy));
  EXPECT_NE(dot.find("digraph duti_modules"), std::string::npos);
  EXPECT_NE(dot.find("rank=same; \"util\""), std::string::npos);
  EXPECT_NE(dot.find("\"stats\" -> \"util\";"), std::string::npos);
}

TEST(Fingerprint, InvariantToInputOrder) {
  const std::vector<SourceFile> forward = {
      {"src/util/rng.hpp", "#pragma once\nint util_fn();\n"},
      {"src/stats/h.cpp", "#include \"util/rng.hpp\"\nint f() {\n"
                          "  return 1;\n}\n"}};
  std::vector<SourceFile> reversed(forward.rbegin(), forward.rend());
  const auto a = run(forward);
  const auto b = run(reversed);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.fingerprint, 0u);
}

TEST(Fingerprint, SensitiveToGraphChanges) {
  const auto a = run({{"src/util/rng.hpp", "#pragma once\n"},
                      {"src/stats/h.cpp", "int f() {\n  return 1;\n}\n"}});
  const auto b = run({{"src/util/rng.hpp", "#pragma once\n"},
                      {"src/stats/h.cpp",
                       "#include \"util/rng.hpp\"\nint f() {\n"
                       "  return 1;\n}\n"}});
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// The CLI contract, exercised against a small on-disk tree: 0 clean,
// 1 findings, 2 usage/IO error.
class AnalyzeCli : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() / "duti_analyze_cli_tree";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "tools/duti_analyze");
    std::filesystem::create_directories(root_ / "src/util");
    std::filesystem::create_directories(root_ / "src/stats");
    write("tools/duti_analyze/layers.txt", "layer util\nlayer stats\n");
    write("src/util/a.hpp", "#pragma once\nint util_fn();\n");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << content;
  }

  int cli(const std::vector<std::string>& extra, std::string* stdout_text,
          std::string* stderr_text) {
    std::vector<std::string> args = {"duti_analyze", "--root",
                                     root_.string()};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<const char*> argv;
    argv.reserve(args.size());
    for (const auto& a : args) argv.push_back(a.c_str());
    std::ostringstream out, err;
    const int code = duti::analyze::run_analyze_cli(
        static_cast<int>(argv.size()), argv.data(), out, err);
    if (stdout_text != nullptr) *stdout_text = out.str();
    if (stderr_text != nullptr) *stderr_text = err.str();
    return code;
  }

  std::filesystem::path root_;
};

TEST_F(AnalyzeCli, CleanTreeExitsZero) {
  std::string out;
  EXPECT_EQ(cli({}, &out, nullptr), 0);
  EXPECT_NE(out.find("0 findings"), std::string::npos);
}

TEST_F(AnalyzeCli, SeededLayeringViolationExitsOne) {
  write("src/util/bad.hpp", "#pragma once\n#include \"stats/s.hpp\"\n");
  write("src/stats/s.hpp", "#pragma once\n");
  std::string out;
  EXPECT_EQ(cli({}, &out, nullptr), 1);
  EXPECT_NE(out.find("layer-violation"), std::string::npos);
}

TEST_F(AnalyzeCli, SeededRngCopyExitsOne) {
  write("src/util/bad.cpp", "void f(Rng& g) {\n  Rng a = g;\n  a();\n}\n");
  std::string out;
  EXPECT_EQ(cli({}, &out, nullptr), 1);
  EXPECT_NE(out.find("rng-copy"), std::string::npos);
}

TEST_F(AnalyzeCli, UnknownFlagAndMissingPolicyExitTwo) {
  std::string err;
  EXPECT_EQ(cli({"--nope"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown option"), std::string::npos);
  EXPECT_EQ(cli({"--layers", (root_ / "missing.txt").string()}, nullptr,
                &err),
            2);
}

TEST_F(AnalyzeCli, JsonReportLandsInOutFile) {
  const std::string out_file = (root_ / "report.json").string();
  EXPECT_EQ(cli({"--json", "--out", out_file}, nullptr, nullptr), 0);
  std::ifstream in(out_file, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"tool\": \"duti_analyze\""), std::string::npos);
}

}  // namespace
