// Cross-module integration tests: miniature versions of the bench
// experiments, wiring testers + harness + core machinery together.
#include <gtest/gtest.h>

#include <cmath>

#include "core/divergence.hpp"
#include "core/message_analysis.hpp"
#include "core/bounds.hpp"
#include "core/predictions.hpp"
#include "stats/harness.hpp"
#include "stats/workloads.hpp"
#include "testers/centralized.hpp"
#include "testers/collision.hpp"
#include "testers/distributed.hpp"

namespace duti {
namespace {

/// Measured minimal per-player q for the threshold tester at (n, k, eps).
std::uint64_t measure_q_star(std::uint64_t n, unsigned k, double eps,
                             std::uint64_t seed, std::size_t trials = 120) {
  const ProbeFn probe = [=](std::uint64_t q) {
    Rng calib_rng = make_rng(seed, q, 0xCA11B);
    const DistributedThresholdTester tester(
        {n, k, static_cast<unsigned>(q), eps}, calib_rng);
    const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
      return tester.run(src, rng);
    };
    return probe_success(run, workloads::uniform_factory(n),
                         workloads::paninski_far_factory(n, eps), trials,
                         derive_seed(seed, q));
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;
  cfg.trials = trials;
  cfg.seed = seed;
  const auto result = find_min_param(probe, cfg);
  EXPECT_TRUE(result.found);
  return result.minimum;
}

TEST(IntegrationE1Mini, ThresholdTesterQStarDropsWithK) {
  // The headline phenomenon: more nodes => fewer samples per node, with
  // roughly sqrt scaling (Theorems 1.1 / tester of [7]).
  const std::uint64_t n = 2048;
  const double eps = 0.5;
  const auto q4 = measure_q_star(n, 4, eps, 51);
  const auto q64 = measure_q_star(n, 64, eps, 52);
  EXPECT_LT(q64, q4);
  // sqrt(16) = 4x predicted gain; allow a wide band for trial noise.
  const double gain = static_cast<double>(q4) / static_cast<double>(q64);
  EXPECT_GE(gain, 2.0);
  EXPECT_LE(gain, 9.0);
}

TEST(IntegrationE1Mini, MeasuredQStarRespectsTheorem61LowerBound) {
  // The paper's lower bound (with its explicit inequality-(13) constants)
  // must lie below any measured tester cost.
  const std::uint64_t n = 2048;
  const double eps = 0.5;
  for (unsigned k : {4u, 16u}) {
    const auto measured = measure_q_star(n, k, eps, derive_seed(53, k));
    const double lower =
        theorem61_q_lower_bound(static_cast<double>(n), k, eps);
    EXPECT_GE(static_cast<double>(measured), lower)
        << "k=" << k << " measured=" << measured << " lower=" << lower;
  }
}

TEST(IntegrationE2Mini, AndRuleCostsMoreThanThresholdRule) {
  // Theorem 1.2's phenomenon, measured: the AND tester's minimal q at
  // moderate k exceeds the threshold tester's.
  const std::uint64_t n = 1024;
  const double eps = 0.5;
  const unsigned k = 32;

  const ProbeFn and_probe = [=](std::uint64_t q) {
    const DistributedAndTester tester({n, k, static_cast<unsigned>(q), eps});
    const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
      return tester.run(src, rng);
    };
    return probe_success(run, workloads::uniform_factory(n),
                         workloads::paninski_far_factory(n, eps), 120,
                         derive_seed(54, q));
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1 << 14;
  const auto and_result = find_min_param(and_probe, cfg);
  ASSERT_TRUE(and_result.found);

  const auto threshold_q = measure_q_star(n, k, eps, 55);
  EXPECT_GT(and_result.minimum, threshold_q);
}

TEST(IntegrationLemma42, HoldsForTheActualCollisionVoterMessageFunction) {
  // Build the REAL player message function G used by the testers (vote on
  // the local collision count) as a dense Boolean function on the small
  // cube universe, and check Lemma 4.2 (with the corrected factor 2, see
  // test_message_analysis) against exact enumeration over z.
  const unsigned ell = 2, q = 2;
  const double eps = 0.2;
  const CubeDomain dom(ell);
  const double n = static_cast<double>(dom.universe_size());
  const SampleTupleCodec codec(dom, q);
  const double local_t = expected_collision_pairs_uniform(n, q);
  const auto g = BooleanCubeFunction::tabulate(
      codec.total_bits(), [&](std::uint64_t packed) {
        std::vector<std::uint64_t> elements(q);
        for (unsigned j = 0; j < q; ++j) {
          elements[j] = codec.element(packed, j);
        }
        const bool reject =
            static_cast<double>(collision_pairs(elements)) > local_t;
        return reject ? 0.0 : 1.0;  // G = the bit sent (1 = accept)
      });
  const MessageAnalysis analysis(codec, g);
  const auto moments = analysis.z_moments_exact(eps);
  ASSERT_TRUE(bounds::lemma42_valid(n, q, eps));
  const double bound =
      2.0 * bounds::lemma42_bound(n, q, eps, analysis.variance());
  EXPECT_LE(moments.second_moment, bound + 1e-12);
}

TEST(IntegrationDivergencePipeline, Fact63CapsExactPerPlayerDivergence) {
  // For the collision-voter G, every fixed z's Bernoulli divergence
  // D(nu_z(G) || mu(G)) is capped by the chi-squared bound — the exact step
  // (11) of Theorem 6.1's proof.
  const unsigned ell = 2, q = 2;
  const double eps = 0.5;
  const CubeDomain dom(ell);
  const SampleTupleCodec codec(dom, q);
  const double local_t =
      expected_collision_pairs_uniform(static_cast<double>(dom.universe_size()), q);
  const auto g = BooleanCubeFunction::tabulate(
      codec.total_bits(), [&](std::uint64_t packed) {
        std::vector<std::uint64_t> elements(q);
        for (unsigned j = 0; j < q; ++j) {
          elements[j] = codec.element(packed, j);
        }
        return static_cast<double>(collision_pairs(elements)) > local_t
                   ? 0.0
                   : 1.0;
      });
  const MessageAnalysis analysis(codec, g);
  const double mu_g = analysis.mu();
  ASSERT_GT(mu_g, 0.0);
  ASSERT_LT(mu_g, 1.0);
  Rng rng(56);
  for (int t = 0; t < 50; ++t) {
    const NuZ nu(dom, PerturbationVector::random(ell, rng), eps);
    const double alpha = analysis.nu_z_exact(nu);
    EXPECT_LE(kl_bernoulli(alpha, mu_g),
              chi2_bernoulli_bound(alpha, mu_g) + 1e-12);
  }
}

TEST(IntegrationCentralizedVsDistributed, TotalSamplesComparable) {
  // Sanity: at its measured optimum, the distributed threshold tester's
  // TOTAL sample count (k * q) is within a constant factor of the
  // centralized cost — distribution parallelizes, it does not create
  // information.
  const std::uint64_t n = 2048;
  const double eps = 0.5;
  const unsigned k = 16;
  const auto q_star = measure_q_star(n, k, eps, 57);
  const double total = static_cast<double>(k) * static_cast<double>(q_star);
  const double centralized = predict::centralized_q(static_cast<double>(n), eps);
  EXPECT_GE(total, 0.3 * centralized);
  EXPECT_LE(total, 60.0 * centralized);
}

}  // namespace
}  // namespace duti
