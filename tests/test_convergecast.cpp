#include "sim/convergecast.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dist/generators.hpp"
#include "testers/tree_tester.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

TEST(SpanningTree, PathFromEnd) {
  Network net(5);
  add_path(net);
  const auto tree = bfs_spanning_tree(net, 0);
  EXPECT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.height, 4u);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(tree.parent[v], v - 1);
    EXPECT_EQ(tree.depth[v], v);
  }
}

TEST(SpanningTree, GridHeightIsManhattanRadius) {
  Network net(16);
  add_grid(net, 4, 4);
  const auto corner = bfs_spanning_tree(net, 0);
  EXPECT_EQ(corner.height, 6u);  // to opposite corner: 3 + 3
  const auto center = bfs_spanning_tree(net, 5);  // (1,1)
  EXPECT_EQ(center.height, 4u);  // to (3,3): 2+2
}

TEST(SpanningTree, BinaryTreeDepths) {
  Network net(7);
  add_binary_tree(net);
  const auto tree = bfs_spanning_tree(net, 0);
  EXPECT_EQ(tree.height, 2u);
  EXPECT_EQ(tree.children(0).size(), 2u);
  EXPECT_EQ(tree.children(1).size(), 2u);
  EXPECT_EQ(tree.children(3).size(), 0u);
}

TEST(SpanningTree, CycleHalvesTheDistance) {
  Network net(8);
  add_cycle(net);
  const auto tree = bfs_spanning_tree(net, 0);
  EXPECT_EQ(tree.height, 4u);  // farthest node on an 8-cycle
}

TEST(SpanningTree, DisconnectedThrows) {
  Network net(4);
  net.add_edge(0, 1);
  net.add_edge(1, 0);
  EXPECT_THROW(bfs_spanning_tree(net, 0), Error);
}

TEST(SpanningTree, AsymmetricEdgeThrows) {
  Network net(2);
  net.add_edge(0, 1);  // no reverse edge
  EXPECT_THROW(bfs_spanning_tree(net, 0), Error);
}

TEST(Convergecast, SumsAllValuesOnPath) {
  Network net(6);
  add_path(net);
  const auto tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> values{1, 2, 3, 4, 5, 6};
  Rng rng(1);
  const auto result = convergecast_sum(net, tree, values, 8, rng);
  EXPECT_EQ(result.root_sum, 21u);
  EXPECT_EQ(result.stats.messages_sent, 5u);  // one per non-root node
  EXPECT_EQ(result.stats.bits_sent, 40u);
  // Path of height 5: leaf's message needs 5 hops of pipelining.
  EXPECT_LE(result.stats.rounds_executed, tree.height + 2);
}

TEST(Convergecast, SumsOnGridAndStarAndTree) {
  for (auto topo : {0, 1, 2}) {
    Network net(9);
    NodeId root = 0;
    if (topo == 0) {
      add_grid(net, 3, 3);
    } else if (topo == 1) {
      net.add_star(4);
      root = 4;
    } else {
      add_binary_tree(net);
    }
    const auto tree = bfs_spanning_tree(net, root);
    std::vector<std::uint64_t> values(9);
    std::iota(values.begin(), values.end(), 10);  // 10..18 -> sum 126
    Rng rng(2);
    const auto result = convergecast_sum(net, tree, values, 8, rng);
    EXPECT_EQ(result.root_sum, 126u) << "topo=" << topo;
    EXPECT_EQ(result.stats.messages_sent, 8u);
  }
}

TEST(Convergecast, StarFinishesInTwoRounds) {
  Network net(10);
  net.add_star(0);
  const auto tree = bfs_spanning_tree(net, 0);
  EXPECT_EQ(tree.height, 1u);
  std::vector<std::uint64_t> values(10, 1);
  Rng rng(3);
  const auto result = convergecast_sum(net, tree, values, 1, rng);
  EXPECT_EQ(result.root_sum, 10u);
  EXPECT_LE(result.stats.rounds_executed, 2u);
}

TEST(Convergecast, SizeMismatchThrows) {
  Network net(3);
  add_path(net);
  const auto tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> wrong(2, 1);
  Rng rng(4);
  EXPECT_THROW((void)convergecast_sum(net, tree, wrong, 1, rng),
               InvalidArgument);
}

TEST(TreeTester, GridTesterSeparatesUniformFromFar) {
  const std::uint64_t n = 1024;
  const double eps = 0.5;
  const unsigned q = 64;  // generous for k = 36 on n = 1024
  Network net(36);
  add_grid(net, 6, 6);
  Rng calib(5);
  const TreeUniformityTester tester(net, 0, {n, q, eps}, calib);
  SuccessCounter uniform_ok, far_ok;
  const UniformSource uniform(n);
  for (int t = 0; t < 80; ++t) {
    Rng r1 = make_rng(6, t);
    uniform_ok.record(tester.run(uniform, r1));
    Rng g = make_rng(7, t);
    const DistributionSource far(gen::paninski(n, eps, g));
    Rng r2 = make_rng(8, t);
    far_ok.record(!tester.run(far, r2));
  }
  EXPECT_GE(uniform_ok.rate(), 2.0 / 3.0);
  EXPECT_GE(far_ok.rate(), 2.0 / 3.0);
}

TEST(TreeTester, RoundsScaleWithDiameterNotSize) {
  const std::uint64_t n = 256;
  const unsigned q = 16;
  // 64 nodes as a path (height 63) vs as a star (height 1).
  Network path_net(64);
  add_path(path_net);
  Rng c1(9);
  const TreeUniformityTester path_tester(path_net, 0, {n, q, 0.5}, c1, 500);
  Network star_net(64);
  star_net.add_star(0);
  Rng c2(10);
  const TreeUniformityTester star_tester(star_net, 0, {n, q, 0.5}, c2, 500);
  const UniformSource uniform(n);
  Rng r1(11), r2(12);
  const auto path_result = path_tester.run_epoch(uniform, r1);
  const auto star_result = star_tester.run_epoch(uniform, r2);
  EXPECT_GT(path_result.stats.rounds_executed, 30u);
  EXPECT_LE(star_result.stats.rounds_executed, 2u);
  // Same communication volume either way: one message per non-root node.
  EXPECT_EQ(path_result.stats.messages_sent, 63u);
  EXPECT_EQ(star_result.stats.messages_sent, 63u);
}

TEST(TreeTester, VoteCountMatchesDirectComputation) {
  // The convergecast total must equal the sum of the local votes computed
  // offline with the same seeds.
  const std::uint64_t n = 128;
  const unsigned q = 16;
  Network net(8);
  add_cycle(net);
  const auto tree = bfs_spanning_tree(net, 0);
  const UniformSource uniform(n);
  const double local_t = 16.0 * 15.0 / 2.0 / 128.0;
  Rng r1(13);
  const auto result =
      tree_uniformity_test(net, tree, uniform, q, local_t, 3, r1);
  EXPECT_LE(result.reject_votes, 8u);
  EXPECT_EQ(result.accept, result.reject_votes < 3);
}

}  // namespace
}  // namespace duti
