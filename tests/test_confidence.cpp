#include "util/confidence.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(Wilson, ZeroTrialsIsFullInterval) {
  const auto iv = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 1.0);
}

TEST(Wilson, ContainsEmpiricalRateInInterior) {
  // Note: at the boundaries (0 or all successes) the Wilson interval is
  // strictly inside [0,1] and deliberately excludes the degenerate rate.
  for (std::uint64_t trials : {10ULL, 100ULL, 1000ULL}) {
    for (std::uint64_t s = trials / 5; s < trials; s += trials / 5) {
      const auto iv = wilson_interval(s, trials);
      const double p = static_cast<double>(s) / static_cast<double>(trials);
      EXPECT_TRUE(iv.contains(p)) << s << "/" << trials;
    }
  }
}

TEST(Wilson, BoundaryIntervalsShrinkTowardTruth) {
  const auto zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto full = wilson_interval(100, 100);
  EXPECT_LT(full.lo, 1.0);
  EXPECT_GT(full.lo, 0.9);
}

TEST(Wilson, StaysInUnitInterval) {
  const auto all = wilson_interval(100, 100);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.9);
  const auto none = wilson_interval(0, 100);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.1);
}

TEST(Wilson, NarrowsWithTrials) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.width(), small.width());
}

TEST(Wilson, HigherZIsWider) {
  const auto z196 = wilson_interval(30, 100, 1.96);
  const auto z258 = wilson_interval(30, 100, 2.58);
  EXPECT_GT(z258.width(), z196.width());
}

TEST(Wilson, InvalidArgsThrow) {
  EXPECT_THROW((void)wilson_interval(5, 4), InvalidArgument);
  EXPECT_THROW((void)wilson_interval(1, 4, 0.0), InvalidArgument);
}

TEST(Wilson, Coverage) {
  // Empirical coverage check: the 95% interval should contain the true p
  // in at least ~90% of repetitions (conservatively loose bar).
  Rng rng(99);
  const double p = 0.3;
  const int reps = 500;
  const int trials = 200;
  int covered = 0;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t hits = 0;
    for (int t = 0; t < trials; ++t) {
      if (rng.next_bernoulli(p)) ++hits;
    }
    if (wilson_interval(hits, trials).contains(p)) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.9 * reps));
}

TEST(HoeffdingTrials, MatchesFormula) {
  const auto n = hoeffding_trials(0.1, 0.05);
  // log(2/0.05) / (2 * 0.01) = ~184.4 -> 185
  EXPECT_EQ(n, 185u);
  EXPECT_THROW((void)hoeffding_trials(0.0, 0.1), InvalidArgument);
  EXPECT_THROW((void)hoeffding_trials(0.1, 1.5), InvalidArgument);
}

TEST(HoeffdingTail, DecreasesWithTrials) {
  EXPECT_GT(hoeffding_tail(10, 0.1), hoeffding_tail(1000, 0.1));
  EXPECT_LE(hoeffding_tail(1, 0.01), 1.0);
}

TEST(NormalQuantile, MatchesKnownValues) {
  // Reference values of Phi^-1 to 4+ decimals (Acklam's approximation is
  // accurate to ~1e-9 relative error).
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.95996398, 1e-6);
  EXPECT_NEAR(normal_quantile(0.995), 2.57582930, 1e-6);
  EXPECT_NEAR(normal_quantile(0.9999), 3.71901649, 1e-6);
  EXPECT_NEAR(normal_quantile(0.0013499), -3.0, 1e-3);
}

TEST(NormalQuantile, SymmetricAndMonotone) {
  for (const double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9) << p;
  }
  double prev = normal_quantile(0.001);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(NormalQuantile, RejectsDegenerateProbabilities) {
  EXPECT_THROW((void)normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW((void)normal_quantile(1.0), InvalidArgument);
  EXPECT_THROW((void)normal_quantile(-0.2), InvalidArgument);
}

TEST(UnionBoundZ, SinglePeekIsTheTwoSidedQuantile) {
  EXPECT_NEAR(union_bound_z(0.05, 1), normal_quantile(0.975), 1e-9);
}

TEST(UnionBoundZ, GrowsWithPeekCountAndShrinkingDelta) {
  // More peeks split the failure budget further, so each peek needs a
  // wider interval; same for a smaller total delta.
  EXPECT_GT(union_bound_z(0.05, 10), union_bound_z(0.05, 1));
  EXPECT_GT(union_bound_z(0.001, 10), union_bound_z(0.05, 10));
  // Growth is logarithmic: even thousands of peeks stay at a usable z.
  EXPECT_LT(union_bound_z(1e-3, 10000), 6.0);
  EXPECT_THROW((void)union_bound_z(0.0, 4), InvalidArgument);
  EXPECT_THROW((void)union_bound_z(0.5, 0), InvalidArgument);
}

TEST(SuccessCounter, TallyAndRate) {
  SuccessCounter c;
  EXPECT_EQ(c.trials(), 0u);
  EXPECT_DOUBLE_EQ(c.rate(), 0.0);
  c.record(true);
  c.record(true);
  c.record(false);
  EXPECT_EQ(c.trials(), 3u);
  EXPECT_EQ(c.successes(), 2u);
  EXPECT_NEAR(c.rate(), 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(c.wilson().contains(2.0 / 3.0));
}

}  // namespace
}  // namespace duti
