#include "stats/workloads.hpp"

#include <gtest/gtest.h>

#include "dist/generators.hpp"
#include "util/error.hpp"

namespace duti {
namespace {

TEST(Workloads, UniformFactory) {
  const auto factory = workloads::uniform_factory(128);
  Rng rng(1);
  const auto source = factory(rng);
  EXPECT_EQ(source->domain_size(), 128u);
  EXPECT_DOUBLE_EQ(source->l1_from_uniform(), 0.0);
  for (int t = 0; t < 100; ++t) {
    EXPECT_LT(source->sample(rng), 128u);
  }
}

TEST(Workloads, PaninskiFarFactoryFreshPerTrial) {
  const auto factory = workloads::paninski_far_factory(64, 0.5);
  Rng rng(2);
  const auto a = factory(rng);
  const auto b = factory(rng);
  EXPECT_NEAR(a->l1_from_uniform(), 0.5, 1e-12);
  EXPECT_NEAR(b->l1_from_uniform(), 0.5, 1e-12);
  // Fresh perturbations: the underlying pmfs should differ.
  const auto* da = dynamic_cast<const DistributionSource*>(a.get());
  const auto* db = dynamic_cast<const DistributionSource*>(b.get());
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_GT(da->distribution().l1_distance(db->distribution()), 0.0);
}

TEST(Workloads, NuZFarFactory) {
  const auto factory = workloads::nu_z_far_factory(5, 0.4);
  Rng rng(3);
  const auto source = factory(rng);
  EXPECT_EQ(source->domain_size(), 64u);  // 2^{5+1}
  EXPECT_DOUBLE_EQ(source->l1_from_uniform(), 0.4);
  for (int t = 0; t < 100; ++t) {
    EXPECT_LT(source->sample(rng), 64u);
  }
}

TEST(Workloads, NuZFactoryScalesToLargeDomains) {
  // O(1) per sample regardless of universe size.
  const auto factory = workloads::nu_z_far_factory(24, 0.3);
  Rng rng(4);
  const auto source = factory(rng);
  EXPECT_EQ(source->domain_size(), 1ULL << 25);
  std::vector<std::uint64_t> samples;
  source->sample_many(rng, 1000, samples);
  EXPECT_EQ(samples.size(), 1000u);
}

TEST(Workloads, FixedFactoryReturnsSameDistribution) {
  const auto dist = gen::zipf(32, 1.0);
  const auto factory = workloads::fixed_factory(dist);
  Rng rng(5);
  const auto a = factory(rng);
  const auto b = factory(rng);
  const auto* da = dynamic_cast<const DistributionSource*>(a.get());
  const auto* db = dynamic_cast<const DistributionSource*>(b.get());
  ASSERT_NE(da, nullptr);
  EXPECT_DOUBLE_EQ(da->distribution().l1_distance(db->distribution()), 0.0);
}

TEST(Workloads, TrialInvarianceFlags) {
  // The invariance promise drives the probe loops' per-worker source reuse;
  // rng-consuming factories must NOT carry it.
  EXPECT_TRUE(workloads::uniform_factory(64).trial_invariant());
  EXPECT_TRUE(workloads::fixed_factory(gen::zipf(16, 1.0)).trial_invariant());
  EXPECT_FALSE(workloads::paninski_far_factory(64, 0.5).trial_invariant());
  EXPECT_FALSE(workloads::nu_z_far_factory(5, 0.4).trial_invariant());
}

TEST(SampleSources, BatchedDrawsMatchScalarDraws) {
  // sample_many overrides must consume the RNG exactly like repeated
  // sample() calls — batch and scalar paths are interchangeable bit-for-bit.
  const auto check = [](const SampleSource& source) {
    Rng scalar_rng(99), batch_rng(99);
    std::vector<std::uint64_t> batch;
    source.sample_many(batch_rng, 257, batch);
    ASSERT_EQ(batch.size(), 257u);
    for (const std::uint64_t b : batch) {
      EXPECT_EQ(b, source.sample(scalar_rng));
    }
  };
  check(UniformSource(1000));
  check(DistributionSource(gen::zipf(64, 1.0)));
  Rng rng(7);
  check(NuZSource(
      NuZ(CubeDomain(5), PerturbationVector::random(5, rng), 0.4)));
  check(HistogramSource({5, 0, 3, 12, 1}));
}

TEST(SampleSources, HistogramSource) {
  HistogramSource source({0, 10, 0, 0});
  EXPECT_EQ(source.domain_size(), 4u);
  EXPECT_DOUBLE_EQ(source.l1_from_uniform(), 1.5);  // |1-1/4| + 3*|0-1/4|
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(source.sample(rng), 1u);  // all mass on element 1
  }
  EXPECT_THROW(HistogramSource({0, 0}), InvalidArgument);
}

TEST(Workloads, Validation) {
  EXPECT_THROW(workloads::uniform_factory(0), InvalidArgument);
  EXPECT_THROW(workloads::paninski_far_factory(63, 0.5), InvalidArgument);
  EXPECT_THROW(workloads::paninski_far_factory(64, 0.0), InvalidArgument);
  EXPECT_THROW(workloads::nu_z_far_factory(0, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace duti
