#include "testers/identity_reduction.hpp"

#include <gtest/gtest.h>

#include "dist/generators.hpp"
#include "testers/centralized.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

TEST(IdentityReduction, DyadicTargetIsExactlyUniform) {
  // eta with dyadic masses maps to exactly uniform when the expansion size
  // is the common denominator.
  const DiscreteDistribution eta({0.5, 0.25, 0.25});
  const IdentityReduction red(eta, 8);
  EXPECT_EQ(red.bucket_size(0), 4u);
  EXPECT_EQ(red.bucket_size(1), 2u);
  EXPECT_EQ(red.bucket_size(2), 2u);
  EXPECT_NEAR(red.rounding_error(), 0.0, 1e-12);
}

TEST(IdentityReduction, CellCountsSumExactly) {
  Rng rng(1);
  const auto eta = gen::zipf(17, 1.0);
  const IdentityReduction red(eta, 1000);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 17; ++i) total += red.bucket_size(i);
  EXPECT_EQ(total, 1000u);
}

TEST(IdentityReduction, RoundingErrorShrinksWithExpansion) {
  const auto eta = gen::zipf(10, 1.0);
  const IdentityReduction coarse(eta, 50);
  const IdentityReduction fine(eta, 5000);
  EXPECT_LT(fine.rounding_error(), coarse.rounding_error());
  EXPECT_LT(fine.rounding_error(), 0.01);
}

TEST(IdentityReduction, MappedDistributionMasses) {
  const DiscreteDistribution eta({0.5, 0.5});
  const DiscreteDistribution mu({0.9, 0.1});
  const IdentityReduction red(eta, 4);
  const auto mapped = red.mapped_distribution(mu);
  // Bucket 0 = cells {0,1} each with 0.45; bucket 1 = cells {2,3} each 0.05.
  EXPECT_NEAR(mapped.pmf(0), 0.45, 1e-12);
  EXPECT_NEAR(mapped.pmf(1), 0.45, 1e-12);
  EXPECT_NEAR(mapped.pmf(2), 0.05, 1e-12);
  EXPECT_NEAR(mapped.pmf(3), 0.05, 1e-12);
}

TEST(IdentityReduction, L1DistancePreservedExactlyForDyadicEta) {
  const DiscreteDistribution eta({0.5, 0.25, 0.25});
  const DiscreteDistribution mu({0.3, 0.3, 0.4});
  const IdentityReduction red(eta, 8);
  const auto mapped_mu = red.mapped_distribution(mu);
  const auto mapped_eta = red.mapped_distribution(eta);
  EXPECT_NEAR(mapped_mu.l1_distance(mapped_eta), mu.l1_distance(eta), 1e-12);
  // And mapped eta is uniform, so distance-from-uniform equals it too.
  EXPECT_NEAR(mapped_mu.l1_from_uniform(), mu.l1_distance(eta), 1e-12);
}

TEST(IdentityReduction, MapSamplesLandInTheRightBucket) {
  const DiscreteDistribution eta({0.25, 0.75});
  const IdentityReduction red(eta, 8);
  Rng rng(2);
  for (int t = 0; t < 1000; ++t) {
    const auto cell0 = red.map(0, rng);
    EXPECT_LT(cell0, red.bucket_size(0));
    const auto cell1 = red.map(1, rng);
    EXPECT_GE(cell1, red.bucket_size(0));
    EXPECT_LT(cell1, 8u);
  }
}

TEST(IdentityReduction, EndToEndIdentityTesting) {
  // Test "is mu = eta?" by mapping samples and running the uniformity
  // tester on the expanded domain — the paper's completeness reduction.
  Rng setup_rng(3);
  const std::size_t n = 64;
  const auto eta = gen::zipf(n, 1.0);
  const std::uint64_t expanded = 4096;
  const IdentityReduction red(eta, expanded);
  ASSERT_LT(red.rounding_error(), 0.05);

  const double eps = 0.5;
  const unsigned q = CentralizedCollisionTester::sufficient_q(expanded, eps);
  const CentralizedCollisionTester tester(expanded, eps, q);

  // Case 1: mu == eta -> mapped samples near-uniform -> accept.
  SuccessCounter accepts;
  const DistributionSource eta_source(eta);
  const ReducedSource reduced_eta(eta_source, red);
  for (int t = 0; t < 60; ++t) {
    Rng rng = make_rng(31, t);
    accepts.record(tester.run(reduced_eta, rng));
  }
  EXPECT_GE(accepts.rate(), 0.7);

  // Case 2: mu far from eta (uniform is far from zipf here) -> reject.
  SuccessCounter rejects;
  const DistributionSource mu_source(DiscreteDistribution::uniform(n));
  ASSERT_GT(DiscreteDistribution::uniform(n).l1_distance(eta), eps);
  const ReducedSource reduced_mu(mu_source, red);
  for (int t = 0; t < 60; ++t) {
    Rng rng = make_rng(32, t);
    rejects.record(!tester.run(reduced_mu, rng));
  }
  EXPECT_GE(rejects.rate(), 0.7);
}

TEST(IdentityReduction, Validation) {
  const DiscreteDistribution eta({0.5, 0.5});
  EXPECT_THROW(IdentityReduction(eta, 1), InvalidArgument);
  const IdentityReduction red(eta, 4);
  Rng rng(4);
  EXPECT_THROW((void)red.map(5, rng), InvalidArgument);
}

TEST(ReducedSource, ReportsExpandedDomain) {
  const DiscreteDistribution eta({0.5, 0.5});
  const IdentityReduction red(eta, 16);
  const DistributionSource inner(eta);
  const ReducedSource source(inner, red);
  EXPECT_EQ(source.domain_size(), 16u);
}

}  // namespace
}  // namespace duti
