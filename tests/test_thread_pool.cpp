#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1237;  // not a multiple of any grain below
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 10, [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ChunkLayoutIsDeterministic) {
  // Chunk c must cover [c*grain, min(n, (c+1)*grain)) regardless of which
  // worker runs it — per-chunk reductions key on begin/grain.
  ThreadPool pool(4);
  const std::size_t n = 103, grain = 10;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::atomic<std::uint64_t>> spans(chunks);
  pool.parallel_for(n, grain, [&](std::size_t b, std::size_t e, unsigned) {
    spans[b / grain].store((b << 32) | e);
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint64_t v = spans[c].load();
    EXPECT_EQ(v >> 32, c * grain);
    EXPECT_EQ(v & 0xFFFFFFFFu, std::min(n, (c + 1) * grain));
  }
}

TEST(ThreadPool, WorkerIdsStayBelowSize) {
  ThreadPool pool(3);
  std::atomic<unsigned> max_worker{0};
  pool.parallel_for(1000, 1, [&](std::size_t, std::size_t, unsigned w) {
    unsigned cur = max_worker.load();
    while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_LT(max_worker.load(), pool.size());
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t b, std::size_t, unsigned) {
                          if (b == 42) throw InvalidArgument("boom");
                        }),
      InvalidArgument);
}

TEST(ThreadPool, NestedParallelForCompletesAllChunks) {
  ThreadPool pool(4);
  std::atomic<int> nested_complete{0};
  pool.parallel_for(8, 1, [&](std::size_t, std::size_t, unsigned) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // A nested loop must not deadlock; its chunks may be shared with idle
    // workers, but every chunk runs exactly once before the call returns.
    std::atomic<int> local{0};
    ThreadPool::global().parallel_for(
        4, 1, [&](std::size_t, std::size_t, unsigned) { local.fetch_add(1); });
    if (local.load() == 4) nested_complete.fetch_add(1);
  });
  EXPECT_EQ(nested_complete.load(), 8);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, NestedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Outer loop of 2 chunks, each running a nested loop over a disjoint
  // half; nested chunks are shared with idle workers yet must cover each
  // index exactly once.
  const std::size_t half = 5000;
  std::vector<std::atomic<int>> counts(2 * half);
  pool.parallel_for(2, 1, [&](std::size_t ob, std::size_t, unsigned) {
    const std::size_t base = ob * half;
    pool.parallel_for(half, 7, [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) counts[base + i].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPool, NestedPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(2, 1,
                        [&](std::size_t ob, std::size_t, unsigned) {
                          pool.parallel_for(
                              50, 1, [&](std::size_t b, std::size_t, unsigned) {
                                if (ob == 1 && b == 17) {
                                  throw InvalidArgument("nested boom");
                                }
                              });
                        }),
      InvalidArgument);
}

TEST(ThreadPool, EmptyAndSingleChunkRunInline) {
  ThreadPool pool(4);
  int calls = 0;  // safe: inline paths run on this thread
  pool.parallel_for(0, 10, [&](std::size_t, std::size_t, unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(5, 10, [&](std::size_t b, std::size_t e, unsigned w) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnv) {
  ASSERT_EQ(setenv("DUTI_THREADS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::configured_threads(), 5u);
  ASSERT_EQ(setenv("DUTI_THREADS", "junk", 1), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);  // falls back to hardware
  ASSERT_EQ(setenv("DUTI_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
  ASSERT_EQ(unsetenv("DUTI_THREADS"), 0);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPool, NullBodyThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10, 1, nullptr), InvalidArgument);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  // A per-chunk reduction folded in chunk order: the pattern the harness
  // relies on for bit-identical parallel results.
  const std::size_t n = 10000, grain = 64;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::uint64_t serial = 0;
  for (std::size_t i = 0; i < n; ++i) serial += i * i;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> partial(chunks, 0);
    pool.parallel_for(n, grain, [&](std::size_t b, std::size_t e, unsigned) {
      std::uint64_t acc = 0;
      for (std::size_t i = b; i < e; ++i) acc += i * i;
      partial[b / grain] = acc;
    });
    const std::uint64_t total =
        std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
    EXPECT_EQ(total, serial) << "threads " << threads;
  }
}

}  // namespace
}  // namespace duti
