#include "sim/protocol_batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "sim/convergecast.hpp"
#include "sim/network.hpp"
#include "sim/reliable.hpp"
#include "stats/calibration_persist.hpp"
#include "stats/harness.hpp"
#include "stats/probe_cache.hpp"
#include "stats/workloads.hpp"
#include "testers/asymmetric.hpp"
#include "testers/calibration.hpp"
#include "testers/collision.hpp"
#include "testers/distributed.hpp"
#include "testers/fixed_threshold.hpp"
#include "testers/multibit.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace duti {
namespace {

std::uint64_t naive_pairs(const std::vector<std::uint64_t>& samples) {
  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a < samples.size(); ++a) {
    for (std::size_t b = a + 1; b < samples.size(); ++b) {
      if (samples[a] == samples[b]) ++pairs;
    }
  }
  return pairs;
}

TEST(TalliedCollisionPairs, MatchesNaiveCountOnBothPlanes) {
  Rng rng(7);
  // Small domain: the tally plane; huge domain: the sort fallback.
  for (const std::uint64_t domain :
       {std::uint64_t{8}, std::uint64_t{512}, kMaxTallyPlaneDomain + 1}) {
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<std::uint64_t> samples(32);
      // Bias into a small range so collisions actually occur.
      for (auto& s : samples) s = rng.next_below(std::min<std::uint64_t>(domain, 16));
      EXPECT_EQ(tallied_collision_pairs(samples, domain), naive_pairs(samples))
          << "domain=" << domain;
    }
  }
  EXPECT_EQ(tallied_collision_pairs({}, 16), 0u);
}

class SimdLevelParam : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override { prev_ = simd_set_level(GetParam()); }
  void TearDown() override { simd_set_level(prev_); }
  SimdLevel prev_ = SimdLevel::kScalar;
};

TEST_P(SimdLevelParam, ThresholdTesterMatchesLegacyProtocol) {
  DistributedTesterConfig cfg;
  cfg.n = 512;
  cfg.k = 8;
  cfg.q = 24;
  cfg.eps = 0.5;
  Rng calib_rng(11);
  const DistributedThresholdTester tester(cfg, calib_rng, 500);
  const SimultaneousProtocol proto = tester.make_protocol();
  const DecisionRule rule = tester.make_rule();

  ProtocolResult legacy_res;
  std::vector<std::uint8_t> legacy_votes;
  std::vector<Message> batched_msgs;
  Rng src_rng(derive_seed(101, 0x50));
  for (int t = 0; t < 40; ++t) {
    std::unique_ptr<SampleSource> far;
    const UniformSource uniform(cfg.n);
    const SampleSource* src = &uniform;
    if (t % 2 == 1) {
      far = workloads::paninski_far_factory(cfg.n, cfg.eps)(src_rng);
      src = far.get();
    }
    Rng rng_a(derive_seed(101, t));
    Rng rng_b(derive_seed(101, t));
    Rng rng_c(derive_seed(101, t));
    proto.run(*src, rng_a, rule, legacy_res, legacy_votes);
    tester.executor().collect(*src, rng_b, batched_msgs);
    ASSERT_EQ(batched_msgs.size(), legacy_res.messages.size());
    for (std::size_t j = 0; j < batched_msgs.size(); ++j) {
      EXPECT_EQ(batched_msgs[j].bits, legacy_res.messages[j].bits)
          << "trial " << t << " player " << j;
      EXPECT_EQ(batched_msgs[j].width, legacy_res.messages[j].width);
    }
    EXPECT_EQ(tester.run(*src, rng_c), legacy_res.accept) << "trial " << t;
  }
}

TEST_P(SimdLevelParam, AndTesterMatchesLegacyProtocol) {
  DistributedTesterConfig cfg;
  cfg.n = 256;
  cfg.k = 6;
  cfg.q = 40;
  cfg.eps = 0.5;
  const DistributedAndTester tester(cfg);
  const SimultaneousProtocol proto = tester.make_protocol();
  const DecisionRule rule = tester.make_rule();
  Rng src_rng(derive_seed(33, 0x50));
  for (int t = 0; t < 40; ++t) {
    std::unique_ptr<SampleSource> far;
    const UniformSource uniform(cfg.n);
    const SampleSource* src = &uniform;
    if (t % 2 == 1) {
      far = workloads::paninski_far_factory(cfg.n, cfg.eps)(src_rng);
      src = far.get();
    }
    Rng rng_a(derive_seed(33, t));
    Rng rng_b(derive_seed(33, t));
    EXPECT_EQ(proto.run(*src, rng_a, rule).accept, tester.run(*src, rng_b))
        << "trial " << t;
  }
}

TEST_P(SimdLevelParam, FixedThresholdTesterMatchesLegacyProtocol) {
  // The fixed-threshold vote consumes player randomness (the boundary
  // coin), so identity here also pins the post-sampling RNG handoff.
  FixedThresholdTester::Config cfg;
  cfg.n = 256;
  cfg.k = 8;
  cfg.q = 32;
  cfg.eps = 0.5;
  cfg.t = 3;
  const FixedThresholdTester tester(cfg);
  const SimultaneousProtocol proto = tester.make_protocol();
  const DecisionRule rule = tester.make_rule();
  Rng src_rng(derive_seed(44, 0x50));
  for (int t = 0; t < 40; ++t) {
    std::unique_ptr<SampleSource> far;
    const UniformSource uniform(cfg.n);
    const SampleSource* src = &uniform;
    if (t % 2 == 1) {
      far = workloads::paninski_far_factory(cfg.n, cfg.eps)(src_rng);
      src = far.get();
    }
    Rng rng_a(derive_seed(44, t));
    Rng rng_b(derive_seed(44, t));
    EXPECT_EQ(proto.run(*src, rng_a, rule).accept, tester.run(*src, rng_b))
        << "trial " << t;
  }
}

TEST_P(SimdLevelParam, MultibitTesterMatchesLegacyProtocol) {
  MultibitSumTester::Config cfg;
  cfg.n = 256;
  cfg.k = 6;
  cfg.q = 48;
  cfg.eps = 0.5;
  cfg.r = 4;
  Rng calib_rng(55);
  const MultibitSumTester tester(cfg, calib_rng, 500);
  const SimultaneousProtocol proto = tester.make_protocol();
  Rng src_rng(derive_seed(55, 0x50));
  std::vector<Message> legacy_msgs;
  for (int t = 0; t < 40; ++t) {
    std::unique_ptr<SampleSource> far;
    const UniformSource uniform(cfg.n);
    const SampleSource* src = &uniform;
    if (t % 2 == 1) {
      far = workloads::paninski_far_factory(cfg.n, cfg.eps)(src_rng);
      src = far.get();
    }
    Rng rng_a(derive_seed(55, t));
    Rng rng_b(derive_seed(55, t));
    proto.collect(*src, rng_a, legacy_msgs);
    double legacy_total = 0.0;
    for (const auto& m : legacy_msgs) {
      EXPECT_EQ(m.width, cfg.r);
      legacy_total += static_cast<double>(m.bits);
    }
    const bool legacy_accept = legacy_total < tester.sum_threshold();
    EXPECT_EQ(tester.run(*src, rng_b), legacy_accept) << "trial " << t;
  }
}

TEST_P(SimdLevelParam, AsymmetricTesterMatchesLegacyProtocol) {
  const std::uint64_t n = 256;
  const std::vector<double> rates = {1.0, 2.0, 4.0, 8.0};
  Rng calib_rng(66);
  const AsymmetricRateTester tester(n, rates, 8.0, calib_rng, 200);
  // Legacy comparator: the same per-player vote through the allocating
  // SimultaneousProtocol runner.
  std::vector<double> local_t(tester.qs().size());
  for (std::size_t j = 0; j < local_t.size(); ++j) {
    local_t[j] = expected_collision_pairs_uniform(static_cast<double>(n),
                                                  tester.qs()[j]);
  }
  const SimultaneousProtocol proto(
      tester.qs(), [&](unsigned j) {
        const double t = local_t[j];
        const unsigned q = tester.qs()[j];
        return std::make_unique<CallbackPlayer>(
            [t, q](std::span<const std::uint64_t> samples, Rng&) {
              EXPECT_EQ(samples.size(), q);
              return Message::bit(
                  !(static_cast<double>(collision_pairs(samples)) > t));
            },
            1U);
      });
  Rng src_rng(derive_seed(66, 0x50));
  std::vector<Message> legacy_msgs;
  for (int t = 0; t < 40; ++t) {
    std::unique_ptr<SampleSource> far;
    const UniformSource uniform(n);
    const SampleSource* src = &uniform;
    if (t % 2 == 1) {
      far = workloads::paninski_far_factory(n, 0.5)(src_rng);
      src = far.get();
    }
    Rng rng_a(derive_seed(66, t));
    Rng rng_b(derive_seed(66, t));
    proto.collect(*src, rng_a, legacy_msgs);
    std::uint64_t rejects = 0;
    for (const auto& m : legacy_msgs) rejects += m.as_bit() ? 0 : 1;
    const bool legacy_accept =
        static_cast<double>(rejects) < tester.referee_threshold();
    EXPECT_EQ(tester.run(*src, rng_b), legacy_accept) << "trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, SimdLevelParam,
                         ::testing::Values(SimdLevel::kScalar,
                                           simd_supported_level()),
                         [](const auto& info) {
                           return info.index == 0 ? "off" : "auto";
                         });

TEST(ProtocolBatch, ProbeTalliesIdenticalAcrossThreadPools) {
  DistributedTesterConfig cfg;
  cfg.n = 512;
  cfg.k = 8;
  cfg.q = 24;
  cfg.eps = 0.5;
  Rng calib_rng(12);
  auto tester = std::make_shared<DistributedThresholdTester>(cfg, calib_rng, 500);
  const TesterRun run = [tester](const SampleSource& s, Rng& r) {
    return tester->run(s, r);
  };
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const ProbeResult a =
      probe_success(run, workloads::uniform_factory(cfg.n),
                    workloads::paninski_far_factory(cfg.n, cfg.eps), 200, 9,
                    pool1);
  const ProbeResult b =
      probe_success(run, workloads::uniform_factory(cfg.n),
                    workloads::paninski_far_factory(cfg.n, cfg.eps), 200, 9,
                    pool8);
  EXPECT_EQ(a.uniform_successes, b.uniform_successes);
  EXPECT_EQ(a.far_successes, b.far_successes);
  EXPECT_EQ(a.trials, b.trials);
}

TEST(ProtocolBatch, CountsPlaneIsChiSquaredUniform) {
  // kCounts draws per-player histograms via binomial splitting — a
  // different RNG stream, so no bitwise gate. Instead: every histogram
  // sums to q, and aggregated cell totals pass a chi-squared GOF test
  // against the uniform expectation (fixed seed, deterministic).
  const std::uint64_t n = 16;
  const unsigned k = 4;
  const unsigned q = 64;
  std::vector<std::uint64_t> cell_totals(n, 0);
  std::uint64_t inspected = 0;
  ProtocolBatchExecutor exec(
      k, q,
      [](unsigned, std::uint64_t, Rng&) { return Message::bit(true); }, 1U,
      SamplingKernel::kCounts);
  exec.set_counts_inspector(
      [&](unsigned /*j*/, std::span<const std::uint64_t> counts) {
        ASSERT_EQ(counts.size(), n);
        std::uint64_t total = 0;
        for (std::size_t c = 0; c < counts.size(); ++c) {
          cell_totals[c] += counts[c];
          total += counts[c];
        }
        EXPECT_EQ(total, q);
        ++inspected;
      });
  const UniformSource uniform(n);
  Rng rng(2024);
  std::vector<Message> msgs;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) exec.collect(uniform, rng, msgs);
  EXPECT_EQ(inspected, static_cast<std::uint64_t>(trials) * k);

  const double expected =
      static_cast<double>(trials) * k * q / static_cast<double>(n);
  double chi2 = 0.0;
  for (const std::uint64_t c : cell_totals) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // dof = 15; P(chi2 > 45) < 1e-4 — far above any plausible value for a
  // correct multinomial, far below a broken one.
  EXPECT_LT(chi2, 45.0);
}

TEST(CalibMemo, ReplayIsIndistinguishableFromFresh) {
  CalibMemo::global().clear();
  CalibMemo::global().reset_stats();
  DistributedTesterConfig cfg;
  cfg.n = 512;
  cfg.k = 8;
  cfg.q = 24;
  cfg.eps = 0.5;
  Rng calib_a(77);
  Rng calib_b(77);
  const DistributedThresholdTester fresh(cfg, calib_a, 500);
  const DistributedThresholdTester memoized(cfg, calib_b, 500);
  EXPECT_EQ(fresh.referee_threshold(), memoized.referee_threshold());
  EXPECT_EQ(fresh.p_reject_uniform(), memoized.p_reject_uniform());
  // The memo hit must leave the calibration stream exactly where the fresh
  // computation left it.
  EXPECT_EQ(calib_a.state(), calib_b.state());
  const CalibMemo::Stats stats = CalibMemo::global().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);

  const UniformSource uniform(cfg.n);
  for (int t = 0; t < 10; ++t) {
    Rng ra(derive_seed(78, t));
    Rng rb(derive_seed(78, t));
    EXPECT_EQ(fresh.run(uniform, ra), memoized.run(uniform, rb));
  }
}

TEST(CalibMemo, AutoTrialCountResolvesIntoTheKey) {
  CalibMemo::global().clear();
  CalibMemo::global().reset_stats();
  DistributedTesterConfig cfg;
  cfg.n = 512;
  cfg.k = 8;
  cfg.q = 24;
  cfg.eps = 0.5;
  // calib_trials = 0 resolves to max(4000, 30k); the memo key records the
  // RESOLVED count, so auto and the equivalent explicit count share an
  // entry while a different explicit count does not.
  Rng calib_auto(88);
  const DistributedThresholdTester auto_t(cfg, calib_auto);
  EXPECT_EQ(CalibMemo::global().stats().misses, 1u);
  Rng calib_explicit(88);
  const DistributedThresholdTester explicit_t(cfg, calib_explicit, 4000);
  EXPECT_EQ(CalibMemo::global().stats().hits, 1u);
  EXPECT_EQ(auto_t.referee_threshold(), explicit_t.referee_threshold());
  Rng calib_other(88);
  const DistributedThresholdTester other_t(cfg, calib_other, 1234);
  EXPECT_EQ(CalibMemo::global().stats().misses, 2u);
}

TEST(CalibMemo, PersistsThroughProbeCacheSessions) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "duti_calib_persist")
          .string();
  std::filesystem::remove_all(dir);
  DistributedTesterConfig cfg;
  cfg.n = 512;
  cfg.k = 8;
  cfg.q = 32;
  cfg.eps = 0.5;

  double first_p = 0.0;
  {
    ProbeCache cache(dir, CacheMode::kReadWrite);
    install_calibration_persistence(cache);
    CalibMemo::global().clear();
    CalibMemo::global().reset_stats();
    Rng calib(99);
    const DistributedThresholdTester t(cfg, calib, 500);
    first_p = t.p_reject_uniform();
    EXPECT_EQ(CalibMemo::global().stats().misses, 1u);
    uninstall_calibration_persistence();
  }
  {
    // Fresh session over the same directory, empty in-memory memo: the
    // load hook must serve the calibration without recomputation.
    ProbeCache cache(dir, CacheMode::kReadWrite);
    install_calibration_persistence(cache);
    CalibMemo::global().clear();
    CalibMemo::global().reset_stats();
    Rng calib(99);
    const DistributedThresholdTester t(cfg, calib, 500);
    EXPECT_EQ(t.p_reject_uniform(), first_p);
    const CalibMemo::Stats stats = CalibMemo::global().stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.loads, 1u);
    uninstall_calibration_persistence();
  }
  {
    // Hooks removed: the same construction is a full recomputation again.
    CalibMemo::global().clear();
    CalibMemo::global().reset_stats();
    Rng calib(99);
    const DistributedThresholdTester t(cfg, calib, 500);
    EXPECT_EQ(t.p_reject_uniform(), first_p);
    EXPECT_EQ(CalibMemo::global().stats().misses, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(ProtocolBatch, ChaosLaneCarriesBatchedVotes) {
  // Compose the batched plane with the fault-tolerant network layer: the
  // executor's votes ride a reliable convergecast over a lossy star, and
  // the root's tally must reproduce the referee verdict exactly.
  DistributedTesterConfig cfg;
  cfg.n = 512;
  cfg.k = 8;
  cfg.q = 24;
  cfg.eps = 0.5;
  Rng calib_rng(13);
  const DistributedThresholdTester tester(cfg, calib_rng, 500);

  Rng vote_rng(4242);
  Rng run_rng(4242);
  std::vector<Message> msgs;
  tester.executor().collect(UniformSource(cfg.n), vote_rng, msgs);

  Network net(cfg.k + 1);
  net.add_star(0);
  LinkFault lossy;
  lossy.drop_prob = 0.1;  // within the retransmission budget's tolerance
  net.set_default_fault(lossy);
  const SpanningTree tree = bfs_spanning_tree(net, 0);
  std::vector<std::uint64_t> values(cfg.k + 1, 0);
  std::uint64_t rejects = 0;
  for (unsigned j = 0; j < cfg.k; ++j) {
    values[j + 1] = msgs[j].as_bit() ? 0 : 1;  // node j+1 carries player j
    rejects += values[j + 1];
  }
  Rng net_rng(31337);
  const ReliableConvergecastResult result =
      convergecast_sum_reliable(net, tree, values, 1, net_rng);
  EXPECT_EQ(result.values_reached, cfg.k + 1);
  EXPECT_EQ(result.root_sum, rejects);
  const bool network_accept = result.root_sum < tester.referee_threshold();
  EXPECT_EQ(network_accept, tester.run(UniformSource(cfg.n), run_rng));
}

}  // namespace
}  // namespace duti
