#include "core/multibit_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "testers/message_maps.hpp"
#include "util/error.hpp"

namespace duti {
namespace {

SampleTupleCodec small_codec(unsigned ell = 2, unsigned q = 2) {
  return SampleTupleCodec(CubeDomain(ell), q);
}

TEST(MultibitAnalysis, Validation) {
  const auto codec = small_codec();
  EXPECT_THROW(MultibitMessageAnalysis(codec, 0, [](std::uint64_t) {
                 return 0U;
               }),
               InvalidArgument);
  EXPECT_THROW(MultibitMessageAnalysis(codec, 2, nullptr), InvalidArgument);
}

TEST(MultibitAnalysis, UniformPushforwardIsADistribution) {
  const auto codec = small_codec();
  const MultibitMessageAnalysis analysis(
      codec, 3, [](std::uint64_t t) { return static_cast<std::uint32_t>(t % 8); });
  const auto& push = analysis.uniform_pushforward();
  EXPECT_EQ(push.size(), 8u);
  const double total = std::accumulate(push.begin(), push.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MultibitAnalysis, NuZPushforwardIsADistribution) {
  const auto codec = small_codec();
  Rng rng(1);
  const NuZ nu(codec.domain(), PerturbationVector::random(2, rng), 0.5);
  const MultibitMessageAnalysis analysis(
      codec, 2, [](std::uint64_t t) { return static_cast<std::uint32_t>(t % 4); });
  const auto push = analysis.nu_z_pushforward(nu);
  const double total = std::accumulate(push.begin(), push.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MultibitAnalysis, SymbolOutOfRangeThrows) {
  const auto codec = small_codec();
  const MultibitMessageAnalysis analysis(
      codec, 1, [](std::uint64_t t) { return static_cast<std::uint32_t>(t); });
  EXPECT_THROW((void)analysis.uniform_pushforward(), InvalidArgument);
}

TEST(MultibitAnalysis, ConstantMessageHasZeroDivergence) {
  const auto codec = small_codec();
  const MultibitMessageAnalysis analysis(codec, 2,
                                         [](std::uint64_t) { return 3U; });
  EXPECT_NEAR(analysis.expected_divergence_exact(0.8), 0.0, 1e-12);
}

TEST(MultibitAnalysis, PrefixMessageCarriesAlmostNothing) {
  // The first sample's bits are marginally uniform under E_z[nu_z]; per
  // fixed z there is a little divergence, but far less than the collision
  // message extracts.
  const auto codec = small_codec(2, 2);
  const double eps = 0.4;
  const MultibitMessageAnalysis prefix(
      codec, 2, first_sample_prefix_message(codec, 2));
  const MultibitMessageAnalysis collision(
      codec, 2, collision_count_message(codec, 2));
  EXPECT_LT(prefix.expected_divergence_exact(eps),
            collision.expected_divergence_exact(eps));
}

TEST(MultibitAnalysis, DataProcessingInequality) {
  // No message map can exceed the full-tuple divergence. Checked for
  // several maps at several eps.
  const auto codec = small_codec(2, 2);
  for (double eps : {0.2, 0.5, 0.9}) {
    const double ceiling =
        MultibitMessageAnalysis::full_tuple_divergence_exact(codec, eps);
    for (unsigned r : {1u, 2u, 4u}) {
      const MultibitMessageAnalysis analysis(
          codec, r, collision_count_message(codec, r));
      EXPECT_LE(analysis.expected_divergence_exact(eps), ceiling + 1e-12)
          << "r=" << r << " eps=" << eps;
    }
    // Identity-ish map (tuple id truncated to 6 bits = whole tuple here):
    const MultibitMessageAnalysis identity(
        codec, 6,
        [](std::uint64_t t) { return static_cast<std::uint32_t>(t); });
    EXPECT_NEAR(identity.expected_divergence_exact(eps), ceiling, 1e-9);
  }
}

TEST(MultibitAnalysis, MoreBitsNeverLoseInformation) {
  // Refining the collision quantizer (larger r) weakly increases the
  // divergence: coarsening is a data-processing step.
  const auto codec = small_codec(2, 2);
  const double eps = 0.5;
  double prev = -1.0;
  for (unsigned r : {1u, 2u, 3u, 4u}) {
    const MultibitMessageAnalysis analysis(
        codec, r, collision_count_message(codec, r));
    const double d = analysis.expected_divergence_exact(eps);
    EXPECT_GE(d, prev - 1e-12) << "r=" << r;
    prev = d;
  }
}

TEST(MultibitAnalysis, DivergenceGrowsWithEps) {
  const auto codec = small_codec(2, 2);
  const MultibitMessageAnalysis analysis(
      codec, 2, collision_count_message(codec, 2));
  double prev = -1.0;
  for (double eps : {0.0, 0.2, 0.4, 0.8}) {
    const double d = analysis.expected_divergence_exact(eps);
    EXPECT_GE(d, prev - 1e-12) << "eps=" << eps;
    prev = d;
  }
  EXPECT_NEAR(analysis.expected_divergence_exact(0.0), 0.0, 1e-12);
}

TEST(MultibitAnalysis, McConvergesToExact) {
  const auto codec = small_codec(2, 2);
  const MultibitMessageAnalysis analysis(
      codec, 2, collision_count_message(codec, 2));
  const double exact = analysis.expected_divergence_exact(0.6);
  Rng rng(3);
  const double mc = analysis.expected_divergence_mc(0.6, 3000, rng);
  EXPECT_NEAR(mc, exact, 0.15 * std::max(exact, 1e-6));
}

TEST(MultibitAnalysis, VoteMessageMatchesOneBitAnalysis) {
  // The 1-bit vote map's pushforward under uniform must equal
  // (1 - mu(G), mu(G)) of the corresponding Boolean analysis.
  const auto codec = small_codec(2, 2);
  const auto vote = collision_vote_message(codec);
  const MultibitMessageAnalysis analysis(codec, 1, vote);
  const auto& push = analysis.uniform_pushforward();
  // Count accepting tuples directly.
  double accept = 0.0;
  for (std::uint64_t t = 0; t < codec.num_tuples(); ++t) {
    accept += vote(t);
  }
  accept /= static_cast<double>(codec.num_tuples());
  EXPECT_NEAR(push[1], accept, 1e-12);
  EXPECT_NEAR(push[0], 1.0 - accept, 1e-12);
}

}  // namespace
}  // namespace duti
