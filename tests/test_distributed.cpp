#include "testers/distributed.hpp"

#include <gtest/gtest.h>

#include "dist/generators.hpp"
#include "testers/collision.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

template <typename Tester>
std::pair<double, double> success_rates(const Tester& tester, double eps,
                                        int trials, std::uint64_t seed) {
  const auto n = tester.config().n;
  SuccessCounter uniform_ok, far_ok;
  const UniformSource uniform(n);
  for (int t = 0; t < trials; ++t) {
    Rng rng = make_rng(seed, 1, t);
    uniform_ok.record(tester.run(uniform, rng));
    Rng far_rng = make_rng(seed, 2, t);
    const DistributionSource far(gen::paninski(n, eps, far_rng));
    Rng run_rng = make_rng(seed, 3, t);
    far_ok.record(!tester.run(far, run_rng));
  }
  return {uniform_ok.rate(), far_ok.rate()};
}

TEST(CollisionVoters, VoteSemantics) {
  const auto factory = make_collision_voters(4, 0.5);
  auto player = factory(0);
  Rng rng(1);
  // No collisions: 0 pairs <= 0.5 -> accept.
  const std::vector<std::uint64_t> distinct{1, 2, 3, 4};
  EXPECT_TRUE(player->decide(distinct, rng).as_bit());
  // One collision: 1 > 0.5 -> reject.
  const std::vector<std::uint64_t> collide{1, 1, 3, 4};
  EXPECT_FALSE(player->decide(collide, rng).as_bit());
}

TEST(DistributedThresholdTester, ConfigValidation) {
  Rng rng(2);
  EXPECT_THROW(DistributedThresholdTester({0, 4, 8, 0.5}, rng),
               InvalidArgument);
  EXPECT_THROW(DistributedThresholdTester({64, 0, 8, 0.5}, rng),
               InvalidArgument);
  EXPECT_THROW(DistributedThresholdTester({64, 4, 1, 0.5}, rng),
               InvalidArgument);
  EXPECT_THROW(DistributedThresholdTester({64, 4, 8, 0.0}, rng),
               InvalidArgument);
}

TEST(DistributedThresholdTester, CalibrationIsSane) {
  Rng rng(3);
  const DistributedThresholdTester tester({256, 32, 24, 0.5}, rng);
  EXPECT_GT(tester.p_reject_uniform(), 0.0);
  EXPECT_LT(tester.p_reject_uniform(), 1.0);
  EXPECT_GE(tester.referee_threshold(), 1u);
  EXPECT_LE(tester.referee_threshold(), 32u);
  // Local threshold is the uniform collision mean.
  EXPECT_NEAR(tester.local_threshold(),
              expected_collision_pairs_uniform(256.0, 24), 1e-12);
}

TEST(DistributedThresholdTester, SucceedsWithGenerousSamples) {
  Rng rng(4);
  const std::uint64_t n = 1024;
  const unsigned k = 32;
  const double eps = 0.5;
  // Generous: ~ 4 sqrt(n/k) / eps^2 = 4 * 5.7 / 0.25 ~ 91.
  const unsigned q = 96;
  const DistributedThresholdTester tester({n, k, q, eps}, rng);
  const auto [u, f] = success_rates(tester, eps, 150, 41);
  EXPECT_GE(u, 0.7);
  EXPECT_GE(f, 0.7);
}

TEST(DistributedThresholdTester, FailsWithFarTooFewSamples) {
  Rng rng(5);
  const std::uint64_t n = 1 << 14;
  const DistributedThresholdTester tester({n, 8, 2, 0.3}, rng);
  const auto [u, f] = success_rates(tester, 0.3, 150, 42);
  EXPECT_GE(u, 0.6);  // uniform side is easy
  EXPECT_LE(f, 0.4);  // cannot reject far with 2 samples on 16k domain
}

TEST(DistributedThresholdTester, MoreNodesNeedFewerSamplesPerNode) {
  // The core "distribution helps" effect: fixed q that fails for small k
  // succeeds for large k.
  const std::uint64_t n = 4096;
  const double eps = 0.5;
  const unsigned q = 64;  // ~ sqrt(n/k)/eps^2 for k ~ 16
  Rng rng1(6), rng2(7);
  const DistributedThresholdTester small_k({n, 4, q, eps}, rng1);
  const DistributedThresholdTester large_k({n, 256, q, eps}, rng2);
  const auto [us, fs] = success_rates(small_k, eps, 200, 43);
  const auto [ul, fl] = success_rates(large_k, eps, 200, 44);
  EXPECT_GE(ul, 0.7);
  EXPECT_GE(fl, 0.7);
  // The 2-node version with the same q must do clearly worse on the far
  // side.
  EXPECT_LT(fs, fl - 0.15);
  (void)us;
}

TEST(DistributedAndTester, LocalThresholdGrowsWithK) {
  const DistributedAndTester t8({1024, 8, 32, 0.5});
  const DistributedAndTester t1024({1024, 1024, 32, 0.5});
  EXPECT_GT(t1024.local_threshold(), t8.local_threshold());
}

TEST(DistributedAndTester, UniformSideSafeEvenWithManyNodes) {
  // The per-node 1/(3k) false-alarm budget must keep the AND of 256 honest
  // nodes accepting.
  const std::uint64_t n = 512;
  const DistributedAndTester tester({n, 256, 32, 0.5});
  SuccessCounter uniform_ok;
  const UniformSource uniform(n);
  for (int t = 0; t < 100; ++t) {
    Rng rng = make_rng(45, t);
    uniform_ok.record(tester.run(uniform, rng));
  }
  EXPECT_GE(uniform_ok.rate(), 2.0 / 3.0);
}

TEST(DistributedAndTester, SucceedsWithCentralizedScaleSamples) {
  // AND rule with q ~ centralized cost: every node can nearly decide alone.
  const std::uint64_t n = 256;
  const double eps = 0.5;
  const unsigned q = 160;  // ~ 10 sqrt(n) / eps^2
  const DistributedAndTester tester({n, 8, q, eps});
  const auto [u, f] = success_rates(tester, eps, 150, 46);
  EXPECT_GE(u, 0.7);
  EXPECT_GE(f, 0.7);
}

TEST(DistributedAndTester, DoesNotGainFromMoreNodesAtFixedSmallQ) {
  // Contrast with the threshold tester: at q well below sqrt(n)/eps^2,
  // adding nodes does not rescue the AND rule (its per-node threshold
  // rises with k, suppressing rejections).
  const std::uint64_t n = 4096;
  const double eps = 0.5;
  const unsigned q = 48;
  const DistributedAndTester tester({n, 64, q, eps});
  const auto [u, f] = success_rates(tester, eps, 200, 47);
  EXPECT_GE(u, 0.8);
  EXPECT_LE(f, 0.5);  // threshold tester passed 0.7 here (test above)
}

TEST(DistributedTesters, ExposedProtocolMatchesRun) {
  Rng rng(8);
  const DistributedTesterConfig cfg{512, 16, 32, 0.5};
  const DistributedThresholdTester tester(cfg, rng);
  const auto protocol = tester.make_protocol();
  const auto rule = tester.make_rule();
  const UniformSource uniform(512);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng r1 = make_rng(48, seed), r2 = make_rng(48, seed);
    EXPECT_EQ(tester.run(uniform, r1),
              protocol.run(uniform, r2, rule).accept);
  }
}

}  // namespace
}  // namespace duti
