#include "stats/harness.hpp"

#include <gtest/gtest.h>

#include "stats/workloads.hpp"
#include "util/error.hpp"

namespace duti {
namespace {

TEST(ProbeSuccess, PerfectTester) {
  // Tester that answers by the true distance of the source.
  const TesterRun oracle = [](const SampleSource& source, Rng&) {
    return source.l1_from_uniform() == 0.0;
  };
  const auto result = probe_success(oracle, workloads::uniform_factory(64),
                                    workloads::paninski_far_factory(64, 0.5),
                                    100, 1);
  EXPECT_DOUBLE_EQ(result.uniform_accept_rate, 1.0);
  EXPECT_DOUBLE_EQ(result.far_reject_rate, 1.0);
  EXPECT_TRUE(result.passes());
  EXPECT_EQ(result.trials, 100u);
}

TEST(ProbeSuccess, CoinFlipTester) {
  const TesterRun coin = [](const SampleSource&, Rng& rng) {
    return rng.next_bernoulli(0.5);
  };
  const auto result = probe_success(coin, workloads::uniform_factory(64),
                                    workloads::paninski_far_factory(64, 0.5),
                                    2000, 2);
  EXPECT_NEAR(result.uniform_accept_rate, 0.5, 0.05);
  EXPECT_NEAR(result.far_reject_rate, 0.5, 0.05);
  EXPECT_FALSE(result.passes());
}

TEST(ProbeSuccess, AlwaysAcceptFailsOneSide) {
  const TesterRun yes = [](const SampleSource&, Rng&) { return true; };
  const auto result = probe_success(yes, workloads::uniform_factory(64),
                                    workloads::paninski_far_factory(64, 0.5),
                                    50, 3);
  EXPECT_DOUBLE_EQ(result.uniform_accept_rate, 1.0);
  EXPECT_DOUBLE_EQ(result.far_reject_rate, 0.0);
  EXPECT_FALSE(result.passes());
}

TEST(ProbeSuccess, DeterministicUnderSeed) {
  const TesterRun noisy = [](const SampleSource& source, Rng& rng) {
    std::vector<std::uint64_t> s;
    source.sample_many(rng, 4, s);
    return (s[0] + s[1]) % 2 == 0;
  };
  const auto a = probe_success(noisy, workloads::uniform_factory(16),
                               workloads::paninski_far_factory(16, 0.5), 200,
                               7);
  const auto b = probe_success(noisy, workloads::uniform_factory(16),
                               workloads::paninski_far_factory(16, 0.5), 200,
                               7);
  EXPECT_DOUBLE_EQ(a.uniform_accept_rate, b.uniform_accept_rate);
  EXPECT_DOUBLE_EQ(a.far_reject_rate, b.far_reject_rate);
}

TEST(FindMinParam, SyntheticStepFunction) {
  // Probe passes iff value >= 37.
  const ProbeFn probe = [](std::uint64_t value) {
    ProbeResult r;
    r.trials = 1;
    r.uniform_accept_rate = value >= 37 ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 4096;
  const auto result = find_min_param(probe, cfg);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.minimum, 37u);
  EXPECT_FALSE(result.probes.empty());
}

TEST(FindMinParam, PassesImmediatelyAtLo) {
  const ProbeFn probe = [](std::uint64_t) {
    ProbeResult r;
    r.uniform_accept_rate = 1.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 5;
  const auto result = find_min_param(probe, cfg);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.minimum, 5u);
}

TEST(FindMinParam, GivesUpAtHi) {
  const ProbeFn probe = [](std::uint64_t) {
    ProbeResult r;  // never passes
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 64;
  const auto result = find_min_param(probe, cfg);
  EXPECT_FALSE(result.found);
}

TEST(FindMinParam, BoundaryExactlyAtLoTimesPowerOfTwo) {
  const ProbeFn probe = [](std::uint64_t value) {
    ProbeResult r;
    r.uniform_accept_rate = value >= 64 ? 1.0 : 0.0;
    r.far_reject_rate = 1.0;
    return r;
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1024;
  const auto result = find_min_param(probe, cfg);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.minimum, 64u);
}

TEST(FindMinParamMedian, SmoothsNoise) {
  // Noisy threshold near 100: each repeat sees a slightly different cutoff.
  auto make_probe = [](std::uint64_t seed) -> ProbeFn {
    return [seed](std::uint64_t value) {
      ProbeResult r;
      const std::uint64_t cutoff = 95 + (derive_seed(seed, value) % 11);
      r.uniform_accept_rate = value >= cutoff ? 1.0 : 0.0;
      r.far_reject_rate = 1.0;
      return r;
    };
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 4096;
  const double med = find_min_param_median(make_probe, cfg, 5);
  EXPECT_GE(med, 90.0);
  EXPECT_LE(med, 115.0);
}

TEST(FindMinParam, ValidationErrors) {
  MinSearchConfig cfg;
  cfg.lo = 10;
  cfg.hi = 5;
  const ProbeFn probe = [](std::uint64_t) { return ProbeResult{}; };
  EXPECT_THROW((void)find_min_param(probe, cfg), InvalidArgument);
  EXPECT_THROW((void)find_min_param(nullptr, MinSearchConfig{}),
               InvalidArgument);
}

}  // namespace
}  // namespace duti
