#include "stats/shape.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(CompareShapes, PerfectMatchUpToConstant) {
  std::vector<double> x, measured, predicted;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    predicted.push_back(std::pow(v, -0.5));
    measured.push_back(3.7 * std::pow(v, -0.5));
  }
  const auto cmp = compare_shapes(x, measured, predicted);
  EXPECT_NEAR(cmp.fitted_constant, 3.7, 1e-9);
  EXPECT_NEAR(cmp.max_ratio_deviation, 1.0, 1e-9);
  EXPECT_NEAR(cmp.measured_slope, -0.5, 1e-9);
  EXPECT_NEAR(cmp.slope_gap, 0.0, 1e-9);
}

TEST(CompareShapes, DetectsSlopeMismatch) {
  std::vector<double> x, measured, predicted;
  for (double v : {1.0, 4.0, 16.0, 64.0}) {
    x.push_back(v);
    predicted.push_back(std::pow(v, -0.5));
    measured.push_back(std::pow(v, -1.0));  // different exponent
  }
  const auto cmp = compare_shapes(x, measured, predicted);
  EXPECT_NEAR(cmp.slope_gap, 0.5, 1e-9);
  EXPECT_GT(cmp.max_ratio_deviation, 1.5);
}

TEST(CompareShapes, NoisyDataStaysNearFit) {
  std::vector<double> x, measured, predicted;
  for (int i = 1; i <= 8; ++i) {
    const double v = std::pow(2.0, i);
    x.push_back(v);
    predicted.push_back(std::sqrt(v));
    measured.push_back(2.0 * std::sqrt(v) * (i % 2 == 0 ? 1.1 : 0.9));
  }
  const auto cmp = compare_shapes(x, measured, predicted);
  EXPECT_NEAR(cmp.fitted_constant, 2.0, 0.1);
  EXPECT_LT(cmp.max_ratio_deviation, 1.15);
}

TEST(CompareShapes, Validation) {
  EXPECT_THROW((void)compare_shapes({1.0}, {1.0}, {1.0}), InvalidArgument);
  EXPECT_THROW((void)compare_shapes({1.0, 2.0}, {1.0}, {1.0, 2.0}),
               InvalidArgument);
  EXPECT_THROW((void)compare_shapes({1.0, 2.0}, {1.0, -1.0}, {1.0, 2.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace duti
