// Tests for the duti-lint rule engine (tools/duti_lint). Each rule gets at
// least one positive fixture (snippet that must be flagged) and one
// negative (clean or out-of-scope snippet), plus coverage for suppression
// parsing and the JSON report shape. Fixtures are raw string literals, so
// the tree-wide `duti_lint` CTest pass does not see their contents.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using duti::lint::Finding;
using duti::lint::LintReport;

LintReport lint(const std::string& path, const std::string& content) {
  LintReport report = duti::lint::make_report();
  duti::lint::lint_source(path, content, report);
  return report;
}

std::size_t count_rule(const LintReport& r, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(Registry, RuleNamesAreUniqueAndDescribed) {
  std::set<std::string> names;
  for (const auto& rule : duti::lint::default_rules()) {
    EXPECT_TRUE(names.insert(rule.name).second) << rule.name;
    EXPECT_FALSE(rule.description.empty()) << rule.name;
  }
  EXPECT_GE(names.size(), 10u);
}

TEST(NoRandomDevice, FlagsUseInSrc) {
  const auto r = lint("src/sim/net.cpp", R"(std::random_device rd;
)");
  EXPECT_EQ(count_rule(r, "no-random-device"), 1u);
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(NoRandomDevice, OutOfScopePathIsClean) {
  const auto r = lint("examples/demo.cpp", R"(std::random_device rd;
)");
  EXPECT_EQ(count_rule(r, "no-random-device"), 0u);
}

TEST(NoRand, FlagsRandAndSrand) {
  const auto r = lint("src/a.cpp", R"(int x = rand();
srand(42);
)");
  EXPECT_EQ(count_rule(r, "no-rand"), 2u);
}

TEST(NoRand, IdentifiersContainingRandAreClean) {
  const auto r = lint("src/a.cpp", R"(int operand(int my_rand);
)");
  EXPECT_EQ(count_rule(r, "no-rand"), 0u);
}

TEST(NoWallClock, FlagsQualifiedNowAndTime) {
  const auto r = lint("src/a.cpp",
                      R"(auto t = std::chrono::steady_clock::now();
auto u = Clock::now();
auto v = time(nullptr);
)");
  EXPECT_EQ(count_rule(r, "no-wall-clock"), 3u);
}

TEST(NoWallClock, TestsDirIsOutOfScope) {
  const auto r =
      lint("tests/test_x.cpp", R"(auto t = std::chrono::steady_clock::now();
)");
  EXPECT_EQ(count_rule(r, "no-wall-clock"), 0u);
}

TEST(NoWallClock, TimePointTypesAreClean) {
  const auto r = lint("src/a.cpp",
                      R"(std::chrono::steady_clock::time_point deadline;
double runtime(int x);
)");
  EXPECT_EQ(count_rule(r, "no-wall-clock"), 0u);
}

TEST(NoDefaultMt19937, FlagsDefaultConstruction) {
  const auto r = lint("src/a.cpp", R"(std::mt19937 gen;
std::mt19937_64 wide{};
)");
  EXPECT_EQ(count_rule(r, "no-default-mt19937"), 2u);
}

TEST(NoDefaultMt19937, ExplicitSeedIsClean) {
  const auto r = lint("src/a.cpp", R"(std::mt19937 gen(seed);
std::mt19937_64 wide{derive_seed(root, 3)};
)");
  EXPECT_EQ(count_rule(r, "no-default-mt19937"), 0u);
}

TEST(NoRawThread, FlagsThreadAsyncAndOpenmp) {
  const auto r = lint("src/core/x.cpp", R"(std::thread t(work);
auto f = std::async(work);
#pragma omp parallel for
)");
  EXPECT_EQ(count_rule(r, "no-raw-thread"), 3u);
}

TEST(NoRawThread, ThreadPoolDirAndStaticsAreExempt) {
  const auto pool = lint("src/util/thread_pool.cpp",
                         R"(std::vector<std::thread> workers_;
)");
  EXPECT_EQ(count_rule(pool, "no-raw-thread"), 0u);
  const auto statics = lint("src/core/x.cpp",
                            R"(unsigned hw = std::thread::hardware_concurrency();
)");
  EXPECT_EQ(count_rule(statics, "no-raw-thread"), 0u);
}

TEST(NoUnorderedIteration, FlagsRangeForOverUnordered) {
  const auto r = lint("src/stats/agg.cpp",
                      R"(std::unordered_map<int, int> tally;
for (const auto& kv : tally) sum += kv.second;
)");
  EXPECT_EQ(count_rule(r, "no-unordered-iteration"), 1u);
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(NoUnorderedIteration, OrderedMapAndOtherDirsAreClean) {
  const auto ordered = lint("src/stats/agg.cpp",
                            R"(std::map<int, int> tally;
for (const auto& kv : tally) sum += kv.second;
)");
  EXPECT_EQ(count_rule(ordered, "no-unordered-iteration"), 0u);
  const auto elsewhere = lint("src/sim/agg.cpp",
                              R"(std::unordered_map<int, int> tally;
for (const auto& kv : tally) touch(kv);
)");
  EXPECT_EQ(count_rule(elsewhere, "no-unordered-iteration"), 0u);
}

TEST(NoFloatAccumulate, FlagsDoubleAccumulatorInStats) {
  const auto r = lint("src/stats/agg.cpp", R"(double acc = 0.0;
acc += weight(i);
)");
  EXPECT_EQ(count_rule(r, "no-float-accumulate"), 1u);
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(NoFloatAccumulate, IntegerTalliesAreClean) {
  const auto r = lint("src/stats/agg.cpp", R"(std::uint64_t tally = 0;
tally += 1;
)");
  EXPECT_EQ(count_rule(r, "no-float-accumulate"), 0u);
}

TEST(NoFloatAccumulate, FloatLiteralRhsFlaggedWithoutDecl) {
  const auto r = lint("src/stats/agg.cpp", R"(score += 0.5;
)");
  EXPECT_EQ(count_rule(r, "no-float-accumulate"), 1u);
}

TEST(PragmaOnce, MissingGuardIsFlaggedInHeadersOnly) {
  const auto hdr = lint("src/core/x.hpp", R"(int f();
)");
  EXPECT_EQ(count_rule(hdr, "pragma-once"), 1u);
  EXPECT_EQ(hdr.findings[0].line, 1);
  const auto guarded = lint("src/core/x.hpp", R"(#pragma once
int f();
)");
  EXPECT_EQ(count_rule(guarded, "pragma-once"), 0u);
  const auto cpp = lint("src/core/x.cpp", R"(int f() { return 1; }
)");
  EXPECT_EQ(count_rule(cpp, "pragma-once"), 0u);
}

TEST(NoUsingNamespaceHeader, FlagsHeadersNotSources) {
  const auto hdr = lint("src/core/x.hpp", R"(#pragma once
using namespace std;
)");
  EXPECT_EQ(count_rule(hdr, "no-using-namespace-header"), 1u);
  const auto cpp = lint("src/core/x.cpp", R"(using namespace duti;
)");
  EXPECT_EQ(count_rule(cpp, "no-using-namespace-header"), 0u);
}

TEST(NoSideEffectAssert, FlagsMutationsInAssert) {
  const auto r = lint("src/core/x.cpp", R"(assert(x++ > 0);
assert(n = next());
)");
  EXPECT_EQ(count_rule(r, "no-side-effect-assert"), 2u);
}

TEST(NoSideEffectAssert, ComparisonsAndStaticAssertAreClean) {
  const auto r = lint("src/core/x.cpp", R"(assert(x == 1);
assert(a <= b && c >= d && e != f);
static_assert(sizeof(int) == 4);
)");
  EXPECT_EQ(count_rule(r, "no-side-effect-assert"), 0u);
}

TEST(NoExitInLibrary, FlagsProcessKillersUnderSrc) {
  const auto r = lint("src/stats/cache.cpp", R"(std::exit(1);
abort();
std::terminate();
quick_exit(0);
std::_Exit(2);
)");
  EXPECT_EQ(count_rule(r, "no-exit-in-library"), 5u);
}

TEST(NoExitInLibrary, ErrorHeaderTestsAndLookalikesAreClean) {
  // The designated fatal-handler header is the one sanctioned home.
  EXPECT_EQ(count_rule(lint("src/util/error.hpp", R"(std::abort();
)"),
                       "no-exit-in-library"),
            0u);
  // Tests and benches may exit; the rule guards the library only.
  EXPECT_EQ(count_rule(lint("tests/t.cpp", R"(exit(1);
)"),
                       "no-exit-in-library"),
            0u);
  // Identifiers that merely contain a killer name are not calls.
  EXPECT_EQ(count_rule(lint("src/a.cpp", R"(void on_exit_hook();
int exit_code = worker_exit;
set_terminate(handler);
bool aborted = was_aborted(run);
)"),
                       "no-exit-in-library"),
            0u);
}

TEST(NoIntrinsicsOutsideKernels, FlagsIntrinsicsInGeneralSources) {
  const auto r = lint("src/fourier/wht.cpp",
                      R"(#include <immintrin.h>
__m256d v = _mm256_loadu_pd(p);
__m128i w = _mm_add_epi64(a, b);
)");
  EXPECT_EQ(count_rule(r, "no-intrinsics-outside-kernels"), 3u);
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(NoIntrinsicsOutsideKernels, KernelLayerIsExempt) {
  const auto kern = lint("src/util/kernels_avx2.cpp",
                         R"(#include <immintrin.h>
__m256i v = _mm256_add_epi64(a, b);
)");
  EXPECT_EQ(count_rule(kern, "no-intrinsics-outside-kernels"), 0u);
  const auto simd = lint("src/util/simd.hpp", R"(#pragma once
enum class SimdLevel : int { kScalar = 0 };
)");
  EXPECT_EQ(count_rule(simd, "no-intrinsics-outside-kernels"), 0u);
}

TEST(NoIntrinsicsOutsideKernels, LookalikeIdentifiersAreClean) {
  // "_mm_"/"__m256" embedded inside a longer identifier is not an
  // intrinsic use; only a non-identifier left boundary counts.
  const auto r = lint("src/a.cpp", R"(int comm_mm_size = 0;
double gemm_m128_tile = 1.0;
)");
  EXPECT_EQ(count_rule(r, "no-intrinsics-outside-kernels"), 0u);
}

TEST(NoSerialSweepLoop, FlagsBenchCallingFindMinParamWithoutRunSweep) {
  const auto r = lint("bench/e99_demo.cpp", R"(int main() {
  const auto a = find_min_param(probe, cfg);
  const auto b = find_min_param(probe, bracket, cfg);
}
)");
  EXPECT_EQ(count_rule(r, "no-serial-sweep-loop"), 2u);
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(NoSerialSweepLoop, FileUsingRunSweepIsClean) {
  const auto r = lint("bench/e99_demo.cpp", R"(int main() {
  const auto sweep = run_sweep(points, cfg);
  const auto aux = find_min_param(probe, cfg);
}
)");
  EXPECT_EQ(count_rule(r, "no-serial-sweep-loop"), 0u);
}

TEST(NoSerialSweepLoop, OutOfScopeAndLookalikesAreClean) {
  // src/ and tests/ may call find_min_param freely; the rule is bench-only.
  const auto src = lint("src/stats/harness.cpp",
                        "auto r = find_min_param(probe, cfg);\n");
  EXPECT_EQ(count_rule(src, "no-serial-sweep-loop"), 0u);
  // find_min_param_median and mentions in comments/strings don't count.
  const auto bench = lint("bench/e99_demo.cpp", R"(// find_min_param(
double m = find_min_param_median(make_probe, cfg, 5);
const char* s = "find_min_param(";
)");
  EXPECT_EQ(count_rule(bench, "no-serial-sweep-loop"), 0u);
}

TEST(NoSerialSweepLoop, FileScopeSuppressionApplies) {
  const auto r = lint("bench/e99_demo.cpp",
                      R"(// duti-lint: allow-file(no-serial-sweep-loop) -- categorical axis.
const auto a = find_min_param(probe, cfg);
)");
  EXPECT_EQ(count_rule(r, "no-serial-sweep-loop"), 0u);
}

TEST(NoPerTrialAlloc, FlagsAllocationInsideSimLayerLoops) {
  const auto r = lint("src/sim/runner.cpp", R"(void run() {
  for (int t = 0; t < trials; ++t) {
    auto p = std::make_unique<Player>(j);
    auto q = new Message();
  }
  while (more())
    auto s = std::make_shared<State>();
}
)");
  EXPECT_EQ(count_rule(r, "no-per-trial-alloc"), 3u);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(NoPerTrialAlloc, HoistedAllocationIsClean) {
  const auto r = lint("src/sim/runner.cpp", R"(void run() {
  auto p = std::make_unique<Player>(0);
  std::vector<Message> messages;
  for (int t = 0; t < trials; ++t) {
    messages.resize(k);
    use(*p, messages);
  }
}
)");
  EXPECT_EQ(count_rule(r, "no-per-trial-alloc"), 0u);
}

TEST(NoPerTrialAlloc, OutOfScopePathsAreClean) {
  // The rule polices the sim layer only; testers and benches hoist through
  // their own idioms and tests may allocate freely.
  const auto testers = lint("src/testers/foo.cpp", R"(for (;;) {
  auto p = std::make_unique<Player>(0);
}
)");
  EXPECT_EQ(count_rule(testers, "no-per-trial-alloc"), 0u);
  const auto bench = lint("bench/e99_demo.cpp", R"(while (t--) {
  auto p = new Probe();
}
)");
  EXPECT_EQ(count_rule(bench, "no-per-trial-alloc"), 0u);
}

TEST(NoPerTrialAlloc, LookalikesAndNonLoopScopesAreClean) {
  // "new" inside identifiers/comments/strings, and allocation in straight-
  // line code, must not fire.
  const auto r = lint("src/sim/runner.cpp", R"(int renewal = 0;
// for (;;) { new Player; } in a comment
const char* s = "for (;;) { new Player; }";
auto p = std::make_unique<Player>(0);
)");
  EXPECT_EQ(count_rule(r, "no-per-trial-alloc"), 0u);
}

TEST(NoPerTrialAlloc, LineSuppressionApplies) {
  const auto r = lint("src/sim/runner.cpp", R"(for (int t = 0; t < n; ++t) {
  auto p = std::make_unique<P>();  // duti-lint: allow(no-per-trial-alloc) -- cold setup loop
}
)");
  EXPECT_EQ(count_rule(r, "no-per-trial-alloc"), 0u);
}

TEST(Lexer, CommentsAndStringsAreInvisible) {
  const auto r = lint("src/a.cpp",
                      "// std::random_device in a comment\n"
                      "/* std::rand() in a block comment */\n"
                      "const char* s = \"std::random_device\";\n"
                      "const char* raw = R\"(time(nullptr))\";\n");
  EXPECT_TRUE(r.findings.empty()) << duti::lint::to_human(r);
}

TEST(Lexer, DigitSeparatorIsNotACharLiteral) {
  // A naive lexer treats 1'000'000's quotes as char literals and swallows
  // the rest of the line — which would hide the random_device after it.
  const auto r = lint("src/a.cpp",
                      R"(std::size_t n = 1'000'000; std::random_device rd;
)");
  EXPECT_EQ(count_rule(r, "no-random-device"), 1u);
}

TEST(Suppression, TrailingCommentWithJustificationSuppresses) {
  const auto r = lint(
      "src/a.cpp",
      "auto t = time(nullptr);  // duti-lint: allow(no-wall-clock) -- fixture\n");
  EXPECT_TRUE(r.findings.empty()) << duti::lint::to_human(r);
  EXPECT_EQ(r.suppressions_used, 1u);
}

TEST(Suppression, StandaloneCommentCoversNextCodeLine) {
  const auto r = lint("src/a.cpp",
                      "// duti-lint: allow(no-wall-clock) -- multi-line\n"
                      "// justification continues here\n"
                      "auto t = time(nullptr);\n");
  EXPECT_TRUE(r.findings.empty()) << duti::lint::to_human(r);
  EXPECT_EQ(r.suppressions_used, 1u);
}

TEST(Suppression, FileScopeAllowCoversWholeFile) {
  const auto r = lint("src/a.cpp",
                      "// duti-lint: allow-file(no-wall-clock) -- fixture\n"
                      "auto t = time(nullptr);\n"
                      "auto u = Clock::now();\n");
  EXPECT_TRUE(r.findings.empty()) << duti::lint::to_human(r);
  EXPECT_EQ(r.suppressions_used, 2u);
}

TEST(Suppression, MissingJustificationIsAFindingAndDoesNotApply) {
  const auto r = lint("src/a.cpp",
                      "auto t = time(nullptr);  // duti-lint: allow(no-wall-clock)\n");
  EXPECT_EQ(count_rule(r, "bare-suppression"), 1u);
  EXPECT_EQ(count_rule(r, "no-wall-clock"), 1u);  // still reported
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(Suppression, UnknownRuleNameIsAFinding) {
  const auto r = lint("src/a.cpp",
                      "// duti-lint: allow(no-such-rule) -- justified\n"
                      "int x = 0;\n");
  EXPECT_EQ(count_rule(r, "unknown-rule"), 1u);
}

TEST(Suppression, WrongRuleDoesNotSuppressOtherFindings) {
  const auto r = lint(
      "src/a.cpp",
      "auto t = time(nullptr);  // duti-lint: allow(no-rand) -- wrong rule\n");
  EXPECT_EQ(count_rule(r, "no-wall-clock"), 1u);
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(Report, RuleCountsCoverFullRegistryIncludingZeros) {
  const auto r = lint("src/a.cpp", R"(int x = rand();
)");
  for (const auto& rule : duti::lint::default_rules()) {
    ASSERT_TRUE(r.rule_counts.count(rule.name)) << rule.name;
  }
  EXPECT_EQ(r.rule_counts.at("no-rand"), 1u);
  EXPECT_EQ(r.rule_counts.at("no-random-device"), 0u);
}

TEST(Report, JsonShapeHasStableKeysAndAnchors) {
  const auto r = lint("src/a.cpp", R"(int x = rand();
)");
  const std::string json = duti::lint::to_json(r);
  EXPECT_NE(json.find("\"tool\": \"duti_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_findings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule_counts\""), std::string::npos);
  EXPECT_NE(json.find("\"no-rand\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"no-wall-clock\": 0"), std::string::npos);
  EXPECT_NE(json.find("{\"file\": \"src/a.cpp\", \"line\": 1, "
                      "\"rule\": \"no-rand\""),
            std::string::npos);
}

TEST(Report, HumanOutputAnchorsFileAndLine) {
  const auto r = lint("src/a.cpp", R"(int x = rand();
)");
  const std::string human = duti::lint::to_human(r);
  EXPECT_NE(human.find("src/a.cpp:1: [no-rand]"), std::string::npos);
  EXPECT_NE(human.find("1 finding"), std::string::npos);
}

TEST(StaleSuppression, UnusedLineScopedSuppressionIsFlagged) {
  const auto r = lint("src/a.cpp",
                      R"(int x = 1;  // duti-lint: allow(no-rand) -- why
)");
  ASSERT_EQ(count_rule(r, "stale-suppression"), 1u);
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_NE(r.findings[0].message.find("'no-rand'"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("on its line"), std::string::npos);
}

TEST(StaleSuppression, UnusedFileScopedSuppressionIsFlagged) {
  const auto r = lint("src/a.cpp",
                      R"(// duti-lint: allow-file(no-rand) -- why
int x = 1;
)");
  ASSERT_EQ(count_rule(r, "stale-suppression"), 1u);
  EXPECT_NE(r.findings[0].message.find("in this file"), std::string::npos);
}

TEST(StaleSuppression, CreditedSuppressionIsNotStale) {
  const auto r = lint("src/a.cpp",
                      R"(int x = rand();  // duti-lint: allow(no-rand) -- why
)");
  EXPECT_EQ(count_rule(r, "stale-suppression"), 0u);
  EXPECT_EQ(count_rule(r, "no-rand"), 0u);
  EXPECT_EQ(r.suppressions_used, 1u);
}

TEST(StaleSuppression, WrongLineSuppressionIsStaleAndFindingSurvives) {
  const auto r = lint("src/a.cpp",
                      R"(int x = 1;  // duti-lint: allow(no-rand) -- why
int y = rand();
)");
  EXPECT_EQ(count_rule(r, "stale-suppression"), 1u);
  EXPECT_EQ(count_rule(r, "no-rand"), 1u);
}

TEST(StaleSuppression, ForeignAnalyzerRulesAreExempt) {
  // rng-copy belongs to duti-analyze: the linter accepts the name (no
  // unknown-rule) but must not stale-flag it — duti_analyze runs the
  // symmetric check over the rules it owns.
  const auto r = lint("src/a.cpp",
                      R"(int x = 1;  // duti-lint: allow(rng-copy) -- theirs
)");
  EXPECT_EQ(count_rule(r, "unknown-rule"), 0u);
  EXPECT_EQ(count_rule(r, "stale-suppression"), 0u);
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(duti::lint::json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, NewlineAndTab) {
  EXPECT_EQ(duti::lint::json_escape("a\nb\tc"), "a\\nb\\tc");
}

TEST(JsonEscape, ControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(duti::lint::json_escape(std::string("\x01\x1f")),
            "\\u0001\\u001f");
}

TEST(JsonEscape, NonAsciiUtf8PassesThrough) {
  const std::string mu = "\xce\xbc";  // U+03BC in UTF-8
  EXPECT_EQ(duti::lint::json_escape(mu), mu);
}

TEST(JsonEscape, EscapedMessageStaysInsideJsonString) {
  duti::lint::LintReport r = duti::lint::make_report();
  r.findings.push_back(
      {"src/a.cpp", 1, "no-rand", "say \"no\" to rand\\srand"});
  r.rule_counts["no-rand"] = 1;
  r.files_scanned = 1;
  const std::string json = duti::lint::to_json(r);
  EXPECT_NE(json.find("say \\\"no\\\" to rand\\\\srand"), std::string::npos);
  EXPECT_EQ(json.find("say \"no\""), std::string::npos);
}

// The CLI exit-code contract (0 clean, 1 findings, 2 usage/IO), pinned
// in-process against a small on-disk tree.
class LintCli : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() / "duti_lint_cli_tree";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src");
    write("src/clean.cpp", "int x = 1;\n");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << content;
  }

  int cli(const std::vector<std::string>& extra, std::string* stdout_text,
          std::string* stderr_text) {
    std::vector<std::string> args = {"duti_lint", "--root", root_.string()};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<const char*> argv;
    argv.reserve(args.size());
    for (const auto& a : args) argv.push_back(a.c_str());
    std::ostringstream out, err;
    const int code = duti::lint::run_lint_cli(static_cast<int>(argv.size()),
                                              argv.data(), out, err);
    if (stdout_text != nullptr) *stdout_text = out.str();
    if (stderr_text != nullptr) *stderr_text = err.str();
    return code;
  }

  std::filesystem::path root_;
};

TEST_F(LintCli, CleanTreeExitsZero) {
  std::string out;
  EXPECT_EQ(cli({}, &out, nullptr), 0);
  EXPECT_NE(out.find("0 findings"), std::string::npos);
}

TEST_F(LintCli, FindingsExitOne) {
  write("src/dirty.cpp", "int x = rand();\n");
  std::string out;
  EXPECT_EQ(cli({}, &out, nullptr), 1);
  EXPECT_NE(out.find("no-rand"), std::string::npos);
}

TEST_F(LintCli, ListRulesExitsZero) {
  std::string out;
  EXPECT_EQ(cli({"--list-rules"}, &out, nullptr), 0);
  EXPECT_NE(out.find("no-rand"), std::string::npos);
  EXPECT_NE(out.find("stale-suppression"), std::string::npos);
}

TEST_F(LintCli, UnknownFlagExitsTwoWithUsage) {
  std::string err;
  EXPECT_EQ(cli({"--bogus"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown option '--bogus'"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(LintCli, BadRootExitsTwo) {
  std::vector<const char*> argv = {"duti_lint", "--root", "/no/such/root"};
  std::ostringstream out, err;
  EXPECT_EQ(duti::lint::run_lint_cli(static_cast<int>(argv.size()),
                                     argv.data(), out, err),
            2);
  EXPECT_NE(err.str().find("not a directory"), std::string::npos);
}

TEST_F(LintCli, UnwritableOutExitsTwo) {
  std::string err;
  EXPECT_EQ(cli({"--json", "--out",
                 (root_ / "no_such_dir/report.json").string()},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("cannot write"), std::string::npos);
}

}  // namespace
