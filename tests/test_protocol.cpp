#include "sim/protocol.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace duti {
namespace {

/// Player that accepts iff all its samples are below half the domain.
SimultaneousProtocol::PlayerFactory low_half_players(std::uint64_t n) {
  return [n](unsigned /*j*/) {
    return std::make_unique<CallbackPlayer>(
        [n](std::span<const std::uint64_t> samples, Rng& /*rng*/) {
          for (auto s : samples) {
            if (s >= n / 2) return Message::bit(false);
          }
          return Message::bit(true);
        },
        1U);
  };
}

TEST(Protocol, ConstructionValidation) {
  EXPECT_THROW(SimultaneousProtocol(0, 3, low_half_players(4)),
               InvalidArgument);
  EXPECT_THROW(SimultaneousProtocol(2, 0, low_half_players(4)),
               InvalidArgument);
  EXPECT_THROW(SimultaneousProtocol(std::vector<unsigned>{}, low_half_players(4)),
               InvalidArgument);
  EXPECT_THROW(SimultaneousProtocol(2, 2, nullptr), InvalidArgument);
}

TEST(Protocol, CollectsOneMessagePerPlayer) {
  const SimultaneousProtocol protocol(5, 3, low_half_players(8));
  const UniformSource source(8);
  Rng rng(1);
  const auto messages = protocol.collect(source, rng);
  EXPECT_EQ(messages.size(), 5u);
  for (const auto& m : messages) EXPECT_EQ(m.width, 1u);
}

TEST(Protocol, DeterministicUnderSameSeed) {
  const SimultaneousProtocol protocol(8, 4, low_half_players(16));
  const UniformSource source(16);
  Rng rng1(42), rng2(42);
  const auto m1 = protocol.collect(source, rng1);
  const auto m2 = protocol.collect(source, rng2);
  for (std::size_t j = 0; j < m1.size(); ++j) {
    EXPECT_EQ(m1[j].bits, m2[j].bits);
  }
}

TEST(Protocol, DifferentSeedsDiffer) {
  const SimultaneousProtocol protocol(32, 4, low_half_players(16));
  const UniformSource source(16);
  Rng rng1(1), rng2(2);
  const auto m1 = protocol.collect(source, rng1);
  const auto m2 = protocol.collect(source, rng2);
  bool any_diff = false;
  for (std::size_t j = 0; j < m1.size(); ++j) {
    if (m1[j].bits != m2[j].bits) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Protocol, RunAppliesRuleAndAccounting) {
  const SimultaneousProtocol protocol(6, 2, low_half_players(4));
  const UniformSource source(4);
  Rng rng(3);
  const auto result = protocol.run(source, rng, DecisionRule::and_rule());
  EXPECT_EQ(result.messages.size(), 6u);
  EXPECT_EQ(result.communication_bits, 6u);
  EXPECT_EQ(result.samples_drawn, 12u);
}

TEST(Protocol, AndRuleMatchesVotes) {
  const SimultaneousProtocol protocol(10, 2, low_half_players(4));
  const UniformSource source(4);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto result = protocol.run(source, rng, DecisionRule::and_rule());
    const auto votes = SimultaneousProtocol::votes_of(result.messages);
    bool expected = true;
    for (auto v : votes) {
      if (v == 0) expected = false;
    }
    EXPECT_EQ(result.accept, expected);
  }
}

TEST(Protocol, AsymmetricSampleCounts) {
  std::vector<unsigned> qs{1, 5, 10};
  std::vector<unsigned> observed;
  const SimultaneousProtocol protocol(
      qs, [&observed](unsigned /*j*/) {
        return std::make_unique<CallbackPlayer>(
            [&observed](std::span<const std::uint64_t> samples, Rng&) {
              observed.push_back(static_cast<unsigned>(samples.size()));
              return Message::bit(true);
            },
            1U);
      });
  const UniformSource source(4);
  Rng rng(5);
  const auto result = protocol.run(source, rng, DecisionRule::and_rule());
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed[0], 1u);
  EXPECT_EQ(observed[1], 5u);
  EXPECT_EQ(observed[2], 10u);
  EXPECT_EQ(result.samples_drawn, 16u);
}

TEST(Protocol, MultibitMessagesAccounted) {
  const SimultaneousProtocol protocol(3, 2, [](unsigned) {
    return std::make_unique<CallbackPlayer>(
        [](std::span<const std::uint64_t>, Rng&) {
          return Message{0b101, 3};
        },
        3U);
  });
  const UniformSource source(4);
  Rng rng(6);
  const auto result = protocol.run(source, rng, DecisionRule::and_rule());
  EXPECT_EQ(result.communication_bits, 9u);
  // Low bit of 0b101 is 1: all votes accept.
  EXPECT_TRUE(result.accept);
}

TEST(Protocol, PlayersSeeIidSamplesFromSource) {
  // Statistical check: pooled samples across many runs look uniform.
  std::vector<std::uint64_t> pooled;
  const SimultaneousProtocol protocol(
      4, 8, [&pooled](unsigned) {
        return std::make_unique<CallbackPlayer>(
            [&pooled](std::span<const std::uint64_t> samples, Rng&) {
              pooled.insert(pooled.end(), samples.begin(), samples.end());
              return Message::bit(true);
            },
            1U);
      });
  const UniformSource source(4);
  Rng rng(7);
  for (int run = 0; run < 500; ++run) {
    (void)protocol.collect(source, rng);
  }
  std::vector<int> counts(4, 0);
  for (auto s : pooled) ++counts[s];
  const double expected = static_cast<double>(pooled.size()) / 4.0;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.1);
  }
}

}  // namespace
}  // namespace duti
