#include "fourier/level_inequality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fourier/families.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(KklBound, FormulaSpotChecks) {
  // delta^{-r} mu^{2/(1+delta)}
  EXPECT_NEAR(kkl_level_bound(0.25, 1, 1.0), 1.0 * 0.25, 1e-12);
  EXPECT_NEAR(kkl_level_bound(0.5, 2, 0.5),
              std::pow(0.5, -2.0) * std::pow(0.5, 2.0 / 1.5), 1e-12);
  EXPECT_DOUBLE_EQ(kkl_level_bound(0.0, 3, 0.5), 0.0);
}

TEST(KklBound, ArgumentValidation) {
  EXPECT_THROW((void)kkl_level_bound(-0.1, 1, 0.5), InvalidArgument);
  EXPECT_THROW((void)kkl_level_bound(0.5, 1, 0.0), InvalidArgument);
  EXPECT_THROW((void)kkl_level_bound(0.5, 1, 1.5), InvalidArgument);
}

TEST(KklBound, OptimizedIsNoWorseThanFixedDeltas) {
  for (double mu : {0.01, 0.1, 0.3}) {
    for (unsigned r : {1u, 2u, 4u}) {
      const double best = kkl_level_bound_optimized(mu, r);
      for (double delta : {0.1, 0.3, 0.5, 0.9, 1.0}) {
        EXPECT_LE(best, kkl_level_bound(mu, r, delta) * (1.0 + 1e-6))
            << "mu=" << mu << " r=" << r << " delta=" << delta;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The inequality itself (Lemma 5.4): checked on concrete function families
// and random functions, across levels and delta values.
// ---------------------------------------------------------------------------

class KklHoldsTest
    : public ::testing::TestWithParam<std::tuple<unsigned, double>> {};

TEST_P(KklHoldsTest, HoldsForBiasedAnds) {
  const auto [r, delta] = GetParam();
  // AND of w variables has mean 2^{-w}: the canonical biased function the
  // AND-rule lower bound exploits.
  for (unsigned w = 1; w <= 6; ++w) {
    const auto f = fn::and_of(8, (1ULL << w) - 1);
    EXPECT_LE(kkl_violation(f, r, delta), 1e-9)
        << "w=" << w << " r=" << r << " delta=" << delta;
  }
}

TEST_P(KklHoldsTest, HoldsForTribesAndThresholds) {
  const auto [r, delta] = GetParam();
  EXPECT_LE(kkl_violation(fn::tribes(8, 4), r, delta), 1e-9);
  for (unsigned t = 1; t <= 8; ++t) {
    EXPECT_LE(kkl_violation(fn::threshold_at_least(8, t), r, delta), 1e-9);
  }
}

TEST_P(KklHoldsTest, HoldsForRandomFunctions) {
  const auto [r, delta] = GetParam();
  Rng rng(derive_seed(42, r, static_cast<std::uint64_t>(delta * 100)));
  for (double p : {0.02, 0.1, 0.5, 0.9}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto f = fn::random_boolean(7, p, rng);
      EXPECT_LE(kkl_violation(f, r, delta), 1e-9)
          << "p=" << p << " r=" << r << " delta=" << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndDeltas, KklHoldsTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(0.2, 0.5, 0.8, 1.0)));

TEST(LevelWeightUpTo, MatchesManualSum) {
  Rng rng(7);
  const auto f = fn::random_boolean(6, 0.3, rng);
  double manual = 0.0;
  for (unsigned level = 0; level <= 2; ++level) {
    manual += f.level_weight(level);
  }
  EXPECT_NEAR(level_weight_up_to(f, 2), manual, 1e-12);
}

TEST(KklViolation, RequiresBooleanFunction) {
  Rng rng(8);
  const auto f = fn::random_real(4, 0.0, 0.9, rng);
  EXPECT_THROW((void)kkl_violation(f, 1, 0.5), InvalidArgument);
}

TEST(KklBound, TightnessTrend) {
  // For small mu the bound at low level should be much smaller than the
  // trivial bound mu (which is all the Fourier weight there is): this is
  // exactly why biased bits carry little low-level information.
  const double mu = 1e-3;
  const double bound = kkl_level_bound_optimized(mu, 1);
  EXPECT_LT(bound, mu);
}

}  // namespace
}  // namespace duti
