// Persistent probe cache (DESIGN.md section 8): round-trip bit-identity,
// fingerprint sensitivity to every key field, readonly mode, and tolerance
// to corrupt JSONL lines.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "stats/probe_cache.hpp"
#include "stats/workloads.hpp"
#include "testers/collision.hpp"
#include "util/error.hpp"

namespace duti {
namespace {

// Fresh scratch directory per test, removed on teardown.
class ProbeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("duti_cache_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

ProbeKey sample_key() {
  ProbeKey key;
  key.workload = "nuz:n=4096:eps=0.5";
  key.tester = "collision";
  key.param = 384;
  key.trials = 400;
  key.seed = 7;
  key.flavor = "full";
  return key;
}

ProbeResult sample_result() {
  ProbeResult r = probe_result_from_tallies(301, 295, 400, 400,
                                            ProbeStop::kExhausted);
  r.uniform_aborts_quorum = 3;
  r.far_aborts_timeout = 1;
  return r;
}

void expect_bit_identical(const ProbeResult& a, const ProbeResult& b) {
  // Doubles compared with == on purpose: the cache must reproduce the exact
  // bits, not an approximation.
  EXPECT_EQ(a.uniform_accept_rate, b.uniform_accept_rate);
  EXPECT_EQ(a.far_reject_rate, b.far_reject_rate);
  EXPECT_EQ(a.uniform_ci.lo, b.uniform_ci.lo);
  EXPECT_EQ(a.uniform_ci.hi, b.uniform_ci.hi);
  EXPECT_EQ(a.far_ci.lo, b.far_ci.lo);
  EXPECT_EQ(a.far_ci.hi, b.far_ci.hi);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.uniform_successes, b.uniform_successes);
  EXPECT_EQ(a.far_successes, b.far_successes);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.uniform_aborts_quorum, b.uniform_aborts_quorum);
  EXPECT_EQ(a.uniform_aborts_timeout, b.uniform_aborts_timeout);
  EXPECT_EQ(a.far_aborts_quorum, b.far_aborts_quorum);
  EXPECT_EQ(a.far_aborts_timeout, b.far_aborts_timeout);
}

TEST_F(ProbeCacheTest, RoundTripsAcrossProcesses) {
  const ProbeKey key = sample_key();
  const ProbeResult original = sample_result();
  {
    ProbeCache cache(dir_, CacheMode::kReadWrite);
    cache.insert(key, original);
    EXPECT_EQ(cache.stats().inserts, 1u);
  }
  // A fresh instance over the same directory simulates the next process run.
  ProbeCache reloaded(dir_, CacheMode::kReadWrite);
  EXPECT_EQ(reloaded.size(), 1u);
  const auto hit = reloaded.lookup(key);
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(*hit, original);
  EXPECT_EQ(reloaded.stats().hits, 1u);
}

TEST_F(ProbeCacheTest, FingerprintIsSensitiveToEveryKeyField) {
  const ProbeKey base = sample_key();
  const std::uint64_t fp = base.fingerprint();

  ProbeKey k = base;
  k.workload = "nuz:n=4096:eps=0.25";
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.tester = "chi2";
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.param += 1;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.trials += 1;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.seed += 1;
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.flavor = adaptive_flavor(AdaptiveProbeConfig{});
  EXPECT_NE(k.fingerprint(), fp);
  k = base;
  k.engine_version += 1;
  EXPECT_NE(k.fingerprint(), fp);
  // Field contents must not alias across field boundaries.
  k = base;
  k.workload = base.workload + base.tester;
  k.tester = "";
  EXPECT_NE(k.fingerprint(), fp);
}

TEST_F(ProbeCacheTest, MissOnDifferentKeyAndHitAfterInsert) {
  ProbeCache cache(dir_, CacheMode::kReadWrite);
  const ProbeKey key = sample_key();
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, sample_result());
  ProbeKey other = key;
  other.seed += 1;
  EXPECT_FALSE(cache.lookup(other).has_value());
  EXPECT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(ProbeCacheTest, ReadOnlyModeNeverWrites) {
  {
    ProbeCache writer(dir_, CacheMode::kReadWrite);
    writer.insert(sample_key(), sample_result());
  }
  ProbeCache reader(dir_, CacheMode::kReadOnly);
  EXPECT_TRUE(reader.lookup(sample_key()).has_value());
  ProbeKey fresh = sample_key();
  fresh.param += 100;
  reader.insert(fresh, sample_result());  // must be a no-op
  EXPECT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.stats().inserts, 0u);
  ProbeCache reloaded(dir_, CacheMode::kReadOnly);
  EXPECT_FALSE(reloaded.lookup(fresh).has_value());
}

TEST_F(ProbeCacheTest, OffModeDoesNoIOAndComputesEveryTime) {
  ProbeCache cache(dir_, CacheMode::kOff);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return sample_result();
  };
  (void)cache.get_or_compute(sample_key(), compute);
  (void)cache.get_or_compute(sample_key(), compute);
  EXPECT_EQ(computes, 2);
  EXPECT_FALSE(std::filesystem::exists(dir_));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_F(ProbeCacheTest, GetOrComputeCachesAcrossCalls) {
  ProbeCache cache(dir_, CacheMode::kReadWrite);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return sample_result();
  };
  const ProbeResult first = cache.get_or_compute(sample_key(), compute);
  const ProbeResult second = cache.get_or_compute(sample_key(), compute);
  EXPECT_EQ(computes, 1);
  expect_bit_identical(first, second);
}

TEST_F(ProbeCacheTest, ToleratesCorruptLines) {
  {
    ProbeCache writer(dir_, CacheMode::kReadWrite);
    writer.insert(sample_key(), sample_result());
  }
  const std::string path =
      (std::filesystem::path(dir_) / "probes.jsonl").string();
  {
    std::ofstream out(path, std::ios::app);
    out << "not json at all\n";
    out << "{\"workload\":\"truncated\n";
    out << "{\"workload\":\"x\",\"tester\":\"y\",\"flavor\":\"z\"}\n";
  }
  // Append a second valid record AFTER the garbage, then a torn final line
  // (killed process mid-append).
  ProbeKey second = sample_key();
  second.param += 1;
  {
    ProbeCache writer(dir_, CacheMode::kReadWrite);
    writer.insert(second, sample_result());
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"workload\":\"torn\",\"tester\":\"t\",\"par";
  }
  ProbeCache reloaded(dir_, CacheMode::kReadOnly);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.lookup(sample_key()).has_value());
  EXPECT_TRUE(reloaded.lookup(second).has_value());
}

TEST_F(ProbeCacheTest, KeyStringsSurviveEscaping) {
  ProbeKey key = sample_key();
  key.workload = "weird \"quoted\" \\ backslash\tand\ttabs";
  const ProbeResult original = sample_result();
  {
    ProbeCache writer(dir_, CacheMode::kReadWrite);
    writer.insert(key, original);
  }
  ProbeCache reloaded(dir_, CacheMode::kReadOnly);
  const auto hit = reloaded.lookup(key);
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(*hit, original);
}

TEST_F(ProbeCacheTest, CachedProbeEntryPointIsBitIdentical) {
  // The real integration: a cached probe's second run must be served from
  // disk and reproduce the computed ProbeResult exactly.
  const TesterRun tester = [](const SampleSource& source, Rng& rng) {
    std::vector<std::uint64_t> samples;
    source.sample_many(rng, 32, samples);
    const double expected = expected_collision_pairs_uniform(
        static_cast<double>(source.domain_size()), 32);
    return static_cast<double>(collision_pairs(samples)) <= expected + 1.0;
  };
  ProbeKey key;
  key.workload = "paninski:n=128:eps=0.5";
  key.tester = "noisy-collision";
  key.param = 32;

  ProbeResult computed;
  {
    ProbeCache cache(dir_, CacheMode::kReadWrite);
    computed = probe_success_cached(cache, key, tester,
                                    workloads::uniform_factory(128),
                                    workloads::paninski_far_factory(128, 0.5),
                                    200, 13);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().inserts, 1u);
  }
  ProbeCache cache(dir_, CacheMode::kReadOnly);
  const ProbeResult replayed = probe_success_cached(
      cache, key, tester, workloads::uniform_factory(128),
      workloads::paninski_far_factory(128, 0.5), 200, 13);
  EXPECT_EQ(cache.stats().hits, 1u);
  expect_bit_identical(computed, replayed);

  // A different trial budget is a different probe: miss, then recompute.
  const ProbeResult other = probe_success_cached(
      cache, key, tester, workloads::uniform_factory(128),
      workloads::paninski_far_factory(128, 0.5), 100, 13);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(other.trials, 100u);
}

TEST(GlobalProbeCache, HonorsEnvironmentConfiguration) {
  // Under the `adaptive-check` workflow preset this runs with DUTI_CACHE=rw
  // against a scratch dir, exercising the global cache end to end (the
  // second preset run hits entries persisted by the first); in a plain test
  // run DUTI_CACHE is unset and the global cache must be off.
  const char* mode_env = std::getenv("DUTI_CACHE");
  const std::string mode = mode_env == nullptr ? "off" : mode_env;
  ProbeCache& g = ProbeCache::global();
  if (mode == "off") {
    EXPECT_EQ(g.mode(), CacheMode::kOff);
  } else if (mode == "readonly") {
    EXPECT_EQ(g.mode(), CacheMode::kReadOnly);
  } else {
    ASSERT_EQ(mode, "rw");
    EXPECT_EQ(g.mode(), CacheMode::kReadWrite);
  }

  ProbeKey key = sample_key();
  key.workload = "global-cache-smoke";
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return sample_result();
  };
  const ProbeResult first = g.get_or_compute(key, compute);
  const ProbeResult second = g.get_or_compute(key, compute);
  expect_bit_identical(first, second);
  expect_bit_identical(first, sample_result());
  if (g.mode() == CacheMode::kOff) {
    EXPECT_EQ(computes, 2);
  } else if (g.mode() == CacheMode::kReadOnly) {
    // Either both calls computed (nothing persisted) or both were hits.
    EXPECT_TRUE(computes == 0 || computes == 2) << computes;
  } else {
    // At most one compute (zero when a previous run already persisted the
    // record); the second call must always be served from the cache.
    EXPECT_LE(computes, 1);
  }
}

}  // namespace
}  // namespace duti
