#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Network, ConstructionAndEdges) {
  Network net(4);
  EXPECT_EQ(net.num_nodes(), 4u);
  EXPECT_FALSE(net.has_edge(0, 1));
  net.add_edge(0, 1);
  EXPECT_TRUE(net.has_edge(0, 1));
  EXPECT_FALSE(net.has_edge(1, 0));  // directed
  EXPECT_THROW(net.add_edge(0, 0), InvalidArgument);
  EXPECT_THROW(net.add_edge(0, 9), InvalidArgument);
}

TEST(Network, StarTopology) {
  Network net(5);
  net.add_star(0);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(net.has_edge(v, 0));
    EXPECT_TRUE(net.has_edge(0, v));
  }
  EXPECT_FALSE(net.has_edge(1, 2));
}

TEST(Network, CompleteTopology) {
  Network net(4);
  net.add_complete();
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_EQ(net.has_edge(u, v), u != v);
    }
  }
}

TEST(Network, MissingBehaviorThrows) {
  Network net(2);
  net.set_behavior(0, [](RoundContext& ctx) { ctx.halt(); });
  Rng rng(1);
  EXPECT_THROW(net.run(rng), Error);
}

TEST(Network, HaltsWhenAllNodesHalt) {
  Network net(3);
  for (NodeId v = 0; v < 3; ++v) {
    net.set_behavior(v, [](RoundContext& ctx) {
      if (ctx.round() >= 2) ctx.halt();
    });
  }
  Rng rng(2);
  const auto stats = net.run(rng, 100);
  EXPECT_EQ(stats.rounds_executed, 3u);  // rounds 0,1,2
}

TEST(Network, MaxRoundsCapsExecution) {
  Network net(1);
  net.set_behavior(0, [](RoundContext&) { /* never halts */ });
  Rng rng(3);
  const auto stats = net.run(rng, 7);
  EXPECT_EQ(stats.rounds_executed, 7u);
}

TEST(Network, StarVoteAggregation) {
  // Leaves send their id+10 to the center in round 0; center sums in
  // round 1. End-to-end single-round aggregation — the referee pattern.
  Network net(4);
  net.add_star(0);
  std::uint64_t total_received = 0;
  net.set_behavior(0, [&total_received](RoundContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      total_received += m.payload.at(0);
    }
    if (ctx.round() >= 1) ctx.halt();
  });
  for (NodeId v = 1; v < 4; ++v) {
    net.set_behavior(v, [](RoundContext& ctx) {
      ctx.send(0, {ctx.id() + 10ULL}, 8);
      ctx.halt();
    });
  }
  Rng rng(4);
  const auto stats = net.run(rng);
  EXPECT_EQ(total_received, 11u + 12u + 13u);
  EXPECT_EQ(stats.messages_sent, 3u);
  EXPECT_EQ(stats.bits_sent, 24u);
}

TEST(Network, SendingAlongNonEdgeThrows) {
  Network net(3);
  net.add_edge(0, 1);
  net.set_behavior(0, [](RoundContext& ctx) {
    ctx.send(2, {1}, 1);  // no edge 0 -> 2
    ctx.halt();
  });
  net.set_behavior(1, [](RoundContext& ctx) { ctx.halt(); });
  net.set_behavior(2, [](RoundContext& ctx) { ctx.halt(); });
  Rng rng(5);
  EXPECT_THROW(net.run(rng), InvalidArgument);
}

TEST(Network, MessagesDeliveredNextRound) {
  Network net(2);
  net.add_edge(0, 1);
  unsigned delivery_round = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    if (ctx.round() == 0) ctx.send(1, {99}, 7);
    if (ctx.round() >= 1) ctx.halt();
  });
  net.set_behavior(1, [&delivery_round](RoundContext& ctx) {
    if (!ctx.inbox().empty()) {
      delivery_round = ctx.round();
      EXPECT_EQ(ctx.inbox()[0].payload.at(0), 99u);
      EXPECT_EQ(ctx.inbox()[0].from, 0u);
      ctx.halt();
    }
  });
  Rng rng(6);
  net.run(rng);
  EXPECT_EQ(delivery_round, 1u);
}

TEST(Network, HaltedNodesStopParticipating) {
  Network net(2);
  net.add_edge(0, 1);
  int rounds_active = 0;
  net.set_behavior(0, [&rounds_active](RoundContext& ctx) {
    ++rounds_active;
    ctx.halt();
  });
  net.set_behavior(1, [](RoundContext& ctx) {
    if (ctx.round() >= 3) ctx.halt();
  });
  Rng rng(7);
  net.run(rng);
  EXPECT_EQ(rounds_active, 1);
}

TEST(Network, DropFaultLosesMessages) {
  Network net(2);
  net.add_edge(0, 1);
  net.set_link_fault(0, 1, {1.0, 0.0});  // drop everything
  int received = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    ctx.send(1, {42}, 8);
    ctx.halt();
  });
  net.set_behavior(1, [&received](RoundContext& ctx) {
    received += static_cast<int>(ctx.inbox().size());
    if (ctx.round() >= 1) ctx.halt();
  });
  Rng rng(31);
  const auto stats = net.run(rng);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(stats.messages_dropped, 1u);
  EXPECT_EQ(stats.messages_sent, 1u);  // sending is still charged
}

TEST(Network, CorruptFaultFlipsLowBit) {
  Network net(2);
  net.add_edge(0, 1);
  net.set_link_fault(0, 1, {0.0, 1.0});  // corrupt everything
  std::uint64_t received_value = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    ctx.send(1, {42}, 8);
    ctx.halt();
  });
  net.set_behavior(1, [&received_value](RoundContext& ctx) {
    for (const auto& m : ctx.inbox()) received_value = m.payload.at(0);
    if (ctx.round() >= 1) ctx.halt();
  });
  Rng rng(32);
  const auto stats = net.run(rng);
  EXPECT_EQ(received_value, 43u);  // low bit flipped
  EXPECT_EQ(stats.messages_corrupted, 1u);
}

TEST(Network, PartialDropRateIsRespected) {
  Network net(2);
  net.add_edge(0, 1);
  net.set_default_fault({0.3, 0.0});
  int received = 0, sent = 0;
  net.set_behavior(0, [&sent](RoundContext& ctx) {
    if (ctx.round() < 500) {
      ctx.send(1, {1}, 1);
      ++sent;
    } else {
      ctx.halt();
    }
  });
  net.set_behavior(1, [&received](RoundContext& ctx) {
    received += static_cast<int>(ctx.inbox().size());
    if (ctx.round() >= 501) ctx.halt();
  });
  Rng rng(33);
  net.run(rng, 600);
  EXPECT_NEAR(static_cast<double>(received) / sent, 0.7, 0.07);
}

TEST(Network, FaultValidation) {
  Network net(2);
  net.add_edge(0, 1);
  EXPECT_THROW(net.set_link_fault(1, 0, {0.5, 0.0}), InvalidArgument);
  EXPECT_THROW(net.set_link_fault(0, 1, {1.5, 0.0}), InvalidArgument);
  EXPECT_THROW(net.set_default_fault({0.0, -0.1}), InvalidArgument);
}

TEST(Network, FaultyRunsReplayDeterministically) {
  auto run_once = [](std::uint64_t seed) {
    Network net(2);
    net.add_edge(0, 1);
    net.set_default_fault({0.5, 0.0});
    int received = 0;
    net.set_behavior(0, [](RoundContext& ctx) {
      if (ctx.round() < 50) {
        ctx.send(1, {1}, 1);
      } else {
        ctx.halt();
      }
    });
    net.set_behavior(1, [&received](RoundContext& ctx) {
      received += static_cast<int>(ctx.inbox().size());
      if (ctx.round() >= 51) ctx.halt();
    });
    Rng rng(seed);
    net.run(rng, 100);
    return received;
  };
  EXPECT_EQ(run_once(34), run_once(34));
}

TEST(Network, PerNodeRngIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Network net(2);
    net.add_edge(0, 1);
    std::uint64_t observed = 0;
    net.set_behavior(0, [&observed](RoundContext& ctx) {
      observed = ctx.rng()();
      ctx.halt();
    });
    net.set_behavior(1, [](RoundContext& ctx) { ctx.halt(); });
    Rng rng(seed);
    net.run(rng);
    return observed;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

}  // namespace
}  // namespace duti
