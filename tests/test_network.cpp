#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Network, ConstructionAndEdges) {
  Network net(4);
  EXPECT_EQ(net.num_nodes(), 4u);
  EXPECT_FALSE(net.has_edge(0, 1));
  net.add_edge(0, 1);
  EXPECT_TRUE(net.has_edge(0, 1));
  EXPECT_FALSE(net.has_edge(1, 0));  // directed
  EXPECT_THROW(net.add_edge(0, 0), InvalidArgument);
  EXPECT_THROW(net.add_edge(0, 9), InvalidArgument);
}

TEST(Network, StarTopology) {
  Network net(5);
  net.add_star(0);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(net.has_edge(v, 0));
    EXPECT_TRUE(net.has_edge(0, v));
  }
  EXPECT_FALSE(net.has_edge(1, 2));
}

TEST(Network, CompleteTopology) {
  Network net(4);
  net.add_complete();
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_EQ(net.has_edge(u, v), u != v);
    }
  }
}

TEST(Network, MissingBehaviorThrows) {
  Network net(2);
  net.set_behavior(0, [](RoundContext& ctx) { ctx.halt(); });
  Rng rng(1);
  EXPECT_THROW(net.run(rng), Error);
}

TEST(Network, HaltsWhenAllNodesHalt) {
  Network net(3);
  for (NodeId v = 0; v < 3; ++v) {
    net.set_behavior(v, [](RoundContext& ctx) {
      if (ctx.round() >= 2) ctx.halt();
    });
  }
  Rng rng(2);
  const auto stats = net.run(rng, 100);
  EXPECT_EQ(stats.rounds_executed, 3u);  // rounds 0,1,2
}

TEST(Network, MaxRoundsCapsExecution) {
  Network net(1);
  net.set_behavior(0, [](RoundContext&) { /* never halts */ });
  Rng rng(3);
  const auto stats = net.run(rng, 7);
  EXPECT_EQ(stats.rounds_executed, 7u);
}

TEST(Network, StarVoteAggregation) {
  // Leaves send their id+10 to the center in round 0; center sums in
  // round 1. End-to-end single-round aggregation — the referee pattern.
  Network net(4);
  net.add_star(0);
  std::uint64_t total_received = 0;
  net.set_behavior(0, [&total_received](RoundContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      total_received += m.payload.at(0);
    }
    if (ctx.round() >= 1) ctx.halt();
  });
  for (NodeId v = 1; v < 4; ++v) {
    net.set_behavior(v, [](RoundContext& ctx) {
      ctx.send(0, {ctx.id() + 10ULL}, 8);
      ctx.halt();
    });
  }
  Rng rng(4);
  const auto stats = net.run(rng);
  EXPECT_EQ(total_received, 11u + 12u + 13u);
  EXPECT_EQ(stats.messages_sent, 3u);
  EXPECT_EQ(stats.bits_sent, 24u);
}

TEST(Network, SendingAlongNonEdgeThrows) {
  Network net(3);
  net.add_edge(0, 1);
  net.set_behavior(0, [](RoundContext& ctx) {
    ctx.send(2, {1}, 1);  // no edge 0 -> 2
    ctx.halt();
  });
  net.set_behavior(1, [](RoundContext& ctx) { ctx.halt(); });
  net.set_behavior(2, [](RoundContext& ctx) { ctx.halt(); });
  Rng rng(5);
  EXPECT_THROW(net.run(rng), InvalidArgument);
}

TEST(Network, MessagesDeliveredNextRound) {
  Network net(2);
  net.add_edge(0, 1);
  unsigned delivery_round = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    if (ctx.round() == 0) ctx.send(1, {99}, 7);
    if (ctx.round() >= 1) ctx.halt();
  });
  net.set_behavior(1, [&delivery_round](RoundContext& ctx) {
    if (!ctx.inbox().empty()) {
      delivery_round = ctx.round();
      EXPECT_EQ(ctx.inbox()[0].payload.at(0), 99u);
      EXPECT_EQ(ctx.inbox()[0].from, 0u);
      ctx.halt();
    }
  });
  Rng rng(6);
  net.run(rng);
  EXPECT_EQ(delivery_round, 1u);
}

TEST(Network, HaltedNodesStopParticipating) {
  Network net(2);
  net.add_edge(0, 1);
  int rounds_active = 0;
  net.set_behavior(0, [&rounds_active](RoundContext& ctx) {
    ++rounds_active;
    ctx.halt();
  });
  net.set_behavior(1, [](RoundContext& ctx) {
    if (ctx.round() >= 3) ctx.halt();
  });
  Rng rng(7);
  net.run(rng);
  EXPECT_EQ(rounds_active, 1);
}

TEST(Network, DropFaultLosesMessages) {
  Network net(2);
  net.add_edge(0, 1);
  net.set_link_fault(0, 1, {1.0, 0.0});  // drop everything
  int received = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    ctx.send(1, {42}, 8);
    ctx.halt();
  });
  net.set_behavior(1, [&received](RoundContext& ctx) {
    received += static_cast<int>(ctx.inbox().size());
    if (ctx.round() >= 1) ctx.halt();
  });
  Rng rng(31);
  const auto stats = net.run(rng);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(stats.messages_dropped, 1u);
  EXPECT_EQ(stats.messages_sent, 1u);  // sending is still charged
}

TEST(Network, CorruptFaultFlipsOneBitWithinBitSize) {
  // Full-width corruption: exactly one uniformly chosen bit inside the
  // declared bit_size flips — never a bit outside it.
  auto corrupt_once = [](std::uint64_t seed) {
    Network net(2);
    net.add_edge(0, 1);
    net.set_link_fault(0, 1, {0.0, 1.0});  // corrupt everything
    std::uint64_t received_value = 0;
    net.set_behavior(0, [](RoundContext& ctx) {
      ctx.send(1, {0xAAu}, 8);
      ctx.halt();
    });
    net.set_behavior(1, [&received_value](RoundContext& ctx) {
      for (const auto& m : ctx.inbox()) received_value = m.payload.at(0);
      if (ctx.round() >= 1) ctx.halt();
    });
    Rng rng(seed);
    const auto stats = net.run(rng);
    EXPECT_EQ(stats.messages_corrupted, 1u);
    return received_value;
  };
  bool saw_non_low_bit = false;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const std::uint64_t received = corrupt_once(seed);
    const std::uint64_t diff = received ^ 0xAAu;
    EXPECT_EQ(__builtin_popcountll(diff), 1) << "seed " << seed;
    EXPECT_LT(diff, 1u << 8) << "flipped bit outside bit_size";
    if (diff != 1) saw_non_low_bit = true;
    // Bit-for-bit reproducible under a fixed seed.
    EXPECT_EQ(received, corrupt_once(seed));
  }
  EXPECT_TRUE(saw_non_low_bit);  // not just the old word0-low-bit flip
}

TEST(Network, DelayFaultDefersDeliveryByConfiguredRounds) {
  Network net(2);
  net.add_edge(0, 1);
  LinkFault fault;
  fault.delay_prob = 1.0;
  fault.delay_rounds = 3;
  net.set_link_fault(0, 1, fault);
  unsigned delivery_round = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    if (ctx.round() == 0) ctx.send(1, {7}, 4);
    if (ctx.round() >= 1) ctx.halt();
  });
  net.set_behavior(1, [&delivery_round](RoundContext& ctx) {
    if (!ctx.inbox().empty()) {
      delivery_round = ctx.round();
      EXPECT_EQ(ctx.inbox()[0].payload.at(0), 7u);
      ctx.halt();
    }
  });
  Rng rng(41);
  const auto stats = net.run(rng, 50);
  EXPECT_EQ(delivery_round, 4u);  // 1 (normal) + 3 (delay)
  EXPECT_EQ(stats.messages_delayed, 1u);
  EXPECT_EQ(stats.messages_lost(), 0u);
}

TEST(Network, OutageWindowBlocksExactlyConfiguredRounds) {
  Network net(2);
  net.add_edge(0, 1);
  LinkFault fault;
  fault.outage_lo = 1;
  fault.outage_hi = 3;  // rounds 1 and 2 are down
  net.set_link_fault(0, 1, fault);
  std::vector<std::uint64_t> received;
  net.set_behavior(0, [](RoundContext& ctx) {
    if (ctx.round() < 5) {
      ctx.send(1, {ctx.round()}, 8);
    } else {
      ctx.halt();
    }
  });
  net.set_behavior(1, [&received](RoundContext& ctx) {
    for (const auto& m : ctx.inbox()) received.push_back(m.payload.at(0));
    if (ctx.round() >= 6) ctx.halt();
  });
  Rng rng(42);
  const auto stats = net.run(rng, 20);
  EXPECT_EQ(received, (std::vector<std::uint64_t>{0, 3, 4}));
  EXPECT_EQ(stats.messages_lost_to_outage, 2u);
  EXPECT_EQ(stats.messages_sent, 5u);
}

TEST(Network, CrashStopFiresAtScheduledRound) {
  Network net(2);
  net.add_edge(0, 1);
  int rounds_active = 0;
  net.set_behavior(0, [&rounds_active](RoundContext&) { ++rounds_active; });
  net.set_behavior(1, [](RoundContext& ctx) {
    if (ctx.round() >= 5) ctx.halt();
  });
  net.schedule_crash(0, 2);
  Rng rng(43);
  const auto stats = net.run(rng, 100);
  EXPECT_EQ(rounds_active, 2);  // executed rounds 0 and 1 only
  EXPECT_EQ(stats.nodes_crashed, 1u);
  // A crashed node counts as halted: the run terminates without stalling
  // until max_rounds.
  EXPECT_EQ(stats.rounds_executed, 6u);
}

TEST(Network, MessagesToCrashedOrHaltedNodesAreAccounted) {
  Network net(2);
  net.add_edge(0, 1);
  net.schedule_crash(1, 1);
  net.set_behavior(0, [](RoundContext& ctx) {
    if (ctx.round() < 3) {
      ctx.send(1, {1}, 1);
    } else {
      ctx.halt();
    }
  });
  net.set_behavior(1, [](RoundContext&) {});
  Rng rng(44);
  const auto stats = net.run(rng, 50);
  // All three messages (delivered at rounds 1,2,3) arrive after the crash.
  EXPECT_EQ(stats.messages_sent, 3u);
  EXPECT_EQ(stats.messages_lost_to_halted, 3u);
}

TEST(Network, ByzantineWrappersTamperWithOutgoingVotes) {
  struct Case {
    ByzantineMode mode;
    std::uint64_t sent, expected;
  };
  for (const Case c : {Case{ByzantineMode::kStuckAtZero, 1, 0},
                       Case{ByzantineMode::kStuckAtOne, 0, 1},
                       Case{ByzantineMode::kAdversarialFlip, 1, 0},
                       Case{ByzantineMode::kAdversarialFlip, 0, 1}}) {
    Network net(2);
    net.add_edge(0, 1);
    std::uint64_t received = 99;
    net.set_behavior(0, make_byzantine(
                            [&c](RoundContext& ctx) {
                              ctx.send(1, {c.sent}, 1);
                              ctx.halt();
                            },
                            c.mode));
    net.set_behavior(1, [&received](RoundContext& ctx) {
      for (const auto& m : ctx.inbox()) received = m.payload.at(0);
      if (ctx.round() >= 1) ctx.halt();
    });
    Rng rng(45);
    net.run(rng);
    EXPECT_EQ(received, c.expected)
        << "mode " << static_cast<int>(c.mode) << " sent " << c.sent;
  }
}

TEST(Network, MessageAuditBalancesUnderMixedFaults) {
  // Every sent message is delivered exactly once or lands in exactly one
  // loss bucket — the invariant bit-accounting audits rely on.
  Network net(2);
  net.add_edge(0, 1);
  LinkFault fault;
  fault.drop_prob = 0.25;
  fault.corrupt_prob = 0.2;
  fault.delay_prob = 0.3;
  fault.delay_rounds = 2;
  fault.outage_lo = 10;
  fault.outage_hi = 20;
  net.set_default_fault(fault);
  std::uint64_t received = 0;
  net.set_behavior(0, [](RoundContext& ctx) {
    if (ctx.round() < 100) {
      ctx.send(1, {ctx.round()}, 16);
    } else {
      ctx.halt();
    }
  });
  net.set_behavior(1, [&received](RoundContext& ctx) {
    received += ctx.inbox().size();
    if (ctx.round() >= 110) ctx.halt();
  });
  Rng rng(46);
  const auto stats = net.run(rng, 200);
  EXPECT_EQ(stats.messages_sent, 100u);
  EXPECT_EQ(received + stats.messages_lost(), stats.messages_sent);
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.messages_delayed, 0u);
  EXPECT_GT(stats.messages_lost_to_outage, 0u);
}

TEST(Network, FaultStatsReplayDeterministically) {
  // Same seed => identical NetworkStats across two runs, every counter.
  auto run_once = [](std::uint64_t seed) {
    Network net(3);
    net.add_edge(0, 1);
    net.add_edge(1, 2);
    LinkFault fault;
    fault.drop_prob = 0.3;
    fault.corrupt_prob = 0.3;
    fault.delay_prob = 0.2;
    fault.delay_rounds = 1;
    net.set_default_fault(fault);
    net.schedule_crash(2, 40);
    net.set_behavior(0, [](RoundContext& ctx) {
      if (ctx.round() < 60) {
        ctx.send(1, {ctx.round()}, 12);
      } else {
        ctx.halt();
      }
    });
    net.set_behavior(1, [](RoundContext& ctx) {
      for (const auto& m : ctx.inbox()) {
        ctx.send(2, {m.payload.at(0)}, 12);
      }
      if (ctx.round() >= 65) ctx.halt();
    });
    net.set_behavior(2, [](RoundContext&) {});
    Rng rng(seed);
    return net.run(rng, 100);
  };
  const auto a = run_once(47);
  const auto b = run_once(47);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bits_sent, b.bits_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  EXPECT_EQ(a.messages_delayed, b.messages_delayed);
  EXPECT_EQ(a.messages_lost_to_outage, b.messages_lost_to_outage);
  EXPECT_EQ(a.messages_lost_to_halted, b.messages_lost_to_halted);
  EXPECT_EQ(a.nodes_crashed, b.nodes_crashed);
  const auto c = run_once(48);
  EXPECT_NE(a.messages_dropped, c.messages_dropped);
}

TEST(Network, PartialDropRateIsRespected) {
  Network net(2);
  net.add_edge(0, 1);
  net.set_default_fault({0.3, 0.0});
  int received = 0, sent = 0;
  net.set_behavior(0, [&sent](RoundContext& ctx) {
    if (ctx.round() < 500) {
      ctx.send(1, {1}, 1);
      ++sent;
    } else {
      ctx.halt();
    }
  });
  net.set_behavior(1, [&received](RoundContext& ctx) {
    received += static_cast<int>(ctx.inbox().size());
    if (ctx.round() >= 501) ctx.halt();
  });
  Rng rng(33);
  net.run(rng, 600);
  EXPECT_NEAR(static_cast<double>(received) / sent, 0.7, 0.07);
}

TEST(Network, FaultValidation) {
  Network net(2);
  net.add_edge(0, 1);
  EXPECT_THROW(net.set_link_fault(1, 0, {0.5, 0.0}), InvalidArgument);
  EXPECT_THROW(net.set_link_fault(0, 1, {1.5, 0.0}), InvalidArgument);
  EXPECT_THROW(net.set_default_fault({0.0, -0.1}), InvalidArgument);
}

TEST(Network, FaultyRunsReplayDeterministically) {
  auto run_once = [](std::uint64_t seed) {
    Network net(2);
    net.add_edge(0, 1);
    net.set_default_fault({0.5, 0.0});
    int received = 0;
    net.set_behavior(0, [](RoundContext& ctx) {
      if (ctx.round() < 50) {
        ctx.send(1, {1}, 1);
      } else {
        ctx.halt();
      }
    });
    net.set_behavior(1, [&received](RoundContext& ctx) {
      received += static_cast<int>(ctx.inbox().size());
      if (ctx.round() >= 51) ctx.halt();
    });
    Rng rng(seed);
    net.run(rng, 100);
    return received;
  };
  EXPECT_EQ(run_once(34), run_once(34));
}

TEST(Network, PerNodeRngIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Network net(2);
    net.add_edge(0, 1);
    std::uint64_t observed = 0;
    net.set_behavior(0, [&observed](RoundContext& ctx) {
      observed = ctx.rng()();
      ctx.halt();
    });
    net.set_behavior(1, [](RoundContext& ctx) { ctx.halt(); });
    Rng rng(seed);
    net.run(rng);
    return observed;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

}  // namespace
}  // namespace duti
