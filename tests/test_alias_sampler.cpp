#include "dist/alias_sampler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

std::vector<double> empirical(const AliasSampler& sampler, std::size_t trials,
                              Rng& rng) {
  std::vector<double> freq(sampler.size(), 0.0);
  for (std::size_t t = 0; t < trials; ++t) {
    ++freq[sampler.sample(rng)];
  }
  for (double& f : freq) f /= static_cast<double>(trials);
  return freq;
}

TEST(AliasSampler, UniformWeights) {
  const AliasSampler s(std::vector<double>(8, 1.0));
  Rng rng(1);
  const auto freq = empirical(s, 200000, rng);
  for (double f : freq) EXPECT_NEAR(f, 0.125, 0.01);
}

TEST(AliasSampler, SkewedWeights) {
  const AliasSampler s({1.0, 2.0, 3.0, 4.0});
  Rng rng(2);
  const auto freq = empirical(s, 400000, rng);
  EXPECT_NEAR(freq[0], 0.1, 0.01);
  EXPECT_NEAR(freq[1], 0.2, 0.01);
  EXPECT_NEAR(freq[2], 0.3, 0.01);
  EXPECT_NEAR(freq[3], 0.4, 0.01);
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  const AliasSampler s({1.0, 0.0, 1.0});
  Rng rng(3);
  for (int t = 0; t < 50000; ++t) {
    ASSERT_NE(s.sample(rng), 1u);
  }
}

TEST(AliasSampler, SingleElement) {
  const AliasSampler s({5.0});
  Rng rng(4);
  for (int t = 0; t < 100; ++t) {
    ASSERT_EQ(s.sample(rng), 0u);
  }
}

TEST(AliasSampler, ExtremeSkew) {
  // One element carries nearly all the mass.
  std::vector<double> w(100, 1e-6);
  w[37] = 1.0;
  const AliasSampler s(w);
  Rng rng(5);
  int heavy = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    if (s.sample(rng) == 37u) ++heavy;
  }
  EXPECT_GT(static_cast<double>(heavy) / trials, 0.99);
}

TEST(AliasSampler, UnnormalizedWeightsAccepted) {
  const AliasSampler s({100.0, 300.0});
  Rng rng(6);
  const auto freq = empirical(s, 100000, rng);
  EXPECT_NEAR(freq[0], 0.25, 0.01);
  EXPECT_NEAR(freq[1], 0.75, 0.01);
}

TEST(AliasSampler, InvalidInputsThrow) {
  EXPECT_THROW(AliasSampler({}), InvalidArgument);
  EXPECT_THROW(AliasSampler({1.0, -0.5}), InvalidArgument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), InvalidArgument);
}

TEST(AliasSampler, ProbTablesWellFormed) {
  const AliasSampler s({0.1, 0.2, 0.3, 0.4});
  for (double p : s.prob_table()) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
}

TEST(AliasSampler, ChiSquareGoodnessOfFit) {
  // A formal chi-square test at a loose significance bar.
  const std::vector<double> w{0.05, 0.15, 0.3, 0.5};
  const AliasSampler s(w);
  Rng rng(7);
  const std::size_t trials = 200000;
  std::vector<std::size_t> counts(w.size(), 0);
  for (std::size_t t = 0; t < trials; ++t) ++counts[s.sample(rng)];
  double chi2 = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = w[i] * static_cast<double>(trials);
    const double d = static_cast<double>(counts[i]) - expected;
    chi2 += d * d / expected;
  }
  // 3 degrees of freedom; P(chi2 > 16.27) ~ 0.001.
  EXPECT_LT(chi2, 16.27);
}

}  // namespace
}  // namespace duti
