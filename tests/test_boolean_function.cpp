#include "fourier/boolean_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fourier/families.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(BooleanCubeFunction, ConstructionValidation) {
  EXPECT_NO_THROW(BooleanCubeFunction(std::vector<double>{1.0}));
  EXPECT_NO_THROW(BooleanCubeFunction(std::vector<double>(8, 0.0)));
  EXPECT_THROW(BooleanCubeFunction(std::vector<double>(3, 0.0)),
               InvalidArgument);
  EXPECT_THROW(BooleanCubeFunction(std::vector<double>{}), InvalidArgument);
}

TEST(BooleanCubeFunction, NumVars) {
  EXPECT_EQ(BooleanCubeFunction(std::vector<double>{1.0}).num_vars(), 0u);
  EXPECT_EQ(BooleanCubeFunction(std::vector<double>(16, 0.0)).num_vars(), 4u);
}

TEST(BooleanCubeFunction, IsBoolean01) {
  EXPECT_TRUE(BooleanCubeFunction({0.0, 1.0, 1.0, 0.0}).is_boolean01());
  EXPECT_FALSE(BooleanCubeFunction({0.5, 0.5, 0.0, 0.0}).is_boolean01());
}

TEST(BooleanCubeFunction, MeanAndVariance) {
  const BooleanCubeFunction f({0.0, 1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(f.mean(), 0.5);
  EXPECT_DOUBLE_EQ(f.variance(), 0.25);
  const BooleanCubeFunction g({1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(g.variance(), 0.0);
}

TEST(BooleanCubeFunction, Fact22MeanIsEmptyCoefficient) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = fn::random_boolean(5, 0.3, rng);
    EXPECT_NEAR(f.fourier_coefficient(0), f.mean(), 1e-12);
  }
}

TEST(BooleanCubeFunction, Fact22VarianceIsNonEmptyWeight) {
  // var(f) = sum_{S != empty} f_hat(S)^2 — the identity the paper's
  // Fact 2.2 states; exercised on boolean and real-valued functions.
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = (trial % 2 == 0) ? fn::random_boolean(6, 0.4, rng)
                                    : fn::random_real(6, -1.0, 2.0, rng);
    double non_empty = 0.0;
    const auto& coeffs = f.fourier();
    for (std::size_t s = 1; s < coeffs.size(); ++s) {
      non_empty += coeffs[s] * coeffs[s];
    }
    EXPECT_NEAR(f.variance(), non_empty, 1e-10);
  }
}

TEST(BooleanCubeFunction, ParsevalFact21) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto f = fn::random_real(7, -2.0, 2.0, rng);
    double e2 = 0.0;
    for (double v : f.values()) e2 += v * v;
    e2 /= static_cast<double>(f.domain_size());
    EXPECT_NEAR(f.parseval_sum(), e2, 1e-10);
  }
}

TEST(BooleanCubeFunction, LevelWeightsPartitionParseval) {
  Rng rng(4);
  const auto f = fn::random_boolean(6, 0.5, rng);
  double total = 0.0;
  for (unsigned level = 0; level <= 6; ++level) {
    total += f.level_weight(level);
  }
  EXPECT_NEAR(total, f.parseval_sum(), 1e-10);
}

TEST(BooleanCubeFunction, LowLevelWeightExcludesEmptySet) {
  Rng rng(5);
  const auto f = fn::random_boolean(5, 0.5, rng);
  double expected = 0.0;
  for (unsigned level = 1; level <= 3; ++level) {
    expected += f.level_weight(level);
  }
  EXPECT_NEAR(f.low_level_weight(3), expected, 1e-12);
}

TEST(BooleanCubeFunction, TabulateMatchesValues) {
  const auto f = BooleanCubeFunction::tabulate(
      3, [](std::uint64_t x) { return static_cast<double>(x % 2); });
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_DOUBLE_EQ(f.value(x), static_cast<double>(x % 2));
  }
}

TEST(BooleanCubeFunction, RestrictionFixesVariables) {
  // f(x0,x1,x2) = x0 XOR x2 (as bits); fix x2 = 1 -> g(x0,x1) = NOT x0.
  const auto f = BooleanCubeFunction::tabulate(3, [](std::uint64_t x) {
    return static_cast<double>(((x >> 0) ^ (x >> 2)) & 1ULL);
  });
  const auto g = f.restrict_vars(0b100, 0b100);
  EXPECT_EQ(g.num_vars(), 2u);
  for (std::uint64_t y = 0; y < 4; ++y) {
    // free vars are x0 (bit0) and x1 (bit1), densely packed in order.
    const double expected = static_cast<double>(1 - (y & 1ULL));
    EXPECT_DOUBLE_EQ(g.value(y), expected) << "y=" << y;
  }
}

TEST(BooleanCubeFunction, RestrictionAveragesCompose) {
  // E over fixed values of mean(restriction) equals the global mean.
  Rng rng(6);
  const auto f = fn::random_real(6, 0.0, 1.0, rng);
  const std::uint64_t fixed_mask = 0b101010;
  double acc = 0.0;
  int count = 0;
  for (std::uint64_t assignment = 0; assignment < 64; ++assignment) {
    if ((assignment & ~fixed_mask) != 0) continue;
    acc += f.restrict_vars(fixed_mask, assignment).mean();
    ++count;
  }
  EXPECT_NEAR(acc / count, f.mean(), 1e-10);
}

TEST(BooleanCubeFunction, RestrictionValidation) {
  const auto f = fn::constant(3, 1.0);
  EXPECT_THROW(f.restrict_vars(0b1000, 0), InvalidArgument);
  EXPECT_THROW(f.restrict_vars(0b001, 0b010), InvalidArgument);
}

TEST(BooleanCubeFunction, ComplementFlipsValues) {
  const BooleanCubeFunction f({0.0, 1.0, 1.0, 1.0});
  const auto g = f.complement();
  EXPECT_DOUBLE_EQ(g.value(0), 1.0);
  EXPECT_DOUBLE_EQ(g.value(3), 0.0);
  EXPECT_NEAR(g.mean(), 1.0 - f.mean(), 1e-12);
  EXPECT_NEAR(g.variance(), f.variance(), 1e-12);
}

TEST(BooleanCubeFunction, ComplementPreservesNonEmptySpectrumMagnitude) {
  // 1 - f flips the sign of every non-empty coefficient; level weights are
  // unchanged (used in the proof of Lemma 4.3).
  Rng rng(7);
  const auto f = fn::random_boolean(5, 0.2, rng);
  const auto g = f.complement();
  for (unsigned level = 1; level <= 5; ++level) {
    EXPECT_NEAR(f.level_weight(level), g.level_weight(level), 1e-12);
  }
}

TEST(BooleanCubeFunction, FourierCoefficientRangeCheck) {
  const auto f = fn::constant(2, 0.0);
  EXPECT_THROW((void)f.fourier_coefficient(4), InvalidArgument);
}

}  // namespace
}  // namespace duti
