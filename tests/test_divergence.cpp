#include "core/divergence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictions.hpp"
#include "dist/discrete_distribution.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(KlBernoulli, ZeroAtEquality) {
  for (double p : {0.0, 0.2, 0.5, 1.0}) {
    EXPECT_NEAR(kl_bernoulli(p, p), 0.0, 1e-12);
  }
}

TEST(KlBernoulli, KnownValue) {
  // D(B(1/2) || B(1/4)) = 0.5 log2(2) + 0.5 log2(2/3)
  const double expected = 0.5 + 0.5 * std::log2(2.0 / 3.0);
  EXPECT_NEAR(kl_bernoulli(0.5, 0.25), expected, 1e-12);
}

TEST(KlBernoulli, InfiniteOnSupportViolation) {
  EXPECT_TRUE(std::isinf(kl_bernoulli(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(kl_bernoulli(0.5, 1.0)));
  EXPECT_NEAR(kl_bernoulli(0.0, 0.5), 1.0, 1e-12);  // log2(1/0.5) weighted
}

TEST(KlBernoulli, NonNegative) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const double a = rng.next_double();
    const double b = 0.01 + 0.98 * rng.next_double();
    EXPECT_GE(kl_bernoulli(a, b), -1e-12);
  }
}

TEST(Fact63, Chi2BoundDominatesKl) {
  // D(B(alpha) || B(beta)) <= (alpha-beta)^2 / (var(B(beta)) ln 2) — the
  // step that converts Lemma 4.2 into a divergence cap. Swept densely.
  for (double beta = 0.05; beta < 1.0; beta += 0.05) {
    for (double alpha = 0.0; alpha <= 1.0; alpha += 0.02) {
      EXPECT_LE(kl_bernoulli(alpha, beta),
                chi2_bernoulli_bound(alpha, beta) + 1e-12)
          << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST(Fact63, RejectsDegenerateBeta) {
  EXPECT_THROW((void)chi2_bernoulli_bound(0.5, 0.0), InvalidArgument);
  EXPECT_THROW((void)chi2_bernoulli_bound(0.5, 1.0), InvalidArgument);
}

TEST(KlPmf, MatchesDiscreteDistribution) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  const std::vector<double> q{0.4, 0.4, 0.2};
  const DiscreteDistribution dp(p), dq(q);
  EXPECT_NEAR(kl_pmf(p, q), dp.kl_divergence(dq), 1e-12);
}

TEST(Fact62, AdditivityOverIndependentCoordinates) {
  // D(P1 x P2 || Q1 x Q2) = D(P1||Q1) + D(P2||Q2): build explicit product
  // pmfs and verify. This is why the referee's total information splits
  // into per-player terms (equation (9)).
  const std::vector<double> p1{0.3, 0.7}, q1{0.5, 0.5};
  const std::vector<double> p2{0.1, 0.2, 0.7}, q2{0.3, 0.3, 0.4};
  std::vector<double> p12, q12;
  for (double b : p2) {
    for (double a : p1) p12.push_back(a * b);
  }
  for (double b : q2) {
    for (double a : q1) q12.push_back(a * b);
  }
  EXPECT_NEAR(kl_pmf(p12, q12), kl_pmf(p1, q1) + kl_pmf(p2, q2), 1e-12);
}

TEST(Fact62, AdditivityForManyPlayers) {
  // k iid copies: D(P^k || Q^k) = k D(P || Q), via repeated products.
  const std::vector<double> p{0.25, 0.75}, q{0.5, 0.5};
  std::vector<double> pk{1.0}, qk{1.0};
  const double d1 = kl_pmf(p, q);
  for (int k = 1; k <= 6; ++k) {
    std::vector<double> np, nq;
    for (double a : pk) {
      for (double b : p) np.push_back(a * b);
    }
    for (double a : qk) {
      for (double b : q) nq.push_back(a * b);
    }
    pk = std::move(np);
    qk = std::move(nq);
    EXPECT_NEAR(kl_pmf(pk, qk), k * d1, 1e-10) << "k=" << k;
  }
}

TEST(RequiredDivergence, Formula) {
  EXPECT_NEAR(required_total_divergence(1.0 / 3.0), 0.1 * std::log2(3.0),
              1e-12);
  EXPECT_THROW((void)required_total_divergence(0.0), InvalidArgument);
  EXPECT_THROW((void)required_total_divergence(1.0), InvalidArgument);
}

TEST(PerPlayerCap, MatchesLemma42OverLn2) {
  const double n = 1e6, q = 10.0, eps = 0.1;
  const double e2 = eps * eps;
  EXPECT_NEAR(per_player_divergence_cap(n, q, eps),
              (20.0 * q * q * e2 * e2 / n + q * e2 / n) / std::log(2.0),
              1e-12);
}

TEST(Theorem61Solver, InvertsTheCap) {
  // The returned q makes k * cap(q) equal the required divergence.
  const double n = 1e6, k = 64.0, eps = 0.2, delta = 1.0 / 3.0;
  const double q = theorem61_q_lower_bound(n, k, eps, delta);
  EXPECT_GT(q, 0.0);
  const double total = k * per_player_divergence_cap(n, q, eps);
  EXPECT_NEAR(total, required_total_divergence(delta), 1e-6);
}

TEST(Theorem61Solver, ScalesLikeSqrtNOverK) {
  // In the k <= n regime the solver's q should scale as sqrt(n/k)/eps^2.
  const double eps = 0.25;
  const double q1 = theorem61_q_lower_bound(1e6, 16.0, eps);
  const double q2 = theorem61_q_lower_bound(1e6, 64.0, eps);
  EXPECT_NEAR(q1 / q2, 2.0, 0.2);  // quadrupling k halves q
  const double q3 = theorem61_q_lower_bound(4e6, 16.0, eps);
  EXPECT_NEAR(q3 / q1, 2.0, 0.2);  // quadrupling n doubles q
}

TEST(Theorem61Solver, MoreConfidenceNeedsMoreSamples) {
  EXPECT_GT(theorem61_q_lower_bound(1e6, 16.0, 0.2, 0.01),
            theorem61_q_lower_bound(1e6, 16.0, 0.2, 1.0 / 3.0));
}

}  // namespace
}  // namespace duti
