#include "core/predictions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Predict, CentralizedScaling) {
  EXPECT_NEAR(predict::centralized_q(1e6, 0.5), 1000.0 / 0.25, 1e-9);
  EXPECT_NEAR(predict::centralized_q(1e6, 0.5, 2.0), 2.0 * 4000.0, 1e-9);
  // Quadrupling n doubles q; halving eps quadruples q.
  EXPECT_NEAR(predict::centralized_q(4e6, 0.5) / predict::centralized_q(1e6, 0.5),
              2.0, 1e-9);
  EXPECT_NEAR(
      predict::centralized_q(1e6, 0.25) / predict::centralized_q(1e6, 0.5),
      4.0, 1e-9);
}

TEST(Predict, Thm11MinBranchCrossoverAtKEqualsN) {
  const double n = 4096.0, eps = 0.5;
  // k < n: sqrt branch; k > n: linear branch.
  EXPECT_NEAR(predict::thm11_any_rule_q(n, 64.0, eps),
              std::sqrt(n / 64.0) / 0.25, 1e-9);
  EXPECT_NEAR(predict::thm11_any_rule_q(n, 4.0 * n, eps), 0.25 / 0.25, 1e-9);
  // At k = n both branches agree.
  EXPECT_NEAR(predict::thm11_any_rule_q(n, n, eps),
              1.0 / (eps * eps), 1e-9);
}

TEST(Predict, Thm11DecreasesInK) {
  double prev = 1e18;
  for (double k = 1.0; k <= 1e7; k *= 4.0) {
    const double q = predict::thm11_any_rule_q(1e6, k, 0.3);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(Predict, Thm64MultibitEquivalence) {
  // r bits act exactly like 2^r times more players.
  EXPECT_NEAR(predict::thm64_multibit_q(1e6, 16.0, 0.3, 4),
              predict::thm11_any_rule_q(1e6, 256.0, 0.3), 1e-9);
  EXPECT_NEAR(predict::thm64_multibit_q(1e6, 16.0, 0.3, 0),
              predict::thm11_any_rule_q(1e6, 16.0, 0.3), 1e-9);
}

TEST(Predict, AndRuleOnlyPolylogGain) {
  const double n = 1e8, eps = 0.25;
  const double q_small_k = predict::thm12_and_rule_q(n, 4.0, eps);
  const double q_big_k = predict::thm12_and_rule_q(n, 4096.0, eps);
  // Gain from 1024x more players is only (log 4096 / log 4)^2 = 36.
  EXPECT_NEAR(q_small_k / q_big_k, 36.0, 1e-6);
  // Compare: any-rule gains sqrt(1024) = 32 with the SAME bound shape but
  // keeps improving forever, while AND stalls; at huge k any-rule is far
  // cheaper.
  EXPECT_LT(predict::thm11_any_rule_q(n, 1e6, eps),
            predict::thm12_and_rule_q(n, 1e6, eps));
}

TEST(Predict, ThresholdRuleScalesInverselyWithT) {
  const double n = 1e8, k = 100.0, eps = 0.2;
  const double q1 = predict::thm13_threshold_q(n, k, eps, 1.0);
  const double q4 = predict::thm13_threshold_q(n, k, eps, 4.0);
  EXPECT_NEAR(q1 / q4, 4.0, 1e-9);
}

TEST(Predict, ThresholdApplicabilityWindow) {
  const double n = 1e8, eps = 0.2;
  // k must be <= sqrt(n).
  EXPECT_FALSE(predict::thm13_threshold_applies(n, 2e4, eps, 1.0));
  // T must be below c/(eps^2 log^2(k/eps)); the paper leaves c unspecified,
  // so pass one wide enough for the small-T case.
  EXPECT_TRUE(predict::thm13_threshold_applies(n, 100.0, eps, 1.0, 10.0));
  EXPECT_FALSE(predict::thm13_threshold_applies(n, 100.0, eps, 1e6, 10.0));
}

TEST(Predict, LearningLowerBound) {
  EXPECT_NEAR(predict::thm14_learning_k(1000.0, 10.0), 10000.0, 1e-9);
  // Doubling q quarters the required k.
  EXPECT_NEAR(predict::thm14_learning_k(1000.0, 20.0) /
                  predict::thm14_learning_k(1000.0, 10.0),
              0.25, 1e-12);
}

TEST(Predict, FmoTesterComparison) {
  const double n = 1e8, eps = 0.25;
  // The FMO threshold tester beats the FMO AND tester for moderate k.
  for (double k : {16.0, 256.0, 4096.0}) {
    EXPECT_LT(predict::fmo_threshold_tester_q(n, k, eps),
              predict::fmo_and_tester_q(n, k, eps));
  }
  // AND tester's k-gain is k^{eps^2}: minuscule for small eps.
  const double gain = predict::fmo_and_tester_q(n, 1.0, eps) /
                      predict::fmo_and_tester_q(n, 1024.0, eps);
  EXPECT_NEAR(gain, std::pow(1024.0, eps * eps), 1e-9);
}

TEST(Predict, AsymmetricTauMatchesSymmetricCase) {
  // All rates 1: tau = sqrt(n)/(eps^2 sqrt(k)) — the symmetric bound.
  const std::vector<double> rates(16, 1.0);
  EXPECT_NEAR(predict::asymmetric_tau(1e6, 0.5, rates),
              std::sqrt(1e6) / (0.25 * 4.0), 1e-9);
}

TEST(Predict, AsymmetricTauDominatedByFastPlayers) {
  // One rate-10 player among rate-1 players: ||T||_2 ~ 10.2.
  std::vector<double> rates(4, 1.0);
  rates.push_back(10.0);
  const double norm = std::sqrt(104.0);
  EXPECT_NEAR(predict::asymmetric_tau(1e4, 0.5, rates),
              100.0 / (0.25 * norm), 1e-9);
}

TEST(Predict, SingleSampleNodeCount) {
  // k = n / (2^{r/2} eps^2); r=2 halves the nodes vs r=0.
  EXPECT_NEAR(predict::act_single_sample_k(1e6, 0.5, 2) /
                  predict::act_single_sample_k(1e6, 0.5, 0),
              0.5, 1e-9);
}

TEST(Predict, ArgumentValidation) {
  EXPECT_THROW((void)predict::centralized_q(1.0, 0.5), InvalidArgument);
  EXPECT_THROW((void)predict::centralized_q(100.0, 0.0), InvalidArgument);
  EXPECT_THROW((void)predict::thm12_and_rule_q(100.0, 1.0, 0.5), InvalidArgument);
  EXPECT_THROW((void)predict::asymmetric_tau(100.0, 0.5, {}), InvalidArgument);
  EXPECT_THROW((void)predict::asymmetric_tau(100.0, 0.5, {1.0, -1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace duti
