#include "dist/cube_domain.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(CubeDomain, Sizes) {
  const CubeDomain d(3);
  EXPECT_EQ(d.ell(), 3u);
  EXPECT_EQ(d.side_size(), 8u);
  EXPECT_EQ(d.universe_size(), 16u);
}

TEST(CubeDomain, EncodeDecodeRoundTrip) {
  const CubeDomain d(4);
  for (std::uint64_t x = 0; x < d.side_size(); ++x) {
    for (int s : {+1, -1}) {
      const auto e = d.encode(x, s);
      EXPECT_LT(e, d.universe_size());
      EXPECT_EQ(d.x_of(e), x);
      EXPECT_EQ(d.s_of(e), s);
    }
  }
}

TEST(CubeDomain, LeftCubeIsLowHalf) {
  const CubeDomain d(2);
  // s=+1 encodes with bit ell clear: elements 0..3 are the left cube.
  for (std::uint64_t e = 0; e < 4; ++e) EXPECT_EQ(d.s_of(e), +1);
  for (std::uint64_t e = 4; e < 8; ++e) EXPECT_EQ(d.s_of(e), -1);
}

TEST(CubeDomain, PartnerFlipsSideOnly) {
  const CubeDomain d(3);
  for (std::uint64_t e = 0; e < d.universe_size(); ++e) {
    const auto p = d.partner(e);
    EXPECT_NE(p, e);
    EXPECT_EQ(d.x_of(p), d.x_of(e));
    EXPECT_EQ(d.s_of(p), -d.s_of(e));
    EXPECT_EQ(d.partner(p), e);  // involution
  }
}

TEST(CubeDomain, EncodeValidation) {
  const CubeDomain d(2);
  EXPECT_THROW((void)d.encode(4, +1), InvalidArgument);
  EXPECT_THROW((void)d.encode(0, 0), InvalidArgument);
  EXPECT_THROW((void)d.encode(0, 2), InvalidArgument);
}

TEST(CubeDomain, EllRangeChecked) {
  EXPECT_THROW(CubeDomain(0), InvalidArgument);
  EXPECT_THROW(CubeDomain(31), InvalidArgument);
  EXPECT_NO_THROW(CubeDomain(30));
}

}  // namespace
}  // namespace duti
