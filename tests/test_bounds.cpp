#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Lemma51, FormulaAndValidity) {
  // 4 q eps^2 / sqrt(n) * sqrt(var)
  EXPECT_NEAR(bounds::lemma51_bound(10000.0, 10.0, 0.5, 0.25),
              4.0 * 10.0 * 0.25 / 100.0 * 0.5, 1e-12);
  EXPECT_TRUE(bounds::lemma51_valid(10000.0, 100.0, 0.5));
  // cap = sqrt(n)/(4 eps^2) = 100/1 = 100
  EXPECT_FALSE(bounds::lemma51_valid(10000.0, 101.0, 0.5));
}

TEST(Lemma42, FormulaAndValidity) {
  const double n = 10000.0, q = 5.0, eps = 0.5, var = 0.2;
  const double e2 = eps * eps;
  EXPECT_NEAR(bounds::lemma42_bound(n, q, eps, var),
              (20.0 * q * q * e2 * e2 / n + q * e2 / n) * var, 1e-12);
  // cap = sqrt(n)/(20 eps^2) = 100/5 = 20
  EXPECT_TRUE(bounds::lemma42_valid(n, 20.0, eps));
  EXPECT_FALSE(bounds::lemma42_valid(n, 21.0, eps));
}

TEST(Lemma43, FormulaMatchesByHand) {
  const double n = 1.0e8, q = 10.0, eps = 0.1;
  const unsigned m = 2;
  const double var = 0.01;
  const double ratio = q / std::sqrt(n);
  const double expected =
      (ratio + std::pow(ratio, 1.0 / 6.0)) * 40.0 * 4.0 * eps * eps *
      std::pow(var, 5.0 / 6.0);
  EXPECT_NEAR(bounds::lemma43_bound(n, q, eps, m, var), expected, 1e-12);
}

TEST(Lemma43, ValidityCapsApplyBothTerms) {
  // base = 40 m^2 eps^2; q must be below sqrt(n)/base AND
  // sqrt(n)/base^{m+1}.
  const double n = 1.0e6, eps = 0.5;
  const unsigned m = 1;
  const double base = 40.0 * 1.0 * 0.25;  // = 10
  const double cap = std::sqrt(n) / (base * base);  // base^{m+1} = 100
  EXPECT_TRUE(bounds::lemma43_valid(n, cap, eps, m));
  EXPECT_FALSE(bounds::lemma43_valid(n, cap * 1.01 + 1.0, eps, m));
}

TEST(Lemma43, ShrinksWithVarianceFasterThanLinear51ForSmallVar) {
  // For strongly biased G (tiny variance), Lemma 4.3's var^{(2m+1)/(2m+2)}
  // beats Lemma 5.1's sqrt(var)? No — the opposite: 4.3's exponent is
  // LARGER than 1/2, so its var-dependence is SMALLER for var < 1. Verify
  // the exponent ordering by ratio test.
  const double n = 1.0e10, q = 4.0, eps = 0.01;
  const double v_small = 1e-8, v_big = 1e-2;
  const double r43 = bounds::lemma43_bound(n, q, eps, 1, v_small) /
                     bounds::lemma43_bound(n, q, eps, 1, v_big);
  const double r51 = bounds::lemma51_bound(n, q, eps, v_small) /
                     bounds::lemma51_bound(n, q, eps, v_big);
  EXPECT_LT(r43, r51);  // 4.3 decays faster as var -> 0
}

TEST(Lemma44, FirstTermMatchesLinearPart) {
  const double n = 1.0e6, q = 3.0, eps = 0.2;
  // With var -> 0 the second term (var^{2-1/(m+1)}) vanishes faster than
  // the first (var^1): the bound is asymptotically the linear term.
  const double var = 1e-12;
  const double linear = 2.0 * eps * eps * q / n * var;
  const double bound = bounds::lemma44_bound(n, q, eps, 1, var);
  EXPECT_NEAR(bound, linear, linear * 0.01);
}

TEST(Lemma44, ValidityUsesFortyMSquaredBase) {
  const double n = 1.0e8, eps = 0.1;
  const unsigned m = 1;
  const double base = (40.0 * 1.0) * (40.0 * 1.0) * 0.01;  // = 16
  const double cap = std::sqrt(n) / (base * base);
  EXPECT_TRUE(bounds::lemma44_valid(n, cap, eps, m));
  EXPECT_FALSE(bounds::lemma44_valid(n, cap * 1.01 + 1.0, eps, m));
}

TEST(Bounds, MonotoneInQ) {
  for (double q = 1.0; q < 50.0; q += 7.0) {
    EXPECT_LE(bounds::lemma42_bound(1e6, q, 0.1, 0.2),
              bounds::lemma42_bound(1e6, q + 1.0, 0.1, 0.2));
    EXPECT_LE(bounds::lemma51_bound(1e6, q, 0.1, 0.2),
              bounds::lemma51_bound(1e6, q + 1.0, 0.1, 0.2));
  }
}

TEST(Bounds, MonotoneInVariance) {
  for (double v = 0.01; v < 0.25; v += 0.05) {
    EXPECT_LE(bounds::lemma42_bound(1e6, 5.0, 0.1, v),
              bounds::lemma42_bound(1e6, 5.0, 0.1, v + 0.01));
    EXPECT_LE(bounds::lemma43_bound(1e6, 5.0, 0.1, 1, v),
              bounds::lemma43_bound(1e6, 5.0, 0.1, 1, v + 0.01));
  }
}

TEST(Bounds, ArgumentValidation) {
  EXPECT_THROW((void)bounds::lemma51_bound(1.0, 5.0, 0.1, 0.2), InvalidArgument);
  EXPECT_THROW((void)bounds::lemma42_bound(1e6, 0.5, 0.1, 0.2), InvalidArgument);
  EXPECT_THROW((void)bounds::lemma42_bound(1e6, 5.0, 1.5, 0.2), InvalidArgument);
  EXPECT_THROW((void)bounds::lemma42_bound(1e6, 5.0, 0.1, -0.1), InvalidArgument);
  EXPECT_THROW((void)bounds::lemma43_bound(1e6, 5.0, 0.1, 0, 0.2), InvalidArgument);
  EXPECT_THROW((void)bounds::lemma44_bound(1e6, 5.0, 0.1, 1, 0.2, -1.0),
               InvalidArgument);
}

}  // namespace
}  // namespace duti
