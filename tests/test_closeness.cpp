#include "testers/closeness.hpp"

#include <gtest/gtest.h>

#include "dist/generators.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

TEST(CrossCollisions, ByHand) {
  const std::vector<std::uint64_t> p{1, 2, 2, 3};
  const std::vector<std::uint64_t> q{2, 3, 3, 5};
  // matches: q[0]=2 hits 2 copies; q[1]=3 hits 1; q[2]=3 hits 1; q[3]=5: 0.
  EXPECT_EQ(cross_collisions(p, q), 4u);
  EXPECT_EQ(cross_collisions(p, std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(cross_collisions(std::vector<std::uint64_t>{}, q), 0u);
}

TEST(CrossCollisions, MatchesBruteForce) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> p(25), q(30);
    for (auto& v : p) v = rng.next_below(8);
    for (auto& v : q) v = rng.next_below(8);
    std::uint64_t brute = 0;
    for (auto a : p) {
      for (auto b : q) {
        if (a == b) ++brute;
      }
    }
    ASSERT_EQ(cross_collisions(p, q), brute);
  }
}

TEST(ClosenessTester, StatisticUnbiasedForL2Gap) {
  Rng rng(2);
  const std::uint64_t n = 64;
  const unsigned m = 100;
  const auto p = gen::zipf(n, 0.7);
  const auto q = DiscreteDistribution::uniform(n);
  const double expected = p.l2_distance(q) * p.l2_distance(q);
  const ClosenessTester tester(n, 0.5, m);
  const DistributionSource ps(p), qs(q);
  double acc = 0.0;
  const int trials = 20000;
  std::vector<std::uint64_t> a, b;
  for (int t = 0; t < trials; ++t) {
    ps.sample_many(rng, m, a);
    qs.sample_many(rng, m, b);
    acc += tester.statistic(a, b);
  }
  EXPECT_NEAR(acc / trials, expected, 0.05 * expected);
}

TEST(ClosenessTester, StatisticNearZeroWhenEqual) {
  Rng rng(3);
  const std::uint64_t n = 64;
  const unsigned m = 100;
  const auto p = gen::zipf(n, 0.7);
  const ClosenessTester tester(n, 0.5, m);
  const DistributionSource ps(p);
  double acc = 0.0;
  const int trials = 20000;
  std::vector<std::uint64_t> a, b;
  for (int t = 0; t < trials; ++t) {
    ps.sample_many(rng, m, a);
    ps.sample_many(rng, m, b);
    acc += tester.statistic(a, b);
  }
  EXPECT_NEAR(acc / trials, 0.0, 2e-4);
}

TEST(ClosenessTester, SeparatesEqualFromFar) {
  const std::uint64_t n = 256;
  const double eps = 0.6;
  const unsigned m = ClosenessTester::sufficient_m(n, eps, 6.0);
  const ClosenessTester tester(n, eps, m);
  SuccessCounter equal_ok, far_ok;
  for (int t = 0; t < 150; ++t) {
    // Equal case: both sides the same (randomly chosen) distribution.
    Rng gen_rng = make_rng(4, t);
    const DistributionSource both(gen::random_perturbation(n, 0.4, gen_rng));
    Rng r1 = make_rng(5, t);
    equal_ok.record(tester.run(both, both, r1));
    // Far case: uniform vs a fresh eps-far distribution.
    const UniformSource uniform(n);
    Rng far_gen = make_rng(6, t);
    const DistributionSource far(gen::paninski(n, eps, far_gen));
    Rng r2 = make_rng(7, t);
    far_ok.record(!tester.run(uniform, far, r2));
  }
  EXPECT_GE(equal_ok.rate(), 0.75);
  EXPECT_GE(far_ok.rate(), 0.75);
}

TEST(ClosenessTester, UniformityIsASpecialCase) {
  // Testing against an explicit uniform sampler = uniformity testing.
  const std::uint64_t n = 256;
  const double eps = 0.8;
  const unsigned m = ClosenessTester::sufficient_m(n, eps);
  const ClosenessTester tester(n, eps, m);
  const UniformSource uniform(n);
  SuccessCounter rejects;
  for (int t = 0; t < 100; ++t) {
    Rng g = make_rng(8, t);
    const DistributionSource far(gen::paninski(n, eps, g));
    Rng r = make_rng(9, t);
    rejects.record(!tester.run(far, uniform, r));
  }
  EXPECT_GE(rejects.rate(), 0.75);
}

TEST(ClosenessTester, FailsWithFarTooFewSamples) {
  const std::uint64_t n = 1 << 14;
  const ClosenessTester tester(n, 0.4, 6);
  const UniformSource uniform(n);
  SuccessCounter far_reject;
  for (int t = 0; t < 200; ++t) {
    Rng g = make_rng(10, t);
    const DistributionSource far(gen::paninski(n, 0.4, g));
    Rng r = make_rng(11, t);
    far_reject.record(!tester.run(uniform, far, r));
  }
  EXPECT_LE(far_reject.rate(), 0.4);
}

TEST(ClosenessTester, Validation) {
  EXPECT_THROW(ClosenessTester(1, 0.5, 10), InvalidArgument);
  EXPECT_THROW(ClosenessTester(64, 0.0, 10), InvalidArgument);
  EXPECT_THROW(ClosenessTester(64, 0.5, 1), InvalidArgument);
  const ClosenessTester tester(64, 0.5, 10);
  std::vector<std::uint64_t> wrong(5, 0), right(10, 0);
  EXPECT_THROW((void)tester.statistic(wrong, right), InvalidArgument);
}

TEST(ClosenessTester, SufficientMScaling) {
  const auto m1 = ClosenessTester::sufficient_m(1 << 10, 0.5);
  const auto m2 = ClosenessTester::sufficient_m(1 << 12, 0.5);
  EXPECT_NEAR(static_cast<double>(m2) / m1, 2.0, 0.1);
}

}  // namespace
}  // namespace duti
