#include "fourier/families.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Families, ConstantSpectrum) {
  const auto f = fn::constant(4, 0.3);
  EXPECT_NEAR(f.mean(), 0.3, 1e-12);
  EXPECT_NEAR(f.variance(), 0.0, 1e-12);
}

TEST(Families, DictatorSpectrum) {
  // dictator_i = (1 - chi_{i}) / 2: hat(empty) = 1/2, hat({i}) = -1/2.
  const auto f = fn::dictator(4, 2);
  EXPECT_NEAR(f.fourier_coefficient(0), 0.5, 1e-12);
  EXPECT_NEAR(f.fourier_coefficient(0b100), -0.5, 1e-12);
  EXPECT_NEAR(f.level_weight(1), 0.25, 1e-12);
  EXPECT_NEAR(f.variance(), 0.25, 1e-12);
  EXPECT_THROW(fn::dictator(3, 3), InvalidArgument);
}

TEST(Families, ParitySpectrum) {
  // parity_S = (1 - chi_S)/2.
  const std::uint64_t mask = 0b1011;
  const auto f = fn::parity(4, mask);
  EXPECT_NEAR(f.fourier_coefficient(0), 0.5, 1e-12);
  EXPECT_NEAR(f.fourier_coefficient(mask), -0.5, 1e-12);
  for (std::uint64_t s = 1; s < 16; ++s) {
    if (s != mask) {
      ASSERT_NEAR(f.fourier_coefficient(s), 0.0, 1e-12);
    }
  }
}

TEST(Families, CharacterIsItsOwnSpectrum) {
  const auto f = fn::character(5, 0b10101);
  EXPECT_NEAR(f.fourier_coefficient(0b10101), 1.0, 1e-12);
  EXPECT_NEAR(f.parseval_sum(), 1.0, 1e-12);
}

TEST(Families, CharactersAreOrthonormal) {
  const unsigned m = 4;
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::uint64_t t = 0; t < 8; ++t) {
      const auto cs = fn::character(m, s);
      const auto ct = fn::character(m, t);
      double inner = 0.0;
      for (std::uint64_t x = 0; x < (1ULL << m); ++x) {
        inner += cs.value(x) * ct.value(x);
      }
      inner /= static_cast<double>(1ULL << m);
      ASSERT_NEAR(inner, s == t ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Families, AndMeanIsExponentiallySmall) {
  for (unsigned width : {1u, 3u, 5u}) {
    const std::uint64_t mask = (1ULL << width) - 1;
    const auto f = fn::and_of(6, mask);
    EXPECT_NEAR(f.mean(), std::ldexp(1.0, -static_cast<int>(width)), 1e-12);
  }
}

TEST(Families, AndOrDeMorgan) {
  const unsigned m = 5;
  const std::uint64_t mask = 0b10110;
  const auto and_f = fn::and_of(m, mask);
  const auto or_f = fn::or_of(m, mask);
  // OR(x) = 1 - AND over complemented inputs; check mean relation:
  EXPECT_NEAR(or_f.mean(), 1.0 - std::ldexp(1.0, -std::popcount(mask)),
              1e-12);
  // Pointwise: or_of is 1 unless no masked bit set; and_of is 1 iff all set.
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_DOUBLE_EQ(or_f.value(x), (x & mask) != 0 ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(and_f.value(x), (x & mask) == mask ? 1.0 : 0.0);
  }
}

TEST(Families, MajorityBalanced) {
  const auto f = fn::majority(5);
  EXPECT_NEAR(f.mean(), 0.5, 1e-12);
  EXPECT_NEAR(f.variance(), 0.25, 1e-12);
  // Majority is odd: all even-level non-empty coefficients vanish.
  for (unsigned level = 2; level <= 4; level += 2) {
    EXPECT_NEAR(f.level_weight(level), 0.0, 1e-12);
  }
  EXPECT_THROW(fn::majority(4), InvalidArgument);
}

TEST(Families, MajorityLevelOneWeight) {
  // W^1(Maj_3) = 3 * (1/2)^2? Maj_3 hat({i}) = -1/4 each (with our 0/1
  // convention): check total level-1 weight = 3/16... compute directly.
  const auto f = fn::majority(3);
  const double w1 = f.level_weight(1);
  // Maj3 = x0x1 + x0x2 + x1x2 - ... easier: exhaustive check against known
  // value 0.1875 (= 3 * (1/4)^2).
  EXPECT_NEAR(w1, 0.1875, 1e-12);
}

TEST(Families, ThresholdMonotoneInT) {
  for (unsigned t = 1; t <= 6; ++t) {
    const auto f = fn::threshold_at_least(6, t);
    const auto g = fn::threshold_at_least(6, t - 1);
    EXPECT_LE(f.mean(), g.mean());
  }
  EXPECT_NEAR(fn::threshold_at_least(6, 0).mean(), 1.0, 1e-12);
  EXPECT_NEAR(fn::threshold_at_least(6, 7).mean(), 0.0, 1e-12);
}

TEST(Families, TribesStructure) {
  const auto f = fn::tribes(6, 3);
  // 1 - (1 - 1/8)^2 = 15/64.
  EXPECT_NEAR(f.mean(), 15.0 / 64.0, 1e-12);
  EXPECT_THROW(fn::tribes(7, 3), InvalidArgument);
}

TEST(Families, RandomBooleanMeanTracksP) {
  Rng rng(1);
  const auto f = fn::random_boolean(10, 0.2, rng);
  EXPECT_TRUE(f.is_boolean01());
  EXPECT_NEAR(f.mean(), 0.2, 0.05);
}

TEST(Families, RandomRealWithinRange) {
  Rng rng(2);
  const auto f = fn::random_real(6, -1.5, 2.5, rng);
  for (double v : f.values()) {
    ASSERT_GE(v, -1.5);
    ASSERT_LT(v, 2.5);
  }
}

}  // namespace
}  // namespace duti
