#include "core/message_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/bounds.hpp"
#include "fourier/families.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

MessageAnalysis make_analysis(unsigned ell, unsigned q,
                              const BooleanCubeFunction& g) {
  return MessageAnalysis(SampleTupleCodec(CubeDomain(ell), q), g);
}

TEST(MessageAnalysis, RejectsNonBooleanOrWrongArity) {
  const CubeDomain dom(2);
  const SampleTupleCodec codec(dom, 2);
  Rng rng(1);
  EXPECT_THROW(MessageAnalysis(codec, fn::random_real(6, 0.1, 0.9, rng)),
               InvalidArgument);
  EXPECT_THROW(MessageAnalysis(codec, fn::random_boolean(5, 0.5, rng)),
               InvalidArgument);
}

TEST(MessageAnalysis, ConstantFunctionSeesNoDifference) {
  Rng rng(2);
  const auto g = fn::constant(6, 1.0);
  const auto analysis = make_analysis(2, 2, g);
  const NuZ nu(CubeDomain(2), PerturbationVector::random(2, rng), 0.7);
  EXPECT_NEAR(analysis.nu_z_exact(nu), 1.0, 1e-12);
  EXPECT_NEAR(analysis.nu_z_exact(nu) - analysis.mu(), 0.0, 1e-12);
  EXPECT_NEAR(analysis.lemma41_fourier_difference(nu), 0.0, 1e-12);
}

TEST(MessageAnalysis, NuZExactIsAProbability) {
  Rng rng(3);
  const auto g = fn::random_boolean(6, 0.4, rng);
  const auto analysis = make_analysis(2, 2, g);
  for (int trial = 0; trial < 5; ++trial) {
    const NuZ nu(CubeDomain(2), PerturbationVector::random(2, rng), 0.5);
    const double p = analysis.nu_z_exact(nu);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Lemma 4.1: the Fourier-side expression equals nu_z(G) - mu(G) EXACTLY.
// This is the identity the whole lower-bound machinery rests on.
// ---------------------------------------------------------------------------

class Lemma41Test : public ::testing::TestWithParam<
                        std::tuple<unsigned, unsigned, double, double>> {};

TEST_P(Lemma41Test, FourierDifferenceEqualsDirectDifference) {
  const auto [ell, q, eps, p] = GetParam();
  Rng rng(derive_seed(41, ell, q, static_cast<std::uint64_t>(eps * 100),
                      static_cast<std::uint64_t>(p * 100)));
  const auto g = fn::random_boolean((ell + 1) * q, p, rng);
  const auto analysis = make_analysis(ell, q, g);
  for (int z_trial = 0; z_trial < 3; ++z_trial) {
    const NuZ nu(CubeDomain(ell), PerturbationVector::random(ell, rng), eps);
    const double direct = analysis.nu_z_exact(nu) - analysis.mu();
    const double fourier = analysis.lemma41_fourier_difference(nu);
    ASSERT_NEAR(direct, fourier, 1e-11) << "z_trial=" << z_trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFunctions, Lemma41Test,
    ::testing::Combine(::testing::Values(1u, 2u),       // ell
                       ::testing::Values(1u, 2u, 3u),   // q
                       ::testing::Values(0.2, 0.8),     // eps
                       ::testing::Values(0.1, 0.5)));   // density of G

TEST(MessageAnalysis, SingleSampleMeanDifferenceIsZero) {
  // For q = 1, E_z[nu_z] is exactly uniform, so E_z[nu_z(G)] = mu(G) for
  // every G: mean_diff must vanish while the second moment need not.
  Rng rng(4);
  const auto g = fn::random_boolean(3, 0.5, rng);  // ell=2, q=1: 3 bits
  const auto analysis = make_analysis(2, 1, g);
  const auto moments = analysis.z_moments_exact(0.9);
  EXPECT_NEAR(moments.mean_diff, 0.0, 1e-12);
}

TEST(MessageAnalysis, ZeroEpsMakesAllMomentsVanish) {
  Rng rng(5);
  const auto g = fn::random_boolean(6, 0.5, rng);
  const auto analysis = make_analysis(2, 2, g);
  const auto moments = analysis.z_moments_exact(0.0);
  EXPECT_NEAR(moments.mean_abs_diff, 0.0, 1e-12);
  EXPECT_NEAR(moments.second_moment, 0.0, 1e-12);
}

TEST(MessageAnalysis, McMomentsConvergeToExact) {
  Rng rng(6);
  const auto g = fn::random_boolean(6, 0.3, rng);
  const auto analysis = make_analysis(2, 2, g);
  const auto exact = analysis.z_moments_exact(0.6);
  const auto mc = analysis.z_moments_mc(0.6, 4000, rng);
  EXPECT_NEAR(mc.mean_diff, exact.mean_diff, 0.01);
  EXPECT_NEAR(mc.second_moment, exact.second_moment,
              0.1 * std::max(1e-6, exact.second_moment) + 1e-6);
}

TEST(MessageAnalysis, NuZMcConvergesToExact) {
  Rng rng(7);
  const auto g = fn::random_boolean(6, 0.5, rng);
  const auto analysis = make_analysis(2, 2, g);
  const NuZ nu(CubeDomain(2), PerturbationVector::random(2, rng), 0.8);
  const double exact = analysis.nu_z_exact(nu);
  const double mc = analysis.nu_z_mc(nu, 200000, rng);
  EXPECT_NEAR(mc, exact, 0.01);
}

// ---------------------------------------------------------------------------
// The main lemmas, verified against exact enumeration: for every tested G
// within each lemma's validity range, the bound dominates the exact moment.
// ---------------------------------------------------------------------------

struct LemmaCase {
  unsigned ell;
  unsigned q;
  double eps;
};

class MainLemmasTest : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(MainLemmasTest, Lemma51BoundHolds) {
  const auto c = GetParam();
  const double n = std::ldexp(1.0, static_cast<int>(c.ell) + 1);
  if (!bounds::lemma51_valid(n, c.q, c.eps)) GTEST_SKIP();
  Rng rng(derive_seed(51, c.ell, c.q));
  for (double p : {0.05, 0.3, 0.5}) {
    const auto g = fn::random_boolean((c.ell + 1) * c.q, p, rng);
    const auto analysis = make_analysis(c.ell, c.q, g);
    const auto moments = analysis.z_moments_exact(c.eps);
    const double bound =
        bounds::lemma51_bound(n, c.q, c.eps, analysis.variance());
    EXPECT_LE(std::fabs(moments.mean_diff), bound + 1e-12) << "p=" << p;
  }
}

TEST_P(MainLemmasTest, Lemma42BoundHoldsWithFactorTwoSlack) {
  // REPRODUCTION FINDING: the stated constants of Lemma 4.2 are violated by
  // exact enumeration at q = 1 — the extremal G(x,s) = 1[s = +1] achieves
  // E_z[(nu_z(G)-mu(G))^2] = eps^2/(2n) while the stated bound's linear
  // term is (q eps^2/n) var(G) = eps^2/(4n). The linear term must be at
  // least 2 q eps^2 / n; we verify the bound with that corrected factor
  // (see the ExtremalFunction test below, and EXPERIMENTS.md).
  const auto c = GetParam();
  const double n = std::ldexp(1.0, static_cast<int>(c.ell) + 1);
  if (!bounds::lemma42_valid(n, c.q, c.eps)) GTEST_SKIP();
  Rng rng(derive_seed(42, c.ell, c.q));
  for (double p : {0.05, 0.3, 0.5}) {
    const auto g = fn::random_boolean((c.ell + 1) * c.q, p, rng);
    const auto analysis = make_analysis(c.ell, c.q, g);
    const auto moments = analysis.z_moments_exact(c.eps);
    const double bound =
        2.0 * bounds::lemma42_bound(n, c.q, c.eps, analysis.variance());
    EXPECT_LE(moments.second_moment, bound + 1e-12) << "p=" << p;
  }
}

TEST(MainLemmas, Lemma42ExtremalFunctionShowsFactorTwoIsNecessary) {
  // G depends only on the side bit of its single sample: G(x,s) = 1[s=+1].
  // Exact computation: nu_z(G) - mu(G) = (eps/n) sum_x z(x), so
  // E_z[diff^2] = eps^2 (n/2) / n^2 = eps^2/(2n), while var(G) = 1/4 and
  // the stated Lemma 4.2 rhs is (20 eps^4/n + eps^2/n)/4 < eps^2/(2n) for
  // small eps. The corrected factor-2 bound is exactly tight here.
  const unsigned ell = 3;
  const double n = std::ldexp(1.0, static_cast<int>(ell) + 1);
  const double eps = 0.1;
  const SampleTupleCodec codec(CubeDomain(ell), 1);
  const auto g = BooleanCubeFunction::tabulate(
      ell + 1, [&](std::uint64_t t) {
        return CubeDomain(ell).s_of(t) == +1 ? 1.0 : 0.0;
      });
  const MessageAnalysis analysis(codec, g);
  const auto moments = analysis.z_moments_exact(eps);
  EXPECT_NEAR(moments.second_moment, eps * eps / (2.0 * n), 1e-12);
  const double stated = bounds::lemma42_bound(n, 1.0, eps, analysis.variance());
  EXPECT_GT(moments.second_moment, stated);  // stated constants fail
  EXPECT_LE(moments.second_moment, 2.0 * stated + 1e-15);  // factor 2 fixes
}

TEST_P(MainLemmasTest, Lemma43BoundHoldsForBiasedFunctions) {
  const auto c = GetParam();
  const double n = std::ldexp(1.0, static_cast<int>(c.ell) + 1);
  Rng rng(derive_seed(43, c.ell, c.q));
  for (unsigned m : {1u, 2u}) {
    if (!bounds::lemma43_valid(n, c.q, c.eps, m)) continue;
    for (double p : {0.02, 0.1}) {
      const auto g = fn::random_boolean((c.ell + 1) * c.q, p, rng);
      const auto analysis = make_analysis(c.ell, c.q, g);
      const auto moments = analysis.z_moments_exact(c.eps);
      const double bound =
          bounds::lemma43_bound(n, c.q, c.eps, m, analysis.variance());
      EXPECT_LE(std::fabs(moments.mean_diff), bound + 1e-12)
          << "m=" << m << " p=" << p;
    }
  }
}

TEST_P(MainLemmasTest, Lemma44BoundHoldsWithModestConstant) {
  const auto c = GetParam();
  const double n = std::ldexp(1.0, static_cast<int>(c.ell) + 1);
  Rng rng(derive_seed(44, c.ell, c.q));
  for (unsigned m : {1u}) {
    if (!bounds::lemma44_valid(n, c.q, c.eps, m)) continue;
    for (double p : {0.1, 0.4}) {
      const auto g = fn::random_boolean((c.ell + 1) * c.q, p, rng);
      const auto analysis = make_analysis(c.ell, c.q, g);
      const auto moments = analysis.z_moments_exact(c.eps);
      const double bound =
          bounds::lemma44_bound(n, c.q, c.eps, m, analysis.variance(),
                                /*big_c=*/1.0);
      EXPECT_LE(moments.second_moment, bound + 1e-12)
          << "m=" << m << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallExactCases, MainLemmasTest,
    ::testing::Values(LemmaCase{2, 1, 0.1}, LemmaCase{2, 2, 0.1},
                      LemmaCase{3, 1, 0.1}, LemmaCase{3, 2, 0.1},
                      LemmaCase{2, 1, 0.2}, LemmaCase{3, 2, 0.05},
                      LemmaCase{2, 2, 0.05}, LemmaCase{3, 1, 0.3}));

}  // namespace
}  // namespace duti
