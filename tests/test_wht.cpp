#include "fourier/wht.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(Wht, SizeMustBePowerOfTwo) {
  std::vector<double> bad(3, 1.0);
  EXPECT_THROW(wht_inplace(bad), InvalidArgument);
  std::vector<double> empty;
  EXPECT_THROW(wht_inplace(empty), InvalidArgument);
}

TEST(Wht, SizeOneIsIdentity) {
  std::vector<double> v{3.5};
  wht_inplace(v);
  EXPECT_DOUBLE_EQ(v[0], 3.5);
}

TEST(Wht, MatchesNaiveTransform) {
  Rng rng(1);
  for (unsigned m : {1u, 2u, 3u, 5u, 8u}) {
    const std::size_t n = 1ULL << m;
    std::vector<double> f(n);
    for (auto& v : f) v = rng.next_double() * 2.0 - 1.0;
    std::vector<double> fast = f;
    wht_inplace(fast);
    for (std::uint64_t s = 0; s < n; ++s) {
      double naive = 0.0;
      for (std::uint64_t x = 0; x < n; ++x) {
        naive += f[x] * chi(s, x);
      }
      ASSERT_NEAR(fast[s], naive, 1e-9) << "m=" << m << " S=" << s;
    }
  }
}

TEST(Wht, InvolutionUpToScale) {
  // WHT applied twice multiplies by N.
  Rng rng(2);
  const std::size_t n = 64;
  std::vector<double> f(n);
  for (auto& v : f) v = rng.next_double();
  std::vector<double> g = f;
  wht_inplace(g);
  wht_inplace(g);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(g[i], static_cast<double>(n) * f[i], 1e-9);
  }
}

TEST(Wht, NormalizedGivesExpectationCoefficients) {
  // f = chi_T has f_hat(T) = 1 and all other coefficients 0.
  const unsigned m = 4;
  const std::uint64_t t_mask = 0b1010;
  std::vector<double> f(1ULL << m);
  for (std::uint64_t x = 0; x < f.size(); ++x) {
    f[x] = chi(t_mask, x);
  }
  wht_normalized(f);
  for (std::uint64_t s = 0; s < f.size(); ++s) {
    ASSERT_NEAR(f[s], s == t_mask ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Wht, ParsevalUnderNormalization) {
  Rng rng(3);
  const std::size_t n = 256;
  std::vector<double> f(n);
  double e2 = 0.0;
  for (auto& v : f) {
    v = rng.next_double();
    e2 += v * v;
  }
  e2 /= static_cast<double>(n);
  wht_normalized(f);
  double coeff_sum = 0.0;
  for (double c : f) coeff_sum += c * c;
  EXPECT_NEAR(coeff_sum, e2, 1e-10);
}

TEST(Wht, ConstantFunctionHasOnlyEmptyCoefficient) {
  std::vector<double> f(32, 0.7);
  wht_normalized(f);
  EXPECT_NEAR(f[0], 0.7, 1e-12);
  for (std::size_t s = 1; s < f.size(); ++s) {
    ASSERT_NEAR(f[s], 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace duti
