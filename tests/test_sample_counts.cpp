// Counts-kernel validation (DESIGN.md section 8): SampleSource::sample_counts
// must draw per-element histograms from the SAME distribution as tallied
// sample_many draws — exactly for the generic fallback (same RNG stream),
// statistically (chi-squared GOF) for the direct multinomial kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "dist/count_samplers.hpp"
#include "dist/nu_z.hpp"
#include "sim/sample_source.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

std::uint64_t total(const std::vector<std::uint64_t>& counts) {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

// One-sample chi-squared GOF statistic against expected cell masses.
double chi_squared_gof(const std::vector<std::uint64_t>& observed,
                       const std::vector<double>& expected) {
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double d = static_cast<double>(observed[i]) - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

// Two-sample chi-squared statistic: under a common distribution,
// sum (a_i - b_i)^2 / (a_i + b_i) is approximately chi-squared with
// (#cells - 1) degrees of freedom when the totals match.
double chi_squared_two_sample(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b) {
  double stat = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double s = static_cast<double>(a[i] + b[i]);
    if (s == 0.0) continue;
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    stat += d * d / s;
  }
  return stat;
}

// Generous acceptance bound: mean + 5 standard deviations of a chi-squared
// with `df` degrees of freedom. Seeds are fixed, so the tests are
// deterministic; the slack only guards the chosen seeds' luck.
double chi_squared_bound(double df) { return df + 5.0 * std::sqrt(2.0 * df); }

NuZ make_nuz(unsigned ell, double eps, std::uint64_t seed) {
  Rng rng(seed);
  return NuZ(CubeDomain(ell), PerturbationVector::random(ell, rng), eps);
}

TEST(UniformCounts, KernelPreservesTotalAndIsDeterministic) {
  const UniformSource source(64);
  std::vector<std::uint64_t> a, b;
  Rng r1(7), r2(7);
  source.sample_counts(r1, 4096, a);
  source.sample_counts(r2, 4096, b);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(total(a), 4096u);
  EXPECT_EQ(a, b);  // same seed, same histogram
}

TEST(UniformCounts, KernelMatchesPerSampleDistribution) {
  // Aggregate many trials through each path and compare the resulting
  // histograms with a two-sample chi-squared test.
  const std::uint64_t n = 64;
  const std::size_t draws = 4096;
  const int trials = 32;
  const UniformSource source(n);
  std::vector<std::uint64_t> kernel_total(n, 0);
  std::vector<std::uint64_t> sample_total(n, 0);
  Rng kernel_rng(11);
  Rng sample_rng(12);
  std::vector<std::uint64_t> counts;
  std::vector<std::uint64_t> samples;
  for (int t = 0; t < trials; ++t) {
    source.sample_counts(kernel_rng, draws, counts);
    for (std::uint64_t i = 0; i < n; ++i) kernel_total[i] += counts[i];
    source.sample_many(sample_rng, draws, samples);
    for (const std::uint64_t s : samples) ++sample_total[s];
  }
  const double stat = chi_squared_two_sample(kernel_total, sample_total);
  EXPECT_LT(stat, chi_squared_bound(static_cast<double>(n - 1)));
}

TEST(UniformCounts, SmallDrawCountFallsBackBitExactly) {
  // draws < n uses the per-sample tally path, consuming the RNG exactly
  // like sample_many.
  const UniformSource source(256);
  Rng counts_rng(21), manual_rng(21);
  std::vector<std::uint64_t> counts;
  source.sample_counts(counts_rng, 100, counts);
  std::vector<std::uint64_t> samples;
  source.sample_many(manual_rng, 100, samples);
  std::vector<std::uint64_t> manual(256, 0);
  for (const std::uint64_t s : samples) ++manual[s];
  EXPECT_EQ(counts, manual);
  EXPECT_EQ(counts_rng(), manual_rng());  // streams aligned
}

TEST(NuZCounts, KernelPreservesTotal) {
  const NuZSource source(make_nuz(5, 0.5, 3));
  std::vector<std::uint64_t> counts;
  Rng rng(9);
  source.sample_counts(rng, 4096, counts);
  ASSERT_EQ(counts.size(), source.domain_size());
  EXPECT_EQ(total(counts), 4096u);
}

TEST(NuZCounts, KernelMatchesExactPmf) {
  // One-sample GOF against nu_z's exact pmf, aggregated over trials.
  const NuZ nu = make_nuz(5, 0.5, 4);
  const NuZSource source(nu);
  const std::uint64_t universe = source.domain_size();
  const std::size_t draws = 4096;
  const int trials = 32;
  std::vector<std::uint64_t> observed(universe, 0);
  Rng rng(31);
  std::vector<std::uint64_t> counts;
  for (int t = 0; t < trials; ++t) {
    source.sample_counts(rng, draws, counts);
    for (std::uint64_t i = 0; i < universe; ++i) observed[i] += counts[i];
  }
  const double grand =
      static_cast<double>(draws) * static_cast<double>(trials);
  std::vector<double> expected(universe);
  for (std::uint64_t i = 0; i < universe; ++i) {
    expected[i] = grand * nu.pmf(i);
  }
  const double stat = chi_squared_gof(observed, expected);
  EXPECT_LT(stat, chi_squared_bound(static_cast<double>(universe - 1)));
}

TEST(NuZCounts, KernelMatchesPerSampleDistribution) {
  const NuZSource source(make_nuz(5, 0.5, 5));
  const std::uint64_t universe = source.domain_size();
  const std::size_t draws = 4096;
  const int trials = 32;
  std::vector<std::uint64_t> kernel_total(universe, 0);
  std::vector<std::uint64_t> sample_total(universe, 0);
  Rng kernel_rng(41);
  Rng sample_rng(42);
  std::vector<std::uint64_t> counts;
  std::vector<std::uint64_t> samples;
  for (int t = 0; t < trials; ++t) {
    source.sample_counts(kernel_rng, draws, counts);
    for (std::uint64_t i = 0; i < universe; ++i) kernel_total[i] += counts[i];
    source.sample_many(sample_rng, draws, samples);
    for (const std::uint64_t s : samples) ++sample_total[s];
  }
  const double stat = chi_squared_two_sample(kernel_total, sample_total);
  EXPECT_LT(stat, chi_squared_bound(static_cast<double>(universe - 1)));
}

TEST(GenericCounts, DefaultPathTalliesSampleManyBitExactly) {
  // Sources without a direct kernel (here: HistogramSource) tally their own
  // sample_many, so the histogram is bit-exact against a manual tally.
  const std::vector<std::uint64_t> weights{5, 1, 0, 3, 7, 2, 2, 4};
  const HistogramSource source(weights);
  Rng counts_rng(51), manual_rng(51);
  std::vector<std::uint64_t> counts;
  source.sample_counts(counts_rng, 500, counts);
  std::vector<std::uint64_t> samples;
  source.sample_many(manual_rng, 500, samples);
  std::vector<std::uint64_t> manual(weights.size(), 0);
  for (const std::uint64_t s : samples) ++manual[s];
  EXPECT_EQ(counts, manual);
  EXPECT_EQ(counts[2], 0u);  // zero-weight element never drawn
}

TEST(Counts, OversizedDomainThrowsCapacityError) {
  const UniformSource source(kMaxCountedDomain + 1);
  Rng rng(1);
  std::vector<std::uint64_t> counts;
  EXPECT_THROW(source.sample_counts(rng, kMaxCountedDomain + 2, counts),
               CapacityError);
}

TEST(BinomialSample, MomentsAcrossAllRegimes) {
  // (n, p) chosen to land in each regime of the sampler: Bernoulli loop,
  // waiting time, Beta-split recursion, and the p > 1/2 reflection.
  struct Case {
    std::uint64_t n;
    double p;
  };
  const Case cases[] = {{12, 0.3}, {1000, 0.01}, {100000, 0.4}, {500, 0.9}};
  Rng rng(61);
  const int reps = 3000;
  for (const Case& c : cases) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto k = static_cast<double>(binomial_sample(rng, c.n, c.p));
      ASSERT_LE(k, static_cast<double>(c.n));
      sum += k;
      sum_sq += k * k;
    }
    const double mean = sum / reps;
    const double var = sum_sq / reps - mean * mean;
    const double true_mean = static_cast<double>(c.n) * c.p;
    const double true_var = true_mean * (1.0 - c.p);
    // Mean within 5 standard errors; variance within 25%.
    const double se = std::sqrt(true_var / reps);
    EXPECT_NEAR(mean, true_mean, 5.0 * se) << c.n << " " << c.p;
    EXPECT_NEAR(var, true_var, 0.25 * true_var) << c.n << " " << c.p;
  }
}

TEST(BinomialSample, EdgeCases) {
  Rng rng(71);
  EXPECT_EQ(binomial_sample(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, 1.0), 100u);
  EXPECT_THROW((void)binomial_sample(rng, 10, 1.5), InvalidArgument);
}

TEST(BinomialSplitCounts, PreservesTotalOverRange) {
  Rng rng(81);
  std::uint64_t sum = 0;
  std::uint64_t cells = 0;
  binomial_split_counts(rng, 10000, 0, 97,
                        [&](std::uint64_t cell, std::uint64_t c) {
                          EXPECT_LT(cell, 97u);
                          EXPECT_GT(c, 0u);
                          sum += c;
                          ++cells;
                        });
  EXPECT_EQ(sum, 10000u);
  EXPECT_LE(cells, 97u);
}

}  // namespace
}  // namespace duti
