#include "testers/single_sample.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dist/generators.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

TEST(SharedHash, IsABijection) {
  for (unsigned bits : {1u, 4u, 10u}) {
    const SharedHash h(bits, 12345);
    std::set<std::uint64_t> images;
    for (std::uint64_t x = 0; x < (1ULL << bits); ++x) {
      const auto y = h.permute(x);
      EXPECT_LT(y, 1ULL << bits);
      images.insert(y);
    }
    EXPECT_EQ(images.size(), 1ULL << bits) << "bits=" << bits;
  }
}

TEST(SharedHash, DifferentKeysGiveDifferentPermutations) {
  const SharedHash h1(8, 1), h2(8, 2);
  int differing = 0;
  for (std::uint64_t x = 0; x < 256; ++x) {
    if (h1.permute(x) != h2.permute(x)) ++differing;
  }
  EXPECT_GT(differing, 200);
}

TEST(SharedHash, BucketsExactlyBalanced) {
  // Top-r bits of a bijection partition the domain into equal buckets.
  const unsigned bits = 10, r = 3;
  const SharedHash h(bits, 99);
  std::vector<int> counts(1 << r, 0);
  for (std::uint64_t x = 0; x < (1ULL << bits); ++x) {
    ++counts[h.bucket(x, r)];
  }
  for (int c : counts) {
    EXPECT_EQ(c, 1 << (bits - r));
  }
}

TEST(SingleSampleHashTester, ConfigValidation) {
  EXPECT_THROW(SingleSampleHashTester({100, 50, 0.5, 2}, 1), InvalidArgument);
  EXPECT_THROW(SingleSampleHashTester({128, 1, 0.5, 2}, 1), InvalidArgument);
  EXPECT_THROW(SingleSampleHashTester({128, 50, 0.5, 8}, 1),
               InvalidArgument);  // r > log2(n)
  EXPECT_NO_THROW(SingleSampleHashTester({128, 50, 0.5, 7}, 1));
}

TEST(SingleSampleHashTester, AcceptsUniform) {
  const std::uint64_t n = 1 << 10;
  const SingleSampleHashTester tester({n, 400, 0.5, 5}, /*seed=*/7);
  const UniformSource uniform(n);
  SuccessCounter ok;
  for (int t = 0; t < 200; ++t) {
    Rng rng = make_rng(11, t);
    ok.record(tester.run(uniform, rng));
  }
  EXPECT_GE(ok.rate(), 0.7);
}

TEST(SingleSampleHashTester, RejectsFarWithEnoughNodes) {
  // k ~ 4 n / (2^{r/2} eps^2) nodes: the ACT regime. Use full-rate r =
  // log2(n) so hashing loses nothing, eps = 1 (maximally far family).
  const std::uint64_t n = 1 << 8;
  const unsigned r = 8;
  const double eps = 1.0;
  const std::uint64_t k = 4 * 256 / 16;  // 4n/(2^{r/2} eps^2) = 64
  SuccessCounter uniform_ok, far_ok;
  const UniformSource uniform(n);
  for (int t = 0; t < 200; ++t) {
    // Fresh shared hash AND fresh far distribution per trial.
    const SingleSampleHashTester tester({n, k, eps, r},
                                        derive_seed(13, t));
    Rng u_rng = make_rng(14, t);
    uniform_ok.record(tester.run(uniform, u_rng));
    Rng far_rng = make_rng(15, t);
    const DistributionSource far(gen::paninski(n, eps, far_rng));
    Rng run_rng = make_rng(16, t);
    far_ok.record(!tester.run(far, run_rng));
  }
  EXPECT_GE(uniform_ok.rate(), 0.7);
  EXPECT_GE(far_ok.rate(), 0.6);
}

TEST(SingleSampleHashTester, FailsWithFarTooFewNodes) {
  const std::uint64_t n = 1 << 12;
  const SingleSampleHashTester tester({n, 8, 0.5, 4}, 17);
  SuccessCounter far_reject;
  for (int t = 0; t < 200; ++t) {
    Rng far_rng = make_rng(18, t);
    const DistributionSource far(gen::paninski(n, 0.5, far_rng));
    Rng run_rng = make_rng(19, t);
    far_reject.record(!tester.run(far, run_rng));
  }
  EXPECT_LE(far_reject.rate(), 0.45);
}

TEST(SingleSampleHashTester, RefereeDecisionFromBuckets) {
  const SingleSampleHashTester tester({256, 10, 0.5, 4}, 21);
  // All-distinct buckets: zero collisions, accept.
  std::vector<std::uint64_t> distinct{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_TRUE(tester.referee_accept(distinct));
  // All-same buckets: 45 collisions, way over threshold: reject.
  std::vector<std::uint64_t> same(10, 3);
  EXPECT_FALSE(tester.referee_accept(same));
  // Wrong count throws.
  std::vector<std::uint64_t> short_vec(5, 0);
  EXPECT_THROW((void)tester.referee_accept(short_vec), InvalidArgument);
}

}  // namespace
}  // namespace duti
