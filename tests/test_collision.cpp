#include "testers/collision.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dist/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(CollisionPairs, ByHand) {
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{1, 2, 3}), 0u);
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{1, 1, 2}), 1u);
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{5, 5, 5}), 3u);
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{5, 5, 5, 5}), 6u);
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{1, 2, 1, 2}), 2u);
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(collision_pairs(std::vector<std::uint64_t>{9}), 0u);
}

TEST(CollisionPairs, MatchesQuadraticBruteForce) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> samples(40);
    for (auto& s : samples) s = rng.next_below(10);
    std::uint64_t brute = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = i + 1; j < samples.size(); ++j) {
        if (samples[i] == samples[j]) ++brute;
      }
    }
    ASSERT_EQ(collision_pairs(samples), brute);
  }
}

TEST(DistinctValues, ByHand) {
  EXPECT_EQ(distinct_values(std::vector<std::uint64_t>{1, 1, 2, 3, 3}), 3u);
  EXPECT_EQ(distinct_values(std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(distinct_values(std::vector<std::uint64_t>{7, 7, 7}), 1u);
}

TEST(L2NormSquared, KnownValues) {
  EXPECT_NEAR(l2_norm_squared(DiscreteDistribution::uniform(100)), 0.01,
              1e-12);
  EXPECT_NEAR(l2_norm_squared(DiscreteDistribution({1.0, 0.0})), 1.0, 1e-12);
  EXPECT_NEAR(l2_norm_squared(DiscreteDistribution({0.5, 0.5})), 0.5, 1e-12);
}

TEST(ExpectedCollisions, UniformFormula) {
  EXPECT_NEAR(expected_collision_pairs_uniform(100.0, 10), 45.0 / 100.0,
              1e-12);
  EXPECT_NEAR(expected_collision_pairs(DiscreteDistribution::uniform(100), 10),
              expected_collision_pairs_uniform(100.0, 10), 1e-12);
}

TEST(ExpectedCollisions, EmpiricalAgreement) {
  Rng rng(2);
  const auto dist = gen::zipf(50, 1.0);
  const unsigned q = 30;
  const double expected = expected_collision_pairs(dist, q);
  double acc = 0.0;
  const int trials = 20000;
  std::vector<std::uint64_t> samples;
  for (int t = 0; t < trials; ++t) {
    dist.sample_many(rng, q, samples);
    acc += static_cast<double>(collision_pairs(samples));
  }
  EXPECT_NEAR(acc / trials, expected, 0.05 * expected);
}

TEST(FarL2LowerBound, CauchySchwarzHoldsOnConcreteFamilies) {
  // Every eps-far distribution must have ||mu||_2^2 >= (1+eps^2)/n.
  Rng rng(3);
  const std::size_t n = 64;
  for (double eps : {0.2, 0.5, 1.0}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto far = gen::paninski(n, eps, rng);
      EXPECT_GE(l2_norm_squared(far),
                far_l2_lower_bound(static_cast<double>(n), eps) - 1e-12);
    }
    const auto bim = gen::bimodal(n, eps);
    EXPECT_GE(l2_norm_squared(bim),
              far_l2_lower_bound(static_cast<double>(n), eps) - 1e-12);
  }
}

TEST(FarL2LowerBound, PaninskiIsExtremal) {
  // The Paninski family achieves the bound with equality: it is the
  // hardest eps-far family (this is why the paper uses it).
  Rng rng(4);
  const std::size_t n = 128;
  const double eps = 0.4;
  const auto far = gen::paninski(n, eps, rng);
  EXPECT_NEAR(l2_norm_squared(far),
              far_l2_lower_bound(static_cast<double>(n), eps), 1e-12);
}

TEST(CollisionVariance, MatchesEmpiricalUnderUniform) {
  Rng rng(5);
  const double n = 64.0;
  const unsigned q = 16;
  const double expected_var = collision_variance_uniform(n, q);
  std::vector<std::uint64_t> samples(q);
  double s1 = 0.0, s2 = 0.0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    for (auto& s : samples) s = rng.next_below(64);
    const auto c = static_cast<double>(collision_pairs(samples));
    s1 += c;
    s2 += c * c;
  }
  const double mean_c = s1 / trials;
  const double var_c = s2 / trials - mean_c * mean_c;
  EXPECT_NEAR(mean_c, expected_collision_pairs_uniform(n, q), 0.05);
  EXPECT_NEAR(var_c, expected_var, 0.05 * expected_var);
}

TEST(Collision, ArgumentValidation) {
  EXPECT_THROW((void)expected_collision_pairs_uniform(0.5, 5), InvalidArgument);
  EXPECT_THROW((void)expected_collision_pairs_uniform(10.0, 1), InvalidArgument);
  EXPECT_THROW((void)far_l2_lower_bound(10.0, 3.0), InvalidArgument);
  EXPECT_THROW((void)collision_variance_uniform(10.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace duti
