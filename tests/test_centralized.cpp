#include "testers/centralized.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "dist/generators.hpp"
#include <cmath>
#include <tuple>

#include "testers/collision.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

/// Success rates over fresh far distributions each trial.
template <typename Tester>
std::pair<double, double> success_rates(const Tester& tester, std::uint64_t n,
                                        double eps, int trials,
                                        std::uint64_t seed) {
  SuccessCounter uniform_ok, far_ok;
  const UniformSource uniform(n);
  for (int t = 0; t < trials; ++t) {
    Rng rng = make_rng(seed, 1, t);
    uniform_ok.record(tester.run(uniform, rng));
    Rng far_rng = make_rng(seed, 2, t);
    const DistributionSource far(gen::paninski(n, eps, far_rng));
    Rng run_rng = make_rng(seed, 3, t);
    far_ok.record(!tester.run(far, run_rng));
  }
  return {uniform_ok.rate(), far_ok.rate()};
}

class CentralizedSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(CentralizedSweep, CollisionTesterSucceedsAtSufficientQ) {
  const auto [n, eps] = GetParam();
  const unsigned q = CentralizedCollisionTester::sufficient_q(n, eps);
  const CentralizedCollisionTester tester(n, eps, q);
  const auto [u, f] =
      success_rates(tester, n, eps, 200, derive_seed(100, n));
  EXPECT_GE(u, 0.75) << "n=" << n << " eps=" << eps << " q=" << q;
  EXPECT_GE(f, 0.75) << "n=" << n << " eps=" << eps << " q=" << q;
}

TEST_P(CentralizedSweep, CoincidenceTesterSucceedsAtSufficientQ) {
  const auto [n, eps] = GetParam();
  // The coincidence statistic has a somewhat larger constant than the
  // collision statistic; give it c = 6 instead of the default 3.
  const unsigned q = CentralizedCollisionTester::sufficient_q(n, eps, 6.0);
  const PaninskiCoincidenceTester tester(n, eps, q);
  const auto [u, f] =
      success_rates(tester, n, eps, 200, derive_seed(101, n));
  EXPECT_GE(u, 0.75);
  EXPECT_GE(f, 0.75);
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndEps, CentralizedSweep,
    ::testing::Values(std::make_tuple(std::uint64_t{128}, 0.5),
                      std::make_tuple(std::uint64_t{512}, 0.5),
                      std::make_tuple(std::uint64_t{512}, 0.3),
                      std::make_tuple(std::uint64_t{2048}, 0.4)));

TEST(CentralizedCollisionTester, FailsWithFarTooFewSamples) {
  // With q = 3 on a large domain, collisions are so rare the tester cannot
  // distinguish: far-rejection stays near zero.
  const std::uint64_t n = 1 << 14;
  const double eps = 0.3;
  const CentralizedCollisionTester tester(n, eps, 3);
  const auto [u, f] = success_rates(tester, n, eps, 300, 777);
  EXPECT_GE(u, 0.9);  // accepts uniform trivially
  EXPECT_LE(f, 0.3);  // but cannot reject far
}

TEST(CentralizedCollisionTester, ThresholdBetweenTheTwoMeans) {
  const std::uint64_t n = 1000;
  const double eps = 0.5;
  const unsigned q = 200;
  const CentralizedCollisionTester tester(n, eps, q);
  const double uniform_mean =
      expected_collision_pairs_uniform(static_cast<double>(n), q);
  EXPECT_GT(tester.threshold(), uniform_mean);
  EXPECT_LT(tester.threshold(), uniform_mean * (1.0 + eps * eps));
}

TEST(CentralizedCollisionTester, SufficientQScaling) {
  // q ~ sqrt(n)/eps^2 shape of the static helper.
  const auto q1 = CentralizedCollisionTester::sufficient_q(1 << 10, 0.5);
  const auto q2 = CentralizedCollisionTester::sufficient_q(1 << 12, 0.5);
  EXPECT_NEAR(static_cast<double>(q2) / q1, 2.0, 0.1);
  const auto q3 = CentralizedCollisionTester::sufficient_q(1 << 10, 0.25);
  EXPECT_NEAR(static_cast<double>(q3) / q1, 4.0, 0.1);
}

TEST(CentralizedCollisionTester, AcceptChecksSampleCount) {
  const CentralizedCollisionTester tester(100, 0.5, 10);
  std::vector<std::uint64_t> wrong(5, 0);
  EXPECT_THROW((void)tester.accept(wrong), InvalidArgument);
}

TEST(CentralizedCollisionTester, DomainMismatchThrows) {
  const CentralizedCollisionTester tester(100, 0.5, 10);
  const UniformSource source(200);
  Rng rng(1);
  EXPECT_THROW((void)tester.run(source, rng), InvalidArgument);
}

TEST(PaninskiCoincidenceTester, DistinctCountDetectsFar) {
  const std::uint64_t n = 256;
  const double eps = 0.7;
  const unsigned q = CentralizedCollisionTester::sufficient_q(n, eps);
  const PaninskiCoincidenceTester tester(n, eps, q);
  const auto [u, f] = success_rates(tester, n, eps, 300, 888);
  EXPECT_GE(u, 0.7);
  EXPECT_GE(f, 0.7);
}

TEST(ChiSquaredTester, StatisticMeanUnderUniform) {
  // E[S] = -1 under uniform (see header); empirical average should agree.
  const std::uint64_t n = 256;
  const unsigned q = 64;
  const ChiSquaredTester tester(n, 0.5, q);
  const UniformSource uniform(n);
  Rng rng(2024);
  double acc = 0.0;
  const int trials = 20000;
  std::vector<std::uint64_t> samples;
  for (int t = 0; t < trials; ++t) {
    uniform.sample_many(rng, q, samples);
    acc += tester.statistic(samples);
  }
  EXPECT_NEAR(acc / trials, -1.0, 0.25);
}

TEST(ChiSquaredTester, StatisticMeanUnderFar) {
  // E[S] = q n ||mu-U||_2^2 - n ||mu||_2^2; check on a fixed Paninski far
  // distribution.
  const std::uint64_t n = 256;
  const unsigned q = 64;
  const double eps = 0.5;
  Rng gen_rng(2025);
  const auto far = gen::paninski(n, eps, gen_rng);
  const double expected =
      static_cast<double>(q) * static_cast<double>(n) *
          (l2_norm_squared(far) - 1.0 / static_cast<double>(n)) -
      static_cast<double>(n) * l2_norm_squared(far);
  const ChiSquaredTester tester(n, eps, q);
  const DistributionSource source(far);
  Rng rng(2026);
  double acc = 0.0;
  const int trials = 20000;
  std::vector<std::uint64_t> samples;
  for (int t = 0; t < trials; ++t) {
    source.sample_many(rng, q, samples);
    acc += tester.statistic(samples);
  }
  EXPECT_NEAR(acc / trials, expected, 0.1 * std::max(1.0, std::fabs(expected)));
}

class ChiSquaredSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ChiSquaredSweep, SucceedsAtSufficientQ) {
  const auto [n, eps] = GetParam();
  const unsigned q = CentralizedCollisionTester::sufficient_q(n, eps);
  const ChiSquaredTester tester(n, eps, q);
  const auto [u, f] = success_rates(tester, n, eps, 200, derive_seed(102, n));
  EXPECT_GE(u, 0.75) << "n=" << n << " eps=" << eps;
  EXPECT_GE(f, 0.75) << "n=" << n << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndEps, ChiSquaredSweep,
    ::testing::Values(std::make_tuple(std::uint64_t{128}, 0.5),
                      std::make_tuple(std::uint64_t{512}, 0.5),
                      std::make_tuple(std::uint64_t{2048}, 0.4)));

TEST(ChiSquaredTester, FailsWithFarTooFewSamples) {
  const std::uint64_t n = 1 << 14;
  const ChiSquaredTester tester(n, 0.3, 8);
  const auto [u, f] = success_rates(tester, n, 0.3, 300, 779);
  EXPECT_GE(u, 0.6);
  EXPECT_LE(f, 0.4);
}

TEST(Testers, RejectNonUniformZipf) {
  // Uniformity testers must also reject far distributions outside the
  // Paninski family; Zipf(1) on n=512 is far from uniform.
  const std::uint64_t n = 512;
  const auto zipf = gen::zipf(n, 1.0);
  ASSERT_GT(zipf.l1_from_uniform(), 0.5);
  const unsigned q = CentralizedCollisionTester::sufficient_q(n, 0.5);
  const CentralizedCollisionTester tester(n, 0.5, q);
  const DistributionSource source(zipf);
  SuccessCounter rejects;
  for (int t = 0; t < 100; ++t) {
    Rng rng = make_rng(999, t);
    rejects.record(!tester.run(source, rng));
  }
  EXPECT_GE(rejects.rate(), 0.9);
}

}  // namespace
}  // namespace duti
