#include "testers/robust_rules.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dist/generators.hpp"
#include "stats/harness.hpp"

namespace duti {
namespace {

// ---------------------------------------------------------------- rules --

TEST(NaiveThresholdRule, ConflatesSilenceWithAlarms) {
  const NaiveThresholdRule rule{100, 60};
  // 10 alarms + 90 bits arrived: 10 real + 10 missing = 20 < 60.
  EXPECT_EQ(rule.decide(10, 90), RefereeOutcome::kAccept);
  // Same 10 alarms, but 50 bits missing: 10 + 50 = 60 >= 60 -> rejects
  // even though the evidence is identical. This is the designed flaw.
  EXPECT_EQ(rule.decide(10, 50), RefereeOutcome::kReject);
  EXPECT_EQ(rule.decide(60, 100), RefereeOutcome::kReject);
}

TEST(QuorumThresholdRule, AbortsBelowQuorumAndRecalibratesAbove) {
  QuorumThresholdRule rule;
  rule.k = 100;
  rule.p_reject_uniform = 0.5;
  rule.quorum_fraction = 0.5;
  rule.z = 1.0;
  // 49 < quorum of 50: cannot decide, and says so explicitly.
  EXPECT_EQ(rule.decide(30, 49), RefereeOutcome::kAbortQuorum);
  // With 60 survivors the threshold tracks 60, not 100.
  const auto t60 = rule.threshold_for(60);
  EXPECT_GT(t60, 30u);   // mean 30 plus a z-margin
  EXPECT_LT(t60, 40u);   // ... but nowhere near the k=100 calibration
  EXPECT_EQ(rule.decide(static_cast<std::uint64_t>(t60) - 1, 60),
            RefereeOutcome::kAccept);
  EXPECT_EQ(rule.decide(t60, 60), RefereeOutcome::kReject);
  // Monotone in survivors.
  EXPECT_LT(t60, rule.threshold_for(100));
}

TEST(MedianOfGroupsRule, ToleratesByzantineOnes) {
  MedianOfGroupsRule rule;
  rule.k = 20;
  rule.p_reject_uniform = 0.2;
  rule.delta = 0.1;  // budget: floor(0.1 * 20) = 2 Byzantine bits
  EXPECT_EQ(rule.groups(), 7u);  // 2 * 2 + 3
  // 18 honest zeros + 2 stuck-at-one bits: the two 1s land in at most two
  // of the seven groups, so the median group is clean -> accept.
  std::vector<std::uint8_t> bits(20, 0);
  bits[3] = 1;
  bits[17] = 1;
  EXPECT_EQ(rule.decide(bits), RefereeOutcome::kAccept);
  // All-ones is a genuine rejection no matter the grouping.
  EXPECT_EQ(rule.decide(std::vector<std::uint8_t>(20, 1)),
            RefereeOutcome::kReject);
}

TEST(TrimmedMeanRule, SlicesOffAdversarialTails) {
  TrimmedMeanRule rule;
  rule.k = 20;
  rule.p_reject_uniform = 0.2;
  rule.delta = 0.1;
  // 2 Byzantine ones among 20 bits: trimming floor(0.1*20)=2 from each end
  // removes them entirely.
  EXPECT_EQ(rule.decide(2, 20), RefereeOutcome::kAccept);
  EXPECT_EQ(rule.decide(20, 20), RefereeOutcome::kReject);
}

// ------------------------------------------------------------ end-to-end --

SourceFactory uniform_factory(std::uint64_t n) {
  return [n](Rng&) { return std::make_unique<UniformSource>(n); };
}

SourceFactory far_factory(std::uint64_t n, double eps) {
  return [n, eps](Rng& rng) {
    return std::make_unique<DistributionSource>(gen::paninski(n, eps, rng));
  };
}

constexpr std::uint64_t kN = 256;
constexpr unsigned kK = 60;
constexpr double kEps = 0.5;

/// Minimal q clearing the 2/3 bar for a tester built at each probed q.
std::uint64_t min_q_for(RobustThresholdTester::Rule rule,
                        const FaultPlan& plan, std::uint64_t hi) {
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = hi;
  cfg.trials = 150;
  cfg.seed = 97;
  const auto probe = [&](std::uint64_t q) {
    Rng calib(derive_seed(11, q));
    const RobustThresholdTester tester(
        {kN, kK, static_cast<unsigned>(q), kEps}, plan, rule, calib);
    return probe_success_ex(
        [&tester](const SampleSource& s, Rng& r) {
          return tester.outcome(s, r);
        },
        uniform_factory(kN), far_factory(kN, kEps), cfg.trials, cfg.seed);
  };
  const auto result = find_min_param(probe, cfg);
  return result.found ? result.minimum : 0;  // 0 = not found below hi
}

// Acceptance criterion: at 20% crashed players the quorum rule's minimal q
// stays within 2x of the fault-free minimum, while the naive rule cannot
// clear the 2/3 bar at all (its uniform side false-alarms itself to death).
TEST(RobustThresholdTester, QuorumSurvivesCrashesThatKillNaiveRule) {
  const FaultPlan no_faults{};
  FaultPlan crash20;
  crash20.crash_fraction = 0.2;

  const std::uint64_t q_free =
      min_q_for(RobustThresholdTester::Rule::kNaive, no_faults, 1 << 10);
  ASSERT_GT(q_free, 0u);

  const std::uint64_t q_quorum =
      min_q_for(RobustThresholdTester::Rule::kQuorum, crash20, 1 << 10);
  ASSERT_GT(q_quorum, 0u);
  EXPECT_LE(q_quorum, 2 * q_free);

  // The naive rule under the same crashes: even 8x the fault-free budget
  // does not help, because its failure is not a sample-size problem.
  Rng calib(derive_seed(13, q_free));
  const RobustThresholdTester naive(
      {kN, kK, static_cast<unsigned>(8 * q_free), kEps}, crash20,
      RobustThresholdTester::Rule::kNaive, calib);
  const auto probe = probe_success_ex(
      [&naive](const SampleSource& s, Rng& r) { return naive.outcome(s, r); },
      uniform_factory(kN), far_factory(kN, kEps), 150, 97);
  EXPECT_FALSE(probe.passes());
  EXPECT_LT(probe.uniform_accept_rate, 2.0 / 3.0);  // the failing side
}

TEST(RobustThresholdTester, MedianOfGroupsSurvivesStuckAtOneByzantines) {
  FaultPlan byz10;
  byz10.byzantine_fraction = 0.1;
  byz10.byzantine_mode = ByzantineMode::kStuckAtOne;
  Rng calib(17);
  const RobustThresholdTester median({kN, kK, 48, kEps}, byz10,
                                     RobustThresholdTester::Rule::kMedianOfGroups,
                                     calib);
  const auto probe = probe_success_ex(
      [&median](const SampleSource& s, Rng& r) {
        return median.outcome(s, r);
      },
      uniform_factory(kN), far_factory(kN, kEps), 150, 101);
  EXPECT_TRUE(probe.passes()) << "uniform=" << probe.uniform_accept_rate
                              << " far=" << probe.far_reject_rate;
}

TEST(RobustThresholdTester, QuorumAbortIsAttributedNotConflated) {
  // 60% crashed: 24 survivors < the 30-player quorum, every trial aborts.
  FaultPlan crash60;
  crash60.crash_fraction = 0.6;
  Rng calib(19);
  const RobustThresholdTester quorum({kN, kK, 16, kEps}, crash60,
                                     RobustThresholdTester::Rule::kQuorum,
                                     calib);
  const std::size_t trials = 40;
  const auto probe = probe_success_ex(
      [&quorum](const SampleSource& s, Rng& r) {
        return quorum.outcome(s, r);
      },
      uniform_factory(kN), far_factory(kN, kEps), trials, 103);
  EXPECT_EQ(probe.uniform_accept_rate, 0.0);
  EXPECT_EQ(probe.far_reject_rate, 0.0);
  EXPECT_EQ(probe.uniform_aborts_quorum, trials);
  EXPECT_EQ(probe.far_aborts_quorum, trials);
  EXPECT_EQ(probe.aborts(), 2 * trials);
}

TEST(RobustThresholdTester, ZeroFaultPlanMatchesNaiveCalibration) {
  // With no faults the naive rule is exactly the paper's referee: minimal q
  // should sit near the sqrt(n/k)/eps^2 scale (small, single digits here).
  Rng calib(23);
  const RobustThresholdTester tester({kN, kK, 48, kEps}, FaultPlan{},
                                     RobustThresholdTester::Rule::kNaive,
                                     calib);
  EXPECT_GT(tester.p_reject_uniform(), 0.0);
  EXPECT_LT(tester.p_reject_uniform(), 1.0);
  EXPECT_GE(tester.naive_referee_threshold(), 1u);
  EXPECT_LE(tester.naive_referee_threshold(), kK);
  const auto probe = probe_success_ex(
      [&tester](const SampleSource& s, Rng& r) {
        return tester.outcome(s, r);
      },
      uniform_factory(kN), far_factory(kN, kEps), 150, 107);
  EXPECT_TRUE(probe.passes());
  EXPECT_EQ(probe.aborts(), 0u);
}

}  // namespace
}  // namespace duti
