#include "testers/fixed_threshold.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/generators.hpp"
#include "util/confidence.hpp"
#include "util/math.hpp"

namespace duti {
namespace {

TEST(PoissonQuantile, ByHandValues) {
  // lambda = 0: P(X > 0) = 0, so any tail gives c = 0.
  EXPECT_EQ(poisson_upper_quantile(0.0, 0.1), 0u);
  // lambda = 1: P(X > 2) = 1 - e^-1(1 + 1 + 0.5) ~ 0.0803; P(X > 1) ~ 0.264.
  EXPECT_EQ(poisson_upper_quantile(1.0, 0.1), 2u);
  EXPECT_EQ(poisson_upper_quantile(1.0, 0.3), 1u);
  EXPECT_EQ(poisson_upper_quantile(1.0, 0.05), 3u);
}

TEST(PoissonHelpers, PmfAndTailConsistent) {
  const double lambda = 2.5;
  double total = 0.0;
  for (std::uint64_t c = 0; c <= 40; ++c) {
    total += poisson_pmf(lambda, c);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
  for (std::uint64_t c = 0; c < 10; ++c) {
    EXPECT_NEAR(poisson_upper_tail(lambda, c) - poisson_upper_tail(lambda, c + 1),
                poisson_pmf(lambda, c + 1), 1e-10);
  }
}

TEST(PoissonQuantile, TailIsRespected) {
  const double lambda = 3.0, tail = 0.05;
  const auto c = poisson_upper_quantile(lambda, tail);
  EXPECT_LE(poisson_upper_tail(lambda, c), tail);
  if (c > 0) {
    EXPECT_GT(poisson_upper_tail(lambda, c - 1), tail);
  }
}

TEST(BinomialUpperTail, ByHand) {
  EXPECT_NEAR(binomial_upper_tail(2, 0.5, 1), 0.75, 1e-12);
  EXPECT_NEAR(binomial_upper_tail(2, 0.5, 2), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 0.3, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 0.3, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 1.0, 5), 1.0);
}

TEST(FixedThresholdTester, Validation) {
  EXPECT_THROW(FixedThresholdTester({64, 8, 16, 0.5, 0}), InvalidArgument);
  EXPECT_THROW(FixedThresholdTester({64, 8, 16, 0.5, 9}), InvalidArgument);
  EXPECT_NO_THROW(FixedThresholdTester({64, 8, 16, 0.5, 8}));
}

TEST(FixedThresholdTester, CalibrationRealizesPStar) {
  // The randomized rule's rejection probability under the Poisson model is
  // exactly p*: P(X > c) + gamma P(X = c) = p*.
  const FixedThresholdTester tester({4096, 64, 64, 0.5, 8});
  const double lambda = 64.0 * 63.0 / 2.0 / 4096.0;
  const double realized =
      poisson_upper_tail(lambda, tester.local_count_threshold()) +
      tester.local_boundary_gamma() *
          poisson_pmf(lambda, tester.local_count_threshold());
  EXPECT_NEAR(realized, tester.local_reject_probability(), 1e-9);
}

TEST(FixedThresholdTester, PStarIsSafeAndMaximal) {
  const unsigned k = 64;
  for (std::uint64_t t_param : {1ULL, 4ULL, 16ULL}) {
    const FixedThresholdTester tester({4096, k, 64, 0.5, t_param, 0.2});
    const double p = tester.local_reject_probability();
    EXPECT_LE(binomial_upper_tail(k, p, static_cast<int>(t_param)), 0.2);
    // Maximal: 5% more would break the budget.
    EXPECT_GT(binomial_upper_tail(k, std::min(1.0, p * 1.05 + 1e-6),
                                  static_cast<int>(t_param)),
              0.2);
  }
}

TEST(FixedThresholdTester, LocalBudgetGrowsWithT) {
  // Larger forced T allows each player a bigger rejection budget — the
  // "biased bits" mechanism of Theorem 1.3 in reverse.
  const FixedThresholdTester t1({4096, 64, 64, 0.5, 1});
  const FixedThresholdTester t8({4096, 64, 64, 0.5, 8});
  const FixedThresholdTester t32({4096, 64, 64, 0.5, 32});
  EXPECT_LT(t1.local_reject_probability(), t8.local_reject_probability());
  EXPECT_LT(t8.local_reject_probability(), t32.local_reject_probability());
}

TEST(FixedThresholdTester, UniformSideSafeAcrossT) {
  const std::uint64_t n = 1024;
  const UniformSource uniform(n);
  for (std::uint64_t t_param : {1ULL, 2ULL, 8ULL, 32ULL}) {
    const FixedThresholdTester tester({n, 32, 48, 0.5, t_param});
    SuccessCounter ok;
    for (int t = 0; t < 120; ++t) {
      Rng rng = make_rng(61, t_param, t);
      ok.record(tester.run(uniform, rng));
    }
    EXPECT_GE(ok.rate(), 0.6) << "T=" << t_param;
  }
}

TEST(FixedThresholdTester, LargerTNeedsFewerSamples) {
  // At fixed (n, k, q) chosen to be marginal, far-rejection should be
  // clearly better at T = 16 than at T = 1 (Theorem 1.3's phenomenon).
  const std::uint64_t n = 4096;
  const double eps = 0.5;
  const unsigned k = 64, q = 96;
  const FixedThresholdTester small_t({n, k, q, eps, 1});
  const FixedThresholdTester large_t({n, k, q, eps, 16});
  auto far_reject_rate = [&](const FixedThresholdTester& tester,
                             std::uint64_t seed) {
    SuccessCounter rejects;
    for (int t = 0; t < 150; ++t) {
      Rng far_rng = make_rng(seed, 1, t);
      const DistributionSource far(gen::paninski(n, eps, far_rng));
      Rng run_rng = make_rng(seed, 2, t);
      rejects.record(!tester.run(far, run_rng));
    }
    return rejects.rate();
  };
  EXPECT_GT(far_reject_rate(large_t, 62), far_reject_rate(small_t, 63) + 0.1);
}

}  // namespace
}  // namespace duti
