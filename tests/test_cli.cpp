#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/error.hpp"

namespace duti {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const auto cli = make({"--n=1024", "--eps=0.25"});
  EXPECT_EQ(cli.get_int("n", 0), 1024);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.25);
}

TEST(Cli, SpaceSyntax) {
  const auto cli = make({"--n", "2048"});
  EXPECT_EQ(cli.get_int("n", 0), 2048);
}

TEST(Cli, BareFlagIsTrue) {
  const auto cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenMissing) {
  const auto cli = make({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("mode", "fast"), "fast");
  EXPECT_FALSE(cli.get_bool("verbose", false));
}

TEST(Cli, IntList) {
  const auto cli = make({"--ks=1,2,4,8"});
  const auto ks = cli.get_int_list("ks", {});
  ASSERT_EQ(ks.size(), 4u);
  EXPECT_EQ(ks[0], 1);
  EXPECT_EQ(ks[3], 8);
}

TEST(Cli, IntListFallback) {
  const auto cli = make({});
  const auto ks = cli.get_int_list("ks", {3, 5});
  ASSERT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks[1], 5);
}

TEST(Cli, MalformedValuesThrow) {
  const auto cli = make({"--n=abc", "--b=maybe", "--ks=1,x"});
  EXPECT_THROW((void)cli.get_int("n", 0), InvalidArgument);
  EXPECT_THROW((void)cli.get_bool("b", false), InvalidArgument);
  EXPECT_THROW(cli.get_int_list("ks", {}), InvalidArgument);
}

TEST(Cli, Positional) {
  const auto cli = make({"first", "--n=1", "second"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, HelpDetected) {
  EXPECT_TRUE(make({"--help"}).help_requested());
  EXPECT_TRUE(make({"-h"}).help_requested());
  EXPECT_FALSE(make({}).help_requested());
}

TEST(Cli, EnvironmentFallback) {
  ::setenv("DUTI_TEST_ENV_FLAG", "314", 1);
  const auto cli = make({});
  EXPECT_EQ(cli.get_int("test-env-flag", 0), 314);
  ::unsetenv("DUTI_TEST_ENV_FLAG");
}

TEST(Cli, CommandLineBeatsEnvironment) {
  ::setenv("DUTI_N", "1", 1);
  const auto cli = make({"--n=2"});
  EXPECT_EQ(cli.get_int("n", 0), 2);
  ::unsetenv("DUTI_N");
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=on"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=no"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=off"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
}

}  // namespace
}  // namespace duti
