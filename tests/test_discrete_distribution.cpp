#include "dist/discrete_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

TEST(DiscreteDistribution, ValidatesPmf) {
  EXPECT_NO_THROW(DiscreteDistribution({0.5, 0.5}));
  EXPECT_THROW(DiscreteDistribution({0.5, 0.6}), InvalidArgument);
  EXPECT_THROW(DiscreteDistribution({-0.1, 1.1}), InvalidArgument);
  EXPECT_THROW((void)DiscreteDistribution(std::vector<double>{}), InvalidArgument);
}

TEST(DiscreteDistribution, RenormalizesWithinTolerance) {
  const DiscreteDistribution d({0.5 + 1e-10, 0.5});
  double total = 0.0;
  for (double p : d.pmf_vector()) total += p;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(DiscreteDistribution, UniformFactory) {
  const auto u = DiscreteDistribution::uniform(10);
  EXPECT_EQ(u.domain_size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(u.pmf(i), 0.1);
  }
  EXPECT_NEAR(u.l1_from_uniform(), 0.0, 1e-12);
}

TEST(DiscreteDistribution, L1Distance) {
  const DiscreteDistribution p({0.5, 0.5});
  const DiscreteDistribution q({0.8, 0.2});
  EXPECT_NEAR(p.l1_distance(q), 0.6, 1e-12);
  EXPECT_NEAR(p.tv_distance(q), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(p.l1_distance(p), 0.0);
}

TEST(DiscreteDistribution, L1IsSymmetricAndTriangle) {
  const DiscreteDistribution a({0.2, 0.3, 0.5});
  const DiscreteDistribution b({0.3, 0.3, 0.4});
  const DiscreteDistribution c({0.1, 0.6, 0.3});
  EXPECT_DOUBLE_EQ(a.l1_distance(b), b.l1_distance(a));
  EXPECT_LE(a.l1_distance(c), a.l1_distance(b) + b.l1_distance(c) + 1e-12);
}

TEST(DiscreteDistribution, L2Distance) {
  const DiscreteDistribution p({1.0, 0.0});
  const DiscreteDistribution q({0.0, 1.0});
  EXPECT_NEAR(p.l2_distance(q), std::sqrt(2.0), 1e-12);
}

TEST(DiscreteDistribution, KlDivergence) {
  const DiscreteDistribution p({0.5, 0.5});
  const DiscreteDistribution q({0.25, 0.75});
  // D(p||q) = 0.5 log2(2) + 0.5 log2(2/3) = 0.5 + 0.5*(1 - log2 3)
  const double expected = 0.5 * std::log2(0.5 / 0.25) +
                          0.5 * std::log2(0.5 / 0.75);
  EXPECT_NEAR(p.kl_divergence(q), expected, 1e-12);
  EXPECT_DOUBLE_EQ(p.kl_divergence(p), 0.0);
  EXPECT_GE(q.kl_divergence(p), 0.0);  // Gibbs
}

TEST(DiscreteDistribution, KlInfiniteOnSupportMismatch) {
  const DiscreteDistribution p({0.5, 0.5});
  const DiscreteDistribution q({1.0, 0.0});
  EXPECT_TRUE(std::isinf(p.kl_divergence(q)));
  EXPECT_FALSE(std::isinf(q.kl_divergence(p)));
}

TEST(DiscreteDistribution, Chi2Divergence) {
  const DiscreteDistribution p({0.6, 0.4});
  const DiscreteDistribution u({0.5, 0.5});
  // sum (p-q)^2/q = (0.01 + 0.01)/0.5 = 0.04
  EXPECT_NEAR(p.chi2_divergence(u), 0.04, 1e-12);
}

TEST(DiscreteDistribution, Chi2DominatesKlTimesLn2) {
  // KL (in nats) <= chi2; with our bits convention: kl*ln2 <= chi2.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> pv(8), qv(8);
    double ps = 0, qs = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      pv[i] = 0.1 + rng.next_double();
      qv[i] = 0.1 + rng.next_double();
      ps += pv[i];
      qs += qv[i];
    }
    for (std::size_t i = 0; i < 8; ++i) {
      pv[i] /= ps;
      qv[i] /= qs;
    }
    const DiscreteDistribution p(pv), q(qv);
    EXPECT_LE(p.kl_divergence(q) * std::log(2.0),
              p.chi2_divergence(q) + 1e-9);
  }
}

TEST(DiscreteDistribution, Entropy) {
  EXPECT_NEAR(DiscreteDistribution::uniform(8).entropy(), 3.0, 1e-12);
  EXPECT_NEAR(DiscreteDistribution({1.0, 0.0}).entropy(), 0.0, 1e-12);
  EXPECT_NEAR(DiscreteDistribution({0.5, 0.5}).entropy(), 1.0, 1e-12);
}

TEST(DiscreteDistribution, SamplingMatchesPmf) {
  const DiscreteDistribution d({0.1, 0.2, 0.3, 0.4});
  Rng rng(7);
  std::vector<double> freq(4, 0.0);
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) ++freq[d.sample(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(freq[i] / trials, d.pmf(i), 0.01);
  }
}

TEST(DiscreteDistribution, SampleManyFills) {
  const auto u = DiscreteDistribution::uniform(4);
  Rng rng(8);
  std::vector<std::uint64_t> out;
  u.sample_many(rng, 1000, out);
  EXPECT_EQ(out.size(), 1000u);
  for (auto s : out) EXPECT_LT(s, 4u);
}

TEST(DiscreteDistribution, PowerIsProduct) {
  const DiscreteDistribution d({0.25, 0.75});
  const auto d2 = d.power(2);
  ASSERT_EQ(d2.domain_size(), 4u);
  // index = i0 + 2*i1
  EXPECT_NEAR(d2.pmf(0), 0.25 * 0.25, 1e-12);
  EXPECT_NEAR(d2.pmf(1), 0.75 * 0.25, 1e-12);
  EXPECT_NEAR(d2.pmf(2), 0.25 * 0.75, 1e-12);
  EXPECT_NEAR(d2.pmf(3), 0.75 * 0.75, 1e-12);
}

TEST(DiscreteDistribution, PowerCapacityGuard) {
  const auto u = DiscreteDistribution::uniform(1000);
  EXPECT_THROW(u.power(5), CapacityError);
}

TEST(DiscreteDistribution, MixInterpolates) {
  const DiscreteDistribution p({1.0, 0.0});
  const DiscreteDistribution q({0.0, 1.0});
  const auto half = p.mix(q, 0.5);
  EXPECT_NEAR(half.pmf(0), 0.5, 1e-12);
  EXPECT_NEAR(half.pmf(1), 0.5, 1e-12);
  const auto none = p.mix(q, 0.0);
  EXPECT_NEAR(none.pmf(0), 1.0, 1e-12);
  EXPECT_THROW(p.mix(q, 1.5), InvalidArgument);
}

TEST(DiscreteDistribution, DomainMismatchThrows) {
  const DiscreteDistribution p({0.5, 0.5});
  const auto q = DiscreteDistribution::uniform(3);
  EXPECT_THROW((void)p.l1_distance(q), InvalidArgument);
  EXPECT_THROW((void)p.kl_divergence(q), InvalidArgument);
  EXPECT_THROW(p.mix(q, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace duti
