#include "core/claim31.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.hpp"

namespace duti {
namespace {

class Claim31Test : public ::testing::TestWithParam<
                        std::tuple<unsigned, unsigned, double>> {};

TEST_P(Claim31Test, ExpansionEqualsDirectProductEverywhere) {
  const auto [ell, q, eps] = GetParam();
  const CubeDomain dom(ell);
  const SampleTupleCodec codec(dom, q);
  Rng rng(derive_seed(31, ell, q, static_cast<std::uint64_t>(eps * 1000)));
  for (int z_trial = 0; z_trial < 3; ++z_trial) {
    const NuZ nu(dom, PerturbationVector::random(ell, rng), eps);
    for (std::uint64_t t = 0; t < codec.num_tuples(); ++t) {
      const double direct = nu_zq_pmf_direct(codec, nu, t);
      const double expansion = nu_zq_pmf_expansion(codec, nu, t);
      ASSERT_NEAR(direct, expansion, 1e-14)
          << "tuple=" << t << " z_trial=" << z_trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndEps, Claim31Test,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),       // ell
                       ::testing::Values(1u, 2u, 3u),       // q
                       ::testing::Values(0.0, 0.3, 0.9)));  // eps

TEST(Claim31, ProductPmfSumsToOne) {
  const CubeDomain dom(2);
  const SampleTupleCodec codec(dom, 3);
  Rng rng(7);
  const NuZ nu(dom, PerturbationVector::random(2, rng), 0.5);
  double total = 0.0;
  for (std::uint64_t t = 0; t < codec.num_tuples(); ++t) {
    total += nu_zq_pmf_direct(codec, nu, t);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Claim31, MatchesMaterializedPowerDistribution) {
  // Cross-check against DiscreteDistribution::power with the same index
  // layout (sample j occupies digit j; (ell+1) bits per digit = base n).
  const unsigned ell = 1, q = 2;
  const CubeDomain dom(ell);
  const SampleTupleCodec codec(dom, q);
  Rng rng(8);
  const NuZ nu(dom, PerturbationVector::random(ell, rng), 0.4);
  const auto pow_dist = nu.to_distribution().power(q);
  for (std::uint64_t t = 0; t < codec.num_tuples(); ++t) {
    // The codec packs with (ell+1)-bit fields; for n a power of two this is
    // the same as base-n digits.
    ASSERT_NEAR(nu_zq_pmf_direct(codec, nu, t), pow_dist.pmf(t), 1e-14);
  }
}

TEST(SampleTupleCodec, PackUnpackRoundTrip) {
  const CubeDomain dom(2);
  const SampleTupleCodec codec(dom, 3);
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint64_t> elements(3);
    for (auto& e : elements) e = rng.next_below(dom.universe_size());
    const auto packed = codec.pack(elements);
    for (unsigned j = 0; j < 3; ++j) {
      ASSERT_EQ(codec.element(packed, j), elements[j]);
      ASSERT_EQ(codec.x_of(packed, j), dom.x_of(elements[j]));
      ASSERT_EQ(codec.s_of(packed, j), dom.s_of(elements[j]));
    }
  }
}

TEST(SampleTupleCodec, SBitsMask) {
  const CubeDomain dom(2);
  const SampleTupleCodec codec(dom, 2);
  // bits per sample = 3; s-bits at positions 2 and 5.
  EXPECT_EQ(codec.s_bits_mask(), 0b100100u);
  EXPECT_EQ(codec.x_part(0b111111), 0b011011u);
}

TEST(SampleTupleCodec, UnpackX) {
  const CubeDomain dom(2);
  const SampleTupleCodec codec(dom, 2);
  const std::vector<std::uint64_t> elements{dom.encode(3, -1),
                                            dom.encode(1, +1)};
  const auto packed = codec.pack(elements);
  std::vector<std::uint64_t> xs;
  codec.unpack_x(packed, xs);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], 3u);
  EXPECT_EQ(xs[1], 1u);
}

TEST(SampleTupleCodec, CapacityGuard) {
  const CubeDomain dom(8);
  EXPECT_THROW(SampleTupleCodec(dom, 3), InvalidArgument);  // 27 bits > 26
  EXPECT_NO_THROW(SampleTupleCodec(dom, 2));
}

}  // namespace
}  // namespace duti
