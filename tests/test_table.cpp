#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"k", "q*", "note"});
  t.add_row({std::int64_t{16}, 3.14159, std::string("ok")});
  t.add_row({std::int64_t{1024}, 2.0, std::string("longer note")});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
  EXPECT_NE(out.find("longer note"), std::string::npos);
  EXPECT_NE(out.find("3.1416"), std::string::npos);  // 5 sig digits
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), InvalidArgument);
  EXPECT_THROW(t.add_row({std::int64_t{1}, 2.0, 3.0}), InvalidArgument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

TEST(Table, AccessorsWork) {
  Table t({"x"});
  t.add_row({std::int64_t{7}});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 7);
}

TEST(Table, CsvRoundTrip) {
  Table t({"name", "value"});
  t.add_row({std::string("plain"), 1.5});
  t.add_row({std::string("with,comma"), 2.5});
  t.add_row({std::string("with\"quote"), 3.5});
  const std::string path = "/tmp/duti_test_table.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,value");
  std::getline(f, line);
  EXPECT_EQ(line, "plain,1.5");
  std::getline(f, line);
  EXPECT_EQ(line, "\"with,comma\",2.5");
  std::getline(f, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3.5");
  std::remove(path.c_str());
}

TEST(Table, PrecisionSetting) {
  Table t({"v"});
  t.set_precision(2);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
  EXPECT_THROW(t.set_precision(0), InvalidArgument);
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(format_double(3.14159, 3), "3.14");
  EXPECT_EQ(format_double(1000000.0, 5), "1e+06");
  EXPECT_EQ(format_double(0.5, 5), "0.5");
}

}  // namespace
}  // namespace duti
