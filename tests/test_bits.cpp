#include "util/bits.hpp"

#include <gtest/gtest.h>

#include <set>

namespace duti {
namespace {

TEST(Bits, CubeCoordConvention) {
  // bit=1 encodes coordinate -1.
  EXPECT_EQ(cube_coord(0b000, 0), +1);
  EXPECT_EQ(cube_coord(0b001, 0), -1);
  EXPECT_EQ(cube_coord(0b010, 1), -1);
  EXPECT_EQ(cube_coord(0b010, 0), +1);
}

TEST(Bits, ChiMatchesProductOfCoordinates) {
  for (std::uint64_t s = 0; s < 16; ++s) {
    for (std::uint64_t x = 0; x < 16; ++x) {
      int expected = 1;
      for (unsigned i = 0; i < 4; ++i) {
        if ((s >> i) & 1ULL) expected *= cube_coord(x, i);
      }
      EXPECT_EQ(chi(s, x), expected) << "S=" << s << " x=" << x;
    }
  }
}

TEST(Bits, ChiEmptySetIsOne) {
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_EQ(chi(0, x), 1);
  }
}

TEST(Bits, ChiIsCharacter) {
  // chi_S(x XOR y) = chi_S(x) * chi_S(y) — the multiplicative property.
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::uint64_t x = 0; x < 8; ++x) {
      for (std::uint64_t y = 0; y < 8; ++y) {
        EXPECT_EQ(chi(s, x ^ y), chi(s, x) * chi(s, y));
      }
    }
  }
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity(0), 0);
  EXPECT_EQ(parity(1), 1);
  EXPECT_EQ(parity(0b101), 0);
  EXPECT_EQ(parity(0b111), 1);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2((1ULL << 50) + 123), 50u);
}

TEST(Bits, SubsetEnumerationVisitsAllSubsets) {
  const std::uint64_t mask = 0b10110;
  std::set<std::uint64_t> seen;
  std::uint64_t sub = mask;
  while (true) {
    seen.insert(sub);
    if (sub == 0) break;
    sub = next_subset(sub, mask);
  }
  EXPECT_EQ(seen.size(), 8u);  // 2^3 subsets of a 3-bit mask
  for (std::uint64_t s : seen) {
    EXPECT_EQ(s & ~mask, 0u);
  }
}

}  // namespace
}  // namespace duti
