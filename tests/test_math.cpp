#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(DoubleFactorial, SmallValues) {
  EXPECT_EQ(double_factorial(-1), 1u);
  EXPECT_EQ(double_factorial(0), 1u);
  EXPECT_EQ(double_factorial(1), 1u);
  EXPECT_EQ(double_factorial(2), 2u);
  EXPECT_EQ(double_factorial(3), 3u);
  EXPECT_EQ(double_factorial(4), 8u);
  EXPECT_EQ(double_factorial(5), 15u);
  EXPECT_EQ(double_factorial(7), 105u);
  EXPECT_EQ(double_factorial(9), 945u);
  EXPECT_EQ(double_factorial(10), 3840u);
}

TEST(DoubleFactorial, MatchesLogVersion) {
  for (int n = 1; n <= 25; ++n) {
    EXPECT_NEAR(std::log(static_cast<double>(double_factorial(n))),
                log_double_factorial(n), 1e-9)
        << "n=" << n;
  }
}

TEST(DoubleFactorial, OverflowThrows) {
  EXPECT_THROW((void)double_factorial(101), InvalidArgument);
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(5, -1), 0u);
}

TEST(Binomial, PascalIdentity) {
  for (int n = 2; n <= 30; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(LogBinomial, MatchesExact) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k),
                  std::log(static_cast<double>(binomial(n, k))), 1e-8);
    }
  }
}

TEST(LogBinomial, OutOfRangeIsMinusInfinity) {
  EXPECT_EQ(log_binomial(5, 6), -std::numeric_limits<double>::infinity());
}

TEST(Ipow, Basics) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_EQ(ipow(10, 19), 10000000000000000000ULL);
}

TEST(Ipow, OverflowThrows) { EXPECT_THROW((void)ipow(10, 20), InvalidArgument); }

TEST(DpowInt, MatchesStdPow) {
  for (double base : {0.5, 1.5, 2.0, 3.7}) {
    for (unsigned e = 0; e <= 20; ++e) {
      EXPECT_NEAR(dpow_int(base, e), std::pow(base, e),
                  1e-9 * std::pow(base, e));
    }
  }
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
  EXPECT_TRUE(approx_equal(0.0, 1e-12));
}

TEST(FitLine, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
}

TEST(FitLine, DegenerateThrows) {
  EXPECT_THROW((void)fit_line({1.0, 1.0}, {2.0, 3.0}), InvalidArgument);
  EXPECT_THROW((void)fit_line({1.0}, {2.0}), InvalidArgument);
}

TEST(FitPowerLaw, ExactPowerLaw) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -0.5));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, -0.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  EXPECT_THROW((void)fit_power_law({1.0, -2.0}, {1.0, 1.0}), InvalidArgument);
  EXPECT_THROW((void)fit_power_law({1.0, 2.0}, {0.0, 1.0}), InvalidArgument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_THROW((void)median({}), InvalidArgument);
}

TEST(MeanAndVariance, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(sample_variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_THROW((void)mean({}), InvalidArgument);
  EXPECT_THROW((void)sample_variance({1.0}), InvalidArgument);
}

}  // namespace
}  // namespace duti
