#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace duti {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(1234567);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(1234567);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, 0u);
}

TEST(DeriveSeed, LabelsChangeSeed) {
  const auto base = derive_seed(7);
  EXPECT_NE(base, derive_seed(7, 0));
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  EXPECT_NE(derive_seed(7, 0, 0), derive_seed(7, 0, 1));
  EXPECT_NE(derive_seed(7, 0, 1), derive_seed(7, 1, 0));
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(99, 3, 4), derive_seed(99, 3, 4));
}

TEST(Xoshiro, DeterministicStreams) {
  Rng a(5), b(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double acc = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / trials, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowStaysInRange) {
  Rng rng(17);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, NextBelowApproximatelyUniform) {
  Rng rng(23);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / trials, 0.1, 0.01);
  }
}

TEST(Xoshiro, SignIsFair) {
  Rng rng(29);
  int plus = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const int s = rng.next_sign();
    ASSERT_TRUE(s == 1 || s == -1);
    if (s == 1) ++plus;
  }
  EXPECT_NEAR(static_cast<double>(plus) / trials, 0.5, 0.01);
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Rng rng(31);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) {
      if (rng.next_bernoulli(p)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.02);
  }
}

TEST(MakeRng, DistinctStreamsAreIndependentish) {
  Rng a = make_rng(123, 0);
  Rng b = make_rng(123, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256pp>);
  SUCCEED();
}

}  // namespace
}  // namespace duti
