#include "testers/multibit.hpp"

#include <gtest/gtest.h>

#include "dist/generators.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

std::pair<double, double> success_rates(const MultibitSumTester& tester,
                                        double eps, int trials,
                                        std::uint64_t seed) {
  const auto n = tester.config().n;
  SuccessCounter uniform_ok, far_ok;
  const UniformSource uniform(n);
  for (int t = 0; t < trials; ++t) {
    Rng rng = make_rng(seed, 1, t);
    uniform_ok.record(tester.run(uniform, rng));
    Rng far_rng = make_rng(seed, 2, t);
    const DistributionSource far(gen::paninski(n, eps, far_rng));
    Rng run_rng = make_rng(seed, 3, t);
    far_ok.record(!tester.run(far, run_rng));
  }
  return {uniform_ok.rate(), far_ok.rate()};
}

TEST(EncodeCount, SaturatesAtRBits) {
  EXPECT_EQ(MultibitSumTester::encode_count(0, 3, 0), 0u);
  EXPECT_EQ(MultibitSumTester::encode_count(6, 3, 0), 6u);
  EXPECT_EQ(MultibitSumTester::encode_count(7, 3, 0), 7u);
  EXPECT_EQ(MultibitSumTester::encode_count(8, 3, 0), 7u);
  EXPECT_EQ(MultibitSumTester::encode_count(1000, 3, 0), 7u);
  EXPECT_EQ(MultibitSumTester::encode_count(1, 1, 0), 1u);
  EXPECT_EQ(MultibitSumTester::encode_count(5, 1, 0), 1u);
}

TEST(EncodeCount, WindowOffsetShiftsAndClamps) {
  EXPECT_EQ(MultibitSumTester::encode_count(10, 3, 8), 2u);
  EXPECT_EQ(MultibitSumTester::encode_count(8, 3, 8), 0u);
  EXPECT_EQ(MultibitSumTester::encode_count(3, 3, 8), 0u);  // below window
  EXPECT_EQ(MultibitSumTester::encode_count(100, 3, 8), 7u);
}

TEST(MultibitSumTester, WindowCenteredAtUniformMean) {
  Rng rng(99);
  // n=64, q=32: lambda = 496/64 = 7.75 -> ceil 8; r=3 -> half-window 4,
  // offset 4. r large enough to cover zero -> offset 0.
  const MultibitSumTester t3({64, 4, 32, 0.5, 3}, rng);
  EXPECT_EQ(t3.window_offset(), 4u);
  const MultibitSumTester t8({64, 4, 32, 0.5, 8}, rng);
  EXPECT_EQ(t8.window_offset(), 0u);
}

TEST(MultibitSumTester, ConfigValidation) {
  Rng rng(1);
  EXPECT_THROW(MultibitSumTester({0, 4, 8, 0.5, 2}, rng), InvalidArgument);
  EXPECT_THROW(MultibitSumTester({64, 4, 8, 0.5, 0}, rng), InvalidArgument);
  EXPECT_THROW(MultibitSumTester({64, 4, 8, 0.5, 25}, rng), InvalidArgument);
  EXPECT_THROW(MultibitSumTester({64, 4, 1, 0.5, 2}, rng), InvalidArgument);
}

TEST(MultibitSumTester, SucceedsWithGenerousSamples) {
  Rng rng(2);
  const MultibitSumTester tester({1024, 16, 96, 0.5, 8}, rng);
  const auto [u, f] = success_rates(tester, 0.5, 150, 21);
  EXPECT_GE(u, 0.7);
  EXPECT_GE(f, 0.7);
}

TEST(MultibitSumTester, MoreBitsHelpAtMarginalQ) {
  // At a q where the 1-bit saturating encoding loses most of the signal,
  // wider messages should (weakly) improve far-rejection.
  const std::uint64_t n = 1024;
  const double eps = 0.5;
  const unsigned k = 32, q = 56;
  Rng rng1(3), rng2(4);
  const MultibitSumTester narrow({n, k, q, eps, 1}, rng1);
  const MultibitSumTester wide({n, k, q, eps, 10}, rng2);
  const auto [un, fn_] = success_rates(narrow, eps, 250, 22);
  const auto [uw, fw] = success_rates(wide, eps, 250, 23);
  EXPECT_GE(uw, 0.6);
  EXPECT_GE(fw + 0.08, fn_);  // wide is not (statistically) worse
  (void)un;
}

TEST(MultibitSumTester, ThresholdScalesWithK) {
  Rng rng1(5), rng2(6);
  const MultibitSumTester k8({512, 8, 32, 0.5, 4}, rng1);
  const MultibitSumTester k64({512, 64, 32, 0.5, 4}, rng2);
  EXPECT_GT(k64.sum_threshold(), k8.sum_threshold());
}

TEST(MultibitSumTester, ProtocolMessagesHaveConfiguredWidth) {
  Rng rng(7);
  const MultibitSumTester tester({256, 4, 16, 0.5, 5}, rng);
  const auto protocol = tester.make_protocol();
  const UniformSource uniform(256);
  Rng run_rng(8);
  const auto messages = protocol.collect(uniform, run_rng);
  ASSERT_EQ(messages.size(), 4u);
  for (const auto& m : messages) {
    EXPECT_EQ(m.width, 5u);
    EXPECT_LT(m.bits, 32u);
  }
}

}  // namespace
}  // namespace duti
