#include "chaos/engine.hpp"
#include "chaos/oracles.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"

#include <gtest/gtest.h>

#include <set>

namespace duti::chaos {
namespace {

TEST(ChaosSchedule, TokenRoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    const std::string token = serialize_token(spec);
    const ScenarioSpec back = parse_token(token);
    EXPECT_EQ(serialize_token(back), token) << "seed " << seed;
    EXPECT_EQ(spec_fingerprint(back), spec_fingerprint(spec))
        << "seed " << seed;
  }
}

TEST(ChaosSchedule, GenerationIsDeterministicAndVaried) {
  std::set<std::uint64_t> fingerprints;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    EXPECT_EQ(spec_fingerprint(generate_scenario(seed)),
              spec_fingerprint(generate_scenario(seed)));
    fingerprints.insert(spec_fingerprint(generate_scenario(seed)));
  }
  // Seeds name distinct schedules (a tiny collision rate would be fine;
  // total collapse would mean the seed is ignored).
  EXPECT_GE(fingerprints.size(), 35u);
}

TEST(ChaosSchedule, GeneratorRespectsStructuralConstraints) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    ASSERT_GE(spec.components.size(), 1u);
    ASSERT_LE(spec.components.size(), 5u);
    for (const auto& c : spec.components) {
      if (c.kind == FaultComponent::Kind::kCrash ||
          c.kind == FaultComponent::Kind::kByzantine) {
        EXPECT_NE(c.node, 0u) << "referee faulted, seed " << seed;
        EXPECT_LT(c.node, spec.k());
      }
    }
    // apply_schedule validates edges and slot uniqueness; it must accept
    // everything the generator emits.
    Network net = build_network(spec);
    EXPECT_NO_THROW(apply_schedule(spec, net)) << "seed " << seed;
  }
}

TEST(ChaosSchedule, ParseRejectsMalformedTokens) {
  EXPECT_THROW((void)parse_token(""), InvalidArgument);
  EXPECT_THROW((void)parse_token("chaos2;t=star"), InvalidArgument);
  EXPECT_THROW((void)parse_token("chaos1;vp=10"), InvalidArgument);  // no topo
  EXPECT_THROW((void)parse_token("chaos1;t=moebius"), InvalidArgument);
  EXPECT_THROW((void)parse_token("chaos1;t=star;c=warp:1:2"),
               InvalidArgument);
  EXPECT_THROW((void)parse_token("chaos1;t=star;c=crash:1"),
               InvalidArgument);  // arity
  // Star has no 1<->2 edge: a syntactically fine token can still name an
  // impossible fault, and must fail loudly.
  EXPECT_THROW((void)parse_token("chaos1;t=star;c=out:1:2:0:1"),
               InvalidArgument);
  // Two outages on one directed link exceed the LinkFault slot.
  EXPECT_THROW(
      (void)parse_token("chaos1;t=star;c=out:1:0:0:1;c=out:1:0:5:1"),
      InvalidArgument);
}

TEST(ChaosSchedule, BurstWindowOutsideProtocolIsInert) {
  ScenarioSpec spec;
  spec.topo = Topology::kPath;
  spec.vote_pct = 20;
  spec.vote_seed = 9;
  spec.run_seed = 9;
  FaultComponent burst;
  burst.kind = FaultComponent::Kind::kDrop;
  burst.from = 3;
  burst.to = 2;
  burst.pct = 90;
  burst.lo = 100000;  // far beyond any round the protocol executes
  burst.len = 50;
  spec.components.push_back(burst);
  ScenarioSpec clean = spec;
  clean.components.clear();
  EXPECT_EQ(run_scenario(spec).fingerprint(),
            run_scenario(clean).fingerprint());
}

TEST(ChaosPrediction, MatchesHealedRunUnderGridCrash) {
  // Grid 3x4 BFS tree from corner 0: crashing node 1 forces its subtree
  // to heal sideways. The analytic delivery set must match the run.
  ScenarioSpec spec;
  spec.topo = Topology::kGrid;
  spec.vote_pct = 40;
  spec.vote_seed = 17;
  spec.run_seed = 17;
  FaultComponent crash;
  crash.kind = FaultComponent::Kind::kCrash;
  crash.node = 1;
  crash.lo = 0;
  spec.components.push_back(crash);

  const Prediction p = predict(spec, chaos_transport_config());
  ASSERT_TRUE(p.within_tolerance);
  EXPECT_FALSE(p.crash_free);
  const RunResult r = run_scenario(spec);
  EXPECT_EQ(r.values_reached, p.predicted_reached);
  EXPECT_EQ(r.values_lost, p.predicted_lost);
  EXPECT_EQ(r.root_sum, p.predicted_rejects);
  EXPECT_EQ(r.outcome, p.predicted_outcome);

  const ScenarioReport report = check_scenario(spec);
  EXPECT_TRUE(report.violations.empty())
      << describe_failure(report.token, report.violations);
}

TEST(ChaosPrediction, ProbabilisticFaultsAreOutsideTolerance) {
  ScenarioSpec spec = generate_scenario(1);
  FaultComponent burst;
  burst.kind = FaultComponent::Kind::kCorrupt;
  burst.from = spec.topo == Topology::kStar ? 1u : 0u;
  burst.to = spec.topo == Topology::kStar ? 0u : 1u;
  burst.pct = 10;
  burst.lo = 0;
  burst.len = 8;
  spec.components.assign(1, burst);
  EXPECT_FALSE(predict(spec, chaos_transport_config()).within_tolerance);
}

TEST(ChaosOracles, RegistryCoversTheContract) {
  std::set<std::string> names;
  for (const auto& entry : oracle_registry()) names.insert(entry.name);
  EXPECT_TRUE(names.count("net-conservation"));
  EXPECT_TRUE(names.count("transport-accounting"));
  EXPECT_TRUE(names.count("replay-determinism"));
  EXPECT_TRUE(names.count("no-spurious-abort"));
  EXPECT_TRUE(names.count("predicted-verdict"));
  EXPECT_TRUE(names.count("baseline-agreement"));
}

/// The acceptance-criterion reproducer: two in-tolerance outage windows on
/// the path's leaf link — one kills the first DATA attempt, the other
/// kills the surviving attempt's ACK. A healthy transport (4 retries)
/// shrugs; a transport short on retries gives up, re-routes nowhere, and
/// double-counts the leaf value as lost.
ScenarioSpec leaf_link_squeeze() {
  ScenarioSpec spec;
  spec.topo = Topology::kPath;
  spec.vote_pct = 10;
  spec.vote_seed = 42;
  spec.run_seed = 42;
  FaultComponent fwd;  // kills the round-0 DATA attempt 7 -> 6
  fwd.kind = FaultComponent::Kind::kOutage;
  fwd.from = 7;
  fwd.to = 6;
  fwd.lo = 0;
  fwd.len = 1;
  FaultComponent rev;  // kills the round-3 ACK 6 -> 7
  rev.kind = FaultComponent::Kind::kOutage;
  rev.from = 6;
  rev.to = 7;
  rev.lo = 3;
  rev.len = 1;
  spec.components.push_back(fwd);
  spec.components.push_back(rev);
  return spec;
}

TEST(ChaosMetaTest, ShippedTreeSurvivesTheSqueeze) {
  const ScenarioReport report = check_scenario(leaf_link_squeeze());
  EXPECT_TRUE(report.violations.empty())
      << describe_failure(report.token, report.violations);
}

TEST(ChaosMetaTest, InjectedRetryDeficitIsCaughtAndShrunk) {
  // The injected bug: the transport silently gets 3 fewer retries than
  // the tolerance contract advertises.
  ChaosHooks buggy;
  buggy.retry_deficit = 3;

  // Bury the real trigger among decoy components the shrinker must strip:
  // a Byzantine vote (absorbed exactly by the prediction) and an outage in
  // dead air after the protocol has finished.
  ScenarioSpec spec = leaf_link_squeeze();
  FaultComponent byz;
  byz.kind = FaultComponent::Kind::kByzantine;
  byz.node = 3;
  FaultComponent dead_air;
  dead_air.kind = FaultComponent::Kind::kOutage;
  dead_air.from = 0;
  dead_air.to = 1;
  dead_air.lo = 5000;
  dead_air.len = 1;
  spec.components.push_back(byz);
  spec.components.push_back(dead_air);

  // Caught: the oracle registry flags the schedule (it is within the
  // advertised tolerance, so the broken transport cannot hide).
  const ScenarioReport report = check_scenario(spec, buggy);
  ASSERT_FALSE(report.violations.empty());
  bool predicted_verdict_fired = false;
  for (const auto& v : report.violations) {
    if (v.oracle == "predicted-verdict") predicted_verdict_fired = true;
  }
  EXPECT_TRUE(predicted_verdict_fired)
      << describe_failure(report.token, report.violations);

  // Shrunk: to the two-outage core (<= 2 fault components), still failing.
  const ShrinkResult shrunk = shrink_failing(spec, buggy);
  EXPECT_LE(shrunk.minimal.components.size(), 2u);
  ASSERT_FALSE(shrunk.violations.empty());
  EXPECT_GE(shrunk.scenarios_tried, 4u);

  // The printed token reproduces through the public --replay path...
  const ScenarioSpec replayed = parse_token(shrunk.token);
  EXPECT_FALSE(check_scenario(replayed, buggy).violations.empty());
  // ...and the same minimal schedule passes on the shipped (unbroken)
  // transport, pinning the failure on the injected bug.
  EXPECT_TRUE(check_scenario(replayed).violations.empty());
}

TEST(ChaosCampaign, CleanAndBitIdenticalAcrossPoolWidths) {
  CampaignConfig cfg;
  cfg.seed0 = 1;
  cfg.num_seeds = 24;
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const CampaignSummary a = run_campaign(cfg, pool1);
  const CampaignSummary b = run_campaign(cfg, pool4);
  EXPECT_TRUE(a.clean()) << (a.failures.empty()
                                 ? ""
                                 : describe_failure(
                                       a.failures[0].token,
                                       a.failures[0].violations));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.total_components, b.total_components);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.outcome_counts[i], b.outcome_counts[i]);
  }
  // The sweep exercises both verdicts somewhere (sanity on scenario mix).
  EXPECT_GT(a.outcome_counts[0] + a.outcome_counts[1] +
                a.outcome_counts[2] + a.outcome_counts[3],
            0u);
}

TEST(ChaosCampaign, BuggyTransportFailsSomeSeedAndReportsTokens) {
  // A short sweep with the injected bug must flag at least one seed, and
  // every failure carries a parseable replay token plus a shrunk token no
  // larger than the original schedule.
  CampaignConfig cfg;
  cfg.seed0 = 1;
  cfg.num_seeds = 48;
  cfg.hooks.retry_deficit = 4;  // transport gets ZERO retries
  ThreadPool pool(2);
  const CampaignSummary summary = run_campaign(cfg, pool);
  ASSERT_FALSE(summary.clean());
  for (const auto& f : summary.failures) {
    EXPECT_NO_THROW((void)parse_token(f.token));
    EXPECT_NO_THROW((void)parse_token(f.shrunk_token));
    EXPECT_LE(f.shrunk_components, f.components);
    EXPECT_FALSE(f.violations.empty());
  }
}

}  // namespace
}  // namespace duti::chaos
