#include "testers/independence.hpp"

#include <gtest/gtest.h>

#include "dist/generators.hpp"
#include "util/confidence.hpp"

namespace duti {
namespace {

/// A maximally dependent joint: y == x (uniform diagonal on [n] x [n]).
DiscreteDistribution diagonal_joint(std::uint64_t n) {
  std::vector<double> pmf(n * n, 0.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    pmf[i * n + i] = 1.0 / static_cast<double>(n);
  }
  return DiscreteDistribution(std::move(pmf));
}

TEST(JointPairSource, RowMajorDecoding) {
  // Point mass on (x=2, y=1) over [4] x [3].
  std::vector<double> pmf(12, 0.0);
  pmf[2 * 3 + 1] = 1.0;
  const JointPairSource source(DiscreteDistribution(std::move(pmf)), 4, 3);
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    const auto [x, y] = source.sample(rng);
    EXPECT_EQ(x, 2u);
    EXPECT_EQ(y, 1u);
  }
}

TEST(JointPairSource, Validation) {
  EXPECT_THROW(JointPairSource(DiscreteDistribution::uniform(10), 4, 3),
               InvalidArgument);
}

TEST(ProductPairSource, MarginalsIndependent) {
  const ProductPairSource source(gen::zipf(8, 1.0),
                                 DiscreteDistribution::uniform(4));
  EXPECT_EQ(source.domain_x(), 8u);
  EXPECT_EQ(source.domain_y(), 4u);
  Rng rng(2);
  // Empirical correlation of indicator events should be ~ product.
  int both = 0, first = 0, second = 0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    const auto [x, y] = source.sample(rng);
    if (x == 0) ++first;
    if (y == 0) ++second;
    if (x == 0 && y == 0) ++both;
  }
  const double p1 = static_cast<double>(first) / trials;
  const double p2 = static_cast<double>(second) / trials;
  EXPECT_NEAR(static_cast<double>(both) / trials, p1 * p2, 0.01);
}

TEST(IndependenceTester, AcceptsProductDistributions) {
  const std::uint64_t nx = 16, ny = 16;
  const double eps = 0.8;
  const unsigned m = IndependenceTester::sufficient_m(nx, ny, eps, 6.0);
  const IndependenceTester tester(nx, ny, eps, m);
  SuccessCounter ok;
  for (int t = 0; t < 100; ++t) {
    Rng gen_rng = make_rng(3, t);
    const ProductPairSource source(gen::random_perturbation(nx, 0.5, gen_rng),
                                   gen::zipf(ny, 0.5));
    Rng rng = make_rng(4, t);
    ok.record(tester.run(source, rng));
  }
  EXPECT_GE(ok.rate(), 0.7);
}

TEST(IndependenceTester, RejectsDiagonalJoint) {
  // The diagonal is far from every product distribution (its closest
  // product is uniform on the grid, at l1 distance ~ 2(1 - 1/n)).
  const std::uint64_t n = 16;
  const double eps = 0.8;
  const unsigned m = IndependenceTester::sufficient_m(n, n, eps, 6.0);
  const IndependenceTester tester(n, n, eps, m);
  const JointPairSource source(diagonal_joint(n), n, n);
  SuccessCounter rejects;
  for (int t = 0; t < 100; ++t) {
    Rng rng = make_rng(5, t);
    rejects.record(!tester.run(source, rng));
  }
  EXPECT_GE(rejects.rate(), 0.75);
}

TEST(IndependenceTester, RejectsPartialCorrelation) {
  // Mixture: with prob 1/2 sample the diagonal, else the product — still
  // far from independent.
  const std::uint64_t n = 16;
  auto diag = diagonal_joint(n);
  const auto uniform_grid = DiscreteDistribution::uniform(n * n);
  const auto mixed = diag.mix(uniform_grid, 0.5);
  const double eps = 0.4;
  const unsigned m = IndependenceTester::sufficient_m(n, n, eps, 6.0);
  const IndependenceTester tester(n, n, eps, m);
  const JointPairSource source(mixed, n, n);
  SuccessCounter rejects;
  for (int t = 0; t < 100; ++t) {
    Rng rng = make_rng(6, t);
    rejects.record(!tester.run(source, rng));
  }
  EXPECT_GE(rejects.rate(), 0.7);
}

TEST(IndependenceTester, Validation) {
  EXPECT_THROW(IndependenceTester(1, 4, 0.5, 10), InvalidArgument);
  EXPECT_THROW(IndependenceTester(4, 4, 0.5, 1), InvalidArgument);
  const IndependenceTester tester(4, 4, 0.5, 10);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> wrong(5);
  Rng rng(7);
  EXPECT_THROW((void)tester.accept(wrong, rng), InvalidArgument);
}

TEST(IndependenceTester, UniformJointIsAccepted) {
  // Uniform over the grid IS a product (uniform x uniform).
  const std::uint64_t n = 16;
  const double eps = 0.8;
  const unsigned m = IndependenceTester::sufficient_m(n, n, eps, 6.0);
  const IndependenceTester tester(n, n, eps, m);
  const JointPairSource source(DiscreteDistribution::uniform(n * n), n, n);
  SuccessCounter ok;
  for (int t = 0; t < 100; ++t) {
    Rng rng = make_rng(8, t);
    ok.record(tester.run(source, rng));
  }
  EXPECT_GE(ok.rate(), 0.75);
}

}  // namespace
}  // namespace duti
