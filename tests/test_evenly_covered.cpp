#include "fourier/evenly_covered.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {
namespace {

TEST(EvenlyCovered, Predicate) {
  const std::vector<std::uint64_t> x{3, 5, 3, 5, 7};
  EXPECT_TRUE(is_evenly_covered(x, 0b00000));   // empty S
  EXPECT_TRUE(is_evenly_covered(x, 0b01111));   // {3,5,3,5}
  EXPECT_FALSE(is_evenly_covered(x, 0b10000));  // {7}
  EXPECT_FALSE(is_evenly_covered(x, 0b00111));  // {3,5,3}
  EXPECT_TRUE(is_evenly_covered(x, 0b00101));   // {3,3}
  EXPECT_FALSE(is_evenly_covered(x, 0b11111));  // {3,5,3,5,7}
}

TEST(EvenlyCovered, FourOfAKind) {
  const std::vector<std::uint64_t> x{2, 2, 2, 2};
  EXPECT_TRUE(is_evenly_covered(x, 0b1111));
  EXPECT_TRUE(is_evenly_covered(x, 0b0011));
  EXPECT_FALSE(is_evenly_covered(x, 0b0111));
}

TEST(CountEvenSequences, SmallClosedForms) {
  // Length 2 over alphabet N: the two entries must match -> N sequences.
  for (std::uint64_t alphabet : {1ULL, 2ULL, 4ULL, 16ULL}) {
    EXPECT_DOUBLE_EQ(count_even_sequences(alphabet, 2),
                     static_cast<double>(alphabet));
  }
  // Odd lengths: impossible.
  EXPECT_DOUBLE_EQ(count_even_sequences(8, 1), 0.0);
  EXPECT_DOUBLE_EQ(count_even_sequences(8, 3), 0.0);
  // Length 0: the empty sequence.
  EXPECT_DOUBLE_EQ(count_even_sequences(8, 0), 1.0);
  // Length 4 over alphabet N: 3N^2 - 2N (pairings minus double-counted
  // all-equal). Check against the DP.
  for (std::uint64_t alphabet : {2ULL, 3ULL, 8ULL}) {
    const double expected = 3.0 * static_cast<double>(alphabet * alphabet) -
                            2.0 * static_cast<double>(alphabet);
    EXPECT_DOUBLE_EQ(count_even_sequences(alphabet, 4), expected);
  }
}

TEST(CountEvenSequences, MatchesBruteForce) {
  // Brute-force enumeration over all sequences for tiny cases.
  for (std::uint64_t alphabet : {2ULL, 3ULL}) {
    for (unsigned m : {2u, 4u, 6u}) {
      double brute = 0.0;
      std::uint64_t total = 1;
      for (unsigned i = 0; i < m; ++i) total *= alphabet;
      std::vector<std::uint64_t> seq(m);
      for (std::uint64_t idx = 0; idx < total; ++idx) {
        std::uint64_t rest = idx;
        for (unsigned j = 0; j < m; ++j) {
          seq[j] = rest % alphabet;
          rest /= alphabet;
        }
        if (is_evenly_covered(seq, (1ULL << m) - 1)) brute += 1.0;
      }
      EXPECT_DOUBLE_EQ(count_even_sequences(alphabet, m), brute)
          << "alphabet=" << alphabet << " m=" << m;
    }
  }
}

TEST(CountEvenSequences, PinsExactValuesThrough128Bits) {
  // Length 6 closed form: a(1 + 15(a-1)^2) = 15a^3 - 30a^2 + 16a.
  for (std::uint64_t alphabet : {1ULL, 2ULL, 3ULL, 8ULL, 100ULL}) {
    const auto a = static_cast<double>(alphabet);
    EXPECT_DOUBLE_EQ(count_even_sequences(alphabet, 6),
                     15.0 * a * a * a - 30.0 * a * a + 16.0 * a);
  }
  EXPECT_DOUBLE_EQ(count_even_sequences(2, 6), 32.0);
  EXPECT_DOUBLE_EQ(count_even_sequences(3, 6), 183.0);
  // Alphabet 2: exactly 2^{m-1} sequences (each letter even). Powers of two
  // are exactly representable, so the 128-bit DP must pin them exactly —
  // including 2^125, far past the old double-accumulation regime.
  for (unsigned m : {2u, 10u, 40u, 64u, 126u}) {
    EXPECT_EQ(count_even_sequences(2, m), std::ldexp(1.0, int(m) - 1)) << m;
  }
}

TEST(CountEvenSequences, LogSpaceFallbackPastExactRange) {
  // 2^129 overflows the 128-bit accumulators: the DP must hand off to the
  // log-space path and still land within floating-point noise of 2^129.
  const double near = count_even_sequences(2, 130);
  EXPECT_NEAR(near / std::ldexp(1.0, 129), 1.0, 1e-9);
  // The log-space entry point agrees with the exact DP where both work...
  for (std::uint64_t alphabet : {2ULL, 5ULL, 64ULL}) {
    for (unsigned m : {2u, 4u, 8u, 20u}) {
      EXPECT_NEAR(std::exp(count_even_sequences_log(alphabet, m)),
                  count_even_sequences(alphabet, m),
                  1e-9 * count_even_sequences(alphabet, m))
          << "alphabet=" << alphabet << " m=" << m;
    }
  }
  // ...reports -inf for odd lengths (count zero)...
  EXPECT_EQ(count_even_sequences_log(8, 3),
            -std::numeric_limits<double>::infinity());
  // ...and handles alphabets no fixed-width integer could: for a = 2^40,
  // m = 8 the count is 105 a^4 (1 - O(1/a)), so the log sits within ~4/a
  // of log(105) + 160 log 2.
  EXPECT_NEAR(count_even_sequences_log(1ULL << 40, 8),
              std::log(105.0) + 160.0 * std::log(2.0), 1e-9);
}

TEST(EvenlyCovered, InsertionSortPathMatchesParityReference) {
  // The predicate sorts with insertion sort below 17 elements and std::sort
  // above; both paths must agree with an order-free parity-map reference at
  // every |S| straddling the cutoff.
  Rng rng(97);
  for (unsigned q : {8u, 16u, 17u, 24u, 40u}) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<std::uint64_t> x(q);
      for (auto& xi : x) xi = rng() % 5;  // few values -> collisions likely
      const std::uint64_t mask =
          rng() & ((q >= 64 ? ~0ULL : (1ULL << q) - 1));
      std::map<std::uint64_t, std::uint64_t> parity;
      for (unsigned j = 0; j < q; ++j) {
        if ((mask >> j) & 1ULL) ++parity[x[j]];
      }
      bool expected = true;
      for (const auto& [value, times] : parity) {
        (void)value;
        if (times % 2 != 0) expected = false;
      }
      EXPECT_EQ(is_evenly_covered(x, mask), expected)
          << "q=" << q << " mask=" << mask;
    }
  }
}

class CountXsTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(CountXsTest, MatchesBruteForceAndIsMaskInvariant) {
  const auto [ell, q] = GetParam();
  for (unsigned s_size = 0; s_size <= q; ++s_size) {
    const double via_dp = count_x_s(ell, q, s_size);
    // Prop 5.2(1): |X_S| depends only on |S| — verify across several masks.
    double first = -1.0;
    for (std::uint64_t mask = lowest_mask(s_size);
         mask != 0 && mask < (1ULL << q); mask = next_same_popcount(mask)) {
      const double brute = count_x_s_brute(ell, q, mask);
      if (first < 0) {
        first = brute;
      } else {
        ASSERT_DOUBLE_EQ(brute, first);
      }
    }
    if (s_size == 0) {
      first = count_x_s_brute(ell, q, 0);
    }
    EXPECT_DOUBLE_EQ(via_dp, first)
        << "ell=" << ell << " q=" << q << " |S|=" << s_size;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDomains, CountXsTest,
                         ::testing::Values(std::make_tuple(1u, 3u),
                                           std::make_tuple(2u, 3u),
                                           std::make_tuple(2u, 4u),
                                           std::make_tuple(3u, 4u)));

TEST(Prop52, BoundDominatesExactCount) {
  for (unsigned ell : {1u, 2u, 3u}) {
    for (unsigned q : {2u, 4u, 6u}) {
      for (unsigned s_size = 0; s_size <= q; s_size += 2) {
        EXPECT_LE(count_x_s(ell, q, s_size),
                  prop52_bound(ell, q, s_size) * (1.0 + 1e-12))
            << "ell=" << ell << " q=" << q << " |S|=" << s_size;
      }
    }
  }
}

TEST(Prop52, OddSizeIsZero) {
  EXPECT_DOUBLE_EQ(prop52_bound(3, 5, 3), 0.0);
  EXPECT_DOUBLE_EQ(count_x_s(3, 5, 3), 0.0);
}

TEST(Gosper, EnumeratesExactlyTheRightMasks) {
  const unsigned q = 6, bits = 3;
  std::uint64_t count = 0;
  for (std::uint64_t m = lowest_mask(bits); m != 0 && m < (1ULL << q);
       m = next_same_popcount(m)) {
    ASSERT_EQ(static_cast<unsigned>(std::popcount(m)), bits);
    ++count;
  }
  EXPECT_EQ(count, binomial(6, 3));
}

TEST(ArStatistic, ByHand) {
  // x = (a, a, b, b): S of size 2 evenly covered: {0,1} and {2,3} -> a_1=2.
  const std::vector<std::uint64_t> x{7, 7, 9, 9};
  EXPECT_EQ(a_r(x, 1), 2u);
  // size-4 sets: the whole thing is evenly covered -> a_2 = 1.
  EXPECT_EQ(a_r(x, 2), 1u);
  EXPECT_EQ(a_r(x, 3), 0u);  // 2r > q
  EXPECT_EQ(a_r(x, 0), 1u);  // empty set only
}

TEST(ArStatistic, AllDistinctGivesZero) {
  const std::vector<std::uint64_t> x{1, 2, 3, 4, 5};
  for (unsigned r = 1; r <= 2; ++r) {
    EXPECT_EQ(a_r(x, r), 0u);
  }
}

TEST(ArStatistic, AllEqual) {
  const std::vector<std::uint64_t> x{4, 4, 4, 4};
  EXPECT_EQ(a_r(x, 1), binomial(4, 2));
  EXPECT_EQ(a_r(x, 2), 1u);
}

TEST(ArMoments, FirstMomentMatchesCombinatorialIdentity) {
  // E_x[a_r(x)] = C(q, 2r) |X_{2r}| / (n/2)^q  (the identity used in
  // Section 5.1's moment estimation).
  for (unsigned ell : {1u, 2u}) {
    for (unsigned q : {2u, 4u}) {
      for (unsigned r = 1; 2 * r <= q; ++r) {
        const double lhs = a_r_moment_exact(ell, q, r, 1);
        const double side = std::ldexp(1.0, static_cast<int>(ell));
        const double rhs = static_cast<double>(binomial(static_cast<int>(q),
                                                        static_cast<int>(2 * r))) *
                           count_even_sequences(1ULL << ell, 2 * r) /
                           std::pow(side, 2.0 * r);
        EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, rhs))
            << "ell=" << ell << " q=" << q << " r=" << r;
      }
    }
  }
}

TEST(ArMoments, McConvergesToExact) {
  Rng rng(42);
  const unsigned ell = 2, q = 4, r = 1, m = 2;
  const double exact = a_r_moment_exact(ell, q, r, m);
  const double mc = a_r_moment_mc(ell, q, r, m, 200000, rng);
  EXPECT_NEAR(mc, exact, 0.05 * std::max(1.0, exact));
}

class Lemma55Test : public ::testing::TestWithParam<
                        std::tuple<unsigned, unsigned, unsigned, unsigned>> {};

TEST_P(Lemma55Test, BoundDominatesExactMoment) {
  const auto [ell, q, r, m] = GetParam();
  if (2 * r > q) GTEST_SKIP();
  const double exact = a_r_moment_exact(ell, q, r, m);
  if (exact == 0.0) GTEST_SKIP();
  EXPECT_LE(std::log(exact), lemma55_log_bound(ell, q, r, m) + 1e-9)
      << "ell=" << ell << " q=" << q << " r=" << r << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    MomentSweep, Lemma55Test,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),   // ell
                       ::testing::Values(2u, 4u, 6u),   // q
                       ::testing::Values(1u, 2u),       // r
                       ::testing::Values(1u, 2u, 3u))); // m

TEST(Lemma55, CapacityGuard) {
  EXPECT_THROW((void)a_r_moment_exact(10, 10, 1, 1), CapacityError);
  EXPECT_THROW((void)count_x_s_brute(10, 10, 1), CapacityError);
}

}  // namespace
}  // namespace duti
