#include "sim/decision_rule.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace duti {
namespace {

using Votes = std::vector<std::uint8_t>;

TEST(DecisionRule, AndRule) {
  const auto rule = DecisionRule::and_rule();
  EXPECT_TRUE(rule.decide(Votes{1, 1, 1}));
  EXPECT_FALSE(rule.decide(Votes{1, 0, 1}));
  EXPECT_FALSE(rule.decide(Votes{0, 0, 0}));
  EXPECT_TRUE(rule.decide(Votes{}));  // vacuous truth
  EXPECT_EQ(rule.name(), "AND");
}

TEST(DecisionRule, OrRule) {
  const auto rule = DecisionRule::or_rule();
  EXPECT_TRUE(rule.decide(Votes{0, 0, 1}));
  EXPECT_FALSE(rule.decide(Votes{0, 0, 0}));
  EXPECT_TRUE(rule.decide(Votes{1, 1, 1}));
}

TEST(DecisionRule, ThresholdSemantics) {
  // Reject iff at least T rejections (zeros).
  const auto t2 = DecisionRule::threshold(2);
  EXPECT_TRUE(t2.decide(Votes{1, 1, 1, 1}));
  EXPECT_TRUE(t2.decide(Votes{0, 1, 1, 1}));   // one reject < T
  EXPECT_FALSE(t2.decide(Votes{0, 0, 1, 1}));  // two rejects >= T
  EXPECT_FALSE(t2.decide(Votes{0, 0, 0, 0}));
}

TEST(DecisionRule, ThresholdOneIsAndRule) {
  const auto t1 = DecisionRule::threshold(1);
  const auto and_r = DecisionRule::and_rule();
  for (std::uint32_t bits = 0; bits < 16; ++bits) {
    Votes v(4);
    for (unsigned i = 0; i < 4; ++i) {
      v[i] = static_cast<std::uint8_t>((bits >> i) & 1U);
    }
    EXPECT_EQ(t1.decide(v), and_r.decide(v)) << "bits=" << bits;
  }
}

TEST(DecisionRule, ThresholdValidation) {
  EXPECT_THROW(DecisionRule::threshold(0), InvalidArgument);
}

TEST(DecisionRule, Majority) {
  const auto rule = DecisionRule::majority();
  EXPECT_TRUE(rule.decide(Votes{1, 1, 0}));
  EXPECT_FALSE(rule.decide(Votes{0, 0, 1}));
  EXPECT_TRUE(rule.decide(Votes{1, 0}));  // tie -> accept
}

TEST(DecisionRule, Parity) {
  const auto rule = DecisionRule::parity();
  EXPECT_TRUE(rule.decide(Votes{1, 1, 1}));   // zero rejects: even
  EXPECT_FALSE(rule.decide(Votes{0, 1, 1}));  // one reject: odd
  EXPECT_TRUE(rule.decide(Votes{0, 0, 1}));   // two: even
}

TEST(DecisionRule, CustomRule) {
  const auto rule = DecisionRule::custom(
      "first-player-dictates",
      [](std::span<const std::uint8_t> votes) { return votes[0] != 0; });
  EXPECT_TRUE(rule.decide(Votes{1, 0, 0}));
  EXPECT_FALSE(rule.decide(Votes{0, 1, 1}));
  EXPECT_EQ(rule.name(), "first-player-dictates");
  EXPECT_THROW(DecisionRule::custom("x", nullptr), InvalidArgument);
}

TEST(DecisionRule, ThresholdNameEncodesT) {
  EXPECT_EQ(DecisionRule::threshold(7).name(), "threshold-7");
}

TEST(DecisionRule, SymmetricRuleSeesOnlyCounts) {
  const auto rule = DecisionRule::symmetric(
      "accept-unless-quarter-reject",
      [](std::uint64_t rejects, std::uint64_t k) {
        return 4 * rejects < k;
      });
  EXPECT_TRUE(rule.decide(Votes{1, 1, 1, 1}));
  EXPECT_FALSE(rule.decide(Votes{0, 1, 1, 1}));
  // Permutation invariance: any arrangement of the same counts agrees.
  EXPECT_EQ(rule.decide(Votes{0, 1, 1, 1, 1, 1, 1, 1}),
            rule.decide(Votes{1, 1, 1, 0, 1, 1, 1, 1}));
  EXPECT_THROW(DecisionRule::symmetric("x", nullptr), InvalidArgument);
}

TEST(DecisionRule, BuiltInRulesAreSymmetric) {
  // AND / OR / threshold / majority / parity all depend on the reject
  // count only: check permutation invariance exhaustively for k = 5.
  const std::vector<DecisionRule> rules{
      DecisionRule::and_rule(), DecisionRule::or_rule(),
      DecisionRule::threshold(2), DecisionRule::majority(),
      DecisionRule::parity()};
  for (const auto& rule : rules) {
    for (std::uint32_t bits = 0; bits < 32; ++bits) {
      Votes v(5);
      int rejects = 0;
      for (int i = 0; i < 5; ++i) {
        v[static_cast<std::size_t>(i)] = (bits >> i) & 1U;
        if (v[static_cast<std::size_t>(i)] == 0) ++rejects;
      }
      // Canonical arrangement with the same count.
      Votes canonical(5, 1);
      for (int i = 0; i < rejects; ++i) canonical[static_cast<std::size_t>(i)] = 0;
      ASSERT_EQ(rule.decide(v), rule.decide(canonical))
          << rule.name() << " bits=" << bits;
    }
  }
}

}  // namespace
}  // namespace duti
