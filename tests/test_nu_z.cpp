#include "dist/nu_z.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace duti {
namespace {

TEST(PerturbationVector, DefaultAllPlus) {
  const PerturbationVector z(3);
  for (std::uint64_t x = 0; x < 8; ++x) EXPECT_EQ(z.sign(x), +1);
}

TEST(PerturbationVector, SetAndGet) {
  PerturbationVector z(3);
  z.set_sign(5, -1);
  EXPECT_EQ(z.sign(5), -1);
  EXPECT_EQ(z.sign(4), +1);
  z.set_sign(5, +1);
  EXPECT_EQ(z.sign(5), +1);
}

TEST(PerturbationVector, FromSigns) {
  const auto z = PerturbationVector::from_signs(2, {1, -1, -1, 1});
  EXPECT_EQ(z.sign(0), +1);
  EXPECT_EQ(z.sign(1), -1);
  EXPECT_EQ(z.sign(2), -1);
  EXPECT_EQ(z.sign(3), +1);
  EXPECT_THROW(PerturbationVector::from_signs(2, {1, -1}), InvalidArgument);
  EXPECT_THROW(PerturbationVector::from_signs(2, {1, 2, 1, 1}),
               InvalidArgument);
}

TEST(PerturbationVector, RandomIsBalancedOnAverage) {
  Rng rng(11);
  double total = 0.0;
  const int reps = 200;
  const unsigned ell = 8;
  for (int r = 0; r < reps; ++r) {
    const auto z = PerturbationVector::random(ell, rng);
    for (std::uint64_t x = 0; x < z.size(); ++x) {
      total += z.sign(x);
    }
  }
  const double mean_sign = total / (reps * 256.0);
  EXPECT_NEAR(mean_sign, 0.0, 0.02);
}

TEST(PerturbationVector, LargeEllWorks) {
  Rng rng(12);
  const auto z = PerturbationVector::random(10, rng);  // 1024 signs, 16 words
  int minus = 0;
  for (std::uint64_t x = 0; x < z.size(); ++x) {
    if (z.sign(x) == -1) ++minus;
  }
  EXPECT_GT(minus, 400);
  EXPECT_LT(minus, 624);
}

TEST(NuZ, PmfSumsToOne) {
  Rng rng(13);
  const CubeDomain dom(3);
  const auto z = PerturbationVector::random(3, rng);
  const NuZ nu(dom, z, 0.4);
  double total = 0.0;
  for (std::uint64_t e = 0; e < dom.universe_size(); ++e) total += nu.pmf(e);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NuZ, PmfMatchesFormula) {
  const CubeDomain dom(2);
  const auto z = PerturbationVector::from_signs(2, {1, -1, 1, -1});
  const double eps = 0.3;
  const NuZ nu(dom, z, eps);
  const double n = 8.0;
  for (std::uint64_t x = 0; x < 4; ++x) {
    for (int s : {+1, -1}) {
      const double expected = (1.0 + s * z.sign(x) * eps) / n;
      EXPECT_NEAR(nu.pmf(dom.encode(x, s)), expected, 1e-12);
    }
  }
}

TEST(NuZ, ExactlyEpsFarFromUniform) {
  Rng rng(14);
  const CubeDomain dom(4);
  for (double eps : {0.1, 0.5, 0.9}) {
    const NuZ nu(dom, PerturbationVector::random(4, rng), eps);
    const auto dist = nu.to_distribution();
    EXPECT_NEAR(dist.l1_from_uniform(), eps, 1e-9);
    EXPECT_DOUBLE_EQ(nu.l1_from_uniform(), eps);
  }
}

TEST(NuZ, MatchedPairMassConstant) {
  // nu_z(x,+1) + nu_z(x,-1) = 2/n for every x: the perturbation moves mass
  // only within matched pairs.
  Rng rng(15);
  const CubeDomain dom(3);
  const NuZ nu(dom, PerturbationVector::random(3, rng), 0.7);
  for (std::uint64_t x = 0; x < dom.side_size(); ++x) {
    const double pair_mass =
        nu.pmf(dom.encode(x, +1)) + nu.pmf(dom.encode(x, -1));
    EXPECT_NEAR(pair_mass, 2.0 / 16.0, 1e-12);
  }
}

TEST(NuZ, SamplingMatchesPmf) {
  Rng rng(16);
  const CubeDomain dom(2);
  const NuZ nu(dom, PerturbationVector::from_signs(2, {1, -1, -1, 1}), 0.6);
  std::vector<double> freq(dom.universe_size(), 0.0);
  const int trials = 400000;
  for (int t = 0; t < trials; ++t) ++freq[nu.sample(rng)];
  for (std::uint64_t e = 0; e < dom.universe_size(); ++e) {
    EXPECT_NEAR(freq[e] / trials, nu.pmf(e), 0.005) << "e=" << e;
  }
}

TEST(NuZ, ZeroEpsIsUniform) {
  Rng rng(17);
  const CubeDomain dom(3);
  const NuZ nu(dom, PerturbationVector::random(3, rng), 0.0);
  const auto dist = nu.to_distribution();
  EXPECT_NEAR(dist.l1_from_uniform(), 0.0, 1e-12);
}

TEST(NuZ, MixtureOverZIsExactlyUniform) {
  // E_z[nu_z] = U_n — the paper's "average of the family is uniform".
  for (unsigned ell : {1u, 2u, 3u}) {
    const auto mixture = exact_mixture_over_z(ell, 0.8);
    EXPECT_NEAR(mixture.l1_from_uniform(), 0.0, 1e-9) << "ell=" << ell;
  }
}

TEST(NuZ, DimensionMismatchThrows) {
  Rng rng(18);
  EXPECT_THROW(NuZ(CubeDomain(3), PerturbationVector::random(2, rng), 0.5),
               InvalidArgument);
  EXPECT_THROW(NuZ(CubeDomain(2), PerturbationVector::random(2, rng), 1.5),
               InvalidArgument);
}

TEST(NuZ, SampleManyFills) {
  Rng rng(19);
  const CubeDomain dom(2);
  const NuZ nu(dom, PerturbationVector::random(2, rng), 0.5);
  std::vector<std::uint64_t> out;
  nu.sample_many(rng, 500, out);
  EXPECT_EQ(out.size(), 500u);
  for (auto e : out) EXPECT_LT(e, dom.universe_size());
}

}  // namespace
}  // namespace duti
