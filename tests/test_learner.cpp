#include "testers/learner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/generators.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {
namespace {

TEST(StochasticRoundingLearner, Validation) {
  EXPECT_THROW(StochasticRoundingLearner(1, 10, 2), InvalidArgument);
  EXPECT_THROW(StochasticRoundingLearner(16, 8, 2), InvalidArgument);  // k < n
  EXPECT_THROW(StochasticRoundingLearner(16, 32, 0), InvalidArgument);
  EXPECT_NO_THROW(StochasticRoundingLearner(16, 16, 1));
}

TEST(StochasticRoundingLearner, OutputIsADistribution) {
  const StochasticRoundingLearner learner(8, 64, 4);
  const DistributionSource source(gen::zipf(8, 1.0));
  Rng rng(1);
  const auto learned = learner.learn(source, rng);
  EXPECT_EQ(learned.domain_size(), 8u);
  double total = 0.0;
  for (double p : learned.pmf_vector()) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(StochasticRoundingLearner, ErrorDecreasesWithK) {
  const std::uint64_t n = 16;
  const unsigned q = 8;
  const auto truth = gen::zipf(n, 1.0);
  auto avg_error = [&](std::uint64_t k, std::uint64_t seed) {
    const StochasticRoundingLearner learner(n, k, q);
    std::vector<double> errs;
    for (int t = 0; t < 10; ++t) {
      Rng rng = make_rng(seed, t);
      errs.push_back(learner.learn_l1_error(truth, rng));
    }
    return mean(errs);
  };
  const double e_small = avg_error(64, 2);
  const double e_large = avg_error(4096, 3);
  EXPECT_LT(e_large, e_small);
  EXPECT_LT(e_large, 0.5);
}

TEST(StochasticRoundingLearner, ErrorDecreasesWithQ) {
  const std::uint64_t n = 16, k = 1024;
  const auto truth = gen::bimodal(n, 0.8);
  auto avg_error = [&](unsigned q, std::uint64_t seed) {
    const StochasticRoundingLearner learner(n, k, q);
    std::vector<double> errs;
    for (int t = 0; t < 10; ++t) {
      Rng rng = make_rng(seed, t);
      errs.push_back(learner.learn_l1_error(truth, rng));
    }
    return mean(errs);
  };
  EXPECT_LT(avg_error(32, 5), avg_error(1, 4));
}

TEST(StochasticRoundingLearner, LearnsUniformAccurately) {
  const std::uint64_t n = 8;
  const StochasticRoundingLearner learner(n, 8192, 16);
  const auto truth = DiscreteDistribution::uniform(n);
  Rng rng(6);
  EXPECT_LT(learner.learn_l1_error(truth, rng), 0.15);
}

TEST(PresenceBitLearner, InvertPresenceByHand) {
  // q = 1: identity. p = 1 - (1-mu)^q inverts exactly.
  EXPECT_NEAR(PresenceBitLearner::invert_presence(0.3, 1), 0.3, 1e-12);
  const double mu = 0.02;
  for (unsigned q : {1u, 4u, 32u}) {
    const double p = 1.0 - std::pow(1.0 - mu, static_cast<double>(q));
    EXPECT_NEAR(PresenceBitLearner::invert_presence(p, q), mu, 1e-12)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(PresenceBitLearner::invert_presence(1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(PresenceBitLearner::invert_presence(0.0, 5), 0.0);
  EXPECT_THROW((void)PresenceBitLearner::invert_presence(1.5, 2), InvalidArgument);
}

TEST(PresenceBitLearner, OutputIsADistribution) {
  const PresenceBitLearner learner(8, 64, 4);
  const DistributionSource source(gen::zipf(8, 1.0));
  Rng rng(21);
  const auto learned = learner.learn(source, rng);
  double total = 0.0;
  for (double p : learned.pmf_vector()) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PresenceBitLearner, ErrorDecreasesWithQ) {
  // The headline property the stochastic-rounding learner LACKS: with the
  // presence bit, more samples per node genuinely reduce the error — in
  // the near-uniform regime q*mu_i <~ 1 (the regime the paper's lower
  // bound concerns; on heavy-headed truths like Zipf the presence bit
  // saturates at large q).
  const std::uint64_t n = 16, k = 512;
  const auto truth = gen::bimodal(n, 0.8);
  auto avg_error = [&](unsigned q, std::uint64_t seed) {
    const PresenceBitLearner learner(n, k, q);
    std::vector<double> errs;
    for (int t = 0; t < 12; ++t) {
      Rng rng = make_rng(seed, t);
      errs.push_back(learner.learn_l1_error(truth, rng));
    }
    return mean(errs);
  };
  EXPECT_LT(avg_error(16, 23), avg_error(1, 22) * 0.75);
}

TEST(PresenceBitLearner, BeatsStochasticRoundingAtLargeQ) {
  const std::uint64_t n = 16, k = 512;
  const unsigned q = 16;
  const auto truth = gen::bimodal(n, 0.8);
  std::vector<double> presence_errs, rounding_errs;
  for (int t = 0; t < 12; ++t) {
    Rng r1 = make_rng(24, t);
    presence_errs.push_back(
        PresenceBitLearner(n, k, q).learn_l1_error(truth, r1));
    Rng r2 = make_rng(25, t);
    rounding_errs.push_back(
        StochasticRoundingLearner(n, k, q).learn_l1_error(truth, r2));
  }
  EXPECT_LT(mean(presence_errs), mean(rounding_errs));
}

TEST(PresenceBitLearner, Validation) {
  EXPECT_THROW(PresenceBitLearner(1, 10, 2), InvalidArgument);
  EXPECT_THROW(PresenceBitLearner(16, 8, 2), InvalidArgument);
  EXPECT_THROW(PresenceBitLearner(16, 32, 0), InvalidArgument);
}

TEST(GroupedLearner, Validation) {
  EXPECT_THROW(GroupedLearner(10, 100, 3), InvalidArgument);  // 10 % 4 != 0
  EXPECT_THROW(GroupedLearner(16, 2, 3), InvalidArgument);    // k < groups
  EXPECT_NO_THROW(GroupedLearner(16, 16, 3));
}

TEST(GroupedLearner, GroupGeometry) {
  const GroupedLearner learner(32, 64, 4);  // group size 8
  EXPECT_EQ(learner.group_size(), 8u);
  EXPECT_EQ(learner.num_groups(), 4u);
  const GroupedLearner fine(32, 64, 1);  // group size 1: singleton groups
  EXPECT_EQ(fine.group_size(), 1u);
  EXPECT_EQ(fine.num_groups(), 32u);
}

TEST(GroupedLearner, OutputIsADistribution) {
  const GroupedLearner learner(16, 256, 3);
  const DistributionSource source(gen::zipf(16, 0.8));
  Rng rng(7);
  const auto learned = learner.learn(source, rng);
  double total = 0.0;
  for (double p : learned.pmf_vector()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GroupedLearner, ErrorDecreasesWithK) {
  const std::uint64_t n = 16;
  const auto truth = gen::zipf(n, 1.0);
  auto avg_error = [&](std::uint64_t k, std::uint64_t seed) {
    const GroupedLearner learner(n, k, 3);
    std::vector<double> errs;
    for (int t = 0; t < 10; ++t) {
      Rng rng = make_rng(seed, t);
      errs.push_back(learner.learn_l1_error(truth, rng));
    }
    return mean(errs);
  };
  EXPECT_LT(avg_error(8192, 9), avg_error(128, 8));
}

TEST(GroupedLearner, WiderMessagesHelpAtFixedK) {
  // More bits per node => larger groups => more nodes effectively observe
  // each element => lower error ([1]'s n^2/(2^r eps^2) trade-off).
  const std::uint64_t n = 32, k = 2048;
  const auto truth = gen::bimodal(n, 0.9);
  auto avg_error = [&](unsigned r, std::uint64_t seed) {
    const GroupedLearner learner(n, k, r);
    std::vector<double> errs;
    for (int t = 0; t < 10; ++t) {
      Rng rng = make_rng(seed, t);
      errs.push_back(learner.learn_l1_error(truth, rng));
    }
    return mean(errs);
  };
  EXPECT_LT(avg_error(6, 11), avg_error(1, 10));
}

TEST(Learners, DomainMismatchThrows) {
  const StochasticRoundingLearner learner(8, 64, 2);
  const UniformSource source(16);
  Rng rng(12);
  EXPECT_THROW((void)learner.learn(source, rng), InvalidArgument);
}

}  // namespace
}  // namespace duti
