// Equivalence suite for the vectorized kernel layer (DESIGN.md §11): every
// dispatched kernel must be bit-identical to its scalar twin — outputs AND
// final RNG state — at every SimdLevel this binary supports, and the whole
// measurement engine must produce identical probes at DUTI_SIMD=off and
// auto across thread counts (ISSUE 7 acceptance criterion).
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "dist/cube_domain.hpp"
#include "dist/nu_z.hpp"
#include "stats/harness.hpp"
#include "stats/workloads.hpp"
#include "testers/collision.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace duti {
namespace {

/// Every level the binary can actually run, scalar first.
std::vector<SimdLevel> testable_levels() {
  std::vector<SimdLevel> out{SimdLevel::kScalar};
  const int cap = static_cast<int>(simd_supported_level());
  for (int l = 1; l <= cap; ++l) out.push_back(static_cast<SimdLevel>(l));
  return out;
}

/// Restores the active dispatch level on scope exit, so a failing test
/// cannot leak a forced level into later tests.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd_active_level()) {}
  ~LevelGuard() { simd_set_level(saved_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  SimdLevel saved_;
};

/// Bitwise equality of double buffers (EXPECT_EQ on doubles would conflate
/// +0.0 with -0.0 and is useless for NaN payloads).
bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// O(N^2) reference transform: out[i] = sum_j (-1)^{popcount(i & j)} in[j].
std::vector<double> naive_wht(const std::vector<double>& in) {
  const std::size_t n = in.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const int parity = std::popcount(i & j) & 1;
      out[i] += (parity != 0 ? -1.0 : 1.0) * in[j];
    }
  }
  return out;
}

TEST(Wht, MatchesNaiveTransformExactly) {
  // Small integer inputs keep every sum exactly representable, so the
  // blocked radix-4 path, the scalar twin, and the O(N^2) definition must
  // agree to the last bit at every level.
  LevelGuard guard;
  Rng rng(2026);
  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    std::vector<double> input(n);
    for (auto& v : input)
      v = static_cast<double>(static_cast<std::int64_t>(rng() % 17) - 8);
    const std::vector<double> expected = naive_wht(input);
    for (const SimdLevel level : testable_levels()) {
      SCOPED_TRACE(testing::Message()
                   << "n=" << n << " level=" << simd_level_name(level));
      simd_set_level(level);
      std::vector<double> data = input;
      kernels::wht(data);
      EXPECT_TRUE(bits_equal(data, expected));
    }
    std::vector<double> scalar = input;
    kernels::wht_scalar(scalar);
    EXPECT_TRUE(bits_equal(scalar, expected)) << n;
  }
}

TEST(Wht, DispatchedBitIdenticalToScalarAtEveryPowerOfTwo) {
  // Random (non-integer) data at every size through the cache-block
  // boundary: identical FP results require the vector path to perform the
  // scalar additions in the scalar order, which is the layer's contract.
  LevelGuard guard;
  Rng rng(7);
  for (unsigned logn = 0; logn <= 14; ++logn) {
    std::vector<double> input(std::size_t{1} << logn);
    for (auto& v : input) v = rng.next_double() * 2.0 - 1.0;
    std::vector<double> reference = input;
    kernels::wht_scalar(reference);
    for (const SimdLevel level : testable_levels()) {
      SCOPED_TRACE(testing::Message()
                   << "logn=" << logn << " level=" << simd_level_name(level));
      simd_set_level(level);
      std::vector<double> data = input;
      kernels::wht(data);
      EXPECT_TRUE(bits_equal(data, reference));
    }
  }
}

TEST(Wht, DispatchedBitIdenticalToScalarAtTwoToTwenty) {
  // The ISSUE's upper bound: 2^20 doubles spans 256 cache blocks, so both
  // the in-block radix-4 stages and the streaming outer stages run.
  LevelGuard guard;
  Rng rng(11);
  std::vector<double> input(std::size_t{1} << 20);
  for (auto& v : input) v = rng.next_double() * 2.0 - 1.0;
  std::vector<double> reference = input;
  kernels::wht_scalar(reference);
  for (const SimdLevel level : testable_levels()) {
    SCOPED_TRACE(simd_level_name(level));
    simd_set_level(level);
    std::vector<double> data = input;
    kernels::wht(data);
    EXPECT_TRUE(bits_equal(data, reference));
  }
}

TEST(IntegerKernels, ReductionsFuzzAcrossVectorWidthBoundaries) {
  // Lengths 0..67 straddle every lane boundary of the 2- and 4-wide paths
  // (including all tail sizes); counts near 2^33 make c*(c-1)/2 wrap, so
  // the test also pins the wrapping-arithmetic identity.
  LevelGuard guard;
  Rng rng(13);
  for (std::size_t len = 0; len <= 67; ++len) {
    std::vector<std::uint64_t> counts(len);
    for (auto& c : counts) {
      const std::uint64_t roll = rng() % 8;
      if (roll < 4) {
        c = rng() % 5;  // mostly small, with zeros for distinct()
      } else if (roll < 7) {
        c = rng() % 1000;
      } else {
        c = (std::uint64_t{1} << 33) + rng() % 1000;  // wraps the pair count
      }
    }
    const std::uint64_t pairs_ref =
        kernels::collision_pairs_from_counts_scalar(counts);
    const std::uint64_t distinct_ref =
        kernels::distinct_from_counts_scalar(counts);
    std::vector<std::uint64_t> addend(len);
    for (auto& a : addend) a = rng();
    std::vector<std::uint64_t> acc_ref(len, 0);
    for (std::size_t i = 0; i < len; ++i) acc_ref[i] = counts[i];
    kernels::add_u64_scalar(acc_ref, addend);
    for (const SimdLevel level : testable_levels()) {
      SCOPED_TRACE(testing::Message()
                   << "len=" << len << " level=" << simd_level_name(level));
      simd_set_level(level);
      EXPECT_EQ(kernels::collision_pairs_from_counts(counts), pairs_ref);
      EXPECT_EQ(kernels::distinct_from_counts(counts), distinct_ref);
      std::vector<std::uint64_t> acc = counts;
      kernels::add_u64(acc, addend);
      EXPECT_EQ(acc, acc_ref);
    }
  }
}

TEST(IntegerKernels, TallyMatchesScalarAcrossDomainAndSampleShapes) {
  // tally() must equal the scalar scatter at every level and shape
  // (small/large domain, fewer/more samples than cells), including the
  // accumulate-into-nonzero-counts contract.
  LevelGuard guard;
  Rng rng(17);
  struct Case {
    std::size_t domain;
    std::size_t samples;
  };
  for (const Case c : {Case{8, 64}, Case{67, 66}, Case{67, 500},
                       Case{4096, 4096}, Case{5000, 100}, Case{5000, 6000}}) {
    std::vector<std::uint64_t> samples(c.samples);
    for (auto& s : samples) s = rng() % c.domain;
    std::vector<std::uint64_t> base(c.domain);
    for (auto& b : base) b = rng() % 3;  // pre-existing counts accumulate
    std::vector<std::uint64_t> reference = base;
    kernels::tally_scalar(samples, reference);
    for (const SimdLevel level : testable_levels()) {
      SCOPED_TRACE(testing::Message() << "domain=" << c.domain
                                      << " samples=" << c.samples << " level="
                                      << simd_level_name(level));
      simd_set_level(level);
      std::vector<std::uint64_t> counts = base;
      kernels::tally(samples, counts);
      EXPECT_EQ(counts, reference);
    }
  }
}

TEST(UniformSampleMany, MatchesNextBelowStreamAndFinalState) {
  // The batched sampler must consume the RNG exactly like repeated
  // next_below calls: same outputs, same number of raw draws, in the same
  // order, at every level. bound = 2^63 + 1 gives a ~50% rejection rate so
  // the stream contract is exercised well past the no-rejection case.
  LevelGuard guard;
  const std::uint64_t bounds[] = {1,
                                  2,
                                  3,
                                  10,
                                  255,
                                  257,
                                  (std::uint64_t{1} << 32) + 7,
                                  (std::uint64_t{1} << 63) + 1,
                                  ~std::uint64_t{0}};
  for (const std::uint64_t bound : bounds) {
    for (const std::size_t len : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 16u, 67u, 256u}) {
      for (const SimdLevel level : testable_levels()) {
        SCOPED_TRACE(testing::Message()
                     << "bound=" << bound << " len=" << len
                     << " level=" << simd_level_name(level));
        simd_set_level(level);
        Rng batched(derive_seed(23, bound, len));
        Rng serial(derive_seed(23, bound, len));
        std::vector<std::uint64_t> out(len);
        kernels::uniform_sample_many(batched, bound, out);
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_EQ(out[i], serial.next_below(bound)) << i;
          ASSERT_LT(out[i], bound);
        }
        // Same final state: the next raw draws must agree.
        for (int k = 0; k < 4; ++k) ASSERT_EQ(batched(), serial());
      }
    }
  }
}

TEST(NuzSampleMany, MatchesRepeatedSampleAndFinalState) {
  // Two raw draws per sample, in sample order, identical heavy/light
  // classification: the batched kernel must replay NuZ::sample exactly.
  LevelGuard guard;
  for (const unsigned ell : {1u, 2u, 3u, 5u, 7u, 10u}) {
    for (const double eps : {0.0, 0.3, 1.0}) {
      Rng zrng(derive_seed(31, ell));
      const PerturbationVector z = PerturbationVector::random(ell, zrng);
      const NuZ nu(CubeDomain(ell), z, eps);
      for (const std::size_t count : {0u, 1u, 5u, 8u, 9u, 67u}) {
        for (const SimdLevel level : testable_levels()) {
          SCOPED_TRACE(testing::Message()
                       << "ell=" << ell << " eps=" << eps << " count=" << count
                       << " level=" << simd_level_name(level));
          simd_set_level(level);
          Rng batched(derive_seed(37, ell, count));
          Rng serial(derive_seed(37, ell, count));
          std::vector<std::uint64_t> out;
          nu.sample_many(batched, count, out);
          ASSERT_EQ(out.size(), count);
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(out[i], nu.sample(serial)) << i;
          }
          for (int k = 0; k < 4; ++k) ASSERT_EQ(batched(), serial());
        }
      }
    }
  }
}

TEST(NuzSampleMany, KernelTwinAgreesWithScalarTwin) {
  LevelGuard guard;
  const unsigned ell = 6;
  Rng zrng(41);
  const PerturbationVector z = PerturbationVector::random(ell, zrng);
  std::vector<std::uint64_t> ref_out(129);
  Rng ref_rng(43);
  kernels::nuz_sample_many_scalar(ref_rng, z.words(), ell, 0.4, ref_out);
  // Post-batch state probe, captured once (drawing from ref_rng inside the
  // level loop would advance it past where each fresh rng stops).
  std::array<std::uint64_t, 4> ref_next{};
  for (auto& v : ref_next) v = ref_rng();
  for (const SimdLevel level : testable_levels()) {
    SCOPED_TRACE(simd_level_name(level));
    simd_set_level(level);
    std::vector<std::uint64_t> out(129);
    Rng rng(43);
    kernels::nuz_sample_many(rng, z.words(), ell, 0.4, out);
    EXPECT_EQ(out, ref_out);
    for (const std::uint64_t expected : ref_next) EXPECT_EQ(rng(), expected);
  }
}

void expect_probe_equal(const ProbeResult& a, const ProbeResult& b) {
  EXPECT_DOUBLE_EQ(a.uniform_accept_rate, b.uniform_accept_rate);
  EXPECT_DOUBLE_EQ(a.far_reject_rate, b.far_reject_rate);
  EXPECT_DOUBLE_EQ(a.uniform_ci.lo, b.uniform_ci.lo);
  EXPECT_DOUBLE_EQ(a.uniform_ci.hi, b.uniform_ci.hi);
  EXPECT_DOUBLE_EQ(a.far_ci.lo, b.far_ci.lo);
  EXPECT_DOUBLE_EQ(a.far_ci.hi, b.far_ci.hi);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.uniform_successes, b.uniform_successes);
  EXPECT_EQ(a.far_successes, b.far_successes);
  EXPECT_EQ(a.budget, b.budget);
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.uniform_aborts_quorum, b.uniform_aborts_quorum);
  EXPECT_EQ(a.uniform_aborts_timeout, b.uniform_aborts_timeout);
  EXPECT_EQ(a.far_aborts_quorum, b.far_aborts_quorum);
  EXPECT_EQ(a.far_aborts_timeout, b.far_aborts_timeout);
}

TEST(FullProbe, BitIdenticalAcrossSimdLevelsAndThreadCounts) {
  // End-to-end DUTI_SIMD=off vs auto criterion: a representative tester
  // (batched sampling + tally + collision counting + run randomness)
  // probed through the parallel engine must be bit-identical at every
  // (SimdLevel, DUTI_THREADS) combination.
  LevelGuard guard;
  const TesterRun tester = [](const SampleSource& source, Rng& rng) {
    std::vector<std::uint64_t> samples;
    source.sample_many(rng, 48, samples);
    const double expected = expected_collision_pairs_uniform(
        static_cast<double>(source.domain_size()), 48);
    return static_cast<double>(collision_pairs(samples)) <=
           expected + 1.0 + rng.next_double();
  };
  simd_set_level(SimdLevel::kScalar);
  ThreadPool serial(1);
  const ProbeResult reference =
      probe_success(tester, workloads::uniform_factory(256),
                    workloads::paninski_far_factory(256, 0.5), 400, 11, serial);
  for (const SimdLevel level : testable_levels()) {
    simd_set_level(level);
    for (const unsigned threads : {1u, 8u}) {
      ThreadPool pool(threads);
      const ProbeResult probe = probe_success(
          tester, workloads::uniform_factory(256),
          workloads::paninski_far_factory(256, 0.5), 400, 11, pool);
      SCOPED_TRACE(testing::Message() << simd_level_name(level) << " threads="
                                      << threads);
      expect_probe_equal(reference, probe);
    }
  }
}

TEST(SimdDispatch, ParsesLevelStrings) {
  SimdLevel out = SimdLevel::kAvx2;
  EXPECT_TRUE(simd_level_from_string("off", out));
  EXPECT_EQ(out, SimdLevel::kScalar);
  out = SimdLevel::kAvx2;
  EXPECT_TRUE(simd_level_from_string("scalar", out));
  EXPECT_EQ(out, SimdLevel::kScalar);
  EXPECT_TRUE(simd_level_from_string("sse2", out));
  EXPECT_EQ(out, SimdLevel::kSse2);
  EXPECT_TRUE(simd_level_from_string("avx2", out));
  EXPECT_EQ(out, SimdLevel::kAvx2);
  EXPECT_TRUE(simd_level_from_string("auto", out));
  EXPECT_EQ(out, simd_supported_level());
  // Unknown strings leave the output untouched and return false.
  out = SimdLevel::kSse2;
  EXPECT_FALSE(simd_level_from_string("", out));
  EXPECT_FALSE(simd_level_from_string("AVX2", out));
  EXPECT_FALSE(simd_level_from_string("mmx", out));
  EXPECT_EQ(out, SimdLevel::kSse2);
}

TEST(SimdDispatch, SetLevelClampsToSupportedAndSticks) {
  LevelGuard guard;
  const SimdLevel cap = simd_supported_level();
  // Requesting the maximum tier installs at most the supported one.
  const SimdLevel installed = simd_set_level(SimdLevel::kAvx2);
  EXPECT_EQ(installed, cap);
  EXPECT_EQ(simd_active_level(), cap);
  // Scalar is always available and always honored exactly.
  EXPECT_EQ(simd_set_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(simd_active_level(), SimdLevel::kScalar);
  EXPECT_EQ(simd_level_name(SimdLevel::kScalar), std::string_view("scalar"));
  EXPECT_EQ(simd_level_name(SimdLevel::kSse2), std::string_view("sse2"));
  EXPECT_EQ(simd_level_name(SimdLevel::kAvx2), std::string_view("avx2"));
}

}  // namespace
}  // namespace duti
