// Cross-cutting property tests: randomized sweeps of the analytic
// invariants the library's correctness rests on, beyond the per-component
// suites.
#include <gtest/gtest.h>

#include <cmath>

#include "core/divergence.hpp"
#include "dist/generators.hpp"
#include "fourier/boolean_function.hpp"
#include "fourier/evenly_covered.hpp"
#include "fourier/families.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace duti {
namespace {

DiscreteDistribution random_distribution(std::size_t n, Rng& rng) {
  std::vector<double> pmf(n);
  double total = 0.0;
  for (auto& p : pmf) {
    p = 0.05 + rng.next_double();
    total += p;
  }
  for (auto& p : pmf) p /= total;
  return DiscreteDistribution(std::move(pmf));
}

class RandomDistributionPair : public ::testing::TestWithParam<int> {};

TEST_P(RandomDistributionPair, MetricAndDivergenceInequalities) {
  Rng rng(derive_seed(7001, GetParam()));
  const auto p = random_distribution(16, rng);
  const auto q = random_distribution(16, rng);
  const double l1 = p.l1_distance(q);
  const double tv = p.tv_distance(q);
  const double kl_bits = p.kl_divergence(q);

  // Ranges.
  EXPECT_GE(l1, 0.0);
  EXPECT_LE(l1, 2.0);
  EXPECT_NEAR(tv, 0.5 * l1, 1e-12);
  EXPECT_GE(kl_bits, 0.0);  // Gibbs

  // Pinsker: tv <= sqrt(KL_nats / 2).
  const double kl_nats = kl_bits * std::log(2.0);
  EXPECT_LE(tv, std::sqrt(kl_nats / 2.0) + 1e-12);

  // KL <= chi2 / ln 2 (the Fact 6.3 generalization to full pmfs).
  EXPECT_LE(kl_bits, p.chi2_divergence(q) / std::log(2.0) + 1e-12);

  // l2 <= l1 <= sqrt(n) l2 (norm equivalences on R^n).
  const double l2 = p.l2_distance(q);
  EXPECT_LE(l2, l1 + 1e-12);
  EXPECT_LE(l1, std::sqrt(16.0) * l2 + 1e-12);
}

TEST_P(RandomDistributionPair, MixtureGeometry) {
  Rng rng(derive_seed(7002, GetParam()));
  const auto p = random_distribution(12, rng);
  const auto q = random_distribution(12, rng);
  const double w = rng.next_double();
  const auto mixed = p.mix(q, w);
  // l1(mix, q) = (1-w) l1(p, q): the segment geometry of the simplex.
  EXPECT_NEAR(mixed.l1_distance(q), (1.0 - w) * p.l1_distance(q), 1e-10);
  // Entropy is concave: H(mix) >= (1-w) H(p) + w H(q).
  EXPECT_GE(mixed.entropy() + 1e-10,
            (1.0 - w) * p.entropy() + w * q.entropy());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDistributionPair,
                         ::testing::Range(0, 12));

class RandomFunctionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomFunctionSweep, WhtLinearityAndPlancherel) {
  Rng rng(derive_seed(7003, GetParam()));
  const unsigned m = 6;
  const auto f = fn::random_real(m, -1.0, 1.0, rng);
  const auto g = fn::random_real(m, -1.0, 1.0, rng);
  // Plancherel: <f, g> = sum f_hat(S) g_hat(S).
  double inner = 0.0;
  for (std::uint64_t x = 0; x < f.domain_size(); ++x) {
    inner += f.value(x) * g.value(x);
  }
  inner /= static_cast<double>(f.domain_size());
  double coeff_inner = 0.0;
  const auto& fc = f.fourier();
  const auto& gc = g.fourier();
  for (std::size_t s = 0; s < fc.size(); ++s) coeff_inner += fc[s] * gc[s];
  EXPECT_NEAR(inner, coeff_inner, 1e-10);

  // Linearity: (a f + b g)_hat = a f_hat + b g_hat.
  const double a = rng.next_double() * 2.0 - 1.0;
  const double b = rng.next_double() * 2.0 - 1.0;
  std::vector<double> combo(f.domain_size());
  for (std::uint64_t x = 0; x < combo.size(); ++x) {
    combo[x] = a * f.value(x) + b * g.value(x);
  }
  const BooleanCubeFunction h(std::move(combo));
  const auto& hc = h.fourier();
  for (std::size_t s = 0; s < hc.size(); ++s) {
    ASSERT_NEAR(hc[s], a * fc[s] + b * gc[s], 1e-10);
  }
}

TEST_P(RandomFunctionSweep, RestrictionReducesVarianceOnAverage) {
  // E_assignment[var(f restricted)] <= var(f): conditioning cannot add
  // variance on average (law of total variance).
  Rng rng(derive_seed(7004, GetParam()));
  const unsigned m = 6;
  const auto f = fn::random_real(m, 0.0, 1.0, rng);
  const std::uint64_t fixed_mask = 0b110;
  double avg_var = 0.0;
  int count = 0;
  for (std::uint64_t a = 0; a < f.domain_size(); ++a) {
    if ((a & ~fixed_mask) != 0) continue;
    avg_var += f.restrict_vars(fixed_mask, a).variance();
    ++count;
  }
  EXPECT_LE(avg_var / count, f.variance() + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomFunctionSweep, ::testing::Range(0, 8));

TEST(EvenlyCoveredProperties, ArInvariantUnderPositionPermutation) {
  Rng rng(7005);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> x(6);
    for (auto& xi : x) xi = rng.next_below(4);
    std::vector<std::uint64_t> shuffled = x;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    for (unsigned r : {1u, 2u, 3u}) {
      ASSERT_EQ(a_r(x, r), a_r(shuffled, r));
    }
  }
}

TEST(EvenlyCoveredProperties, ArMonotoneUnderMerging) {
  // Replacing a value with a copy of another present value can only keep
  // or increase the number of evenly covered sets of each size... not true
  // in general; instead check the sound bound: a_r(x) <= C(q, 2r) always,
  // with equality iff all values equal (for r = 1 on all-equal tuples).
  Rng rng(7006);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> x(6);
    for (auto& xi : x) xi = rng.next_below(3);
    for (unsigned r : {1u, 2u, 3u}) {
      ASSERT_LE(a_r(x, r), binomial(6, static_cast<int>(2 * r)));
    }
  }
  const std::vector<std::uint64_t> all_same(6, 2);
  EXPECT_EQ(a_r(all_same, 1), binomial(6, 2));
}

TEST(DivergenceProperties, KlBernoulliConvexityInAlpha) {
  // D(B(alpha) || B(beta)) is convex in alpha: midpoint below chord.
  for (double beta : {0.2, 0.5, 0.8}) {
    for (double a1 = 0.1; a1 < 0.9; a1 += 0.2) {
      const double a2 = a1 + 0.1;
      const double mid = kl_bernoulli(0.5 * (a1 + a2), beta);
      const double chord =
          0.5 * (kl_bernoulli(a1, beta) + kl_bernoulli(a2, beta));
      EXPECT_LE(mid, chord + 1e-12);
    }
  }
}

TEST(GeneratorProperties, FarFamiliesAreActuallyFar) {
  // Every "far" generator must deliver at least its nominal distance; the
  // whole experiment harness rests on this.
  Rng rng(7007);
  for (int trial = 0; trial < 20; ++trial) {
    const double eps = 0.1 + 0.8 * rng.next_double();
    EXPECT_NEAR(gen::paninski(64, eps, rng).l1_from_uniform(), eps, 1e-12);
    EXPECT_NEAR(gen::random_perturbation(64, eps, rng).l1_from_uniform(),
                eps, 1e-12);
    EXPECT_NEAR(gen::bimodal(64, eps).l1_from_uniform(), eps, 1e-12);
  }
}

}  // namespace
}  // namespace duti
