// Multi-hop deployment: distributed uniformity testing on a 2D sensor grid
// (LOCAL/CONGEST-model flavor). There is no star network here — votes
// flow to the base station along a BFS spanning tree of the grid, so the
// round cost is the network DIAMETER while the communication stays at one
// O(log k)-bit message per node per epoch, regardless of where the base
// station sits.
//
//   ./multihop_grid [--rows=8] [--cols=8] [--n=1024] [--eps=0.5] [--q=80]
#include <iostream>

#include "dist/generators.hpp"
#include "testers/tree_tester.hpp"
#include "util/cli.hpp"
#include "util/confidence.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  const auto rows = static_cast<std::uint32_t>(cli.get_int("rows", 8));
  const auto cols = static_cast<std::uint32_t>(cli.get_int("cols", 8));
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const double eps = cli.get_double("eps", 0.5);
  const auto q = static_cast<unsigned>(cli.get_int("q", 80));
  const auto epochs = static_cast<int>(cli.get_int("epochs", 80));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));

  const std::uint32_t k = rows * cols;
  std::cout << rows << "x" << cols << " sensor grid (" << k
            << " nodes), measurements uniform over " << n
            << " buckets when healthy, eps = " << eps << ", q = " << q
            << " per node per epoch\n\n";

  // Compare base-station placements: corner (max diameter) vs center.
  struct Placement {
    std::string name;
    NodeId root;
  };
  const std::vector<Placement> placements{
      {"corner (0,0)", 0},
      {"center", (rows / 2) * cols + cols / 2},
  };

  Table table({"base station", "tree height", "rounds/epoch",
               "bits/epoch", "uniform accept", "anomaly detect"});
  bool all_ok = true;
  for (const auto& placement : placements) {
    Network net(k);
    add_grid(net, rows, cols);
    Rng calib = make_rng(seed, placement.root, 0);
    const TreeUniformityTester tester(net, placement.root, {n, q, eps},
                                      calib);
    SuccessCounter uniform_ok, far_ok;
    std::uint64_t bits = 0;
    unsigned rounds = 0;
    const UniformSource healthy(n);
    for (int e = 0; e < epochs; ++e) {
      Rng r1 = make_rng(seed, placement.root, 1, e);
      const auto healthy_run = tester.run_epoch(healthy, r1);
      uniform_ok.record(healthy_run.accept);
      bits += healthy_run.stats.bits_sent;
      rounds = healthy_run.stats.rounds_executed;
      Rng g = make_rng(seed, placement.root, 2, e);
      const DistributionSource anomaly(gen::paninski(n, eps, g));
      Rng r2 = make_rng(seed, placement.root, 3, e);
      far_ok.record(!tester.run_epoch(anomaly, r2).accept);
    }
    if (uniform_ok.rate() < 2.0 / 3.0 || far_ok.rate() < 2.0 / 3.0) {
      all_ok = false;
    }
    table.add_row({placement.name,
                   static_cast<std::int64_t>(tester.tree().height),
                   static_cast<std::int64_t>(rounds),
                   static_cast<double>(bits) / epochs, uniform_ok.rate(),
                   far_ok.rate()});
  }
  table.print(std::cout, "multi-hop testing epochs");
  std::cout << "\nSame votes, same accuracy, same total bits — only the "
               "round count changes with the tree height.\nThe decision "
               "quality is governed by the simultaneous-message theory "
               "(Theorem 1.1):\nthe topology only delays the referee.\n";
  return all_ok ? 0 : 1;
}
