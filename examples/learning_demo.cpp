// Distributed learning demo (Theorem 1.4 territory): k nodes, q samples
// each, ONE bit per node, and the referee reconstructs the whole unknown
// distribution. Shows the error falling as nodes are added, and the
// trade-off against samples-per-node.
//
//   ./learning_demo [--n=32] [--q=8]
#include <iostream>

#include "core/predictions.hpp"
#include "dist/generators.hpp"
#include "testers/learner.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 32));
  const auto q = static_cast<unsigned>(cli.get_int("q", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const auto reps = static_cast<int>(cli.get_int("reps", 12));

  // The unknown distribution the network must learn.
  const auto truth = gen::zipf(n, 1.0);
  std::cout << "unknown distribution: Zipf(1.0) on " << n
            << " elements (entropy " << format_double(truth.entropy())
            << " bits)\neach node: " << q
            << " samples, 1 bit to the referee\n\n";

  Table table({"nodes k", "mean l1 error", "paper lower bound needs k >="});
  double last_error = 2.0;
  for (std::uint64_t k = n; k <= n * 1024; k *= 4) {
    const StochasticRoundingLearner learner(n, k, q);
    std::vector<double> errors;
    for (int t = 0; t < reps; ++t) {
      Rng rng = make_rng(seed, k, t);
      errors.push_back(learner.learn_l1_error(truth, rng));
    }
    last_error = mean(errors);
    table.add_row({static_cast<std::int64_t>(k), last_error,
                   predict::thm14_learning_k(static_cast<double>(n),
                                             static_cast<double>(q))});
  }
  table.print(std::cout, "learning error vs network size");

  // Show one reconstruction side by side.
  const StochasticRoundingLearner learner(n, n * 1024, q);
  Rng rng = make_rng(seed, 999);
  const DistributionSource source(truth);
  const auto learned = learner.learn(source, rng);
  Table recon({"element", "true pmf", "learned pmf"});
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(n, 8); ++i) {
    recon.add_row({static_cast<std::int64_t>(i), truth.pmf(i),
                   learned.pmf(i)});
  }
  recon.print(std::cout, "reconstruction at the largest k (first 8 keys)");
  std::cout << "\nfinal l1 error: " << format_double(learned.l1_distance(truth))
            << "\n";
  return last_error < 0.3 ? 0 : 1;
}
