// Sensor network anomaly detection — the paper's first motivating scenario.
//
// A base station and a field of sensors monitor an environment. Each
// sensor draws q measurements per epoch; measurements are calibrated so
// that a healthy environment produces UNIFORM readings over n buckets,
// while a malfunction or attack skews them (eps-far from uniform).
//
// Two deployments are compared on the round-based network simulator:
//
//   LOCAL (AND rule)     — a sensor transmits only to raise an alarm; the
//                          base station alarms if anyone alarms. Cheap,
//                          local, silent in the common case — but per
//                          Theorem 1.2 it needs many more samples.
//   REFEREE (threshold)  — every sensor sends its 1-bit verdict; the base
//                          station alarms when >= T sensors look unhappy.
//                          Sample-optimal (Theorem 1.1) but every node
//                          talks every epoch.
//
//   ./sensor_network [--n=1024] [--sensors=32] [--eps=0.5] [--q=96]
#include <iostream>

#include "dist/generators.hpp"
#include "sim/network.hpp"
#include "testers/collision.hpp"
#include "testers/distributed.hpp"
#include "util/cli.hpp"
#include "util/confidence.hpp"
#include "util/table.hpp"

namespace {

using namespace duti;

struct EpochResult {
  bool alarm = false;
  std::uint64_t bits_sent = 0;
  unsigned rounds = 0;
};

/// One epoch on the network simulator. `local_threshold` is each sensor's
/// alarm cutoff on its collision count; `referee_min_alarms` = 0 selects
/// the LOCAL deployment (alarm-only transmission, OR/AND semantics).
EpochResult run_epoch(const SampleSource& environment, unsigned sensors,
                      unsigned q, double local_threshold,
                      std::uint64_t referee_min_alarms, Rng& rng) {
  Network net(sensors + 1);  // node 0 = base station
  net.add_star(0);

  std::uint64_t alarms_received = 0, verdicts_received = 0;
  bool base_alarm = false;

  net.set_behavior(0, [&](RoundContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      if (referee_min_alarms == 0) {
        ++alarms_received;  // LOCAL: any message IS an alarm
      } else {
        ++verdicts_received;
        alarms_received += m.payload.at(0);  // REFEREE: 1 = unhappy
      }
    }
    if (ctx.round() >= 1) {
      base_alarm = referee_min_alarms == 0
                       ? alarms_received > 0
                       : alarms_received >= referee_min_alarms;
      ctx.halt();
    }
  });

  const std::uint64_t run_seed = rng();
  for (NodeId s = 1; s <= sensors; ++s) {
    net.set_behavior(s, [&, s](RoundContext& ctx) {
      std::vector<std::uint64_t> readings;
      environment.sample_many(ctx.rng(), q, readings);
      const bool unhappy =
          static_cast<double>(collision_pairs(readings)) > local_threshold;
      if (referee_min_alarms == 0) {
        if (unhappy) ctx.send(0, {1}, 1);  // speak only to raise an alarm
      } else {
        ctx.send(0, {unhappy ? 1ULL : 0ULL}, 1);  // always report
      }
      ctx.halt();
    });
  }
  Rng net_rng(run_seed);
  const auto stats = net.run(net_rng);
  return {base_alarm, stats.bits_sent, stats.rounds_executed};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto sensors = static_cast<unsigned>(cli.get_int("sensors", 32));
  const double eps = cli.get_double("eps", 0.5);
  const auto q = static_cast<unsigned>(cli.get_int("q", 96));
  const auto epochs = static_cast<int>(cli.get_int("epochs", 150));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  std::cout << "sensor network: " << sensors << " sensors + base station, "
            << q << " measurements/sensor/epoch, healthy = uniform over "
            << n << " buckets, anomaly = " << eps << "-far\n\n";

  const double lambda =
      expected_collision_pairs_uniform(static_cast<double>(n), q);
  // LOCAL deployment: per-sensor false-alarm budget 1/(3*sensors) -> high
  // local bar (the DistributedAndTester recipe).
  const DistributedAndTester and_recipe({n, sensors, q, eps});
  const double local_bar = and_recipe.local_threshold();
  // REFEREE deployment: vote at the uniform mean; alarm when >= T unhappy.
  Rng calib_rng = make_rng(seed, 0);
  const DistributedThresholdTester ref_recipe({n, sensors, q, eps},
                                              calib_rng);

  const UniformSource healthy(n);
  SuccessCounter local_false, local_detect, ref_false, ref_detect;
  std::uint64_t local_bits = 0, ref_bits = 0;
  for (int e = 0; e < epochs; ++e) {
    // Healthy epochs.
    Rng r1 = make_rng(seed, 1, e);
    const auto local_h = run_epoch(healthy, sensors, q, local_bar, 0, r1);
    local_false.record(local_h.alarm);
    local_bits += local_h.bits_sent;
    Rng r2 = make_rng(seed, 2, e);
    const auto ref_h = run_epoch(healthy, sensors, q, lambda,
                                 ref_recipe.referee_threshold(), r2);
    ref_false.record(ref_h.alarm);
    ref_bits += ref_h.bits_sent;
    // Anomalous epochs (fresh anomaly each time).
    Rng gen_rng = make_rng(seed, 3, e);
    const DistributionSource anomaly(gen::paninski(n, eps, gen_rng));
    Rng r3 = make_rng(seed, 4, e);
    local_detect.record(
        run_epoch(anomaly, sensors, q, local_bar, 0, r3).alarm);
    Rng r4 = make_rng(seed, 5, e);
    ref_detect.record(run_epoch(anomaly, sensors, q, lambda,
                                ref_recipe.referee_threshold(), r4)
                          .alarm);
  }

  Table table({"deployment", "false-alarm rate", "detection rate",
               "bits/healthy epoch"});
  table.add_row({std::string("LOCAL (AND rule)"), local_false.rate(),
                 local_detect.rate(),
                 static_cast<double>(local_bits) / epochs});
  table.add_row({std::string("REFEREE (threshold)"), ref_false.rate(),
                 ref_detect.rate(), static_cast<double>(ref_bits) / epochs});
  table.print(std::cout, "one epoch, same q per sensor");

  std::cout
      << "\nThe LOCAL deployment is silent when healthy (cheap!) but at this "
         "q it misses most anomalies;\nthe paper's Theorem 1.2 says that is "
         "inherent: the AND rule needs ~sqrt(n)/eps^2 samples per sensor\n"
         "regardless of the network size, while the threshold deployment "
         "already works at sqrt(n/k)/eps^2.\n";
  const bool ok = ref_detect.rate() > local_detect.rate() &&
                  ref_false.rate() < 1.0 / 3.0;
  return ok ? 0 : 1;
}
