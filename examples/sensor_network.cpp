// Sensor network anomaly detection — the paper's first motivating scenario.
//
// A base station and a field of sensors monitor an environment. Each
// sensor draws q measurements per epoch; measurements are calibrated so
// that a healthy environment produces UNIFORM readings over n buckets,
// while a malfunction or attack skews them (eps-far from uniform).
//
// Two deployments are compared on the round-based network simulator:
//
//   LOCAL (AND rule)     — a sensor transmits only to raise an alarm; the
//                          base station alarms if anyone alarms. Cheap,
//                          local, silent in the common case — but per
//                          Theorem 1.2 it needs many more samples.
//   REFEREE (threshold)  — every sensor sends its 1-bit verdict; the base
//                          station alarms when >= T sensors look unhappy.
//                          Sample-optimal (Theorem 1.1) but every node
//                          talks every epoch.
//
// A third section demonstrates graceful degradation on a multi-hop relay
// grid: votes are convergecast to the base station over lossy links (10%
// drop) with one crashed relay. The naive convergecast silently loses the
// crashed relay's whole subtree; the ACK/retransmit convergecast re-parents
// the orphaned relays and delivers every surviving vote, and its
// degradation report says exactly what was lost.
//
//   ./sensor_network [--n=1024] [--sensors=32] [--eps=0.5] [--q=96]
#include <iostream>

#include "dist/generators.hpp"
#include "sim/network.hpp"
#include "sim/reliable.hpp"
#include "testers/collision.hpp"
#include "testers/distributed.hpp"
#include "util/cli.hpp"
#include "util/confidence.hpp"
#include "util/table.hpp"

namespace {

using namespace duti;

struct EpochResult {
  bool alarm = false;
  std::uint64_t bits_sent = 0;
  unsigned rounds = 0;
};

/// One epoch on the network simulator. `local_threshold` is each sensor's
/// alarm cutoff on its collision count; `referee_min_alarms` = 0 selects
/// the LOCAL deployment (alarm-only transmission, OR/AND semantics).
EpochResult run_epoch(const SampleSource& environment, unsigned sensors,
                      unsigned q, double local_threshold,
                      std::uint64_t referee_min_alarms, Rng& rng) {
  Network net(sensors + 1);  // node 0 = base station
  net.add_star(0);

  std::uint64_t alarms_received = 0, verdicts_received = 0;
  bool base_alarm = false;

  net.set_behavior(0, [&](RoundContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      if (referee_min_alarms == 0) {
        ++alarms_received;  // LOCAL: any message IS an alarm
      } else {
        ++verdicts_received;
        alarms_received += m.payload.at(0);  // REFEREE: 1 = unhappy
      }
    }
    if (ctx.round() >= 1) {
      base_alarm = referee_min_alarms == 0
                       ? alarms_received > 0
                       : alarms_received >= referee_min_alarms;
      ctx.halt();
    }
  });

  const std::uint64_t run_seed = rng();
  for (NodeId s = 1; s <= sensors; ++s) {
    net.set_behavior(s, [&, s](RoundContext& ctx) {
      std::vector<std::uint64_t> readings;
      environment.sample_many(ctx.rng(), q, readings);
      const bool unhappy =
          static_cast<double>(collision_pairs(readings)) > local_threshold;
      if (referee_min_alarms == 0) {
        if (unhappy) ctx.send(0, {1}, 1);  // speak only to raise an alarm
      } else {
        ctx.send(0, {unhappy ? 1ULL : 0ULL}, 1);  // always report
      }
      ctx.halt();
    });
  }
  Rng net_rng(run_seed);
  const auto stats = net.run(net_rng);
  return {base_alarm, stats.bits_sent, stats.rounds_executed};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto sensors = static_cast<unsigned>(cli.get_int("sensors", 32));
  const double eps = cli.get_double("eps", 0.5);
  const auto q = static_cast<unsigned>(cli.get_int("q", 96));
  const auto epochs = static_cast<int>(cli.get_int("epochs", 150));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  std::cout << "sensor network: " << sensors << " sensors + base station, "
            << q << " measurements/sensor/epoch, healthy = uniform over "
            << n << " buckets, anomaly = " << eps << "-far\n\n";

  const double lambda =
      expected_collision_pairs_uniform(static_cast<double>(n), q);
  // LOCAL deployment: per-sensor false-alarm budget 1/(3*sensors) -> high
  // local bar (the DistributedAndTester recipe).
  const DistributedAndTester and_recipe({n, sensors, q, eps});
  const double local_bar = and_recipe.local_threshold();
  // REFEREE deployment: vote at the uniform mean; alarm when >= T unhappy.
  Rng calib_rng = make_rng(seed, 0);
  const DistributedThresholdTester ref_recipe({n, sensors, q, eps},
                                              calib_rng);

  const UniformSource healthy(n);
  SuccessCounter local_false, local_detect, ref_false, ref_detect;
  std::uint64_t local_bits = 0, ref_bits = 0;
  for (int e = 0; e < epochs; ++e) {
    // Healthy epochs.
    Rng r1 = make_rng(seed, 1, e);
    const auto local_h = run_epoch(healthy, sensors, q, local_bar, 0, r1);
    local_false.record(local_h.alarm);
    local_bits += local_h.bits_sent;
    Rng r2 = make_rng(seed, 2, e);
    const auto ref_h = run_epoch(healthy, sensors, q, lambda,
                                 ref_recipe.referee_threshold(), r2);
    ref_false.record(ref_h.alarm);
    ref_bits += ref_h.bits_sent;
    // Anomalous epochs (fresh anomaly each time).
    Rng gen_rng = make_rng(seed, 3, e);
    const DistributionSource anomaly(gen::paninski(n, eps, gen_rng));
    Rng r3 = make_rng(seed, 4, e);
    local_detect.record(
        run_epoch(anomaly, sensors, q, local_bar, 0, r3).alarm);
    Rng r4 = make_rng(seed, 5, e);
    ref_detect.record(run_epoch(anomaly, sensors, q, lambda,
                                ref_recipe.referee_threshold(), r4)
                          .alarm);
  }

  Table table({"deployment", "false-alarm rate", "detection rate",
               "bits/healthy epoch"});
  table.add_row({std::string("LOCAL (AND rule)"), local_false.rate(),
                 local_detect.rate(),
                 static_cast<double>(local_bits) / epochs});
  table.add_row({std::string("REFEREE (threshold)"), ref_false.rate(),
                 ref_detect.rate(), static_cast<double>(ref_bits) / epochs});
  table.print(std::cout, "one epoch, same q per sensor");

  std::cout
      << "\nThe LOCAL deployment is silent when healthy (cheap!) but at this "
         "q it misses most anomalies;\nthe paper's Theorem 1.2 says that is "
         "inherent: the AND rule needs ~sqrt(n)/eps^2 samples per sensor\n"
         "regardless of the network size, while the threshold deployment "
         "already works at sqrt(n/k)/eps^2.\n";
  // --- Part 3: graceful degradation on a faulty multi-hop relay grid. ---
  //
  // 4x4 relay grid, base station at corner 0, the other 15 relays each
  // hold a 1-bit verdict. Every link drops 10% of messages and relay 5
  // (an interior router) is crashed. Votes travel to the base by
  // convergecast: naively (fire and forget) or reliably (ACK/retransmit +
  // re-parenting around the crash).
  const std::uint32_t rows = 4, cols = 4;
  const auto relays = static_cast<unsigned>(rows * cols - 1);
  const double vote_bar = lambda;  // vote at the uniform collision mean
  Rng grid_calib = make_rng(seed, 6);
  const DistributedThresholdTester grid_recipe({n, relays, q, eps},
                                               grid_calib);
  const auto alarm_t = grid_recipe.referee_threshold();

  auto votes_for = [&](const SampleSource& env, Rng& rng) {
    std::vector<std::uint64_t> values(rows * cols, 0);
    std::vector<std::uint64_t> readings;
    for (NodeId s = 1; s < rows * cols; ++s) {
      Rng sensor_rng = make_rng(rng(), s);
      env.sample_many(sensor_rng, q, readings);
      values[s] =
          static_cast<double>(collision_pairs(readings)) > vote_bar ? 1 : 0;
    }
    return values;
  };
  auto make_faulty_grid = [&](Network& net) {
    add_grid(net, rows, cols);
    net.set_default_fault({0.10, 0.0});  // 10% drop on every link
    net.schedule_crash(5, 0);            // one dead interior relay
  };

  SuccessCounter naive_detect, rel_detect, naive_false, rel_false;
  std::uint64_t naive_grid_bits = 0, rel_grid_bits = 0;
  ReliableConvergecastResult last_report;
  for (int e = 0; e < epochs; ++e) {
    auto one_epoch = [&](const SampleSource& env, std::uint64_t stream) {
      Rng vote_rng = make_rng(seed, stream, e);
      const auto values = votes_for(env, vote_rng);
      Network net(rows * cols);
      make_faulty_grid(net);
      const auto tree = bfs_spanning_tree(net, 0);
      Rng rel_rng = make_rng(seed, stream, e, 1);
      const auto rel = convergecast_sum_reliable(net, tree, values, 8,
                                                 rel_rng);
      Network net2(rows * cols);
      make_faulty_grid(net2);
      Rng naive_rng = make_rng(seed, stream, e, 2);
      const auto naive = convergecast_sum(net2, tree, values, 8, naive_rng);
      rel_grid_bits += rel.stats.bits_sent;
      naive_grid_bits += naive.stats.bits_sent;
      return std::pair{naive.root_sum >= alarm_t, rel};
    };
    const auto [naive_h, rel_h] = one_epoch(healthy, 7);
    naive_false.record(naive_h);
    rel_false.record(rel_h.root_sum >= alarm_t);
    Rng gen_rng = make_rng(seed, 8, e);
    const DistributionSource anomaly(gen::paninski(n, eps, gen_rng));
    const auto [naive_a, rel_a] = one_epoch(anomaly, 9);
    naive_detect.record(naive_a);
    rel_detect.record(rel_a.root_sum >= alarm_t);
    last_report = rel_a;
  }

  std::cout << "\nrelay grid " << rows << "x" << cols
            << ", 10% link drop, relay 5 crashed, alarm at >= " << alarm_t
            << " of " << relays << " votes:\n";
  Table degraded({"convergecast", "false-alarm rate", "detection rate",
                  "bits/epoch"});
  degraded.add_row({std::string("naive (fire-and-forget)"),
                    naive_false.rate(), naive_detect.rate(),
                    static_cast<double>(naive_grid_bits) / epochs});
  degraded.add_row({std::string("reliable (ACK/retransmit)"),
                    rel_false.rate(), rel_detect.rate(),
                    static_cast<double>(rel_grid_bits) / epochs});
  degraded.print(std::cout);

  std::cout << "\ndegradation report (last anomalous epoch):\n"
            << "  votes reached base   : " << last_report.values_reached
            << " / " << last_report.values_total << " ("
            << format_double(100.0 * last_report.delivery_fraction(), 3)
            << "%)\n"
            << "  votes lost (no route): " << last_report.values_lost
            << "\n  re-parent events     : " << last_report.reparent_events
            << "\n  retransmissions      : "
            << last_report.transport.retransmissions
            << "\n  overhead bits        : "
            << last_report.transport.overhead_bits << " (payload "
            << last_report.transport.payload_bits << ")\n"
            << "\nThe naive convergecast silences the crashed relay's whole "
               "subtree and every subtree\nbehind a dropped message; the "
               "reliable one re-parents around the crash and loses\nonly the "
               "dead relay's own vote — detection survives at a measured "
               "bit premium.\n";

  const bool ok = ref_detect.rate() > local_detect.rate() &&
                  ref_false.rate() < 1.0 / 3.0 &&
                  rel_detect.rate() > naive_detect.rate() &&
                  rel_false.rate() < 1.0 / 3.0;
  return ok ? 0 : 1;
}
