// Lower-bound explorer: every bound formula in the paper, evaluated for
// YOUR parameters. Useful for sizing a deployment before writing any code:
// "with this many nodes and this eps, how many samples does theory say
// each node must draw — under each decision rule?"
//
//   ./lowerbound_explorer --n=1000000 --k=256 --eps=0.1 [--r=1] [--t=4]
#include <cmath>
#include <iostream>

#include "core/divergence.hpp"
#include "core/predictions.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "lowerbound_explorer --n=1000000 --k=256 --eps=0.1 "
                 "[--r=1] [--t=4]\n";
    return 0;
  }
  const double n = cli.get_double("n", 1e6);
  const double k = cli.get_double("k", 256);
  const double eps = cli.get_double("eps", 0.1);
  const auto r = static_cast<unsigned>(cli.get_int("r", 1));
  const double t = cli.get_double("t", 4);

  std::cout << "universe n = " << n << ", players k = " << k
            << ", proximity eps = " << eps << ", message bits r = " << r
            << ", threshold T = " << t << "\n\n";

  Table table({"setting", "per-node samples q", "source"});
  table.add_row({std::string("centralized (one node draws all)"),
                 predict::centralized_q(n, eps), std::string("[16]")});
  table.add_row({std::string("any decision rule (lower bound)"),
                 predict::thm11_any_rule_q(n, k, eps),
                 std::string("Theorem 1.1")});
  table.add_row({std::string("any rule, explicit constants"),
                 theorem61_q_lower_bound(n, k, eps),
                 std::string("inequality (13)")});
  table.add_row({std::string("threshold tester (upper bound)"),
                 predict::fmo_threshold_tester_q(n, k, eps),
                 std::string("[7]")});
  if (k >= 2) {
    table.add_row({std::string("AND rule (lower bound)"),
                   predict::thm12_and_rule_q(n, k, eps),
                   std::string("Theorem 1.2")});
    table.add_row({std::string("AND-rule tester (upper bound)"),
                   predict::fmo_and_tester_q(n, k, eps),
                   std::string("[7]")});
  }
  table.add_row({std::string("T-threshold rule (lower bound)"),
                 predict::thm13_threshold_q(n, k, eps, t),
                 std::string("Theorem 1.3")});
  table.add_row({std::string("r-bit messages (lower bound)"),
                 predict::thm64_multibit_q(n, k, eps, r),
                 std::string("Theorem 6.4")});
  table.print(std::cout, "sample-complexity predictions");

  std::cout << "\nother quantities:\n";
  std::cout << "  learning to constant l1 error with q-query nodes needs "
               "k >= n^2/q^2 (Theorem 1.4)\n";
  std::cout << "  single-sample testing (q=1, r-bit messages) needs k ~ "
            << predict::act_single_sample_k(n, eps, r) << " nodes [1]\n";
  std::cout << "  T-threshold window applies (k <= sqrt(n), small T): "
            << (predict::thm13_threshold_applies(n, k, eps, t, 10.0)
                    ? "yes"
                    : "no")
            << "\n";
  const double gain_any = predict::centralized_q(n, eps) /
                          predict::thm11_any_rule_q(n, k, eps);
  // The AND rule is a decision rule too, so BOTH Theorem 1.1 and
  // Theorem 1.2 cap its savings; the stronger (larger) lower bound binds.
  const double gain_and =
      k >= 2 ? predict::centralized_q(n, eps) /
                   std::max(predict::thm12_and_rule_q(n, k, eps),
                            predict::thm11_any_rule_q(n, k, eps))
             : 1.0;
  std::cout << "\nbottom line: distributing over " << k
            << " nodes can save a factor of " << format_double(gain_any)
            << " per node with a referee,\nbut at most "
            << format_double(gain_and)
            << " if you insist the network stays local (AND rule).\n";
  return 0;
}
