// Quickstart: distributed uniformity testing in ~40 lines.
//
// A 64-node network wants to know whether an unknown distribution on a
// domain of 4096 elements is uniform or at least 0.5-far from uniform.
// Each node draws a small number of samples, sends ONE bit to a referee,
// and the referee applies a threshold rule — the sample-optimal setup per
// Theorem 1.1 of Meir-Minzer-Oshman (PODC 2019).
//
//   ./quickstart [--n=4096] [--k=64] [--eps=0.5] [--seed=7]
#include <iostream>

#include "core/predictions.hpp"
#include "dist/generators.hpp"
#include "testers/distributed.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const auto k = static_cast<unsigned>(cli.get_int("k", 64));
  const double eps = cli.get_double("eps", 0.5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // How many samples per node? The paper says Theta(sqrt(n/k)/eps^2);
  // a constant of 4 is comfortably inside the tester's working regime.
  const auto q = static_cast<unsigned>(
      predict::fmo_threshold_tester_q(static_cast<double>(n),
                                      static_cast<double>(k), eps, 4.0));
  std::cout << "universe n=" << n << ", nodes k=" << k << ", eps=" << eps
            << " -> " << q << " samples per node ("
            << predict::centralized_q(static_cast<double>(n), eps)
            << " would be needed centrally)\n\n";

  // Build the tester; it calibrates its referee threshold by simulating
  // the uniform distribution (which it knows).
  Rng calib_rng = make_rng(seed, 0);
  const DistributedThresholdTester tester({n, k, q, eps}, calib_rng);

  // Scenario 1: the unknown distribution really is uniform.
  const UniformSource uniform(n);
  Rng rng1 = make_rng(seed, 1);
  std::cout << "input = uniform          -> network says: "
            << (tester.run(uniform, rng1) ? "ACCEPT (uniform)"
                                          : "REJECT (not uniform)")
            << "\n";

  // Scenario 2: an adversarial eps-far distribution (random Paninski
  // pairing — the hardest family, per the paper's Section 3).
  Rng gen_rng = make_rng(seed, 2);
  const DistributionSource far(gen::paninski(n, eps, gen_rng));
  Rng rng2 = make_rng(seed, 3);
  std::cout << "input = eps-far paninski -> network says: "
            << (tester.run(far, rng2) ? "ACCEPT (uniform)"
                                      : "REJECT (not uniform)")
            << "\n\n";

  // Repeat both many times to show the 2/3 success guarantee is met.
  int uniform_ok = 0, far_ok = 0;
  const int reps = 100;
  for (int t = 0; t < reps; ++t) {
    Rng ur = make_rng(seed, 4, t);
    if (tester.run(uniform, ur)) ++uniform_ok;
    Rng gr = make_rng(seed, 5, t);
    const DistributionSource f(gen::paninski(n, eps, gr));
    Rng fr = make_rng(seed, 6, t);
    if (!tester.run(f, fr)) ++far_ok;
  }
  std::cout << "over " << reps << " runs: uniform accepted " << uniform_ok
            << "%, far rejected " << far_ok << "% (target: >= 67%)\n";
  return (uniform_ok >= 67 && far_ok >= 67) ? 0 : 1;
}
