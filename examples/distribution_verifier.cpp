// Distribution verifier — the paper's second motivating scenario.
//
// A distributed algorithm was designed assuming its input stream follows a
// KNOWN distribution eta (say, a Zipf workload model). Before running it,
// the system verifies the assumption: "is the live input distributed like
// eta, or is it far from eta?" Identity testing reduces to uniformity
// testing [Goldreich'16]: map each sample through a bucket expansion built
// from eta, then run the distributed uniformity tester on the expanded
// domain.
//
//   ./distribution_verifier [--n=64] [--k=32] [--eps=0.5]
#include <cmath>
#include <iostream>

#include "dist/generators.hpp"
#include "testers/distributed.hpp"
#include "testers/identity_reduction.hpp"
#include "util/cli.hpp"
#include "util/confidence.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 64));
  const auto k = static_cast<unsigned>(cli.get_int("k", 32));
  const double eps = cli.get_double("eps", 0.5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const auto reps = static_cast<int>(cli.get_int("reps", 100));

  // The workload model the algorithm was designed for.
  const auto eta = gen::zipf(n, 1.0);
  std::cout << "workload model eta = Zipf(1.0) on " << n
            << " keys; verifying live input against it with " << k
            << " nodes\n";

  // Build the reduction: expanded domain of 64*n cells.
  const std::uint64_t expanded = 64 * n;
  const IdentityReduction reduction(eta, expanded);
  std::cout << "bucket expansion: " << expanded
            << " cells, rounding error "
            << format_double(reduction.rounding_error()) << " (l1)\n\n";

  // Uniformity tester on the expanded domain.
  const auto q = static_cast<unsigned>(
      4.0 * std::sqrt(static_cast<double>(expanded) /
                      static_cast<double>(k)) /
      (eps * eps));
  Rng calib_rng = make_rng(seed, 0);
  const DistributedThresholdTester tester({expanded, k, q, eps}, calib_rng);
  std::cout << "each node draws " << q
            << " samples and sends 1 bit per verification\n\n";

  struct Scenario {
    std::string name;
    DiscreteDistribution live;
    bool should_pass;
  };
  Rng scen_rng = make_rng(seed, 1);
  const std::vector<Scenario> scenarios{
      {"live == eta (healthy)", eta, true},
      {"uniform traffic (model broken)", DiscreteDistribution::uniform(n),
       false},
      {"one hot key (attack)", gen::dirac_mixture(n, 0, 0.5), false},
      {"eta with flattened tail", eta.mix(DiscreteDistribution::uniform(n),
                                          0.6),
       false},
  };
  (void)scen_rng;

  Table table({"live input", "l1 dist to eta", "verifier pass rate",
               "verdict"});
  bool all_correct = true;
  for (const auto& scenario : scenarios) {
    const double dist = scenario.live.l1_distance(eta);
    const DistributionSource live_source(scenario.live);
    const ReducedSource reduced(live_source, reduction);
    SuccessCounter passes;
    for (int t = 0; t < reps; ++t) {
      Rng rng = make_rng(seed, 2, t, passes.trials());
      passes.record(tester.run(reduced, rng));
    }
    const bool verdict_ok = scenario.should_pass
                                ? passes.rate() >= 2.0 / 3.0
                                : passes.rate() <= 1.0 / 3.0;
    if (!verdict_ok) all_correct = false;
    table.add_row({scenario.name, dist, passes.rate(),
                   std::string(verdict_ok ? "correct" : "WRONG")});
  }
  table.print(std::cout, "verification outcomes");
  std::cout << "\n(The middle scenarios are far from eta; per the paper, "
               "testing identity to ANY fixed\n distribution costs no more "
               "than uniformity testing — uniformity is complete.)\n";
  return all_correct ? 0 : 1;
}
