# Header self-sufficiency check: compile every src/**/*.hpp and
# tools/**/*.hpp standalone in its own translation unit, so a header that
# silently leans on its includer's includes fails the lint lane instead of
# a future refactor.
#
# The generated object library is EXCLUDE_FROM_ALL; the CTest target
# `header_self_sufficiency` builds it on demand (and is labeled "lint" so
# the lint preset picks it up alongside duti_lint).
function(duti_add_header_self_check)
  file(GLOB_RECURSE duti_headers RELATIVE ${CMAKE_SOURCE_DIR}/src
       CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.hpp)
  # Tool headers (duti_lint, duti_analyze) are spelled repo-relative; the
  # extra include dirs below mirror the tools' own target include paths.
  file(GLOB_RECURSE duti_tool_headers RELATIVE ${CMAKE_SOURCE_DIR}
       CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/tools/*.hpp)
  list(APPEND duti_headers ${duti_tool_headers})
  set(check_tus "")
  foreach(hdr IN LISTS duti_headers)
    string(MAKE_C_IDENTIFIER ${hdr} hdr_id)
    set(tu ${CMAKE_BINARY_DIR}/header_check/check_${hdr_id}.cpp)
    # Only (re)write when the content would change, to keep rebuilds quiet.
    set(tu_content "#include \"${hdr}\"  // self-sufficiency check TU\n")
    if(EXISTS ${tu})
      file(READ ${tu} tu_existing)
    else()
      set(tu_existing "")
    endif()
    if(NOT tu_existing STREQUAL tu_content)
      file(WRITE ${tu} ${tu_content})
    endif()
    list(APPEND check_tus ${tu})
  endforeach()

  add_library(duti_header_check OBJECT EXCLUDE_FROM_ALL ${check_tus})
  target_include_directories(duti_header_check PRIVATE
    ${CMAKE_SOURCE_DIR}
    ${CMAKE_SOURCE_DIR}/src
    ${CMAKE_SOURCE_DIR}/tools/duti_lint
    ${CMAKE_SOURCE_DIR}/tools/duti_analyze)
  find_package(Threads REQUIRED)
  target_link_libraries(duti_header_check PRIVATE Threads::Threads)

  add_test(NAME header_self_sufficiency
    COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
            --target duti_header_check)
  set_tests_properties(header_self_sufficiency PROPERTIES LABELS "lint"
    RUN_SERIAL TRUE)
endfunction()
