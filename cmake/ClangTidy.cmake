# clang-tidy lane, gated on the tool being installed: the checked-in
# .clang-tidy (bugprone-*, performance-*, modernize-use-override,
# readability-container-size-empty) runs over compile_commands.json as the
# CTest target `clang_tidy`. When clang-tidy is absent (e.g. the minimal CI
# container only ships g++) the target is skipped with a status message —
# duti_lint still guards the determinism contract either way.
function(duti_add_clang_tidy_check)
  find_program(DUTI_CLANG_TIDY NAMES clang-tidy clang-tidy-17 clang-tidy-16
               clang-tidy-15 clang-tidy-14)
  if(NOT DUTI_CLANG_TIDY)
    message(STATUS "duti lint lane: clang-tidy not found, clang_tidy test disabled")
    return()
  endif()
  if(NOT CMAKE_EXPORT_COMPILE_COMMANDS)
    message(STATUS "duti lint lane: CMAKE_EXPORT_COMPILE_COMMANDS is OFF, clang_tidy test disabled")
    return()
  endif()
  file(GLOB_RECURSE duti_tidy_sources CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/src/*.cpp
       ${CMAKE_SOURCE_DIR}/bench/*.cpp
       ${CMAKE_SOURCE_DIR}/tests/*.cpp)
  add_test(NAME clang_tidy
    COMMAND ${DUTI_CLANG_TIDY} -p ${CMAKE_BINARY_DIR} --quiet
            --warnings-as-errors=* ${duti_tidy_sources})
  set_tests_properties(clang_tidy PROPERTIES LABELS "lint")
  message(STATUS "duti lint lane: clang_tidy test enabled (${DUTI_CLANG_TIDY})")
endfunction()
