// E6 — Lemma 4.3 (the biased-bit improvement behind the AND-rule bound).
//
// Paper claim: when G is highly biased (small variance),
//   |E_z[nu_z(G)] - mu(G)| <= (q/sqrt(n) + (q/sqrt(n))^{1/(2m+2)})
//                              40 m^2 eps^2 var(G)^{(2m+1)/(2m+2)},
// which beats Lemma 5.1's sqrt(var(G)) dependence precisely when var(G)
// is tiny — biased bits carry even less information.
//
// Two tables:
//   (1) exact |E_z[nu_z(G)] - mu(G)| for AND-of-w message bits versus both
//       bounds — every applicable bound must dominate the exact value;
//   (2) the two bounds as functions of var(G) down to 1e-12, locating the
//       crossover variance below which Lemma 4.3 is the tighter bound
//       (with the paper's explicit constants the crossover sits far below
//       the variances reachable by dense enumeration — that is itself a
//       finding about the constants, recorded in EXPERIMENTS.md).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/message_analysis.hpp"
#include "fourier/families.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e6_lemma43 --ell=3 --q=2 --eps=0.05\n";
    return 0;
  }
  const auto ell = static_cast<unsigned>(cli.get_int("ell", 3));
  const auto q = static_cast<unsigned>(cli.get_int("q", 2));
  const double eps = cli.get_double("eps", 0.05);
  const double n = std::ldexp(1.0, static_cast<int>(ell) + 1);
  const SampleTupleCodec codec(CubeDomain(ell), q);
  const unsigned bits = codec.total_bits();

  bench::banner("E6  Lemma 4.3 biased-function bound vs Lemma 5.1",
                "expected: both bounds dominate the exact value at every "
                "bias; Lemma 4.3's var-exponent (2m+1)/(2m+2) > 1/2 makes "
                "it tighter below a crossover variance");

  // Table 1: exact values vs bounds across bias levels.
  Table exact_table({"AND width w", "mu(G)", "var(G)", "exact |E_z diff|",
                     "lemma5.1 bound", "lemma4.3 m=1", "lemma4.3 m=2"});
  bool all_hold = true;
  for (unsigned w = 1; w <= bits; ++w) {
    const auto g = fn::and_of(bits, (1ULL << w) - 1);
    const MessageAnalysis analysis(codec, g);
    const auto moments = analysis.z_moments_exact(eps);
    const double exact = std::fabs(moments.mean_diff);
    const double var_g = analysis.variance();
    const double b51 = bounds::lemma51_valid(n, q, eps)
                           ? bounds::lemma51_bound(n, q, eps, var_g)
                           : -1.0;
    const double b43m1 = bounds::lemma43_valid(n, q, eps, 1)
                             ? bounds::lemma43_bound(n, q, eps, 1, var_g)
                             : -1.0;
    const double b43m2 = bounds::lemma43_valid(n, q, eps, 2)
                             ? bounds::lemma43_bound(n, q, eps, 2, var_g)
                             : -1.0;
    for (double b : {b51, b43m1, b43m2}) {
      if (b >= 0.0 && exact > b + 1e-12) all_hold = false;
    }
    exact_table.add_row({static_cast<std::int64_t>(w), analysis.mu(), var_g,
                         exact, b51, b43m1, b43m2});
  }
  exact_table.print(
      std::cout, "E6a: exact |E_z[nu_z(G)]-mu(G)| for AND-of-w message bits");
  exact_table.write_csv(bench::output_dir() + "/e6_lemma43_exact.csv");

  // Table 2: the bounds as functions of var(G); locate the crossover.
  Table curve_table({"var(G)", "lemma5.1 bound", "lemma4.3 m=1 bound",
                     "tighter"});
  double crossover = -1.0;
  for (double var_g = 0.25; var_g >= 1e-12; var_g /= 8.0) {
    const double b51 = bounds::lemma51_bound(n, q, eps, var_g);
    const double b43 = bounds::lemma43_bound(n, q, eps, 1, var_g);
    if (b43 < b51 && crossover < 0.0) crossover = var_g;
    curve_table.add_row(
        {var_g, b51, b43, std::string(b43 < b51 ? "4.3" : "5.1")});
  }
  curve_table.print(std::cout, "E6b: bound comparison as var(G) -> 0");
  curve_table.write_csv(bench::output_dir() + "/e6_lemma43_curve.csv");
  std::cout << "all applicable bounds dominate the exact value: "
            << (all_hold ? "YES" : "NO") << "\n"
            << "crossover variance (4.3 tighter below this): "
            << (crossover > 0.0 ? format_double(crossover)
                                : std::string("none in range"))
            << "\n";
  return all_hold && crossover > 0.0 ? 0 : 1;
}
