// Ablation (extension beyond the paper): robustness of decision rules to
// faulty/Byzantine sensors and lossy links.
//
// The paper quantifies the SAMPLE cost of the local (AND) rule; this
// ablation quantifies its FRAGILITY, the other half of the locality
// trade-off: under the AND rule a single stuck-on-reject sensor vetoes the
// whole network forever, while the threshold referee absorbs faults up to
// its margin. A second table shows the multi-hop (convergecast) tester
// under message drops: a dropped partial sum silences its whole subtree
// (the ack-free convergecast never completes there), so the root sees too
// few rejections and detection collapses quickly — quantifying how much
// the one-round referee model's reliability assumption is worth.
#include <iostream>

#include "bench_common.hpp"
#include "dist/generators.hpp"
#include "sim/convergecast.hpp"
#include "testers/distributed.hpp"
#include "testers/tree_tester.hpp"
#include "util/confidence.hpp"

namespace {

using namespace duti;

/// Success rates with `byzantine` players replaced by always-reject votes.
std::pair<double, double> rates_with_byzantine(
    const DistributedTesterConfig& cfg, std::uint64_t referee_t,
    double local_threshold, unsigned byzantine, bool and_rule, int trials,
    std::uint64_t seed) {
  SuccessCounter uniform_ok, far_ok;
  const UniformSource uniform(cfg.n);
  const auto factory = make_collision_voters(cfg.q, local_threshold);
  auto run_once = [&](const SampleSource& source, Rng& rng) {
    std::uint64_t rejects = 0;
    std::vector<std::uint64_t> samples;
    for (unsigned j = 0; j < cfg.k; ++j) {
      if (j < byzantine) {
        ++rejects;  // stuck-on-alarm sensor
        continue;
      }
      Rng player_rng = make_rng(rng(), j);
      source.sample_many(player_rng, cfg.q, samples);
      auto player = factory(j);
      if (!player->decide(samples, player_rng).as_bit()) ++rejects;
    }
    return and_rule ? rejects == 0 : rejects < referee_t;
  };
  for (int t = 0; t < trials; ++t) {
    Rng r1 = make_rng(seed, 1, t);
    uniform_ok.record(run_once(uniform, r1));
    Rng g = make_rng(seed, 2, t);
    const DistributionSource far(gen::paninski(cfg.n, cfg.eps, g));
    Rng r2 = make_rng(seed, 3, t);
    far_ok.record(!run_once(far, r2));
  }
  return {uniform_ok.rate(), far_ok.rate()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "ablation_byzantine --n=1024 --k=64 --eps=0.5 --q=96 "
                 "--trials=150\n";
    return 0;
  }
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const auto k = static_cast<unsigned>(cli.get_int("k", 64));
  const double eps = cli.get_double("eps", 0.5);
  const auto q = static_cast<unsigned>(cli.get_int("q", 96));
  const auto trials = static_cast<int>(cli.get_int("trials", 150));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  bench::banner("Ablation: fault tolerance of decision rules (extension)",
                "expected: one Byzantine sensor destroys the AND rule's "
                "uniform side; the threshold referee absorbs faults up to "
                "its margin; convergecast drops silence whole subtrees and\n"
                "collapse detection - quantifying the need for retransmission");

  const DistributedTesterConfig cfg{n, k, q, eps};
  Rng calib = make_rng(seed, 0);
  const DistributedThresholdTester threshold_recipe(cfg, calib);
  const DistributedAndTester and_recipe(cfg);

  Table table({"byzantine sensors", "AND uniform-accept", "AND far-reject",
               "threshold uniform-accept", "threshold far-reject"});
  for (unsigned byz : {0u, 1u, 2u, 4u, 8u}) {
    const auto [and_u, and_f] = rates_with_byzantine(
        cfg, 0, and_recipe.local_threshold(), byz, /*and_rule=*/true, trials,
        derive_seed(seed, byz, 1));
    const auto [thr_u, thr_f] = rates_with_byzantine(
        cfg, threshold_recipe.referee_threshold(),
        threshold_recipe.local_threshold(), byz, /*and_rule=*/false, trials,
        derive_seed(seed, byz, 2));
    table.add_row({static_cast<std::int64_t>(byz), and_u, and_f, thr_u,
                   thr_f});
  }
  table.print(std::cout, "stuck-on-alarm sensors");
  table.write_csv(bench::output_dir() + "/ablation_byzantine.csv");

  // Message drops on a multi-hop grid: convergecast loses subtree votes.
  Table drop_table({"drop prob", "uniform accept", "anomaly detect",
                    "avg votes lost"});
  for (double drop : {0.0, 0.05, 0.15, 0.3}) {
    SuccessCounter uniform_ok, far_ok;
    double votes_lost = 0.0;
    int epochs = trials / 2;
    for (int e = 0; e < epochs; ++e) {
      Network net(36);
      add_grid(net, 6, 6);
      net.set_default_fault({drop, 0.0});
      Rng c = make_rng(seed, static_cast<std::uint64_t>(drop * 100), e, 0);
      const TreeUniformityTester tester(net, 0, {n, q, eps}, c, 2000);
      const UniformSource uniform(n);
      Rng r1 = make_rng(seed, static_cast<std::uint64_t>(drop * 100), e, 1);
      const auto healthy = tester.run_epoch(uniform, r1);
      uniform_ok.record(healthy.accept);
      votes_lost += static_cast<double>(healthy.stats.messages_dropped);
      Rng g = make_rng(seed, static_cast<std::uint64_t>(drop * 100), e, 2);
      const DistributionSource far(gen::paninski(n, eps, g));
      Rng r2 = make_rng(seed, static_cast<std::uint64_t>(drop * 100), e, 3);
      far_ok.record(!tester.run_epoch(far, r2).accept);
    }
    drop_table.add_row({drop, uniform_ok.rate(), far_ok.rate(),
                        votes_lost / epochs});
  }
  drop_table.print(std::cout, "message drops on a 6x6 grid (36 sensors)");
  drop_table.write_csv(bench::output_dir() + "/ablation_drops.csv");
  return 0;
}
