// E14 (extension beyond the paper): chaos campaign over the fault-tolerant
// simulation stack.
//
// Sweeps N seeded random fault schedules (crash sets, outage windows,
// corruption/delay bursts, Byzantine subsets, combined stacks) over the
// sim network + reliable transport + self-healing convergecast + robust
// referee, checking the oracle registry after every run: message
// conservation, transport accounting, bit-identical token replay, and —
// for schedules inside the transport's provable tolerance — exact verdict
// agreement with the analytic prediction and the fault-free baseline.
// Any violation is shrunk to a minimal reproducer and printed as a replay
// token; rerun it with --replay=<token>. The process exits nonzero when
// any oracle fired, so the campaign can gate CI.
//
//   e14_chaos --seeds=256 --seed0=1 --quick
//   e14_chaos --replay='chaos1;t=path;vp=10;...'
//   e14_chaos --inject-retry-deficit=4   # demo: watch the oracles catch it
//
// The JSON summary lands in $DUTI_BENCH_OUT/BENCH_chaos.json.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "chaos/engine.hpp"
#include "chaos/oracles.hpp"
#include "chaos/schedule.hpp"

namespace {

using namespace duti;
using namespace duti::chaos;

void print_run(const RunResult& r) {
  std::cout << "  outcome=" << static_cast<int>(r.outcome)
            << " root_sum=" << r.root_sum << " reached=" << r.values_reached
            << " lost=" << r.values_lost
            << " reparents=" << r.reparent_events
            << " msgs=" << r.net.messages_sent << " (delivered "
            << r.net.messages_delivered << ", lost " << r.net.messages_lost()
            << ")\n  fingerprint=" << std::hex << r.fingerprint() << std::dec
            << "\n";
}

int replay_mode(const std::string& token, const ChaosHooks& hooks) {
  std::cout << "replaying: " << token << "\n";
  const ScenarioSpec spec = parse_token(token);
  const ScenarioReport report = check_scenario(spec, hooks);
  print_run(report.run);
  if (report.violations.empty()) {
    std::cout << "all oracles clean\n";
    return 0;
  }
  std::cout << describe_failure(report.token, report.violations) << "\n";
  return 1;
}

void write_json(const CampaignConfig& cfg, const CampaignSummary& summary) {
  std::string failures = "[";
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    const CampaignFailure& fail = summary.failures[i];
    std::string oracles;
    for (std::size_t v = 0; v < fail.violations.size(); ++v) {
      if (v > 0) oracles += ", ";
      oracles += bench::json_str(fail.violations[v].oracle);
    }
    failures += i == 0 ? "\n" : ",\n";
    failures += "    {\"seed\": " + bench::json_u64(fail.seed) +
                ", \"components\": " + bench::json_u64(fail.components) +
                ", \"shrunk_components\": " +
                bench::json_u64(fail.shrunk_components) +
                ",\n     \"token\": " + bench::json_str(fail.token) +
                ",\n     \"shrunk_token\": " +
                bench::json_str(fail.shrunk_token) +
                ",\n     \"oracles\": [" + oracles + "]}";
  }
  failures += summary.failures.empty() ? "]" : "\n  ]";
  char fp[24];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(summary.fingerprint));
  const std::string path = bench::emit_bench_json(
      "chaos",
      {{"seed0", bench::json_u64(summary.seed0)},
       {"num_seeds", bench::json_u64(summary.num_seeds)},
       {"retry_deficit", bench::json_u64(cfg.hooks.retry_deficit)},
       {"total_components", bench::json_u64(summary.total_components)},
       {"outcomes",
        "{\"accept\": " + bench::json_u64(summary.outcome_counts[0]) +
            ", \"reject\": " + bench::json_u64(summary.outcome_counts[1]) +
            ", \"abort_quorum\": " +
            bench::json_u64(summary.outcome_counts[2]) +
            ", \"abort_timeout\": " +
            bench::json_u64(summary.outcome_counts[3]) + "}"},
       {"campaign_fingerprint", bench::json_str(fp)},
       {"violations", bench::json_u64(summary.failures.size())},
       {"failures", failures}});
  if (!path.empty()) std::cout << "JSON summary written to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e14_chaos --seeds=256 --seed0=1 --quick "
                 "[--replay=<token>] [--inject-retry-deficit=N]\n";
    return 0;
  }
  ChaosHooks hooks;
  hooks.retry_deficit = static_cast<unsigned>(
      cli.get_int("inject-retry-deficit", 0));

  const std::string token = cli.get_string("replay", "");
  if (!token.empty()) return replay_mode(token, hooks);

  CampaignConfig cfg;
  cfg.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0", 1));
  cfg.num_seeds = static_cast<std::uint32_t>(cli.get_int("seeds", 256));
  cfg.hooks = hooks;
  if (cli.get_bool("quick", false)) {
    cfg.num_seeds = std::min<std::uint32_t>(cfg.num_seeds, 64);
  }

  bench::banner(
      "E14: chaos campaign — seeded fault schedules vs the oracle registry "
      "(extension)",
      "expected: zero violations on the shipped tree, bit-identically at\n"
      "any DUTI_THREADS; with --inject-retry-deficit the predicted-verdict\n"
      "oracle flags in-tolerance outage schedules and shrinks them to\n"
      "minimal replay tokens.");
  std::cout << "seed0=" << cfg.seed0 << " seeds=" << cfg.num_seeds
            << " retry_deficit=" << cfg.hooks.retry_deficit
            << " threads=" << ThreadPool::global().size() << "\n\n";

  const CampaignSummary summary = run_campaign(cfg, ThreadPool::global());

  Table table({"outcome", "runs"});
  const char* names[4] = {"accept", "reject", "abort_quorum",
                          "abort_timeout"};
  for (int i = 0; i < 4; ++i) {
    table.add_row({std::string(names[i]),
                   static_cast<std::int64_t>(summary.outcome_counts[i])});
  }
  table.print(std::cout);
  std::cout << "total fault components: " << summary.total_components
            << "\ncampaign fingerprint:   " << std::hex
            << summary.fingerprint << std::dec << "\n";

  for (const CampaignFailure& fail : summary.failures) {
    std::cout << "\nseed " << fail.seed << " (" << fail.components
              << " components, shrunk to " << fail.shrunk_components
              << "):\n"
              << describe_failure(fail.shrunk_token, fail.violations)
              << "\n";
  }

  write_json(cfg, summary);

  if (!summary.clean()) {
    std::cout << "\nCHAOS: " << summary.failures.size() << " of "
              << cfg.num_seeds << " schedules violated an oracle\n";
    return 1;
  }
  std::cout << "\nall " << cfg.num_seeds << " schedules clean\n";
  return 0;
}
