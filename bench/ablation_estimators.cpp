// Ablation D1 — exact enumeration vs Monte-Carlo estimation of the
// z-moments E_z[(nu_z(G)-mu(G))^2].
//
// The tests validate the Monte-Carlo estimators against exact enumeration
// on small universes; this ablation quantifies the trade-off: how many
// z-samples does the MC estimator need to reach a given relative error,
// and what does each method cost? The table justifies the defaults used by
// the lemma benches.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/message_analysis.hpp"
#include "fourier/families.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "ablation_estimators --ell=3 --q=2 --eps=0.2 --seed=1\n";
    return 0;
  }
  const auto ell = static_cast<unsigned>(cli.get_int("ell", 3));
  const auto q = static_cast<unsigned>(cli.get_int("q", 2));
  const double eps = cli.get_double("eps", 0.2);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  bench::banner("Ablation D1: exact vs Monte-Carlo z-moment estimation",
                "expected: MC relative error ~ 1/sqrt(trials); exact "
                "enumeration feasible only for ell <= 4");

  Rng fn_rng(seed);
  const SampleTupleCodec codec(CubeDomain(ell), q);
  const auto g = fn::random_boolean(codec.total_bits(), 0.3, fn_rng);
  const MessageAnalysis analysis(codec, g);

  using Clock = std::chrono::steady_clock;
  // duti-lint: allow(no-wall-clock) -- timing the exact enumerator is the
  // point of this ablation; the moments themselves are seed-deterministic.
  const auto exact_start = Clock::now();
  const auto exact = analysis.z_moments_exact(eps);
  const double exact_ms =
      // duti-lint: allow(no-wall-clock) -- closes the exact-path timer.
      std::chrono::duration<double, std::milli>(Clock::now() - exact_start)
          .count();

  Table table({"method", "z trials", "second moment", "rel error",
               "time (ms)"});
  table.add_row({std::string("exact"),
                 static_cast<std::int64_t>(1LL << (1 << ell)),
                 exact.second_moment, 0.0, exact_ms});
  for (std::size_t trials : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    Rng rng(derive_seed(seed, trials));
    // duti-lint: allow(no-wall-clock) -- times the MC estimator for the
    // cost-vs-accuracy table; estimates depend only on derive_seed streams.
    const auto mc_start = Clock::now();
    const auto mc = analysis.z_moments_mc(eps, trials, rng);
    const double mc_ms =
        // duti-lint: allow(no-wall-clock) -- closes the MC timer.
        std::chrono::duration<double, std::milli>(Clock::now() - mc_start)
            .count();
    const double rel =
        exact.second_moment > 0.0
            ? std::fabs(mc.second_moment - exact.second_moment) /
                  exact.second_moment
            : 0.0;
    table.add_row({std::string("monte-carlo"),
                   static_cast<std::int64_t>(trials), mc.second_moment, rel,
                   mc_ms});
  }
  table.print(std::cout, "D1 ablation (ell=" + std::to_string(ell) +
                             ", q=" + std::to_string(q) + ")");
  table.write_csv(bench::output_dir() + "/ablation_estimators.csv");
  return 0;
}
