// E4 — Theorem 1.4 (distributed learning of an unknown distribution).
//
// duti-lint: allow-file(no-serial-sweep-loop) -- the searched resource is
// k (node count) for a LEARNING protocol, not a two-sided uniformity
// probe: the sweep engine's declarative cache identity does not describe
// this probe, and a raw-probe port would run uncached, buying nothing.
//
// Paper claim (lower bound): any q-query 1-bit protocol computing a
// delta-approximation needs k = Omega(n^2/q^2) nodes. The natural 1-bit
// upper bound we implement (presence-bit learner) needs
// k = O(n^2/(q delta^2)) — a factor-q gap the paper leaves open.
//
// The bench measures the minimal k (in multiples of n) at which the
// learner's l1 error hits the target on both uniform and structured
// truths, across q. Checks reported:
//   (1) consistency — every measured k* lies ABOVE the paper's n^2/q^2
//       lower-bound curve;
//   (2) the measured decay exponent of k* in q (expected near -1 for this
//       protocol; the paper's bound only forbids anything below -2).
#include <iostream>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "dist/generators.hpp"
#include "stats/harness.hpp"
#include "testers/learner.hpp"

namespace {

using namespace duti;

/// Success = learned distribution within `delta` of the truth in l1.
ProbeResult learning_probe(std::uint64_t n, std::uint64_t k, unsigned q,
                           double delta, std::size_t trials,
                           std::uint64_t seed) {
  const PresenceBitLearner learner(n, k, q);
  SuccessCounter uniform_side, structured_side;
  for (std::size_t t = 0; t < trials; ++t) {
    {
      const auto truth = DiscreteDistribution::uniform(n);
      Rng rng = make_rng(seed, 1, t);
      uniform_side.record(learner.learn_l1_error(truth, rng) <= delta);
    }
    {
      Rng gen_rng = make_rng(seed, 2, t);
      const auto truth = gen::random_perturbation(n, 1.0, gen_rng);
      Rng rng = make_rng(seed, 3, t);
      structured_side.record(learner.learn_l1_error(truth, rng) <= delta);
    }
  }
  ProbeResult out;
  out.trials = trials;
  out.uniform_accept_rate = uniform_side.rate();
  out.far_reject_rate = structured_side.rate();  // reused as "side 2"
  out.uniform_ci = uniform_side.wilson();
  out.far_ci = structured_side.wilson();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e4_learning --n=64 --delta=0.3 --qs=1,2,4,8,16 "
                 "--trials=40 --seed=1\n";
    return 0;
  }
  const Cli& c = cli;
  const auto n = static_cast<std::uint64_t>(c.get_int("n", 64));
  const double delta = c.get_double("delta", 0.3);
  auto qs = c.get_int_list("qs", {1, 2, 4, 8, 16});
  const auto trials = static_cast<std::size_t>(c.get_int("trials", 40));
  const auto seed = static_cast<std::uint64_t>(c.get_int("seed", 1));
  if (c.get_bool("quick", false)) qs = {1, 4, 16};

  bench::banner("E4  distributed learning, k* vs q  [Thm 1.4]",
                "expected: measured k* above the paper's n^2/q^2 lower "
                "bound; this 1-bit protocol decays like ~n^2/q (gap open)");

  Table table({"q", "k* (measured, multiples of n)", "thm1.4 lower bound",
               "natural upper-bound shape n^2/q"});
  std::vector<double> xs, measured, lower_curve;
  for (const auto q : qs) {
    // Search k in units of n (the learner needs k >= n).
    const ProbeFn probe = [&, q](std::uint64_t k_units) {
      return learning_probe(n, k_units * n, static_cast<unsigned>(q), delta,
                            trials, derive_seed(seed, q, k_units));
    };
    MinSearchConfig cfg;
    cfg.lo = 1;
    cfg.hi = 1ULL << 14;
    cfg.trials = trials;
    cfg.seed = derive_seed(seed, q);
    const auto result = find_min_param(probe, cfg);
    if (!result.found) {
      std::cout << "q=" << q << ": search failed\n";
      continue;
    }
    const double k_star = static_cast<double>(result.minimum * n);
    const double lower = predict::thm14_learning_k(static_cast<double>(n),
                                                   static_cast<double>(q));
    table.add_row({q, static_cast<std::int64_t>(result.minimum), lower,
                   static_cast<double>(n) * static_cast<double>(n) /
                       static_cast<double>(q)});
    xs.push_back(static_cast<double>(q));
    measured.push_back(k_star);
    lower_curve.push_back(lower);
  }
  table.print(std::cout, "E4: nodes needed to learn to l1 error delta");
  table.write_csv(bench::output_dir() + "/e4_learning.csv");

  if (xs.size() >= 2) {
    const auto fit = fit_power_law(xs, measured);
    std::cout << "measured decay exponent of k* in q: "
              << format_double(fit.slope)
              << "  (protocol theory: ~-1; paper forbids below -2)\n";
    bool consistent = true;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      // The paper's Omega() hides a constant; demand consistency at c=1/4.
      if (measured[i] < 0.25 * lower_curve[i]) consistent = false;
    }
    std::cout << "measured k* consistent with the n^2/q^2 lower bound: "
              << (consistent ? "YES" : "NO") << "\n";
    return (consistent && fit.slope > -2.0) ? 0 : 1;
  }
  return 0;
}
