// E13 (extension beyond the paper): what fault tolerance costs.
//
// duti-lint: allow-file(no-serial-sweep-loop) -- these probes are
// fault-aware (probe_success_ex over RefereeOutcome, abort attribution);
// the sweep engine's declarative path only speaks the boolean two-sided
// probe, so the searches here stay direct until the engine grows an _ex
// lane.
//
// Three sweeps, all against the distributed threshold tester of [7] at
// fixed (n, k, eps):
//
//  1. Crash faults: minimal q vs crash fraction, naive referee (silence
//     counts as an alarm) vs quorum referee (threshold recalibrated to the
//     survivors). Prediction: the quorum rule's minimum scales like
//     q*(m) ~ sqrt(n/m)/eps^2 with m = (1-c) k survivors, i.e. a factor
//     1/sqrt(1-c) over the fault-free minimum, while the naive rule's
//     uniform side false-alarms itself below the 2/3 bar once
//     c k missing bits exceed its threshold margin (O(sqrt(k)) bits, so a
//     few percent of k) and NO amount of samples rescues it.
//
//  2. Byzantine stuck-at-one bits: minimal q for the naive sum vs
//     median-of-groups vs trimmed-mean aggregation.
//
//  3. Transport: multi-hop convergecast under link drops, naive vs
//     ACK/retransmit (reliable) — delivery fraction, exact-recovery rate,
//     and the honest bit overhead of reliability.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "dist/generators.hpp"
#include "sim/reliable.hpp"
#include "testers/robust_rules.hpp"

namespace {

using namespace duti;

SourceFactory uniform_factory(std::uint64_t n) {
  return [n](Rng&) { return std::make_unique<UniformSource>(n); };
}

SourceFactory far_factory(std::uint64_t n, double eps) {
  return [n, eps](Rng& rng) {
    return std::make_unique<DistributionSource>(gen::paninski(n, eps, rng));
  };
}

struct SweepSetup {
  std::uint64_t n;
  unsigned k;
  double eps;
  std::size_t trials;
  std::uint64_t seed;
  std::uint64_t hi;  // give-up cap for the q search
};

const char* rule_name(RobustThresholdTester::Rule rule) {
  switch (rule) {
    case RobustThresholdTester::Rule::kNaive: return "naive";
    case RobustThresholdTester::Rule::kQuorum: return "quorum";
    case RobustThresholdTester::Rule::kMedianOfGroups: return "median";
    case RobustThresholdTester::Rule::kTrimmed: return "trimmed";
  }
  return "?";
}

/// Minimal q clearing the 2/3 bar (0 if even `hi` fails), plus the probe at
/// the found minimum (or at `hi`) for rate/abort reporting.
std::pair<std::uint64_t, ProbeResult> min_q_under(
    const SweepSetup& s, const FaultPlan& plan,
    RobustThresholdTester::Rule rule) {
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = s.hi;
  cfg.trials = s.trials;
  cfg.seed = s.seed;
  const auto probe = [&](std::uint64_t q) {
    Rng calib(derive_seed(s.seed, 0xCA11B, q));
    const RobustThresholdTester tester(
        {s.n, s.k, static_cast<unsigned>(q), s.eps}, plan, rule, calib);
    return probe_success_ex(
        [&tester](const SampleSource& src, Rng& r) {
          return tester.outcome(src, r);
        },
        uniform_factory(s.n), far_factory(s.n, s.eps), cfg.trials, cfg.seed);
  };
  const auto result = find_min_param(probe, cfg);
  // Report the rates measured AT the minimum (the binary search's last
  // probe may be a failing midpoint), or at the cap when nothing passed.
  const std::uint64_t at = result.found ? result.minimum : cfg.hi;
  ProbeResult shown = result.probes.back().second;
  for (const auto& [value, probed] : result.probes) {
    if (value == at) shown = probed;
  }
  return {result.found ? result.minimum : 0, shown};
}

/// Gate bookkeeping: each sweep reports whether every robust rule cleared
/// its advertised bar; main() exits nonzero otherwise so the bench can
/// gate CI instead of silently printing a dead rule.
struct GateResult {
  bool ok = true;
  void fail(const std::string& what) {
    ok = false;
    std::cout << "GATE FAIL: " << what << "\n";
  }
};

bool sweep_crash(const SweepSetup& s) {
  GateResult gate;
  std::cout << "\n-- crash faults: minimal q, naive vs quorum referee --\n";
  Table table({"crash_frac", "rule", "min_q", "q_ratio", "pred_ratio",
               "uniform_rate", "far_rate", "abort_frac"});
  std::vector<double> frac = {0.0, 0.05, 0.1, 0.2, 0.3};
  std::vector<double> xs, measured, predicted;
  std::uint64_t q_free = 0;
  for (const double c : frac) {
    FaultPlan plan;
    plan.crash_fraction = c;
    for (const auto rule : {RobustThresholdTester::Rule::kNaive,
                            RobustThresholdTester::Rule::kQuorum}) {
      const auto [min_q, probe] = min_q_under(s, plan, rule);
      if (c == 0.0 && rule == RobustThresholdTester::Rule::kNaive) {
        q_free = min_q;
      }
      const double ratio =
          (q_free > 0 && min_q > 0)
              ? static_cast<double>(min_q) / static_cast<double>(q_free)
              : 0.0;
      const double pred = 1.0 / std::sqrt(1.0 - c);
      table.add_row({c, std::string(rule_name(rule)),
                     static_cast<std::int64_t>(min_q), ratio, pred,
                     probe.uniform_accept_rate, probe.far_reject_rate,
                     static_cast<double>(probe.aborts()) /
                         static_cast<double>(2 * probe.trials)});
      if (rule == RobustThresholdTester::Rule::kQuorum && min_q > 0 &&
          c > 0.0) {
        xs.push_back(1.0 - c);
        measured.push_back(static_cast<double>(min_q));
        predicted.push_back(static_cast<double>(q_free) * pred);
      }
      // The quorum referee advertises surviving every swept crash
      // fraction: failing to find ANY q below the cap means the rule
      // itself is broken, not just expensive.
      if (rule == RobustThresholdTester::Rule::kQuorum && min_q == 0) {
        gate.fail("quorum referee found no passing q at crash_frac=" +
                  std::to_string(c));
      }
    }
  }
  table.print(std::cout);
  table.write_csv(bench::output_dir() + "/e13_crash.csv");
  if (xs.size() >= 3) {
    bench::print_shape(xs, measured, predicted,
                       "quorum min q vs survivor fraction");
  }
  return gate.ok;
}

bool sweep_byzantine(const SweepSetup& s) {
  GateResult gate;
  std::cout << "\n-- Byzantine stuck-at-one bits: minimal q by referee --\n";
  Table table({"byz_frac", "rule", "min_q", "uniform_rate", "far_rate"});
  for (const double b : {0.0, 0.05, 0.1, 0.15}) {
    FaultPlan plan;
    plan.byzantine_fraction = b;
    plan.byzantine_mode = ByzantineMode::kStuckAtOne;
    for (const auto rule : {RobustThresholdTester::Rule::kNaive,
                            RobustThresholdTester::Rule::kMedianOfGroups,
                            RobustThresholdTester::Rule::kTrimmed}) {
      const auto [min_q, probe] = min_q_under(s, plan, rule);
      table.add_row({b, std::string(rule_name(rule)),
                     static_cast<std::int64_t>(min_q),
                     probe.uniform_accept_rate, probe.far_reject_rate});
      // Advertised bars: median-of-groups absorbs every swept fraction;
      // the trimmed mean holds strictly below its 10% trim floor (at the
      // floor the stuck bits exactly fill the trimmed slots and the rule
      // is expected to die — the naive rule is never gated at all).
      const bool must_pass =
          rule == RobustThresholdTester::Rule::kMedianOfGroups ||
          (rule == RobustThresholdTester::Rule::kTrimmed && b < 0.1 - 1e-9);
      if (must_pass && min_q == 0) {
        gate.fail(std::string(rule_name(rule)) +
                  " referee found no passing q at byz_frac=" +
                  std::to_string(b));
      }
    }
  }
  table.print(std::cout);
  table.write_csv(bench::output_dir() + "/e13_byzantine.csv");
  return gate.ok;
}

bool sweep_transport(std::size_t trials, std::uint64_t seed) {
  GateResult gate;
  std::cout << "\n-- convergecast transport: naive vs ACK/retransmit --\n";
  struct Topo {
    const char* name;
    std::uint32_t k;
    void (*build)(Network&);
  };
  const Topo topos[] = {
      {"path8", 8, [](Network& n) { add_path(n); }},
      {"grid4x4", 16, [](Network& n) { add_grid(n, 4, 4); }},
      {"btree15", 15, [](Network& n) { add_binary_tree(n); }},
  };
  Table table({"topology", "drop", "naive_deliv", "rel_deliv", "rel_exact",
               "retx_per_msg", "overhead_x"});
  for (const auto& topo : topos) {
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3}) {
      double naive_deliv = 0, rel_deliv = 0, rel_exact = 0;
      double retx = 0, data = 0, rel_bits = 0, naive_bits = 0;
      std::vector<std::uint64_t> values(topo.k, 1);
      const double expected = static_cast<double>(topo.k);
      for (std::size_t t = 0; t < trials; ++t) {
        Network net(topo.k);
        topo.build(net);
        net.set_default_fault({drop, 0.0});
        const auto tree = bfs_spanning_tree(net, 0);
        Rng rng = make_rng(seed, 0xE13, t);
        const auto rel =
            convergecast_sum_reliable(net, tree, values, 16, rng);
        rel_deliv += rel.delivery_fraction();
        rel_exact += (rel.root_sum == topo.k) ? 1.0 : 0.0;
        retx += static_cast<double>(rel.transport.retransmissions);
        data += static_cast<double>(rel.transport.data_sent);
        rel_bits += static_cast<double>(rel.stats.bits_sent);
        Network net2(topo.k);
        topo.build(net2);
        net2.set_default_fault({drop, 0.0});
        Rng rng2 = make_rng(seed, 0xE13, t);
        const auto naive = convergecast_sum(net2, tree, values, 16, rng2);
        naive_deliv += static_cast<double>(naive.root_sum) / expected;
        naive_bits += static_cast<double>(naive.stats.bits_sent);
      }
      const auto tn = static_cast<double>(trials);
      table.add_row({std::string(topo.name), drop, naive_deliv / tn,
                     rel_deliv / tn, rel_exact / tn, retx / data,
                     rel_bits / naive_bits});
      // ACK/retransmit advertises (near-)exact recovery across the whole
      // sweep; measured rates sit at 0.98+ even at 30% drop, so 0.9 leaves
      // room for trial noise without letting a real regression through.
      if (rel_exact / tn < 0.9) {
        gate.fail(std::string("reliable transport exact-recovery ") +
                  std::to_string(rel_exact / tn) + " < 0.9 on " + topo.name +
                  " at drop=" + std::to_string(drop));
      }
    }
  }
  table.print(std::cout);
  table.write_csv(bench::output_dir() + "/e13_transport.csv");
  return gate.ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e13_fault_tolerance --n=256 --k=60 --eps=0.5 "
                 "--trials=150 --seed=1 --quick\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  SweepSetup s;
  s.n = static_cast<std::uint64_t>(cli.get_int("n", 256));
  s.k = static_cast<unsigned>(cli.get_int("k", 60));
  s.eps = cli.get_double("eps", 0.5);
  s.trials = static_cast<std::size_t>(flags.trials);
  s.seed = static_cast<std::uint64_t>(flags.seed);
  s.hi = flags.quick ? (1 << 8) : (1 << 10);
  if (flags.quick) s.trials = std::min<std::size_t>(s.trials, 60);

  bench::banner(
      "E13: fault tolerance — crash/Byzantine referees and reliable "
      "transport (extension)",
      "expected: naive referee dies at a few percent crashed players\n"
      "(min_q = 0 means no q below the cap clears 2/3); quorum referee\n"
      "tracks q_free/sqrt(1-c); median/trimmed absorb stuck-at-one bits;\n"
      "ACK/retransmit restores exact sums under drops at a measured bit "
      "cost.");
  std::cout << "n=" << s.n << " k=" << s.k << " eps=" << s.eps
            << " trials=" << s.trials << " seed=" << s.seed
            << " q_cap=" << s.hi << "\n";

  bool ok = true;
  ok &= sweep_crash(s);
  ok &= sweep_byzantine(s);
  ok &= sweep_transport(s.trials, s.seed);
  std::cout << "\nCSV written to " << bench::output_dir()
            << "/e13_{crash,byzantine,transport}.csv\n";
  if (!ok) {
    std::cout << "\nE13: at least one robust rule fell below its advertised "
                 "success bar (see GATE FAIL lines above)\n";
    return 1;
  }
  return 0;
}
