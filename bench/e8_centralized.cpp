// E8 — the centralized baseline [Paninski'08]: q = Theta(sqrt(n)/eps^2).
//
// Every distributed result in the paper is measured against this baseline.
// The bench measures the collision tester's minimal q (a) across n at
// fixed eps (expected log-log slope 1/2) and (b) across eps at fixed n
// (expected slope -2).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "stats/workloads.hpp"
#include "testers/centralized.hpp"

namespace {

using namespace duti;

template <typename Tester>
std::uint64_t measure_q_star(std::uint64_t n, double eps, std::size_t trials,
                             std::uint64_t seed,
                             SamplingKernel kernel = SamplingKernel::kPerSample) {
  const ProbeFn probe = [=](std::uint64_t q) {
    const Tester tester(n, eps, static_cast<unsigned>(q), kernel);
    const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
      return tester.run(src, rng);
    };
    return probe_success(run, workloads::uniform_factory(n),
                         workloads::paninski_far_factory(n, eps), trials,
                         derive_seed(seed, q));
  };
  MinSearchConfig cfg;
  cfg.lo = 2;
  cfg.hi = 1ULL << 18;
  cfg.trials = trials;
  cfg.seed = seed;
  const auto result = find_min_param(probe, cfg);
  return result.found ? result.minimum : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e8_centralized --eps=0.5 --n=4096 "
                 "--ns=256,1024,4096,16384 --trials=200 "
                 "--kernel=persample|counts\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  // --kernel=counts: draw per-element histograms via the multinomial counts
  // kernels (O(min(n, q)) per trial) instead of per-sample streams. Same
  // distribution, different RNG consumption; q* shifts only within noise.
  const std::string kernel_name = cli.get_string("kernel", "persample");
  SamplingKernel kernel = SamplingKernel::kPerSample;
  if (kernel_name == "counts") {
    kernel = SamplingKernel::kCounts;
  } else if (kernel_name != "persample") {
    std::cerr << "unknown --kernel=" << kernel_name
              << " (expected persample|counts)\n";
    return 2;
  }
  const double eps = cli.get_double("eps", 0.5);
  const auto n_fixed = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  auto ns = cli.get_int_list("ns", {256, 1024, 4096, 16384});
  if (flags.quick) ns = {256, 4096};

  bench::banner("E8  centralized baseline q* ~ sqrt(n)/eps^2  [Paninski'08]",
                "expected: slope 1/2 in n, slope -2 in eps");

  Table n_table({"n", "q* collision", "q* chi-squared", "q* coincidence",
                 "predicted sqrt(n)/eps^2"});
  std::vector<double> xs, measured, predicted;
  for (const auto n : ns) {
    const auto nd = static_cast<std::uint64_t>(n);
    const auto seed_n =
        derive_seed(static_cast<std::uint64_t>(flags.seed), n);
    const auto q_star = measure_q_star<CentralizedCollisionTester>(
        nd, eps, static_cast<std::size_t>(flags.trials), seed_n, kernel);
    const auto q_chi = measure_q_star<ChiSquaredTester>(
        nd, eps, static_cast<std::size_t>(flags.trials),
        derive_seed(seed_n, 1), kernel);
    const auto q_coin = measure_q_star<PaninskiCoincidenceTester>(
        nd, eps, static_cast<std::size_t>(flags.trials),
        derive_seed(seed_n, 2), kernel);
    if (q_star == 0) continue;
    const double pred = predict::centralized_q(static_cast<double>(n), eps);
    n_table.add_row({n, static_cast<std::int64_t>(q_star),
                     static_cast<std::int64_t>(q_chi),
                     static_cast<std::int64_t>(q_coin), pred});
    xs.push_back(static_cast<double>(n));
    measured.push_back(static_cast<double>(q_star));
    predicted.push_back(pred);
  }
  n_table.print(std::cout, "E8a: q* vs n at eps=" + format_double(eps));
  n_table.write_csv(bench::output_dir() + "/e8_centralized_n.csv");
  double slope_n = 0.0;
  if (xs.size() >= 2) {
    bench::print_shape(xs, measured, predicted, "q* vs n");
    slope_n = fit_power_law(xs, measured).slope;
  }

  Table eps_table({"eps", "q* (measured)", "predicted sqrt(n)/eps^2"});
  std::vector<double> exs, emeasured, epredicted;
  std::vector<double> eps_values{0.25, 0.35, 0.5, 0.7, 1.0};
  if (flags.quick) eps_values = {0.25, 0.5, 1.0};
  for (const double e : eps_values) {
    const auto q_star = measure_q_star<CentralizedCollisionTester>(
        n_fixed, e, static_cast<std::size_t>(flags.trials),
        derive_seed(static_cast<std::uint64_t>(flags.seed),
                    static_cast<std::uint64_t>(e * 1000)),
        kernel);
    if (q_star == 0) continue;
    const double pred =
        predict::centralized_q(static_cast<double>(n_fixed), e);
    eps_table.add_row({e, static_cast<std::int64_t>(q_star), pred});
    exs.push_back(e);
    emeasured.push_back(static_cast<double>(q_star));
    epredicted.push_back(pred);
  }
  eps_table.print(std::cout,
                  "E8b: q* vs eps at n=" + std::to_string(n_fixed));
  eps_table.write_csv(bench::output_dir() + "/e8_centralized_eps.csv");
  double slope_e = 0.0;
  if (exs.size() >= 2) {
    bench::print_shape(exs, emeasured, epredicted, "q* vs eps");
    slope_e = fit_power_law(exs, emeasured).slope;
  }
  const bool ok = std::fabs(slope_n - 0.5) < 0.2 && std::fabs(slope_e + 2.0) < 0.7;
  std::cout << "slopes within tolerance of (1/2, -2): " << (ok ? "YES" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
