// E8 — the centralized baseline [Paninski'08]: q = Theta(sqrt(n)/eps^2).
//
// Every distributed result in the paper is measured against this baseline.
// The bench measures the collision tester's minimal q (a) across n at
// fixed eps (expected log-log slope 1/2) and (b) across eps at fixed n
// (expected slope -2).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "sweep_specs.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e8_centralized --eps=0.5 --n=4096 "
                 "--ns=256,1024,4096,16384 --trials=200 "
                 "--kernel=persample|counts\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  // --kernel=counts: draw per-element histograms via the multinomial counts
  // kernels (O(min(n, q)) per trial) instead of per-sample streams. Same
  // distribution, different RNG consumption; q* shifts only within noise.
  const std::string kernel_name = cli.get_string("kernel", "persample");
  SamplingKernel kernel = SamplingKernel::kPerSample;
  if (kernel_name == "counts") {
    kernel = SamplingKernel::kCounts;
  } else if (kernel_name != "persample") {
    std::cerr << "unknown --kernel=" << kernel_name
              << " (expected persample|counts)\n";
    return 2;
  }
  const double eps = cli.get_double("eps", 0.5);
  const auto n_fixed = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  auto ns = cli.get_int_list("ns", {256, 1024, 4096, 16384});
  if (flags.quick) ns = {256, 4096};

  bench::banner("E8  centralized baseline q* ~ sqrt(n)/eps^2  [Paninski'08]",
                "expected: slope 1/2 in n, slope -2 in eps");

  // Three engine sweeps over the n axis (one per tester family) plus the
  // eps sweep below, all sharing one cache session; seed derivations match
  // the old serial loops exactly.
  const auto trials = static_cast<std::size_t>(flags.trials);
  const auto seed = static_cast<std::uint64_t>(flags.seed);
  const SweepEngineConfig engine = bench::sweep_engine_config(cli);
  const SweepResult coll_sweep = run_sweep(
      bench::e8_n_points<CentralizedCollisionTester>("collision", ns, eps,
                                                     trials, seed, kernel),
      engine);
  const SweepResult chi_sweep = run_sweep(
      bench::e8_n_points<ChiSquaredTester>("chi-squared", ns, eps, trials,
                                           seed, kernel, 1),
      engine);
  const SweepResult coin_sweep = run_sweep(
      bench::e8_n_points<PaninskiCoincidenceTester>("coincidence", ns, eps,
                                                    trials, seed, kernel, 2),
      engine);
  bench::print_sweep_summary("e8_collision", coll_sweep);
  bench::print_sweep_summary("e8_chi", chi_sweep);
  bench::print_sweep_summary("e8_coincidence", coin_sweep);

  Table n_table({"n", "q* collision", "q* chi-squared", "q* coincidence",
                 "predicted sqrt(n)/eps^2"});
  std::vector<double> xs, measured, predicted;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const auto n = ns[i];
    const std::uint64_t q_star =
        coll_sweep.points[i].found ? coll_sweep.points[i].minimum : 0;
    const std::uint64_t q_chi =
        chi_sweep.points[i].found ? chi_sweep.points[i].minimum : 0;
    const std::uint64_t q_coin =
        coin_sweep.points[i].found ? coin_sweep.points[i].minimum : 0;
    if (q_star == 0) continue;
    const double pred = predict::centralized_q(static_cast<double>(n), eps);
    n_table.add_row({n, static_cast<std::int64_t>(q_star),
                     static_cast<std::int64_t>(q_chi),
                     static_cast<std::int64_t>(q_coin), pred});
    xs.push_back(static_cast<double>(n));
    measured.push_back(static_cast<double>(q_star));
    predicted.push_back(pred);
  }
  n_table.print(std::cout, "E8a: q* vs n at eps=" + format_double(eps));
  n_table.write_csv(bench::output_dir() + "/e8_centralized_n.csv");
  double slope_n = 0.0;
  if (xs.size() >= 2) {
    bench::print_shape(xs, measured, predicted, "q* vs n");
    slope_n = fit_power_law(xs, measured).slope;
  }

  Table eps_table({"eps", "q* (measured)", "predicted sqrt(n)/eps^2"});
  std::vector<double> exs, emeasured, epredicted;
  std::vector<double> eps_values{0.25, 0.35, 0.5, 0.7, 1.0};
  if (flags.quick) eps_values = {0.25, 0.5, 1.0};
  const SweepResult eps_sweep = run_sweep(
      bench::e8_eps_points(n_fixed, eps_values, trials, seed, kernel), engine);
  bench::print_sweep_summary("e8_eps", eps_sweep);
  for (std::size_t i = 0; i < eps_values.size(); ++i) {
    const double e = eps_values[i];
    const std::uint64_t q_star =
        eps_sweep.points[i].found ? eps_sweep.points[i].minimum : 0;
    if (q_star == 0) continue;
    const double pred =
        predict::centralized_q(static_cast<double>(n_fixed), e);
    eps_table.add_row({e, static_cast<std::int64_t>(q_star), pred});
    exs.push_back(e);
    emeasured.push_back(static_cast<double>(q_star));
    epredicted.push_back(pred);
  }
  eps_table.print(std::cout,
                  "E8b: q* vs eps at n=" + std::to_string(n_fixed));
  eps_table.write_csv(bench::output_dir() + "/e8_centralized_eps.csv");
  double slope_e = 0.0;
  if (exs.size() >= 2) {
    bench::print_shape(exs, emeasured, epredicted, "q* vs eps");
    slope_e = fit_power_law(exs, emeasured).slope;
  }
  const bool ok = std::fabs(slope_n - 0.5) < 0.2 && std::fabs(slope_e + 2.0) < 0.7;
  std::cout << "slopes within tolerance of (1/2, -2): " << (ok ? "YES" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
