// Perf baseline for the vectorized compute-kernel layer (ISSUE 7): times
// every dispatched kernel against its scalar twin on representative sizes,
// asserts bit-identity of the timed outputs, measures the insertion-sort
// cutoff inside is_evenly_covered, and emits BENCH_kernels.json (per-kernel
// ns/op and speedup, plus the cpu feature levels) so later PRs can track
// the kernel-perf trajectory. Exits nonzero if any SIMD output diverges
// from its scalar twin.
//
// duti-lint: allow-file(no-wall-clock) -- this bench exists to measure
// wall-clock kernel throughput; the timed quantities never feed a
// ProbeResult, and bit-identity is asserted separately on the results.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dist/cube_domain.hpp"
#include "dist/nu_z.hpp"
#include "fourier/evenly_covered.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace duti;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-`reps` wall time of fn(), in nanoseconds.
template <typename Fn>
double best_ns(std::size_t reps, Fn&& fn) {
  double best = 1e30;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start) * 1e9);
  }
  return best;
}

struct KernelPoint {
  std::string name;
  std::size_t size;
  double scalar_ns;
  double dispatched_ns;
  bool bit_identical;
  [[nodiscard]] double speedup() const { return scalar_ns / dispatched_ns; }
};

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "micro_kernels --seed=1 --quick\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto seed = static_cast<std::uint64_t>(flags.seed);
  const std::size_t reps = flags.quick ? 3 : 7;

  const SimdLevel supported = simd_supported_level();
  bench::banner(
      "micro_kernels  scalar vs runtime-dispatched SIMD kernels",
      std::string("expected: >= 2x on at least one kernel at level '") +
          simd_level_name(supported) + "', all outputs bit-identical");
  std::cout << "cpu supported level: " << simd_level_name(supported)
            << ", active level: " << simd_level_name(simd_active_level())
            << "\n";

  std::vector<KernelPoint> points;
  Rng rng(seed);

  // --- WHT: scalar butterfly vs blocked radix-4 vector path. ---------------
  for (const unsigned logn : {12u, 16u, 20u}) {
    const std::size_t n = std::size_t{1} << logn;
    std::vector<double> input(n);
    for (auto& v : input) v = rng.next_double() * 2.0 - 1.0;
    std::vector<double> scalar_out;
    std::vector<double> simd_out;
    const double s_ns = best_ns(reps, [&] {
      scalar_out = input;
      kernels::wht_scalar(scalar_out);
    });
    simd_set_level(supported);
    const double v_ns = best_ns(reps, [&] {
      simd_out = input;
      kernels::wht(simd_out);
    });
    points.push_back({"wht", n, s_ns, v_ns, bits_equal(scalar_out, simd_out)});
  }

  // --- Integer reductions over counts. -------------------------------------
  {
    const std::size_t len = std::size_t{1} << 16;
    std::vector<std::uint64_t> counts(len);
    for (auto& c : counts) c = rng() % 7;
    std::uint64_t scalar_pairs = 0;
    std::uint64_t simd_pairs = 0;
    const double s_ns = best_ns(reps, [&] {
      scalar_pairs = kernels::collision_pairs_from_counts_scalar(counts);
    });
    simd_set_level(supported);
    const double v_ns = best_ns(
        reps, [&] { simd_pairs = kernels::collision_pairs_from_counts(counts); });
    points.push_back(
        {"collision_pairs", len, s_ns, v_ns, scalar_pairs == simd_pairs});

    std::vector<std::uint64_t> acc_scalar(len, 0);
    std::vector<std::uint64_t> acc_simd(len, 0);
    const double as_ns =
        best_ns(reps, [&] { kernels::add_u64_scalar(acc_scalar, counts); });
    simd_set_level(supported);
    const double av_ns =
        best_ns(reps, [&] { kernels::add_u64(acc_simd, counts); });
    points.push_back(
        {"add_u64", len, as_ns, av_ns, acc_scalar == acc_simd});
  }

  // --- Tally: dispatched path is the scalar scatter at every level (a
  // banked scatter + vector merge measured slower; see kernels.cpp). This
  // row should sit at ~1x — a dip below means tally() regressed. ------------
  {
    const std::size_t domain = std::size_t{1} << 12;
    const std::size_t draws = std::size_t{1} << 16;
    std::vector<std::uint64_t> samples(draws);
    for (auto& s : samples) s = rng() % domain;
    std::vector<std::uint64_t> counts_scalar(domain);
    std::vector<std::uint64_t> counts_simd(domain);
    const double s_ns = best_ns(reps, [&] {
      std::fill(counts_scalar.begin(), counts_scalar.end(), 0);
      kernels::tally_scalar(samples, counts_scalar);
    });
    simd_set_level(supported);
    const double v_ns = best_ns(reps, [&] {
      std::fill(counts_simd.begin(), counts_simd.end(), 0);
      kernels::tally(samples, counts_simd);
    });
    points.push_back(
        {"tally", draws, s_ns, v_ns, counts_scalar == counts_simd});
  }

  // --- Batched samplers (outputs AND final rng state must agree). The
  // uniform row is a ~1x sentinel: its dispatched path is the scalar loop
  // at every level (an AVX2 Lemire variant measured slower; kernels.cpp). --
  {
    const std::size_t len = std::size_t{1} << 14;
    const std::uint64_t bound = 1000000007ULL;
    std::vector<std::uint64_t> out_scalar(len);
    std::vector<std::uint64_t> out_simd(len);
    Rng rng_scalar(seed);
    Rng rng_simd(seed);
    const double s_ns = best_ns(reps, [&] {
      rng_scalar = Rng(seed);
      kernels::uniform_sample_many_scalar(rng_scalar, bound, out_scalar);
    });
    simd_set_level(supported);
    const double v_ns = best_ns(reps, [&] {
      rng_simd = Rng(seed);
      kernels::uniform_sample_many(rng_simd, bound, out_simd);
    });
    const bool same =
        out_scalar == out_simd && rng_scalar() == rng_simd();
    points.push_back({"uniform_sample_many", len, s_ns, v_ns, same});
  }
  {
    const std::size_t len = std::size_t{1} << 14;
    const unsigned ell = 12;
    Rng zrng(derive_seed(seed, 0x2));
    const PerturbationVector z = PerturbationVector::random(ell, zrng);
    std::vector<std::uint64_t> out_scalar(len);
    std::vector<std::uint64_t> out_simd(len);
    Rng rng_scalar(seed);
    Rng rng_simd(seed);
    const double s_ns = best_ns(reps, [&] {
      rng_scalar = Rng(seed);
      kernels::nuz_sample_many_scalar(rng_scalar, z.words(), ell, 0.5,
                                      out_scalar);
    });
    simd_set_level(supported);
    const double v_ns = best_ns(reps, [&] {
      rng_simd = Rng(seed);
      kernels::nuz_sample_many(rng_simd, z.words(), ell, 0.5, out_simd);
    });
    const bool same =
        out_scalar == out_simd && rng_scalar() == rng_simd();
    points.push_back({"nuz_sample_many", len, s_ns, v_ns, same});
  }

  Table table({"kernel", "size", "scalar ns", "dispatched ns", "speedup"});
  bool all_identical = true;
  double max_speedup = 0.0;
  for (const auto& p : points) {
    table.add_row({p.name, static_cast<std::int64_t>(p.size), p.scalar_ns,
                   p.dispatched_ns, p.speedup()});
    all_identical = all_identical && p.bit_identical;
    max_speedup = std::max(max_speedup, p.speedup());
  }
  table.print(std::cout, std::string("kernels: scalar vs '") +
                             simd_level_name(supported) + "'");
  std::cout << "all dispatched outputs bit-identical to scalar: "
            << (all_identical ? "YES" : "NO") << "\n";

  // --- is_evenly_covered: insertion sort (|S| <= 16) vs std::sort. ---------
  // The predicate's small-|S| path replaces std::sort's dispatch with a
  // branchy insertion sort; measure both regimes so the cutoff stays an
  // informed choice. The >16 case exercises the std::sort path unchanged.
  struct SortPoint {
    unsigned popcount;
    double ns_per_call;
  };
  std::vector<SortPoint> sort_points;
  for (const unsigned bits : {8u, 16u, 24u}) {
    const unsigned q = 48;
    std::vector<std::uint64_t> x(q);
    for (auto& xi : x) xi = rng() % 7;
    std::uint64_t mask = lowest_mask(bits);
    // A mid-range mask (not the lowest) so positions are spread out.
    for (int skip = 0; skip < 20; ++skip) mask = next_same_popcount(mask);
    const std::size_t calls = flags.quick ? 20000 : 100000;
    bool sink = false;
    const double total_ns = best_ns(reps, [&] {
      for (std::size_t c = 0; c < calls; ++c) {
        sink ^= is_evenly_covered(x, mask);
      }
    });
    if (sink) std::cout << "";  // keep the loop observable
    sort_points.push_back({bits, total_ns / static_cast<double>(calls)});
  }
  Table sort_table({"|S|", "ns/call", "sort path"});
  for (const auto& sp : sort_points) {
    sort_table.add_row({static_cast<std::int64_t>(sp.popcount), sp.ns_per_call,
                        std::string(sp.popcount <= 16 ? "insertion" : "std::sort")});
  }
  sort_table.print(std::cout, "is_evenly_covered sort-path cost");

  // --- Emit BENCH_kernels.json. --------------------------------------------
  std::string kernels = "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    kernels += "    {\"name\": " + bench::json_str(p.name) +
               ", \"size\": " + bench::json_u64(p.size) +
               ", \"scalar_ns\": " + bench::json_num(p.scalar_ns) +
               ", \"dispatched_ns\": " + bench::json_num(p.dispatched_ns) +
               ", \"speedup\": " + bench::json_num(p.speedup()) +
               ", \"bit_identical\": " + bench::json_bool(p.bit_identical) +
               "}";
    kernels += i + 1 < points.size() ? ",\n" : "\n";
  }
  kernels += "  ]";
  std::string sort_json = "[\n";
  for (std::size_t i = 0; i < sort_points.size(); ++i) {
    sort_json +=
        "    {\"popcount\": " + bench::json_u64(sort_points[i].popcount) +
        ", \"ns_per_call\": " + bench::json_num(sort_points[i].ns_per_call) +
        ", \"path\": " +
        bench::json_str(sort_points[i].popcount <= 16 ? "insertion"
                                                      : "std_sort") +
        "}";
    sort_json += i + 1 < sort_points.size() ? ",\n" : "\n";
  }
  sort_json += "  ]";
  const std::string path = bench::emit_bench_json(
      "kernels",
      {{"cpu", "{\"supported_level\": " +
                   bench::json_str(simd_level_name(supported)) +
                   ", \"active_level\": " +
                   bench::json_str(simd_level_name(simd_active_level())) +
                   "}"},
       {"bit_identical", bench::json_bool(all_identical)},
       {"max_speedup", bench::json_num(max_speedup)},
       {"kernels", kernels},
       {"evenly_covered_sort", sort_json}});
  if (!path.empty()) std::cout << "wrote " << path << "\n";

  std::cout << "max speedup vs scalar = " << format_double(max_speedup)
            << "x (acceptance on AVX2 hardware: >= 2x on some kernel)\n";
  return all_identical ? 0 : 1;
}
