// E5 — Lemma 4.2 (and its warm-up Lemma 5.1), empirically.
//
// Paper claim: for any message function G and q <= sqrt(n)/(20 eps^2),
//   E_z[(nu_z(G) - mu(G))^2] <= (20 q^2 eps^4/n + q eps^2/n) var(G).
//
// We evaluate the left side EXACTLY (full enumeration over perturbation
// vectors and sample tuples) for a zoo of message functions on small cube
// universes, and tabulate lhs / bound. Two findings are reported:
//   * the inequality holds with the corrected linear constant 2 q eps^2/n
//     (our exact extremal example shows the stated constant is 2x too
//     small at q = 1 — see EXPERIMENTS.md), and
//   * the bound's q^2 eps^4 shape tracks the true moment as q, eps vary.
#include <cmath>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/message_analysis.hpp"
#include "fourier/families.hpp"
#include "testers/collision.hpp"

namespace {

using namespace duti;

struct Subject {
  std::string name;
  std::function<BooleanCubeFunction(unsigned bits, Rng&)> make;
};

BooleanCubeFunction collision_voter(unsigned ell, unsigned q) {
  const CubeDomain dom(ell);
  const SampleTupleCodec codec(dom, q);
  const double local_t = expected_collision_pairs_uniform(
      static_cast<double>(dom.universe_size()), q);
  return BooleanCubeFunction::tabulate(
      codec.total_bits(), [&](std::uint64_t packed) {
        std::vector<std::uint64_t> elements(q);
        for (unsigned j = 0; j < q; ++j) {
          elements[j] = codec.element(packed, j);
        }
        return static_cast<double>(collision_pairs(elements)) > local_t ? 0.0
                                                                        : 1.0;
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e5_lemma42 --seed=1  (exact enumeration; no trial count)\n";
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  bench::banner("E5  Lemma 4.2 second-moment bound, exact evaluation",
                "expected: lhs <= 2x stated bound everywhere; lhs tracks "
                "the q^2 eps^4/n shape; ratio largest for collision-logic G");

  const std::vector<Subject> subjects{
      {"random p=0.5",
       [&](unsigned bits, Rng& rng) { return fn::random_boolean(bits, 0.5, rng); }},
      {"random p=0.1",
       [&](unsigned bits, Rng& rng) { return fn::random_boolean(bits, 0.1, rng); }},
      {"majority",
       [](unsigned bits, Rng&) {
         return bits % 2 == 1 ? fn::majority(bits)
                              : fn::threshold_at_least(bits, bits / 2);
       }},
      {"parity(all)",
       [](unsigned bits, Rng&) {
         return fn::parity(bits, (1ULL << bits) - 1);
       }},
  };

  Table table({"ell", "q", "eps", "G", "var(G)", "exact lhs", "2x bound",
               "lhs/bound"});
  bool all_hold = true;
  double worst_ratio = 0.0;
  for (unsigned ell : {2u, 3u}) {
    for (unsigned q : {1u, 2u}) {
      if ((ell + 1) * q > 12) continue;
      const double n = std::ldexp(1.0, static_cast<int>(ell) + 1);
      const SampleTupleCodec codec(CubeDomain(ell), q);
      for (double eps : {0.05, 0.1, 0.2}) {
        if (!bounds::lemma42_valid(n, q, eps)) continue;
        Rng rng(derive_seed(seed, ell, q,
                            static_cast<std::uint64_t>(eps * 1000)));
        for (const auto& subject : subjects) {
          const auto g = subject.make(codec.total_bits(), rng);
          const MessageAnalysis analysis(codec, g);
          const auto moments = analysis.z_moments_exact(eps);
          const double bound =
              2.0 * bounds::lemma42_bound(n, q, eps, analysis.variance());
          const double ratio =
              bound > 0.0 ? moments.second_moment / bound : 0.0;
          worst_ratio = std::max(worst_ratio, ratio);
          if (moments.second_moment > bound + 1e-12) all_hold = false;
          table.add_row({static_cast<std::int64_t>(ell),
                         static_cast<std::int64_t>(q), eps, subject.name,
                         analysis.variance(), moments.second_moment, bound,
                         ratio});
        }
        // The real testers' message function (needs q >= 2 for collisions).
        if (q < 2) continue;
        const auto g = collision_voter(ell, q);
        const MessageAnalysis analysis(codec, g);
        const auto moments = analysis.z_moments_exact(eps);
        const double bound =
            2.0 * bounds::lemma42_bound(n, q, eps, analysis.variance());
        const double ratio = bound > 0.0 ? moments.second_moment / bound : 0.0;
        worst_ratio = std::max(worst_ratio, ratio);
        if (moments.second_moment > bound + 1e-12) all_hold = false;
        table.add_row({static_cast<std::int64_t>(ell),
                       static_cast<std::int64_t>(q), eps,
                       std::string("collision voter"), analysis.variance(),
                       moments.second_moment, bound, ratio});
      }
    }
  }
  table.print(std::cout, "E5: exact E_z[(nu_z(G)-mu(G))^2] vs Lemma 4.2");
  table.write_csv(bench::output_dir() + "/e5_lemma42.csv");

  // Lemma 4.4 (the threshold-regime interpolation): for biased functions
  // its var^{2-1/(m+1)} term undercuts Lemma 4.2's var^1 dependence.
  // Tabulate both bounds against the exact second moment across bias.
  {
    const unsigned ell = 3, q = 2;
    // Lemma 4.4's validity window q <= sqrt(n)/((40m)^2 eps^2)^{m+1} is
    // empty for enumerable universes unless eps is tiny.
    const double eps = 0.01;
    const double n = std::ldexp(1.0, static_cast<int>(ell) + 1);
    const SampleTupleCodec codec44(CubeDomain(ell), q);
    Table t44({"AND width w", "var(G)", "exact lhs", "lemma4.2 bound x2",
               "lemma4.4 bound (m=1, C=1)", "4.4/4.2 ratio"});
    bool holds44 = true;
    for (unsigned w = 1; w <= codec44.total_bits(); ++w) {
      const auto g = fn::and_of(codec44.total_bits(), (1ULL << w) - 1);
      const MessageAnalysis analysis(codec44, g);
      const auto moments = analysis.z_moments_exact(eps);
      const double var_g = analysis.variance();
      const double b42 = 2.0 * bounds::lemma42_bound(n, q, eps, var_g);
      const double b44 = bounds::lemma44_valid(n, q, eps, 1)
                             ? bounds::lemma44_bound(n, q, eps, 1, var_g)
                             : -1.0;
      if (b44 >= 0.0 && moments.second_moment > b44 + 1e-15) holds44 = false;
      t44.add_row({static_cast<std::int64_t>(w), var_g,
                   moments.second_moment, b42, b44,
                   b44 >= 0.0 ? b44 / b42 : -1.0});
    }
    t44.print(std::cout,
              "E5b: Lemma 4.4 vs Lemma 4.2 across bias (ell=3, q=2, "
              "eps=0.01)");
    t44.write_csv(bench::output_dir() + "/e5_lemma44.csv");
    std::cout << "Lemma 4.4 bound holds everywhere it applies: "
              << (holds44 ? "YES" : "NO") << "\n";
    if (!holds44) all_hold = false;
  }
  std::cout << "bound holds everywhere (with corrected factor 2): "
            << (all_hold ? "YES" : "NO")
            << "\nworst lhs/bound ratio: " << format_double(worst_ratio)
            << "\n";
  return all_hold ? 0 : 1;
}
