// E9 — Theorem 6.4 (r-bit messages).
//
// Paper claim: with r-bit messages the sample bound becomes
// q = Omega(min(sqrt(n/(2^r k)), n/(2^r k))/eps^2) — r bits act like 2^r
// times more players, so the lower bound decays by 2^{-Theta(r)}.
//
// The bench measures the minimal q of the multibit sum tester across r at
// fixed (n, k, eps). The measured curve should fall with r and then
// saturate once the saturating counter stops losing information (beyond
// that point extra bits are free but useless — the upper-bound side
// flattens while the lower bound keeps dropping).
#include <iostream>

#include "bench_common.hpp"
#include "core/multibit_analysis.hpp"
#include "core/predictions.hpp"
#include "sweep_specs.hpp"
#include "testers/message_maps.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e9_multibit --n=4096 --k=32 --eps=0.5 --rs=1,2,4,8 "
                 "--trials=150\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const auto k = static_cast<unsigned>(cli.get_int("k", 32));
  const double eps = cli.get_double("eps", 0.5);
  auto rs = cli.get_int_list("rs", {1, 2, 4, 8});
  if (flags.quick) rs = {1, 8};

  bench::banner("E9  q* vs message width r  [Thm 6.4]",
                "expected: q* falls as r grows, then saturates at the "
                "1-round statistical optimum; thm6.4 lower bound below "
                "every point");

  const auto points =
      bench::e9_points(n, k, eps, rs, static_cast<std::size_t>(flags.trials),
                       static_cast<std::uint64_t>(flags.seed));
  const SweepResult sweep = run_sweep(points, bench::sweep_engine_config(cli));
  bench::print_sweep_summary("e9", sweep);

  Table table({"r (bits)", "q* (measured)", "thm6.4 lower-bound shape",
               "1-bit baseline ratio"});
  std::vector<double> xs, measured;
  double q1 = 0.0;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto r = rs[i];
    const std::uint64_t q_star =
        sweep.points[i].found ? sweep.points[i].minimum : 0;
    if (q_star == 0) {
      std::cout << "r=" << r << ": search failed\n";
      continue;
    }
    if (q1 == 0.0) q1 = static_cast<double>(q_star);
    table.add_row({r, static_cast<std::int64_t>(q_star),
                   predict::thm64_multibit_q(static_cast<double>(n),
                                             static_cast<double>(k), eps,
                                             static_cast<unsigned>(r)),
                   static_cast<double>(q_star) / q1});
    xs.push_back(static_cast<double>(r));
    measured.push_back(static_cast<double>(q_star));
  }
  table.print(std::cout, "E9: more message bits, fewer samples");
  table.write_csv(bench::output_dir() + "/e9_multibit.csv");

  // Information side, computed exactly on a small cube universe: the
  // per-player divergence of the r-bit collision message grows with r
  // toward the full-tuple (data-processing) ceiling — the mechanism behind
  // Theorem 6.4's 2^{-Theta(r)} decay of the required q.
  {
    const SampleTupleCodec codec(CubeDomain(3), 3);
    const double eps_info = 0.4;
    const double ceiling =
        MultibitMessageAnalysis::full_tuple_divergence_exact(codec, eps_info);
    Table info({"r (bits)", "KL collision msg", "KL random-hash msg",
                "hash msg / ceiling"});
    for (unsigned r : {1u, 2u, 3u, 4u, 6u, 8u}) {
      const MultibitMessageAnalysis coll(
          codec, r, collision_count_message(codec, r));
      // Random r-bit hash of the whole tuple — the [1]-style message whose
      // information grows like 2^r until it captures the full tuple.
      const std::uint64_t key = derive_seed(0x9E37, r);
      const MultibitMessageAnalysis hash(
          codec, r, [key, r](std::uint64_t t) {
            return static_cast<std::uint32_t>(SplitMix64(t ^ key).next() &
                                              ((1ULL << r) - 1));
          });
      const double d_coll = coll.expected_divergence_exact(eps_info);
      const double d_hash = hash.expected_divergence_exact(eps_info);
      info.add_row({static_cast<std::int64_t>(r), d_coll, d_hash,
                    d_hash / ceiling});
    }
    info.print(std::cout,
               "E9b: exact per-player information vs message width "
               "(ell=3, q=3, eps=0.4; full-tuple ceiling = " +
                   format_double(ceiling) + " bits)");
    info.write_csv(bench::output_dir() + "/e9_multibit_info.csv");
    std::cout
        << "The collision message saturates once its few distinct values "
           "fit (q=3 has <= 4 count levels);\nthe random-hash message's "
           "information grows like 2^r toward the data-processing ceiling "
           "—\nthe mechanism behind Theorem 6.4's 2^{-Theta(r)} decay.\n";
  }
  if (measured.size() >= 2) {
    const bool improves = measured.back() <= measured.front();
    std::cout << "wider messages never cost samples: "
              << (improves ? "YES" : "NO") << "\n";
    return improves ? 0 : 1;
  }
  return 0;
}
