// Perf baseline for the deterministic parallel measurement engine (ISSUE 2):
// times serial vs thread-pooled probe_success on a representative threshold-
// tester probe, and batched vs per-sample drawing, then emits
// BENCH_harness.json (trials/sec per thread count, speedup vs 1 thread) so
// later PRs can track the perf trajectory. Also asserts, at runtime, that
// every thread count produced the bit-identical ProbeResult.
#include <chrono>
#include <thread>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "dist/generators.hpp"
#include "stats/workloads.hpp"
#include "testers/fixed_threshold.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace duti;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool probe_equal(const ProbeResult& a, const ProbeResult& b) {
  return a.uniform_accept_rate == b.uniform_accept_rate &&
         a.far_reject_rate == b.far_reject_rate &&
         a.uniform_ci.lo == b.uniform_ci.lo &&
         a.uniform_ci.hi == b.uniform_ci.hi && a.far_ci.lo == b.far_ci.lo &&
         a.far_ci.hi == b.far_ci.hi && a.trials == b.trials &&
         a.aborts() == b.aborts();
}

// Forwards sample() but NOT sample_many: the pre-batching baseline, paying
// one virtual dispatch per draw through the default sample_many loop.
class ScalarOnlySource final : public SampleSource {
 public:
  explicit ScalarOnlySource(const SampleSource& inner) : inner_(inner) {}
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return inner_.sample(rng);
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return inner_.domain_size();
  }
  [[nodiscard]] double l1_from_uniform() const override {
    return inner_.l1_from_uniform();
  }

 private:
  const SampleSource& inner_;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "micro_harness --trials=300 --n=4096 --k=32 --q=64 "
                 "--seed=1 --quick\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const auto k = static_cast<unsigned>(cli.get_int("k", 32));
  const auto q = static_cast<unsigned>(cli.get_int("q", 64));
  const auto trials = static_cast<std::size_t>(
      flags.quick ? 60 : cli.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.seed);

  bench::banner("micro_harness  serial vs parallel probe, batched drawing",
                "expected: trials/sec scales with threads (bit-identical "
                "results), batched sample_many beats per-sample dispatch");

  // --- Part 1: probe_success throughput vs thread count. -------------------
  const FixedThresholdTester tester({n, k, q, 0.5, 4});
  const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
    return tester.run(src, rng);
  };
  const auto uniform = workloads::uniform_factory(n);
  const auto far = workloads::paninski_far_factory(n, 0.5);

  struct Point {
    unsigned threads;
    double trials_per_sec;
    double speedup;
  };
  std::vector<Point> points;
  ProbeResult reference;
  bool bit_identical = true;
  double base_tps = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    // Warm-up pass (source caches, page faults), then the timed pass.
    (void)probe_success(run, uniform, far, std::max<std::size_t>(trials / 4, 1),
                        seed, pool);
    const auto start = std::chrono::steady_clock::now();
    const ProbeResult r = probe_success(run, uniform, far, trials, seed, pool);
    const double elapsed = seconds_since(start);
    if (threads == 1) {
      reference = r;
      base_tps = static_cast<double>(trials) / elapsed;
    } else if (!probe_equal(reference, r)) {
      bit_identical = false;
    }
    const double tps = static_cast<double>(trials) / elapsed;
    points.push_back({threads, tps, tps / base_tps});
  }

  Table probe_table({"threads", "trials/sec", "speedup vs 1"});
  for (const auto& p : points) {
    probe_table.add_row({static_cast<std::int64_t>(p.threads),
                         p.trials_per_sec, p.speedup});
  }
  probe_table.print(std::cout, "probe_success throughput (threshold tester)");
  std::cout << "parallel results bit-identical to serial: "
            << (bit_identical ? "YES" : "NO") << "\n";

  // --- Part 2: batched vs per-sample drawing. ------------------------------
  const DistributionSource dist_source(gen::zipf(static_cast<std::size_t>(n),
                                                 1.0));
  const ScalarOnlySource scalar_source(dist_source);
  const std::size_t batches = flags.quick ? 4000 : 20000;
  std::vector<std::uint64_t> buf;
  const auto time_draws = [&](const SampleSource& src) {
    Rng rng(seed);
    src.sample_many(rng, q, buf);  // warm the lazy alias table
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t sink = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      src.sample_many(rng, q, buf);
      sink += buf[0];
    }
    const double elapsed = seconds_since(start);
    // Keep `sink` observable so the loop is not optimized away.
    if (sink == 0xFFFFFFFFFFFFFFFFULL) std::cout << "";
    return static_cast<double>(batches) * q / elapsed;
  };
  const double scalar_sps = time_draws(scalar_source);
  const double batched_sps = time_draws(dist_source);

  Table draw_table({"path", "samples/sec"});
  draw_table.add_row({std::string("per-sample virtual"), scalar_sps});
  draw_table.add_row({std::string("batched sample_many"), batched_sps});
  draw_table.print(std::cout, "drawing throughput (zipf alias sampler)");
  std::cout << "batched / per-sample = "
            << format_double(batched_sps / scalar_sps) << "x\n";

  // --- Emit BENCH_harness.json. --------------------------------------------
  const std::string path = bench::output_dir() + "/BENCH_harness.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"micro_harness\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"probe\": {\"n\": %llu, \"k\": %u, \"q\": %u, "
                    "\"trials\": %zu},\n",
                 static_cast<unsigned long long>(n), k, q, trials);
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(f, "  \"probe_throughput\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "    {\"threads\": %u, \"trials_per_sec\": %.2f, "
                   "\"speedup_vs_1\": %.3f}%s\n",
                   points[i].threads, points[i].trials_per_sec,
                   points[i].speedup, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"sampling\": {\"per_sample_sps\": %.0f, "
                 "\"batched_sps\": %.0f, \"batched_speedup\": %.3f}\n",
                 scalar_sps, batched_sps, batched_sps / scalar_sps);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::cout << "wrote " << path << "\n";
  }

  return bit_identical ? 0 : 1;
}
