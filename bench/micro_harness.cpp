// Perf baseline for the deterministic parallel measurement engine (ISSUE 2):
// times serial vs thread-pooled probe_success on a representative threshold-
// tester probe, and batched vs per-sample drawing, then emits
// BENCH_harness.json (trials/sec per thread count, speedup vs 1 thread) so
// later PRs can track the perf trajectory. Also asserts, at runtime, that
// every thread count produced the bit-identical ProbeResult.
//
// duti-lint: allow-file(no-wall-clock) -- this harness exists to measure
// wall-clock throughput (trials/sec, speedup vs 1 thread); the timed
// quantity never feeds a ProbeResult, and bit-identity is asserted
// separately on the untimed results.
// duti-lint: allow-file(no-serial-sweep-loop) -- this bench measures
// find_min_param ITSELF (fixed vs adaptive bracketing, cache behavior);
// routing it through run_sweep would put the engine between the
// measurement and the thing measured.
#include <chrono>
#include <filesystem>
#include <thread>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "dist/generators.hpp"
#include "stats/probe_cache.hpp"
#include "stats/workloads.hpp"
#include "testers/centralized.hpp"
#include "testers/fixed_threshold.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace duti;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool probe_equal(const ProbeResult& a, const ProbeResult& b) {
  return a.uniform_accept_rate == b.uniform_accept_rate &&
         a.far_reject_rate == b.far_reject_rate &&
         a.uniform_ci.lo == b.uniform_ci.lo &&
         a.uniform_ci.hi == b.uniform_ci.hi && a.far_ci.lo == b.far_ci.lo &&
         a.far_ci.hi == b.far_ci.hi && a.trials == b.trials &&
         a.uniform_successes == b.uniform_successes &&
         a.far_successes == b.far_successes && a.budget == b.budget &&
         a.stop == b.stop && a.aborts() == b.aborts();
}

// Forwards sample() but NOT sample_many: the pre-batching baseline, paying
// one virtual dispatch per draw through the default sample_many loop.
class ScalarOnlySource final : public SampleSource {
 public:
  explicit ScalarOnlySource(const SampleSource& inner) : inner_(inner) {}
  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return inner_.sample(rng);
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return inner_.domain_size();
  }
  [[nodiscard]] double l1_from_uniform() const override {
    return inner_.l1_from_uniform();
  }

 private:
  const SampleSource& inner_;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "micro_harness --trials=300 --n=4096 --k=32 --q=64 "
                 "--seed=1 --quick\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const auto k = static_cast<unsigned>(cli.get_int("k", 32));
  const auto q = static_cast<unsigned>(cli.get_int("q", 64));
  const auto trials = static_cast<std::size_t>(
      flags.quick ? 60 : cli.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(flags.seed);

  bench::banner("micro_harness  serial vs parallel probe, batched drawing",
                "expected: trials/sec scales with threads (bit-identical "
                "results), batched sample_many beats per-sample dispatch");

  // --- Part 1: probe_success throughput vs thread count. -------------------
  const FixedThresholdTester tester({n, k, q, 0.5, 4});
  const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
    return tester.run(src, rng);
  };
  const auto uniform = workloads::uniform_factory(n);
  const auto far = workloads::paninski_far_factory(n, 0.5);

  struct Point {
    unsigned threads;
    double trials_per_sec;
    double speedup;
  };
  std::vector<Point> points;
  ProbeResult reference;
  bool bit_identical = true;
  double base_tps = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    // Warm-up pass (source caches, page faults), then the timed pass.
    (void)probe_success(run, uniform, far, std::max<std::size_t>(trials / 4, 1),
                        seed, pool);
    const auto start = std::chrono::steady_clock::now();
    const ProbeResult r = probe_success(run, uniform, far, trials, seed, pool);
    const double elapsed = seconds_since(start);
    if (threads == 1) {
      reference = r;
      base_tps = static_cast<double>(trials) / elapsed;
    } else if (!probe_equal(reference, r)) {
      bit_identical = false;
    }
    const double tps = static_cast<double>(trials) / elapsed;
    points.push_back({threads, tps, tps / base_tps});
  }

  Table probe_table({"threads", "trials/sec", "speedup vs 1"});
  for (const auto& p : points) {
    probe_table.add_row({static_cast<std::int64_t>(p.threads),
                         p.trials_per_sec, p.speedup});
  }
  probe_table.print(std::cout, "probe_success throughput (threshold tester)");
  std::cout << "parallel results bit-identical to serial: "
            << (bit_identical ? "YES" : "NO") << "\n";

  // --- Part 2: batched vs per-sample drawing. ------------------------------
  const DistributionSource dist_source(gen::zipf(static_cast<std::size_t>(n),
                                                 1.0));
  const ScalarOnlySource scalar_source(dist_source);
  const std::size_t batches = flags.quick ? 4000 : 20000;
  std::vector<std::uint64_t> buf;
  const auto time_draws = [&](const SampleSource& src) {
    Rng rng(seed);
    src.sample_many(rng, q, buf);  // warm the lazy alias table
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t sink = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      src.sample_many(rng, q, buf);
      sink += buf[0];
    }
    const double elapsed = seconds_since(start);
    // Keep `sink` observable so the loop is not optimized away.
    if (sink == 0xFFFFFFFFFFFFFFFFULL) std::cout << "";
    return static_cast<double>(batches) * q / elapsed;
  };
  const double scalar_sps = time_draws(scalar_source);
  const double batched_sps = time_draws(dist_source);

  Table draw_table({"path", "samples/sec"});
  draw_table.add_row({std::string("per-sample virtual"), scalar_sps});
  draw_table.add_row({std::string("batched sample_many"), batched_sps});
  draw_table.print(std::cout, "drawing throughput (zipf alias sampler)");
  std::cout << "batched / per-sample = "
            << format_double(batched_sps / scalar_sps) << "x\n";

  // --- Part 3: adaptive-vs-fixed trial budgets in a q* search. -------------
  // Representative search: the minimal per-trial sample budget q at which a
  // majority-amplified centralized collision tester clears the 2/3 bar on
  // (n=4096, eps=1.0). Majority amplification (repeat the tester, take the
  // majority vote — the standard success-amplification step) steepens the
  // success curve in q, which is what makes the searched threshold
  // well-defined; it is also exactly the regime where early stopping pays,
  // because most rungs and midpoints sit far from the bar. Both searches run
  // on a serial pool so trial counts are exactly the consulted probes (no
  // speculative work muddying the ledger) and deterministic.
  const std::uint64_t search_n = 4096;
  const double search_eps =
      static_cast<double>(cli.get_int("search-eps100", 100)) / 100.0;
  const auto search_trials = static_cast<std::size_t>(
      cli.get_int("search-trials", flags.quick ? 400 : 1600));
  const auto search_reps =
      static_cast<unsigned>(cli.get_int("search-reps", 15));
  const auto search_seed = derive_seed(seed, 0xADA);
  const auto s_uniform = workloads::uniform_factory(search_n);
  const auto s_far = workloads::paninski_far_factory(search_n, search_eps);
  ThreadPool search_pool(1);

  const auto collision_run = [&](std::uint64_t qq) -> TesterRun {
    return [reps = search_reps,
            tester = CentralizedCollisionTester(
                search_n, search_eps, static_cast<unsigned>(qq))](
               const SampleSource& src, Rng& rng) {
      unsigned accepts = 0;
      for (unsigned r = 0; r < reps; ++r) {
        if (tester.run(src, rng)) ++accepts;
      }
      return 2 * accepts > reps;
    };
  };
  // The bracket probe gets the SAME budget with early stopping on top: its
  // trials are a prefix of the full probe's (same per-trial seeds), and its
  // certificates agree with the full-budget verdict (provably for the
  // deterministic seal, within delta for the Wilson one) — so the bracketed
  // search replays the fixed search's decisions and lands on the same
  // minimum, only cheaper.
  AdaptiveProbeConfig acfg;
  const std::size_t bracket_budget = search_trials;
  std::uint64_t fixed_trials_total = 0;
  std::uint64_t adaptive_trials_total = 0;
  const ProbeFn fixed_probe = [&](std::uint64_t qq) {
    const ProbeResult r =
        probe_success(collision_run(qq), s_uniform, s_far, search_trials,
                      derive_seed(search_seed, qq), search_pool);
    fixed_trials_total += r.trials;
    return r;
  };
  const ProbeFn full_probe = [&](std::uint64_t qq) {
    const ProbeResult r =
        probe_success(collision_run(qq), s_uniform, s_far, search_trials,
                      derive_seed(search_seed, qq), search_pool);
    adaptive_trials_total += r.trials;
    return r;
  };
  const ProbeFn bracket_probe = [&](std::uint64_t qq) {
    const ProbeResult r = probe_success_adaptive(
        collision_run(qq), s_uniform, s_far, bracket_budget,
        derive_seed(search_seed, qq), acfg, search_pool);
    adaptive_trials_total += r.trials;
    return r;
  };

  MinSearchConfig scfg;
  scfg.lo = 2;
  scfg.hi = 1ULL << 18;
  scfg.trials = search_trials;
  scfg.seed = search_seed;
  scfg.full_budget_width = 4;

  auto search_start = std::chrono::steady_clock::now();
  const MinSearchResult fixed_search =
      find_min_param(fixed_probe, scfg, search_pool);
  const double fixed_seconds = seconds_since(search_start);

  scfg.adaptive_bracket = true;
  search_start = std::chrono::steady_clock::now();
  const MinSearchResult adaptive_search =
      find_min_param(full_probe, bracket_probe, scfg, search_pool);
  const double adaptive_seconds = seconds_since(search_start);

  if (cli.get_int("search-debug", 0) != 0) {
    for (const auto& [value, r] : adaptive_search.probes) {
      std::cerr << "probe q=" << value << " trials=" << r.trials
                << " u=" << r.uniform_accept_rate
                << " f=" << r.far_reject_rate
                << " stop=" << static_cast<int>(r.stop) << "\n";
    }
  }
  const bool same_minimum =
      fixed_search.found && adaptive_search.found &&
      fixed_search.minimum == adaptive_search.minimum;
  // Final-probe verdicts: the last consulted probe at the returned minimum
  // must pass in both searches (the adaptive one is the full-budget
  // confirmation, so the verdicts are directly comparable).
  const auto final_verdict = [](const MinSearchResult& s) {
    for (auto it = s.probes.rbegin(); it != s.probes.rend(); ++it) {
      if (it->first == s.minimum) return it->second.passes();
    }
    return false;
  };
  const bool same_final_verdict =
      final_verdict(fixed_search) == final_verdict(adaptive_search);
  const double trial_reduction =
      static_cast<double>(fixed_trials_total) /
      static_cast<double>(std::max<std::uint64_t>(adaptive_trials_total, 1));

  Table search_table({"search", "q*", "probes", "total trials", "seconds"});
  search_table.add_row(
      {std::string("fixed budget"),
       static_cast<std::int64_t>(fixed_search.minimum),
       static_cast<std::int64_t>(fixed_search.probes.size()),
       static_cast<std::int64_t>(fixed_trials_total), fixed_seconds});
  search_table.add_row(
      {std::string("adaptive bracket"),
       static_cast<std::int64_t>(adaptive_search.minimum),
       static_cast<std::int64_t>(adaptive_search.probes.size()),
       static_cast<std::int64_t>(adaptive_trials_total), adaptive_seconds});
  search_table.print(std::cout, "find_min_param: fixed vs adaptive bracket");
  std::cout << "trial reduction = " << format_double(trial_reduction)
            << "x, identical minimum: " << (same_minimum ? "YES" : "NO")
            << ", same final verdict: " << (same_final_verdict ? "YES" : "NO")
            << "\n";

  // --- Part 4: persistent probe cache hit rate. ----------------------------
  // The same adaptive search, twice, against one on-disk cache: the second
  // run must be (nearly) all hits and reproduce every ProbeResult bit for
  // bit. The cache dir lives under the bench output dir and is wiped first,
  // so runs are self-contained.
  const std::string cache_dir = bench::output_dir() + "/probe_cache_bench";
  std::filesystem::remove_all(cache_dir);
  const auto cached_search = [&](ProbeCache& cache) {
    ProbeKey base;
    base.workload = "paninski:n=" + std::to_string(search_n) +
                    ":eps=" + format_double(search_eps);
    base.tester = "collision";
    const ProbeFn cfull = [&, base](std::uint64_t qq) {
      ProbeKey key = base;
      key.param = qq;
      return probe_success_cached(cache, key, collision_run(qq), s_uniform,
                                  s_far, search_trials,
                                  derive_seed(search_seed, qq), search_pool);
    };
    const ProbeFn cbracket = [&, base](std::uint64_t qq) {
      ProbeKey key = base;
      key.param = qq;
      return probe_success_adaptive_cached(
          cache, key, collision_run(qq), s_uniform, s_far, bracket_budget,
          derive_seed(search_seed, qq), acfg, search_pool);
    };
    return find_min_param(cfull, cbracket, scfg, search_pool);
  };

  double cache_hit_rate = 0.0;
  bool cache_bit_identical = false;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  {
    ProbeCache cold(cache_dir, CacheMode::kReadWrite);
    search_start = std::chrono::steady_clock::now();
    const MinSearchResult first = cached_search(cold);
    cold_seconds = seconds_since(search_start);
    // Fresh instance over the same directory = the next process run.
    ProbeCache warm(cache_dir, CacheMode::kReadWrite);
    search_start = std::chrono::steady_clock::now();
    const MinSearchResult second = cached_search(warm);
    warm_seconds = seconds_since(search_start);
    const CacheStats ws = warm.stats();
    cache_hit_rate = static_cast<double>(ws.hits) /
                     static_cast<double>(std::max<std::uint64_t>(
                         ws.hits + ws.misses, 1));
    cache_bit_identical =
        first.minimum == second.minimum &&
        first.probes.size() == second.probes.size();
    if (cache_bit_identical) {
      for (std::size_t i = 0; i < first.probes.size(); ++i) {
        if (first.probes[i].first != second.probes[i].first ||
            !probe_equal(first.probes[i].second, second.probes[i].second)) {
          cache_bit_identical = false;
          break;
        }
      }
    }
  }
  std::cout << "probe cache: hit rate " << format_double(100.0 * cache_hit_rate)
            << "% on second run (" << format_double(cold_seconds) << "s cold, "
            << format_double(warm_seconds) << "s warm), bit-identical: "
            << (cache_bit_identical ? "YES" : "NO") << "\n";

  // --- Emit BENCH_harness.json. --------------------------------------------
  std::string throughput = "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    throughput += "    {\"threads\": " + bench::json_u64(points[i].threads) +
                  ", \"trials_per_sec\": " +
                  bench::json_num(points[i].trials_per_sec) +
                  ", \"speedup_vs_1\": " + bench::json_num(points[i].speedup) +
                  "}";
    throughput += i + 1 < points.size() ? ",\n" : "\n";
  }
  throughput += "  ]";
  const std::string path = bench::emit_bench_json(
      "harness",
      {{"probe", "{\"n\": " + bench::json_u64(n) +
                     ", \"k\": " + bench::json_u64(k) +
                     ", \"q\": " + bench::json_u64(q) +
                     ", \"trials\": " + bench::json_u64(trials) + "}"},
       {"bit_identical", bench::json_bool(bit_identical)},
       {"probe_throughput", throughput},
       {"sampling",
        "{\"per_sample_sps\": " + bench::json_num(scalar_sps) +
            ", \"batched_sps\": " + bench::json_num(batched_sps) +
            ", \"batched_speedup\": " +
            bench::json_num(batched_sps / scalar_sps) + "}"},
       {"adaptive_search",
        "{\"n\": " + bench::json_u64(search_n) +
            ", \"eps\": " + bench::json_num(search_eps) +
            ", \"majority_reps\": " + bench::json_u64(search_reps) +
            ", \"trials\": " + bench::json_u64(search_trials) +
            ", \"bracket_budget\": " + bench::json_u64(bracket_budget) +
            ", \"fixed_minimum\": " + bench::json_u64(fixed_search.minimum) +
            ", \"adaptive_minimum\": " +
            bench::json_u64(adaptive_search.minimum) +
            ", \"fixed_trials_total\": " + bench::json_u64(fixed_trials_total) +
            ", \"adaptive_trials_total\": " +
            bench::json_u64(adaptive_trials_total) +
            ", \"trial_reduction\": " + bench::json_num(trial_reduction) +
            ", \"fixed_seconds\": " + bench::json_num(fixed_seconds) +
            ", \"adaptive_seconds\": " + bench::json_num(adaptive_seconds) +
            ", \"identical_minimum\": " + bench::json_bool(same_minimum) +
            ", \"same_final_verdict\": " + bench::json_bool(same_final_verdict) +
            "}"},
       {"probe_cache",
        "{\"hit_rate\": " + bench::json_num(cache_hit_rate) +
            ", \"cold_seconds\": " + bench::json_num(cold_seconds) +
            ", \"warm_seconds\": " + bench::json_num(warm_seconds) +
            ", \"bit_identical\": " + bench::json_bool(cache_bit_identical) +
            "}"}});
  if (!path.empty()) std::cout << "wrote " << path << "\n";

  // Quick mode halves the probe budget, which also halves how much an early
  // stop can save, so the 3x bar applies to the default configuration only;
  // the agreement and cache criteria hold in both modes.
  const bool search_ok = same_minimum && same_final_verdict &&
                         (flags.quick || trial_reduction >= 3.0) &&
                         cache_hit_rate >= 0.9 && cache_bit_identical;
  std::cout << "adaptive/cache acceptance (" << (flags.quick ? "" : ">=3x trials, ")
            << "identical minimum, >=90% hits, bit-identical): "
            << (search_ok ? "YES" : "NO") << "\n";
  return bit_identical && search_ok ? 0 : 1;
}
