// Measures the sweep engine (src/stats/sweep.hpp) against its own cold
// serial baseline on the ported benches' quick-mode sweeps, and ENFORCES
// the determinism contract at runtime:
//
//   cold   : warm_start off, cache off, 1-thread pool — the serial
//            full-budget baseline every number must match.
//   warm1  : warm start + fresh rw cache session, 1-thread pool.
//   warm8  : warm start + a second fresh rw cache session, 8-thread pool —
//            must reproduce warm1's minima, verdicts, and fingerprint.
//   rerun  : warm start against warm1's populated cache — the "rerun the
//            bench tomorrow" case; every probe must hit.
//
// Gates (nonzero exit on any failure):
//   - per-point minimum and verdict: warm1 == warm8 == cold
//   - sweep fingerprint: warm1 == warm8 == rerun
//   - rerun computes zero trials (cache covers the whole sweep)
//   - aggregate 2-run trial reduction (2*cold) / (warm1 + rerun) >= 2x
//
// Emits BENCH_sweep.json. Wall-clock numbers are recorded for context
// only (this container is often 1-core); every gate is on trial counts
// and bit-identity, which thread count cannot change.
//
// duti-lint: allow-file(no-wall-clock) -- the point-parallel speedup row
// is a wall-clock measurement by nature; it gates nothing (trial-count
// and bit-identity gates carry the lane) and never feeds a ProbeResult.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sweep_specs.hpp"

namespace {

using namespace duti;

struct FamilyRow {
  std::string name;
  std::size_t points = 0;
  std::uint64_t cold_trials = 0;
  std::uint64_t warm_trials = 0;
  std::uint64_t rerun_trials = 0;
  std::uint64_t rerun_hits = 0;
  std::uint64_t rerun_misses = 0;
  double single_run_reduction = 0.0;
  double combined_reduction = 0.0;
  std::uint64_t fingerprint = 0;
  bool minima_match = true;
  bool verdicts_match = true;
  bool fingerprints_match = true;
  double seconds_cold = 0.0;
  double seconds_warm1 = 0.0;
  double seconds_warm8 = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

FamilyRow measure_family(const std::string& name,
                         const std::vector<SweepPoint>& points,
                         const std::string& cache_root) {
  FamilyRow row;
  row.name = name;
  row.points = points.size();

  ThreadPool pool1(1);
  ThreadPool pool8(8);
  ProbeCache off_cache("", CacheMode::kOff);

  const std::string dir1 = cache_root + "/" + name + "_t1";
  const std::string dir8 = cache_root + "/" + name + "_t8";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);

  SweepEngineConfig cold_cfg;
  cold_cfg.warm_start = false;
  cold_cfg.cache = &off_cache;

  auto t0 = std::chrono::steady_clock::now();
  const SweepResult cold = run_sweep(points, cold_cfg, pool1);
  row.seconds_cold = seconds_since(t0);

  ProbeCache cache1(dir1, CacheMode::kReadWrite);
  SweepEngineConfig warm_cfg;
  warm_cfg.warm_start = true;
  warm_cfg.cache = &cache1;

  t0 = std::chrono::steady_clock::now();
  const SweepResult warm1 = run_sweep(points, warm_cfg, pool1);
  row.seconds_warm1 = seconds_since(t0);

  ProbeCache cache8(dir8, CacheMode::kReadWrite);
  SweepEngineConfig warm8_cfg = warm_cfg;
  warm8_cfg.cache = &cache8;

  t0 = std::chrono::steady_clock::now();
  const SweepResult warm8 = run_sweep(points, warm8_cfg, pool8);
  row.seconds_warm8 = seconds_since(t0);

  // Rerun against warm1's populated session: the whole sweep should hit.
  const SweepResult rerun = run_sweep(points, warm_cfg, pool1);

  row.cold_trials = cold.trials_computed;
  row.warm_trials = warm1.trials_computed;
  row.rerun_trials = rerun.trials_computed;
  row.rerun_hits = rerun.cache.hits;
  row.rerun_misses = rerun.cache.misses;
  row.fingerprint = warm1.fingerprint;

  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& c = cold.points[i];
    const auto& w1 = warm1.points[i];
    const auto& w8 = warm8.points[i];
    if (c.found != w1.found || c.minimum != w1.minimum ||
        w1.found != w8.found || w1.minimum != w8.minimum) {
      row.minima_match = false;
    }
    if (c.verdict != w1.verdict || w1.verdict != w8.verdict) {
      row.verdicts_match = false;
    }
  }
  row.fingerprints_match = warm1.fingerprint == warm8.fingerprint &&
                           warm1.fingerprint == rerun.fingerprint;

  const auto warm_total = static_cast<double>(row.warm_trials +
                                              row.rerun_trials);
  row.single_run_reduction =
      row.warm_trials == 0
          ? 0.0
          : static_cast<double>(row.cold_trials) /
                static_cast<double>(row.warm_trials);
  row.combined_reduction =
      warm_total == 0.0 ? 0.0
                        : 2.0 * static_cast<double>(row.cold_trials) /
                              warm_total;

  std::printf(
      "%-14s points=%zu cold=%llu warm=%llu rerun=%llu (hits=%llu) "
      "1-run=%.2fx 2-run=%.2fx minima=%s verdicts=%s fingerprints=%s\n",
      name.c_str(), row.points,
      static_cast<unsigned long long>(row.cold_trials),
      static_cast<unsigned long long>(row.warm_trials),
      static_cast<unsigned long long>(row.rerun_trials),
      static_cast<unsigned long long>(row.rerun_hits),
      row.single_run_reduction, row.combined_reduction,
      row.minima_match ? "OK" : "MISMATCH",
      row.verdicts_match ? "OK" : "MISMATCH",
      row.fingerprints_match ? "OK" : "MISMATCH");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::printf("micro_sweep [--quick] [--trials=150] [--seed=1]\n");
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto trials = static_cast<std::size_t>(flags.trials);
  const auto seed = static_cast<std::uint64_t>(flags.seed);

  bench::banner("micro_sweep  warm-start + shared-cache sweep engine",
                "gates: warm minima/verdicts == cold serial baseline at 1 "
                "and 8 threads; fingerprint thread-count- and cache-"
                "invariant; >= 2x 2-run trial reduction");

  // Families mirror the ported benches' --quick sweeps (same dims, same
  // seed derivations). --quick here trims to three families so the tier-1
  // smoke stays fast; the full set is the default.
  using Builder = std::function<std::vector<SweepPoint>()>;
  std::vector<std::pair<std::string, Builder>> families = {
      {"e1_any_rule",
       [&] { return bench::e1_points(4096, 0.5, {2, 16, 128}, trials, seed); }},
      {"e3_threshold",
       [&] { return bench::e3_points(4096, 64, 0.5, {1, 4, 16}, trials, seed); }},
      {"e9_multibit",
       [&] { return bench::e9_points(4096, 32, 0.5, {1, 8}, trials, seed); }},
  };
  if (!flags.quick) {
    families.push_back({"e2_and_rule", [&] {
      return bench::e2_and_points(1024, 0.5, {2, 32, 512}, trials, seed);
    }});
    families.push_back({"e2_threshold", [&] {
      return bench::e2_threshold_points(1024, 0.5, {2, 32, 512}, trials, seed);
    }});
    families.push_back({"e8_collision_n", [&] {
      return bench::e8_n_points<CentralizedCollisionTester>(
          "collision", {256, 4096}, 0.5, trials, seed,
          SamplingKernel::kPerSample);
    }});
    families.push_back({"e8_collision_eps", [&] {
      return bench::e8_eps_points(4096, {0.25, 0.5, 1.0}, trials, seed,
                                  SamplingKernel::kPerSample);
    }});
  }

  const std::string cache_root = bench::output_dir() + "/micro_sweep_cache";
  std::vector<FamilyRow> rows;
  for (const auto& [name, build] : families) {
    rows.push_back(measure_family(name, build(), cache_root));
  }

  std::uint64_t cold_total = 0;
  std::uint64_t warm_total = 0;
  std::uint64_t rerun_total = 0;
  std::uint64_t rerun_misses = 0;
  bool all_match = true;
  double speedup_sum = 0.0;
  for (const FamilyRow& r : rows) {
    cold_total += r.cold_trials;
    warm_total += r.warm_trials;
    rerun_total += r.rerun_trials;
    rerun_misses += r.rerun_misses;
    all_match = all_match && r.minima_match && r.verdicts_match &&
                r.fingerprints_match;
    speedup_sum += r.seconds_warm8 > 0.0 ? r.seconds_warm1 / r.seconds_warm8
                                         : 0.0;
  }
  const double combined =
      (warm_total + rerun_total) == 0
          ? 0.0
          : 2.0 * static_cast<double>(cold_total) /
                static_cast<double>(warm_total + rerun_total);
  const double single =
      warm_total == 0 ? 0.0
                      : static_cast<double>(cold_total) /
                            static_cast<double>(warm_total);
  const double point_speedup =
      rows.empty() ? 0.0 : speedup_sum / static_cast<double>(rows.size());

  const bool reduction_ok = combined >= 2.0;
  const bool rerun_ok = rerun_misses == 0;

  std::printf(
      "\nTOTAL cold=%llu warm=%llu rerun=%llu  single-run=%.2fx "
      "combined 2-run=%.2fx (gate >= 2x: %s)\n"
      "identity gates (minima/verdicts/fingerprints at 1 and 8 threads): "
      "%s\nrerun served entirely from cache: %s\n"
      "mean warm1/warm8 wall ratio: %.2fx (context only; "
      "hardware_concurrency=%u)\n",
      static_cast<unsigned long long>(cold_total),
      static_cast<unsigned long long>(warm_total),
      static_cast<unsigned long long>(rerun_total), single, combined,
      reduction_ok ? "PASS" : "FAIL", all_match ? "PASS" : "FAIL",
      rerun_ok ? "PASS" : "FAIL", point_speedup,
      std::thread::hardware_concurrency());

  // --- BENCH_sweep.json ----------------------------------------------------
  std::string sweeps = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FamilyRow& r = rows[i];
    char fp[24];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    sweeps += "    {\"name\": " + bench::json_str(r.name) +
              ", \"points\": " + bench::json_u64(r.points) +
              ", \"cold_trials\": " + bench::json_u64(r.cold_trials) +
              ", \"warm_trials\": " + bench::json_u64(r.warm_trials) +
              ", \"rerun_trials\": " + bench::json_u64(r.rerun_trials) +
              ", \"rerun_cache_hits\": " + bench::json_u64(r.rerun_hits) +
              ", \"single_run_reduction\": " +
              bench::json_num(r.single_run_reduction) +
              ", \"combined_reduction\": " +
              bench::json_num(r.combined_reduction) +
              ", \"fingerprint\": " + bench::json_str(fp) +
              ", \"minima_match\": " + bench::json_bool(r.minima_match) +
              ", \"verdicts_match\": " + bench::json_bool(r.verdicts_match) +
              ", \"fingerprints_match\": " +
              bench::json_bool(r.fingerprints_match) +
              ", \"seconds_cold\": " + bench::json_num(r.seconds_cold) +
              ", \"seconds_warm1\": " + bench::json_num(r.seconds_warm1) +
              ", \"seconds_warm8\": " + bench::json_num(r.seconds_warm8) +
              "}";
    sweeps += i + 1 < rows.size() ? ",\n" : "\n";
  }
  sweeps += "  ]";
  const std::string path = bench::emit_bench_json(
      "sweep",
      {{"quick", bench::json_bool(flags.quick)},
       {"trials", bench::json_u64(trials)},
       {"sweeps", sweeps},
       {"total_cold_trials", bench::json_u64(cold_total)},
       {"total_warm_trials", bench::json_u64(warm_total)},
       {"total_rerun_trials", bench::json_u64(rerun_total)},
       {"single_run_reduction", bench::json_num(single)},
       {"combined_reduction", bench::json_num(combined)},
       {"reduction_gate_2x", bench::json_bool(reduction_ok)},
       {"identity_gates", bench::json_bool(all_match)},
       {"rerun_all_hits", bench::json_bool(rerun_ok)},
       {"point_parallel_wall_ratio", bench::json_num(point_speedup)}});
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());

  return (reduction_ok && all_match && rerun_ok) ? 0 : 1;
}
