// Shared plumbing for the experiment binaries: banner printing, CSV output
// location, and the measured-vs-predicted table assembly used by every
// experiment. Each bench prints the same kind of artifact: a table with one
// row per sweep point carrying the measured minimum resource, the paper's
// predicted curve, and the fitted constant/slope comparison.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "stats/harness.hpp"
#include "stats/shape.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace duti::bench {

/// Where CSVs land; created on demand.
inline std::string output_dir() {
  const char* env = std::getenv("DUTI_BENCH_OUT");
  std::string dir = env ? env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=================================================================\n"
            << id << "\n" << claim
            << "\n=================================================================\n";
}

/// Print the shape verdict under a finished sweep table.
inline void print_shape(const std::vector<double>& x,
                        const std::vector<double>& measured,
                        const std::vector<double>& predicted,
                        const std::string& what) {
  const auto cmp = compare_shapes(x, measured, predicted);
  std::cout << "shape check (" << what << "):\n"
            << "  fitted constant c      = " << format_double(cmp.fitted_constant)
            << "\n  measured log-log slope = " << format_double(cmp.measured_slope)
            << "\n  predicted slope        = " << format_double(cmp.predicted_slope)
            << "\n  slope gap              = " << format_double(cmp.slope_gap)
            << "\n  max ratio deviation    = "
            << format_double(cmp.max_ratio_deviation) << "\n";
}

/// Stock flags every sweep bench accepts.
struct CommonFlags {
  std::int64_t trials;
  std::int64_t seed;
  bool quick;

  explicit CommonFlags(const Cli& cli)
      : trials(cli.get_int("trials", 150)),
        seed(cli.get_int("seed", 1)),
        quick(cli.get_bool("quick", false)) {}
};

}  // namespace duti::bench
