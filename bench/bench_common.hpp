// Shared plumbing for the experiment binaries: banner printing, CSV output
// location, the measured-vs-predicted table assembly used by every
// experiment, the stamped BENCH_*.json emitter, and the sweep-engine
// glue (engine config from CLI flags + the one-line sweep summary). Each
// bench prints the same kind of artifact: a table with one row per sweep
// point carrying the measured minimum resource, the paper's predicted
// curve, and the fitted constant/slope comparison.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "stats/harness.hpp"
#include "stats/probe_cache.hpp"
#include "stats/shape.hpp"
#include "stats/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace duti::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=================================================================\n"
            << id << "\n" << claim
            << "\n=================================================================\n";
}

/// Print the shape verdict under a finished sweep table.
inline void print_shape(const std::vector<double>& x,
                        const std::vector<double>& measured,
                        const std::vector<double>& predicted,
                        const std::string& what) {
  const auto cmp = compare_shapes(x, measured, predicted);
  std::cout << "shape check (" << what << "):\n"
            << "  fitted constant c      = " << format_double(cmp.fitted_constant)
            << "\n  measured log-log slope = " << format_double(cmp.measured_slope)
            << "\n  predicted slope        = " << format_double(cmp.predicted_slope)
            << "\n  slope gap              = " << format_double(cmp.slope_gap)
            << "\n  max ratio deviation    = "
            << format_double(cmp.max_ratio_deviation) << "\n";
}

/// Stock flags every sweep bench accepts.
struct CommonFlags {
  std::int64_t trials;
  std::int64_t seed;
  bool quick;

  explicit CommonFlags(const Cli& cli)
      : trials(cli.get_int("trials", 150)),
        seed(cli.get_int("seed", 1)),
        quick(cli.get_bool("quick", false)) {}
};

// --- Sweep-engine glue -----------------------------------------------------

/// Engine config for a sweep bench: warm mode (anchor hints + adaptive
/// bracket + shared cache session) by default, `--sweep=cold` forces the
/// cold full-budget baseline. Both modes produce bit-identical minima,
/// verdicts, and audit trails — cold exists to prove exactly that.
[[nodiscard]] inline SweepEngineConfig sweep_engine_config(const Cli& cli) {
  SweepEngineConfig cfg;
  cfg.warm_start = cli.get_string("sweep", "warm") != "cold";
  cfg.cache = &ProbeCache::global();
  return cfg;
}

/// One-line machine-diffable summary of a finished sweep: fingerprint plus
/// the consulted/computed work ledger. Runs at different DUTI_THREADS or
/// DUTI_CACHE settings must print the same fingerprint.
inline void print_sweep_summary(const std::string& name,
                                const SweepResult& sweep) {
  std::printf(
      "sweep[%s]: fingerprint=%016llx points=%zu probes=%llu "
      "trials_consulted=%llu trials_computed=%llu cache_hits=%llu\n",
      name.c_str(),
      static_cast<unsigned long long>(sweep.fingerprint),
      sweep.points.size(),
      static_cast<unsigned long long>(sweep.probes_consulted),
      static_cast<unsigned long long>(sweep.trials_consulted),
      static_cast<unsigned long long>(sweep.trials_computed),
      static_cast<unsigned long long>(sweep.cache.hits));
}

}  // namespace duti::bench
