// E7 — Proposition 5.2 and Lemma 5.5 (the evenly-covered combinatorics).
//
// Paper claims:
//   * |X_S| <= (|S|-1)!! (n/2)^{q-|S|/2}, and |X_S| depends only on |S|;
//   * E_x[a_r(x)^m] <= (4m)^{2mr} (q/sqrt(n/2))^{2mr or 2r} depending on
//     whether q is above or below sqrt(n/2).
//
// The bench computes exact counts/moments (full enumeration where it fits,
// Monte-Carlo beyond) and tabulates exact vs bound; the slack column shows
// how conservative the paper's bounds are.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fourier/evenly_covered.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e7_moments --seed=1 --mc-trials=100000\n";
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto mc_trials =
      static_cast<std::size_t>(cli.get_int("mc-trials", 100000));

  bench::banner("E7  evenly-covered counts and moments  [Prop 5.2, Lem 5.5]",
                "expected: every exact count/moment below its bound; slack "
                "grows with m and r (the bounds are deliberately loose)");

  Table xs_table({"ell", "q", "|S|", "|X_S| exact", "prop5.2 bound",
                  "bound/exact"});
  bool all_hold = true;
  for (unsigned ell : {2u, 3u, 4u}) {
    for (unsigned q : {4u, 6u}) {
      for (unsigned s_size = 2; s_size <= q; s_size += 2) {
        const double exact = count_x_s(ell, q, s_size);
        const double bound = prop52_bound(ell, q, s_size);
        if (exact > bound * (1.0 + 1e-12)) all_hold = false;
        xs_table.add_row({static_cast<std::int64_t>(ell),
                          static_cast<std::int64_t>(q),
                          static_cast<std::int64_t>(s_size), exact, bound,
                          exact > 0 ? bound / exact : 0.0});
      }
    }
  }
  xs_table.print(std::cout, "E7a: |X_S| exact vs Proposition 5.2");
  xs_table.write_csv(bench::output_dir() + "/e7_xs_counts.csv");

  Table mom_table({"ell", "q", "r", "m", "E[a_r^m]", "lemma5.5 bound",
                   "log slack", "method"});
  Rng rng(seed);
  for (unsigned ell : {2u, 3u, 5u}) {
    for (unsigned q : {4u, 6u, 10u}) {
      for (unsigned r : {1u, 2u}) {
        if (2 * r > q) continue;
        for (unsigned m : {1u, 2u, 3u}) {
          double exact = 0.0;
          std::string method;
          const double tuples = std::pow(std::ldexp(1.0, static_cast<int>(ell)),
                                         static_cast<double>(q));
          if (tuples <= static_cast<double>(1ULL << 22)) {
            exact = a_r_moment_exact(ell, q, r, m);
            method = "exact";
          } else {
            exact = a_r_moment_mc(ell, q, r, m, mc_trials, rng);
            method = "monte-carlo";
          }
          const double log_bound = lemma55_log_bound(ell, q, r, m);
          const double log_exact =
              exact > 0.0 ? std::log(exact)
                          : -std::numeric_limits<double>::infinity();
          if (log_exact > log_bound + 1e-9) all_hold = false;
          mom_table.add_row(
              {static_cast<std::int64_t>(ell), static_cast<std::int64_t>(q),
               static_cast<std::int64_t>(r), static_cast<std::int64_t>(m),
               exact, std::exp(log_bound), log_bound - log_exact, method});
        }
      }
    }
  }
  mom_table.print(std::cout, "E7b: moments of a_r(x) vs Lemma 5.5");
  mom_table.write_csv(bench::output_dir() + "/e7_moments.csv");
  std::cout << "all bounds hold: " << (all_hold ? "YES" : "NO") << "\n";
  return all_hold ? 0 : 1;
}
