// Stamped BENCH_*.json emission, split out of bench_common.hpp so tools
// that produce bench artifacts (tools/duti_analyze) can stamp them with the
// same header without pulling in the stats/sweep layers. Everything here is
// dependency-free standard library; names stay in duti::bench.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace duti::bench {

/// Where CSVs land; created on demand. A failed create_directories is
/// REPORTED (path + reason) and falls back to "." so artifacts still land
/// somewhere readable instead of vanishing into a nonexistent directory.
inline std::string output_dir() {
  const char* env = std::getenv("DUTI_BENCH_OUT");
  std::string dir = env ? env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec || !std::filesystem::is_directory(dir)) {
    std::cerr << "warning: cannot create bench output dir '" << dir << "'"
              << (ec ? " (" + ec.message() + ")" : "")
              << "; writing to '.' instead\n";
    return ".";
  }
  return dir;
}

// --- BENCH_*.json emission -------------------------------------------------
// Every artifact carries the same stamped header (bench name, schema
// version, and the environment knobs that shape results), so downstream
// comparisons can refuse to diff runs from different configurations.

/// Schema of the stamped header; bump when the header shape changes.
inline constexpr int kBenchJsonSchemaVersion = 2;

[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] inline std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

[[nodiscard]] inline std::string json_bool(bool b) {
  return b ? "true" : "false";
}

[[nodiscard]] inline std::string json_u64(std::uint64_t v) {
  return std::to_string(v);
}

[[nodiscard]] inline std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// One top-level field of a BENCH_*.json artifact: (key, pre-rendered JSON
/// value). Values are emitted verbatim, so nested objects/arrays are just
/// strings the bench assembles.
using JsonFields = std::vector<std::pair<std::string, std::string>>;

/// Write $DUTI_BENCH_OUT/BENCH_<name>.json with the stamped header
/// (schema_version + DUTI_THREADS/DUTI_SIMD/DUTI_CACHE/hardware_concurrency)
/// followed by `fields` in order. Returns the path, or "" on failure
/// (reported to stderr).
inline std::string emit_bench_json(const std::string& name,
                                   const JsonFields& fields) {
  const auto env_or_null = [](const char* var) {
    const char* v = std::getenv(var);
    return v ? json_str(v) : std::string("null");
  };
  const std::string path = output_dir() + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "warning: cannot write " << path << "\n";
    return "";
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", json_escape(name).c_str());
  std::fprintf(f, "  \"schema_version\": %d,\n", kBenchJsonSchemaVersion);
  std::fprintf(f,
               "  \"env\": {\"DUTI_THREADS\": %s, \"DUTI_SIMD\": %s, "
               "\"DUTI_CACHE\": %s, \"hardware_concurrency\": %u},\n",
               env_or_null("DUTI_THREADS").c_str(),
               env_or_null("DUTI_SIMD").c_str(),
               env_or_null("DUTI_CACHE").c_str(),
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(f, "  \"%s\": %s%s\n", json_escape(fields[i].first).c_str(),
                 fields[i].second.c_str(),
                 i + 1 < fields.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return path;
}

}  // namespace duti::bench
