// E10 — the asymmetric-cost model of Section 6.2.
//
// duti-lint: allow-file(no-serial-sweep-loop) -- the sweep axis is a set
// of categorical rate-vector SHAPES, not a numeric coordinate: there is
// nothing to interpolate warm-start hints along, which is the engine's
// whole point here.
//
// Paper claim: if player i samples at rate T_i for tau time units
// (q_i = T_i * tau), the optimal time is tau = Theta(sqrt(n)/(eps^2 ||T||_2))
// — only the l2 norm of the rate vector matters, not its shape.
//
// The bench measures the minimal integer tau for several rate vectors with
// DIFFERENT shapes but controlled l2 norms, and checks that
// tau* x ||T||_2 is approximately the same constant across shapes.
#include <cmath>
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "stats/workloads.hpp"
#include "testers/collision.hpp"
#include "testers/distributed.hpp"
#include "util/confidence.hpp"

namespace {

using namespace duti;

double l2_norm(const std::vector<double>& rates) {
  double acc = 0.0;
  for (double t : rates) acc += t * t;
  return std::sqrt(acc);
}

/// One protocol execution at time budget tau: player i draws
/// q_i = max(2, ceil(tau * T_i)) samples and votes on its local collision
/// count; the referee threshold is calibrated per configuration.
class AsymmetricTester {
 public:
  AsymmetricTester(std::uint64_t n, std::vector<double> rates, double tau,
                   Rng& calib_rng)
      : n_(n), qs_(rates.size()) {
    for (std::size_t j = 0; j < rates.size(); ++j) {
      qs_[j] = static_cast<unsigned>(
          std::max(2.0, std::ceil(tau * rates[j])));
    }
    // Per-player uniform rejection probabilities by simulation.
    p_.resize(qs_.size());
    const UniformSource uniform(n_);
    std::vector<std::uint64_t> samples;
    for (std::size_t j = 0; j < qs_.size(); ++j) {
      const double local_t = expected_collision_pairs_uniform(
          static_cast<double>(n_), qs_[j]);
      SuccessCounter rejects;
      for (int t = 0; t < 600; ++t) {
        uniform.sample_many(calib_rng, qs_[j], samples);
        rejects.record(static_cast<double>(collision_pairs(samples)) >
                       local_t);
      }
      p_[j] = rejects.rate();
    }
    double mean = 0.0, var = 0.0;
    for (double p : p_) {
      mean += p;
      var += p * (1.0 - p);
    }
    referee_t_ = mean + std::sqrt(std::max(1e-12, var));
  }

  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const {
    std::vector<std::uint64_t> samples;
    double rejects = 0.0;
    for (std::size_t j = 0; j < qs_.size(); ++j) {
      Rng player_rng = make_rng(rng(), j);
      source.sample_many(player_rng, qs_[j], samples);
      const double local_t = expected_collision_pairs_uniform(
          static_cast<double>(n_), qs_[j]);
      if (static_cast<double>(collision_pairs(samples)) > local_t) {
        rejects += 1.0;
      }
    }
    return rejects < referee_t_;
  }

 private:
  std::uint64_t n_;
  std::vector<unsigned> qs_;
  std::vector<double> p_;
  double referee_t_ = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e10_asymmetric --n=4096 --eps=0.5 --trials=150\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const double eps = cli.get_double("eps", 0.5);

  bench::banner("E10  asymmetric sampling rates  [Section 6.2]",
                "expected: tau* ~ sqrt(n)/(eps^2 ||T||_2); tau* x ||T||_2 "
                "approximately constant across rate-vector shapes");

  struct Shape {
    std::string name;
    std::vector<double> rates;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"uniform x16", std::vector<double>(16, 1.0)});
  {
    std::vector<double> one_fast(16, 1.0);
    one_fast[0] = 8.0;
    shapes.push_back({"one fast node", one_fast});
  }
  {
    std::vector<double> two_speed(16, 1.0);
    for (int i = 0; i < 8; ++i) two_speed[static_cast<std::size_t>(i)] = 3.0;
    shapes.push_back({"half fast", two_speed});
  }
  {
    std::vector<double> few(4, 2.0);
    shapes.push_back({"4 nodes at rate 2", few});
  }

  Table table({"rate vector", "||T||_2", "tau* (measured)",
               "predicted sqrt(n)/(eps^2 ||T||_2)", "tau* x ||T||_2"});
  std::vector<double> products;
  for (const auto& shape : shapes) {
    const ProbeFn probe = [&](std::uint64_t tau) {
      Rng calib_rng =
          make_rng(static_cast<std::uint64_t>(flags.seed), tau, 0xCA11B);
      const AsymmetricTester tester(n, shape.rates,
                                    static_cast<double>(tau), calib_rng);
      const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
        return tester.run(src, rng);
      };
      return probe_success(
          run, workloads::uniform_factory(n),
          workloads::paninski_far_factory(n, eps),
          static_cast<std::size_t>(flags.trials),
          derive_seed(static_cast<std::uint64_t>(flags.seed), tau,
                      shape.rates.size()));
    };
    MinSearchConfig cfg;
    cfg.lo = 2;
    cfg.hi = 1ULL << 14;
    cfg.trials = static_cast<std::size_t>(flags.trials);
    cfg.seed = static_cast<std::uint64_t>(flags.seed);
    const auto result = find_min_param(probe, cfg);
    if (!result.found) {
      std::cout << shape.name << ": search failed\n";
      continue;
    }
    const double norm = l2_norm(shape.rates);
    const double product = static_cast<double>(result.minimum) * norm;
    products.push_back(product);
    table.add_row({shape.name, norm,
                   static_cast<std::int64_t>(result.minimum),
                   predict::asymmetric_tau(static_cast<double>(n), eps,
                                           shape.rates),
                   product});
  }
  table.print(std::cout, "E10: time-to-decision vs rate-vector shape");
  table.write_csv(bench::output_dir() + "/e10_asymmetric.csv");
  if (products.size() >= 2) {
    const double lo = *std::min_element(products.begin(), products.end());
    const double hi = *std::max_element(products.begin(), products.end());
    std::cout << "spread of tau* x ||T||_2 across shapes: "
              << format_double(hi / lo) << "x (paper: constant)\n";
    return hi / lo < 3.0 ? 0 : 1;
  }
  return 0;
}
