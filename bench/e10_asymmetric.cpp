// E10 — the asymmetric-cost model of Section 6.2.
//
// duti-lint: allow-file(no-serial-sweep-loop) -- the sweep axis is a set
// of categorical rate-vector SHAPES, not a numeric coordinate: there is
// nothing to interpolate warm-start hints along, which is the engine's
// whole point here.
//
// Paper claim: if player i samples at rate T_i for tau time units
// (q_i = T_i * tau), the optimal time is tau = Theta(sqrt(n)/(eps^2 ||T||_2))
// — only the l2 norm of the rate vector matters, not its shape.
//
// The bench measures the minimal integer tau for several rate vectors with
// DIFFERENT shapes but controlled l2 norms, and checks that
// tau* x ||T||_2 is approximately the same constant across shapes.
#include <cmath>
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "stats/workloads.hpp"
#include "testers/asymmetric.hpp"
#include "util/confidence.hpp"

namespace {

using namespace duti;

double l2_norm(const std::vector<double>& rates) {
  double acc = 0.0;
  for (double t : rates) acc += t * t;
  return std::sqrt(acc);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e10_asymmetric --n=4096 --eps=0.5 --trials=150\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const double eps = cli.get_double("eps", 0.5);

  bench::banner("E10  asymmetric sampling rates  [Section 6.2]",
                "expected: tau* ~ sqrt(n)/(eps^2 ||T||_2); tau* x ||T||_2 "
                "approximately constant across rate-vector shapes");

  struct Shape {
    std::string name;
    std::vector<double> rates;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"uniform x16", std::vector<double>(16, 1.0)});
  {
    std::vector<double> one_fast(16, 1.0);
    one_fast[0] = 8.0;
    shapes.push_back({"one fast node", one_fast});
  }
  {
    std::vector<double> two_speed(16, 1.0);
    for (int i = 0; i < 8; ++i) two_speed[static_cast<std::size_t>(i)] = 3.0;
    shapes.push_back({"half fast", two_speed});
  }
  {
    std::vector<double> few(4, 2.0);
    shapes.push_back({"4 nodes at rate 2", few});
  }

  Table table({"rate vector", "||T||_2", "tau* (measured)",
               "predicted sqrt(n)/(eps^2 ||T||_2)", "tau* x ||T||_2"});
  std::vector<double> products;
  for (const auto& shape : shapes) {
    const ProbeFn probe = [&](std::uint64_t tau) {
      Rng calib_rng =
          make_rng(static_cast<std::uint64_t>(flags.seed), tau, 0xCA11B);
      // The library tester replays the original bench-local tester's
      // calibration stream and verdicts bit-for-bit (same 600 trials per
      // player from this shared calib_rng, same referee comparison).
      const AsymmetricRateTester tester(n, shape.rates,
                                        static_cast<double>(tau), calib_rng);
      const TesterRun run = [&tester](const SampleSource& src, Rng& rng) {
        return tester.run(src, rng);
      };
      return probe_success(
          run, workloads::uniform_factory(n),
          workloads::paninski_far_factory(n, eps),
          static_cast<std::size_t>(flags.trials),
          derive_seed(static_cast<std::uint64_t>(flags.seed), tau,
                      shape.rates.size()));
    };
    MinSearchConfig cfg;
    cfg.lo = 2;
    cfg.hi = 1ULL << 14;
    cfg.trials = static_cast<std::size_t>(flags.trials);
    cfg.seed = static_cast<std::uint64_t>(flags.seed);
    const auto result = find_min_param(probe, cfg);
    if (!result.found) {
      std::cout << shape.name << ": search failed\n";
      continue;
    }
    const double norm = l2_norm(shape.rates);
    const double product = static_cast<double>(result.minimum) * norm;
    products.push_back(product);
    table.add_row({shape.name, norm,
                   static_cast<std::int64_t>(result.minimum),
                   predict::asymmetric_tau(static_cast<double>(n), eps,
                                           shape.rates),
                   product});
  }
  table.print(std::cout, "E10: time-to-decision vs rate-vector shape");
  table.write_csv(bench::output_dir() + "/e10_asymmetric.csv");
  if (products.size() >= 2) {
    const double lo = *std::min_element(products.begin(), products.end());
    const double hi = *std::max_element(products.begin(), products.end());
    std::cout << "spread of tau* x ||T||_2 across shapes: "
              << format_double(hi / lo) << "x (paper: constant)\n";
    return hi / lo < 3.0 ? 0 : 1;
  }
  return 0;
}
