// Declarative SweepPoint builders for the q*-sweep benches (e1, e2, e3,
// e8, e9). Each builder reproduces the EXACT per-point seed derivations of
// the pre-engine serial loops — probe seed, calibration stream, and search
// range — so the engine's minima match the historical tables bit-for-bit,
// warm or cold. micro_sweep reuses the same builders to measure the
// engine against its cold serial baseline on the real sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/sweep.hpp"
#include "stats/workloads.hpp"
#include "testers/centralized.hpp"
#include "testers/distributed.hpp"
#include "testers/fixed_threshold.hpp"
#include "testers/multibit.hpp"

namespace duti::bench {

/// E1: calibrated threshold tester, sweep axis k. Seeds per point:
/// seed_k = derive_seed(seed, k); probe seed derive_seed(seed_k, q);
/// calibration stream make_rng(seed_k, q, 0xCA11B). The default kernel
/// reproduces the historical per-sample stream bit-for-bit; kCounts runs
/// the same testers on the multinomial counts plane (distinct cache rows).
inline std::vector<SweepPoint> e1_points(
    std::uint64_t n, double eps, const std::vector<std::int64_t>& ks,
    std::size_t trials, std::uint64_t seed,
    SamplingKernel kernel = SamplingKernel::kPerSample) {
  std::vector<SweepPoint> points;
  for (const auto k : ks) {
    const std::uint64_t seed_k =
        derive_seed(seed, static_cast<std::uint64_t>(k));
    SweepPoint p;
    p.label = "k=" + std::to_string(k);
    p.axis = static_cast<double>(k);
    p.search.lo = 2;
    p.search.hi = 1ULL << 16;
    p.search.trials = trials;
    p.search.seed = seed_k;
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, eps);
    p.make_tester = [n, k, eps, seed_k, kernel](std::uint64_t q) -> TesterRun {
      Rng calib_rng = make_rng(seed_k, q, 0xCA11B);
      auto tester = std::make_shared<DistributedThresholdTester>(
          DistributedTesterConfig{n, static_cast<unsigned>(k),
                                  static_cast<unsigned>(q), eps, kernel},
          calib_rng);
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester = "dist-threshold:k=" + std::to_string(k) +
                          ":seed=" + std::to_string(seed_k) +
                          (kernel == SamplingKernel::kCounts ? ":counts" : "");
    points.push_back(std::move(p));
  }
  return points;
}

/// E2, AND-rule half: uncalibrated AND tester, sweep axis k. Per point the
/// serial loop used seed_k = derive_seed(seed, k) and probe seed
/// derive_seed(seed_k, q, 1).
inline std::vector<SweepPoint> e2_and_points(
    std::uint64_t n, double eps, const std::vector<std::int64_t>& ks,
    std::size_t trials, std::uint64_t seed) {
  std::vector<SweepPoint> points;
  for (const auto k : ks) {
    const std::uint64_t seed_k =
        derive_seed(seed, static_cast<std::uint64_t>(k));
    SweepPoint p;
    p.label = "and:k=" + std::to_string(k);
    p.axis = static_cast<double>(k);
    p.search.lo = 2;
    p.search.hi = 1ULL << 16;
    p.search.trials = trials;
    p.search.seed = seed_k;
    p.seed_for = [seed_k](std::uint64_t q) { return derive_seed(seed_k, q, 1); };
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, eps);
    p.make_tester = [n, k, eps](std::uint64_t q) -> TesterRun {
      auto tester = std::make_shared<DistributedAndTester>(
          DistributedTesterConfig{n, static_cast<unsigned>(k),
                                  static_cast<unsigned>(q), eps});
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester = "dist-and:k=" + std::to_string(k);
    points.push_back(std::move(p));
  }
  return points;
}

/// E2, threshold half: per point the serial loop used
/// seed_thr = derive_seed(derive_seed(seed, k), 7), probe seed
/// derive_seed(seed_thr, q, 1), and a calibration stream seeded DIRECTLY
/// with derive_seed(seed_thr, q) (not the 0xCA11B label e1 uses).
inline std::vector<SweepPoint> e2_threshold_points(
    std::uint64_t n, double eps, const std::vector<std::int64_t>& ks,
    std::size_t trials, std::uint64_t seed) {
  std::vector<SweepPoint> points;
  for (const auto k : ks) {
    const std::uint64_t seed_thr =
        derive_seed(derive_seed(seed, static_cast<std::uint64_t>(k)), 7);
    SweepPoint p;
    p.label = "thr:k=" + std::to_string(k);
    p.axis = static_cast<double>(k);
    p.search.lo = 2;
    p.search.hi = 1ULL << 16;
    p.search.trials = trials;
    p.search.seed = seed_thr;
    p.seed_for = [seed_thr](std::uint64_t q) {
      return derive_seed(seed_thr, q, 1);
    };
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, eps);
    p.make_tester = [n, k, eps, seed_thr](std::uint64_t q) -> TesterRun {
      Rng calib_rng(derive_seed(seed_thr, q));
      auto tester = std::make_shared<DistributedThresholdTester>(
          DistributedTesterConfig{n, static_cast<unsigned>(k),
                                  static_cast<unsigned>(q), eps},
          calib_rng);
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester = "dist-threshold-e2:k=" + std::to_string(k) +
                          ":seed=" + std::to_string(seed_thr);
    points.push_back(std::move(p));
  }
  return points;
}

/// E3: forced-threshold tester, sweep axis T.
inline std::vector<SweepPoint> e3_points(std::uint64_t n, unsigned k,
                                         double eps,
                                         const std::vector<std::int64_t>& ts,
                                         std::size_t trials,
                                         std::uint64_t seed) {
  std::vector<SweepPoint> points;
  for (const auto t_forced : ts) {
    const std::uint64_t seed_t =
        derive_seed(seed, static_cast<std::uint64_t>(t_forced));
    SweepPoint p;
    p.label = "T=" + std::to_string(t_forced);
    p.axis = static_cast<double>(t_forced);
    p.search.lo = 2;
    p.search.hi = 1ULL << 16;
    p.search.trials = trials;
    p.search.seed = seed_t;
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, eps);
    p.make_tester = [n, k, eps, t_forced](std::uint64_t q) -> TesterRun {
      auto tester = std::make_shared<FixedThresholdTester>(
          FixedThresholdTester::Config{
              n, k, static_cast<unsigned>(q), eps,
              static_cast<std::uint64_t>(t_forced)});
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester = "fixed-threshold:k=" + std::to_string(k) +
                          ":T=" + std::to_string(t_forced);
    points.push_back(std::move(p));
  }
  return points;
}

/// E8a: one centralized tester across n at fixed eps. The axis is n, so
/// every point gets its own workload pair. `seed` here is the per-point
/// seed the serial loop derived (seed_n, or derive_seed(seed_n, 1|2) for
/// the chi-squared / coincidence columns).
template <typename Tester>
std::vector<SweepPoint> e8_n_points(const std::string& tester_id,
                                    const std::vector<std::int64_t>& ns,
                                    double eps, std::size_t trials,
                                    std::uint64_t seed, SamplingKernel kernel,
                                    std::uint64_t seed_salt = 0) {
  std::vector<SweepPoint> points;
  for (const auto n : ns) {
    const auto nd = static_cast<std::uint64_t>(n);
    std::uint64_t seed_n = derive_seed(seed, static_cast<std::uint64_t>(n));
    if (seed_salt != 0) seed_n = derive_seed(seed_n, seed_salt);
    SweepPoint p;
    p.label = tester_id + ":n=" + std::to_string(n);
    p.axis = static_cast<double>(n);
    p.search.lo = 2;
    p.search.hi = 1ULL << 18;
    p.search.trials = trials;
    p.search.seed = seed_n;
    p.uniform = workloads::uniform_factory(nd);
    p.far = workloads::paninski_far_factory(nd, eps);
    p.make_tester = [nd, eps, kernel](std::uint64_t q) -> TesterRun {
      auto tester = std::make_shared<Tester>(nd, eps,
                                             static_cast<unsigned>(q), kernel);
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester =
        tester_id + (kernel == SamplingKernel::kCounts ? ":counts" : "");
    points.push_back(std::move(p));
  }
  return points;
}

/// E8b: collision tester across eps at fixed n; per point the serial loop
/// used seed derive_seed(seed, uint64(eps * 1000)).
inline std::vector<SweepPoint> e8_eps_points(std::uint64_t n,
                                             const std::vector<double>& epss,
                                             std::size_t trials,
                                             std::uint64_t seed,
                                             SamplingKernel kernel) {
  std::vector<SweepPoint> points;
  for (const double eps : epss) {
    const std::uint64_t seed_e =
        derive_seed(seed, static_cast<std::uint64_t>(eps * 1000));
    SweepPoint p;
    p.label = "collision:eps=" + std::to_string(eps);
    p.axis = eps;
    p.search.lo = 2;
    p.search.hi = 1ULL << 18;
    p.search.trials = trials;
    p.search.seed = seed_e;
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, eps);
    p.make_tester = [n, eps, kernel](std::uint64_t q) -> TesterRun {
      auto tester = std::make_shared<CentralizedCollisionTester>(
          n, eps, static_cast<unsigned>(q), kernel);
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester =
        std::string("collision") +
        (kernel == SamplingKernel::kCounts ? ":counts" : "");
    points.push_back(std::move(p));
  }
  return points;
}

/// E9: multibit sum tester, sweep axis r (message bits).
inline std::vector<SweepPoint> e9_points(
    std::uint64_t n, unsigned k, double eps,
    const std::vector<std::int64_t>& rs, std::size_t trials,
    std::uint64_t seed, SamplingKernel kernel = SamplingKernel::kPerSample) {
  std::vector<SweepPoint> points;
  for (const auto r : rs) {
    const std::uint64_t seed_r =
        derive_seed(seed, static_cast<std::uint64_t>(r));
    SweepPoint p;
    p.label = "r=" + std::to_string(r);
    p.axis = static_cast<double>(r);
    p.search.lo = 2;
    p.search.hi = 1ULL << 16;
    p.search.trials = trials;
    p.search.seed = seed_r;
    p.uniform = workloads::uniform_factory(n);
    p.far = workloads::paninski_far_factory(n, eps);
    p.make_tester = [n, k, eps, r, seed_r,
                     kernel](std::uint64_t q) -> TesterRun {
      Rng calib_rng = make_rng(seed_r, q, 0xCA11B);
      auto tester = std::make_shared<MultibitSumTester>(
          MultibitSumTester::Config{n, k, static_cast<unsigned>(q), eps,
                                    static_cast<unsigned>(r), kernel},
          calib_rng);
      return [tester](const SampleSource& src, Rng& rng) {
        return tester->run(src, rng);
      };
    };
    p.cache_base.workload =
        "paninski:n=" + std::to_string(n) + ":eps=" + std::to_string(eps);
    p.cache_base.tester = "multibit-sum:k=" + std::to_string(k) +
                          ":r=" + std::to_string(r) +
                          (kernel == SamplingKernel::kCounts ? ":counts" : "");
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace duti::bench
