// E1 — Theorem 1.1 / Theorem 6.1 (arbitrary decision rules).
//
// Paper claim: with any decision rule and k <= n/eps^2 players, every
// uniformity tester needs q = Omega(sqrt(n/k)/eps^2) samples per player,
// and the threshold tester of [7] meets this, so the measured minimal q of
// our calibrated threshold tester should scale like sqrt(n/k)/eps^2: a
// log-log slope of -1/2 in k.
//
// This bench sweeps k, measures the minimal q at which the tester clears
// 2/3 two-sided success, prints it against the predicted curve, and also
// prints the Theorem 6.1 lower bound (inequality (13) constants) which
// must lie below every measured point.
#include <iostream>

#include "bench_common.hpp"
#include "core/divergence.hpp"
#include "core/predictions.hpp"
#include "sweep_specs.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e1_any_rule --n=4096 --eps=0.5 --ks=2,4,8,16,32,64,128,256 "
                 "--trials=150 --seed=1\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const double eps = cli.get_double("eps", 0.5);
  auto ks = cli.get_int_list("ks", {2, 4, 8, 16, 32, 64, 128, 256});
  if (flags.quick) ks = {2, 16, 128};

  bench::banner("E1  any-rule sample complexity vs k  [Thm 1.1 / 6.1]  (k=1 is the centralized case, covered by E8)",
                "expected: q* ~ sqrt(n/k)/eps^2 (slope -1/2 in k); the "
                "Thm 6.1 lower bound sits below every measured point");

  // The whole sweep runs through the engine: one declarative point per k
  // (seed derivations identical to the old serial loop), anchor-first warm
  // scheduling, shared probe-cache session. --sweep=cold reruns the serial
  // full-budget baseline; minima are bit-identical either way.
  const auto points =
      bench::e1_points(n, eps, ks, static_cast<std::size_t>(flags.trials),
                       static_cast<std::uint64_t>(flags.seed));
  const SweepResult sweep = run_sweep(points, bench::sweep_engine_config(cli));
  bench::print_sweep_summary("e1", sweep);

  Table table({"k", "q* (measured)", "predicted sqrt(n/k)/eps^2",
               "thm6.1 lower bound", "total k*q*"});
  std::vector<double> xs, measured, predicted;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto k = ks[i];
    const std::uint64_t q_star =
        sweep.points[i].found ? sweep.points[i].minimum : 0;
    if (q_star == 0) {
      std::cout << "k=" << k << ": search failed (cap too low?)\n";
      continue;
    }
    const double pred = predict::thm11_any_rule_q(
        static_cast<double>(n), static_cast<double>(k), eps);
    const double lower = theorem61_q_lower_bound(static_cast<double>(n),
                                                 static_cast<double>(k), eps);
    table.add_row({k, static_cast<std::int64_t>(q_star), pred, lower,
                   static_cast<std::int64_t>(q_star * static_cast<std::uint64_t>(k))});
    xs.push_back(static_cast<double>(k));
    measured.push_back(static_cast<double>(q_star));
    predicted.push_back(pred);
  }
  table.print(std::cout, "E1: minimal per-player q vs number of players k");
  table.write_csv(bench::output_dir() + "/e1_any_rule.csv");
  if (xs.size() >= 2) {
    bench::print_shape(xs, measured, predicted, "q* vs k");
  }

  // Lower-bound consistency: every measured point must be above the
  // Theorem 6.1 bound.
  bool consistent = true;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double lower = theorem61_q_lower_bound(static_cast<double>(n),
                                                 xs[i], eps);
    if (measured[i] < lower) consistent = false;
  }
  std::cout << "Theorem 6.1 lower bound respected at every k: "
            << (consistent ? "YES" : "NO") << "\n";
  return consistent ? 0 : 1;
}
