// Measures the batched protocol plane (src/sim/protocol_batch.hpp) against
// the legacy SimultaneousProtocol path on the threshold-tester q*-search
// workload, and ENFORCES the contracts the plane ships with:
//
//   legacy  : tester.make_protocol().run(...) per trial — the historical
//             allocating path (fresh players, messages, votes every trial).
//   outparam: same protocol through the reusable-buffer run overload.
//   batched : tester.run(...) — vote functor + referee rule resolved once,
//             trials through flat per-worker buffers, incremental tally.
//   counts  : the opt-in SamplingKernel::kCounts plane on a dense regime
//             (q >= n), where multinomial count kernels apply.
//
// Gates (nonzero exit on any failure):
//   - batched ns/trial beats legacy by >= 3x at the searched q*
//   - zero heap allocations per trial on the batched path (global
//     operator-new counter)
//   - verdicts and per-player message bits: batched == legacy, trial by
//     trial, on uniform and far sources
//   - q*-search minima: batched == legacy, and batched at 8 threads ==
//     batched at 1 thread; ProbeResult tallies identical across pools
//   - rerunning the batched search services every referee calibration
//     from the memo (zero misses)
//
// Emits BENCH_protocol.json. ns/trial numbers are wall-clock and recorded
// for the speedup gate only; every correctness gate is on integer tallies
// and bit-identity, which thread count cannot change.
//
// duti-lint: allow-file(no-wall-clock) -- the ns/trial rows are wall-clock
// by nature (the 3x gate is the point of the lane); they never feed a
// ProbeResult, and all correctness gates are on bit-identical tallies.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "stats/harness.hpp"
#include "stats/workloads.hpp"
#include "testers/calibration.hpp"
#include "testers/distributed.hpp"

// --- Global allocation counter ---------------------------------------------
// Replaces the global allocation functions so the zero-alloc gate can count
// every heap allocation made inside a timed trial loop, including aligned
// variants (the SIMD kernels' buffers must not sneak past the gate).

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t a =
      std::max(sizeof(void*), static_cast<std::size_t>(align));
  if (posix_memalign(&p, a, size ? size : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace duti;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One measured execution plane: best-of-reps ns/trial, allocations per
/// trial in steady state (after a warm-up rep has grown every buffer), and
/// an accept-count checksum so the compiler cannot elide the loop.
struct PlaneRow {
  double ns_per_trial = 0.0;
  double allocs_per_trial = 0.0;
  std::uint64_t accepts = 0;
};

template <typename TrialFn>
PlaneRow measure_plane(TrialFn&& trial, std::size_t trials, int reps,
                       std::uint64_t seed) {
  PlaneRow row;
  row.ns_per_trial = 1e300;
  {  // Warm-up: grow thread-local buffers outside the measured window.
    Rng rng(derive_seed(seed, 0xAAAA));
    for (int t = 0; t < 8; ++t) (void)trial(rng);
  }
  for (int rep = 0; rep < reps; ++rep) {
    Rng rng(derive_seed(seed, rep));
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t accepts = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      accepts += trial(rng) ? 1 : 0;
    }
    const double secs = seconds_since(t0);
    const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
    row.ns_per_trial =
        std::min(row.ns_per_trial, secs * 1e9 / static_cast<double>(trials));
    row.allocs_per_trial = static_cast<double>(allocs1 - allocs0) /
                           static_cast<double>(trials);
    row.accepts = accepts;
  }
  return row;
}

/// Probe over q for the threshold tester at (n, k, eps). `batched` picks
/// the execution plane; calibration and probe seeds depend only on
/// (seed, q), so the legacy and batched searches see identical testers
/// (the second construction at each q is a calibration-memo hit that
/// restores the same RNG exit state) and identical trial streams.
ProbeFn make_q_probe(std::uint64_t n, unsigned k, double eps,
                     std::size_t trials, std::uint64_t seed, bool batched,
                     ThreadPool& pool) {
  return [n, k, eps, trials, seed, batched, &pool](std::uint64_t q) {
    DistributedTesterConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.q = static_cast<unsigned>(q);
    cfg.eps = eps;
    Rng calib_rng = make_rng(seed, q, 0xCA11B);
    auto tester = std::make_shared<DistributedThresholdTester>(cfg, calib_rng);
    TesterRun run;
    if (batched) {
      run = [tester](const SampleSource& s, Rng& r) { return tester->run(s, r); };
    } else {
      auto proto = std::make_shared<SimultaneousProtocol>(tester->make_protocol());
      const DecisionRule rule = tester->make_rule();
      run = [proto, rule](const SampleSource& s, Rng& r) {
        return proto->run(s, r, rule).accept;
      };
    }
    return probe_success(run, workloads::uniform_factory(n),
                         workloads::paninski_far_factory(n, eps), trials,
                         derive_seed(seed, q), pool);
  };
}

bool same_tallies(const ProbeResult& a, const ProbeResult& b) {
  return a.trials == b.trials && a.uniform_successes == b.uniform_successes &&
         a.far_successes == b.far_successes;
}

int run_bench(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::printf(
        "micro_protocol --n=4096 --k=64 --eps=0.25 --trials=150 --seed=1 "
        "[--quick]\n");
    return 0;
  }
  bench::CommonFlags flags(cli);
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const unsigned k = static_cast<unsigned>(cli.get_int("k", 64));
  const double eps = cli.get_double("eps", 0.25);
  const std::size_t search_trials =
      flags.quick ? 60 : static_cast<std::size_t>(flags.trials);
  const std::size_t timing_trials = flags.quick ? 400 : 2000;
  const int timing_reps = flags.quick ? 2 : 3;
  const std::size_t identity_trials = flags.quick ? 128 : 512;
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.seed);

  bench::banner("micro_protocol",
                "batched protocol plane: >=3x ns/trial vs legacy, zero "
                "per-trial allocations, bit-identical verdicts and minima");

  ThreadPool pool1(1);
  ThreadPool pool8(8);

  // --- q*-search minima: legacy vs batched, 1 vs 8 threads -----------------
  CalibMemo::global().reset_stats();
  MinSearchConfig search;
  search.lo = 2;
  search.hi = 1ULL << 12;
  search.trials = search_trials;
  search.seed = seed;

  // The three searches below are the measurement itself: the same single
  // q*-search run against legacy and batched executors, cold vs memoized.
  // Routing them through run_sweep would share probes across the planes
  // being compared.
  const MinSearchResult min_legacy = find_min_param(  // duti-lint: allow(no-serial-sweep-loop) -- legacy-plane baseline of the comparison
      make_q_probe(n, k, eps, search_trials, seed, false, pool1), search,
      pool1);
  const CalibMemo::Stats cold_stats = CalibMemo::global().stats();

  CalibMemo::global().reset_stats();
  const MinSearchResult min_batched1 = find_min_param(  // duti-lint: allow(no-serial-sweep-loop) -- batched-plane arm of the comparison
      make_q_probe(n, k, eps, search_trials, seed, true, pool1), search,
      pool1);
  const CalibMemo::Stats rerun_stats = CalibMemo::global().stats();

  const MinSearchResult min_batched8 = find_min_param(  // duti-lint: allow(no-serial-sweep-loop) -- thread-invariance arm of the comparison
      make_q_probe(n, k, eps, search_trials, seed, true, pool8), search,
      pool8);

  const bool minima_match = min_legacy.found == min_batched1.found &&
                            min_legacy.minimum == min_batched1.minimum;
  const bool threads_match = min_batched1.found == min_batched8.found &&
                             min_batched1.minimum == min_batched8.minimum;
  // The batched search rebuilds the exact testers the legacy search
  // calibrated; every referee calibration must come from the memo.
  const bool rerun_all_hits = rerun_stats.misses == 0 && rerun_stats.hits > 0;
  const double hit_rate =
      rerun_stats.hits + rerun_stats.misses > 0
          ? static_cast<double>(rerun_stats.hits) /
                static_cast<double>(rerun_stats.hits + rerun_stats.misses)
          : 0.0;
  const std::uint64_t q_star =
      min_batched1.found ? min_batched1.minimum : 128;
  std::printf(
      "q*-search: legacy=%llu batched(t1)=%llu batched(t8)=%llu "
      "calib[memo]: cold misses=%llu, rerun hits=%llu misses=%llu\n",
      static_cast<unsigned long long>(min_legacy.minimum),
      static_cast<unsigned long long>(min_batched1.minimum),
      static_cast<unsigned long long>(min_batched8.minimum),
      static_cast<unsigned long long>(cold_stats.misses),
      static_cast<unsigned long long>(rerun_stats.hits),
      static_cast<unsigned long long>(rerun_stats.misses));

  // --- ProbeResult tallies across pools at q* ------------------------------
  const ProbeResult tally1 =
      make_q_probe(n, k, eps, search_trials, seed, true, pool1)(q_star);
  const ProbeResult tally8 =
      make_q_probe(n, k, eps, search_trials, seed, true, pool8)(q_star);
  const bool pools_match = same_tallies(tally1, tally8);

  // --- Trial-by-trial verdict and message identity at q* -------------------
  DistributedTesterConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.q = static_cast<unsigned>(q_star);
  cfg.eps = eps;
  Rng calib_rng = make_rng(seed, q_star, 0xCA11B);
  const DistributedThresholdTester tester(cfg, calib_rng);
  const SimultaneousProtocol proto = tester.make_protocol();
  const DecisionRule rule = tester.make_rule();

  std::uint64_t verdict_mismatches = 0;
  std::uint64_t message_mismatches = 0;
  {
    ProtocolResult legacy_res;
    std::vector<std::uint8_t> legacy_votes;
    std::vector<Message> batched_msgs;
    std::vector<std::uint8_t> batched_votes;
    Rng src_rng(derive_seed(seed, 0x5eed));
    for (std::size_t t = 0; t < identity_trials; ++t) {
      // Alternate uniform and fresh eps-far sources; both planes must agree
      // on every trial, message for message.
      std::unique_ptr<SampleSource> far;
      const UniformSource uniform(n);
      const SampleSource* src = &uniform;
      if (t % 2 == 1) {
        far = workloads::paninski_far_factory(n, eps)(src_rng);
        src = far.get();
      }
      Rng rng_a(derive_seed(seed, 0x1de, t));
      Rng rng_b(derive_seed(seed, 0x1de, t));
      proto.run(*src, rng_a, rule, legacy_res, legacy_votes);
      const bool batched_accept =
          tester.executor().run(*src, rng_b, rule, batched_msgs, batched_votes);
      if (legacy_res.accept != batched_accept) ++verdict_mismatches;
      for (unsigned j = 0; j < k; ++j) {
        if (legacy_res.messages[j].bits != batched_msgs[j].bits ||
            legacy_res.messages[j].width != batched_msgs[j].width) {
          ++message_mismatches;
          break;
        }
      }
    }
  }
  const bool verdicts_match = verdict_mismatches == 0 && message_mismatches == 0;
  std::printf("identity: %zu trials, %llu verdict / %llu message mismatches\n",
              identity_trials,
              static_cast<unsigned long long>(verdict_mismatches),
              static_cast<unsigned long long>(message_mismatches));

  // --- ns/trial: legacy vs outparam vs batched at q* -----------------------
  const UniformSource timing_src(n);
  const PlaneRow legacy_row = measure_plane(
      [&](Rng& rng) { return proto.run(timing_src, rng, rule).accept; },
      timing_trials, timing_reps, derive_seed(seed, 0x71));
  ProtocolResult out_res;
  std::vector<std::uint8_t> out_votes;
  const PlaneRow outparam_row = measure_plane(
      [&](Rng& rng) {
        proto.run(timing_src, rng, rule, out_res, out_votes);
        return out_res.accept;
      },
      timing_trials, timing_reps, derive_seed(seed, 0x72));
  const PlaneRow batched_row = measure_plane(
      [&](Rng& rng) { return tester.run(timing_src, rng); }, timing_trials,
      timing_reps, derive_seed(seed, 0x73));

  const double speedup = legacy_row.ns_per_trial / batched_row.ns_per_trial;
  const bool speedup_ok = speedup >= 3.0;
  const bool zero_alloc = batched_row.allocs_per_trial == 0.0;
  std::printf(
      "ns/trial at q*=%llu: legacy=%.0f (%.1f allocs) outparam=%.0f "
      "batched=%.0f (%.2f allocs) -> %.2fx\n",
      static_cast<unsigned long long>(q_star), legacy_row.ns_per_trial,
      legacy_row.allocs_per_trial, outparam_row.ns_per_trial,
      batched_row.ns_per_trial, batched_row.allocs_per_trial, speedup);

  // --- Counts plane on a dense regime (q >= n) -----------------------------
  // Same tester family, kCounts kernel; different RNG consumption by
  // design, so no bitwise gate — the plane's distribution is chi^2-gated
  // in tests/test_protocol_batch.cpp. Here: timing + accept-rate context.
  DistributedTesterConfig dense = cfg;
  dense.n = 64;
  dense.q = 256;
  dense.eps = 0.5;
  Rng dense_calib_a = make_rng(seed, 0xDE45E);
  Rng dense_calib_b = make_rng(seed, 0xDE45E);
  const DistributedThresholdTester dense_persample(dense, dense_calib_a);
  dense.kernel = SamplingKernel::kCounts;
  const DistributedThresholdTester dense_counts(dense, dense_calib_b);
  const UniformSource dense_src(dense.n);
  const PlaneRow dense_persample_row = measure_plane(
      [&](Rng& rng) { return dense_persample.run(dense_src, rng); },
      timing_trials, timing_reps, derive_seed(seed, 0x74));
  const PlaneRow dense_counts_row = measure_plane(
      [&](Rng& rng) { return dense_counts.run(dense_src, rng); },
      timing_trials, timing_reps, derive_seed(seed, 0x75));
  std::printf(
      "dense n=%llu q=%u: per-sample=%.0f ns/trial, counts=%.0f ns/trial "
      "(uniform accept %.3f vs %.3f)\n",
      static_cast<unsigned long long>(dense.n), dense.q,
      dense_persample_row.ns_per_trial, dense_counts_row.ns_per_trial,
      static_cast<double>(dense_persample_row.accepts) /
          static_cast<double>(timing_trials),
      static_cast<double>(dense_counts_row.accepts) /
          static_cast<double>(timing_trials));

  const bool ok = minima_match && threads_match && pools_match &&
                  verdicts_match && rerun_all_hits && speedup_ok && zero_alloc;

  const std::string path = bench::emit_bench_json(
      "protocol",
      {{"quick", bench::json_bool(flags.quick)},
       {"n", bench::json_u64(n)},
       {"k", bench::json_u64(k)},
       {"eps", bench::json_num(eps)},
       {"q_star", bench::json_u64(q_star)},
       {"search_trials", bench::json_u64(search_trials)},
       {"timing_trials", bench::json_u64(timing_trials)},
       {"legacy_ns_per_trial", bench::json_num(legacy_row.ns_per_trial)},
       {"outparam_ns_per_trial", bench::json_num(outparam_row.ns_per_trial)},
       {"batched_ns_per_trial", bench::json_num(batched_row.ns_per_trial)},
       {"speedup", bench::json_num(speedup)},
       {"legacy_allocs_per_trial", bench::json_num(legacy_row.allocs_per_trial)},
       {"batched_allocs_per_trial",
        bench::json_num(batched_row.allocs_per_trial)},
       {"dense_persample_ns_per_trial",
        bench::json_num(dense_persample_row.ns_per_trial)},
       {"dense_counts_ns_per_trial",
        bench::json_num(dense_counts_row.ns_per_trial)},
       {"min_q_legacy", bench::json_u64(min_legacy.minimum)},
       {"min_q_batched_t1", bench::json_u64(min_batched1.minimum)},
       {"min_q_batched_t8", bench::json_u64(min_batched8.minimum)},
       {"identity_trials", bench::json_u64(identity_trials)},
       {"verdict_mismatches", bench::json_u64(verdict_mismatches)},
       {"message_mismatches", bench::json_u64(message_mismatches)},
       {"calib_cold_misses", bench::json_u64(cold_stats.misses)},
       {"calib_rerun_hits", bench::json_u64(rerun_stats.hits)},
       {"calib_rerun_misses", bench::json_u64(rerun_stats.misses)},
       {"calib_rerun_hit_rate", bench::json_num(hit_rate)},
       {"gate_speedup_3x", bench::json_bool(speedup_ok)},
       {"gate_zero_alloc", bench::json_bool(zero_alloc)},
       {"gate_verdict_identity", bench::json_bool(verdicts_match)},
       {"gate_minima_identity", bench::json_bool(minima_match)},
       {"gate_thread_identity",
        bench::json_bool(threads_match && pools_match)},
       {"gate_calib_rerun_all_hits", bench::json_bool(rerun_all_hits)},
       {"pass", bench::json_bool(ok)}});
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "micro_protocol: GATE FAILURE (speedup=%d zero_alloc=%d "
                 "verdicts=%d minima=%d threads=%d calib=%d)\n",
                 speedup_ok, zero_alloc, verdicts_match, minima_match,
                 threads_match && pools_match, rerun_all_hits);
    return 1;
  }
  std::printf("micro_protocol: all gates passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run_bench(argc, argv); }
