// E3 — Theorem 1.3 (T-threshold decision rules).
//
// Paper claim: for k <= sqrt(n) and small T, any T-threshold tester needs
// q = Omega(sqrt(n)/(T log^2(k/eps) eps^2)): the cost falls roughly like
// 1/T until T leaves the "small threshold" window. The bench forces the
// referee threshold T, lets the players use the most aggressive safe local
// rule (see FixedThresholdTester), measures the minimal q per T, and
// checks the ~1/T decay: q* x T should stay within a small band.
#include <iostream>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "sweep_specs.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e3_threshold --n=4096 --k=64 --eps=0.5 --ts=1,2,4,8,16,32 "
                 "--trials=150 --seed=1\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  const auto k = static_cast<unsigned>(cli.get_int("k", 64));
  const double eps = cli.get_double("eps", 0.5);
  auto ts = cli.get_int_list("ts", {1, 2, 4, 8, 16, 32});
  if (flags.quick) ts = {1, 4, 16};

  bench::banner(
      "E3  q* vs forced referee threshold T  [Thm 1.3]",
      "expected: q* ~ sqrt(n)/(T log^2(k/eps) eps^2) in the small-T window "
      "(q* x T roughly constant), flattening once T is large");

  const auto points =
      bench::e3_points(n, k, eps, ts, static_cast<std::size_t>(flags.trials),
                       static_cast<std::uint64_t>(flags.seed));
  const SweepResult sweep = run_sweep(points, bench::sweep_engine_config(cli));
  bench::print_sweep_summary("e3", sweep);

  Table table({"T", "q* (measured)", "q* x T", "thm1.3 shape",
               "in thm1.3 window (c=10)"});
  std::vector<double> xs, measured, predicted;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto t_forced = ts[i];
    const std::uint64_t q_star =
        sweep.points[i].found ? sweep.points[i].minimum : 0;
    if (q_star == 0) {
      std::cout << "T=" << t_forced << ": search failed\n";
      continue;
    }
    const double pred = predict::thm13_threshold_q(
        static_cast<double>(n), static_cast<double>(k), eps,
        static_cast<double>(t_forced));
    const bool in_window = predict::thm13_threshold_applies(
        static_cast<double>(n), static_cast<double>(k), eps,
        static_cast<double>(t_forced), 10.0);
    table.add_row({t_forced, static_cast<std::int64_t>(q_star),
                   static_cast<std::int64_t>(
                       q_star * static_cast<std::uint64_t>(t_forced)),
                   pred, std::string(in_window ? "yes" : "no")});
    xs.push_back(static_cast<double>(t_forced));
    measured.push_back(static_cast<double>(q_star));
    predicted.push_back(pred);
  }
  table.print(std::cout, "E3: cost of small referee thresholds");
  table.write_csv(bench::output_dir() + "/e3_threshold.csv");
  if (xs.size() >= 2) {
    bench::print_shape(xs, measured, predicted, "q* vs T");
    // Checks. (a) Lower-bound consistency: Theorem 1.3 only FORBIDS testers
    // below ~sqrt(n)/(T polylog eps^2); every measured point must sit above
    // the predicted shape. (b) The qualitative phenomenon: forcing a
    // smaller T costs samples — cost falls substantially from T=1 to the
    // largest tested T. (Our collision-voter family does not meet the 1/T
    // decay itself — the optimal construction in [7] uses T = Theta(1/eps^4)
    // with different local statistics — so the measured slope sits between
    // 0 and -1; see EXPERIMENTS.md.)
    bool consistent = true;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (measured[i] < predicted[i]) consistent = false;
    }
    const double gain = measured.front() / measured.back();
    std::cout << "every measured q* above the Thm 1.3 shape: "
              << (consistent ? "YES" : "NO") << "\n"
              << "q*(T=" << xs.front() << ") / q*(T=" << xs.back()
              << ") = " << format_double(gain)
              << "  (smaller thresholds cost more samples: "
              << (gain > 1.5 ? "YES" : "NO") << ")\n"
              << "note: at eps=" << format_double(eps)
              << " the Thm 1.3 small-T window is nearly empty (it is an "
                 "asymptotic small-eps regime);\nthe shape row is the "
                 "lower-bound curve, shown for consistency only.\n";
    return (gain > 1.5 && consistent) ? 0 : 1;
  }
  return 0;
}
