// E2 — Theorem 1.2 / Theorem 6.5 (the AND decision rule is expensive).
//
// Paper claim: with the AND rule and k <= 2^{c/eps} players, every tester
// needs q = Omega(sqrt(n)/(log^2(k) eps^2)) — adding players buys at most a
// polylog factor, versus the sqrt(k) gain available to arbitrary rules.
//
// This bench measures the minimal per-player q of (a) the calibrated
// AND-rule tester and (b) the calibrated threshold tester, across k. The
// AND curve should stay nearly flat while the threshold curve falls like
// k^{-1/2}; the gap between them at large k is the measured "price of
// locality".
#include <iostream>

#include "bench_common.hpp"
#include "core/predictions.hpp"
#include "sweep_specs.hpp"

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e2_and_rule --n=1024 --eps=0.5 --ks=2,8,32,128,512 "
                 "--trials=150 --seed=1\n";
    return 0;
  }
  const bench::CommonFlags flags(cli);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 1024));
  const double eps = cli.get_double("eps", 0.5);
  auto ks = cli.get_int_list("ks", {2, 8, 32, 128, 512});
  if (flags.quick) ks = {2, 32, 512};

  bench::banner("E2  AND rule vs threshold rule, q* vs k  [Thm 1.2 / 6.5]",
                "expected: AND-rule q* nearly flat in k (polylog gain only); "
                "threshold-rule q* falls like k^{-1/2}");

  // Two engine sweeps over the same k axis — one per decision rule — with
  // the old serial loop's exact seed derivations; both share the cache
  // session and warm-start independently (their minima live on different
  // curves, so cross-rule hints would mislead).
  const auto trials = static_cast<std::size_t>(flags.trials);
  const auto seed = static_cast<std::uint64_t>(flags.seed);
  const SweepEngineConfig engine = bench::sweep_engine_config(cli);
  const SweepResult and_sweep =
      run_sweep(bench::e2_and_points(n, eps, ks, trials, seed), engine);
  const SweepResult thr_sweep =
      run_sweep(bench::e2_threshold_points(n, eps, ks, trials, seed), engine);
  bench::print_sweep_summary("e2_and", and_sweep);
  bench::print_sweep_summary("e2_thr", thr_sweep);

  Table table({"k", "q* AND rule", "q* threshold rule", "AND/threshold",
               "thm1.2 lower-bound shape", "fmo AND-tester shape"});
  std::vector<double> xs, and_measured, thr_measured;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto k = ks[i];
    const std::uint64_t q_and =
        and_sweep.points[i].found ? and_sweep.points[i].minimum : 0;
    const std::uint64_t q_thr =
        thr_sweep.points[i].found ? thr_sweep.points[i].minimum : 0;
    if (q_and == 0 || q_thr == 0) {
      std::cout << "k=" << k << ": search failed\n";
      continue;
    }
    table.add_row(
        {k, static_cast<std::int64_t>(q_and),
         static_cast<std::int64_t>(q_thr),
         static_cast<double>(q_and) / static_cast<double>(q_thr),
         predict::thm12_and_rule_q(static_cast<double>(n),
                                   static_cast<double>(k), eps),
         predict::fmo_and_tester_q(static_cast<double>(n),
                                   static_cast<double>(k), eps)});
    xs.push_back(static_cast<double>(k));
    and_measured.push_back(static_cast<double>(q_and));
    thr_measured.push_back(static_cast<double>(q_thr));
  }
  table.print(std::cout, "E2: the price of the local (AND) decision rule");
  table.write_csv(bench::output_dir() + "/e2_and_rule.csv");

  if (xs.size() >= 2) {
    const auto and_fit = fit_power_law(xs, and_measured);
    const auto thr_fit = fit_power_law(xs, thr_measured);
    std::cout << "measured slope in k:  AND rule = "
              << format_double(and_fit.slope)
              << "  (paper: ~0 up to polylog)\n"
              << "                      threshold = "
              << format_double(thr_fit.slope) << "  (paper: -1/2)\n";
    const bool and_flatter = and_fit.slope > thr_fit.slope + 0.15;
    std::cout << "AND rule measurably flatter than threshold rule: "
              << (and_flatter ? "YES" : "NO") << "\n";
    return and_flatter ? 0 : 1;
  }
  return 0;
}
