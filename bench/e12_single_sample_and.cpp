// E12 — the remark after Theorem 1.2: with ONE sample per node, the AND
// decision rule cannot test uniformity AT ALL, no matter how many nodes.
//
// Intuition: a single sample gives a player no collision information; any
// local rule is a (shared-randomness) subset indicator, and under the
// Paninski mixture the probability a sample lands in any fixed subset is
// eps-insensitive to second order. Under the AND rule the per-player
// rejection budget 1/(3k) then erases the per-player signal faster than k
// players can amplify it.
//
// The bench plays several natural single-sample local rules at increasing
// k and measures the tester advantage (uniform-accept + far-reject - 1),
// which should hover near zero everywhere; the same harness with q = 2
// collision voters (AND rule, generous samples) is shown as the contrast.
#include <iostream>

#include "bench_common.hpp"
#include "stats/workloads.hpp"
#include "testers/distributed.hpp"
#include "util/confidence.hpp"

namespace {

using namespace duti;

/// Single-sample AND-rule protocol: each player rejects with probability
/// gamma = 2/(3k) when its sample lands in a shared random half-domain
/// subset (fresh subset per run; players share it).
double advantage_subset_rule(std::uint64_t n, unsigned k, double eps,
                             std::size_t trials, std::uint64_t seed) {
  SuccessCounter uniform_ok, far_ok;
  const double gamma = 2.0 / (3.0 * static_cast<double>(k));
  auto run_once = [&](const SampleSource& source, Rng& rng) {
    const std::uint64_t subset_key = rng();  // shared randomness
    for (unsigned j = 0; j < k; ++j) {
      Rng player_rng = make_rng(rng(), j);
      const std::uint64_t sample = source.sample(player_rng);
      const bool in_subset =
          (SplitMix64(subset_key ^ sample).next() & 1ULL) != 0;
      if (in_subset && player_rng.next_bernoulli(gamma)) {
        return false;  // AND rule: one alarm rejects
      }
    }
    return true;
  };
  const auto uniform_factory = workloads::uniform_factory(n);
  const auto far_factory = workloads::paninski_far_factory(n, eps);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng src_rng = make_rng(seed, 1, t);
    const auto u = uniform_factory(src_rng);
    Rng run_rng = make_rng(seed, 2, t);
    uniform_ok.record(run_once(*u, run_rng));
    Rng far_src_rng = make_rng(seed, 3, t);
    const auto f = far_factory(far_src_rng);
    Rng far_run_rng = make_rng(seed, 4, t);
    far_ok.record(!run_once(*f, far_run_rng));
  }
  return uniform_ok.rate() + far_ok.rate() - 1.0;
}

/// Contrast: q = 2 collision voters under the AND rule with generous n'
/// (small domain so 2 samples already collide sometimes).
double advantage_two_sample_and(std::uint64_t n, unsigned k, unsigned q,
                                double eps, std::size_t trials,
                                std::uint64_t seed) {
  const DistributedAndTester tester({n, k, q, eps});
  SuccessCounter uniform_ok, far_ok;
  const auto uniform_factory = workloads::uniform_factory(n);
  const auto far_factory = workloads::paninski_far_factory(n, eps);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng src_rng = make_rng(seed, 1, t);
    const auto u = uniform_factory(src_rng);
    Rng run_rng = make_rng(seed, 2, t);
    uniform_ok.record(tester.run(*u, run_rng));
    Rng far_src_rng = make_rng(seed, 3, t);
    const auto f = far_factory(far_src_rng);
    Rng far_run_rng = make_rng(seed, 4, t);
    far_ok.record(!tester.run(*f, far_run_rng));
  }
  return uniform_ok.rate() + far_ok.rate() - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e12_single_sample_and --n=256 --eps=1.0 --trials=400\n";
    return 0;
  }
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 256));
  const double eps = cli.get_double("eps", 1.0);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  bench::banner("E12  q = 1 with the AND rule is impossible  [remark, Sec 6.3]",
                "expected: single-sample AND advantage ~ 0 at every k, even "
                "with eps = 1; two-sample collision voters separate easily");

  Table table({"k", "advantage (q=1, subset rule)",
               "advantage (q=2 collision voters, AND)"});
  double worst_single = 0.0;
  for (const std::int64_t k : {4LL, 16LL, 64LL, 256LL, 1024LL}) {
    const double adv1 = advantage_subset_rule(
        n, static_cast<unsigned>(k), eps, trials, derive_seed(seed, k, 1));
    // q=2 on a tiny domain (n'=16) where two samples collide often enough
    // for AND-rule testing to work with ~200 samples total.
    const double adv2 = advantage_two_sample_and(
        16, static_cast<unsigned>(k), 24, eps, trials,
        derive_seed(seed, k, 2));
    worst_single = std::max(worst_single, adv1);
    table.add_row({k, adv1, adv2});
  }
  table.print(std::cout, "E12: tester advantage vs k");
  table.write_csv(bench::output_dir() + "/e12_single_sample_and.csv");
  std::cout << "single-sample AND advantage stays below 0.15 at every k: "
            << (worst_single < 0.15 ? "YES" : "NO") << "\n";
  return worst_single < 0.15 ? 0 : 1;
}
