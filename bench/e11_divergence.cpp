// E11 — the information-theoretic pipeline of Section 6 (Theorem 6.1's
// proof), step by step, on exact small-universe computations:
//
//   (11): E_z[D(nu_z(G) || mu(G))]  <=  chi-squared cap (Fact 6.3)
//   (12): chi-squared cap           <=  Lemma 4.2 rhs / ln 2
//   (9)/(10): the per-player divergences ADD across independent players,
//             and testing requires total divergence >= (1/10) log(1/delta).
//
// The bench tabulates each quantity for the collision-voter message
// function across (q, eps), then inverts the chain to print the implied
// minimal k at each q — the discrete heart of Theorem 6.1.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/divergence.hpp"
#include "core/message_analysis.hpp"
#include "fourier/families.hpp"
#include "testers/collision.hpp"

namespace {

using namespace duti;

BooleanCubeFunction collision_voter(unsigned ell, unsigned q) {
  const CubeDomain dom(ell);
  const SampleTupleCodec codec(dom, q);
  const double local_t = expected_collision_pairs_uniform(
      static_cast<double>(dom.universe_size()), q);
  return BooleanCubeFunction::tabulate(
      codec.total_bits(), [&](std::uint64_t packed) {
        std::vector<std::uint64_t> elements(q);
        for (unsigned j = 0; j < q; ++j) {
          elements[j] = codec.element(packed, j);
        }
        return static_cast<double>(collision_pairs(elements)) > local_t ? 0.0
                                                                        : 1.0;
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duti;
  const Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << "e11_divergence --ell=3 --delta=0.333\n";
    return 0;
  }
  const auto ell = static_cast<unsigned>(cli.get_int("ell", 3));
  const double delta = cli.get_double("delta", 1.0 / 3.0);
  const CubeDomain dom(ell);
  const double n = static_cast<double>(dom.universe_size());

  bench::banner("E11  per-player divergence pipeline  [Thm 6.1 proof]",
                "expected: exact KL <= chi2 cap <= (2x) Lemma-4.2 cap at "
                "every (q, eps); implied k falls like 1/(q eps^2)^2");

  Table table({"q", "eps", "mu(G)", "E_z[KL] exact (bits)", "chi2 cap",
               "lemma4.2 cap x2", "implied min k"});
  bool chain_holds = true;
  for (unsigned q : {2u, 3u}) {  // q >= 2: the voter needs collisions
    if ((ell + 1) * q > 12) continue;
    const SampleTupleCodec codec(dom, q);
    const auto g = collision_voter(ell, q);
    const MessageAnalysis analysis(codec, g);
    const double mu_g = analysis.mu();
    if (mu_g <= 0.0 || mu_g >= 1.0) continue;  // degenerate voter at this q
    for (double eps : {0.1, 0.2, 0.4}) {
      // Exact expectation over all perturbation vectors.
      const std::uint64_t num_z = 1ULL << dom.side_size();
      double kl_acc = 0.0, chi_acc = 0.0;
      for (std::uint64_t zbits = 0; zbits < num_z; ++zbits) {
        PerturbationVector z(ell);
        for (std::uint64_t x = 0; x < dom.side_size(); ++x) {
          z.set_sign(x, ((zbits >> x) & 1ULL) ? -1 : +1);
        }
        const NuZ nu(dom, z, eps);
        const double alpha = analysis.nu_z_exact(nu);
        kl_acc += kl_bernoulli(alpha, mu_g);
        chi_acc += chi2_bernoulli_bound(alpha, mu_g);
      }
      const double kl = kl_acc / static_cast<double>(num_z);
      const double chi = chi_acc / static_cast<double>(num_z);
      const double lemma_cap = 2.0 * per_player_divergence_cap(n, q, eps);
      if (kl > chi + 1e-12 || chi > lemma_cap + 1e-12) chain_holds = false;
      const double implied_k =
          kl > 0.0 ? required_total_divergence(delta) / kl : 0.0;
      table.add_row({static_cast<std::int64_t>(q), eps, mu_g, kl, chi,
                     lemma_cap, implied_k});
    }
  }
  table.print(std::cout,
              "E11: exact KL vs chi-squared vs Lemma 4.2 caps (ell=" +
                  std::to_string(ell) + ")");
  table.write_csv(bench::output_dir() + "/e11_divergence.csv");
  std::cout << "inequality chain (11)-(12) holds at every point: "
            << (chain_holds ? "YES" : "NO") << "\n";
  return chain_holds ? 0 : 1;
}
