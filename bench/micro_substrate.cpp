// Substrate microbenchmarks (google-benchmark): the hot paths every
// experiment turns on. Includes the D2 ablation (alias vs inverse-CDF
// sampling).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "dist/alias_sampler.hpp"
#include "dist/generators.hpp"
#include "dist/nu_z.hpp"
#include "fourier/wht.hpp"
#include "sim/protocol.hpp"
#include "stats/workloads.hpp"
#include "testers/collision.hpp"
#include "testers/distributed.hpp"

namespace {

using namespace duti;

void BM_AliasSampler(benchmark::State& state) {
  Rng rng(1);
  const auto dist = gen::zipf(static_cast<std::size_t>(state.range(0)), 1.0);
  const AliasSampler sampler(dist.pmf_vector());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_AliasSampler)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

/// D2 ablation: inverse-CDF sampling via binary search on the cumulative
/// weights — O(log n) per draw where alias is O(1).
void BM_InverseCdfSampler(benchmark::State& state) {
  Rng rng(1);
  const auto dist = gen::zipf(static_cast<std::size_t>(state.range(0)), 1.0);
  std::vector<double> cdf(dist.domain_size());
  double acc = 0.0;
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    acc += dist.pmf(i);
    cdf[i] = acc;
  }
  for (auto _ : state) {
    const double u = rng.next_double();
    benchmark::DoNotOptimize(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
}
BENCHMARK(BM_InverseCdfSampler)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

void BM_NuZSample(benchmark::State& state) {
  Rng rng(2);
  const unsigned ell = static_cast<unsigned>(state.range(0));
  const NuZ nu(CubeDomain(ell), PerturbationVector::random(ell, rng), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nu.sample(rng));
  }
}
BENCHMARK(BM_NuZSample)->Arg(8)->Arg(16)->Arg(24);

void BM_Wht(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> data(1ULL << static_cast<unsigned>(state.range(0)));
  for (auto& v : data) v = rng.next_double();
  for (auto _ : state) {
    std::vector<double> copy = data;
    wht_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Wht)->Arg(10)->Arg(16)->Arg(20);

void BM_CollisionPairs(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::uint64_t> samples(
      static_cast<std::size_t>(state.range(0)));
  for (auto& s : samples) s = rng.next_below(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collision_pairs(samples));
  }
}
BENCHMARK(BM_CollisionPairs)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ProtocolRound(benchmark::State& state) {
  Rng rng(5);
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = 4096;
  const unsigned q = 32;
  const auto protocol = SimultaneousProtocol(
      k, q, make_collision_voters(q, expected_collision_pairs_uniform(
                                         static_cast<double>(n), q)));
  const UniformSource source(n);
  const auto rule = DecisionRule::threshold(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.run(source, rng, rule).accept);
  }
}
BENCHMARK(BM_ProtocolRound)->Arg(8)->Arg(64)->Arg(512);

/// Batched sample_many on a DistributionSource: one virtual dispatch per
/// batch, alias tables kept hot.
void BM_SampleManyBatched(benchmark::State& state) {
  Rng rng(7);
  const DistributionSource source(
      gen::zipf(static_cast<std::size_t>(state.range(0)), 1.0));
  std::vector<std::uint64_t> buf;
  source.sample_many(rng, 64, buf);  // build the lazy alias table
  for (auto _ : state) {
    source.sample_many(rng, 64, buf);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_SampleManyBatched)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

/// The pre-batching baseline: one virtual sample() call per draw through the
/// SampleSource base default loop.
void BM_SampleManyPerSample(benchmark::State& state) {
  Rng rng(7);
  const DistributionSource source(
      gen::zipf(static_cast<std::size_t>(state.range(0)), 1.0));
  const SampleSource& base = source;
  std::vector<std::uint64_t> buf(64);
  (void)base.sample(rng);  // build the lazy alias table
  for (auto _ : state) {
    for (auto& s : buf) s = base.sample(rng);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_SampleManyPerSample)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

/// The probe-loop allocation hoist (ISSUE 2 satellite): the same uniform
/// factory with and without the trial-invariant promise. The delta is the
/// per-trial heap allocation + source construction cost.
void BM_ProbeSourceHoisted(benchmark::State& state) {
  const TesterRun run = [](const SampleSource& src, Rng& rng) {
    std::vector<std::uint64_t> s;
    src.sample_many(rng, 16, s);
    return collision_pairs(s) == 0;
  };
  ThreadPool pool(1);
  const SourceSpec uniform = workloads::uniform_factory(4096);
  const SourceSpec far = workloads::paninski_far_factory(4096, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe_success(run, uniform, far, 64, 1, pool).trials);
  }
}
BENCHMARK(BM_ProbeSourceHoisted);

void BM_ProbeSourceFresh(benchmark::State& state) {
  const TesterRun run = [](const SampleSource& src, Rng& rng) {
    std::vector<std::uint64_t> s;
    src.sample_many(rng, 16, s);
    return collision_pairs(s) == 0;
  };
  ThreadPool pool(1);
  const SourceSpec uniform(workloads::uniform_factory(4096).factory(),
                           /*trial_invariant=*/false);
  const SourceSpec far = workloads::paninski_far_factory(4096, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe_success(run, uniform, far, 64, 1, pool).trials);
  }
}
BENCHMARK(BM_ProbeSourceFresh);

void BM_PerturbationVector(benchmark::State& state) {
  Rng rng(6);
  const unsigned ell = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerturbationVector::random(ell, rng));
  }
}
BENCHMARK(BM_PerturbationVector)->Arg(10)->Arg(20)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
