// The hard distribution family of Section 3 [Paninski'08 construction,
// lifted onto the Boolean cube]: for a perturbation vector
// z : {-1,1}^ell -> {-1,1},
//
//     nu_z(x, s) = (1 + s * z(x) * eps) / n,     n = 2^{ell+1}.
//
// Every nu_z is exactly eps-far from uniform in l1, and the mixture over a
// uniformly random z averages to the uniform distribution exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/cube_domain.hpp"
#include "dist/discrete_distribution.hpp"
#include "util/rng.hpp"

namespace duti {

/// A perturbation vector z: one sign per vertex of {-1,1}^ell.
class PerturbationVector {
 public:
  /// All +1 signs.
  explicit PerturbationVector(unsigned ell);

  /// Uniformly random signs.
  static PerturbationVector random(unsigned ell, Rng& rng);

  /// From explicit signs (size must be 2^ell, entries +-1).
  static PerturbationVector from_signs(unsigned ell,
                                       const std::vector<int>& signs);

  [[nodiscard]] unsigned ell() const noexcept { return ell_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return 1ULL << ell_; }

  /// z(x) in {-1, +1} for a cube point x in [0, 2^ell).
  [[nodiscard]] int sign(std::uint64_t x) const {
    return ((bits_[x >> 6] >> (x & 63U)) & 1ULL) ? -1 : +1;
  }

  void set_sign(std::uint64_t x, int s);

  /// The packed sign words backing sign() (bit x set means z(x) = -1):
  /// the layout consumed by the batched sampling kernels (util/kernels.hpp).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return bits_;
  }

 private:
  unsigned ell_;
  std::vector<std::uint64_t> bits_;  // bit=1 encodes sign -1
};

/// The distribution nu_z, sampled directly (without materializing the pmf):
/// draw x uniformly, then s = +1 with probability (1 + z(x) eps)/2.
class NuZ {
 public:
  NuZ(CubeDomain domain, PerturbationVector z, double eps);

  [[nodiscard]] const CubeDomain& domain() const noexcept { return domain_; }
  [[nodiscard]] const PerturbationVector& z() const noexcept { return z_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }

  /// pmf of element (x,s) under nu_z.
  [[nodiscard]] double pmf(std::uint64_t element) const noexcept;

  /// Draw one element.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const noexcept;

  /// Draw `count` iid elements into `out`.
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const;

  /// Materialize as a DiscreteDistribution (throws CapacityError when the
  /// universe exceeds max_cells).
  [[nodiscard]] DiscreteDistribution to_distribution(
      std::size_t max_cells = (1ULL << 26)) const;

  /// Exact l1 distance from uniform; equals eps by construction.
  [[nodiscard]] double l1_from_uniform() const noexcept { return eps_; }

 private:
  CubeDomain domain_;
  PerturbationVector z_;
  double eps_;
};

/// Convenience: the mixture E_z[nu_z] materialized exactly (it is uniform;
/// provided so tests can verify the identity E_z[nu_z] = U_n by enumeration
/// for small ell).
[[nodiscard]] DiscreteDistribution exact_mixture_over_z(unsigned ell,
                                                        double eps);

}  // namespace duti
