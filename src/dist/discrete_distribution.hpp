// A discrete probability distribution over {0, ..., n-1}, with the distance
// and divergence measures used throughout the paper (l1, total variation,
// l2, KL, chi-squared), plus O(1) sampling via the alias method.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dist/alias_sampler.hpp"
#include "util/rng.hpp"

namespace duti {

class DiscreteDistribution {
 public:
  /// Build from a pmf; validates non-negativity and that the entries sum to
  /// 1 within `tol`, then renormalizes exactly. Throws InvalidArgument.
  explicit DiscreteDistribution(std::vector<double> pmf, double tol = 1e-9);

  /// The uniform distribution on a domain of size n.
  [[nodiscard]] static DiscreteDistribution uniform(std::size_t n);

  [[nodiscard]] std::size_t domain_size() const noexcept {
    return pmf_.size();
  }
  [[nodiscard]] double pmf(std::size_t i) const { return pmf_.at(i); }
  [[nodiscard]] const std::vector<double>& pmf_vector() const noexcept {
    return pmf_;
  }

  /// Draw one sample. The sampler is built lazily on first use.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  /// Draw `count` iid samples into `out` (resized).
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const;

  /// l1 distance sum_i |p_i - q_i| (the paper's distance; in [0, 2]).
  [[nodiscard]] double l1_distance(const DiscreteDistribution& other) const;

  /// Total variation distance = l1 / 2 (in [0, 1]).
  [[nodiscard]] double tv_distance(const DiscreteDistribution& other) const;

  /// l2 distance sqrt(sum_i (p_i - q_i)^2).
  [[nodiscard]] double l2_distance(const DiscreteDistribution& other) const;

  /// KL divergence D(this || other) in bits (log base 2), +inf if this puts
  /// mass where other has none.
  [[nodiscard]] double kl_divergence(const DiscreteDistribution& other) const;

  /// chi-squared divergence sum_i (p_i - q_i)^2 / q_i; +inf if unsupported.
  [[nodiscard]] double chi2_divergence(const DiscreteDistribution& other) const;

  /// Shannon entropy in bits.
  [[nodiscard]] double entropy() const;

  /// Distance from the uniform distribution on the same domain, in l1.
  [[nodiscard]] double l1_from_uniform() const;

  /// The q-fold product distribution over tuples, as a flat pmf indexed by
  /// i_1 + i_2*n + ... + i_q*n^{q-1}. Exact-enumeration helper for small
  /// cases (throws CapacityError if n^q would exceed max_cells).
  [[nodiscard]] DiscreteDistribution power(unsigned q,
                                           std::size_t max_cells =
                                               (1ULL << 24)) const;

  /// Pointwise mixture (1-w)*this + w*other; domains must match.
  [[nodiscard]] DiscreteDistribution mix(const DiscreteDistribution& other,
                                         double w) const;

 private:
  std::vector<double> pmf_;
  mutable std::shared_ptr<const AliasSampler> sampler_;  // built lazily
};

}  // namespace duti
