// Walker/Vose alias method: O(n) preprocessing, O(1) sampling from an
// arbitrary discrete distribution. Sampling dominates the cost of every
// experiment in this library, so constant-time draws matter (see DESIGN.md
// decision D2; the ablation bench compares against inverse-CDF sampling).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace duti {

class AliasSampler {
 public:
  /// Build from unnormalized non-negative weights. Throws InvalidArgument on
  /// empty input, negative weights, or an all-zero weight vector.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draw one index in [0, size()) with probability proportional to weight.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const noexcept {
    const std::uint64_t i = rng.next_below(prob_.size());
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

  /// Batched draws: fill `out` with `count` iid samples. Consumes the RNG
  /// exactly like `count` sample() calls (bit-identical), but keeps the
  /// table pointers hot and lets callers skip per-draw call overhead.
  void sample_many(Rng& rng, std::size_t count,
                   std::vector<std::uint64_t>& out) const {
    out.resize(count);
    const double* prob = prob_.data();
    const std::uint64_t* alias = alias_.data();
    const std::size_t n = prob_.size();
    for (auto& s : out) {
      const std::uint64_t i = rng.next_below(n);
      s = rng.next_double() < prob[i] ? i : alias[i];
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// The acceptance probability table (exposed for tests).
  [[nodiscard]] const std::vector<double>& prob_table() const noexcept {
    return prob_;
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint64_t> alias_;
};

}  // namespace duti
