#include "dist/count_samplers.hpp"

#include <cmath>

#include "util/error.hpp"

namespace duti {

double normal_sample(Rng& rng) {
  // 1 - next_double() lies in (0, 1], so the log is finite.
  const double u1 = 1.0 - rng.next_double();
  const double u2 = rng.next_double();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double gamma_sample(Rng& rng, double shape) {
  require(shape >= 1.0, "gamma_sample: shape must be >= 1");
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal_sample(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - rng.next_double();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double beta_sample(Rng& rng, double a, double b) {
  require(a >= 1.0 && b >= 1.0, "beta_sample: a, b must be >= 1");
  const double ga = gamma_sample(rng, a);
  const double gb = gamma_sample(rng, b);
  return ga / (ga + gb);
}

namespace {

// Devroye's "second waiting time" method: successes arrive separated by
// Geometric(p) gaps; count how many gaps fit into n trials. O(1 + np).
std::uint64_t binomial_waiting_time(Rng& rng, std::uint64_t n, double p) {
  const double log1mp = std::log1p(-p);
  std::uint64_t count = 0;
  std::uint64_t used = 0;
  for (;;) {
    const double u = 1.0 - rng.next_double();  // (0, 1]
    const double gap = std::floor(std::log(u) / log1mp) + 1.0;
    if (gap > static_cast<double>(n - used)) break;
    used += static_cast<std::uint64_t>(gap);
    if (used > n) break;  // defensive; the double compare above should catch
    ++count;
  }
  return count;
}

}  // namespace

std::uint64_t binomial_sample(Rng& rng, std::uint64_t n, double p) {
  require(p >= 0.0 && p <= 1.0, "binomial_sample: p in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - binomial_sample(rng, n, 1.0 - p);

  if (n <= 16) {
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.next_bernoulli(p)) ++count;
    }
    return count;
  }
  const double mean = static_cast<double>(n) * p;
  if (mean <= 32.0) return binomial_waiting_time(rng, n, p);

  // Large mean: condition on the k-th order statistic X ~ Beta(k, n+1-k) of
  // n uniforms. If X <= p the k smallest all land below p and the other
  // n-k are iid uniform on (X, 1); otherwise only the k-1 below X (iid
  // uniform on (0, X)) can land below p. Either branch roughly halves n,
  // so the recursion bottoms out in the waiting-time regime after O(log n)
  // Beta draws. Exact at every step.
  const std::uint64_t k = n / 2 + 1;
  const double x = beta_sample(rng, static_cast<double>(k),
                               static_cast<double>(n + 1 - k));
  if (x <= p) {
    double p_rest = (p - x) / (1.0 - x);
    if (p_rest < 0.0) p_rest = 0.0;
    if (p_rest > 1.0) p_rest = 1.0;
    return k + binomial_sample(rng, n - k, p_rest);
  }
  double p_rest = p / x;
  if (p_rest > 1.0) p_rest = 1.0;
  return binomial_sample(rng, k - 1, p_rest);
}

}  // namespace duti
