// Exact count-kernel samplers: draw a multinomial histogram directly instead
// of tallying individual samples. For the count-only testers (collision,
// chi-squared, coincidence — everything downstream of
// collision_pairs_from_counts) this turns O(q) per-trial sampling work into
// O(min(n, q) log) binomial draws (DESIGN.md section 8).
//
// All samplers are EXACT (no normal approximation to the binomial): the
// large-mean path uses Devroye's order-statistic recursion through a Beta
// draw, halving the trial count each step, with Marsaglia-Tsang Gamma
// generation underneath. Every draw is a deterministic function of the Rng
// stream, so count kernels are reproducible like everything else in the
// library — but they consume the stream DIFFERENTLY from per-sample
// tallying, which is why testers only use them behind an opt-in flag.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace duti {

/// One standard normal draw (Box-Muller; consumes two uniforms).
[[nodiscard]] double normal_sample(Rng& rng);

/// Gamma(shape, 1) for shape >= 1 (Marsaglia-Tsang squeeze).
[[nodiscard]] double gamma_sample(Rng& rng, double shape);

/// Beta(a, b) for a, b >= 1, via two Gamma draws.
[[nodiscard]] double beta_sample(Rng& rng, double a, double b);

/// Exact Binomial(n, p) draw. Cost: O(n) only for tiny n; O(1 + np) in the
/// small-mean regime (waiting-time method); O(log n) Beta-split steps in the
/// large-mean regime. Throws InvalidArgument unless p is in [0, 1].
[[nodiscard]] std::uint64_t binomial_sample(Rng& rng, std::uint64_t n,
                                            double p);

/// Split `draws` uniform multinomial trials over the integer cells
/// [lo, hi): recursively halve the range, drawing the left half's share as
/// Binomial(remaining, left_width/width), and call emit(cell, count) for
/// every cell that received a nonzero count (depth-first, so cells are
/// emitted in increasing order). Subtrees with zero draws are pruned without
/// consuming randomness, so the work is O(min(hi - lo, draws * log)).
template <typename Emit>
void binomial_split_counts(Rng& rng, std::uint64_t draws, std::uint64_t lo,
                           std::uint64_t hi, Emit&& emit) {
  if (draws == 0 || lo >= hi) return;
  if (hi - lo == 1) {
    emit(lo, draws);
    return;
  }
  const std::uint64_t mid = lo + (hi - lo) / 2;
  const double p_left =
      static_cast<double>(mid - lo) / static_cast<double>(hi - lo);
  const std::uint64_t left = binomial_sample(rng, draws, p_left);
  binomial_split_counts(rng, left, lo, mid, emit);
  binomial_split_counts(rng, draws - left, mid, hi, emit);
}

}  // namespace duti
