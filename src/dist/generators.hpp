// Generators for the distributions used as workloads in the experiments:
// the Paninski two-level family on a flat domain, Zipf, bimodal, Dirac
// mixtures, and random eps-perturbations. All return distributions whose
// l1 distance from uniform is known (or computable), so experiment drivers
// can assert the "far" side really is eps-far.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/discrete_distribution.hpp"
#include "util/rng.hpp"

namespace duti::gen {

/// Paninski two-level construction on a flat domain {0,...,n-1} (n even):
/// pair up (2i, 2i+1) and move eps/n mass within each pair according to a
/// random sign. Exactly eps-far from uniform in l1. This is the same family
/// as NuZ but without the cube structure — used for the flat-domain testers.
[[nodiscard]] DiscreteDistribution paninski(std::size_t n, double eps,
                                            Rng& rng);

/// Deterministic Paninski with explicit per-pair signs (size n/2, +-1).
[[nodiscard]] DiscreteDistribution paninski_with_signs(
    std::size_t n, double eps, const std::vector<int>& signs);

/// Zipf(s) distribution: pmf(i) proportional to 1/(i+1)^s.
[[nodiscard]] DiscreteDistribution zipf(std::size_t n, double s);

/// Bimodal: mass (1+delta)/n on the first half, (1-delta)/n on the second
/// (n even). l1 distance from uniform is exactly delta.
[[nodiscard]] DiscreteDistribution bimodal(std::size_t n, double delta);

/// Mixture of uniform with a point mass at `heavy`: weight w on the point.
/// l1 distance from uniform is 2*w*(1 - 1/n).
[[nodiscard]] DiscreteDistribution dirac_mixture(std::size_t n,
                                                 std::size_t heavy, double w);

/// Uniform over a random subset of size m < n (far from uniform by
/// 2(1 - m/n) in l1).
[[nodiscard]] DiscreteDistribution uniform_subset(std::size_t n,
                                                  std::size_t m, Rng& rng);

/// A random distribution at l1 distance exactly eps from uniform, obtained
/// by a random direction in the simplex tangent space (rejection-free:
/// random pairing with +-eps/n transfers, like paninski but with a random
/// perfect matching of the domain).
[[nodiscard]] DiscreteDistribution random_perturbation(std::size_t n,
                                                       double eps, Rng& rng);

}  // namespace duti::gen
