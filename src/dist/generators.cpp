#include "dist/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace duti::gen {

DiscreteDistribution paninski(std::size_t n, double eps, Rng& rng) {
  require(n >= 2 && n % 2 == 0, "paninski: n must be even and >= 2");
  std::vector<int> signs(n / 2);
  for (auto& s : signs) s = rng.next_sign();
  return paninski_with_signs(n, eps, signs);
}

DiscreteDistribution paninski_with_signs(std::size_t n, double eps,
                                         const std::vector<int>& signs) {
  require(n >= 2 && n % 2 == 0, "paninski_with_signs: n must be even");
  require(signs.size() == n / 2, "paninski_with_signs: need n/2 signs");
  require(eps >= 0.0 && eps <= 1.0, "paninski_with_signs: eps in [0,1]");
  std::vector<double> pmf(n);
  const double base = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    require(signs[i] == 1 || signs[i] == -1,
            "paninski_with_signs: signs must be +-1");
    const double d = static_cast<double>(signs[i]) * eps * base;
    pmf[2 * i] = base + d;
    pmf[2 * i + 1] = base - d;
  }
  return DiscreteDistribution(std::move(pmf));
}

DiscreteDistribution zipf(std::size_t n, double s) {
  require(n >= 1, "zipf: n must be positive");
  require(s >= 0.0, "zipf: exponent must be non-negative");
  std::vector<double> pmf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf[i] = std::pow(static_cast<double>(i + 1), -s);
    total += pmf[i];
  }
  for (double& p : pmf) p /= total;
  return DiscreteDistribution(std::move(pmf));
}

DiscreteDistribution bimodal(std::size_t n, double delta) {
  require(n >= 2 && n % 2 == 0, "bimodal: n must be even and >= 2");
  require(delta >= 0.0 && delta <= 1.0, "bimodal: delta in [0,1]");
  std::vector<double> pmf(n);
  const double base = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    pmf[i] = i < n / 2 ? base * (1.0 + delta) : base * (1.0 - delta);
  }
  return DiscreteDistribution(std::move(pmf));
}

DiscreteDistribution dirac_mixture(std::size_t n, std::size_t heavy,
                                   double w) {
  require(n >= 1, "dirac_mixture: n must be positive");
  require(heavy < n, "dirac_mixture: heavy element out of range");
  require(w >= 0.0 && w <= 1.0, "dirac_mixture: weight in [0,1]");
  std::vector<double> pmf(n, (1.0 - w) / static_cast<double>(n));
  pmf[heavy] += w;
  return DiscreteDistribution(std::move(pmf));
}

DiscreteDistribution uniform_subset(std::size_t n, std::size_t m, Rng& rng) {
  require(m >= 1 && m <= n, "uniform_subset: need 1 <= m <= n");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: pick the first m positions.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(idx[i], idx[j]);
  }
  std::vector<double> pmf(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    pmf[idx[i]] = 1.0 / static_cast<double>(m);
  }
  return DiscreteDistribution(std::move(pmf));
}

DiscreteDistribution random_perturbation(std::size_t n, double eps,
                                         Rng& rng) {
  require(n >= 2 && n % 2 == 0, "random_perturbation: n must be even");
  require(eps >= 0.0 && eps <= 1.0, "random_perturbation: eps in [0,1]");
  // Random perfect matching of the domain, then +-eps/n transfers per pair.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(idx[i - 1], idx[j]);
  }
  std::vector<double> pmf(n, 1.0 / static_cast<double>(n));
  const double d = eps / static_cast<double>(n);
  for (std::size_t p = 0; p < n / 2; ++p) {
    const int sgn = rng.next_sign();
    pmf[idx[2 * p]] += static_cast<double>(sgn) * d;
    pmf[idx[2 * p + 1]] -= static_cast<double>(sgn) * d;
  }
  return DiscreteDistribution(std::move(pmf));
}

}  // namespace duti::gen
