#include "dist/nu_z.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/kernels.hpp"

namespace duti {

PerturbationVector::PerturbationVector(unsigned ell) : ell_(ell) {
  require(ell >= 1 && ell <= 30, "PerturbationVector: ell must be in [1,30]");
  bits_.assign(((1ULL << ell_) + 63) / 64, 0);
}

PerturbationVector PerturbationVector::random(unsigned ell, Rng& rng) {
  PerturbationVector z(ell);
  for (auto& word : z.bits_) word = rng();
  // Mask unused high bits of the last word so comparisons stay well-defined.
  const std::uint64_t used = (1ULL << ell) % 64;
  if (used != 0) z.bits_.back() &= (1ULL << used) - 1;
  return z;
}

PerturbationVector PerturbationVector::from_signs(
    unsigned ell, const std::vector<int>& signs) {
  PerturbationVector z(ell);
  require(signs.size() == (1ULL << ell),
          "PerturbationVector::from_signs: size must be 2^ell");
  for (std::uint64_t x = 0; x < signs.size(); ++x) {
    z.set_sign(x, signs[x]);
  }
  return z;
}

void PerturbationVector::set_sign(std::uint64_t x, int s) {
  require(x < size(), "PerturbationVector::set_sign: x out of range");
  require(s == 1 || s == -1, "PerturbationVector::set_sign: s must be +-1");
  const std::uint64_t mask = 1ULL << (x & 63U);
  if (s == -1) {
    bits_[x >> 6] |= mask;
  } else {
    bits_[x >> 6] &= ~mask;
  }
}

NuZ::NuZ(CubeDomain domain, PerturbationVector z, double eps)
    : domain_(domain), z_(std::move(z)), eps_(eps) {
  require(domain_.ell() == z_.ell(), "NuZ: domain/z dimension mismatch");
  require(eps_ >= 0.0 && eps_ <= 1.0, "NuZ: eps must be in [0,1]");
}

double NuZ::pmf(std::uint64_t element) const noexcept {
  const auto n = static_cast<double>(domain_.universe_size());
  const int s = domain_.s_of(element);
  const int zx = z_.sign(domain_.x_of(element));
  return (1.0 + static_cast<double>(s * zx) * eps_) / n;
}

std::uint64_t NuZ::sample(Rng& rng) const noexcept {
  const std::uint64_t x = rng.next_below(domain_.side_size());
  // P(s=+1 | x) = (1 + z(x) eps) / 2.
  const double p_plus = 0.5 * (1.0 + static_cast<double>(z_.sign(x)) * eps_);
  const int s = rng.next_double() < p_plus ? +1 : -1;
  return x | (static_cast<std::uint64_t>(s == -1) << domain_.ell());
}

void NuZ::sample_many(Rng& rng, std::size_t count,
                      std::vector<std::uint64_t>& out) const {
  out.resize(count);
  // Batched kernel: vectorized heavy/light classification with the RNG
  // consumed exactly like `count` repeated sample() calls (two raw draws
  // per sample, in sample order) — bit-identical at every SimdLevel.
  kernels::nuz_sample_many(rng, z_.words(), domain_.ell(), eps_, out);
}

DiscreteDistribution NuZ::to_distribution(std::size_t max_cells) const {
  const std::uint64_t n = domain_.universe_size();
  if (n > max_cells) {
    throw CapacityError("NuZ::to_distribution: universe too large");
  }
  std::vector<double> pmf_vec(n);
  for (std::uint64_t e = 0; e < n; ++e) pmf_vec[e] = pmf(e);
  return DiscreteDistribution(std::move(pmf_vec));
}

DiscreteDistribution exact_mixture_over_z(unsigned ell, double eps) {
  require(ell <= 4, "exact_mixture_over_z: 2^(2^ell) enumerations; ell <= 4");
  const CubeDomain dom(ell);
  const std::uint64_t side = dom.side_size();
  const std::uint64_t n = dom.universe_size();
  const std::uint64_t num_z = 1ULL << side;
  std::vector<double> acc(n, 0.0);
  for (std::uint64_t zbits = 0; zbits < num_z; ++zbits) {
    PerturbationVector z(ell);
    for (std::uint64_t x = 0; x < side; ++x) {
      z.set_sign(x, ((zbits >> x) & 1ULL) ? -1 : +1);
    }
    const NuZ nu(dom, z, eps);
    for (std::uint64_t e = 0; e < n; ++e) acc[e] += nu.pmf(e);
  }
  for (double& p : acc) p /= static_cast<double>(num_z);
  return DiscreteDistribution(std::move(acc));
}

}  // namespace duti
