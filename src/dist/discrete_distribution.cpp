#include "dist/discrete_distribution.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace duti {

DiscreteDistribution::DiscreteDistribution(std::vector<double> pmf,
                                           double tol)
    : pmf_(std::move(pmf)) {
  require(!pmf_.empty(), "DiscreteDistribution: empty pmf");
  double total = 0.0;
  for (double p : pmf_) {
    require(p >= 0.0, "DiscreteDistribution: negative probability");
    total += p;
  }
  require(std::fabs(total - 1.0) <= tol,
          "DiscreteDistribution: pmf sums to " + std::to_string(total) +
              ", not 1");
  for (double& p : pmf_) p /= total;
}

DiscreteDistribution DiscreteDistribution::uniform(std::size_t n) {
  require(n > 0, "uniform: domain size must be positive");
  return DiscreteDistribution(
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

std::uint64_t DiscreteDistribution::sample(Rng& rng) const {
  if (!sampler_) sampler_ = std::make_shared<AliasSampler>(pmf_);
  return sampler_->sample(rng);
}

void DiscreteDistribution::sample_many(Rng& rng, std::size_t count,
                                       std::vector<std::uint64_t>& out) const {
  if (!sampler_) sampler_ = std::make_shared<AliasSampler>(pmf_);
  sampler_->sample_many(rng, count, out);
}

double DiscreteDistribution::l1_distance(
    const DiscreteDistribution& other) const {
  require(domain_size() == other.domain_size(),
          "l1_distance: domain size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    acc += std::fabs(pmf_[i] - other.pmf_[i]);
  }
  return acc;
}

double DiscreteDistribution::tv_distance(
    const DiscreteDistribution& other) const {
  return 0.5 * l1_distance(other);
}

double DiscreteDistribution::l2_distance(
    const DiscreteDistribution& other) const {
  require(domain_size() == other.domain_size(),
          "l2_distance: domain size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double d = pmf_[i] - other.pmf_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double DiscreteDistribution::kl_divergence(
    const DiscreteDistribution& other) const {
  require(domain_size() == other.domain_size(),
          "kl_divergence: domain size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    if (pmf_[i] == 0.0) continue;
    if (other.pmf_[i] == 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    acc += pmf_[i] * std::log2(pmf_[i] / other.pmf_[i]);
  }
  return acc;
}

double DiscreteDistribution::chi2_divergence(
    const DiscreteDistribution& other) const {
  require(domain_size() == other.domain_size(),
          "chi2_divergence: domain size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double d = pmf_[i] - other.pmf_[i];
    if (d == 0.0) continue;
    if (other.pmf_[i] == 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    acc += d * d / other.pmf_[i];
  }
  return acc;
}

double DiscreteDistribution::entropy() const {
  double acc = 0.0;
  for (double p : pmf_) {
    if (p > 0.0) acc -= p * std::log2(p);
  }
  return acc;
}

double DiscreteDistribution::l1_from_uniform() const {
  const double u = 1.0 / static_cast<double>(pmf_.size());
  double acc = 0.0;
  for (double p : pmf_) acc += std::fabs(p - u);
  return acc;
}

DiscreteDistribution DiscreteDistribution::power(unsigned q,
                                                 std::size_t max_cells) const {
  require(q >= 1, "power: q must be at least 1");
  const std::size_t n = pmf_.size();
  std::size_t cells = 1;
  for (unsigned i = 0; i < q; ++i) {
    if (cells > max_cells / n) {
      throw CapacityError("power: n^q exceeds max_cells (" +
                          std::to_string(max_cells) + ")");
    }
    cells *= n;
  }
  std::vector<double> out(cells, 1.0);
  // out[idx] = prod over positions j of pmf_[digit_j(idx)], digits base n.
  for (std::size_t idx = 0; idx < cells; ++idx) {
    std::size_t rest = idx;
    double p = 1.0;
    for (unsigned j = 0; j < q; ++j) {
      p *= pmf_[rest % n];
      rest /= n;
    }
    out[idx] = p;
  }
  return DiscreteDistribution(std::move(out), 1e-6);
}

DiscreteDistribution DiscreteDistribution::mix(
    const DiscreteDistribution& other, double w) const {
  require(domain_size() == other.domain_size(), "mix: domain size mismatch");
  require(w >= 0.0 && w <= 1.0, "mix: weight must be in [0,1]");
  std::vector<double> out(pmf_.size());
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    out[i] = (1.0 - w) * pmf_[i] + w * other.pmf_[i];
  }
  return DiscreteDistribution(std::move(out));
}

}  // namespace duti
