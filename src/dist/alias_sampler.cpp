#include "dist/alias_sampler.hpp"

#include <numeric>

#include "util/error.hpp"

namespace duti {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  require(!weights.empty(), "AliasSampler: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "AliasSampler: negative weight");
    total += w;
  }
  require(total > 0.0, "AliasSampler: all weights are zero");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: mean 1. Partition into "small" (< 1) and "large".
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::uint64_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  // Vose pairing: each small bucket is topped up by one large bucket.
  while (!small.empty() && !large.empty()) {
    const std::uint64_t s = small.back();
    small.pop_back();
    const std::uint64_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining buckets are exactly 1 up to float round-off.
  for (std::uint64_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (std::uint64_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

}  // namespace duti
