// The paper's sample universe (Section 3): two copies of the Boolean cube
// {-1,1}^ell, so n = 2^{ell+1}. An element is a pair (x, s) with
// x in {-1,1}^ell and s in {-1,+1}; (x,+1) on the "left" cube is matched to
// (x,-1) on the "right".
//
// Encoding: an element is an integer in [0, n). The low `ell` bits encode x
// (bit convention of util/bits.hpp: bit=1 means coordinate -1), and bit
// `ell` encodes s (0 means s=+1, 1 means s=-1).
#pragma once

#include <cstdint>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace duti {

class CubeDomain {
 public:
  /// Domain with universe size n = 2^{ell+1}. ell in [1, 30].
  explicit CubeDomain(unsigned ell) : ell_(ell) {
    require(ell >= 1 && ell <= 30, "CubeDomain: ell must be in [1, 30]");
  }

  [[nodiscard]] unsigned ell() const noexcept { return ell_; }

  /// Number of cube vertices per side, 2^ell.
  [[nodiscard]] std::uint64_t side_size() const noexcept {
    return 1ULL << ell_;
  }

  /// Universe size n = 2^{ell+1}.
  [[nodiscard]] std::uint64_t universe_size() const noexcept {
    return 1ULL << (ell_ + 1);
  }

  /// Extract the cube point x (as an integer in [0, 2^ell)).
  [[nodiscard]] std::uint64_t x_of(std::uint64_t element) const noexcept {
    return element & (side_size() - 1);
  }

  /// Extract the side s: +1 (left cube) or -1 (right cube).
  [[nodiscard]] int s_of(std::uint64_t element) const noexcept {
    return ((element >> ell_) & 1ULL) ? -1 : +1;
  }

  /// Compose an element from (x, s).
  [[nodiscard]] std::uint64_t encode(std::uint64_t x, int s) const {
    require(x < side_size(), "CubeDomain::encode: x out of range");
    require(s == 1 || s == -1, "CubeDomain::encode: s must be +-1");
    return x | (static_cast<std::uint64_t>(s == -1) << ell_);
  }

  /// The matched partner of an element: (x, s) -> (x, -s).
  [[nodiscard]] std::uint64_t partner(std::uint64_t element) const noexcept {
    return element ^ (1ULL << ell_);
  }

 private:
  unsigned ell_;
};

}  // namespace duti
