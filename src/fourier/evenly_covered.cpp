#include "fourier/evenly_covered.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {

bool is_evenly_covered(std::span<const std::uint64_t> x,
                       std::uint64_t s_mask) {
  // XOR-style parity tracking with a small scratch vector: collect values at
  // the masked positions, sort, and check run lengths are even. Masks are
  // tiny in the moment sweeps (|S| = 2r), where std::sort's dispatch
  // overhead dominates — insertion sort wins below ~16 elements (measured
  // in bench/micro_kernels) and produces the same ordering.
  std::uint64_t scratch[64];
  std::size_t count = 0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if ((s_mask >> j) & 1ULL) {
      require(count < 64, "is_evenly_covered: at most 64 positions");
      scratch[count++] = x[j];
    }
  }
  if (count <= 16) {
    for (std::size_t i = 1; i < count; ++i) {
      const std::uint64_t v = scratch[i];
      std::size_t j = i;
      while (j > 0 && scratch[j - 1] > v) {
        scratch[j] = scratch[j - 1];
        --j;
      }
      scratch[j] = v;
    }
  } else {
    std::sort(scratch, scratch + count);
  }
  for (std::size_t i = 0; i < count;) {
    std::size_t run = 1;
    while (i + run < count && scratch[i + run] == scratch[i]) ++run;
    if (run % 2 != 0) return false;
    i += run;
  }
  return true;
}

namespace {
// log(exp(a) + exp(b)) without overflow; identities with -inf hold.
double log_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  return hi + std::log1p(std::exp(std::min(a, b) - hi));
}
}  // namespace

double count_even_sequences(std::uint64_t alphabet, unsigned m) {
  require(alphabet >= 1, "count_even_sequences: alphabet must be non-empty");
  if (m % 2 != 0) return 0.0;
  // DP over sequence positions; state = number of letters seen an odd
  // number of times so far. From state j, appending one of the j "odd"
  // letters moves to j-1; appending one of the (alphabet - j) "even"
  // letters moves to j+1. Sequences are counted exactly because each
  // transition chooses a concrete letter. Counts are accumulated in 128-bit
  // integers, so the only rounding is the final conversion to double; if
  // any intermediate would overflow 128 bits, the whole DP restarts in
  // log-space (count_even_sequences_log).
  std::vector<__uint128_t> ways(m + 1, 0);
  std::vector<__uint128_t> next(m + 1, 0);
  ways[0] = 1;
  for (unsigned pos = 0; pos < m; ++pos) {
    std::fill(next.begin(), next.end(), __uint128_t{0});
    for (unsigned j = 0; j <= std::min(pos, m); ++j) {
      if (ways[j] == 0) continue;
      __uint128_t term = 0;
      if (j >= 1) {
        if (__builtin_mul_overflow(ways[j], static_cast<__uint128_t>(j),
                                   &term) ||
            __builtin_add_overflow(next[j - 1], term, &next[j - 1])) {
          return std::exp(count_even_sequences_log(alphabet, m));
        }
      }
      if (j + 1 <= m && j < alphabet) {
        if (__builtin_mul_overflow(ways[j],
                                   static_cast<__uint128_t>(alphabet - j),
                                   &term) ||
            __builtin_add_overflow(next[j + 1], term, &next[j + 1])) {
          return std::exp(count_even_sequences_log(alphabet, m));
        }
      }
    }
    ways.swap(next);
  }
  return static_cast<double>(ways[0]);
}

double count_even_sequences_log(std::uint64_t alphabet, unsigned m) {
  require(alphabet >= 1,
          "count_even_sequences_log: alphabet must be non-empty");
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  if (m % 2 != 0) return kNegInf;
  // Same DP in log-space: exact counting gives way to one log-sum-exp
  // rounding per transition, but any alphabet/length fits in a double's
  // exponent range.
  std::vector<double> ways(m + 1, kNegInf);
  std::vector<double> next(m + 1, kNegInf);
  ways[0] = 0.0;
  for (unsigned pos = 0; pos < m; ++pos) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (unsigned j = 0; j <= std::min(pos, m); ++j) {
      if (ways[j] == kNegInf) continue;
      if (j >= 1) {
        next[j - 1] =
            log_add_exp(next[j - 1], ways[j] + std::log(static_cast<double>(j)));
      }
      if (j + 1 <= m && j < alphabet) {
        next[j + 1] = log_add_exp(
            next[j + 1],
            ways[j] + std::log(static_cast<double>(alphabet - j)));
      }
    }
    ways.swap(next);
  }
  return ways[0];
}

double count_x_s(unsigned ell, unsigned q, unsigned s_size) {
  require(s_size <= q, "count_x_s: |S| cannot exceed q");
  const double side = std::ldexp(1.0, static_cast<int>(ell));  // 2^ell
  const double even = count_even_sequences(1ULL << ell, s_size);
  return even * std::pow(side, static_cast<double>(q - s_size));
}

double count_x_s_brute(unsigned ell, unsigned q, std::uint64_t s_mask) {
  require(q >= 1 && q <= 63, "count_x_s_brute: q in [1,63]");
  require(s_mask < (1ULL << q), "count_x_s_brute: mask out of range");
  const std::uint64_t side = 1ULL << ell;
  double total_tuples = std::pow(static_cast<double>(side),
                                 static_cast<double>(q));
  if (total_tuples > static_cast<double>(1ULL << 26)) {
    throw CapacityError("count_x_s_brute: enumeration too large");
  }
  const auto total = static_cast<std::uint64_t>(total_tuples);
  std::vector<std::uint64_t> x(q);
  double count = 0.0;
  for (std::uint64_t idx = 0; idx < total; ++idx) {
    std::uint64_t rest = idx;
    for (unsigned j = 0; j < q; ++j) {
      x[j] = rest % side;
      rest /= side;
    }
    if (is_evenly_covered(x, s_mask)) count += 1.0;
  }
  return count;
}

double prop52_bound(unsigned ell, unsigned q, unsigned s_size) {
  require(s_size <= q, "prop52_bound: |S| cannot exceed q");
  if (s_size % 2 != 0) return 0.0;
  const double side = std::ldexp(1.0, static_cast<int>(ell));  // n/2
  const double df = std::exp(log_double_factorial(static_cast<int>(s_size) - 1));
  return df * std::pow(side, static_cast<double>(q) -
                                 static_cast<double>(s_size) / 2.0);
}

std::uint64_t lowest_mask(unsigned bits) {
  return bits == 0 ? 0 : (bits >= 64 ? ~0ULL : (1ULL << bits) - 1);
}

std::uint64_t next_same_popcount(std::uint64_t mask) {
  if (mask == 0) return 0;
  const std::uint64_t c = mask & (~mask + 1);  // lowest set bit
  const std::uint64_t r = mask + c;
  if (r == 0) return 0;  // overflowed past the top
  return (((r ^ mask) >> 2) / c) | r;
}

std::uint64_t a_r(std::span<const std::uint64_t> x, unsigned r) {
  const auto q = static_cast<unsigned>(x.size());
  require(q <= 63, "a_r: at most 63 samples");
  if (2 * r > q) return 0;
  if (r == 0) return 1;  // only S = empty set
  std::uint64_t count = 0;
  const std::uint64_t limit = 1ULL << q;
  for (std::uint64_t s = lowest_mask(2 * r); s != 0 && s < limit;
       s = next_same_popcount(s)) {
    if (is_evenly_covered(x, s)) ++count;
  }
  return count;
}

double a_r_moment_exact(unsigned ell, unsigned q, unsigned r, unsigned m) {
  require(m >= 1, "a_r_moment_exact: m must be >= 1");
  const std::uint64_t side = 1ULL << ell;
  const double total_tuples = std::pow(static_cast<double>(side),
                                       static_cast<double>(q));
  if (total_tuples > static_cast<double>(1ULL << 26)) {
    throw CapacityError("a_r_moment_exact: enumeration too large");
  }
  const auto total = static_cast<std::uint64_t>(total_tuples);
  std::vector<std::uint64_t> x(q);
  double acc = 0.0;
  for (std::uint64_t idx = 0; idx < total; ++idx) {
    std::uint64_t rest = idx;
    for (unsigned j = 0; j < q; ++j) {
      x[j] = rest % side;
      rest /= side;
    }
    acc += dpow_int(static_cast<double>(a_r(x, r)), m);
  }
  return acc / total_tuples;
}

double a_r_moment_mc(unsigned ell, unsigned q, unsigned r, unsigned m,
                     std::size_t trials, Rng& rng) {
  require(trials >= 1, "a_r_moment_mc: need at least one trial");
  const std::uint64_t side = 1ULL << ell;
  std::vector<std::uint64_t> x(q);
  double acc = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& xi : x) xi = rng.next_below(side);
    acc += dpow_int(static_cast<double>(a_r(x, r)), m);
  }
  return acc / static_cast<double>(trials);
}

double lemma55_log_bound(unsigned ell, unsigned q, unsigned r, unsigned m) {
  require(m >= 1 && r >= 1, "lemma55_log_bound: m, r must be >= 1");
  const double half_n = std::ldexp(1.0, static_cast<int>(ell));  // n/2
  const double ratio = static_cast<double>(q) / std::sqrt(half_n);
  const double log_4m = std::log(4.0 * static_cast<double>(m));
  const double mr2 = 2.0 * static_cast<double>(m) * static_cast<double>(r);
  if (ratio >= 1.0) {
    return mr2 * log_4m + mr2 * std::log(ratio);
  }
  return mr2 * log_4m + 2.0 * static_cast<double>(r) * std::log(ratio);
}

}  // namespace duti
