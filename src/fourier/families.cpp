#include "fourier/families.hpp"

#include <bit>

#include "util/error.hpp"

namespace duti::fn {

BooleanCubeFunction constant(unsigned m, double c) {
  return BooleanCubeFunction::tabulate(m, [c](std::uint64_t) { return c; });
}

BooleanCubeFunction dictator(unsigned m, unsigned i) {
  require(i < m, "dictator: variable index out of range");
  return BooleanCubeFunction::tabulate(m, [i](std::uint64_t x) {
    return static_cast<double>((x >> i) & 1ULL);
  });
}

BooleanCubeFunction parity(unsigned m, std::uint64_t s_mask) {
  require(s_mask < (1ULL << m), "parity: mask out of range");
  return BooleanCubeFunction::tabulate(m, [s_mask](std::uint64_t x) {
    return static_cast<double>(duti::parity(x & s_mask));
  });
}

BooleanCubeFunction character(unsigned m, std::uint64_t s_mask) {
  require(s_mask < (1ULL << m), "character: mask out of range");
  return BooleanCubeFunction::tabulate(m, [s_mask](std::uint64_t x) {
    return static_cast<double>(chi(s_mask, x));
  });
}

BooleanCubeFunction and_of(unsigned m, std::uint64_t s_mask) {
  require(s_mask < (1ULL << m), "and_of: mask out of range");
  return BooleanCubeFunction::tabulate(m, [s_mask](std::uint64_t x) {
    return (x & s_mask) == s_mask ? 1.0 : 0.0;
  });
}

BooleanCubeFunction or_of(unsigned m, std::uint64_t s_mask) {
  require(s_mask < (1ULL << m), "or_of: mask out of range");
  return BooleanCubeFunction::tabulate(m, [s_mask](std::uint64_t x) {
    return (x & s_mask) != 0 ? 1.0 : 0.0;
  });
}

BooleanCubeFunction majority(unsigned m) {
  require(m % 2 == 1, "majority: m must be odd");
  return BooleanCubeFunction::tabulate(m, [m](std::uint64_t x) {
    return static_cast<unsigned>(std::popcount(x)) > m / 2 ? 1.0 : 0.0;
  });
}

BooleanCubeFunction threshold_at_least(unsigned m, unsigned t) {
  return BooleanCubeFunction::tabulate(m, [t](std::uint64_t x) {
    return static_cast<unsigned>(std::popcount(x)) >= t ? 1.0 : 0.0;
  });
}

BooleanCubeFunction tribes(unsigned m, unsigned tribe_size) {
  require(tribe_size >= 1 && m % tribe_size == 0,
          "tribes: m must be a multiple of tribe_size");
  const std::uint64_t tribe_mask = (1ULL << tribe_size) - 1;
  return BooleanCubeFunction::tabulate(
      m, [m, tribe_size, tribe_mask](std::uint64_t x) {
        for (unsigned base = 0; base < m; base += tribe_size) {
          if (((x >> base) & tribe_mask) == tribe_mask) return 1.0;
        }
        return 0.0;
      });
}

BooleanCubeFunction random_boolean(unsigned m, double p, Rng& rng) {
  require(p >= 0.0 && p <= 1.0, "random_boolean: p in [0,1]");
  return BooleanCubeFunction::tabulate(m, [&](std::uint64_t) {
    return rng.next_bernoulli(p) ? 1.0 : 0.0;
  });
}

BooleanCubeFunction random_real(unsigned m, double lo, double hi, Rng& rng) {
  require(lo <= hi, "random_real: lo must be <= hi");
  return BooleanCubeFunction::tabulate(m, [&](std::uint64_t) {
    return lo + (hi - lo) * rng.next_double();
  });
}

}  // namespace duti::fn
