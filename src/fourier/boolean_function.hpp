// Dense representation of a real-valued function on the Boolean cube
// {-1,1}^m, with the Fourier-analytic quantities used by the paper:
// coefficients, mean, variance (Fact 2.2), level weights, Parseval sums,
// and restrictions. Boolean {0,1}-valued functions are the common case
// (players' message functions G), but the class is real-valued so that
// distributions (pmfs over the cube) can use the same machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace duti {

class BooleanCubeFunction {
 public:
  /// From explicit values; size must be 2^m for some m in [0, 26].
  explicit BooleanCubeFunction(std::vector<double> values);

  /// Tabulate `fn` over {-1,1}^m (argument is the encoded point).
  static BooleanCubeFunction tabulate(
      unsigned m, const std::function<double(std::uint64_t)>& fn);

  [[nodiscard]] unsigned num_vars() const noexcept { return m_; }
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return values_.size();
  }
  [[nodiscard]] double value(std::uint64_t x) const {
    return values_.at(x);
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// True iff every value is 0 or 1 (within tol).
  [[nodiscard]] bool is_boolean01(double tol = 1e-12) const noexcept;

  /// E_x[f(x)] under the uniform distribution — the paper's mu(f).
  [[nodiscard]] double mean() const;

  /// var(f) = E[f^2] - E[f]^2 (Fact 2.2 equates this to the non-empty
  /// Fourier weight; tests verify the identity).
  [[nodiscard]] double variance() const;

  /// All 2^m Fourier coefficients, indexed by the character mask S.
  /// Computed once and cached.
  [[nodiscard]] const std::vector<double>& fourier() const;

  /// A single coefficient f_hat(S).
  [[nodiscard]] double fourier_coefficient(std::uint64_t s_mask) const;

  /// Sum of f_hat(S)^2 over |S| = level.
  [[nodiscard]] double level_weight(unsigned level) const;

  /// Sum of f_hat(S)^2 over 1 <= |S| <= level (the "low-level weight" the
  /// KKL lemma bounds).
  [[nodiscard]] double low_level_weight(unsigned level) const;

  /// Sum of all f_hat(S)^2 — equals E[f^2] by Parseval.
  [[nodiscard]] double parseval_sum() const;

  /// Restriction: fix the variables in `fixed_mask` to the bits of
  /// `fixed_values`; the result is a function on the remaining variables
  /// (re-indexed densely in increasing original-variable order).
  [[nodiscard]] BooleanCubeFunction restrict_vars(
      std::uint64_t fixed_mask, std::uint64_t fixed_values) const;

  /// Pointwise 1 - f (used for the "complement the biased bit" step in the
  /// proof of Lemma 4.3).
  [[nodiscard]] BooleanCubeFunction complement() const;

 private:
  unsigned m_;
  std::vector<double> values_;
  mutable std::vector<double> fourier_cache_;
};

}  // namespace duti
