#include "fourier/wht.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/kernels.hpp"

namespace duti {

void wht_inplace(std::span<double> data) {
  const std::size_t n = data.size();
  require(n > 0 && is_pow2(n), "wht_inplace: size must be a power of two");
  // Dispatched kernel: cache-blocked radix-4 butterflies, bit-identical to
  // the scalar stage-by-stage loop at every SimdLevel (tests/test_kernels).
  kernels::wht(data);
}

void wht_normalized(std::span<double> data) {
  wht_inplace(data);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (double& v : data) v *= inv;
}

}  // namespace duti
