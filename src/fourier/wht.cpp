#include "fourier/wht.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace duti {

void wht_inplace(std::span<double> data) {
  const std::size_t n = data.size();
  require(n > 0 && is_pow2(n), "wht_inplace: size must be a power of two");
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t base = 0; base < n; base += len << 1) {
      for (std::size_t i = base; i < base + len; ++i) {
        const double a = data[i];
        const double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
}

void wht_normalized(std::span<double> data) {
  wht_inplace(data);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (double& v : data) v *= inv;
}

}  // namespace duti
