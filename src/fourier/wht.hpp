// In-place fast Walsh-Hadamard transform.
//
// With the encoding of util/bits.hpp (bit=1 means coordinate -1), the
// unnormalized transform computes  F[S] = sum_x f[x] * chi_S(x)  for every
// character mask S, in O(N log N) where N = 2^m. Fourier coefficients in
// the expectation inner product of the paper are F[S] / N.
#pragma once

#include <span>

namespace duti {

/// Unnormalized WHT in place; `data.size()` must be a power of two.
void wht_inplace(std::span<double> data);

/// Apply the transform and divide by N, yielding Fourier coefficients
/// f_hat(S) = E_x[f(x) chi_S(x)].
void wht_normalized(std::span<double> data);

}  // namespace duti
