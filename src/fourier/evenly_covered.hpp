// The "evenly covered" combinatorics at the heart of the lower bound
// (Section 5): for a sample tuple x = (x_1,...,x_q) of cube points and an
// index set S, the multiset {x_j : j in S} is *evenly covered* when every
// value appears an even number of times. Only evenly-covered (x, S) pairs
// contribute to E_z[nu_z(G)] - mu(G) (the "odd cancelation").
//
// This header provides:
//   * the predicate itself,
//   * |X_S| = #{x : x_S evenly covered}, exactly (DP) and brute-force,
//   * the Proposition 5.2 upper bound (|S|-1)!! (n/2)^{q-|S|/2},
//   * a_r(x) = #{S : |S| = 2r, x_S evenly covered} and its moments,
//   * the Lemma 5.5 moment upper bounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace duti {

/// True iff every value among {x[j] : bit j of s_mask set} appears an even
/// number of times. s_mask = 0 is vacuously evenly covered.
[[nodiscard]] bool is_evenly_covered(std::span<const std::uint64_t> x,
                                     std::uint64_t s_mask);

/// Number of sequences of length m over an alphabet of size `alphabet` in
/// which every letter appears an even number of times. The DP accumulates
/// in 128-bit integers, so the returned double is the correctly-rounded
/// exact count whenever it fits 128 bits; past that the computation falls
/// back to log-space (one rounding per transition) and may return inf only
/// when the count exceeds double range.
[[nodiscard]] double count_even_sequences(std::uint64_t alphabet, unsigned m);

/// Natural log of the same count, computed in log-space throughout
/// (-inf for odd m, where the count is zero). Usable at alphabet/length
/// combinations whose counts overflow any fixed-width integer.
[[nodiscard]] double count_even_sequences_log(std::uint64_t alphabet,
                                              unsigned m);

/// |X_S| for |S| = s_size on domain side 2^ell with q samples:
/// count_even_sequences(2^ell, s_size) * (2^ell)^(q - s_size).
/// Depends only on |S| (Prop 5.2(1)).
[[nodiscard]] double count_x_s(unsigned ell, unsigned q, unsigned s_size);

/// Brute-force |X_S| by enumerating all (2^ell)^q tuples; for tests.
/// Throws CapacityError when the enumeration exceeds 2^26 tuples.
[[nodiscard]] double count_x_s_brute(unsigned ell, unsigned q,
                                     std::uint64_t s_mask);

/// Proposition 5.2(2) upper bound: (s-1)!! * (n/2)^{q - s/2}, where s=|S|
/// (0 when s is odd, since no x is evenly covered then). n = 2^{ell+1}.
[[nodiscard]] double prop52_bound(unsigned ell, unsigned q, unsigned s_size);

/// a_r(x): number of S with |S| = 2r such that x_S is evenly covered.
[[nodiscard]] std::uint64_t a_r(std::span<const std::uint64_t> x, unsigned r);

/// Exact m-th moment E_x[a_r(x)^m] over uniform tuples x in (2^ell)^q,
/// by full enumeration. Throws CapacityError beyond 2^26 tuples.
[[nodiscard]] double a_r_moment_exact(unsigned ell, unsigned q, unsigned r,
                                      unsigned m);

/// Monte-Carlo estimate of E_x[a_r(x)^m] from `trials` uniform tuples.
[[nodiscard]] double a_r_moment_mc(unsigned ell, unsigned q, unsigned r,
                                   unsigned m, std::size_t trials, Rng& rng);

/// Lemma 5.5 upper bound on E_x[a_r(x)^m] (log-space to avoid overflow):
/// returns log of (4m)^{2mr} (q/sqrt(n/2))^{2mr}   when q >= sqrt(n/2),
///         log of (4m)^{2mr} (q/sqrt(n/2))^{2r}    when q <  sqrt(n/2).
[[nodiscard]] double lemma55_log_bound(unsigned ell, unsigned q, unsigned r,
                                       unsigned m);

/// Iterate all q-bit masks with exactly `bits` bits set (Gosper's hack).
/// Returns the next mask after `mask`, or 0 when exhausted (mask with all
/// high bits). Initialize with lowest_mask(bits).
[[nodiscard]] std::uint64_t lowest_mask(unsigned bits);
[[nodiscard]] std::uint64_t next_same_popcount(std::uint64_t mask);

}  // namespace duti
