#include "fourier/boolean_function.hpp"

#include <cmath>

#include "fourier/wht.hpp"
#include "util/error.hpp"

namespace duti {

BooleanCubeFunction::BooleanCubeFunction(std::vector<double> values)
    : values_(std::move(values)) {
  require(!values_.empty() && is_pow2(values_.size()),
          "BooleanCubeFunction: size must be a power of two");
  m_ = values_.size() == 1 ? 0 : floor_log2(values_.size());
  require(m_ <= 26, "BooleanCubeFunction: at most 26 variables");
}

BooleanCubeFunction BooleanCubeFunction::tabulate(
    unsigned m, const std::function<double(std::uint64_t)>& fn) {
  require(m <= 26, "tabulate: at most 26 variables");
  std::vector<double> values(1ULL << m);
  for (std::uint64_t x = 0; x < values.size(); ++x) values[x] = fn(x);
  return BooleanCubeFunction(std::move(values));
}

bool BooleanCubeFunction::is_boolean01(double tol) const noexcept {
  for (double v : values_) {
    if (std::fabs(v) > tol && std::fabs(v - 1.0) > tol) return false;
  }
  return true;
}

double BooleanCubeFunction::mean() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc / static_cast<double>(values_.size());
}

double BooleanCubeFunction::variance() const {
  double s1 = 0.0, s2 = 0.0;
  for (double v : values_) {
    s1 += v;
    s2 += v * v;
  }
  const auto n = static_cast<double>(values_.size());
  const double m = s1 / n;
  return s2 / n - m * m;
}

const std::vector<double>& BooleanCubeFunction::fourier() const {
  if (fourier_cache_.empty()) {
    fourier_cache_ = values_;
    wht_normalized(fourier_cache_);
  }
  return fourier_cache_;
}

double BooleanCubeFunction::fourier_coefficient(std::uint64_t s_mask) const {
  require(s_mask < values_.size(), "fourier_coefficient: mask out of range");
  return fourier()[s_mask];
}

double BooleanCubeFunction::level_weight(unsigned level) const {
  const auto& coeffs = fourier();
  double acc = 0.0;
  for (std::uint64_t s = 0; s < coeffs.size(); ++s) {
    if (static_cast<unsigned>(std::popcount(s)) == level) {
      acc += coeffs[s] * coeffs[s];
    }
  }
  return acc;
}

double BooleanCubeFunction::low_level_weight(unsigned level) const {
  const auto& coeffs = fourier();
  double acc = 0.0;
  for (std::uint64_t s = 1; s < coeffs.size(); ++s) {
    if (static_cast<unsigned>(std::popcount(s)) <= level) {
      acc += coeffs[s] * coeffs[s];
    }
  }
  return acc;
}

double BooleanCubeFunction::parseval_sum() const {
  const auto& coeffs = fourier();
  double acc = 0.0;
  for (double c : coeffs) acc += c * c;
  return acc;
}

BooleanCubeFunction BooleanCubeFunction::restrict_vars(
    std::uint64_t fixed_mask, std::uint64_t fixed_values) const {
  require(fixed_mask < (1ULL << m_), "restrict_vars: mask out of range");
  require((fixed_values & ~fixed_mask) == 0,
          "restrict_vars: values outside mask");
  const unsigned free_count =
      m_ - static_cast<unsigned>(std::popcount(fixed_mask));
  std::vector<double> out(1ULL << free_count);
  // Map each dense free-assignment index to the original point by scattering
  // its bits into the free positions (in increasing variable order).
  for (std::uint64_t packed = 0; packed < out.size(); ++packed) {
    std::uint64_t x = fixed_values;
    std::uint64_t remaining = packed;
    for (unsigned v = 0; v < m_; ++v) {
      if ((fixed_mask >> v) & 1ULL) continue;
      x |= (remaining & 1ULL) << v;
      remaining >>= 1ULL;
    }
    out[packed] = values_[x];
  }
  return BooleanCubeFunction(std::move(out));
}

BooleanCubeFunction BooleanCubeFunction::complement() const {
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) out[i] = 1.0 - values_[i];
  return BooleanCubeFunction(std::move(out));
}

}  // namespace duti
