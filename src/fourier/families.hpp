// Standard Boolean function families, used as test subjects for the Fourier
// machinery and as concrete player message functions G in the lemma benches
// (a highly-biased AND-like G exercises Lemma 4.3; majority/threshold
// exercise Lemma 4.2's variance dependence).
#pragma once

#include <cstdint>

#include "fourier/boolean_function.hpp"
#include "util/rng.hpp"

namespace duti::fn {

/// Constant function c on m variables.
[[nodiscard]] BooleanCubeFunction constant(unsigned m, double c);

/// Dictator: the i-th coordinate as a {0,1} value (1 when coordinate is -1,
/// matching the bit encoding).
[[nodiscard]] BooleanCubeFunction dictator(unsigned m, unsigned i);

/// Parity of the coordinates in `s_mask`, as a {0,1} value (1 when an odd
/// number of the masked coordinates are -1).
[[nodiscard]] BooleanCubeFunction parity(unsigned m, std::uint64_t s_mask);

/// The character chi_S itself, +-1 valued.
[[nodiscard]] BooleanCubeFunction character(unsigned m, std::uint64_t s_mask);

/// AND of all variables in `s_mask` (1 iff all masked coordinates are -1):
/// mean 2^{-|mask|}, the canonical highly-biased function.
[[nodiscard]] BooleanCubeFunction and_of(unsigned m, std::uint64_t s_mask);

/// OR over the masked coordinates (1 iff at least one is -1).
[[nodiscard]] BooleanCubeFunction or_of(unsigned m, std::uint64_t s_mask);

/// Majority over all m coordinates (m odd); 1 when more than half are -1.
[[nodiscard]] BooleanCubeFunction majority(unsigned m);

/// Threshold: 1 iff at least t of the m coordinates are -1.
[[nodiscard]] BooleanCubeFunction threshold_at_least(unsigned m, unsigned t);

/// Tribes with `tribe_size`-wide tribes (m divisible by tribe_size):
/// OR of ANDs, the canonical "sharp threshold" function.
[[nodiscard]] BooleanCubeFunction tribes(unsigned m, unsigned tribe_size);

/// Each point independently 1 with probability p.
[[nodiscard]] BooleanCubeFunction random_boolean(unsigned m, double p,
                                                 Rng& rng);

/// Random real-valued function with values uniform in [lo, hi].
[[nodiscard]] BooleanCubeFunction random_real(unsigned m, double lo,
                                              double hi, Rng& rng);

}  // namespace duti::fn
