// The level inequality of Kahn-Kalai-Linial (the paper's Lemma 5.4):
// for f : {-1,1}^n -> {0,1} with mean mu, any level r >= 1 and delta > 0,
//
//     sum_{|S| <= r} f_hat(S)^2  <=  delta^{-r} * mu^{2/(1+delta)}.
//
// (Proof via hypercontractivity: ||T_rho f||_2^2 <= ||f||_{1+rho^2}^2 with
// rho = sqrt(delta).) This is the engine behind the AND-rule lower bound:
// highly biased message bits have tiny low-level Fourier weight, hence
// carry even less information about the samples.
#pragma once

#include "fourier/boolean_function.hpp"

namespace duti {

/// The right-hand side delta^{-r} mu^{2/(1+delta)}.
[[nodiscard]] double kkl_level_bound(double mu, unsigned r, double delta);

/// The delta minimizing the bound for given (mu, r), found by golden-section
/// search over (0, 1]; returns the minimized bound value.
[[nodiscard]] double kkl_level_bound_optimized(double mu, unsigned r);

/// Left-hand side: total Fourier weight of f on levels 0..r.
/// (Includes the empty set, as in the lemma statement.)
[[nodiscard]] double level_weight_up_to(const BooleanCubeFunction& f,
                                        unsigned r);

/// Check the inequality for a concrete function; returns lhs - rhs
/// (non-positive when the inequality holds).
[[nodiscard]] double kkl_violation(const BooleanCubeFunction& f, unsigned r,
                                   double delta);

}  // namespace duti
