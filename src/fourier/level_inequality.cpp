#include "fourier/level_inequality.hpp"

#include <cmath>

#include "util/error.hpp"

namespace duti {

double kkl_level_bound(double mu, unsigned r, double delta) {
  require(mu >= 0.0 && mu <= 1.0, "kkl_level_bound: mu in [0,1]");
  require(delta > 0.0 && delta <= 1.0, "kkl_level_bound: delta in (0,1]");
  if (mu == 0.0) return 0.0;
  return std::pow(delta, -static_cast<double>(r)) *
         std::pow(mu, 2.0 / (1.0 + delta));
}

double kkl_level_bound_optimized(double mu, unsigned r) {
  require(mu >= 0.0 && mu <= 1.0, "kkl_level_bound_optimized: mu in [0,1]");
  if (mu == 0.0) return 0.0;
  if (mu == 1.0) return 1.0;
  // Golden-section search for the minimizing delta in (0, 1]. The objective
  // log bound = -r log(delta) + (2/(1+delta)) log(mu) is unimodal in delta.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 1e-9, hi = 1.0;
  auto objective = [&](double d) {
    return -static_cast<double>(r) * std::log(d) +
           2.0 / (1.0 + d) * std::log(mu);
  };
  double a = hi - phi * (hi - lo);
  double b = lo + phi * (hi - lo);
  double fa = objective(a), fb = objective(b);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12; ++iter) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - phi * (hi - lo);
      fa = objective(a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + phi * (hi - lo);
      fb = objective(b);
    }
  }
  return std::exp(objective(0.5 * (lo + hi)));
}

double level_weight_up_to(const BooleanCubeFunction& f, unsigned r) {
  double acc = 0.0;
  for (unsigned level = 0; level <= r && level <= f.num_vars(); ++level) {
    acc += f.level_weight(level);
  }
  return acc;
}

double kkl_violation(const BooleanCubeFunction& f, unsigned r, double delta) {
  require(f.is_boolean01(), "kkl_violation: f must be {0,1}-valued");
  return level_weight_up_to(f, r) - kkl_level_bound(f.mean(), r, delta);
}

}  // namespace duti
