// Fault-aware referee rules (extension beyond the paper).
//
// The paper's referee always receives exactly k bits. Under crash faults
// some bits never arrive, and under Byzantine faults some arriving bits
// are adversarial. Two robust aggregation rules recover the threshold
// tester's guarantees:
//
//  * QuorumThresholdRule — calibrates the rejection threshold to the
//    number of bits that actually ARRIVED (m survivors) instead of k, and
//    aborts (quorum-not-met) when too few players report to decide at all.
//    The naive rule, which cannot distinguish "no message" from an alarm,
//    conflates timeouts with rejections and false-alarms itself to death.
//
//  * MedianOfGroupsRule / TrimmedMeanRule — robust aggregation of the
//    sum-rule tester's bits: a delta-fraction of Byzantine bits can move
//    the plain sum across any fixed threshold, but can corrupt fewer than
//    half of 2*floor(delta*k)+3 groups (median-of-means), or is sliced off
//    entirely by trimming floor(delta*k) bits from each end.
//
// RobustThresholdTester wires either rule behind the standard collision
// voters with an injected fault plan, so the harness can measure minimal q
// under faults for naive vs robust referees.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"  // ByzantineMode
#include "sim/sample_source.hpp"
#include "testers/distributed.hpp"
#include "util/rng.hpp"

namespace duti {

/// What one protocol execution produced at the referee. Abort reasons are
/// kept distinct from rejections so the harness can attribute failures.
enum class RefereeOutcome {
  kAccept,
  kReject,
  kAbortQuorum,   // too few bits arrived to decide
  kAbortTimeout,  // the protocol ran out of rounds before deciding
};

[[nodiscard]] constexpr const char* to_string(RefereeOutcome o) noexcept {
  switch (o) {
    case RefereeOutcome::kAccept: return "accept";
    case RefereeOutcome::kReject: return "reject";
    case RefereeOutcome::kAbortQuorum: return "abort-quorum";
    case RefereeOutcome::kAbortTimeout: return "abort-timeout";
  }
  return "?";
}

/// Naive fixed-threshold referee: expects k bits and cannot distinguish a
/// missing bit from an alarm, so silence counts as rejection (the
/// conflation the robust rules remove).
struct NaiveThresholdRule {
  unsigned k = 0;
  std::uint64_t referee_t = 1;  // calibrated for k reporting players

  [[nodiscard]] RefereeOutcome decide(std::uint64_t rejects_received,
                                      std::uint64_t bits_received) const;
};

/// Quorum rule: decide from the m bits that arrived, with the threshold
/// re-calibrated to m: T(m) = ceil(m p_u + z sqrt(m p_u (1-p_u))). Aborts
/// when fewer than `quorum_fraction * k` bits arrived.
struct QuorumThresholdRule {
  unsigned k = 0;
  double p_reject_uniform = 0.0;  // per-player P(reject | uniform)
  double quorum_fraction = 0.5;
  double z = 1.0;  // standard deviations above the surviving mean

  [[nodiscard]] std::uint64_t threshold_for(std::uint64_t survivors) const;
  [[nodiscard]] RefereeOutcome decide(std::uint64_t rejects_received,
                                      std::uint64_t bits_received) const;
};

/// Median-of-groups over the received bits: split into g = 2 floor(dk)+3
/// groups, reject iff the MEDIAN group rejection rate clears the
/// calibrated per-group threshold. Tolerates up to floor(dk) Byzantine
/// bits (they corrupt fewer than half the groups).
struct MedianOfGroupsRule {
  unsigned k = 0;
  double p_reject_uniform = 0.0;
  double delta = 0.1;  // tolerated Byzantine fraction
  double z = 1.0;

  [[nodiscard]] unsigned groups() const;
  [[nodiscard]] RefereeOutcome decide(
      const std::vector<std::uint8_t>& bits) const;
};

/// Trimmed mean over the received bits: drop floor(delta*k) bits from each
/// end (all the potential Byzantine 1s and 0s), then threshold the mean of
/// the remainder at the recalibrated level.
struct TrimmedMeanRule {
  unsigned k = 0;
  double p_reject_uniform = 0.0;
  double delta = 0.1;
  double z = 1.0;

  [[nodiscard]] RefereeOutcome decide(std::uint64_t rejects_received,
                                      std::uint64_t bits_received) const;
};

/// Which players misbehave in a simulated execution. Fault roles are
/// assigned by a fresh random permutation each trial, so the measured
/// rates average over fault placements.
struct FaultPlan {
  double crash_fraction = 0.0;      // players that send nothing
  double byzantine_fraction = 0.0;  // players whose bit is adversarial
  ByzantineMode byzantine_mode = ByzantineMode::kStuckAtOne;
};

/// The distributed threshold tester of [7] run under a fault plan, with a
/// selectable referee rule. Calibration (local collision threshold, p_u)
/// matches DistributedThresholdTester exactly, so naive-vs-robust
/// comparisons isolate the referee rule.
class RobustThresholdTester {
 public:
  enum class Rule { kNaive, kQuorum, kMedianOfGroups, kTrimmed };

  RobustThresholdTester(DistributedTesterConfig cfg, FaultPlan plan,
                        Rule rule, Rng& calib_rng,
                        std::size_t calib_trials = 0 /* auto */);

  /// One full execution with fault injection; aborts are distinct.
  [[nodiscard]] RefereeOutcome outcome(const SampleSource& source,
                                       Rng& rng) const;
  /// Boolean view for the legacy harness: accept == true; aborts are
  /// failures on both sides.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const {
    return outcome(source, rng) == RefereeOutcome::kAccept;
  }

  [[nodiscard]] double p_reject_uniform() const noexcept { return p_u_; }
  [[nodiscard]] double local_threshold() const noexcept { return local_t_; }
  [[nodiscard]] std::uint64_t naive_referee_threshold() const noexcept {
    return naive_t_;
  }
  [[nodiscard]] const DistributedTesterConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] Rule rule() const noexcept { return rule_; }

 private:
  /// Byzantine tolerance the robust aggregators are budgeted for: the
  /// plan's Byzantine fraction (what the experiment injects).
  [[nodiscard]] double effective_delta() const noexcept {
    return plan_.byzantine_fraction;
  }

  DistributedTesterConfig cfg_;
  FaultPlan plan_;
  Rule rule_;
  double local_t_ = 0.0;
  double p_u_ = 0.0;
  std::uint64_t naive_t_ = 1;
};

}  // namespace duti
