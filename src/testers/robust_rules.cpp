#include "testers/robust_rules.hpp"

#include <algorithm>
#include <cmath>

#include "testers/collision.hpp"
#include "util/confidence.hpp"
#include "util/error.hpp"

namespace duti {

RefereeOutcome NaiveThresholdRule::decide(std::uint64_t rejects_received,
                                          std::uint64_t bits_received) const {
  // Silence is indistinguishable from an alarm to the naive referee.
  const std::uint64_t missing =
      bits_received < k ? k - bits_received : 0;
  return rejects_received + missing >= referee_t ? RefereeOutcome::kReject
                                                 : RefereeOutcome::kAccept;
}

std::uint64_t QuorumThresholdRule::threshold_for(
    std::uint64_t survivors) const {
  const double m = static_cast<double>(survivors);
  const double mean = m * p_reject_uniform;
  const double sd = std::sqrt(
      std::max(1e-12, m * p_reject_uniform * (1.0 - p_reject_uniform)));
  return static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(mean + z * sd + 1e-9)));
}

RefereeOutcome QuorumThresholdRule::decide(
    std::uint64_t rejects_received, std::uint64_t bits_received) const {
  const auto quorum = static_cast<std::uint64_t>(
      std::ceil(quorum_fraction * static_cast<double>(k)));
  if (bits_received < std::max<std::uint64_t>(1, quorum)) {
    return RefereeOutcome::kAbortQuorum;
  }
  return rejects_received >= threshold_for(bits_received)
             ? RefereeOutcome::kReject
             : RefereeOutcome::kAccept;
}

unsigned MedianOfGroupsRule::groups() const {
  const auto bad =
      static_cast<unsigned>(std::floor(delta * static_cast<double>(k)));
  unsigned g = 2 * bad + 3;
  if (g > k) g = (k % 2 == 0) ? k - 1 : k;  // keep it odd and <= k
  return std::max(1u, g);
}

RefereeOutcome MedianOfGroupsRule::decide(
    const std::vector<std::uint8_t>& bits) const {
  const unsigned g = groups();
  if (bits.size() < g) return RefereeOutcome::kAbortQuorum;
  // Contiguous chunks of (almost) equal size; the robustness argument
  // only needs that floor(delta*k) bits touch at most that many groups.
  const std::size_t base = bits.size() / g;
  std::size_t extra = bits.size() % g;
  std::vector<double> means;
  means.reserve(g);
  std::size_t pos = 0;
  for (unsigned i = 0; i < g; ++i) {
    const std::size_t len = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    std::uint64_t ones = 0;
    for (std::size_t j = 0; j < len; ++j) ones += bits[pos + j];
    pos += len;
    means.push_back(static_cast<double>(ones) / static_cast<double>(len));
  }
  std::nth_element(means.begin(), means.begin() + g / 2, means.end());
  const double median = means[g / 2];
  const double s = static_cast<double>(base);
  const double bar =
      p_reject_uniform +
      z * std::sqrt(std::max(1e-12, p_reject_uniform *
                                        (1.0 - p_reject_uniform) / s));
  return median > bar ? RefereeOutcome::kReject : RefereeOutcome::kAccept;
}

RefereeOutcome TrimmedMeanRule::decide(std::uint64_t rejects_received,
                                       std::uint64_t bits_received) const {
  const auto trim =
      static_cast<std::uint64_t>(std::floor(delta * static_cast<double>(k)));
  if (bits_received <= 2 * trim) return RefereeOutcome::kAbortQuorum;
  // Bits are 0/1, so trimming the sorted extremes is arithmetic: remove
  // min(trim, ones) top bits and min(trim, zeros) bottom bits.
  const std::uint64_t ones = rejects_received;
  const std::uint64_t zeros = bits_received - rejects_received;
  const std::uint64_t kept_ones = ones - std::min(trim, ones);
  const std::uint64_t kept =
      bits_received - std::min(trim, ones) - std::min(trim, zeros);
  if (kept == 0) return RefereeOutcome::kAbortQuorum;
  const double mean =
      static_cast<double>(kept_ones) / static_cast<double>(kept);
  const double bar =
      p_reject_uniform +
      z * std::sqrt(std::max(1e-12,
                             p_reject_uniform * (1.0 - p_reject_uniform) /
                                 static_cast<double>(kept)));
  return mean > bar ? RefereeOutcome::kReject : RefereeOutcome::kAccept;
}

RobustThresholdTester::RobustThresholdTester(DistributedTesterConfig cfg,
                                             FaultPlan plan, Rule rule,
                                             Rng& calib_rng,
                                             std::size_t calib_trials)
    : cfg_(cfg), plan_(plan), rule_(rule) {
  require(cfg_.n >= 2, "RobustThresholdTester: n must be >= 2");
  require(cfg_.k >= 1, "RobustThresholdTester: k must be >= 1");
  require(cfg_.q >= 2, "RobustThresholdTester: q must be >= 2");
  require(cfg_.eps > 0.0 && cfg_.eps <= 1.0,
          "RobustThresholdTester: eps in (0,1]");
  require(plan_.crash_fraction >= 0.0 && plan_.crash_fraction <= 1.0 &&
              plan_.byzantine_fraction >= 0.0 &&
              plan_.byzantine_fraction <= 1.0 &&
              plan_.crash_fraction + plan_.byzantine_fraction <= 1.0,
          "RobustThresholdTester: fault fractions in [0,1], sum <= 1");

  // Identical calibration to DistributedThresholdTester, so rule
  // comparisons isolate the referee side.
  local_t_ = expected_collision_pairs_uniform(static_cast<double>(cfg_.n),
                                              cfg_.q);
  if (calib_trials == 0) {
    calib_trials = std::max<std::size_t>(4000, 30ULL * cfg_.k);
  }
  const UniformSource uniform(cfg_.n);
  std::vector<std::uint64_t> samples;
  SuccessCounter rejects;
  for (std::size_t t = 0; t < calib_trials; ++t) {
    uniform.sample_many(calib_rng, cfg_.q, samples);
    rejects.record(static_cast<double>(collision_pairs(samples)) > local_t_);
  }
  p_u_ = rejects.rate();
  const double kd = static_cast<double>(cfg_.k);
  const double sd_u = std::sqrt(std::max(1e-12, kd * p_u_ * (1.0 - p_u_)));
  naive_t_ = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(kd * p_u_ + sd_u + 1e-9)));
}

RefereeOutcome RobustThresholdTester::outcome(const SampleSource& source,
                                              Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "RobustThresholdTester: domain size mismatch");
  const unsigned k = cfg_.k;
  const auto n_byz = static_cast<unsigned>(
      std::floor(plan_.byzantine_fraction * static_cast<double>(k)));
  const auto n_crash = static_cast<unsigned>(
      std::floor(plan_.crash_fraction * static_cast<double>(k)));

  // Fresh fault placement per execution: partial Fisher-Yates draws the
  // Byzantine set then the crashed set.
  std::vector<unsigned> order(k);
  for (unsigned j = 0; j < k; ++j) order[j] = j;
  for (unsigned j = 0; j < n_byz + n_crash && j + 1 < k; ++j) {
    const auto pick = j + static_cast<unsigned>(rng.next_below(k - j));
    std::swap(order[j], order[pick]);
  }
  std::vector<std::uint8_t> role(k, 0);  // 0 honest, 1 byzantine, 2 crashed
  for (unsigned j = 0; j < n_byz; ++j) role[order[j]] = 1;
  for (unsigned j = n_byz; j < n_byz + n_crash; ++j) role[order[j]] = 2;

  std::vector<std::uint8_t> bits;  // arrival order = player order
  bits.reserve(k);
  std::vector<std::uint64_t> samples;
  for (unsigned j = 0; j < k; ++j) {
    if (role[j] == 2) continue;  // crashed: nothing arrives
    Rng player_rng = make_rng(rng(), j);
    std::uint8_t bit = 0;
    const bool need_honest_vote =
        role[j] == 0 ||
        plan_.byzantine_mode == ByzantineMode::kAdversarialFlip;
    if (need_honest_vote) {
      source.sample_many(player_rng, cfg_.q, samples);
      bit = static_cast<double>(collision_pairs(samples)) > local_t_ ? 1 : 0;
    }
    if (role[j] == 1) {
      switch (plan_.byzantine_mode) {
        case ByzantineMode::kStuckAtZero: bit = 0; break;
        case ByzantineMode::kStuckAtOne: bit = 1; break;
        case ByzantineMode::kRandomBit:
          bit = static_cast<std::uint8_t>(player_rng() & 1ULL);
          break;
        case ByzantineMode::kAdversarialFlip:
          bit = bit ? 0 : 1;
          break;
      }
    }
    bits.push_back(bit);
  }

  const std::uint64_t received = bits.size();
  std::uint64_t rejects = 0;
  for (const auto b : bits) rejects += b;

  switch (rule_) {
    case Rule::kNaive:
      return NaiveThresholdRule{k, naive_t_}.decide(rejects, received);
    case Rule::kQuorum:
      return QuorumThresholdRule{k, p_u_}.decide(rejects, received);
    case Rule::kMedianOfGroups:
      return MedianOfGroupsRule{k, p_u_, effective_delta()}.decide(bits);
    case Rule::kTrimmed:
      return TrimmedMeanRule{k, p_u_, effective_delta()}.decide(rejects,
                                                                received);
  }
  return RefereeOutcome::kAbortTimeout;  // unreachable
}

}  // namespace duti
