#include "testers/multibit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "testers/calibration.hpp"
#include "testers/collision.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {

std::uint32_t MultibitSumTester::encode_count(std::uint64_t pairs, unsigned r,
                                              std::uint64_t offset) {
  const std::uint64_t cap = (1ULL << r) - 1;
  const std::uint64_t shifted = pairs > offset ? pairs - offset : 0;
  return static_cast<std::uint32_t>(std::min(shifted, cap));
}

MultibitSumTester::MultibitSumTester(Config cfg, Rng& calib_rng,
                                     std::size_t calib_trials)
    : cfg_(cfg) {
  require(cfg_.n >= 2, "MultibitSumTester: n must be >= 2");
  require(cfg_.k >= 1, "MultibitSumTester: k must be >= 1");
  require(cfg_.q >= 2, "MultibitSumTester: q must be >= 2");
  require(cfg_.eps > 0.0 && cfg_.eps <= 1.0, "MultibitSumTester: eps in (0,1]");
  require(cfg_.r >= 1 && cfg_.r <= 24, "MultibitSumTester: r in [1,24]");

  // Center the saturating window at the uniform collision mean so the
  // encoding never pins on both hypotheses at once (see header comment).
  const double lambda = expected_collision_pairs_uniform(
      static_cast<double>(cfg_.n), cfg_.q);
  const std::uint64_t half_window = 1ULL << (cfg_.r - 1);
  const auto lambda_ceil =
      static_cast<std::uint64_t>(std::ceil(lambda));
  offset_ = lambda_ceil > half_window ? lambda_ceil - half_window : 0;

  if (calib_trials == 0) {
    calib_trials = std::max<std::size_t>(4000, 30ULL * cfg_.k);
  }
  // Memo key: resolved trial count + calibration stream entry state (see
  // DistributedThresholdTester). The encoded statistic depends on (n, q,
  // r) but not k, so k is omitted.
  std::ostringstream id;
  id << "mbit|n=" << cfg_.n << "|q=" << cfg_.q << "|eps="
     << calib_pack_double(cfg_.eps) << "|r=" << cfg_.r << "|t="
     << calib_trials << "|rng=" << calib_rng_tag(calib_rng);
  double m_u = 0.0;
  double v_u = 0.0;
  if (auto payload = CalibMemo::global().lookup(id.str());
      payload && payload->size() == 7) {
    m_u = calib_unpack_double((*payload)[1]);
    v_u = calib_unpack_double((*payload)[2]);
    calib_rng.set_state(
        Rng::State{(*payload)[3], (*payload)[4], (*payload)[5], (*payload)[6]});
  } else {
    // Estimate mean and variance of the encoded count under uniform.
    const UniformSource uniform(cfg_.n);
    std::vector<std::uint64_t> samples;
    std::vector<double> encoded;
    encoded.reserve(calib_trials);
    for (std::size_t t = 0; t < calib_trials; ++t) {
      uniform.sample_many(calib_rng, cfg_.q, samples);
      encoded.push_back(static_cast<double>(encode_count(
          tallied_collision_pairs(samples, cfg_.n), cfg_.r, offset_)));
    }
    m_u = mean(encoded);
    v_u = encoded.size() >= 2 ? sample_variance(encoded) : 0.0;
    const Rng::State end = calib_rng.state();
    CalibMemo::global().insert(
        id.str(), {calib_trials, calib_pack_double(m_u),
                   calib_pack_double(v_u), end[0], end[1], end[2], end[3]});
  }
  const double kd = static_cast<double>(cfg_.k);
  // Accept iff the sum of encoded counts is below mean + 1 sd (same
  // one-sided calibration as the 1-bit threshold tester).
  sum_t_ = kd * m_u + std::sqrt(std::max(1e-12, kd * v_u));

  const unsigned r = cfg_.r;
  const std::uint64_t offset = offset_;
  exec_.emplace(
      cfg_.k, cfg_.q,
      [r, offset](unsigned /*j*/, std::uint64_t pairs, Rng& /*rng*/) {
        return Message{encode_count(pairs, r, offset), r};
      },
      r, cfg_.kernel);
}

SimultaneousProtocol MultibitSumTester::make_protocol() const {
  const unsigned q = cfg_.q;
  const unsigned r = cfg_.r;
  const std::uint64_t offset = offset_;
  return SimultaneousProtocol(
      cfg_.k, cfg_.q, [q, r, offset](unsigned /*j*/) {
        return std::make_unique<CallbackPlayer>(
            [q, r, offset](std::span<const std::uint64_t> samples,
                           Rng& /*rng*/) {
              require(samples.size() == q, "multibit player: wrong q");
              return Message{
                  encode_count(collision_pairs(samples), r, offset), r};
            },
            r);
      });
}

bool MultibitSumTester::run(const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "MultibitSumTester: domain size mismatch");
  // Same j-ascending fold over the same message integers as the legacy
  // collect() path, so the referee total is bit-identical.
  const auto& messages = exec_->collect_tls(source, rng);
  double total = 0.0;
  for (const auto& m : messages) total += static_cast<double>(m.bits);
  return total < sum_t_;
}

}  // namespace duti
