#include "testers/centralized.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "testers/collision.hpp"
#include "util/error.hpp"

namespace duti {

CentralizedCollisionTester::CentralizedCollisionTester(std::uint64_t n,
                                                       double eps, unsigned q,
                                                       SamplingKernel kernel)
    : n_(n), eps_(eps), q_(q), kernel_(kernel) {
  require(n >= 2, "CentralizedCollisionTester: n must be >= 2");
  require(eps > 0.0 && eps <= 1.0, "CentralizedCollisionTester: eps in (0,1]");
  require(q >= 2, "CentralizedCollisionTester: q must be >= 2");
  const double nd = static_cast<double>(n);
  const double mean_uniform = expected_collision_pairs_uniform(nd, q);
  // eps-far distributions have expected pairs >= mean_uniform*(1 + eps^2);
  // split the gap in half.
  threshold_ = mean_uniform * (1.0 + 0.5 * eps * eps);
}

unsigned CentralizedCollisionTester::sufficient_q(std::uint64_t n, double eps,
                                                  double c) {
  require(n >= 2, "sufficient_q: n must be >= 2");
  require(eps > 0.0 && eps <= 1.0, "sufficient_q: eps in (0,1]");
  require(c > 0.0, "sufficient_q: c must be positive");
  const double qd = c * std::sqrt(static_cast<double>(n)) / (eps * eps);
  return static_cast<unsigned>(std::ceil(std::max(2.0, qd)));
}

bool CentralizedCollisionTester::accept(
    std::span<const std::uint64_t> samples) const {
  require(samples.size() == q_, "CentralizedCollisionTester: wrong q");
  return static_cast<double>(collision_pairs(samples)) < threshold_;
}

bool CentralizedCollisionTester::accept_counts(
    std::span<const std::uint64_t> counts) const {
  require(counts.size() == n_, "CentralizedCollisionTester: wrong domain");
  return static_cast<double>(collision_pairs_from_counts(counts)) < threshold_;
}

bool CentralizedCollisionTester::run(const SampleSource& source,
                                     Rng& rng) const {
  require(source.domain_size() == n_,
          "CentralizedCollisionTester: domain size mismatch");
  if (kernel_ == SamplingKernel::kCounts) {
    std::vector<std::uint64_t> counts;
    source.sample_counts(rng, q_, counts);
    return accept_counts(counts);
  }
  std::vector<std::uint64_t> samples;
  source.sample_many(rng, q_, samples);
  return accept(samples);
}

PaninskiCoincidenceTester::PaninskiCoincidenceTester(std::uint64_t n,
                                                     double eps, unsigned q,
                                                     SamplingKernel kernel)
    : n_(n), eps_(eps), q_(q), kernel_(kernel) {
  require(n >= 2, "PaninskiCoincidenceTester: n must be >= 2");
  require(eps > 0.0 && eps <= 1.0, "PaninskiCoincidenceTester: eps in (0,1]");
  require(q >= 2, "PaninskiCoincidenceTester: q must be >= 2");
  const double nd = static_cast<double>(n);
  const double qd = static_cast<double>(q);
  // Exact expected distinct counts. Uniform: n (1 - (1 - 1/n)^q). For the
  // extremal eps-far family (Paninski: half the elements at (1+eps)/n,
  // half at (1-eps)/n) the expectation is the two-level analogue. Accept
  // when the observed distinct count is above the midpoint. Using the
  // exact means (rather than a collision-count approximation) keeps the
  // threshold correct in the dense regime q > sqrt(n) as well.
  const double mean_uniform = nd * (1.0 - std::pow(1.0 - 1.0 / nd, qd));
  const double mean_far =
      0.5 * nd *
      ((1.0 - std::pow(1.0 - (1.0 + eps) / nd, qd)) +
       (1.0 - std::pow(1.0 - (1.0 - eps) / nd, qd)));
  threshold_ = 0.5 * (mean_uniform + mean_far);
}

bool PaninskiCoincidenceTester::accept(
    std::span<const std::uint64_t> samples) const {
  require(samples.size() == q_, "PaninskiCoincidenceTester: wrong q");
  return static_cast<double>(distinct_values(samples)) > threshold_;
}

bool PaninskiCoincidenceTester::accept_counts(
    std::span<const std::uint64_t> counts) const {
  require(counts.size() == n_, "PaninskiCoincidenceTester: wrong domain");
  return static_cast<double>(distinct_values_from_counts(counts)) > threshold_;
}

bool PaninskiCoincidenceTester::run(const SampleSource& source,
                                    Rng& rng) const {
  require(source.domain_size() == n_,
          "PaninskiCoincidenceTester: domain size mismatch");
  if (kernel_ == SamplingKernel::kCounts) {
    std::vector<std::uint64_t> counts;
    source.sample_counts(rng, q_, counts);
    return accept_counts(counts);
  }
  std::vector<std::uint64_t> samples;
  source.sample_many(rng, q_, samples);
  return accept(samples);
}

ChiSquaredTester::ChiSquaredTester(std::uint64_t n, double eps, unsigned q,
                                   SamplingKernel kernel)
    : n_(n), eps_(eps), q_(q), kernel_(kernel) {
  require(n >= 2, "ChiSquaredTester: n must be >= 2");
  require(eps > 0.0 && eps <= 1.0, "ChiSquaredTester: eps in (0,1]");
  require(q >= 2, "ChiSquaredTester: q must be >= 2");
  // E[statistic] = q n ||mu - U||_2^2 - n ||mu||_2^2: equals -1 under
  // uniform, and at least q eps^2 - 1 - eps^2 for eps-far mu (via
  // ||mu - U||_2^2 >= eps^2/n). Accept below the midpoint.
  const double qd = static_cast<double>(q);
  threshold_ = 0.5 * qd * eps * eps - 1.0;
}

double ChiSquaredTester::statistic(
    std::span<const std::uint64_t> samples) const {
  require(samples.size() == q_, "ChiSquaredTester: wrong sample count");
  // Count occurrences; only elements that appear contribute to the
  // (c_a - m)^2 - c_a part beyond the constant baseline, so accumulate the
  // deviation from the all-zero-count baseline.
  std::vector<std::uint64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double m = static_cast<double>(q_) / static_cast<double>(n_);
  // Baseline: all n elements with c_a = 0 contribute n * (m^2 - 0)/m = q.
  double stat = static_cast<double>(q_);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t run = 1;
    while (i + run < sorted.size() && sorted[i + run] == sorted[i]) ++run;
    const double c = static_cast<double>(run);
    stat += ((c - m) * (c - m) - c) / m - m;  // replace the zero-count term
    i += run;
  }
  return stat;
}

double ChiSquaredTester::statistic_from_counts(
    std::span<const std::uint64_t> counts) const {
  require(counts.size() == n_, "ChiSquaredTester: wrong domain");
  const double m = static_cast<double>(q_) / static_cast<double>(n_);
  // Same accumulation as statistic(): start from the all-zero-count
  // baseline (= q) and swap in each nonzero count's term, so both paths
  // run the identical float operations per occupied element.
  double stat = static_cast<double>(q_);
  for (const std::uint64_t count : counts) {
    if (count == 0) continue;
    const double c = static_cast<double>(count);
    stat += ((c - m) * (c - m) - c) / m - m;
  }
  return stat;
}

bool ChiSquaredTester::accept(std::span<const std::uint64_t> samples) const {
  return statistic(samples) < threshold_;
}

bool ChiSquaredTester::accept_counts(
    std::span<const std::uint64_t> counts) const {
  return statistic_from_counts(counts) < threshold_;
}

bool ChiSquaredTester::run(const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == n_,
          "ChiSquaredTester: domain size mismatch");
  if (kernel_ == SamplingKernel::kCounts) {
    std::vector<std::uint64_t> counts;
    source.sample_counts(rng, q_, counts);
    return accept_counts(counts);
  }
  std::vector<std::uint64_t> samples;
  source.sample_many(rng, q_, samples);
  return accept(samples);
}

}  // namespace duti
