// Message maps bridging the testers' encodings to the core module's
// MultibitMessageAnalysis: dense (tuple -> symbol) functions on small
// universes that mirror what the scalable testers compute per player.
#pragma once

#include <cstdint>
#include <functional>

#include "core/sample_tuple.hpp"

namespace duti {

/// The multibit tester's encoder as a dense message map: the local
/// collision count quantized to r bits with the centered saturating window
/// (see MultibitSumTester). Requires q >= 2.
[[nodiscard]] std::function<std::uint32_t(std::uint64_t)>
collision_count_message(const SampleTupleCodec& codec, unsigned r);

/// The 1-bit threshold voter as a message map: symbol 1 iff the collision
/// count is at or below the uniform mean (i.e. the "accept" bit).
[[nodiscard]] std::function<std::uint32_t(std::uint64_t)>
collision_vote_message(const SampleTupleCodec& codec);

}  // namespace duti
