// Distributed learning of an unknown distribution (Theorem 1.4 and the
// learning results of [1]).
//
//  * StochasticRoundingLearner — q samples and ONE bit per node: node j is
//    responsible for element i = j mod n, and sends a Bernoulli bit whose
//    expectation is its empirical frequency of i. Unbiased but WASTEFUL:
//    the bit's variance is mu_i(1-mu_i) regardless of q, so extra samples
//    buy nothing (k* ~ n^2/delta^2, flat in q — measured in bench E4).
//
//  * PresenceBitLearner — q samples and ONE bit per node: the node sends
//    1[count_i >= 1] and the referee inverts mu_hat = 1 - (1 - p_hat)^{1/q}.
//    In the sparse regime q mu << 1 the inverted estimator's variance is
//    ~ mu/q per node — a full factor q better — so k* ~ n^2/(q delta^2).
//    This is the curve bench E4 compares against the paper's
//    k = Omega(n^2/q^2) lower bound (the remaining factor-q gap is open).
//
//  * GroupedLearner — one sample and r bits per node ([1]'s regime): the
//    domain is split into groups of 2^{r-1}; a node reports whether its
//    sample fell in its group and, if so, the offset. Realizes the
//    k = Theta(n^2/(2^r eps^2)) trade-off of [1].
#pragma once

#include <cstdint>

#include "dist/discrete_distribution.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

class StochasticRoundingLearner {
 public:
  StochasticRoundingLearner(std::uint64_t n, std::uint64_t k, unsigned q);

  /// Run the protocol and return the learned (normalized) distribution.
  [[nodiscard]] DiscreteDistribution learn(const SampleSource& source,
                                           Rng& rng) const;

  /// Convenience: learn and return the l1 error against the truth.
  [[nodiscard]] double learn_l1_error(const DiscreteDistribution& truth,
                                      Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
  [[nodiscard]] unsigned q() const noexcept { return q_; }

 private:
  std::uint64_t n_;
  std::uint64_t k_;
  unsigned q_;
};

class PresenceBitLearner {
 public:
  PresenceBitLearner(std::uint64_t n, std::uint64_t k, unsigned q);

  [[nodiscard]] DiscreteDistribution learn(const SampleSource& source,
                                           Rng& rng) const;
  [[nodiscard]] double learn_l1_error(const DiscreteDistribution& truth,
                                      Rng& rng) const;

  /// Invert the presence probability: mu = 1 - (1 - p)^{1/q}, clamped for
  /// p at the boundary (exposed for tests).
  [[nodiscard]] static double invert_presence(double p_hat, unsigned q);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
  [[nodiscard]] unsigned q() const noexcept { return q_; }

 private:
  std::uint64_t n_;
  std::uint64_t k_;
  unsigned q_;
};

class GroupedLearner {
 public:
  /// r >= 1 message bits; group size is 2^{r-1}; n must be divisible by the
  /// group size.
  GroupedLearner(std::uint64_t n, std::uint64_t k, unsigned r);

  [[nodiscard]] DiscreteDistribution learn(const SampleSource& source,
                                           Rng& rng) const;
  [[nodiscard]] double learn_l1_error(const DiscreteDistribution& truth,
                                      Rng& rng) const;

  [[nodiscard]] std::uint64_t group_size() const noexcept {
    return group_size_;
  }
  [[nodiscard]] std::uint64_t num_groups() const noexcept {
    return n_ / group_size_;
  }

 private:
  std::uint64_t n_;
  std::uint64_t k_;
  unsigned r_;
  std::uint64_t group_size_;
};

}  // namespace duti
