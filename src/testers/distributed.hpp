// The distributed uniformity testers of Fischer-Meir-Oshman [7], which the
// paper's lower bounds address:
//
//  * DistributedThresholdTester — every player votes on its local collision
//    count against the uniform expectation; the referee rejects when at
//    least T players reject. Sample-optimal (q = O(sqrt(n/k)/eps^2)) per
//    Theorem 1.1, and the subject of Theorem 1.3's threshold lower bound.
//
//  * DistributedAndTester — the local-decision version: each player rejects
//    only on overwhelming local evidence (false-alarm probability <= 1/(3k)
//    via a Poisson tail bound), and the network rejects iff someone raises
//    an alarm. Subject of Theorem 1.2: barely cheaper than centralized.
//
// Referee thresholds are calibrated by simulating a single player on the
// uniform distribution (the tester knows n and q, so this is information
// the protocol legitimately has). Calibration trials should exceed ~30*k
// so the referee threshold's error stays below binomial noise. Calibration
// results are memoized through CalibMemo (calibration.hpp) keyed by the
// full construction identity including the calibration RNG's entry state;
// a memo hit restores the RNG's exit state, so memoized and fresh
// constructions are indistinguishable to the caller.
//
// run() executes on the batched protocol plane (sim/protocol_batch.hpp):
// the vote functor and referee rule are resolved once at construction and
// trials run through reusable per-worker buffers — bit-identical verdicts
// to the legacy SimultaneousProtocol path (make_protocol()/make_rule(),
// kept as the comparator), with zero per-trial heap allocations.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/decision_rule.hpp"
#include "sim/protocol.hpp"
#include "sim/protocol_batch.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

struct DistributedTesterConfig {
  std::uint64_t n = 0;  // universe size
  unsigned k = 0;       // number of players
  unsigned q = 0;       // samples per player (>= 2 so collisions exist)
  double eps = 0.0;     // proximity parameter
  // How run() draws each player's samples (DESIGN.md section 8): kCounts
  // swaps the per-sample stream for multinomial count kernels — same
  // distribution, different RNG consumption, so it is opt-in. Calibration
  // always uses the per-sample stream regardless (the memoized referee
  // thresholds are kernel-independent).
  SamplingKernel kernel = SamplingKernel::kPerSample;
};

/// Shared implementation detail: a player that votes "reject" iff its local
/// pair-collision count strictly exceeds `local_threshold`.
[[nodiscard]] SimultaneousProtocol::PlayerFactory make_collision_voters(
    unsigned q, double local_threshold);

class DistributedThresholdTester {
 public:
  /// Calibrates the referee threshold by estimating the per-player
  /// rejection probability under uniform with `calib_trials` simulations.
  DistributedThresholdTester(DistributedTesterConfig cfg, Rng& calib_rng,
                             std::size_t calib_trials = 0 /* auto */);

  /// One full protocol execution on the batched plane; true = accept.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

  /// The referee's rule: reject iff at least referee_threshold() players
  /// reject.
  [[nodiscard]] std::uint64_t referee_threshold() const noexcept {
    return referee_t_;
  }
  [[nodiscard]] double p_reject_uniform() const noexcept { return p_u_; }
  [[nodiscard]] double local_threshold() const noexcept { return local_t_; }
  [[nodiscard]] const DistributedTesterConfig& config() const noexcept {
    return cfg_;
  }

  /// Expose the legacy protocol and rule — integration with other harness
  /// code, and the comparator for the batched plane's bit-identity tests.
  [[nodiscard]] SimultaneousProtocol make_protocol() const;
  [[nodiscard]] DecisionRule make_rule() const;

  /// The batched executor run() dispatches to (exposed for benches/tests).
  [[nodiscard]] const ProtocolBatchExecutor& executor() const {
    return *exec_;
  }

 private:
  DistributedTesterConfig cfg_;
  double local_t_ = 0.0;
  double p_u_ = 0.0;
  std::uint64_t referee_t_ = 1;
  std::optional<ProtocolBatchExecutor> exec_;
  std::optional<DecisionRule> rule_;
};

class DistributedAndTester {
 public:
  explicit DistributedAndTester(DistributedTesterConfig cfg);

  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

  [[nodiscard]] double local_threshold() const noexcept { return local_t_; }
  [[nodiscard]] const DistributedTesterConfig& config() const noexcept {
    return cfg_;
  }

  [[nodiscard]] SimultaneousProtocol make_protocol() const;
  [[nodiscard]] DecisionRule make_rule() const { return DecisionRule::and_rule(); }

  [[nodiscard]] const ProtocolBatchExecutor& executor() const {
    return *exec_;
  }

 private:
  DistributedTesterConfig cfg_;
  double local_t_ = 0.0;
  std::optional<ProtocolBatchExecutor> exec_;
  std::optional<DecisionRule> rule_;
};

}  // namespace duti
