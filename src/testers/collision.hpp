// Collision statistics — the engine of every uniformity tester in this
// library, and the quantity the paper's Fourier analysis shows is the *only*
// usable signal ("a tester only gains information by counting collisions",
// Section 3).
//
// For q samples from mu, the pair-collision count C = #{i<j : s_i = s_j}
// has E[C] = C(q,2) * ||mu||_2^2. Uniform gives ||mu||_2^2 = 1/n; any mu
// that is eps-far from uniform in l1 has ||mu||_2^2 >= (1 + eps^2)/n
// (Cauchy-Schwarz), so the collision rate separates the two cases.
#pragma once

#include <cstdint>
#include <span>

#include "dist/discrete_distribution.hpp"

namespace duti {

/// Number of colliding pairs #{i<j : s_i = s_j}; O(q log q). Uses a
/// thread-local sort scratch, so repeated calls allocate nothing.
[[nodiscard]] std::uint64_t collision_pairs(
    std::span<const std::uint64_t> samples);

/// Collision pairs from an already-tallied histogram: sum_i c_i(c_i-1)/2.
/// O(domain) and allocation-free — the fast path when samples arrive as
/// counts (e.g. from a HistogramSource or a tallying player).
[[nodiscard]] std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts);

/// Number of distinct values among the samples (the statistic of
/// Paninski's coincidence tester).
[[nodiscard]] std::uint64_t distinct_values(
    std::span<const std::uint64_t> samples);

/// Distinct values from an already-tallied histogram: #{i : c_i > 0}.
/// O(domain) and allocation-free — the counts-kernel twin of
/// distinct_values, mirroring collision_pairs_from_counts.
[[nodiscard]] std::uint64_t distinct_values_from_counts(
    std::span<const std::uint64_t> counts);

/// ||mu||_2^2 = sum_i mu(i)^2, the per-pair collision probability.
[[nodiscard]] double l2_norm_squared(const DiscreteDistribution& dist);

/// Expected pair-collision count for q samples from `dist`.
[[nodiscard]] double expected_collision_pairs(const DiscreteDistribution& dist,
                                              unsigned q);

/// Expected pair-collision count for q uniform samples on domain n.
[[nodiscard]] double expected_collision_pairs_uniform(double n, unsigned q);

/// Lower bound on ||mu||_2^2 for mu eps-far from uniform: (1 + eps^2)/n.
[[nodiscard]] double far_l2_lower_bound(double n, double eps);

/// Variance of the pair-collision count under the uniform distribution on
/// domain n (exact): Var[C] = C(q,2) * (1/n)(1 - 1/n)
///                          + 6*C(q,3) * (1/n^2 - 1/n^3) ... computed from
/// the standard decomposition over pair/triple overlaps.
[[nodiscard]] double collision_variance_uniform(double n, unsigned q);

}  // namespace duti
