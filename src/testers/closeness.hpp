// Two-sample closeness testing [BFRSW'00 flavour]: given m samples from
// each of two unknown distributions p and q on [n], decide p = q vs
// ||p - q||_1 >= eps. The paper points out that uniformity is a special
// case (take q = uniform), so its lower bounds transfer; this tester
// rounds out the library's substrate on the upper-bound side.
//
// Statistic: with r_p, r_q the within-sample collision pair counts and
// c_pq the cross collisions,
//   S = (r_p + r_q)/C(m,2) - 2 c_pq / m^2
// has E[S] = ||p||_2^2 + ||q||_2^2 - 2<p,q> = ||p - q||_2^2 >= eps^2/n
// when eps-far (Cauchy-Schwarz), and 0 when p = q. Accept iff S is below
// the midpoint eps^2/(2n).
#pragma once

#include <cstdint>
#include <span>

#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

class ClosenessTester {
 public:
  /// Tester for universe n, proximity eps, m samples from EACH side.
  ClosenessTester(std::uint64_t n, double eps, unsigned m);

  /// Samples per side sufficient for constant success at this (n, eps);
  /// the c ~ 4 constant is empirical (tests exercise it).
  [[nodiscard]] static unsigned sufficient_m(std::uint64_t n, double eps,
                                             double c = 4.0);

  [[nodiscard]] unsigned m() const noexcept { return m_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  /// The unbiased ||p - q||_2^2 estimator (exposed for tests).
  [[nodiscard]] double statistic(
      std::span<const std::uint64_t> p_samples,
      std::span<const std::uint64_t> q_samples) const;

  /// Decide from explicit samples: true = accept (p and q look equal).
  [[nodiscard]] bool accept(std::span<const std::uint64_t> p_samples,
                            std::span<const std::uint64_t> q_samples) const;

  /// Draw m samples from each source and decide.
  [[nodiscard]] bool run(const SampleSource& p_source,
                         const SampleSource& q_source, Rng& rng) const;

 private:
  std::uint64_t n_;
  double eps_;
  unsigned m_;
  double threshold_;
};

/// Cross-collision count #{(i,j) : p_samples[i] == q_samples[j]}.
[[nodiscard]] std::uint64_t cross_collisions(
    std::span<const std::uint64_t> p_samples,
    std::span<const std::uint64_t> q_samples);

}  // namespace duti
