#include "testers/independence.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace duti {

JointPairSource::JointPairSource(DiscreteDistribution joint, std::uint64_t nx,
                                 std::uint64_t ny)
    : joint_(std::move(joint)), nx_(nx), ny_(ny) {
  require(nx >= 1 && ny >= 1, "JointPairSource: domains must be non-empty");
  require(joint_.domain_size() == nx * ny,
          "JointPairSource: pmf size must be nx * ny");
}

std::pair<std::uint64_t, std::uint64_t> JointPairSource::sample(
    Rng& rng) const {
  const std::uint64_t flat = joint_.sample(rng);
  return {flat / ny_, flat % ny_};  // row-major
}

IndependenceTester::IndependenceTester(std::uint64_t nx, std::uint64_t ny,
                                       double eps, unsigned m)
    : nx_(nx),
      ny_(ny),
      m_(m),
      closeness_(nx * ny, eps, m) {
  require(nx >= 2 && ny >= 2, "IndependenceTester: domains must be >= 2");
  require(m >= 2, "IndependenceTester: m must be >= 2");
}

unsigned IndependenceTester::sufficient_m(std::uint64_t nx, std::uint64_t ny,
                                          double eps, double c) {
  return ClosenessTester::sufficient_m(nx * ny, eps, c);
}

bool IndependenceTester::accept(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> pairs,
    Rng& rng) const {
  require(pairs.size() == 2ULL * m_,
          "IndependenceTester: need exactly 2m pair samples");
  // First half: joint samples, flattened row-major.
  std::vector<std::uint64_t> joint_flat(m_);
  for (unsigned i = 0; i < m_; ++i) {
    require(pairs[i].first < nx_ && pairs[i].second < ny_,
            "IndependenceTester: pair out of range");
    joint_flat[i] = pairs[i].first * ny_ + pairs[i].second;
  }
  // Second half: break dependence by permuting the y-coordinates, giving
  // samples of marginal_x (x) marginal_y built from DISJOINT randomness.
  std::vector<std::uint64_t> xs(m_), ys(m_);
  for (unsigned i = 0; i < m_; ++i) {
    require(pairs[m_ + i].first < nx_ && pairs[m_ + i].second < ny_,
            "IndependenceTester: pair out of range");
    xs[i] = pairs[m_ + i].first;
    ys[i] = pairs[m_ + i].second;
  }
  for (std::size_t i = ys.size(); i > 1; --i) {
    std::swap(ys[i - 1], ys[rng.next_below(i)]);
  }
  std::vector<std::uint64_t> product_flat(m_);
  for (unsigned i = 0; i < m_; ++i) {
    product_flat[i] = xs[i] * ny_ + ys[i];
  }
  return closeness_.accept(joint_flat, product_flat);
}

bool IndependenceTester::run(const PairSource& source, Rng& rng) const {
  require(source.domain_x() == nx_ && source.domain_y() == ny_,
          "IndependenceTester: domain mismatch");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs(2ULL * m_);
  for (auto& p : pairs) p = source.sample(rng);
  return accept(pairs, rng);
}

}  // namespace duti
