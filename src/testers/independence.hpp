// Independence testing — the other problem the paper names as containing
// uniformity testing as a special case. Given samples of PAIRS (x, y) over
// [n1] x [n2], decide whether the joint distribution is a product
// distribution or eps-far (l1) from every product.
//
// Reduction to two-sample closeness via the permutation trick: split the
// 2m pair-samples into two halves; keep the first half as joint samples,
// and break the dependence in the second half by randomly permuting its
// y-coordinates (yielding genuine samples of the product of the empirical
// marginals). If the joint IS a product, the two sample sets come from
// (statistically) the same distribution; if it is far from every product,
// it is in particular far from marginal_x x marginal_y, and the closeness
// tester fires.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/sample_source.hpp"
#include "testers/closeness.hpp"
#include "util/rng.hpp"

namespace duti {

/// A source of pairs; domain sizes fixed at construction.
class PairSource {
 public:
  virtual ~PairSource() = default;
  [[nodiscard]] virtual std::pair<std::uint64_t, std::uint64_t> sample(
      Rng& rng) const = 0;
  [[nodiscard]] virtual std::uint64_t domain_x() const = 0;
  [[nodiscard]] virtual std::uint64_t domain_y() const = 0;
};

/// Product of two independent distributions.
class ProductPairSource final : public PairSource {
 public:
  ProductPairSource(DiscreteDistribution px, DiscreteDistribution py)
      : px_(std::move(px)), py_(std::move(py)) {}
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> sample(
      Rng& rng) const override {
    return {px_.sample(rng), py_.sample(rng)};
  }
  [[nodiscard]] std::uint64_t domain_x() const override {
    return px_.domain_size();
  }
  [[nodiscard]] std::uint64_t domain_y() const override {
    return py_.domain_size();
  }

 private:
  DiscreteDistribution px_, py_;
};

/// Joint distribution materialized as a pmf over pairs (row-major).
class JointPairSource final : public PairSource {
 public:
  JointPairSource(DiscreteDistribution joint, std::uint64_t nx,
                  std::uint64_t ny);
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> sample(
      Rng& rng) const override;
  [[nodiscard]] std::uint64_t domain_x() const override { return nx_; }
  [[nodiscard]] std::uint64_t domain_y() const override { return ny_; }

 private:
  DiscreteDistribution joint_;
  std::uint64_t nx_, ny_;
};

class IndependenceTester {
 public:
  /// Tester over [nx] x [ny] with proximity eps, using m pair-samples per
  /// closeness side (2m pairs total).
  IndependenceTester(std::uint64_t nx, std::uint64_t ny, double eps,
                     unsigned m);

  [[nodiscard]] static unsigned sufficient_m(std::uint64_t nx,
                                             std::uint64_t ny, double eps,
                                             double c = 4.0);

  [[nodiscard]] unsigned m() const noexcept { return m_; }

  /// Decide from 2m explicit pair-samples (uses `rng` for the permutation).
  [[nodiscard]] bool accept(
      std::span<const std::pair<std::uint64_t, std::uint64_t>> pairs,
      Rng& rng) const;

  /// Draw 2m pairs from `source` and decide; true = looks independent.
  [[nodiscard]] bool run(const PairSource& source, Rng& rng) const;

 private:
  std::uint64_t nx_, ny_;
  unsigned m_;
  ClosenessTester closeness_;
};

}  // namespace duti
