#include "testers/message_maps.hpp"

#include <cmath>
#include <vector>

#include "testers/collision.hpp"
#include "testers/multibit.hpp"
#include "util/error.hpp"

namespace duti {

std::function<std::uint32_t(std::uint64_t)> collision_count_message(
    const SampleTupleCodec& codec, unsigned r) {
  require(codec.q() >= 2, "collision_count_message: q >= 2");
  require(r >= 1 && r <= 20, "collision_count_message: r in [1,20]");
  const unsigned q = codec.q();
  const double lambda = expected_collision_pairs_uniform(
      static_cast<double>(codec.domain().universe_size()), q);
  const std::uint64_t half_window = 1ULL << (r - 1);
  const auto lambda_ceil = static_cast<std::uint64_t>(std::ceil(lambda));
  const std::uint64_t offset =
      lambda_ceil > half_window ? lambda_ceil - half_window : 0;
  return [codec, q, r, offset](std::uint64_t packed) {
    std::vector<std::uint64_t> elements(q);
    for (unsigned j = 0; j < q; ++j) {
      elements[j] = codec.element(packed, j);
    }
    return MultibitSumTester::encode_count(collision_pairs(elements), r,
                                           offset);
  };
}

std::function<std::uint32_t(std::uint64_t)> collision_vote_message(
    const SampleTupleCodec& codec) {
  require(codec.q() >= 2, "collision_vote_message: q >= 2");
  const unsigned q = codec.q();
  const double lambda = expected_collision_pairs_uniform(
      static_cast<double>(codec.domain().universe_size()), q);
  return [codec, q, lambda](std::uint64_t packed) -> std::uint32_t {
    std::vector<std::uint64_t> elements(q);
    for (unsigned j = 0; j < q; ++j) {
      elements[j] = codec.element(packed, j);
    }
    return static_cast<double>(collision_pairs(elements)) > lambda ? 0U : 1U;
  };
}

}  // namespace duti
