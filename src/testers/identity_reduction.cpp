#include "testers/identity_reduction.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace duti {

IdentityReduction::IdentityReduction(DiscreteDistribution eta,
                                     std::uint64_t expanded_size)
    : eta_(std::move(eta)), expanded_size_(expanded_size) {
  const std::size_t n = eta_.domain_size();
  require(expanded_size_ >= n,
          "IdentityReduction: expanded size must be >= domain size");
  // Largest-remainder apportionment of expanded_size cells to buckets.
  sizes_.assign(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(n);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = eta_.pmf(i) * static_cast<double>(expanded_size_);
    sizes_[i] = static_cast<std::uint64_t>(std::floor(exact));
    if (eta_.pmf(i) > 0.0 && sizes_[i] == 0) sizes_[i] = 1;
    assigned += sizes_[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  require(assigned <= expanded_size_,
          "IdentityReduction: expanded size too small for minimum cells");
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::uint64_t leftover = expanded_size_ - assigned;
  for (std::size_t idx = 0; leftover > 0; idx = (idx + 1) % n) {
    ++sizes_[remainders[idx].second];
    --leftover;
  }
  starts_.assign(n, 0);
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    starts_[i] = cursor;
    cursor += sizes_[i];
  }
  require(cursor == expanded_size_, "IdentityReduction: apportionment bug");
}

std::uint64_t IdentityReduction::map(std::uint64_t element, Rng& rng) const {
  require(element < sizes_.size(), "IdentityReduction::map: out of range");
  require(sizes_[element] > 0,
          "IdentityReduction::map: sampled an eta-null element");
  return starts_[element] + rng.next_below(sizes_[element]);
}

DiscreteDistribution IdentityReduction::mapped_distribution(
    const DiscreteDistribution& mu) const {
  require(mu.domain_size() == sizes_.size(),
          "IdentityReduction: domain size mismatch");
  std::vector<double> pmf(expanded_size_, 0.0);
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    if (sizes_[i] == 0) {
      require(mu.pmf(i) == 0.0,
              "IdentityReduction: mu puts mass on an eta-null element");
      continue;
    }
    const double per_cell = mu.pmf(i) / static_cast<double>(sizes_[i]);
    for (std::uint64_t c = 0; c < sizes_[i]; ++c) {
      pmf[starts_[i] + c] = per_cell;
    }
  }
  return DiscreteDistribution(std::move(pmf));
}

double IdentityReduction::rounding_error() const {
  const auto mapped = mapped_distribution(eta_);
  return mapped.l1_from_uniform();
}

}  // namespace duti
