#include "testers/calibration.hpp"

#include <array>
#include <cstdio>

namespace duti {

std::string calib_rng_tag(const Rng& rng) {
  const Rng::State s = rng.state();
  std::array<char, 4 * 16 + 4> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx.%016llx.%016llx.%016llx",
                static_cast<unsigned long long>(s[0]),
                static_cast<unsigned long long>(s[1]),
                static_cast<unsigned long long>(s[2]),
                static_cast<unsigned long long>(s[3]));
  return std::string(buf.data());
}

CalibMemo& CalibMemo::global() {
  static CalibMemo memo;
  return memo;
}

std::optional<std::vector<std::uint64_t>> CalibMemo::lookup(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(id); it != map_.end()) {
    ++stats_.hits;
    return it->second;
  }
  if (hooks_.load) {
    if (auto payload = hooks_.load(id)) {
      ++stats_.loads;
      map_.emplace(id, *payload);
      return payload;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void CalibMemo::insert(const std::string& id,
                       std::vector<std::uint64_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.inserts;
  if (hooks_.store) hooks_.store(id, payload);
  map_.insert_or_assign(id, std::move(payload));
}

void CalibMemo::install_hooks(Hooks hooks) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_ = std::move(hooks);
}

CalibMemo::Stats CalibMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CalibMemo::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void CalibMemo::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t CalibMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace duti
