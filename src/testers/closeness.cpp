#include "testers/closeness.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "testers/collision.hpp"
#include "util/error.hpp"

namespace duti {

std::uint64_t cross_collisions(std::span<const std::uint64_t> p_samples,
                               std::span<const std::uint64_t> q_samples) {
  // Sort one side, binary-search run lengths for the other: O((a+b) log a).
  std::vector<std::uint64_t> sorted(p_samples.begin(), p_samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t total = 0;
  for (const auto v : q_samples) {
    const auto range = std::equal_range(sorted.begin(), sorted.end(), v);
    total += static_cast<std::uint64_t>(range.second - range.first);
  }
  return total;
}

ClosenessTester::ClosenessTester(std::uint64_t n, double eps, unsigned m)
    : n_(n), eps_(eps), m_(m) {
  require(n >= 2, "ClosenessTester: n must be >= 2");
  require(eps > 0.0 && eps <= 2.0, "ClosenessTester: eps in (0,2]");
  require(m >= 2, "ClosenessTester: m must be >= 2");
  // E[S] = ||p - q||_2^2: zero when equal, >= eps^2/n when eps-far in l1.
  threshold_ = 0.5 * eps * eps / static_cast<double>(n);
}

unsigned ClosenessTester::sufficient_m(std::uint64_t n, double eps,
                                       double c) {
  require(n >= 2, "sufficient_m: n must be >= 2");
  require(eps > 0.0 && eps <= 2.0, "sufficient_m: eps in (0,2]");
  require(c > 0.0, "sufficient_m: c must be positive");
  // The l2-closeness estimator concentrates at m = O(sqrt(n)/eps^2) for
  // distributions with ||p||_2 = O(1/sqrt(n)) (the near-uniform regime);
  // heavier distributions need the standard n^{2/3} correction, which the
  // c constant absorbs at these scales.
  const double md = c * std::sqrt(static_cast<double>(n)) / (eps * eps);
  return static_cast<unsigned>(std::ceil(std::max(2.0, md)));
}

double ClosenessTester::statistic(
    std::span<const std::uint64_t> p_samples,
    std::span<const std::uint64_t> q_samples) const {
  require(p_samples.size() == m_ && q_samples.size() == m_,
          "ClosenessTester: wrong sample counts");
  const double md = static_cast<double>(m_);
  const double pairs = 0.5 * md * (md - 1.0);
  const double within =
      static_cast<double>(collision_pairs(p_samples)) / pairs +
      static_cast<double>(collision_pairs(q_samples)) / pairs;
  const double cross =
      2.0 * static_cast<double>(cross_collisions(p_samples, q_samples)) /
      (md * md);
  return within - cross;
}

bool ClosenessTester::accept(std::span<const std::uint64_t> p_samples,
                             std::span<const std::uint64_t> q_samples) const {
  return statistic(p_samples, q_samples) < threshold_;
}

bool ClosenessTester::run(const SampleSource& p_source,
                          const SampleSource& q_source, Rng& rng) const {
  require(p_source.domain_size() == n_ && q_source.domain_size() == n_,
          "ClosenessTester: domain size mismatch");
  std::vector<std::uint64_t> p_samples, q_samples;
  p_source.sample_many(rng, m_, p_samples);
  q_source.sample_many(rng, m_, q_samples);
  return accept(p_samples, q_samples);
}

}  // namespace duti
