// The single-sample regime of Acharya-Canonne-Tyagi [1]: every node holds
// exactly ONE sample and sends r bits to the referee. Our protocol hashes
// the sample through a shared random bijection of the (power-of-two)
// domain and sends the top r bits; under the uniform distribution the
// bucket values are exactly uniform on 2^r, while an eps-far distribution
// keeps a ~ eps * sqrt(2^r / n) l2 footprint after hashing, which the
// referee detects by collision-counting the k bucket values. This realizes
// the k = Theta(n / (2^{r/2} eps^2)) trade-off the paper's Theorem 6.4
// generalizes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

/// A keyed bijection of {0,...,2^b - 1}: alternating odd-multiply and
/// xor-shift rounds, both invertible mod 2^b. Serves as the protocol's
/// shared randomness.
class SharedHash {
 public:
  SharedHash(unsigned domain_bits, std::uint64_t key);

  [[nodiscard]] std::uint64_t permute(std::uint64_t x) const noexcept;

  /// Top `r` bits of the permuted value: the bucket in [0, 2^r).
  [[nodiscard]] std::uint64_t bucket(std::uint64_t x,
                                     unsigned r) const noexcept;

  [[nodiscard]] unsigned domain_bits() const noexcept { return bits_; }

 private:
  unsigned bits_;
  std::uint64_t mask_;
  std::uint64_t mul1_, mul2_;
  unsigned shift1_, shift2_;
};

class SingleSampleHashTester {
 public:
  struct Config {
    std::uint64_t n = 0;  // must be a power of two
    std::uint64_t k = 0;  // number of nodes == number of samples
    double eps = 0.0;
    unsigned r = 1;  // message bits per node, r <= log2(n)
  };

  /// `shared_seed` keys the shared hash (the shared randomness the model
  /// grants; Theorem 6.1's lower bound holds even with shared randomness).
  SingleSampleHashTester(Config cfg, std::uint64_t shared_seed);

  /// Run: draw one sample per node from `source`, hash, collision-count.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

  /// The referee decision from the k received bucket values.
  [[nodiscard]] bool referee_accept(
      const std::vector<std::uint64_t>& buckets) const;

  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
  SharedHash hash_;
  double threshold_;
};

}  // namespace duti
