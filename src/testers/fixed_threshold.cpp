#include "testers/fixed_threshold.hpp"

#include <cmath>

#include "testers/collision.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace duti {

double poisson_pmf(double lambda, std::uint64_t c) {
  require(lambda >= 0.0, "poisson_pmf: lambda must be >= 0");
  if (lambda == 0.0) return c == 0 ? 1.0 : 0.0;
  // exp(c log(lambda) - lambda - log(c!))
  return std::exp(static_cast<double>(c) * std::log(lambda) - lambda -
                  log_factorial(static_cast<int>(c)));
}

double poisson_upper_tail(double lambda, std::uint64_t c) {
  require(lambda >= 0.0, "poisson_upper_tail: lambda must be >= 0");
  if (lambda == 0.0) return 0.0;
  double pmf = std::exp(-lambda);
  double cdf = pmf;
  for (std::uint64_t i = 1; i <= c; ++i) {
    pmf *= lambda / static_cast<double>(i);
    cdf += pmf;
  }
  return std::max(0.0, 1.0 - cdf);
}

std::uint64_t poisson_upper_quantile(double lambda, double tail) {
  require(lambda >= 0.0, "poisson_upper_quantile: lambda must be >= 0");
  require(tail > 0.0 && tail < 1.0, "poisson_upper_quantile: tail in (0,1)");
  double pmf = std::exp(-lambda);  // P(X = 0)
  double cdf = pmf;
  std::uint64_t c = 0;
  while (1.0 - cdf > tail) {
    ++c;
    pmf *= lambda / static_cast<double>(c);
    cdf += pmf;
    require(c < 1000000, "poisson_upper_quantile: failed to converge");
  }
  return c;
}

FixedThresholdTester::FixedThresholdTester(Config cfg) : cfg_(cfg) {
  require(cfg_.n >= 2, "FixedThresholdTester: n must be >= 2");
  require(cfg_.k >= 1, "FixedThresholdTester: k must be >= 1");
  require(cfg_.q >= 2, "FixedThresholdTester: q must be >= 2");
  require(cfg_.eps > 0.0 && cfg_.eps <= 1.0,
          "FixedThresholdTester: eps in (0,1]");
  require(cfg_.t >= 1 && cfg_.t <= cfg_.k,
          "FixedThresholdTester: T must be in [1, k]");
  require(cfg_.uniform_risk > 0.0 && cfg_.uniform_risk < 0.5,
          "FixedThresholdTester: uniform_risk in (0, 0.5)");

  // Step 1: the largest safe per-player rejection probability, by binary
  // search on the exact binomial tail.
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (binomial_upper_tail(static_cast<int>(cfg_.k), mid,
                            static_cast<int>(cfg_.t)) <= cfg_.uniform_risk) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  p_star_ = lo;

  // Step 2: randomized threshold (c, gamma) realizing p* under the Poisson
  // model of the uniform collision count.
  const double lambda = expected_collision_pairs_uniform(
      static_cast<double>(cfg_.n), cfg_.q);
  c_ = poisson_upper_quantile(lambda, p_star_);
  const double tail_above = poisson_upper_tail(lambda, c_);
  const double at_c = poisson_pmf(lambda, c_);
  gamma_ = at_c > 0.0 ? std::clamp((p_star_ - tail_above) / at_c, 0.0, 1.0)
                      : 0.0;

  // Batched vote: same integer statistic, same boundary bernoulli drawn
  // from the same post-sampling player stream as the legacy player — so
  // randomized boundary votes replay bit-for-bit.
  const std::uint64_t c = c_;
  const double gamma = gamma_;
  exec_.emplace(
      cfg_.k, cfg_.q,
      [c, gamma](unsigned /*j*/, std::uint64_t pairs, Rng& rng) {
        bool reject = pairs > c;
        if (!reject && pairs == c) {
          reject = rng.next_bernoulli(gamma);
        }
        return Message::bit(!reject);
      },
      1U, cfg_.kernel);
  rule_.emplace(DecisionRule::threshold(cfg_.t));
}

SimultaneousProtocol FixedThresholdTester::make_protocol() const {
  const unsigned q = cfg_.q;
  const std::uint64_t c = c_;
  const double gamma = gamma_;
  return SimultaneousProtocol(cfg_.k, cfg_.q, [q, c, gamma](unsigned /*j*/) {
    return std::make_unique<CallbackPlayer>(
        [q, c, gamma](std::span<const std::uint64_t> samples, Rng& rng) {
          require(samples.size() == q, "fixed-threshold voter: wrong q");
          const std::uint64_t count = collision_pairs(samples);
          bool reject = count > c;
          if (!reject && count == c) {
            reject = rng.next_bernoulli(gamma);
          }
          return Message::bit(!reject);
        },
        1U);
  });
}

bool FixedThresholdTester::run(const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "FixedThresholdTester: domain size mismatch");
  return exec_->run(source, rng, *rule_);
}

}  // namespace duti
