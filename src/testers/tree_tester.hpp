// Distributed uniformity testing on multi-hop topologies: every node draws
// q samples, votes on its local collision count, and the votes are summed
// up a BFS spanning tree to a root that applies the threshold rule — the
// LOCAL/CONGEST-model realization of the referee protocols (the models [7]
// studies; the simultaneous-message model is the one-round star case).
// Cost: (tree height + 1) rounds, one O(log k)-bit message per node.
#pragma once

#include <cstdint>

#include "sim/convergecast.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

struct TreeTestResult {
  bool accept = true;
  std::uint64_t reject_votes = 0;
  NetworkStats stats;
};

/// One epoch: every node (root included) draws q samples from `source`,
/// votes reject iff its collision count exceeds `local_threshold`, the
/// votes convergecast to the tree root, and the root rejects iff at least
/// `referee_t` rejections arrived.
[[nodiscard]] TreeTestResult tree_uniformity_test(
    Network& net, const SpanningTree& tree, const SampleSource& source,
    unsigned q, double local_threshold, std::uint64_t referee_t, Rng& rng);

/// A calibrated multi-hop tester mirroring DistributedThresholdTester: the
/// local rule votes at the uniform collision mean, and the root threshold
/// comes from the same calibration (simulate one player on uniform).
class TreeUniformityTester {
 public:
  struct Config {
    std::uint64_t n = 0;
    unsigned q = 0;
    double eps = 0.0;
  };

  /// `net` must outlive the tester; `root` is the decision node.
  TreeUniformityTester(Network& net, NodeId root, Config cfg, Rng& calib_rng,
                       std::size_t calib_trials = 0 /* auto */);

  [[nodiscard]] TreeTestResult run_epoch(const SampleSource& source,
                                         Rng& rng) const;
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const {
    return run_epoch(source, rng).accept;
  }

  [[nodiscard]] const SpanningTree& tree() const noexcept { return tree_; }
  [[nodiscard]] std::uint64_t referee_threshold() const noexcept {
    return referee_t_;
  }
  [[nodiscard]] double local_threshold() const noexcept { return local_t_; }

 private:
  Network* net_;  // not owned
  SpanningTree tree_;
  Config cfg_;
  double local_t_ = 0.0;
  std::uint64_t referee_t_ = 1;
};

}  // namespace duti
