// The r-bit-message tester for Theorem 6.4's regime: each player sends its
// local collision count quantized to r bits, and the referee thresholds
// the *sum*. The quantizer is a saturating window CENTERED at the uniform
// expectation lambda = C(q,2)/n (offset = max(0, ceil(lambda) - 2^{r-1})):
// a plain saturating counter would pin at its maximum on BOTH hypotheses
// once lambda >> 2^r and destroy the signal, making success non-monotone
// in q. With the centered window, r = 1 degenerates to the classic
// "collision count above its uniform mean" vote, and growing r retains
// more and more of the local statistic — the bench measures how many
// samples that saves and compares against Theorem 6.4's 2^{-Theta(r)}.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/protocol.hpp"
#include "sim/protocol_batch.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

class MultibitSumTester {
 public:
  struct Config {
    std::uint64_t n = 0;
    unsigned k = 0;
    unsigned q = 0;
    double eps = 0.0;
    unsigned r = 1;  // message bits per player, in [1, 24]
    // Sampling plane for run(); calibration is always per-sample (see
    // DistributedTesterConfig::kernel).
    SamplingKernel kernel = SamplingKernel::kPerSample;
  };

  /// Calibrates the referee threshold on uniform inputs (see
  /// DistributedThresholdTester for the calibration rationale; memoized
  /// through CalibMemo the same way).
  MultibitSumTester(Config cfg, Rng& calib_rng,
                    std::size_t calib_trials = 0 /* auto */);

  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

  [[nodiscard]] double sum_threshold() const noexcept { return sum_t_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// The centered saturating r-bit encoding of a collision count:
  /// clamp(pairs - offset, 0, 2^r - 1).
  [[nodiscard]] static std::uint32_t encode_count(std::uint64_t pairs,
                                                  unsigned r,
                                                  std::uint64_t offset);

  /// The window offset for this tester's (n, q, r).
  [[nodiscard]] std::uint64_t window_offset() const noexcept {
    return offset_;
  }

  /// Legacy comparator path (bit-identity tests run() against it).
  [[nodiscard]] SimultaneousProtocol make_protocol() const;

  [[nodiscard]] const ProtocolBatchExecutor& executor() const {
    return *exec_;
  }

 private:
  Config cfg_;
  std::uint64_t offset_ = 0;
  double sum_t_ = 0.0;
  std::optional<ProtocolBatchExecutor> exec_;
};

}  // namespace duti
