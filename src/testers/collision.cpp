#include "testers/collision.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/kernels.hpp"
#include "util/math.hpp"

namespace duti {

namespace {
// Reusable sort scratch. These statistics sit in the inner loop of every
// collision/threshold tester trial (once per player per protocol run), so
// a heap allocation per call dominates at small q. One thread_local buffer
// per thread keeps the loop allocation-free and data-race-free under the
// harness's trial sharding.
thread_local std::vector<std::uint64_t> tls_sort_scratch;
}  // namespace

std::uint64_t collision_pairs(std::span<const std::uint64_t> samples) {
  std::vector<std::uint64_t>& sorted = tls_sort_scratch;
  sorted.assign(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t pairs = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t run = 1;
    while (i + run < sorted.size() && sorted[i + run] == sorted[i]) ++run;
    pairs += run * (run - 1) / 2;
    i += run;
  }
  return pairs;
}

std::uint64_t collision_pairs_from_counts(
    std::span<const std::uint64_t> counts) {
  return kernels::collision_pairs_from_counts(counts);
}

std::uint64_t distinct_values_from_counts(
    std::span<const std::uint64_t> counts) {
  return kernels::distinct_from_counts(counts);
}

std::uint64_t distinct_values(std::span<const std::uint64_t> samples) {
  std::vector<std::uint64_t>& sorted = tls_sort_scratch;
  sorted.assign(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return static_cast<std::uint64_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

double l2_norm_squared(const DiscreteDistribution& dist) {
  double acc = 0.0;
  for (double p : dist.pmf_vector()) acc += p * p;
  return acc;
}

double expected_collision_pairs(const DiscreteDistribution& dist,
                                unsigned q) {
  require(q >= 2, "expected_collision_pairs: q must be >= 2");
  const double pairs = 0.5 * static_cast<double>(q) *
                       (static_cast<double>(q) - 1.0);
  return pairs * l2_norm_squared(dist);
}

double expected_collision_pairs_uniform(double n, unsigned q) {
  require(n >= 1.0, "expected_collision_pairs_uniform: n must be >= 1");
  require(q >= 2, "expected_collision_pairs_uniform: q must be >= 2");
  const double pairs = 0.5 * static_cast<double>(q) *
                       (static_cast<double>(q) - 1.0);
  return pairs / n;
}

double far_l2_lower_bound(double n, double eps) {
  require(n >= 1.0, "far_l2_lower_bound: n must be >= 1");
  require(eps >= 0.0 && eps <= 2.0, "far_l2_lower_bound: eps in [0,2]");
  return (1.0 + eps * eps) / n;
}

double collision_variance_uniform(double n, unsigned q) {
  require(n >= 1.0, "collision_variance_uniform: n must be >= 1");
  require(q >= 2, "collision_variance_uniform: q must be >= 2");
  // C = sum over pairs of indicator X_ij with E[X] = 1/n. Under uniform,
  // pairs sharing an index are uncorrelated: P(s_i=s_j and s_i=s_k) = 1/n^2
  // = E[X_ij] E[X_ik]. Hence Var[C] = C(q,2) * (1/n)(1 - 1/n) exactly.
  const double pairs = 0.5 * static_cast<double>(q) *
                       (static_cast<double>(q) - 1.0);
  return pairs * (1.0 / n) * (1.0 - 1.0 / n);
}

}  // namespace duti
