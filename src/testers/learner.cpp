#include "testers/learner.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace duti {

namespace {
/// Clamp negatives to zero and renormalize; fall back to uniform if the
/// estimate degenerates to all-zero.
DiscreteDistribution normalize_estimate(std::vector<double> est) {
  double total = 0.0;
  for (double& v : est) {
    v = std::max(0.0, v);
    total += v;
  }
  if (total <= 0.0) {
    return DiscreteDistribution::uniform(est.size());
  }
  for (double& v : est) v /= total;
  return DiscreteDistribution(std::move(est));
}
}  // namespace

StochasticRoundingLearner::StochasticRoundingLearner(std::uint64_t n,
                                                     std::uint64_t k,
                                                     unsigned q)
    : n_(n), k_(k), q_(q) {
  require(n >= 2, "StochasticRoundingLearner: n must be >= 2");
  require(k >= n, "StochasticRoundingLearner: need k >= n (one node per "
                  "element at minimum)");
  require(q >= 1, "StochasticRoundingLearner: q must be >= 1");
}

DiscreteDistribution StochasticRoundingLearner::learn(
    const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == n_,
          "StochasticRoundingLearner: domain size mismatch");
  std::vector<double> bit_sums(n_, 0.0);
  std::vector<std::uint64_t> node_counts(n_, 0);
  std::vector<std::uint64_t> samples;
  for (std::uint64_t j = 0; j < k_; ++j) {
    const std::uint64_t element = j % n_;
    Rng node_rng = make_rng(rng(), j);
    source.sample_many(node_rng, q_, samples);
    std::uint64_t count = 0;
    for (auto s : samples) {
      if (s == element) ++count;
    }
    // 1-bit message: Bernoulli(count/q), unbiased for mu(element).
    const double p = static_cast<double>(count) / static_cast<double>(q_);
    bit_sums[element] += node_rng.next_bernoulli(p) ? 1.0 : 0.0;
    ++node_counts[element];
  }
  std::vector<double> est(n_, 0.0);
  for (std::uint64_t i = 0; i < n_; ++i) {
    if (node_counts[i] > 0) {
      est[i] = bit_sums[i] / static_cast<double>(node_counts[i]);
    }
  }
  return normalize_estimate(std::move(est));
}

double StochasticRoundingLearner::learn_l1_error(
    const DiscreteDistribution& truth, Rng& rng) const {
  const DistributionSource source(truth);
  const auto learned = learn(source, rng);
  return learned.l1_distance(truth);
}

PresenceBitLearner::PresenceBitLearner(std::uint64_t n, std::uint64_t k,
                                       unsigned q)
    : n_(n), k_(k), q_(q) {
  require(n >= 2, "PresenceBitLearner: n must be >= 2");
  require(k >= n, "PresenceBitLearner: need k >= n (one node per element "
                  "at minimum)");
  require(q >= 1, "PresenceBitLearner: q must be >= 1");
}

double PresenceBitLearner::invert_presence(double p_hat, unsigned q) {
  require(p_hat >= 0.0 && p_hat <= 1.0,
          "invert_presence: p_hat must be in [0,1]");
  require(q >= 1, "invert_presence: q must be >= 1");
  // mu = 1 - (1 - p)^{1/q}; at p = 1 every sample batch hit, so the best
  // estimate within range is 1.
  if (p_hat >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - p_hat, 1.0 / static_cast<double>(q));
}

DiscreteDistribution PresenceBitLearner::learn(const SampleSource& source,
                                               Rng& rng) const {
  require(source.domain_size() == n_,
          "PresenceBitLearner: domain size mismatch");
  std::vector<double> presence_sums(n_, 0.0);
  std::vector<std::uint64_t> node_counts(n_, 0);
  std::vector<std::uint64_t> samples;
  for (std::uint64_t j = 0; j < k_; ++j) {
    const std::uint64_t element = j % n_;
    Rng node_rng = make_rng(rng(), j);
    source.sample_many(node_rng, q_, samples);
    bool present = false;
    for (auto s : samples) {
      if (s == element) {
        present = true;
        break;
      }
    }
    presence_sums[element] += present ? 1.0 : 0.0;
    ++node_counts[element];
  }
  std::vector<double> est(n_, 0.0);
  for (std::uint64_t i = 0; i < n_; ++i) {
    if (node_counts[i] > 0) {
      const double p_hat =
          presence_sums[i] / static_cast<double>(node_counts[i]);
      est[i] = invert_presence(p_hat, q_);
    }
  }
  return normalize_estimate(std::move(est));
}

double PresenceBitLearner::learn_l1_error(const DiscreteDistribution& truth,
                                          Rng& rng) const {
  const DistributionSource source(truth);
  const auto learned = learn(source, rng);
  return learned.l1_distance(truth);
}

GroupedLearner::GroupedLearner(std::uint64_t n, std::uint64_t k, unsigned r)
    : n_(n), k_(k), r_(r), group_size_(1ULL << (r - 1)) {
  require(n >= 2, "GroupedLearner: n must be >= 2");
  require(r >= 1 && r <= 24, "GroupedLearner: r in [1,24]");
  require(n % group_size_ == 0,
          "GroupedLearner: n must be divisible by the group size 2^(r-1)");
  require(k >= n / group_size_,
          "GroupedLearner: need at least one node per group");
}

DiscreteDistribution GroupedLearner::learn(const SampleSource& source,
                                           Rng& rng) const {
  require(source.domain_size() == n_, "GroupedLearner: domain size mismatch");
  const std::uint64_t groups = num_groups();
  std::vector<double> report_counts(n_, 0.0);
  std::vector<std::uint64_t> nodes_per_group(groups, 0);
  for (std::uint64_t j = 0; j < k_; ++j) {
    const std::uint64_t group = j % groups;
    ++nodes_per_group[group];
    Rng node_rng = make_rng(rng(), j);
    const std::uint64_t sample = source.sample(node_rng);
    // Message: r bits — a presence flag plus the (r-1)-bit offset when the
    // sample landed in the node's group.
    if (sample / group_size_ == group) {
      report_counts[sample] += 1.0;
    }
  }
  std::vector<double> est(n_, 0.0);
  for (std::uint64_t i = 0; i < n_; ++i) {
    const std::uint64_t g = i / group_size_;
    if (nodes_per_group[g] > 0) {
      est[i] = report_counts[i] / static_cast<double>(nodes_per_group[g]);
    }
  }
  return normalize_estimate(std::move(est));
}

double GroupedLearner::learn_l1_error(const DiscreteDistribution& truth,
                                      Rng& rng) const {
  const DistributionSource source(truth);
  const auto learned = learn(source, rng);
  return learned.l1_distance(truth);
}

}  // namespace duti
