#include "testers/asymmetric.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "testers/calibration.hpp"
#include "testers/collision.hpp"
#include "util/error.hpp"

namespace duti {

AsymmetricRateTester::AsymmetricRateTester(std::uint64_t n,
                                           std::vector<double> rates,
                                           double tau, Rng& calib_rng,
                                           std::size_t trials_per_player,
                                           SamplingKernel kernel)
    : n_(n), qs_(rates.size()) {
  require(n_ >= 2, "AsymmetricRateTester: n must be >= 2");
  require(!rates.empty(), "AsymmetricRateTester: need at least one player");
  require(tau > 0.0, "AsymmetricRateTester: tau must be positive");
  require(trials_per_player >= 1,
          "AsymmetricRateTester: trials_per_player must be >= 1");
  for (std::size_t j = 0; j < rates.size(); ++j) {
    require(rates[j] > 0.0, "AsymmetricRateTester: rates must be positive");
    qs_[j] =
        static_cast<unsigned>(std::max(2.0, std::ceil(tau * rates[j])));
  }

  // Memo key: the q vector IS the tester identity (rates and tau only
  // matter through it), plus the resolved per-player trial count and the
  // calibration stream's entry state.
  std::ostringstream id;
  id << "asym|n=" << n_ << "|t=" << trials_per_player << "|qs=";
  for (const unsigned q : qs_) id << q << ",";
  id << "|rng=" << calib_rng_tag(calib_rng);
  p_.resize(qs_.size());
  const std::size_t k = qs_.size();
  if (auto payload = CalibMemo::global().lookup(id.str());
      payload && payload->size() == k + 5) {
    for (std::size_t j = 0; j < k; ++j) {
      p_[j] = calib_unpack_double((*payload)[1 + j]);
    }
    calib_rng.set_state(Rng::State{(*payload)[k + 1], (*payload)[k + 2],
                                   (*payload)[k + 3], (*payload)[k + 4]});
  } else {
    // Per-player uniform rejection probabilities by simulation, player 0
    // first — the stream order the memo replays.
    const UniformSource uniform(n_);
    std::vector<std::uint64_t> samples;
    for (std::size_t j = 0; j < k; ++j) {
      const double local_t = expected_collision_pairs_uniform(
          static_cast<double>(n_), qs_[j]);
      std::size_t rejects = 0;
      for (std::size_t t = 0; t < trials_per_player; ++t) {
        uniform.sample_many(calib_rng, qs_[j], samples);
        if (static_cast<double>(tallied_collision_pairs(samples, n_)) >
            local_t) {
          ++rejects;
        }
      }
      p_[j] = static_cast<double>(rejects) /
              static_cast<double>(trials_per_player);
    }
    std::vector<std::uint64_t> fresh;
    fresh.reserve(k + 5);
    fresh.push_back(trials_per_player);
    for (const double p : p_) fresh.push_back(calib_pack_double(p));
    const Rng::State end = calib_rng.state();
    fresh.insert(fresh.end(), {end[0], end[1], end[2], end[3]});
    CalibMemo::global().insert(id.str(), std::move(fresh));
  }

  double mean = 0.0, var = 0.0;
  for (double p : p_) {
    mean += p;
    var += p * (1.0 - p);
  }
  referee_t_ = mean + std::sqrt(std::max(1e-12, var));

  // Per-player local thresholds, resolved once for the vote functor.
  std::vector<double> local_t(k);
  for (std::size_t j = 0; j < k; ++j) {
    local_t[j] = expected_collision_pairs_uniform(static_cast<double>(n_),
                                                  qs_[j]);
  }
  exec_.emplace(
      qs_,
      [local_t = std::move(local_t)](unsigned j, std::uint64_t pairs,
                                     Rng& /*rng*/) {
        return Message::bit(!(static_cast<double>(pairs) > local_t[j]));
      },
      1U, kernel);
  // Same comparison as the original bench referee: it accumulated rejects
  // as a double (exact for any k below 2^53) and accepted on
  // rejects < referee_t_.
  const double referee_t = referee_t_;
  rule_.emplace(DecisionRule::symmetric(
      "asym-sd-sum", [referee_t](std::uint64_t rejects, std::uint64_t /*k*/) {
        return static_cast<double>(rejects) < referee_t;
      }));
}

bool AsymmetricRateTester::run(const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == n_,
          "AsymmetricRateTester: domain size mismatch");
  return exec_->run(source, rng, *rule_);
}

}  // namespace duti
