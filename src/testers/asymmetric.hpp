// The asymmetric-rate tester of Section 6.2, promoted out of bench E10 so
// it runs on the batched protocol plane: player j samples at rate T_j for
// tau time units (q_j = max(2, ceil(tau * T_j))) and votes on its local
// collision count against the per-player uniform expectation; the referee
// rejects when the rejecting-player total reaches one standard deviation
// above its calibrated uniform mean.
//
// The paper's claim (bench E10 measures it): the optimal time budget is
// tau = Theta(sqrt(n) / (eps^2 ||T||_2)) — only the l2 norm of the rate
// vector matters, not its shape.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/decision_rule.hpp"
#include "sim/protocol_batch.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

class AsymmetricRateTester {
 public:
  /// Calibrates per-player uniform rejection probabilities, sequentially
  /// (player 0 first) from the single `calib_rng` stream with
  /// `trials_per_player` simulations each — memoized through CalibMemo
  /// like the other calibrated testers.
  AsymmetricRateTester(std::uint64_t n, std::vector<double> rates, double tau,
                       Rng& calib_rng, std::size_t trials_per_player = 600,
                       SamplingKernel kernel = SamplingKernel::kPerSample);

  /// One protocol execution on the batched plane; true = accept.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] const std::vector<unsigned>& qs() const noexcept {
    return qs_;
  }
  /// Calibrated P(player j rejects | uniform).
  [[nodiscard]] const std::vector<double>& p_reject_uniform() const noexcept {
    return p_;
  }
  /// Referee: reject iff the number of rejecting players reaches this.
  [[nodiscard]] double referee_threshold() const noexcept {
    return referee_t_;
  }

  [[nodiscard]] const ProtocolBatchExecutor& executor() const {
    return *exec_;
  }

 private:
  std::uint64_t n_;
  std::vector<unsigned> qs_;
  std::vector<double> p_;
  double referee_t_ = 1.0;
  std::optional<ProtocolBatchExecutor> exec_;
  std::optional<DecisionRule> rule_;
};

}  // namespace duti
