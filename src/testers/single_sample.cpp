#include "testers/single_sample.hpp"

#include <cmath>

#include "testers/collision.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace duti {

SharedHash::SharedHash(unsigned domain_bits, std::uint64_t key)
    : bits_(domain_bits) {
  require(domain_bits >= 1 && domain_bits <= 63,
          "SharedHash: domain_bits in [1,63]");
  mask_ = (1ULL << bits_) - 1;
  SplitMix64 sm(key);
  mul1_ = sm.next() | 1ULL;  // odd => invertible mod 2^b
  mul2_ = sm.next() | 1ULL;
  shift1_ = 1 + static_cast<unsigned>(sm.next() % std::max(1U, bits_ - 1));
  shift2_ = 1 + static_cast<unsigned>(sm.next() % std::max(1U, bits_ - 1));
}

std::uint64_t SharedHash::permute(std::uint64_t x) const noexcept {
  x = (x * mul1_) & mask_;
  x ^= (x >> shift1_);  // xor with right shift is invertible
  x = (x * mul2_) & mask_;
  x ^= (x >> shift2_);
  return x & mask_;
}

std::uint64_t SharedHash::bucket(std::uint64_t x, unsigned r) const noexcept {
  return permute(x) >> (bits_ - r);
}

SingleSampleHashTester::SingleSampleHashTester(Config cfg,
                                               std::uint64_t shared_seed)
    : cfg_(cfg),
      hash_(cfg.n > 1 ? floor_log2(cfg.n) : 1, shared_seed),
      threshold_(0.0) {
  require(cfg_.n >= 2 && is_pow2(cfg_.n),
          "SingleSampleHashTester: n must be a power of two >= 2");
  require(cfg_.k >= 2, "SingleSampleHashTester: need k >= 2 nodes");
  require(cfg_.eps > 0.0 && cfg_.eps <= 1.0,
          "SingleSampleHashTester: eps in (0,1]");
  require(cfg_.r >= 1 && cfg_.r <= hash_.domain_bits(),
          "SingleSampleHashTester: r must be in [1, log2(n)]");
  // Under uniform input the buckets are exactly uniform on 2^r; the pair
  // collision count has mean C(k,2)/2^r and variance C(k,2)(1/2^r)(1-1/2^r)
  // (pairs sharing a node are uncorrelated under uniform). One-sided
  // threshold at mean + sd.
  const double buckets = std::ldexp(1.0, static_cast<int>(cfg_.r));
  const double kd = static_cast<double>(cfg_.k);
  const double pairs = 0.5 * kd * (kd - 1.0);
  const double mean_u = pairs / buckets;
  const double var_u = pairs * (1.0 / buckets) * (1.0 - 1.0 / buckets);
  threshold_ = mean_u + std::sqrt(var_u);
}

bool SingleSampleHashTester::referee_accept(
    const std::vector<std::uint64_t>& buckets) const {
  require(buckets.size() == cfg_.k,
          "SingleSampleHashTester: expected one bucket per node");
  return static_cast<double>(collision_pairs(buckets)) < threshold_;
}

bool SingleSampleHashTester::run(const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "SingleSampleHashTester: domain size mismatch");
  std::vector<std::uint64_t> buckets(cfg_.k);
  for (auto& b : buckets) {
    b = hash_.bucket(source.sample(rng), cfg_.r);
  }
  return referee_accept(buckets);
}

}  // namespace duti
