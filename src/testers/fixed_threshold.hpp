// The T-threshold tester family of Theorem 1.3: the referee's threshold T
// is FORCED (it is the resource under study), and the players adopt the
// most aggressive local rule that keeps the uniform side safe:
//
//   1. Find the largest per-player rejection probability p* such that
//      P(Bin(k, p*) >= T) stays below a risk budget (uniform-side error).
//   2. Realize p* exactly with a RANDOMIZED collision threshold (c, gamma):
//      reject when the local collision count exceeds c, and with
//      probability gamma when it equals c (the Poisson model of the count
//      supplies the quantile).
//
// T = 1 recovers an AND-rule tester; large T approaches the calibrated
// threshold tester. The randomized threshold matters: without it, integer
// quantization of the local rule wastes almost the entire rejection budget
// at moderate T.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/protocol.hpp"
#include "sim/protocol_batch.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

/// Smallest integer c >= 0 with P(Poisson(lambda) > c) <= tail.
[[nodiscard]] std::uint64_t poisson_upper_quantile(double lambda,
                                                   double tail);

/// P(Poisson(lambda) > c) and P(Poisson(lambda) = c).
[[nodiscard]] double poisson_upper_tail(double lambda, std::uint64_t c);
[[nodiscard]] double poisson_pmf(double lambda, std::uint64_t c);

class FixedThresholdTester {
 public:
  struct Config {
    std::uint64_t n = 0;
    unsigned k = 0;
    unsigned q = 0;
    double eps = 0.0;
    std::uint64_t t = 1;       // referee: reject iff >= T players reject
    double uniform_risk = 0.2;  // budget for P(false global reject)
    // Sampling plane for run() (see DistributedTesterConfig::kernel).
    SamplingKernel kernel = SamplingKernel::kPerSample;
  };

  explicit FixedThresholdTester(Config cfg);

  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

  /// The per-player rejection probability the local rule is tuned to
  /// (under the Poisson model of the uniform collision count).
  [[nodiscard]] double local_reject_probability() const noexcept {
    return p_star_;
  }
  /// Deterministic part of the randomized threshold: reject when count > c.
  [[nodiscard]] std::uint64_t local_count_threshold() const noexcept {
    return c_;
  }
  /// Randomized part: rejection probability when count == c.
  [[nodiscard]] double local_boundary_gamma() const noexcept { return gamma_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  [[nodiscard]] SimultaneousProtocol make_protocol() const;
  [[nodiscard]] DecisionRule make_rule() const {
    return DecisionRule::threshold(cfg_.t);
  }

  [[nodiscard]] const ProtocolBatchExecutor& executor() const {
    return *exec_;
  }

 private:
  Config cfg_;
  double p_star_ = 0.0;
  std::uint64_t c_ = 0;
  double gamma_ = 0.0;
  std::optional<ProtocolBatchExecutor> exec_;
  std::optional<DecisionRule> rule_;
};

}  // namespace duti
