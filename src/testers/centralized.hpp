// Centralized uniformity testers — the q = Theta(sqrt(n)/eps^2) baseline
// [Goldreich-Ron'00, Paninski'08] that every distributed tester is compared
// against (bench E8, and the "one node draws everything" strawman of the
// introduction).
#pragma once

#include <cstdint>
#include <span>

#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

// SamplingKernel now lives beside SampleSource (sim/sample_source.hpp,
// re-exported here through that include) so the distributed protocol plane
// can share the flag without a testers-layer dependency.

/// Collision-count tester: accept iff the pair-collision count among the q
/// samples is below the midpoint between the uniform expectation
/// C(q,2)/n and the far-case floor C(q,2)(1+eps^2)/n.
class CentralizedCollisionTester {
 public:
  /// Tester for universe size n and proximity eps, using q samples.
  CentralizedCollisionTester(std::uint64_t n, double eps, unsigned q,
                             SamplingKernel kernel = SamplingKernel::kPerSample);

  /// Number of samples sufficient for constant (2/3) success, with the
  /// constant `c` in q = c * sqrt(n)/eps^2 (empirically c ~ 3 suffices).
  [[nodiscard]] static unsigned sufficient_q(std::uint64_t n, double eps,
                                             double c = 3.0);

  [[nodiscard]] unsigned q() const noexcept { return q_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] SamplingKernel kernel() const noexcept { return kernel_; }

  /// Decide from an explicit sample vector: true = accept (looks uniform).
  [[nodiscard]] bool accept(std::span<const std::uint64_t> samples) const;

  /// Decide from a per-element histogram of the q draws.
  [[nodiscard]] bool accept_counts(std::span<const std::uint64_t> counts) const;

  /// Draw q samples from `source` (via the configured kernel) and decide.
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

 private:
  std::uint64_t n_;
  double eps_;
  unsigned q_;
  double threshold_;
  SamplingKernel kernel_;
};

/// Paninski's coincidence tester: with q <= sqrt(n) samples most values are
/// distinct; accept iff the number of *distinct* values is above a
/// threshold between the uniform and far expectations. Kept as an
/// independent baseline; both testers agree on who wins in every bench.
class PaninskiCoincidenceTester {
 public:
  PaninskiCoincidenceTester(std::uint64_t n, double eps, unsigned q,
                            SamplingKernel kernel = SamplingKernel::kPerSample);

  [[nodiscard]] unsigned q() const noexcept { return q_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] SamplingKernel kernel() const noexcept { return kernel_; }

  [[nodiscard]] bool accept(std::span<const std::uint64_t> samples) const;
  [[nodiscard]] bool accept_counts(std::span<const std::uint64_t> counts) const;
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

 private:
  std::uint64_t n_;
  double eps_;
  unsigned q_;
  double threshold_;
  SamplingKernel kernel_;
};

/// Chi-squared-style tester [Diakonikolas-Kane'16 / DGPP'18 flavour]:
/// the statistic sum_a ((c_a - q/n)^2 - c_a) / (q/n) over element counts
/// c_a has mean q n ||mu - U||_2^2 - n ||mu||_2^2 (= -1 under uniform,
/// >= q eps^2 - 1 - eps^2 when eps-far) and variance ~ 2n under uniform,
/// so it separates at q = O(sqrt(n)/eps^2) like the collision tester but
/// with a smaller constant in the dense regime (compared in bench E8).
class ChiSquaredTester {
 public:
  ChiSquaredTester(std::uint64_t n, double eps, unsigned q,
                   SamplingKernel kernel = SamplingKernel::kPerSample);

  [[nodiscard]] unsigned q() const noexcept { return q_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] SamplingKernel kernel() const noexcept { return kernel_; }

  /// The statistic itself (exposed for tests).
  [[nodiscard]] double statistic(std::span<const std::uint64_t> samples) const;

  /// The statistic from a per-element histogram of the q draws.
  [[nodiscard]] double statistic_from_counts(
      std::span<const std::uint64_t> counts) const;

  [[nodiscard]] bool accept(std::span<const std::uint64_t> samples) const;
  [[nodiscard]] bool accept_counts(std::span<const std::uint64_t> counts) const;
  [[nodiscard]] bool run(const SampleSource& source, Rng& rng) const;

 private:
  std::uint64_t n_;
  double eps_;
  unsigned q_;
  double threshold_;
  SamplingKernel kernel_;
};

}  // namespace duti
