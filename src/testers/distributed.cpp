#include "testers/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "testers/calibration.hpp"
#include "testers/collision.hpp"
#include "util/confidence.hpp"
#include "util/error.hpp"

namespace duti {

namespace {

void check_config(const DistributedTesterConfig& cfg) {
  require(cfg.n >= 2, "DistributedTester: n must be >= 2");
  require(cfg.k >= 1, "DistributedTester: k must be >= 1");
  require(cfg.q >= 2, "DistributedTester: q must be >= 2 (collisions)");
  require(cfg.eps > 0.0 && cfg.eps <= 1.0, "DistributedTester: eps in (0,1]");
}

// The collision voter as a batched vote functor: reject iff the exact pair
// count strictly exceeds the local threshold. Same integer statistic and
// same double comparison as make_collision_voters, so the batched plane's
// votes are bit-identical to the legacy players'.
ProtocolBatchExecutor::Vote collision_vote(double local_threshold) {
  return [local_threshold](unsigned /*j*/, std::uint64_t pairs, Rng& /*rng*/) {
    return Message::bit(!(static_cast<double>(pairs) > local_threshold));
  };
}

}  // namespace

SimultaneousProtocol::PlayerFactory make_collision_voters(
    unsigned q, double local_threshold) {
  return [q, local_threshold](unsigned /*j*/) {
    return std::make_unique<CallbackPlayer>(
        [q, local_threshold](std::span<const std::uint64_t> samples,
                             Rng& /*rng*/) {
          require(samples.size() == q, "collision voter: wrong sample count");
          const bool reject =
              static_cast<double>(collision_pairs(samples)) > local_threshold;
          return Message::bit(!reject);
        },
        1U);
  };
}

DistributedThresholdTester::DistributedThresholdTester(
    DistributedTesterConfig cfg, Rng& calib_rng, std::size_t calib_trials)
    : cfg_(cfg) {
  check_config(cfg_);
  // Local rule: reject iff the collision count exceeds its uniform mean.
  local_t_ = expected_collision_pairs_uniform(static_cast<double>(cfg_.n),
                                              cfg_.q);

  // Calibrate p_u = P(player rejects | uniform) by simulating independent
  // players; the referee threshold must dominate binomial noise over k
  // players, so use at least ~30k trials.
  if (calib_trials == 0) {
    calib_trials = std::max<std::size_t>(4000, 30ULL * cfg_.k);
  }
  // Memo key: the RESOLVED trial count (so auto and explicit constructions
  // cannot alias) plus the calibration stream's entry state. k is omitted
  // on purpose — p_u is a single-player statistic, so testers differing
  // only in k (same resolved trials) legitimately share a calibration.
  std::ostringstream id;
  id << "thr|n=" << cfg_.n << "|q=" << cfg_.q << "|eps="
     << calib_pack_double(cfg_.eps) << "|t=" << calib_trials << "|rng="
     << calib_rng_tag(calib_rng);
  std::uint64_t reject_count = 0;
  if (auto payload = CalibMemo::global().lookup(id.str());
      payload && payload->size() == 6) {
    reject_count = (*payload)[0];
    // Restore the stream's exit state: the caller's RNG advances exactly
    // as if the calibration loop had run.
    calib_rng.set_state(
        Rng::State{(*payload)[2], (*payload)[3], (*payload)[4], (*payload)[5]});
  } else {
    const UniformSource uniform(cfg_.n);
    std::vector<std::uint64_t> samples;
    for (std::size_t t = 0; t < calib_trials; ++t) {
      uniform.sample_many(calib_rng, cfg_.q, samples);
      // tallied_collision_pairs == collision_pairs on every input; the
      // tally plane just skips the per-trial sort.
      if (static_cast<double>(tallied_collision_pairs(samples, cfg_.n)) >
          local_t_) {
        ++reject_count;
      }
    }
    const Rng::State end = calib_rng.state();
    CalibMemo::global().insert(
        id.str(),
        {reject_count, calib_trials, end[0], end[1], end[2], end[3]});
  }
  p_u_ = static_cast<double>(reject_count) / static_cast<double>(calib_trials);

  // Referee: reject iff #rejecting players >= T, with T one standard
  // deviation above the uniform mean (uniform-side error ~ 16% < 1/3).
  const double kd = static_cast<double>(cfg_.k);
  const double mean_u = kd * p_u_;
  const double sd_u = std::sqrt(std::max(1e-12, kd * p_u_ * (1.0 - p_u_)));
  referee_t_ = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(mean_u + sd_u + 1e-9)));

  exec_.emplace(cfg_.k, cfg_.q, collision_vote(local_t_), 1U, cfg_.kernel);
  rule_.emplace(DecisionRule::threshold(referee_t_));
}

SimultaneousProtocol DistributedThresholdTester::make_protocol() const {
  return SimultaneousProtocol(cfg_.k, cfg_.q,
                              make_collision_voters(cfg_.q, local_t_));
}

DecisionRule DistributedThresholdTester::make_rule() const {
  return DecisionRule::threshold(referee_t_);
}

bool DistributedThresholdTester::run(const SampleSource& source,
                                     Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "DistributedThresholdTester: domain size mismatch");
  return exec_->run(source, rng, *rule_);
}

DistributedAndTester::DistributedAndTester(DistributedTesterConfig cfg)
    : cfg_(cfg) {
  check_config(cfg_);
  // Per-player false-alarm budget 1/(3k): with lambda = C(q,2)/n, a
  // Poisson-style upper tail P(C >= lambda + t) <= exp(-t^2/(2(lambda+t/3)))
  // gives t = sqrt(2 lambda L) + L for L = ln(3k). No calibration needed;
  // the bound is conservative, which only helps the uniform side.
  const double lambda = expected_collision_pairs_uniform(
      static_cast<double>(cfg_.n), cfg_.q);
  const double big_l = std::log(3.0 * static_cast<double>(cfg_.k));
  local_t_ = lambda + std::sqrt(2.0 * lambda * big_l) + big_l;

  exec_.emplace(cfg_.k, cfg_.q, collision_vote(local_t_), 1U, cfg_.kernel);
  rule_.emplace(DecisionRule::and_rule());
}

SimultaneousProtocol DistributedAndTester::make_protocol() const {
  return SimultaneousProtocol(cfg_.k, cfg_.q,
                              make_collision_voters(cfg_.q, local_t_));
}

bool DistributedAndTester::run(const SampleSource& source, Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "DistributedAndTester: domain size mismatch");
  return exec_->run(source, rng, *rule_);
}

}  // namespace duti
