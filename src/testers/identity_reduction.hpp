// Reduction from identity testing to uniformity testing [Goldreich'16]:
// uniformity is complete for testing equality to ANY fixed distribution eta
// (the property the paper's abstract highlights). Samples from the unknown
// mu are mapped through a bucket expansion built from eta; if mu = eta the
// mapped samples are (near-)uniform on the expanded domain, and l1 distance
// is preserved up to the rounding granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/discrete_distribution.hpp"
#include "sim/sample_source.hpp"
#include "util/rng.hpp"

namespace duti {

class IdentityReduction {
 public:
  /// Expand to a domain of `expanded_size` cells; bucket i gets
  /// round(eta_i * expanded_size) cells (largest-remainder apportionment,
  /// so the cell counts sum exactly to expanded_size and every bucket with
  /// eta_i > 0 gets at least one cell).
  IdentityReduction(DiscreteDistribution eta, std::uint64_t expanded_size);

  /// Map one sample of the original domain to a uniformly random cell of
  /// its bucket.
  [[nodiscard]] std::uint64_t map(std::uint64_t element, Rng& rng) const;

  [[nodiscard]] std::uint64_t expanded_size() const noexcept {
    return expanded_size_;
  }
  [[nodiscard]] std::uint64_t bucket_size(std::uint64_t element) const {
    return sizes_.at(element);
  }

  /// The exact pmf of the mapped distribution when the input is `mu`
  /// (for tests): cell j in bucket i has mass mu_i / size_i.
  [[nodiscard]] DiscreteDistribution mapped_distribution(
      const DiscreteDistribution& mu) const;

  /// Worst-case extra l1 distance introduced by rounding, i.e. the l1
  /// distance between mapped(eta) and exact uniform.
  [[nodiscard]] double rounding_error() const;

 private:
  DiscreteDistribution eta_;
  std::uint64_t expanded_size_;
  std::vector<std::uint64_t> sizes_;   // cells per bucket
  std::vector<std::uint64_t> starts_;  // first cell of each bucket
};

/// SampleSource adapter: samples the inner source and maps each draw
/// through the reduction, so any uniformity tester can test identity.
class ReducedSource final : public SampleSource {
 public:
  ReducedSource(const SampleSource& inner, const IdentityReduction& reduction)
      : inner_(&inner), reduction_(&reduction) {}

  [[nodiscard]] std::uint64_t sample(Rng& rng) const override {
    return reduction_->map(inner_->sample(rng), rng);
  }
  [[nodiscard]] std::uint64_t domain_size() const override {
    return reduction_->expanded_size();
  }
  /// Not exact (depends on the inner distribution); reported as unknown.
  [[nodiscard]] double l1_from_uniform() const override { return -1.0; }

 private:
  const SampleSource* inner_;         // not owned
  const IdentityReduction* reduction_;  // not owned
};

}  // namespace duti
