// Memoized referee calibration (DESIGN.md §14). The distributed testers
// that calibrate empirically (threshold, multibit, asymmetric) burn
// thousands of protocol trials in their CONSTRUCTORS — and sweeps, dual
// adaptive/full probes, and warm-start reruns rebuild the same tester for
// the same (n, k, q, eps, calib_trials, seed) many times over. The memo
// caches the calibration RESULT keyed by the full construction identity.
//
// Deterministic-RNG accounting is preserved exactly: the memo key embeds
// the calibration RNG's ENTRY state, and the payload carries its EXIT
// state, which is restored on a hit — so a memoized construction leaves
// the caller's RNG (and therefore every downstream draw) bit-identical to
// a fresh construction. Keys also embed the RESOLVED trial count, so
// `calib_trials = 0 /* auto */` and the equivalent explicit count can
// never alias to different results (the resolution rule could change).
//
// Process-wide and thread-safe. Cross-process persistence is layered on
// top via install_hooks: the stats layer (which owns the ProbeCache
// session files) registers load/store callbacks here — a dependency
// inversion, because testers/ sits below stats/ and cannot include it.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace duti {

/// Round-trip doubles through the integer payload bit-exactly.
[[nodiscard]] inline std::uint64_t calib_pack_double(double x) {
  return std::bit_cast<std::uint64_t>(x);
}
[[nodiscard]] inline double calib_unpack_double(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}

/// Hex tag of the RNG's four state words, for embedding the calibration
/// stream's entry state in a memo id.
[[nodiscard]] std::string calib_rng_tag(const Rng& rng);

class CalibMemo {
 public:
  /// Hooks for a persistence backend (installed by the stats layer).
  /// `load` returns the payload for an id, or nullopt; `store` records it.
  struct Hooks {
    std::function<std::optional<std::vector<std::uint64_t>>(
        const std::string& id)>
        load;
    std::function<void(const std::string& id,
                       const std::vector<std::uint64_t>& payload)>
        store;
  };

  struct Stats {
    std::uint64_t hits = 0;      // in-memory map hits
    std::uint64_t loads = 0;     // misses served by the persistence hook
    std::uint64_t misses = 0;    // full recomputations
    std::uint64_t inserts = 0;   // results recorded
  };

  /// The process-wide memo used by the testers.
  [[nodiscard]] static CalibMemo& global();

  /// Payload for `id`, consulting memory then the load hook. Hook results
  /// are promoted into memory so repeat lookups are map hits.
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> lookup(
      const std::string& id);

  /// Record a freshly computed payload (and forward to the store hook).
  void insert(const std::string& id, std::vector<std::uint64_t> payload);

  /// Install (or clear, with default-constructed Hooks) the persistence
  /// backend. Replaces any previous hooks.
  void install_hooks(Hooks hooks);

  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Drop all memoized entries (tests; keeps hooks and stats).
  void clear();

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<std::uint64_t>> map_;
  Hooks hooks_;
  Stats stats_;
};

}  // namespace duti
