#include "testers/tree_tester.hpp"

#include <algorithm>
#include <cmath>

#include "testers/collision.hpp"
#include "util/confidence.hpp"
#include "util/error.hpp"

namespace duti {

TreeTestResult tree_uniformity_test(Network& net, const SpanningTree& tree,
                                    const SampleSource& source, unsigned q,
                                    double local_threshold,
                                    std::uint64_t referee_t, Rng& rng) {
  require(q >= 2, "tree_uniformity_test: q must be >= 2");
  // Every node (including the root, which also holds samples) votes.
  std::vector<std::uint64_t> votes(net.num_nodes(), 0);
  std::vector<std::uint64_t> samples;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    Rng node_rng = make_rng(rng(), v);
    source.sample_many(node_rng, q, samples);
    votes[v] =
        static_cast<double>(collision_pairs(samples)) > local_threshold ? 1
                                                                        : 0;
  }
  // Reject-vote partial sums fit in ceil(log2(k+1)) bits per message.
  std::uint64_t bits = 1;
  while ((1ULL << bits) < net.num_nodes() + 1) ++bits;
  const auto cast = convergecast_sum(net, tree, votes, bits, rng);
  TreeTestResult result;
  result.reject_votes = cast.root_sum;
  result.accept = cast.root_sum < referee_t;
  result.stats = cast.stats;
  return result;
}

TreeUniformityTester::TreeUniformityTester(Network& net, NodeId root,
                                           Config cfg, Rng& calib_rng,
                                           std::size_t calib_trials)
    : net_(&net), tree_(bfs_spanning_tree(net, root)), cfg_(cfg) {
  require(cfg_.n >= 2, "TreeUniformityTester: n must be >= 2");
  require(cfg_.q >= 2, "TreeUniformityTester: q must be >= 2");
  require(cfg_.eps > 0.0 && cfg_.eps <= 1.0,
          "TreeUniformityTester: eps in (0,1]");
  local_t_ = expected_collision_pairs_uniform(static_cast<double>(cfg_.n),
                                              cfg_.q);
  const std::uint32_t k = net.num_nodes();
  if (calib_trials == 0) {
    calib_trials = std::max<std::size_t>(4000, 30ULL * k);
  }
  const UniformSource uniform(cfg_.n);
  std::vector<std::uint64_t> samples;
  SuccessCounter rejects;
  for (std::size_t t = 0; t < calib_trials; ++t) {
    uniform.sample_many(calib_rng, cfg_.q, samples);
    rejects.record(static_cast<double>(collision_pairs(samples)) > local_t_);
  }
  const double p_u = rejects.rate();
  const double kd = static_cast<double>(k);
  const double sd_u = std::sqrt(std::max(1e-12, kd * p_u * (1.0 - p_u)));
  referee_t_ = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(kd * p_u + sd_u + 1e-9)));
}

TreeTestResult TreeUniformityTester::run_epoch(const SampleSource& source,
                                               Rng& rng) const {
  require(source.domain_size() == cfg_.n,
          "TreeUniformityTester: domain size mismatch");
  return tree_uniformity_test(*net_, tree_, source, cfg_.q, local_t_,
                              referee_t_, rng);
}

}  // namespace duti
