#include "stats/probe_cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace duti {

namespace {

// FNV-1a, 64-bit: stable across platforms and runs (unlike std::hash).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_string(std::uint64_t& h, const std::string& s) {
  const std::uint64_t len = s.size();
  fnv_bytes(h, &len, sizeof(len));  // length prefix: no field-concat aliasing
  fnv_bytes(h, s.data(), s.size());
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  fnv_bytes(h, &v, sizeof(v));
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Locate `"name":` in `line` and return the index just past the colon, or
// npos. Good enough for records this code itself writes; anything else is
// treated as corrupt and skipped.
std::size_t find_field(const std::string& line, const char* name) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool parse_u64_field(const std::string& line, const char* name,
                     std::uint64_t& out) {
  const std::size_t at = find_field(line, name);
  if (at == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(line.c_str() + at, &end, 10);
  if (end == line.c_str() + at || errno != 0) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_string_field(const std::string& line, const char* name,
                        std::string& out) {
  std::size_t at = find_field(line, name);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return false;
  }
  ++at;
  out.clear();
  while (at < line.size()) {
    const char c = line[at];
    if (c == '"') return true;
    if (c == '\\') {
      if (at + 1 >= line.size()) return false;
      const char esc = line[at + 1];
      if (esc == '"' || esc == '\\') {
        out += esc;
        at += 2;
        continue;
      }
      if (esc == 'u' && at + 5 < line.size()) {
        const std::string hex = line.substr(at + 2, 4);
        char* end = nullptr;
        const unsigned long code = std::strtoul(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || code > 0xFF) return false;
        out += static_cast<char>(code);
        at += 6;
        continue;
      }
      return false;
    }
    out += c;
    ++at;
  }
  return false;  // unterminated string
}

std::string serialize_record(const ProbeKey& key, const ProbeResult& r) {
  std::string out = "{\"workload\":";
  append_json_string(out, key.workload);
  out += ",\"tester\":";
  append_json_string(out, key.tester);
  std::ostringstream rest;
  rest << ",\"param\":" << key.param << ",\"trials\":" << key.trials
       << ",\"seed\":" << key.seed << ",\"flavor\":";
  out += rest.str();
  append_json_string(out, key.flavor);
  std::ostringstream tail;
  tail << ",\"ver\":" << key.engine_version << ",\"us\":"
       << r.uniform_successes << ",\"fs\":" << r.far_successes
       << ",\"t\":" << r.trials << ",\"budget\":" << r.budget
       << ",\"stop\":" << static_cast<unsigned>(r.stop)
       << ",\"uaq\":" << r.uniform_aborts_quorum
       << ",\"uat\":" << r.uniform_aborts_timeout
       << ",\"faq\":" << r.far_aborts_quorum
       << ",\"fat\":" << r.far_aborts_timeout << "}";
  out += tail.str();
  return out;
}

bool parse_record(const std::string& line, ProbeKey& key, ProbeResult& result) {
  std::uint64_t stop_raw = 0;
  std::uint64_t us = 0;
  std::uint64_t fs = 0;
  std::uint64_t t = 0;
  std::uint64_t budget = 0;
  if (!parse_string_field(line, "workload", key.workload) ||
      !parse_string_field(line, "tester", key.tester) ||
      !parse_string_field(line, "flavor", key.flavor) ||
      !parse_u64_field(line, "param", key.param) ||
      !parse_u64_field(line, "trials", key.trials) ||
      !parse_u64_field(line, "seed", key.seed) ||
      !parse_u64_field(line, "ver", key.engine_version) ||
      !parse_u64_field(line, "us", us) || !parse_u64_field(line, "fs", fs) ||
      !parse_u64_field(line, "t", t) ||
      !parse_u64_field(line, "budget", budget) ||
      !parse_u64_field(line, "stop", stop_raw) || stop_raw > 2) {
    return false;
  }
  result =
      probe_result_from_tallies(us, fs, t, budget,
                                static_cast<ProbeStop>(stop_raw));
  if (!parse_u64_field(line, "uaq", result.uniform_aborts_quorum) ||
      !parse_u64_field(line, "uat", result.uniform_aborts_timeout) ||
      !parse_u64_field(line, "faq", result.far_aborts_quorum) ||
      !parse_u64_field(line, "fat", result.far_aborts_timeout)) {
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t ProbeKey::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_string(h, workload);
  fnv_string(h, tester);
  fnv_u64(h, param);
  fnv_u64(h, trials);
  fnv_u64(h, seed);
  fnv_string(h, flavor);
  fnv_u64(h, engine_version);
  return h;
}

ProbeCache::ProbeCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode) {
  if (!enabled()) return;
  path_ = (std::filesystem::path(dir_) / "probes.jsonl").string();
  if (mode_ == CacheMode::kReadWrite) {
    std::filesystem::create_directories(dir_);
  }
  load();
}

void ProbeCache::load() {
  std::ifstream in(path_);
  if (!in) return;  // no file yet: empty cache
  std::string line;
  while (std::getline(in, line)) {
    Record rec;
    if (!parse_record(line, rec.key, rec.result)) continue;  // torn/corrupt
    index_[rec.key.fingerprint()].push_back(std::move(rec));
  }
}

ProbeCache& ProbeCache::global() {
  static ProbeCache cache = [] {
    const char* mode_env = std::getenv("DUTI_CACHE");
    const std::string mode_str = mode_env == nullptr ? "off" : mode_env;
    CacheMode mode = CacheMode::kOff;
    if (mode_str == "off" || mode_str.empty()) {
      mode = CacheMode::kOff;
    } else if (mode_str == "readonly") {
      mode = CacheMode::kReadOnly;
    } else if (mode_str == "rw") {
      mode = CacheMode::kReadWrite;
    } else {
      throw InvalidArgument("DUTI_CACHE must be off|readonly|rw, got \"" +
                            mode_str + "\"");
    }
    const char* dir_env = std::getenv("DUTI_CACHE_DIR");
    const std::string dir = dir_env == nullptr ? ".duti_cache" : dir_env;
    return ProbeCache(dir, mode);
  }();
  return cache;
}

std::optional<ProbeResult> ProbeCache::lookup(const ProbeKey& key) {
  if (!enabled()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key.fingerprint());
  if (it != index_.end()) {
    for (const Record& rec : it->second) {
      if (rec.key == key) {
        ++stats_.hits;
        return rec.result;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ProbeCache::insert(const ProbeKey& key, const ProbeResult& result) {
  if (mode_ != CacheMode::kReadWrite) return;
  const std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_, std::ios::app);
  if (out) {
    out << serialize_record(key, result) << '\n';
  }
  index_[key.fingerprint()].push_back(Record{key, result});
  ++stats_.inserts;
}

ProbeResult ProbeCache::get_or_compute(
    const ProbeKey& key, const std::function<ProbeResult()>& compute) {
  if (const std::optional<ProbeResult> hit = lookup(key)) return *hit;
  ProbeResult fresh = compute();
  insert(key, fresh);
  return fresh;
}

CacheStats ProbeCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ProbeCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

std::size_t ProbeCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [fp, recs] : index_) n += recs.size();
  return n;
}

std::string adaptive_flavor(const AdaptiveProbeConfig& cfg) {
  std::ostringstream os;
  os << "adaptive:b=" << cfg.batch << ":target=" << cfg.target
     << ":delta=" << cfg.delta << ":min=" << cfg.min_trials;
  return os.str();
}

ProbeResult probe_success_cached(ProbeCache& cache, ProbeKey key,
                                 const TesterRun& tester,
                                 const SourceSpec& uniform_source,
                                 const SourceSpec& far_source,
                                 std::size_t trials, std::uint64_t seed,
                                 ThreadPool& pool) {
  key.trials = trials;
  key.seed = seed;
  key.flavor = "full";
  key.engine_version = kProbeEngineVersion;
  return cache.get_or_compute(key, [&] {
    return probe_success(tester, uniform_source, far_source, trials, seed,
                         pool);
  });
}

ProbeResult probe_success_cached(ProbeCache& cache, ProbeKey key,
                                 const TesterRun& tester,
                                 const SourceSpec& uniform_source,
                                 const SourceSpec& far_source,
                                 std::size_t trials, std::uint64_t seed) {
  return probe_success_cached(cache, std::move(key), tester, uniform_source,
                              far_source, trials, seed, ThreadPool::global());
}

ProbeResult probe_success_adaptive_cached(
    ProbeCache& cache, ProbeKey key, const TesterRun& tester,
    const SourceSpec& uniform_source, const SourceSpec& far_source,
    std::size_t max_trials, std::uint64_t seed, const AdaptiveProbeConfig& cfg,
    ThreadPool& pool) {
  key.trials = max_trials;
  key.seed = seed;
  key.flavor = adaptive_flavor(cfg);
  key.engine_version = kProbeEngineVersion;
  return cache.get_or_compute(key, [&] {
    return probe_success_adaptive(tester, uniform_source, far_source,
                                  max_trials, seed, cfg, pool);
  });
}

ProbeResult probe_success_adaptive_cached(ProbeCache& cache, ProbeKey key,
                                          const TesterRun& tester,
                                          const SourceSpec& uniform_source,
                                          const SourceSpec& far_source,
                                          std::size_t max_trials,
                                          std::uint64_t seed,
                                          const AdaptiveProbeConfig& cfg) {
  return probe_success_adaptive_cached(cache, std::move(key), tester,
                                       uniform_source, far_source, max_trials,
                                       seed, cfg, ThreadPool::global());
}

}  // namespace duti
