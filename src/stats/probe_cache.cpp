#include "stats/probe_cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "stats/calibration_persist.hpp"
#include "util/error.hpp"
#include "util/fnv.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DUTI_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace duti {

namespace {

/// Advisory exclusive lock on a lockfile, held for the object's lifetime.
/// flock (not O_EXCL sentinel files) on purpose: the kernel releases the
/// lock when the holder dies, so a SIGKILL'd writer cannot wedge every
/// future cache user. On platforms without flock this degrades to
/// lock-free appends (framing still detects any interleaving damage).
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
#ifdef DUTI_HAVE_FLOCK
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
#else
    (void)path;
    fd_ = 0;  // pretend held; framing is the only protection
#endif
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock() {
#ifdef DUTI_HAVE_FLOCK
    if (fd_ >= 0) ::close(fd_);  // closing releases the flock
#endif
  }
  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Locate `"name":` in `line` and return the index just past the colon, or
// npos. Good enough for records this code itself writes; anything else is
// treated as corrupt and skipped.
std::size_t find_field(const std::string& line, const char* name) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool parse_u64_field(const std::string& line, const char* name,
                     std::uint64_t& out) {
  const std::size_t at = find_field(line, name);
  if (at == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(line.c_str() + at, &end, 10);
  if (end == line.c_str() + at || errno != 0) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_string_field(const std::string& line, const char* name,
                        std::string& out) {
  std::size_t at = find_field(line, name);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return false;
  }
  ++at;
  out.clear();
  while (at < line.size()) {
    const char c = line[at];
    if (c == '"') return true;
    if (c == '\\') {
      if (at + 1 >= line.size()) return false;
      const char esc = line[at + 1];
      if (esc == '"' || esc == '\\') {
        out += esc;
        at += 2;
        continue;
      }
      if (esc == 'u' && at + 5 < line.size()) {
        const std::string hex = line.substr(at + 2, 4);
        char* end = nullptr;
        const unsigned long code = std::strtoul(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || code > 0xFF) return false;
        out += static_cast<char>(code);
        at += 6;
        continue;
      }
      return false;
    }
    out += c;
    ++at;
  }
  return false;  // unterminated string
}

std::string serialize_record(const ProbeKey& key, const ProbeResult& r) {
  std::string out = "{\"workload\":";
  append_json_string(out, key.workload);
  out += ",\"tester\":";
  append_json_string(out, key.tester);
  std::ostringstream rest;
  rest << ",\"param\":" << key.param << ",\"trials\":" << key.trials
       << ",\"seed\":" << key.seed << ",\"flavor\":";
  out += rest.str();
  append_json_string(out, key.flavor);
  std::ostringstream tail;
  tail << ",\"ver\":" << key.engine_version << ",\"us\":"
       << r.uniform_successes << ",\"fs\":" << r.far_successes
       << ",\"t\":" << r.trials << ",\"budget\":" << r.budget
       << ",\"stop\":" << static_cast<unsigned>(r.stop)
       << ",\"uaq\":" << r.uniform_aborts_quorum
       << ",\"uat\":" << r.uniform_aborts_timeout
       << ",\"faq\":" << r.far_aborts_quorum
       << ",\"fat\":" << r.far_aborts_timeout << "}";
  out += tail.str();
  return out;
}

bool parse_record(const std::string& line, ProbeKey& key, ProbeResult& result) {
  std::uint64_t stop_raw = 0;
  std::uint64_t us = 0;
  std::uint64_t fs = 0;
  std::uint64_t t = 0;
  std::uint64_t budget = 0;
  if (!parse_string_field(line, "workload", key.workload) ||
      !parse_string_field(line, "tester", key.tester) ||
      !parse_string_field(line, "flavor", key.flavor) ||
      !parse_u64_field(line, "param", key.param) ||
      !parse_u64_field(line, "trials", key.trials) ||
      !parse_u64_field(line, "seed", key.seed) ||
      !parse_u64_field(line, "ver", key.engine_version) ||
      !parse_u64_field(line, "us", us) || !parse_u64_field(line, "fs", fs) ||
      !parse_u64_field(line, "t", t) ||
      !parse_u64_field(line, "budget", budget) ||
      !parse_u64_field(line, "stop", stop_raw) || stop_raw > 2) {
    return false;
  }
  result =
      probe_result_from_tallies(us, fs, t, budget,
                                static_cast<ProbeStop>(stop_raw));
  if (!parse_u64_field(line, "uaq", result.uniform_aborts_quorum) ||
      !parse_u64_field(line, "uat", result.uniform_aborts_timeout) ||
      !parse_u64_field(line, "faq", result.far_aborts_quorum) ||
      !parse_u64_field(line, "fat", result.far_aborts_timeout)) {
    return false;
  }
  return true;
}

}  // namespace

std::string probe_journal_frame(const std::string& json) {
  char head[40];
  std::snprintf(head, sizeof(head), "J1 %llu %016llx ",
                static_cast<unsigned long long>(json.size()),
                static_cast<unsigned long long>(fnv64(json)));
  return head + json;
}

std::optional<std::string> probe_journal_decode(const std::string& line) {
  // "J1 <decimal len> <16 hex digits> <json payload>"
  if (line.rfind("J1 ", 0) != 0) return std::nullopt;
  std::size_t at = 3;
  std::uint64_t len = 0;
  bool any_digit = false;
  while (at < line.size() && line[at] >= '0' && line[at] <= '9') {
    len = len * 10 + static_cast<std::uint64_t>(line[at] - '0');
    if (len > line.size()) return std::nullopt;  // torn: claims too much
    ++at;
    any_digit = true;
  }
  if (!any_digit || at >= line.size() || line[at] != ' ') return std::nullopt;
  ++at;
  if (at + 16 >= line.size()) return std::nullopt;
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = line[at + i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    checksum = (checksum << 4) | digit;
  }
  at += 16;
  if (line[at] != ' ') return std::nullopt;
  ++at;
  const std::string payload = line.substr(at);
  if (payload.size() != len) return std::nullopt;      // torn write
  if (fnv64(payload) != checksum) return std::nullopt;  // bit rot / tear
  return payload;
}

std::uint64_t ProbeKey::fingerprint() const {
  Fnv64 h;
  h.str(workload);
  h.str(tester);
  h.u64(param);
  h.u64(trials);
  h.u64(seed);
  h.str(flavor);
  h.u64(engine_version);
  return h.value();
}

ProbeCache::ProbeCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode) {
  if (!enabled()) return;
  path_ = (std::filesystem::path(dir_) / "probes.jsonl").string();
  lock_path_ = (std::filesystem::path(dir_) / "probes.lock").string();
  if (this->mode() == CacheMode::kReadWrite) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      const std::lock_guard<std::mutex> lock(mu_);
      degrade("cache dir '" + dir_ + "' unavailable: " + ec.message());
      return;
    }
  }
  load();
}

void ProbeCache::load() {
  std::size_t damaged = 0;
  {
    std::ifstream in(path_);
    if (!in) return;  // no file yet: empty cache
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      Record rec;
      // Framed lines must verify; unframed lines are legacy records and
      // must parse whole. Anything else is a torn/corrupt line: skipped
      // now, scrubbed by the compaction below.
      if (const auto payload = probe_journal_decode(line)) {
        if (!parse_record(*payload, rec.key, rec.result)) {
          ++damaged;
          continue;
        }
      } else if (!parse_record(line, rec.key, rec.result)) {
        ++damaged;
        continue;
      }
      index_[rec.key.fingerprint()].push_back(std::move(rec));
    }
  }
  if (damaged > 0 && mode() == CacheMode::kReadWrite) {
    const std::lock_guard<std::mutex> lock(mu_);
    compact_locked();  // scrub the journal while we know it is dirty
  }
}

ProbeCache& ProbeCache::global() {
  static ProbeCache cache = [] {
    const char* mode_env = std::getenv("DUTI_CACHE");
    const std::string mode_str = mode_env == nullptr ? "off" : mode_env;
    CacheMode mode = CacheMode::kOff;
    if (mode_str == "off" || mode_str.empty()) {
      mode = CacheMode::kOff;
    } else if (mode_str == "readonly") {
      mode = CacheMode::kReadOnly;
    } else if (mode_str == "rw") {
      mode = CacheMode::kReadWrite;
    } else {
      throw InvalidArgument("DUTI_CACHE must be off|readonly|rw, got \"" +
                            mode_str + "\"");
    }
    const char* dir_env = std::getenv("DUTI_CACHE_DIR");
    const std::string dir = dir_env == nullptr ? ".duti_cache" : dir_env;
    return ProbeCache(dir, mode);
  }();
  // When the env-configured cache is live, it also backs the testers'
  // calibration memo (stats -> testers dependency inversion; see
  // calibration_persist.hpp). Installed once, on first use.
  static const bool calib_hooked = [] {
    if (cache.enabled()) install_calibration_persistence(cache);
    return true;
  }();
  (void)calib_hooked;
  return cache;
}

std::optional<ProbeResult> ProbeCache::lookup(const ProbeKey& key) {
  if (!enabled()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key.fingerprint());
  if (it != index_.end()) {
    for (const Record& rec : it->second) {
      if (rec.key == key) {
        ++stats_.hits;
        return rec.result;
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ProbeCache::insert(const ProbeKey& key, const ProbeResult& result) {
  if (mode() != CacheMode::kReadWrite) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (mode() != CacheMode::kReadWrite) return;  // degraded concurrently
  const FileLock file_lock(lock_path_);
  if (!file_lock.held()) {
    degrade("cannot lock '" + lock_path_ + "' (cache dir gone?)");
    return;
  }
  {
    std::ofstream out(path_, std::ios::app);
    if (out) {
      out << probe_journal_frame(serialize_record(key, result)) << '\n';
      out.flush();
    }
    if (!out) {
      degrade("cannot append to '" + path_ + "'");
      return;
    }
  }
  index_[key.fingerprint()].push_back(Record{key, result});
  ++stats_.inserts;
}

void ProbeCache::compact() {
  if (mode() != CacheMode::kReadWrite) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (mode() != CacheMode::kReadWrite) return;
  compact_locked();
}

void ProbeCache::compact_locked() {
  const FileLock file_lock(lock_path_);
  if (!file_lock.held()) {
    degrade("cannot lock '" + lock_path_ + "' (cache dir gone?)");
    return;
  }
  // Merge: another process may have appended since our load. Records in
  // the file that we do not hold (by full key) are kept, not clobbered.
  std::map<std::uint64_t, std::vector<Record>> merged = index_;
  {
    std::ifstream in(path_);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      Record rec;
      if (const auto payload = probe_journal_decode(line)) {
        if (!parse_record(*payload, rec.key, rec.result)) continue;
      } else if (!parse_record(line, rec.key, rec.result)) {
        continue;
      }
      auto& bucket = merged[rec.key.fingerprint()];
      bool known = false;
      for (const Record& have : bucket) {
        if (have.key == rec.key) {
          known = true;
          break;
        }
      }
      if (!known) bucket.push_back(std::move(rec));
    }
  }
  // Tmp file + rename: readers and crash victims see either the old
  // journal or the complete new one, never a half-written file.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      for (const auto& [fp, bucket] : merged) {
        (void)fp;
        for (const Record& rec : bucket) {
          out << probe_journal_frame(serialize_record(rec.key, rec.result))
              << '\n';
        }
      }
      out.flush();
    }
    if (!out) {
      degrade("cannot write '" + tmp + "'");
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    degrade("cannot rename '" + tmp + "': " + ec.message());
    return;
  }
  index_ = std::move(merged);
}

void ProbeCache::degrade(const std::string& why) {
  mode_.store(CacheMode::kOff, std::memory_order_relaxed);
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr, "duti: probe cache disabled: %s\n", why.c_str());
  }
}

ProbeResult ProbeCache::get_or_compute(
    const ProbeKey& key, const std::function<ProbeResult()>& compute) {
  if (const std::optional<ProbeResult> hit = lookup(key)) return *hit;
  ProbeResult fresh = compute();
  insert(key, fresh);
  return fresh;
}

CacheStats ProbeCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ProbeCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

std::size_t ProbeCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [fp, recs] : index_) n += recs.size();
  return n;
}

std::string adaptive_flavor(const AdaptiveProbeConfig& cfg) {
  std::ostringstream os;
  os << "adaptive:b=" << cfg.batch << ":target=" << cfg.target
     << ":delta=" << cfg.delta << ":min=" << cfg.min_trials;
  return os.str();
}

ProbeResult probe_success_cached(ProbeCache& cache, ProbeKey key,
                                 const TesterRun& tester,
                                 const SourceSpec& uniform_source,
                                 const SourceSpec& far_source,
                                 std::size_t trials, std::uint64_t seed,
                                 ThreadPool& pool) {
  key.trials = trials;
  key.seed = seed;
  key.flavor = "full";
  key.engine_version = kProbeEngineVersion;
  return cache.get_or_compute(key, [&] {
    return probe_success(tester, uniform_source, far_source, trials, seed,
                         pool);
  });
}

ProbeResult probe_success_cached(ProbeCache& cache, ProbeKey key,
                                 const TesterRun& tester,
                                 const SourceSpec& uniform_source,
                                 const SourceSpec& far_source,
                                 std::size_t trials, std::uint64_t seed) {
  return probe_success_cached(cache, std::move(key), tester, uniform_source,
                              far_source, trials, seed, ThreadPool::global());
}

ProbeResult probe_success_adaptive_cached(
    ProbeCache& cache, ProbeKey key, const TesterRun& tester,
    const SourceSpec& uniform_source, const SourceSpec& far_source,
    std::size_t max_trials, std::uint64_t seed, const AdaptiveProbeConfig& cfg,
    ThreadPool& pool) {
  key.trials = max_trials;
  key.seed = seed;
  key.flavor = adaptive_flavor(cfg);
  key.engine_version = kProbeEngineVersion;
  return cache.get_or_compute(key, [&] {
    return probe_success_adaptive(tester, uniform_source, far_source,
                                  max_trials, seed, cfg, pool);
  });
}

ProbeResult probe_success_adaptive_cached(ProbeCache& cache, ProbeKey key,
                                          const TesterRun& tester,
                                          const SourceSpec& uniform_source,
                                          const SourceSpec& far_source,
                                          std::size_t max_trials,
                                          std::uint64_t seed,
                                          const AdaptiveProbeConfig& cfg) {
  return probe_success_adaptive_cached(cache, std::move(key), tester,
                                       uniform_source, far_source, max_trials,
                                       seed, cfg, ThreadPool::global());
}

}  // namespace duti
