// Deterministic sweep engine (DESIGN.md §12): runs a whole family of
// q*-searches — one per sweep point — as a single scheduled computation
// instead of a serial loop of cold find_min_param calls.
//
// Three mechanisms, each individually deterministic:
//
//   1. Point-level parallelism. Points run as pool tasks layered over the
//      existing trial-level sharding (the pool shares nested chunks with
//      idle workers), and every per-point result is keyed by point index —
//      the reduction order never depends on completion order, so the table
//      is bit-identical at DUTI_THREADS=1 and 8.
//   2. Warm-start hints. The two axis-extreme points (anchors) run first
//      with no hint; every interior point then gets a predicted minimum by
//      log-log interpolation between the anchor minima (the paper's bounds
//      are power laws in n, k, eps, r — see PAPER.md). The hint feeds
//      MinSearchConfig::hint, which only seeds find_min_param's first
//      speculative wave: the serial decision replay never reads it, so the
//      returned minimum and audit trail are provably identical to the cold
//      search, monotone family or not (the adversarial case just wastes
//      the wave). Hints are computed from anchor RESULTS, not from
//      whichever neighbor happened to finish first — deterministic by
//      construction.
//   3. One shared probe-cache session. All points (and both search
//      flavors) go through the same ProbeCache, so repeated probes across
//      points and across reruns hit instead of re-sampling; cached tallies
//      rebuild results bit-for-bit, so DUTI_CACHE=off|rw cannot change a
//      verdict.
//
// Trial-count savings come from the dual-flavor bracket machinery
// (adaptive certificates on the bracketing rungs, full-budget confirmation
// at the minimum) plus cache hits; the hint converts idle cores into
// wall-clock, never into a different answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "stats/harness.hpp"
#include "stats/probe_cache.hpp"
#include "util/thread_pool.hpp"

namespace duti {

/// One point of a sweep: everything needed to run its q*-search, plus the
/// axis coordinate the warm-start predictor interpolates along.
///
/// Two ways to describe the probe:
///   - Declarative (the bench path): supply `make_tester` + `uniform` +
///     `far` (+ `cache_base` identity). The engine derives the per-value
///     seed, builds full and adaptive-bracket probes, and routes both
///     through the shared cache session.
///   - Raw (the test path): supply `probe` (and optionally
///     `bracket_probe`). The engine uses them as-is — no cache, no seed
///     derivation — which is what makes audit-trail identity checks exact.
struct SweepPoint {
  std::string label;  // row label, participates in the sweep fingerprint
  double axis = 0.0;  // coordinate on the sweep axis (k, n, eps, r, T, ...)
  MinSearchConfig search;

  // Declarative description.
  std::function<TesterRun(std::uint64_t value)> make_tester;
  SourceSpec uniform;
  SourceSpec far;
  // Per-value probe seed; default derive_seed(search.seed, value).
  std::function<std::uint64_t(std::uint64_t value)> seed_for;
  // Cache identity: workload/tester ids. param/trials/seed/flavor are
  // filled per probe by the engine.
  ProbeKey cache_base;

  // Raw overrides (must be pure functions of the value).
  ProbeFn probe;
  ProbeFn bracket_probe;
};

struct SweepEngineConfig {
  // Warm mode: anchor-first scheduling + hints + adaptive bracket flavor.
  // Cold mode (false): every point runs the plain full-budget search with
  // no hint — the baseline the warm results must match bit-for-bit.
  bool warm_start = true;
  // Run points as pool tasks (reduction stays index-keyed either way).
  bool points_parallel = true;
  // Stopping schedule for the bracket flavor (target is overridden per
  // point from its search config).
  AdaptiveProbeConfig adaptive{};
  // Shared cache session; nullptr = ProbeCache::global() (DUTI_CACHE).
  ProbeCache* cache = nullptr;
};

struct SweepPointResult {
  std::string label;
  double axis = 0.0;
  bool found = false;
  std::uint64_t minimum = 0;
  // passes(search.target) of the final consulted probe at the minimum
  // (false when !found).
  bool verdict = false;
  std::uint64_t hint = 0;  // warm-start prediction used (0 = cold/anchor)
  // Consulted work, summed over the audit trail (identical at any thread
  // count and any cache mode).
  std::uint64_t probes_consulted = 0;
  std::uint64_t trials_consulted = 0;
  std::vector<std::pair<std::uint64_t, ProbeResult>> audit;
};

struct SweepResult {
  std::vector<SweepPointResult> points;  // in input order
  // FNV-1a over every point's label/axis/hint/minimum/verdict and full
  // audit tallies — the cross-thread-count, cross-cache-mode invariant.
  std::uint64_t fingerprint = 0;
  std::uint64_t probes_consulted = 0;
  std::uint64_t trials_consulted = 0;
  // Work actually COMPUTED this run (cache hits excluded). Deterministic at
  // 1 thread; with speculation it may exceed the consulted numbers.
  std::uint64_t probes_computed = 0;
  std::uint64_t trials_computed = 0;
  CacheStats cache;  // this run's delta on the shared session
};

/// Log-log interpolation between two anchor minima, evaluated at `axis` and
/// clamped to [lo, hi]; falls back to linear-axis interpolation when any
/// coordinate is non-positive. Returns 0 (no hint) when the anchors carry
/// no usable minima. Exposed for tests.
[[nodiscard]] std::uint64_t sweep_interpolate_hint(double axis0,
                                                   std::uint64_t min0,
                                                   double axis1,
                                                   std::uint64_t min1,
                                                   double axis,
                                                   std::uint64_t lo,
                                                   std::uint64_t hi);

/// Fingerprint of a finished sweep (see SweepResult::fingerprint).
[[nodiscard]] std::uint64_t sweep_fingerprint(
    const std::vector<SweepPointResult>& points);

/// Run every point's q*-search and return per-point results in input
/// order. Deterministic contract: for a FIXED engine config, minimum,
/// verdict, audit trail, and fingerprint are identical across
/// DUTI_THREADS and across cache modes. Between warm and cold configs the
/// minima and verdicts still match bit-for-bit, but the audit (and hence
/// the fingerprint) legitimately differs: that is exactly where warm mode
/// saves trials (adaptive certificates on bracket rungs, hint field).
[[nodiscard]] SweepResult run_sweep(const std::vector<SweepPoint>& points,
                                    const SweepEngineConfig& cfg,
                                    ThreadPool& pool);
[[nodiscard]] SweepResult run_sweep(const std::vector<SweepPoint>& points,
                                    const SweepEngineConfig& cfg = {});

}  // namespace duti
