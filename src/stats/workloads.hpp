// Canonical source factories shared by the benches and integration tests:
// the uniform null, the random-Paninski far ensemble (flat domain), the
// structured NuZ far ensemble (cube domain), and fixed distributions.
#pragma once

#include <cstdint>
#include <memory>

#include "stats/harness.hpp"

namespace duti::workloads {

/// Fresh UniformSource on {0,...,n-1} per trial. Trial-invariant: the probe
/// loops materialize it once per worker instead of once per trial.
[[nodiscard]] SourceSpec uniform_factory(std::uint64_t n);

/// Fresh eps-far Paninski distribution with random pair signs per trial
/// (n even). This is the flat-domain version of the paper's hard mixture.
[[nodiscard]] SourceSpec paninski_far_factory(std::uint64_t n, double eps);

/// Fresh nu_z with a uniformly random perturbation vector per trial
/// (universe size 2^{ell+1}); sampling is O(1) per draw, so this scales to
/// large universes.
[[nodiscard]] SourceSpec nu_z_far_factory(unsigned ell, double eps);

/// The same fixed distribution every trial (trial-invariant, like
/// uniform_factory).
[[nodiscard]] SourceSpec fixed_factory(DiscreteDistribution dist);

}  // namespace duti::workloads
