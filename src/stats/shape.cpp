#include "stats/shape.hpp"

#include <cmath>

#include "util/error.hpp"

namespace duti {

ShapeComparison compare_shapes(const std::vector<double>& x,
                               const std::vector<double>& measured,
                               const std::vector<double>& predicted) {
  require(x.size() == measured.size() && x.size() == predicted.size(),
          "compare_shapes: size mismatch");
  require(x.size() >= 2, "compare_shapes: need at least two points");
  for (std::size_t i = 0; i < x.size(); ++i) {
    require(x[i] > 0.0 && measured[i] > 0.0 && predicted[i] > 0.0,
            "compare_shapes: data must be positive");
  }
  ShapeComparison out;
  // c = exp(mean(log m - log p)) minimizes sum (log m - log(c p))^2.
  double log_c = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    // duti-lint: allow(no-float-accumulate, pure-float-reduce) -- single-
    // threaded curve fit in fixed index order, not a probe reduction; no
    // tally crosses threads.
    log_c += std::log(measured[i] / predicted[i]);
  }
  log_c /= static_cast<double>(x.size());
  out.fitted_constant = std::exp(log_c);

  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ratio = measured[i] / (out.fitted_constant * predicted[i]);
    out.max_ratio_deviation =
        std::max(out.max_ratio_deviation, std::max(ratio, 1.0 / ratio));
  }
  out.measured_slope = fit_power_law(x, measured).slope;
  out.predicted_slope = fit_power_law(x, predicted).slope;
  out.slope_gap = std::fabs(out.measured_slope - out.predicted_slope);
  return out;
}

}  // namespace duti
