// Persistent, content-addressed cache of ProbeResults (DESIGN.md section 8).
//
// A probe is a deterministic function of (workload identity, tester
// identity, searched parameter value, trial budget, seed, probe flavor,
// engine version): re-running a bench re-runs the exact same probes. The
// cache memoizes them across process runs, keyed by a fingerprint of that
// tuple, storing ONLY the integer tallies — every derived field is rebuilt
// through probe_result_from_tallies, so a cache hit is bit-identical to the
// fresh computation.
//
// Storage is a crash-safe append journal under a cache directory. Each
// line frames one JSON record with an explicit length and FNV-1a checksum:
//
//   J1 <payload-len> <fnv64-hex> <json>
//
// so a SIGKILL mid-write can tear at most the final line, and the tear is
// DETECTED (length or checksum mismatch), never silently half-parsed.
// Unframed legacy lines are still accepted when their JSON parses whole.
// Corrupt or truncated lines are skipped on load and scrubbed by an
// atomic tmp-file+rename compaction. Writers serialize through a flock'd
// lockfile (`probes.lock`) — advisory locks die with the process, so a
// killed writer never wedges the cache. Lookups verify the FULL key
// fields, not just the fingerprint, so a fingerprint collision degrades to
// a miss rather than a wrong result.
//
// An unwritable or vanished cache directory is not an error: the cache
// warns once on stderr and degrades to kOff (probes just compute).
//
// The cache is OFF by default. Environment knobs:
//   DUTI_CACHE     = off (default) | readonly | rw
//   DUTI_CACHE_DIR = directory for the journal (default ".duti_cache")
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "stats/harness.hpp"

namespace duti {

/// Bumped whenever probe semantics change (seed derivation, tally rules,
/// certificate logic, ...): stale cache entries from older engines then
/// miss instead of silently serving results the current engine would not
/// reproduce. Version 3 = the batched range engine with adaptive stopping.
inline constexpr std::uint64_t kProbeEngineVersion = 3;

/// Identity of one probe evaluation. `workload` and `tester` are canonical
/// human-readable id strings (workload name + every parameter that shapes
/// it); `flavor` distinguishes probe variants over the same tuple (e.g.
/// "full" vs an adaptive config). Every field participates in the
/// fingerprint and in the full-key equality check.
struct ProbeKey {
  std::string workload;  // workload id + params, e.g. "nuz:n=4096:eps=0.5"
  std::string tester;    // tester id, e.g. "collision"
  std::uint64_t param = 0;   // searched resource value (q, k, ...)
  std::uint64_t trials = 0;  // trial budget
  std::uint64_t seed = 0;
  std::string flavor = "full";
  std::uint64_t engine_version = kProbeEngineVersion;

  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] bool operator==(const ProbeKey& other) const = default;
};

enum class CacheMode : std::uint8_t { kOff = 0, kReadOnly = 1, kReadWrite = 2 };

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
};

class ProbeCache {
 public:
  /// Opens (and, for kReadWrite, creates) `dir`/probes.jsonl and loads every
  /// parseable record. kOff skips all I/O.
  ProbeCache(std::string dir, CacheMode mode);

  /// Process-wide cache configured from DUTI_CACHE / DUTI_CACHE_DIR
  /// (constructed on first use; defaults to kOff when DUTI_CACHE is unset).
  static ProbeCache& global();

  [[nodiscard]] CacheMode mode() const noexcept {
    return mode_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return mode() != CacheMode::kOff;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Full-key-verified lookup. Counts a hit or miss (no-op at kOff).
  [[nodiscard]] std::optional<ProbeResult> lookup(const ProbeKey& key);

  /// Record a result (kReadWrite only; no-op otherwise). Appends one
  /// framed journal line under the lockfile and updates the in-memory
  /// index. An I/O failure degrades the cache to kOff (warned once).
  void insert(const ProbeKey& key, const ProbeResult& result);

  /// Rewrite the journal as one framed record per cached key (merged with
  /// any records other processes appended since load), via tmp file +
  /// atomic rename under the lockfile. kReadWrite only.
  void compact();

  /// lookup(), falling back to compute() + insert() on a miss. At kOff this
  /// is exactly compute(). Thread-safe; compute runs outside the lock.
  [[nodiscard]] ProbeResult get_or_compute(
      const ProbeKey& key, const std::function<ProbeResult()>& compute);

  [[nodiscard]] CacheStats stats() const;
  void reset_stats();
  /// Number of loaded/inserted records (testing aid).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Record {
    ProbeKey key;
    ProbeResult result;
  };
  void load();
  void compact_locked();                // requires mu_ held
  void degrade(const std::string& why);  // requires mu_ held

  std::string dir_;
  std::string path_;
  std::string lock_path_;
  std::atomic<CacheMode> mode_{CacheMode::kOff};
  bool warned_ = false;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::vector<Record>> index_;  // fingerprint -> records
  CacheStats stats_;
};

/// Verify one journal line's framing (`J1 <len> <fnv64-hex> <json>`) and
/// return the JSON payload, or nullopt if the line is unframed, torn, or
/// checksum-corrupt. Exposed so crash tests can audit a journal directly.
[[nodiscard]] std::optional<std::string> probe_journal_decode(
    const std::string& line);

/// Frame a JSON payload as a journal line (without the trailing newline).
[[nodiscard]] std::string probe_journal_frame(const std::string& json);

/// Cache-aware probe entry points: consult `cache` under `key` (with
/// key.trials / key.seed / key.flavor filled from the arguments), computing
/// via the corresponding harness probe on a miss. With the cache off these
/// are exactly the underlying probes.
[[nodiscard]] ProbeResult probe_success_cached(
    ProbeCache& cache, ProbeKey key, const TesterRun& tester,
    const SourceSpec& uniform_source, const SourceSpec& far_source,
    std::size_t trials, std::uint64_t seed);
[[nodiscard]] ProbeResult probe_success_cached(
    ProbeCache& cache, ProbeKey key, const TesterRun& tester,
    const SourceSpec& uniform_source, const SourceSpec& far_source,
    std::size_t trials, std::uint64_t seed, ThreadPool& pool);

[[nodiscard]] ProbeResult probe_success_adaptive_cached(
    ProbeCache& cache, ProbeKey key, const TesterRun& tester,
    const SourceSpec& uniform_source, const SourceSpec& far_source,
    std::size_t max_trials, std::uint64_t seed,
    const AdaptiveProbeConfig& cfg = {});
[[nodiscard]] ProbeResult probe_success_adaptive_cached(
    ProbeCache& cache, ProbeKey key, const TesterRun& tester,
    const SourceSpec& uniform_source, const SourceSpec& far_source,
    std::size_t max_trials, std::uint64_t seed, const AdaptiveProbeConfig& cfg,
    ThreadPool& pool);

/// Canonical flavor string for an adaptive probe config (participates in
/// the cache key: different stopping schedules are different probes).
[[nodiscard]] std::string adaptive_flavor(const AdaptiveProbeConfig& cfg);

}  // namespace duti
