// The measurement harness: estimates a tester's two-sided success
// probability (accept uniform AND reject far), and searches for the minimal
// resource (q samples, k nodes, ...) at which the tester clears the paper's
// 2/3 success bar. These measured minima are the data points every bench
// compares against the paper's predicted curves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/sample_source.hpp"
#include "testers/robust_rules.hpp"  // RefereeOutcome
#include "util/confidence.hpp"
#include "util/rng.hpp"

namespace duti {

/// One tester execution: true = accept (the tester thinks "uniform").
using TesterRun = std::function<bool(const SampleSource&, Rng&)>;

/// Fault-aware tester execution: accept/reject/abort, with abort reasons
/// (timeout, quorum-not-met) kept distinct from rejections.
using TesterRunEx = std::function<RefereeOutcome(const SampleSource&, Rng&)>;

/// Creates a fresh sample source per trial. For the far side this draws a
/// NEW random far distribution each time (a fresh perturbation z — the
/// hard mixture of Section 3), so the measured rejection rate is over the
/// same ensemble the lower bound argues about.
using SourceFactory = std::function<std::unique_ptr<SampleSource>(Rng&)>;

struct ProbeResult {
  double uniform_accept_rate = 0.0;
  double far_reject_rate = 0.0;
  Interval uniform_ci;
  Interval far_ci;
  std::uint64_t trials = 0;
  // Abort attribution (filled by probe_success_ex; zero for the boolean
  // probe). Aborted trials fail their side but are NOT rejections.
  std::uint64_t uniform_aborts_quorum = 0;
  std::uint64_t uniform_aborts_timeout = 0;
  std::uint64_t far_aborts_quorum = 0;
  std::uint64_t far_aborts_timeout = 0;

  /// Both sides at or above the target success probability.
  [[nodiscard]] bool passes(double target = 2.0 / 3.0) const {
    return uniform_accept_rate >= target && far_reject_rate >= target;
  }
  [[nodiscard]] std::uint64_t aborts() const noexcept {
    return uniform_aborts_quorum + uniform_aborts_timeout +
           far_aborts_quorum + far_aborts_timeout;
  }
};

/// Run `trials` independent executions against fresh uniform and far
/// sources and tally both error sides.
[[nodiscard]] ProbeResult probe_success(const TesterRun& tester,
                                        const SourceFactory& uniform_source,
                                        const SourceFactory& far_source,
                                        std::size_t trials,
                                        std::uint64_t seed);

/// Like probe_success, but the tester reports a full RefereeOutcome, so
/// per-trial abort reasons are attributed instead of being conflated with
/// rejections. Uses the same seed derivation as probe_success: a boolean
/// tester and its _ex wrapping see identical sources and run streams.
[[nodiscard]] ProbeResult probe_success_ex(
    const TesterRunEx& tester, const SourceFactory& uniform_source,
    const SourceFactory& far_source, std::size_t trials, std::uint64_t seed);

struct MinSearchConfig {
  std::uint64_t lo = 2;          // smallest candidate value
  std::uint64_t hi = 1ULL << 22; // give-up cap
  std::size_t trials = 400;      // trials per probe
  double target = 2.0 / 3.0;     // success bar on both sides
  std::uint64_t seed = 1;
};

struct MinSearchResult {
  std::uint64_t minimum = 0;  // smallest passing value found
  bool found = false;         // false if even `hi` fails
  std::vector<std::pair<std::uint64_t, ProbeResult>> probes;  // audit trail
};

/// Probe at one parameter value (the searched resource).
using ProbeFn = std::function<ProbeResult(std::uint64_t)>;

/// Find the minimal parameter value whose probe passes, assuming success is
/// (statistically) monotone in the parameter: exponential bracketing from
/// `lo`, then binary search inside the bracket.
[[nodiscard]] MinSearchResult find_min_param(const ProbeFn& probe,
                                             const MinSearchConfig& cfg);

/// Median of `repeats` independent searches (different probe seeds supplied
/// by the caller through `make_probe`); smooths the 2/3-crossing noise.
[[nodiscard]] double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats);

}  // namespace duti
