// The measurement harness: estimates a tester's two-sided success
// probability (accept uniform AND reject far), and searches for the minimal
// resource (q samples, k nodes, ...) at which the tester clears the paper's
// 2/3 success bar. These measured minima are the data points every bench
// compares against the paper's predicted curves.
//
// Parallelism (DESIGN.md §7): every probe trial derives its RNG streams from
// (seed, salt, trial-index) alone, so trials are order-free and the harness
// shards them across a ThreadPool. All tallies are integer counts reduced in
// deterministic chunk order, so a ProbeResult is bit-for-bit identical at
// any thread count (enforced by test_harness_parallel). Testers and source
// factories passed to the probe functions must be safe to invoke
// concurrently from several threads (all in-repo ones are: they only read
// captured immutable state).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/sample_source.hpp"
#include "testers/robust_rules.hpp"  // RefereeOutcome
#include "util/confidence.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace duti {

/// One tester execution: true = accept (the tester thinks "uniform").
using TesterRun = std::function<bool(const SampleSource&, Rng&)>;

/// Fault-aware tester execution: accept/reject/abort, with abort reasons
/// (timeout, quorum-not-met) kept distinct from rejections.
using TesterRunEx = std::function<RefereeOutcome(const SampleSource&, Rng&)>;

/// Creates a fresh sample source per trial. For the far side this draws a
/// NEW random far distribution each time (a fresh perturbation z — the
/// hard mixture of Section 3), so the measured rejection rate is over the
/// same ensemble the lower bound argues about.
using SourceFactory = std::function<std::unique_ptr<SampleSource>(Rng&)>;

/// A SourceFactory plus the promise (or not) that it ignores its Rng — i.e.
/// every trial would see an identical source. When the promise holds, the
/// probe loops materialize the source once per worker instead of paying a
/// heap allocation per trial (measured in micro_substrate / micro_harness).
/// Implicitly convertible from a plain SourceFactory (treated as
/// trial-varying), so existing call sites are unaffected.
class SourceSpec {
 public:
  SourceSpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit bridge
  SourceSpec(SourceFactory factory, bool trial_invariant = false)
      : factory_(std::move(factory)), trial_invariant_(trial_invariant) {}

  /// Invoke the underlying factory (keeps `spec(rng)` call sites working).
  [[nodiscard]] std::unique_ptr<SampleSource> operator()(Rng& rng) const {
    return factory_(rng);
  }
  [[nodiscard]] const SourceFactory& factory() const noexcept {
    return factory_;
  }
  [[nodiscard]] bool trial_invariant() const noexcept {
    return trial_invariant_;
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return static_cast<bool>(factory_);
  }

 private:
  SourceFactory factory_;
  bool trial_invariant_ = false;
};

/// Why a probe stopped: ran its whole budget, or an early-stopping
/// certificate fired first (DESIGN.md section 8).
enum class ProbeStop : std::uint8_t {
  kExhausted = 0,      // all budgeted trials ran
  kDeterministic = 1,  // remaining trials could not flip the verdict
  kConfidence = 2,     // union-bound-corrected Wilson certificate fired
};

struct ProbeResult {
  double uniform_accept_rate = 0.0;
  double far_reject_rate = 0.0;
  Interval uniform_ci;
  Interval far_ci;
  std::uint64_t trials = 0;
  // Integer tallies behind the rates (rate = successes / trials). Kept so
  // CI-aware decisions and the probe cache can rebuild every derived field
  // bit-for-bit.
  std::uint64_t uniform_successes = 0;
  std::uint64_t far_successes = 0;
  // Budget the probe was allotted; trials < budget iff it stopped early.
  std::uint64_t budget = 0;
  ProbeStop stop = ProbeStop::kExhausted;
  // Abort attribution (filled by probe_success_ex; zero for the boolean
  // probe). Aborted trials fail their side but are NOT rejections.
  std::uint64_t uniform_aborts_quorum = 0;
  std::uint64_t uniform_aborts_timeout = 0;
  std::uint64_t far_aborts_quorum = 0;
  std::uint64_t far_aborts_timeout = 0;

  /// Both sides at or above the target success probability.
  [[nodiscard]] bool passes(double target = 2.0 / 3.0) const {
    return uniform_accept_rate >= target && far_reject_rate >= target;
  }
  /// Wilson interval for each side at confidence multiplier `z`, rebuilt
  /// from the integer tallies.
  [[nodiscard]] Interval uniform_wilson(double z) const {
    return wilson_interval(uniform_successes, trials, z);
  }
  [[nodiscard]] Interval far_wilson(double z) const {
    return wilson_interval(far_successes, trials, z);
  }
  /// CI-aware pass: both sides' Wilson LOWER bounds clear the target — the
  /// single place the 2/3 bar is decided with a margin (used by the
  /// adaptive certificate and by benches that want certified passes).
  [[nodiscard]] bool passes_with_margin(double target, double z) const {
    return uniform_wilson(z).lo >= target && far_wilson(z).lo >= target;
  }
  /// CI-aware fail: either side's Wilson UPPER bound is below the target.
  [[nodiscard]] bool fails_with_margin(double target, double z) const {
    return uniform_wilson(z).hi < target || far_wilson(z).hi < target;
  }
  [[nodiscard]] bool early_stopped() const noexcept {
    return stop != ProbeStop::kExhausted;
  }
  [[nodiscard]] std::uint64_t aborts() const noexcept {
    return uniform_aborts_quorum + uniform_aborts_timeout +
           far_aborts_quorum + far_aborts_timeout;
  }
};

/// Rebuild the derived fields (rates, default Wilson CIs) from integer
/// tallies with the exact arithmetic the probe engine uses — so a
/// ProbeResult round-tripped through integer storage (the probe cache) is
/// bit-identical to the freshly computed one.
[[nodiscard]] ProbeResult probe_result_from_tallies(
    std::uint64_t uniform_successes, std::uint64_t far_successes,
    std::uint64_t trials, std::uint64_t budget, ProbeStop stop);

/// Run `trials` independent executions against fresh uniform and far
/// sources and tally both error sides. Trials are sharded across `pool`
/// (default: the global pool, sized by DUTI_THREADS); the result is
/// bit-identical at any thread count.
[[nodiscard]] ProbeResult probe_success(const TesterRun& tester,
                                        const SourceSpec& uniform_source,
                                        const SourceSpec& far_source,
                                        std::size_t trials,
                                        std::uint64_t seed);
[[nodiscard]] ProbeResult probe_success(const TesterRun& tester,
                                        const SourceSpec& uniform_source,
                                        const SourceSpec& far_source,
                                        std::size_t trials, std::uint64_t seed,
                                        ThreadPool& pool);

/// Like probe_success, but the tester reports a full RefereeOutcome, so
/// per-trial abort reasons are attributed instead of being conflated with
/// rejections. Uses the same seed derivation as probe_success: a boolean
/// tester and its _ex wrapping see identical sources and run streams.
[[nodiscard]] ProbeResult probe_success_ex(
    const TesterRunEx& tester, const SourceSpec& uniform_source,
    const SourceSpec& far_source, std::size_t trials, std::uint64_t seed);
[[nodiscard]] ProbeResult probe_success_ex(
    const TesterRunEx& tester, const SourceSpec& uniform_source,
    const SourceSpec& far_source, std::size_t trials, std::uint64_t seed,
    ThreadPool& pool);

/// Knobs for the adaptive early-stopping probes. Batch boundaries are FIXED
/// (independent of thread count), and all stopping decisions are functions
/// of integer tallies at batch boundaries, so adaptive results — including
/// the stopping point itself — are bit-identical at any thread count.
struct AdaptiveProbeConfig {
  std::size_t batch = 32;     // trials per batch; certificates checked at
                              // batch boundaries only
  double target = 2.0 / 3.0;  // the success bar being certified
  double delta = 1e-3;        // total certificate failure probability across
                              // every peek (union-bound corrected)
  // First trial count at which confidence certificates are consulted.
  // 0 = derive from hoeffding_trials(1 - target, delta): below that count
  // not even a perfect empirical run is delta-certifiable, so checking
  // earlier only burns union-bound budget.
  std::size_t min_trials = 0;
};

/// Early-stopping probe: runs trials in deterministic batches and stops as
/// soon as either (a) the remaining budget provably cannot flip the
/// full-budget pass/fail verdict (deterministic certificate), or (b) a
/// union-bound-corrected Wilson confidence sequence certifies both sides
/// above — or either side below — the target (statistical certificate,
/// wrong with probability at most cfg.delta). Trials reuse probe_success's
/// per-trial seed derivation, so trial t sees identical sources and run
/// streams under both probes; the returned result's passes(cfg.target)
/// IS the certified verdict in every stopping case.
[[nodiscard]] ProbeResult probe_success_adaptive(
    const TesterRun& tester, const SourceSpec& uniform_source,
    const SourceSpec& far_source, std::size_t max_trials, std::uint64_t seed,
    const AdaptiveProbeConfig& cfg = {});
[[nodiscard]] ProbeResult probe_success_adaptive(
    const TesterRun& tester, const SourceSpec& uniform_source,
    const SourceSpec& far_source, std::size_t max_trials, std::uint64_t seed,
    const AdaptiveProbeConfig& cfg, ThreadPool& pool);

/// Fault-aware twin of probe_success_adaptive (same certificates, abort
/// attribution tallied like probe_success_ex).
[[nodiscard]] ProbeResult probe_success_adaptive_ex(
    const TesterRunEx& tester, const SourceSpec& uniform_source,
    const SourceSpec& far_source, std::size_t max_trials, std::uint64_t seed,
    const AdaptiveProbeConfig& cfg = {});
[[nodiscard]] ProbeResult probe_success_adaptive_ex(
    const TesterRunEx& tester, const SourceSpec& uniform_source,
    const SourceSpec& far_source, std::size_t max_trials, std::uint64_t seed,
    const AdaptiveProbeConfig& cfg, ThreadPool& pool);

struct MinSearchConfig {
  std::uint64_t lo = 2;          // smallest candidate value
  std::uint64_t hi = 1ULL << 22; // give-up cap
  std::size_t trials = 400;      // trials per probe
  double target = 2.0 / 3.0;     // success bar on both sides
  std::uint64_t seed = 1;
  // Work-avoidance knobs (DESIGN.md section 8). When adaptive_bracket is set
  // AND a bracket probe is supplied to find_min_param, the exponential
  // bracketing rungs and the early bisection midpoints consult the (cheap,
  // early-stopping) bracket probe; bisection falls back to the full-budget
  // probe once the bracket narrows to full_budget_width, and the returned
  // minimum is always confirmed with a full-budget probe before the search
  // returns.
  bool adaptive_bracket = false;
  std::uint64_t full_budget_width = 8;
  // Warm-start hint (0 = none): a predicted minimum, e.g. extrapolated from
  // a neighboring sweep point (src/stats/sweep.hpp). Purely a scheduling
  // hint: it seeds the first speculative wave with the exact consultation
  // path the serial replay takes IF the minimum is at the hint (doubling
  // rungs up to the hint's bracket, then the bisection midpoints descending
  // to it, each in the flavor the replay would use). The serial decision
  // sequence itself never looks at the hint, so the returned minimum and
  // audit trail are provably identical to the unhinted search; a wrong hint
  // only wastes the speculative wave.
  std::uint64_t hint = 0;
};

struct MinSearchResult {
  std::uint64_t minimum = 0;  // smallest passing value found
  bool found = false;         // false if even `hi` fails
  std::vector<std::pair<std::uint64_t, ProbeResult>> probes;  // audit trail
};

/// Probe at one parameter value (the searched resource). Must be a pure
/// function of the value (all in-repo probes are: they derive their seed
/// from the value), which is what lets the search speculate.
using ProbeFn = std::function<ProbeResult(std::uint64_t)>;

/// Find the minimal parameter value whose probe passes, assuming success is
/// (statistically) monotone in the parameter: exponential bracketing from
/// `lo`, then binary search inside the bracket.
///
/// With a multi-thread pool the search SPECULATES: each wave evaluates, in
/// parallel, the candidates the serial algorithm might consult next (the
/// next doublings during bracketing; the next levels of the bisection tree
/// during binary search). Consultation then replays the exact serial
/// decision sequence against the precomputed results, so `minimum` and the
/// `probes` audit trail are identical to the serial search — speculation
/// only trades spare cores for wall-clock.
[[nodiscard]] MinSearchResult find_min_param(const ProbeFn& probe,
                                             const MinSearchConfig& cfg);
[[nodiscard]] MinSearchResult find_min_param(const ProbeFn& probe,
                                             const MinSearchConfig& cfg,
                                             ThreadPool& pool);

/// Work-avoidance variant: `bracket_probe` (typically an adaptive
/// early-stopping probe over the same seeds) is consulted for the
/// exponential bracketing rungs and wide bisection midpoints when
/// cfg.adaptive_bracket is set; the full-budget `probe` decides the final
/// bisection steps, and the returned minimum always carries a full-budget
/// confirmation in the audit trail. If the confirmation fails (the bracket
/// certificate mis-fired, probability <= the bracket probe's delta), the
/// search resumes above the refuted value with full-budget probes, so the
/// returned minimum's verdict is always full-budget-backed.
[[nodiscard]] MinSearchResult find_min_param(const ProbeFn& probe,
                                             const ProbeFn& bracket_probe,
                                             const MinSearchConfig& cfg);
[[nodiscard]] MinSearchResult find_min_param(const ProbeFn& probe,
                                             const ProbeFn& bracket_probe,
                                             const MinSearchConfig& cfg,
                                             ThreadPool& pool);

/// Median of `repeats` independent searches (different probe seeds supplied
/// by the caller through `make_probe`); smooths the 2/3-crossing noise.
/// Repeats run concurrently across `pool` (each repeat's nested search then
/// runs serially inside its worker); per-repeat minima are reduced in repeat
/// order, so the median matches the serial implementation exactly.
[[nodiscard]] double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats);
[[nodiscard]] double find_min_param_median(
    const std::function<ProbeFn(std::uint64_t seed)>& make_probe,
    const MinSearchConfig& cfg, unsigned repeats, ThreadPool& pool);

}  // namespace duti
