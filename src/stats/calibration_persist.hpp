// Cross-process persistence for the testers' calibration memo
// (testers/calibration.hpp), riding on the ProbeCache journal so warm
// reruns of a sweep skip referee calibration entirely.
//
// The memo's u64 payloads are shoehorned into ProbeResult records: the
// logical payload is prefixed with a length word and chunked 8 words per
// record into the 8 free u64 slots (uniform/far successes, trials, budget,
// four abort tallies; stop stays kExhausted). Records are keyed
// ProbeKey{workload = "calib:" + memo id, tester = "calib", flavor =
// "calib", param = chunk index, trials = 0, seed = FNV-1a(id)} — the
// workload string carries the FULL memo id, and ProbeCache lookups verify
// full keys, so distinct calibrations can never collide. The rate fields a
// hit rebuilds from these tallies are meaningless, but nothing reads them:
// the memo consumes only the raw integer slots.
//
// Installation is the testers -> stats dependency inversion: this layer
// registers load/store hooks with CalibMemo::global(). ProbeCache::global()
// self-installs when the env-configured cache is enabled; run_sweep
// installs its session cache for the duration of the sweep.
#pragma once

#include "stats/probe_cache.hpp"

namespace duti {

/// Register `cache` as the calibration memo's persistence backend
/// (replacing any previous backend). Stores go through the cache's usual
/// mode rules (dropped unless kReadWrite); loads work at kReadOnly too.
/// `cache` must outlive the hooks (uninstall before destroying it).
void install_calibration_persistence(ProbeCache& cache);

/// Detach the persistence backend (in-memory memoization keeps working).
void uninstall_calibration_persistence();

}  // namespace duti
