// Shape comparison between a measured curve and a paper-predicted curve.
// Asymptotic statements fix no constants, so we fit the single multiplier c
// minimizing the log-space error between measured and c * predicted, then
// report the residual spread and the fitted log-log slope. A reproduction
// "matches the shape" when the slope agrees and the residual ratio stays
// within a small band.
#pragma once

#include <vector>

#include "util/math.hpp"

namespace duti {

struct ShapeComparison {
  double fitted_constant = 0.0;   // c minimizing log-error
  double max_ratio_deviation = 0.0;  // max_i max(m_i/(c p_i), (c p_i)/m_i)
  double measured_slope = 0.0;    // log-log slope of measured vs x
  double predicted_slope = 0.0;   // log-log slope of predicted vs x
  double slope_gap = 0.0;         // |measured - predicted|
};

/// All three vectors must be positive and equally sized (>= 2 points).
[[nodiscard]] ShapeComparison compare_shapes(
    const std::vector<double>& x, const std::vector<double>& measured,
    const std::vector<double>& predicted);

}  // namespace duti
